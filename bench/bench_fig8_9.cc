// Reproduces Figures 8 and 9: VCA vs VCA competition on a 0.5 Mbps
// symmetric link, upstream direction.
//   8a-8c: share of uplink capacity, incumbent (white box) vs competitor
//   9a/9b: Zoom-vs-Zoom and Meet-vs-Meet uplink timeseries
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 3;

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig8_9", opts);

  header("Figure 8", "Uplink share under VCA vs VCA competition @ 0.5 Mbps");
  {
    std::vector<CompetitionConfig> jobs;
    for (const auto& inc : kProfiles) {
      for (const auto& comp : kProfiles) {
        for (int rep = 0; rep < kReps; ++rep) {
          CompetitionConfig cfg;
          cfg.incumbent = inc;
          cfg.competitor = CompetitorKind::kVca;
          cfg.competitor_profile = comp;
          cfg.link = DataRate::kbps(500);
          cfg.seed = 2100 + static_cast<uint64_t>(rep);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_competition, opts.jobs);

    TextTable table({"incumbent", "competitor", "incumbent share [CI]",
                     "competitor share [CI]"});
    report.begin_section("fig8", "Uplink share, VCA vs VCA @ 0.5 Mbps");
    size_t k = 0;
    for (const auto& inc : kProfiles) {
      for (const auto& comp : kProfiles) {
        size_t cell_start = k;
        auto inc_share = take(results, k, kReps, [](const CompetitionResult& r) {
          return r.incumbent_up_share;
        });
        auto comp_share =
            take(results, cell_start, kReps, [](const CompetitionResult& r) {
              return r.competitor_up_share;
            });
        ConfidenceInterval inc_ci = confidence_interval(inc_share);
        ConfidenceInterval comp_ci = confidence_interval(comp_share);
        table.add_row({inc, comp, ci_cell(inc_ci), ci_cell(comp_ci)});
        report.add_cell({{"incumbent", inc}, {"competitor", comp}},
                        {{"incumbent_up_share", inc_ci},
                         {"competitor_up_share", comp_ci}});
      }
    }
    table.print(std::cout);
    note("Expect: Meet/Teams share fairly with each other; both back off to "
         "Zoom; an incumbent Zoom takes >=75% against anyone — including "
         "another Zoom (unfair to itself).");
  }

  header("Figure 9", "Uplink bitrate timeseries, same-VCA competition @ 0.5");
  {
    const std::vector<std::string> kPairs = {"zoom", "meet"};
    std::vector<CompetitionConfig> jobs;
    for (const auto& profile : kPairs) {
      CompetitionConfig cfg;
      cfg.incumbent = profile;
      cfg.competitor = CompetitorKind::kVca;
      cfg.competitor_profile = profile;
      cfg.link = DataRate::kbps(500);
      cfg.seed = 11;
      jobs.push_back(cfg);
    }
    auto results = Sweep::run(jobs, run_competition, opts.jobs);
    report.begin_section("fig9", "Same-VCA competition timeseries @ 0.5 Mbps");
    for (size_t i = 0; i < jobs.size(); ++i) {
      const CompetitionResult& r = results[i];
      std::cout << kPairs[i] << " vs " << kPairs[i]
                << " (incumbent/competitor Mbps):\n  ";
      const auto& a = r.incumbent_up_series.samples();
      const auto& b = r.competitor_up_series.samples();
      for (size_t j = 0; j < a.size() && j < b.size(); j += 10) {
        std::cout << static_cast<int>(a[j].at.seconds()) << ":"
                  << fmt(a[j].value, 2) << "/" << fmt(b[j].value, 2) << " ";
      }
      std::cout << "\n";
      report.add_cell(
          {{"profile", kPairs[i]}},
          {{"incumbent_up_share", BenchReport::scalar(r.incumbent_up_share)},
           {"competitor_up_share",
            BenchReport::scalar(r.competitor_up_share)}});
    }
    note("Expect: two Meet clients converge to ~0.25/0.25; the incumbent "
         "Zoom stays high while the joining Zoom is starved.");
  }
  return report.finish() ? 0 : 1;
}
