// Reproduces Figures 8 and 9: VCA vs VCA competition on a 0.5 Mbps
// symmetric link, upstream direction.
//   8a-8c: share of uplink capacity, incumbent (white box) vs competitor
//   9a/9b: Zoom-vs-Zoom and Meet-vs-Meet uplink timeseries
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

constexpr int kReps = 3;

}  // namespace

int main() {
  header("Figure 8", "Uplink share under VCA vs VCA competition @ 0.5 Mbps");
  TextTable table({"incumbent", "competitor", "incumbent share [CI]",
                   "competitor share [CI]"});
  for (const std::string inc : {"meet", "teams", "zoom"}) {
    for (const std::string comp : {"meet", "teams", "zoom"}) {
      std::vector<double> inc_share, comp_share;
      for (int rep = 0; rep < kReps; ++rep) {
        CompetitionConfig cfg;
        cfg.incumbent = inc;
        cfg.competitor = CompetitorKind::kVca;
        cfg.competitor_profile = comp;
        cfg.link = DataRate::kbps(500);
        cfg.seed = 2100 + static_cast<uint64_t>(rep);
        CompetitionResult r = run_competition(cfg);
        inc_share.push_back(r.incumbent_up_share);
        comp_share.push_back(r.competitor_up_share);
      }
      table.add_row({inc, comp, ci_cell(confidence_interval(inc_share)),
                     ci_cell(confidence_interval(comp_share))});
    }
  }
  table.print(std::cout);
  note("Expect: Meet/Teams share fairly with each other; both back off to "
       "Zoom; an incumbent Zoom takes >=75% against anyone — including "
       "another Zoom (unfair to itself).");

  header("Figure 9", "Uplink bitrate timeseries, same-VCA competition @ 0.5");
  for (const std::string profile : {"zoom", "meet"}) {
    CompetitionConfig cfg;
    cfg.incumbent = profile;
    cfg.competitor = CompetitorKind::kVca;
    cfg.competitor_profile = profile;
    cfg.link = DataRate::kbps(500);
    cfg.seed = 11;
    CompetitionResult r = run_competition(cfg);
    std::cout << profile << " vs " << profile
              << " (incumbent/competitor Mbps):\n  ";
    const auto& a = r.incumbent_up_series.samples();
    const auto& b = r.competitor_up_series.samples();
    for (size_t i = 0; i < a.size() && i < b.size(); i += 10) {
      std::cout << static_cast<int>(a[i].at.seconds()) << ":"
                << fmt(a[i].value, 2) << "/" << fmt(b[i].value, 2) << " ";
    }
    std::cout << "\n";
  }
  note("Expect: two Meet clients converge to ~0.25/0.25; the incumbent "
       "Zoom stays high while the joining Zoom is starved.");
  return 0;
}
