// Reproduces Table 2: unconstrained two-party network utilization,
// five repetitions per VCA, mean with 90% CI.
#include "bench_common.h"
#include "harness/scenario.h"

int main(int argc, char** argv) {
  using namespace vca;
  using namespace vca::bench;

  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_table2", opts);

  header("Table 2", "Unconstrained network utilization (Mbps)");

  struct PaperRow {
    const char* name;
    const char* up;
    const char* down;
  };
  const PaperRow paper[] = {
      {"meet", "0.95", "0.84"}, {"teams", "1.40", "1.86"}, {"zoom", "0.78", "0.95"}};
  constexpr int kReps = 5;

  std::vector<TwoPartyConfig> jobs;
  for (const auto& row : paper) {
    for (uint64_t rep = 0; rep < kReps; ++rep) {
      TwoPartyConfig cfg;
      cfg.profile = row.name;
      cfg.seed = 100 + rep;
      jobs.push_back(cfg);
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  TextTable table({"VCA", "Upstream mean [90% CI]", "Downstream mean [90% CI]",
                   "Paper up", "Paper down"});
  report.begin_section("table2", "Unconstrained network utilization (Mbps)");
  size_t k = 0;
  for (const auto& row : paper) {
    size_t cell_start = k;
    auto ups = take(results, k, kReps,
                    [](const TwoPartyResult& r) { return r.c1_up_mbps; });
    auto downs = take(results, cell_start, kReps,
                      [](const TwoPartyResult& r) { return r.c1_down_mbps; });
    ConfidenceInterval up_ci = confidence_interval(ups);
    ConfidenceInterval down_ci = confidence_interval(downs);
    table.add_row({row.name, ci_cell(up_ci), ci_cell(down_ci), row.up,
                   row.down});
    report.add_cell({{"vca", row.name}},
                    {{"up_mbps", up_ci}, {"down_mbps", down_ci}});
  }
  table.print(std::cout);
  note("Paper's Teams up/down asymmetry is run-to-run variance (§3.1); our "
       "per-run up==down matches their per-capture observation.");
  return report.finish() ? 0 : 1;
}
