// Reproduces Table 2: unconstrained two-party network utilization,
// five repetitions per VCA, mean with 90% CI.
#include "bench_common.h"
#include "harness/scenario.h"

int main() {
  using namespace vca;
  using namespace vca::bench;

  header("Table 2", "Unconstrained network utilization (Mbps)");

  TextTable table({"VCA", "Upstream mean [90% CI]", "Downstream mean [90% CI]",
                   "Paper up", "Paper down"});
  struct PaperRow {
    const char* name;
    const char* up;
    const char* down;
  };
  const PaperRow paper[] = {
      {"meet", "0.95", "0.84"}, {"teams", "1.40", "1.86"}, {"zoom", "0.78", "0.95"}};

  for (const auto& row : paper) {
    std::vector<double> ups, downs;
    for (uint64_t rep = 0; rep < 5; ++rep) {
      TwoPartyConfig cfg;
      cfg.profile = row.name;
      cfg.seed = 100 + rep;
      TwoPartyResult r = run_two_party(cfg);
      ups.push_back(r.c1_up_mbps);
      downs.push_back(r.c1_down_mbps);
    }
    table.add_row({row.name, ci_cell(confidence_interval(ups)),
                   ci_cell(confidence_interval(downs)), row.up, row.down});
  }
  table.print(std::cout);
  note("Paper's Teams up/down asymmetry is run-to-run variance (§3.1); our "
       "per-run up==down matches their per-capture observation.");
  return 0;
}
