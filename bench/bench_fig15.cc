// Reproduces Figure 15: network utilization vs participant count and
// viewing mode (§6).
//   15a: C1 downlink, gallery mode, n = 2..8
//   15b: C1 uplink, gallery mode
//   15c: uplink of the client pinned by everyone (speaker mode), n = 3..8
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 5;

void panel(BenchReport& report, const SweepOptions& opts,
           const std::string& section_id, const std::string& title,
           ViewMode mode, bool uplink, int n_min) {
  std::vector<MultipartyConfig> jobs;
  for (int n = n_min; n <= 8; ++n) {
    for (const auto& profile : kProfiles) {
      for (int rep = 0; rep < kReps; ++rep) {
        MultipartyConfig cfg;
        cfg.profile = profile;
        cfg.participants = n;
        cfg.mode = mode;
        cfg.seed = 3100 + static_cast<uint64_t>(rep);
        jobs.push_back(cfg);
      }
    }
  }
  auto results = Sweep::run(jobs, run_multiparty, opts.jobs);

  note(title);
  TextTable table({"participants", "meet [CI]", "teams [CI]", "zoom [CI]"});
  report.begin_section(section_id, title);
  size_t k = 0;
  for (int n = n_min; n <= 8; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& profile : kProfiles) {
      auto vals = take(results, k, kReps, [&](const MultipartyResult& r) {
        return uplink ? r.c1_up_mbps : r.c1_down_mbps;
      });
      ConfidenceInterval ci = confidence_interval(vals);
      row.push_back(ci_cell(ci));
      report.add_cell({{"participants", std::to_string(n)},
                       {"profile", profile}},
                      {{uplink ? "up_mbps" : "down_mbps", ci}});
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig15", opts);

  header("Figure 15a", "Downlink utilization, gallery mode (Mbps)");
  panel(report, opts, "fig15a", "C1 received rate vs participant count:",
        ViewMode::kGallery, /*uplink=*/false, 2);
  note("Expect: Meet rises to ~2.5 by n=6 then drops at n=7; Zoom drops at "
       "n=5 then grows with feed count; Teams rises to n=5 then drops "
       "(4-tile layout + emulated thinning).");

  header("Figure 15b", "Uplink utilization, gallery mode (Mbps)");
  panel(report, opts, "fig15b", "C1 sent rate vs participant count:",
        ViewMode::kGallery, /*uplink=*/true, 2);
  note("Expect: Zoom's uplink halves at n=5 (grid gains a third row); "
       "Meet's drops at n=7; Teams stays nearly constant (fixed 2x2).");

  header("Figure 15c", "Uplink of the pinned client, speaker mode (Mbps)");
  panel(report, opts, "fig15c", "C1 sent rate when all others pin C1:",
        ViewMode::kSpeaker, /*uplink=*/true, 3);
  note("Expect: Zoom and Meet hold ~1 Mbps regardless of n; Teams grows "
       "from ~1.25 toward ~2.9 at n=8 (emulated anomaly).");
  return report.finish() ? 0 : 1;
}
