# ctest script: the cascaded-conference hot path must sustain a floor of
# forwarded-packets per wall second (the SFU fleet's CPU proxy) on a
# fixed 16-party 2-region run. Baseline on the dev container: ~475k
# pps; the floor leaves >2x headroom for slower CI hosts while catching
# any change that makes per-forward work superlinear (e.g. reintroducing
# a per-packet allocation or an O(n^2) scan per forward). The timing line
# (CONF_PERF_TIMING) is printed on stderr so that stdout stays
# deterministic across --shards counts. Run as:
#   cmake -DBENCH=<bench_conference> -P check_conference_perf.cmake
if(NOT DEFINED BENCH)
  message(FATAL_ERROR
      "usage: cmake -DBENCH=<binary> -P check_conference_perf.cmake")
endif()

set(floor_pps 200000)

execute_process(
  COMMAND "${BENCH}" --perf
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_conference --perf failed (rc=${rc}):\n${err}")
endif()

if(NOT err MATCHES "CONF_PERF_TIMING[^\n]* pps=([0-9]+)")
  message(FATAL_ERROR
      "no CONF_PERF_TIMING pps= figure in bench_conference --perf "
      "stderr:\n${out}\n${err}")
endif()
set(pps ${CMAKE_MATCH_1})

if(pps LESS ${floor_pps})
  message(FATAL_ERROR
    "conference forwarding regressed: ${pps} forwarded-packets/s is below "
    "the ${floor_pps} floor (~40% of the committed baseline). If the "
    "slowdown is intentional, refresh the floor in "
    "check_conference_perf.cmake.")
endif()
message(STATUS "conference-perf: ${pps} forwarded-packets/s >= ${floor_pps} floor")
