// Estimator-accuracy validation (the paper's §3.3): how well the blind
// offline pipeline (src/analysis) recovers FPS and bitrate from packet
// headers alone, scored against WebRtcStatsCollector ground truth.
//
// For every profile x downlink-rate cell we run two-party calls with the
// simulated tcpdump attached to C1's downlink, feed the recorded trace —
// bytes and timestamps only — to analyze_records(), and compare:
//   * blind median FPS of the primary video stream vs the getStats()
//     median over the same measurement window;
//   * blind aggregate IP-layer utilization vs the FlowCapture mean.
//
// Acceptance (ISSUE 4): on the unconstrained link the blind median FPS
// must be within +/-10% of ground truth for all three profiles; the
// binary exits nonzero otherwise, so CI enforces it.
//
// --quick trims the grid to the unconstrained rate with one rep and a
// shorter call (used by the determinism ctest); --reps N overrides the
// repetition count. --jobs/--json as everywhere else.
#include <cmath>
#include <cstring>

#include "analysis/inference.h"
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;

// Ground-truth median FPS over the measurement window, same convention
// as the blind estimator: median of nonzero per-second frame counts.
double truth_median_fps(const std::vector<SecondStats>& seconds,
                        Duration measure_from) {
  std::vector<double> v;
  TimePoint from = TimePoint::zero() + measure_from;
  for (const SecondStats& s : seconds) {
    if (s.at > from && s.fps > 0.0) v.push_back(s.fps);
  }
  return median_of_sorted_copy(std::move(v));
}

double pct_err(double estimate, double truth) {
  if (truth <= 0.0) return estimate <= 0.0 ? 0.0 : 100.0;
  return 100.0 * (estimate - truth) / truth;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vca;
  using namespace vca::bench;

  SweepOptions opts = parse_sweep_args(argc, argv);
  bool quick = false;
  int reps = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
  }
  if (reps < 1) reps = quick ? 1 : 3;

  BenchReport report("bench_inference", opts);
  header("Estimator accuracy",
         "Blind trace inference vs getStats() ground truth");

  const char* profiles[] = {"meet", "teams", "zoom"};
  // 0 = unconstrained (1 Gbps access link left at its default).
  std::vector<double> rates_mbps = {0.0, 3.0, 1.5, 0.8};
  if (quick) rates_mbps = {0.0};
  Duration duration = Duration::seconds(quick ? 80 : 150);
  Duration measure_from = Duration::seconds(30);

  std::vector<TwoPartyConfig> jobs;
  for (const char* profile : profiles) {
    for (double rate : rates_mbps) {
      for (int rep = 0; rep < reps; ++rep) {
        TwoPartyConfig cfg;
        cfg.profile = profile;
        cfg.seed = 700 + static_cast<uint64_t>(rep);
        if (rate > 0.0) cfg.c1_down = DataRate::mbps_d(rate);
        cfg.duration = duration;
        cfg.measure_from = measure_from;
        cfg.capture_traces = true;
        jobs.push_back(cfg);
      }
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  TextTable table({"VCA", "down", "blind fps", "truth fps", "fps err %",
                   "blind Mbps", "truth Mbps", "rate err %"});
  report.begin_section("estimator_accuracy",
                       "Blind estimators vs ground truth");
  bool acceptance_ok = true;
  size_t k = 0;
  for (const char* profile : profiles) {
    for (double rate : rates_mbps) {
      std::vector<double> blind_fps, truth_fps, fps_err, blind_rate,
          truth_rate, rate_err;
      for (int rep = 0; rep < reps; ++rep) {
        const TwoPartyResult& r = results[k++];
        TraceAnalysis an =
            analyze_records(r.c1_down_records, measure_from.seconds());
        const StreamReport* video = an.primary_video();
        double bf = video != nullptr ? video->median_fps : 0.0;
        double tf = truth_median_fps(r.c1_recv_seconds, measure_from);
        blind_fps.push_back(bf);
        truth_fps.push_back(tf);
        fps_err.push_back(pct_err(bf, tf));
        blind_rate.push_back(an.mean_rate_mbps);
        truth_rate.push_back(r.c1_down_mbps);
        rate_err.push_back(pct_err(an.mean_rate_mbps, r.c1_down_mbps));
      }
      ConfidenceInterval bf_ci = confidence_interval(blind_fps);
      ConfidenceInterval tf_ci = confidence_interval(truth_fps);
      ConfidenceInterval fe_ci = confidence_interval(fps_err);
      ConfidenceInterval br_ci = confidence_interval(blind_rate);
      ConfidenceInterval tr_ci = confidence_interval(truth_rate);
      ConfidenceInterval re_ci = confidence_interval(rate_err);

      std::string rate_label = rate > 0.0 ? fmt(rate, 1) : "uncon";
      table.add_row({profile, rate_label, ci_cell(bf_ci, 1), ci_cell(tf_ci, 1),
                     ci_cell(fe_ci, 1), ci_cell(br_ci), ci_cell(tr_ci),
                     ci_cell(re_ci, 1)});
      report.add_cell({{"vca", profile}, {"down_mbps", rate_label}},
                      {{"blind_fps", bf_ci},
                       {"truth_fps", tf_ci},
                       {"fps_err_pct", fe_ci},
                       {"blind_rate_mbps", br_ci},
                       {"truth_rate_mbps", tr_ci},
                       {"rate_err_pct", re_ci}});

      if (rate == 0.0) {
        // Acceptance: per-rep blind median FPS within +/-10% of truth on
        // the unconstrained link.
        for (int rep = 0; rep < reps; ++rep) {
          if (std::abs(fps_err[static_cast<size_t>(rep)]) > 10.0) {
            acceptance_ok = false;
          }
        }
      }
    }
  }
  table.print(std::cout);
  note(acceptance_ok
           ? "acceptance: blind median FPS within +/-10% of ground truth on "
             "the unconstrained link (all profiles)"
           : "ACCEPTANCE FAILED: blind median FPS off by >10% on the "
             "unconstrained link");
  bool ok = report.finish();
  return acceptance_ok && ok ? 0 : 1;
}
