# ctest script: bench throughput regression gate against a committed
# baseline JSON (satellite of the sharded-core PR, the
# BENCH_microsim/perf_smoke convention extended to the --perf benches).
#
# Re-runs the baseline's fixed workload, reads events_per_sec from the
# fresh report's timing line, and fails if it dropped more than
# TOLERANCE_PCT below the committed baseline's figure. Refresh the
# baseline alongside any intentional perf-relevant change (bench/README.md
# has the commands).
#
# usage: cmake -DBENCH=<bench binary> -DWORKDIR=<dir>
#              -DBASELINE=<committed json> [-DSHAPE="--perf ..."]
#              [-DSHARDS=N] [-DTOLERANCE_PCT=15]
#              -P check_bench_regression.cmake
#
# SHAPE defaults to bench_conference's 200-party 4-region 20 s run; pass
# a space-separated flag string to gate another bench (e.g.
# -DSHAPE=--perf for bench_inference_stream, whose events_per_sec is the
# analyzer's packets/s).
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR OR NOT DEFINED BASELINE)
  message(FATAL_ERROR
      "usage: cmake -DBENCH=<binary> -DWORKDIR=<dir> -DBASELINE=<json> "
      "[-DSHAPE=\"--perf ...\"] [-DSHARDS=N] [-DTOLERANCE_PCT=15] "
      "-P check_bench_regression.cmake")
endif()
if(NOT DEFINED TOLERANCE_PCT)
  set(TOLERANCE_PCT 15)
endif()

get_filename_component(bench_name "${BENCH}" NAME)
if(DEFINED SHAPE)
  separate_arguments(shape UNIX_COMMAND "${SHAPE}")
else()
  set(shape --perf --participants 200 --regions 4 --duration 20)
endif()
if(DEFINED SHARDS)
  list(APPEND shape --shards ${SHARDS})
  set(what "sharded (${SHARDS} threads)")
else()
  set(what "serial")
endif()

set(fresh_json "${WORKDIR}/bench_regression_fresh.json")
execute_process(
  COMMAND "${BENCH}" ${shape} --json "${fresh_json}"
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "${bench_name} ${shape} failed (rc=${rc}):\n${err}")
endif()

# events_per_sec lives in the one "timing" line of each report; take the
# integer part (the figures are in the millions — sub-event/s precision
# is noise).
function(read_eps file outvar)
  file(READ "${file}" doc)
  string(JSON eps GET "${doc}" timing events_per_sec)
  if(NOT eps MATCHES "^([0-9]+)")
    message(FATAL_ERROR "no integer events_per_sec in ${file} (got ${eps})")
  endif()
  set(${outvar} ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

read_eps("${BASELINE}" base_eps)
read_eps("${fresh_json}" fresh_eps)

math(EXPR floor_eps "${base_eps} * (100 - ${TOLERANCE_PCT}) / 100")
if(fresh_eps LESS ${floor_eps})
  message(FATAL_ERROR
      "${bench_name} (${what}) regressed: ${fresh_eps} events/s is more "
      "than ${TOLERANCE_PCT}% below the committed baseline ${base_eps} "
      "events/s (${BASELINE}). If the slowdown is intentional, refresh the "
      "baseline (bench/README.md).")
endif()
message(STATUS
    "bench-regression (${what}): ${fresh_eps} events/s >= ${floor_eps} "
    "(baseline ${base_eps} - ${TOLERANCE_PCT}%)")
