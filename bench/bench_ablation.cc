// Ablations for the design decisions DESIGN.md calls out: VCA identity
// lives in the congestion controller + server architecture, not the label.
//
//   A1: Zoom without probe cycles — the Fig 4a overshoot and the Fig 13
//       iPerf3 collapse should disappear.
//   A2: swap Teams' controller for GCC — its passivity against TCP
//       should disappear.
//   A3: Meet without simulcast (single rate-adaptive stream through the
//       same SFU) — the fast downlink recovery should degrade.
#include "bench_common.h"
#include "harness/scenario.h"
#include "vca/profile.h"

namespace {

using namespace vca;
using namespace vca::bench;

}  // namespace

// The scenario runners resolve profiles by name; expose modified profiles
// through the registry used in run_* by registering override names there.
// (Implemented in profiles.cc as the "zoom-noprobe", "teams-gcc" and
// "meet-nosimulcast" variants.)
int main() {
  header("Ablation A1", "Zoom probe cycles (uplink drop to 0.25 Mbps)");
  for (const std::string profile : {"zoom", "zoom-noprobe"}) {
    DisruptionConfig cfg;
    cfg.profile = profile;
    cfg.seed = 7;
    DisruptionResult r = run_disruption(cfg);
    double peak = 0.0;
    for (const auto& s : r.disrupted_series.samples()) {
      if (s.at.seconds() > 90.0) peak = std::max(peak, s.value);
    }
    std::cout << profile << ": nominal " << fmt(r.ttr.nominal_mbps)
              << " Mbps, post-disruption peak " << fmt(peak) << " Mbps, TTR "
              << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
              << "\n";
  }
  note("Expect: without probing the peak stays at nominal (no overshoot).");

  header("Ablation A2", "Teams controller swap vs TCP @ 2 Mbps");
  for (const std::string profile : {"teams", "teams-gcc"}) {
    CompetitionConfig cfg;
    cfg.incumbent = profile;
    cfg.competitor = CompetitorKind::kIperfUp;
    cfg.link = DataRate::mbps(2);
    cfg.seed = 41;
    CompetitionResult r = run_competition(cfg);
    std::cout << profile << ": uplink share " << fmt(r.incumbent_up_share)
              << ", downlink share " << fmt(r.incumbent_down_share) << "\n";
  }
  note("Expect: swapping the controller visibly changes how Teams shares "
       "with TCP (most dramatically on the downlink, where the "
       "conservative receiver-driven estimate collapses) — the behavior "
       "follows the controller, not the brand.");

  header("Ablation A3",
         "Meet without simulcast: constrained downlink (0.5 Mbps)");
  for (const std::string profile : {"meet", "meet-nosimulcast"}) {
    std::vector<double> util, freeze;
    for (int rep = 0; rep < 3; ++rep) {
      TwoPartyConfig cfg;
      cfg.profile = profile;
      cfg.seed = 60 + static_cast<uint64_t>(rep);
      cfg.c1_down = DataRate::kbps(500);
      TwoPartyResult r = run_two_party(cfg);
      util.push_back(r.c1_down_mbps);
      freeze.push_back(100.0 * r.c1_received.freeze_ratio);
    }
    std::cout << profile << ": downlink util "
              << fmt(mean_of(util)) << " Mbps, freeze "
              << fmt(mean_of(freeze), 1) << "%\n";
  }
  note("Expect: without the low simulcast copy there is no clean fallback "
       "tier — the single stream rides the estimate and freezes more.");
  return 0;
}
