// Ablations for the design decisions DESIGN.md calls out: VCA identity
// lives in the congestion controller + server architecture, not the label.
//
//   A1: Zoom without probe cycles — the Fig 4a overshoot and the Fig 13
//       iPerf3 collapse should disappear.
//   A2: swap Teams' controller for GCC — its passivity against TCP
//       should disappear.
//   A3: Meet without simulcast (single rate-adaptive stream through the
//       same SFU) — the fast downlink recovery should degrade.
#include "bench_common.h"
#include "harness/scenario.h"
#include "vca/profile.h"

namespace {

using namespace vca;
using namespace vca::bench;

}  // namespace

// The scenario runners resolve profiles by name; expose modified profiles
// through the registry used in run_* by registering override names there.
// (Implemented in profiles.cc as the "zoom-noprobe", "teams-gcc" and
// "meet-nosimulcast" variants.)
int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_ablation", opts);

  header("Ablation A1", "Zoom probe cycles (uplink drop to 0.25 Mbps)");
  {
    const std::vector<std::string> kVariants = {"zoom", "zoom-noprobe"};
    std::vector<DisruptionConfig> jobs;
    for (const auto& profile : kVariants) {
      DisruptionConfig cfg;
      cfg.profile = profile;
      cfg.seed = 7;
      jobs.push_back(cfg);
    }
    auto results = Sweep::run(jobs, run_disruption, opts.jobs);
    report.begin_section("a1", "Zoom probe cycles ablation");
    for (size_t i = 0; i < jobs.size(); ++i) {
      const DisruptionResult& r = results[i];
      double peak = 0.0;
      for (const auto& s : r.disrupted_series.samples()) {
        if (s.at.seconds() > 90.0) peak = std::max(peak, s.value);
      }
      std::cout << kVariants[i] << ": nominal " << fmt(r.ttr.nominal_mbps)
                << " Mbps, post-disruption peak " << fmt(peak) << " Mbps, TTR "
                << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
                << "\n";
      report.add_cell(
          {{"profile", kVariants[i]}},
          {{"nominal_mbps", BenchReport::scalar(r.ttr.nominal_mbps)},
           {"post_disruption_peak_mbps", BenchReport::scalar(peak)},
           {"ttr_sec", BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds()
                                                     : -1.0)}});
    }
    note("Expect: without probing the peak stays at nominal (no overshoot).");
  }

  header("Ablation A2", "Teams controller swap vs TCP @ 2 Mbps");
  {
    const std::vector<std::string> kVariants = {"teams", "teams-gcc"};
    std::vector<CompetitionConfig> jobs;
    for (const auto& profile : kVariants) {
      CompetitionConfig cfg;
      cfg.incumbent = profile;
      cfg.competitor = CompetitorKind::kIperfUp;
      cfg.link = DataRate::mbps(2);
      cfg.seed = 41;
      jobs.push_back(cfg);
    }
    auto results = Sweep::run(jobs, run_competition, opts.jobs);
    report.begin_section("a2", "Teams controller swap vs TCP");
    for (size_t i = 0; i < jobs.size(); ++i) {
      const CompetitionResult& r = results[i];
      std::cout << kVariants[i] << ": uplink share "
                << fmt(r.incumbent_up_share) << ", downlink share "
                << fmt(r.incumbent_down_share) << "\n";
      report.add_cell(
          {{"profile", kVariants[i]}},
          {{"up_share", BenchReport::scalar(r.incumbent_up_share)},
           {"down_share", BenchReport::scalar(r.incumbent_down_share)}});
    }
    note("Expect: swapping the controller visibly changes how Teams shares "
         "with TCP (most dramatically on the downlink, where the "
         "conservative receiver-driven estimate collapses) — the behavior "
         "follows the controller, not the brand.");
  }

  header("Ablation A3",
         "Meet without simulcast: constrained downlink (0.5 Mbps)");
  {
    const std::vector<std::string> kVariants = {"meet", "meet-nosimulcast"};
    constexpr int kReps = 3;
    std::vector<TwoPartyConfig> jobs;
    for (const auto& profile : kVariants) {
      for (int rep = 0; rep < kReps; ++rep) {
        TwoPartyConfig cfg;
        cfg.profile = profile;
        cfg.seed = 60 + static_cast<uint64_t>(rep);
        cfg.c1_down = DataRate::kbps(500);
        jobs.push_back(cfg);
      }
    }
    auto results = Sweep::run(jobs, run_two_party, opts.jobs);
    report.begin_section("a3", "Meet simulcast ablation @ 0.5 Mbps downlink");
    size_t k = 0;
    for (const auto& profile : kVariants) {
      size_t cell_start = k;
      auto util = take(results, k, kReps, [](const TwoPartyResult& r) {
        return r.c1_down_mbps;
      });
      auto freeze = take(results, cell_start, kReps, [](const TwoPartyResult& r) {
        return 100.0 * r.c1_received.freeze_ratio;
      });
      std::cout << profile << ": downlink util " << fmt(mean_of(util))
                << " Mbps, freeze " << fmt(mean_of(freeze), 1) << "%\n";
      report.add_cell(
          {{"profile", profile}},
          {{"down_mbps", BenchReport::scalar(mean_of(util))},
           {"freeze_pct", BenchReport::scalar(mean_of(freeze))}});
    }
    note("Expect: without the low simulcast copy there is no clean fallback "
         "tier — the single stream rides the estimate and freezes more.");
  }
  return report.finish() ? 0 : 1;
}
