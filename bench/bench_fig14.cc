// Reproduces Figure 14: Zoom vs Netflix on a 0.5 Mbps link, plus the
// VCA-vs-streaming share table of §5.3 (Netflix and YouTube).
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
const std::vector<CompetitorKind> kStreamers = {CompetitorKind::kNetflix,
                                                CompetitorKind::kYoutube};
constexpr int kReps = 3;

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig14", opts);

  header("§5.3", "VCA vs video streaming @ 0.5 Mbps downlink share");
  {
    std::vector<CompetitionConfig> jobs;
    for (const auto& inc : kProfiles) {
      for (CompetitorKind kind : kStreamers) {
        for (int rep = 0; rep < kReps; ++rep) {
          CompetitionConfig cfg;
          cfg.incumbent = inc;
          cfg.competitor = kind;
          cfg.link = DataRate::kbps(500);
          cfg.seed = 2800 + static_cast<uint64_t>(rep);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_competition, opts.jobs);

    TextTable table({"VCA", "vs Netflix: VCA share [CI]",
                     "vs YouTube: VCA share [CI]"});
    report.begin_section("sec5.3", "VCA vs streaming downlink share @ 0.5");
    size_t k = 0;
    for (const auto& inc : kProfiles) {
      std::vector<std::string> row = {inc};
      std::vector<ConfidenceInterval> cis;
      for (CompetitorKind kind : kStreamers) {
        (void)kind;
        auto shares = take(results, k, kReps, [](const CompetitionResult& r) {
          return r.incumbent_down_share;
        });
        ConfidenceInterval ci = confidence_interval(shares);
        row.push_back(ci_cell(ci));
        cis.push_back(ci);
      }
      table.add_row(row);
      report.add_cell({{"vca", inc}},
                      {{"vs_netflix_down_share", cis[0]},
                       {"vs_youtube_down_share", cis[1]}});
    }
    table.print(std::cout);
    note("Expect: Meet and Zoom >75% against both streaming apps; Teams "
         "<25%.");
  }

  header("Figure 14a", "Zoom vs Netflix downstream timeseries @ 0.5 Mbps");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "zoom";
    cfg.competitor = CompetitorKind::kNetflix;
    cfg.link = DataRate::kbps(500);
    cfg.seed = 31;
    std::vector<CompetitionConfig> jobs = {cfg};
    CompetitionResult r = Sweep::run(jobs, run_competition, opts.jobs)[0];
    std::cout << "downlink (zoom/netflix Mbps):\n  ";
    const auto& a = r.incumbent_down_series.samples();
    const auto& b = r.competitor_down_series.samples();
    for (size_t i = 0; i < a.size() && i < b.size(); i += 10) {
      std::cout << static_cast<int>(a[i].at.seconds()) << ":"
                << fmt(a[i].value, 2) << "/" << fmt(b[i].value, 2) << " ";
    }
    std::cout << "\n";

    header("Figure 14b", "Netflix connection behavior under competition");
    std::cout << "TCP connections opened: " << r.competitor_connections
              << ", max parallel: " << r.competitor_max_parallel << "\n";
    report.begin_section("fig14", "Zoom vs Netflix @ 0.5 Mbps");
    report.add_cell(
        {{"vca", "zoom"}, {"competitor", "netflix"}},
        {{"vca_down_share", BenchReport::scalar(r.incumbent_down_share)},
         {"netflix_down_share", BenchReport::scalar(r.competitor_down_share)},
         {"netflix_connections",
          BenchReport::scalar(static_cast<double>(r.competitor_connections))},
         {"netflix_max_parallel",
          BenchReport::scalar(static_cast<double>(r.competitor_max_parallel))}});
    note("Expect: Zoom holds ~0.4 Mbps while Netflix struggles near ~0.1; "
         "Netflix opens tens of connections (paper: 28, up to 11 parallel) "
         "without improving its share.");
  }
  return report.finish() ? 0 : 1;
}
