// Reproduces Figure 14: Zoom vs Netflix on a 0.5 Mbps link, plus the
// VCA-vs-streaming share table of §5.3 (Netflix and YouTube).
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

constexpr int kReps = 3;

}  // namespace

int main() {
  header("§5.3", "VCA vs video streaming @ 0.5 Mbps downlink share");
  {
    TextTable table({"VCA", "vs Netflix: VCA share [CI]",
                     "vs YouTube: VCA share [CI]"});
    for (const std::string inc : {"meet", "teams", "zoom"}) {
      std::vector<std::string> row = {inc};
      for (CompetitorKind kind :
           {CompetitorKind::kNetflix, CompetitorKind::kYoutube}) {
        std::vector<double> shares;
        for (int rep = 0; rep < kReps; ++rep) {
          CompetitionConfig cfg;
          cfg.incumbent = inc;
          cfg.competitor = kind;
          cfg.link = DataRate::kbps(500);
          cfg.seed = 2800 + static_cast<uint64_t>(rep);
          CompetitionResult r = run_competition(cfg);
          shares.push_back(r.incumbent_down_share);
        }
        row.push_back(ci_cell(confidence_interval(shares)));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: Meet and Zoom >75% against both streaming apps; Teams "
         "<25%.");
  }

  header("Figure 14a", "Zoom vs Netflix downstream timeseries @ 0.5 Mbps");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "zoom";
    cfg.competitor = CompetitorKind::kNetflix;
    cfg.link = DataRate::kbps(500);
    cfg.seed = 31;
    CompetitionResult r = run_competition(cfg);
    std::cout << "downlink (zoom/netflix Mbps):\n  ";
    const auto& a = r.incumbent_down_series.samples();
    const auto& b = r.competitor_down_series.samples();
    for (size_t i = 0; i < a.size() && i < b.size(); i += 10) {
      std::cout << static_cast<int>(a[i].at.seconds()) << ":"
                << fmt(a[i].value, 2) << "/" << fmt(b[i].value, 2) << " ";
    }
    std::cout << "\n";

    header("Figure 14b", "Netflix connection behavior under competition");
    std::cout << "TCP connections opened: " << r.competitor_connections
              << ", max parallel: " << r.competitor_max_parallel << "\n";
    note("Expect: Zoom holds ~0.4 Mbps while Netflix struggles near ~0.1; "
         "Netflix opens tens of connections (paper: 28, up to 11 parallel) "
         "without improving its share.");
  }
  return 0;
}
