// Reproduces Figure 2: video encoding parameters (FPS, QP, frame width)
// under downstream (2a-2c) and upstream (2d-2f) throughput constraints,
// for the two VCAs with WebRTC stats access: Meet and Teams-Chrome.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCaps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                   0.9, 1.0, 1.2, 1.5, 2.0};
constexpr int kReps = 5;

struct Point {
  ConfidenceInterval fps, qp, width;
};

Point sweep_point(const std::string& profile, double cap, bool uplink) {
  std::vector<double> fps, qp, width;
  for (int rep = 0; rep < kReps; ++rep) {
    TwoPartyConfig cfg;
    cfg.profile = profile;
    cfg.seed = 900 + static_cast<uint64_t>(rep);
    if (uplink) {
      cfg.c1_up = DataRate::mbps_d(cap);
    } else {
      cfg.c1_down = DataRate::mbps_d(cap);
    }
    TwoPartyResult r = run_two_party(cfg);
    // Downstream constraint: C1's *received* stream degrades (2a-2c).
    // Upstream constraint: C1's *sent* stream, observed at C2 (2d-2f).
    const FeedQuality& q = uplink ? r.c2_received : r.c1_received;
    fps.push_back(q.median_fps);
    qp.push_back(q.median_qp);
    width.push_back(q.median_width);
  }
  return {confidence_interval(fps), confidence_interval(qp),
          confidence_interval(width)};
}

void sweep(bool uplink) {
  for (const std::string profile : {"meet", "teams-chrome"}) {
    TextTable table({uplink ? "uplink cap (Mbps)" : "downlink cap (Mbps)",
                     "FPS [90% CI]", "QP [90% CI]", "width [90% CI]"});
    for (double cap : kCaps) {
      Point pt = sweep_point(profile, cap, uplink);
      table.add_row({fmt(cap, 1), ci_cell(pt.fps, 1), ci_cell(pt.qp, 1),
                     ci_cell(pt.width, 0)});
    }
    note(profile + ":");
    table.print(std::cout);
  }
}

}  // namespace

int main() {
  header("Figure 2a-2c", "Encoding parameters vs downstream capacity");
  sweep(/*uplink=*/false);
  note("Expect (paper): Meet holds width/QP and drops FPS in 0.7-1.0 Mbps "
       "(SFU temporal thinning), switches to the 320-wide copy below ~0.7; "
       "Teams-Chrome degrades all three together with wide CIs.");

  header("Figure 2d-2f", "Encoding parameters vs upstream capacity");
  sweep(/*uplink=*/true);
  note("Expect (paper): Teams keeps FPS roughly flat, raises QP, lowers "
       "width — EXCEPT at 0.3 Mbps where width jumps back up (emulated "
       "bug); Meet raises QP first, drops width+FPS at ~0.4 Mbps.");
  return 0;
}
