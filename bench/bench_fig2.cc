// Reproduces Figure 2: video encoding parameters (FPS, QP, frame width)
// under downstream (2a-2c) and upstream (2d-2f) throughput constraints,
// for the two VCAs with WebRTC stats access: Meet and Teams-Chrome.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCaps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                   0.9, 1.0, 1.2, 1.5, 2.0};
constexpr int kReps = 5;
const std::vector<std::string> kProfiles = {"meet", "teams-chrome"};

void sweep(BenchReport& report, const SweepOptions& opts,
           const std::string& section_prefix, bool uplink) {
  std::vector<TwoPartyConfig> jobs;
  for (const auto& profile : kProfiles) {
    for (double cap : kCaps) {
      for (int rep = 0; rep < kReps; ++rep) {
        TwoPartyConfig cfg;
        cfg.profile = profile;
        cfg.seed = 900 + static_cast<uint64_t>(rep);
        if (uplink) {
          cfg.c1_up = DataRate::mbps_d(cap);
        } else {
          cfg.c1_down = DataRate::mbps_d(cap);
        }
        jobs.push_back(cfg);
      }
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  size_t k = 0;
  for (const auto& profile : kProfiles) {
    TextTable table({uplink ? "uplink cap (Mbps)" : "downlink cap (Mbps)",
                     "FPS [90% CI]", "QP [90% CI]", "width [90% CI]"});
    report.begin_section(section_prefix + "-" + profile, profile);
    for (double cap : kCaps) {
      // Downstream constraint: C1's *received* stream degrades (2a-2c).
      // Upstream constraint: C1's *sent* stream, observed at C2 (2d-2f).
      auto feed = [&](const TwoPartyResult& r) -> const FeedQuality& {
        return uplink ? r.c2_received : r.c1_received;
      };
      size_t k_qp = k, k_w = k;
      auto fps = take(results, k, kReps,
                      [&](const TwoPartyResult& r) { return feed(r).median_fps; });
      auto qp = take(results, k_qp, kReps,
                     [&](const TwoPartyResult& r) { return feed(r).median_qp; });
      auto width = take(results, k_w, kReps, [&](const TwoPartyResult& r) {
        return feed(r).median_width;
      });
      ConfidenceInterval fps_ci = confidence_interval(fps);
      ConfidenceInterval qp_ci = confidence_interval(qp);
      ConfidenceInterval width_ci = confidence_interval(width);
      table.add_row({fmt(cap, 1), ci_cell(fps_ci, 1), ci_cell(qp_ci, 1),
                     ci_cell(width_ci, 0)});
      report.add_cell({{"cap_mbps", fmt(cap, 1)}, {"profile", profile}},
                      {{"fps", fps_ci}, {"qp", qp_ci}, {"width", width_ci}});
    }
    note(profile + ":");
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig2", opts);

  header("Figure 2a-2c", "Encoding parameters vs downstream capacity");
  sweep(report, opts, "fig2abc", /*uplink=*/false);
  note("Expect (paper): Meet holds width/QP and drops FPS in 0.7-1.0 Mbps "
       "(SFU temporal thinning), switches to the 320-wide copy below ~0.7; "
       "Teams-Chrome degrades all three together with wide CIs.");

  header("Figure 2d-2f", "Encoding parameters vs upstream capacity");
  sweep(report, opts, "fig2def", /*uplink=*/true);
  note("Expect (paper): Teams keeps FPS roughly flat, raises QP, lowers "
       "width — EXCEPT at 0.3 Mbps where width jumps back up (emulated "
       "bug); Meet raises QP first, drops width+FPS at ~0.4 Mbps.");
  return report.finish() ? 0 : 1;
}
