// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary follows the same shape since the sweep migration:
// enumerate the full (config, seed, rep) job list up front, run it
// through Sweep::run (--jobs N workers, share-nothing sims), then
// aggregate sequentially from the submission-ordered results — so the
// printed tables and the --json file are byte-identical at any job
// count.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/stats_math.h"
#include "harness/sweep.h"
#include "stats/table.h"

namespace vca::bench {

inline std::string ci_cell(const ConfidenceInterval& ci, int prec = 2) {
  return fmt(ci.mean, prec) + " [" + fmt(ci.lo, prec) + "," +
         fmt(ci.hi, prec) + "]";
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

// Consume the next `n` submission-ordered sweep results, mapped through
// `get`. Aggregation loops advance `k` exactly as the job-building loops
// did, so cell boundaries can never drift.
template <typename Result, typename Get>
std::vector<double> take(const std::vector<Result>& results, size_t& k, int n,
                         Get get) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(get(results[k++]));
  return out;
}

}  // namespace vca::bench
