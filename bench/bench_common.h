// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/stats_math.h"
#include "stats/table.h"

namespace vca::bench {

inline std::string ci_cell(const ConfidenceInterval& ci, int prec = 2) {
  return fmt(ci.mean, prec) + " [" + fmt(ci.lo, prec) + "," +
         fmt(ci.hi, prec) + "]";
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

}  // namespace vca::bench
