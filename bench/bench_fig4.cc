// Reproduces Figure 4: response to a 30-second uplink capacity reduction.
//   4a: upstream bitrate over time around a drop to 0.25 Mbps
//   4b: time to recovery (TTR) vs drop severity, 4 repetitions
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
const std::vector<double> kDrops = {0.25, 0.5, 0.75, 1.0};
constexpr int kReps = 4;

void timeseries_panel(BenchReport& report, const SweepOptions& opts,
                      bool uplink) {
  // One run per VCA, printed as a 5-second-bucket series around the drop.
  std::vector<DisruptionConfig> jobs;
  for (const auto& profile : kProfiles) {
    DisruptionConfig cfg;
    cfg.profile = profile;
    cfg.seed = 7;
    cfg.uplink = uplink;
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_disruption, opts.jobs);

  report.begin_section("fig4a", "Bitrate around a 30 s drop to 0.25 Mbps");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const DisruptionResult& r = results[i];
    std::cout << kProfiles[i] << " (nominal " << fmt(r.ttr.nominal_mbps)
              << " Mbps, TTR "
              << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
              << "):\n  t(s):rate(Mbps) ";
    const auto& s = r.disrupted_series.samples();
    for (size_t j = 0; j < s.size(); j += 10) {  // every 5 s (0.5 s buckets)
      std::cout << static_cast<int>(s[j].at.seconds()) << ":"
                << fmt(s[j].value, 2) << " ";
    }
    std::cout << "\n";
    report.add_cell(
        {{"profile", kProfiles[i]}},
        {{"nominal_mbps", BenchReport::scalar(r.ttr.nominal_mbps)},
         {"ttr_sec", BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds()
                                                   : -1.0)}});
  }
}

void ttr_panel(BenchReport& report, const SweepOptions& opts, bool uplink) {
  std::vector<DisruptionConfig> jobs;
  for (double drop : kDrops) {
    for (const auto& profile : kProfiles) {
      for (int rep = 0; rep < kReps; ++rep) {
        DisruptionConfig cfg;
        cfg.profile = profile;
        cfg.seed = 1500 + static_cast<uint64_t>(rep);
        cfg.uplink = uplink;
        cfg.drop_to = DataRate::mbps_d(drop);
        jobs.push_back(cfg);
      }
    }
  }
  auto results = Sweep::run(jobs, run_disruption, opts.jobs);

  TextTable table({uplink ? "drop to (Mbps), uplink" : "drop to (Mbps), downlink",
                   "meet TTR s [CI]", "teams TTR s [CI]", "zoom TTR s [CI]"});
  report.begin_section("fig4b", "Time to recovery vs drop severity");
  size_t k = 0;
  for (double drop : kDrops) {
    std::vector<std::string> row = {fmt(drop, 2)};
    for (const auto& profile : kProfiles) {
      // Censored runs count as the remaining call time (conservative).
      auto ttrs = take(results, k, kReps, [](const DisruptionResult& r) {
        return r.ttr.ttr ? r.ttr.ttr->seconds() : 210.0;
      });
      ConfidenceInterval ci = confidence_interval(ttrs);
      row.push_back(ci_cell(ci, 1));
      report.add_cell({{"drop_mbps", fmt(drop, 2)}, {"profile", profile}},
                      {{"ttr_sec", ci}});
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig4", opts);

  header("Figure 4a", "Upstream bitrate around a 30 s uplink drop to 0.25 Mbps");
  timeseries_panel(report, opts, /*uplink=*/true);
  note("Expect: Teams ramps slowly-then-fast; Zoom climbs linearly, then "
       "steps past its nominal rate (probe overshoot) before settling.");

  header("Figure 4b", "Time to recovery vs uplink drop severity");
  ttr_panel(report, opts, /*uplink=*/true);
  note("Expect: all VCAs >= ~20 s at 0.25 Mbps; Zoom slowest at severe "
       "drops; Meet fast at mild drops (nominal below 1 Mbps).");
  return report.finish() ? 0 : 1;
}
