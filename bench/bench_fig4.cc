// Reproduces Figure 4: response to a 30-second uplink capacity reduction.
//   4a: upstream bitrate over time around a drop to 0.25 Mbps
//   4b: time to recovery (TTR) vs drop severity, 4 repetitions
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

void timeseries_panel(bool uplink) {
  // One run per VCA, printed as a 5-second-bucket series around the drop.
  for (const std::string profile : {"meet", "teams", "zoom"}) {
    DisruptionConfig cfg;
    cfg.profile = profile;
    cfg.seed = 7;
    cfg.uplink = uplink;
    DisruptionResult r = run_disruption(cfg);
    std::cout << profile << " (nominal " << fmt(r.ttr.nominal_mbps)
              << " Mbps, TTR "
              << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
              << "):\n  t(s):rate(Mbps) ";
    const auto& s = r.disrupted_series.samples();
    for (size_t i = 0; i < s.size(); i += 10) {  // every 5 s (0.5 s buckets)
      std::cout << static_cast<int>(s[i].at.seconds()) << ":"
                << fmt(s[i].value, 2) << " ";
    }
    std::cout << "\n";
  }
}

void ttr_panel(bool uplink) {
  TextTable table({uplink ? "drop to (Mbps), uplink" : "drop to (Mbps), downlink",
                   "meet TTR s [CI]", "teams TTR s [CI]", "zoom TTR s [CI]"});
  for (double drop : {0.25, 0.5, 0.75, 1.0}) {
    std::vector<std::string> row = {fmt(drop, 2)};
    for (const std::string profile : {"meet", "teams", "zoom"}) {
      std::vector<double> ttrs;
      for (int rep = 0; rep < 4; ++rep) {
        DisruptionConfig cfg;
        cfg.profile = profile;
        cfg.seed = 1500 + static_cast<uint64_t>(rep);
        cfg.uplink = uplink;
        cfg.drop_to = DataRate::mbps_d(drop);
        DisruptionResult r = run_disruption(cfg);
        // Censored runs count as the remaining call time (conservative).
        ttrs.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 210.0);
      }
      row.push_back(ci_cell(confidence_interval(ttrs), 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  header("Figure 4a", "Upstream bitrate around a 30 s uplink drop to 0.25 Mbps");
  timeseries_panel(/*uplink=*/true);
  note("Expect: Teams ramps slowly-then-fast; Zoom climbs linearly, then "
       "steps past its nominal rate (probe overshoot) before settling.");

  header("Figure 4b", "Time to recovery vs uplink drop severity");
  ttr_panel(/*uplink=*/true);
  note("Expect: all VCAs >= ~20 s at 0.25 Mbps; Zoom slowest at severe "
       "drops; Meet fast at mild drops (nominal below 1 Mbps).");
  return 0;
}
