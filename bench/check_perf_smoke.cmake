# ctest script: scheduler-churn throughput must stay above a floor set at
# ~50% of the committed post-overhaul baseline (BENCH_microsim.json), so a
# hot-path regression fails CI well before it halves the sweep suite's
# wall time. Run as:
#   cmake -DBENCH=<bench_microsim> -DWORKDIR=<dir> -P check_perf_smoke.cmake
#
# Registered only for non-sanitizer presets: sanitizer instrumentation
# slows the scheduler by an order of magnitude and would make any floor
# meaningless. Refresh the floor alongside BENCH_microsim.json (see
# bench/README.md).
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<binary> -DWORKDIR=<dir> -P "
                      "check_perf_smoke.cmake")
endif()

# Committed baseline: ~95M events/s for BM_SchedulerChurn/100000
# (BENCH_microsim.json). The floor leaves 2x headroom for slower CI
# hosts while still catching any change that reintroduces per-event
# allocation or copy traffic.
set(floor_events_per_sec 47000000)

set(json "${WORKDIR}/perf_smoke.json")
execute_process(
  COMMAND "${BENCH}" --benchmark_filter=BM_SchedulerChurn/100000
          --benchmark_format=json --benchmark_out=${json}
          --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_microsim failed (rc=${rc}):\n${err}")
endif()

file(READ "${json}" doc)
string(JSON n_benchmarks LENGTH "${doc}" benchmarks)
set(best 0)
math(EXPR last "${n_benchmarks} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${doc}" benchmarks ${i} name)
  if(name MATCHES "_median$")
    string(JSON best GET "${doc}" benchmarks ${i} items_per_second)
  endif()
endforeach()

if(best EQUAL 0)
  message(FATAL_ERROR "no BM_SchedulerChurn median in ${json}")
endif()
if(best LESS ${floor_events_per_sec})
  message(FATAL_ERROR
    "scheduler churn regressed: ${best} events/s is below the "
    "${floor_events_per_sec} floor (~50% of the committed baseline in "
    "BENCH_microsim.json). If the slowdown is intentional, refresh the "
    "baseline and this floor together (bench/README.md).")
endif()
message(STATUS "perf-smoke: ${best} events/s >= ${floor_events_per_sec} floor")
