// Reproduces Figures 10 and 11: downlink competition, and Teams'
// direction asymmetry.
//   10a/10b: share of downlink capacity under VCA vs VCA @ 0.5 Mbps
//   11a/11b: Teams (incumbent) vs Zoom @ 1 Mbps: uplink fair, downlink starved
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 3;

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig10_11", opts);

  header("Figure 10", "Downlink share under VCA vs VCA competition @ 0.5 Mbps");
  {
    std::vector<CompetitionConfig> jobs;
    for (const auto& inc : kProfiles) {
      for (const auto& comp : kProfiles) {
        for (int rep = 0; rep < kReps; ++rep) {
          CompetitionConfig cfg;
          cfg.incumbent = inc;
          cfg.competitor = CompetitorKind::kVca;
          cfg.competitor_profile = comp;
          cfg.link = DataRate::kbps(500);
          cfg.seed = 2300 + static_cast<uint64_t>(rep);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_competition, opts.jobs);

    TextTable table({"incumbent", "competitor", "incumbent down share [CI]",
                     "competitor down share [CI]"});
    report.begin_section("fig10", "Downlink share, VCA vs VCA @ 0.5 Mbps");
    size_t k = 0;
    for (const auto& inc : kProfiles) {
      for (const auto& comp : kProfiles) {
        size_t cell_start = k;
        auto inc_share = take(results, k, kReps, [](const CompetitionResult& r) {
          return r.incumbent_down_share;
        });
        auto comp_share =
            take(results, cell_start, kReps, [](const CompetitionResult& r) {
              return r.competitor_down_share;
            });
        ConfidenceInterval inc_ci = confidence_interval(inc_share);
        ConfidenceInterval comp_ci = confidence_interval(comp_share);
        table.add_row({inc, comp, ci_cell(inc_ci), ci_cell(comp_ci)});
        report.add_cell({{"incumbent", inc}, {"competitor", comp}},
                        {{"incumbent_down_share", inc_ci},
                         {"competitor_down_share", comp_ci}});
      }
    }
    table.print(std::cout);
    note("Expect: Teams is passive on the downlink — ~20% against Meet/Zoom "
         "and backing off even to another Teams; Zoom/Meet behave like the "
         "uplink case.");
  }

  header("Figure 11", "Teams incumbent vs Zoom on a 1 Mbps symmetric link");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "teams";
    cfg.competitor = CompetitorKind::kVca;
    cfg.competitor_profile = "zoom";
    cfg.link = DataRate::mbps(1);
    cfg.seed = 17;
    std::vector<CompetitionConfig> jobs = {cfg};
    CompetitionResult r = Sweep::run(jobs, run_competition, opts.jobs)[0];
    std::cout << "uplink (teams/zoom Mbps):\n  ";
    const auto& au = r.incumbent_up_series.samples();
    const auto& bu = r.competitor_up_series.samples();
    for (size_t i = 0; i < au.size() && i < bu.size(); i += 10) {
      std::cout << static_cast<int>(au[i].at.seconds()) << ":"
                << fmt(au[i].value, 2) << "/" << fmt(bu[i].value, 2) << " ";
    }
    std::cout << "\ndownlink (teams/zoom Mbps):\n  ";
    const auto& ad = r.incumbent_down_series.samples();
    const auto& bd = r.competitor_down_series.samples();
    for (size_t i = 0; i < ad.size() && i < bd.size(); i += 10) {
      std::cout << static_cast<int>(ad[i].at.seconds()) << ":"
                << fmt(ad[i].value, 2) << "/" << fmt(bd[i].value, 2) << " ";
    }
    std::cout << "\n";
    report.begin_section("fig11", "Teams incumbent vs Zoom @ 1 Mbps");
    report.add_cell(
        {{"incumbent", "teams"}, {"competitor", "zoom"}},
        {{"incumbent_up_share", BenchReport::scalar(r.incumbent_up_share)},
         {"competitor_up_share", BenchReport::scalar(r.competitor_up_share)},
         {"incumbent_down_share", BenchReport::scalar(r.incumbent_down_share)},
         {"competitor_down_share",
          BenchReport::scalar(r.competitor_down_share)}});
    note("Expect: near-fair convergence on the uplink; on the downlink the "
         "Teams client collapses to ~0.2 Mbps once Zoom joins.");
  }
  return report.finish() ? 0 : 1;
}
