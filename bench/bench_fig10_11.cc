// Reproduces Figures 10 and 11: downlink competition, and Teams'
// direction asymmetry.
//   10a/10b: share of downlink capacity under VCA vs VCA @ 0.5 Mbps
//   11a/11b: Teams (incumbent) vs Zoom @ 1 Mbps: uplink fair, downlink starved
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

constexpr int kReps = 3;

}  // namespace

int main() {
  header("Figure 10", "Downlink share under VCA vs VCA competition @ 0.5 Mbps");
  TextTable table({"incumbent", "competitor", "incumbent down share [CI]",
                   "competitor down share [CI]"});
  for (const std::string inc : {"meet", "teams", "zoom"}) {
    for (const std::string comp : {"meet", "teams", "zoom"}) {
      std::vector<double> inc_share, comp_share;
      for (int rep = 0; rep < kReps; ++rep) {
        CompetitionConfig cfg;
        cfg.incumbent = inc;
        cfg.competitor = CompetitorKind::kVca;
        cfg.competitor_profile = comp;
        cfg.link = DataRate::kbps(500);
        cfg.seed = 2300 + static_cast<uint64_t>(rep);
        CompetitionResult r = run_competition(cfg);
        inc_share.push_back(r.incumbent_down_share);
        comp_share.push_back(r.competitor_down_share);
      }
      table.add_row({inc, comp, ci_cell(confidence_interval(inc_share)),
                     ci_cell(confidence_interval(comp_share))});
    }
  }
  table.print(std::cout);
  note("Expect: Teams is passive on the downlink — ~20% against Meet/Zoom "
       "and backing off even to another Teams; Zoom/Meet behave like the "
       "uplink case.");

  header("Figure 11", "Teams incumbent vs Zoom on a 1 Mbps symmetric link");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "teams";
    cfg.competitor = CompetitorKind::kVca;
    cfg.competitor_profile = "zoom";
    cfg.link = DataRate::mbps(1);
    cfg.seed = 17;
    CompetitionResult r = run_competition(cfg);
    std::cout << "uplink (teams/zoom Mbps):\n  ";
    const auto& au = r.incumbent_up_series.samples();
    const auto& bu = r.competitor_up_series.samples();
    for (size_t i = 0; i < au.size() && i < bu.size(); i += 10) {
      std::cout << static_cast<int>(au[i].at.seconds()) << ":"
                << fmt(au[i].value, 2) << "/" << fmt(bu[i].value, 2) << " ";
    }
    std::cout << "\ndownlink (teams/zoom Mbps):\n  ";
    const auto& ad = r.incumbent_down_series.samples();
    const auto& bd = r.competitor_down_series.samples();
    for (size_t i = 0; i < ad.size() && i < bd.size(); i += 10) {
      std::cout << static_cast<int>(ad[i].at.seconds()) << ":"
                << fmt(ad[i].value, 2) << "/" << fmt(bd[i].value, 2) << " ";
    }
    std::cout << "\n";
    note("Expect: near-fair convergence on the uplink; on the downlink the "
         "Teams client collapses to ~0.2 Mbps once Zoom joins.");
  }
  return 0;
}
