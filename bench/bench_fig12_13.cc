// Reproduces Figures 12 and 13: VCA vs a long TCP (iPerf3) flow.
//   12a/12b: link share on a 2 Mbps symmetric link, uplink and downlink
//   13: Zoom's probe bursts collapsing iPerf3 on a 0.5 Mbps link
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 3;

// Jobs are laid out as (up, down) pairs per rep: index 2*rep is the
// kIperfUp run, 2*rep+1 the kIperfDown run with the same seed.
std::vector<CompetitionConfig> iperf_pairs(DataRate link, uint64_t seed_base) {
  std::vector<CompetitionConfig> jobs;
  for (const auto& inc : kProfiles) {
    for (int rep = 0; rep < kReps; ++rep) {
      CompetitionConfig cfg;
      cfg.incumbent = inc;
      cfg.link = link;
      cfg.seed = seed_base + static_cast<uint64_t>(rep);
      cfg.competitor = CompetitorKind::kIperfUp;
      jobs.push_back(cfg);
      cfg.competitor = CompetitorKind::kIperfDown;
      jobs.push_back(cfg);
    }
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig12_13", opts);

  header("Figure 12", "iPerf3 link sharing with VCAs on a 2 Mbps link");
  {
    auto jobs = iperf_pairs(DataRate::mbps(2), 2500);
    auto results = Sweep::run(jobs, run_competition, opts.jobs);

    TextTable table({"VCA", "VCA up share [CI]", "iperf up share [CI]",
                     "VCA down share [CI]", "iperf down share [CI]"});
    report.begin_section("fig12", "iPerf3 link sharing @ 2 Mbps");
    size_t k = 0;
    for (const auto& inc : kProfiles) {
      std::vector<double> vu, iu, vd, id;
      for (int rep = 0; rep < kReps; ++rep) {
        const CompetitionResult& up = results[k++];
        const CompetitionResult& down = results[k++];
        vu.push_back(up.incumbent_up_share);
        iu.push_back(up.competitor_up_share);
        vd.push_back(down.incumbent_down_share);
        id.push_back(down.competitor_down_share);
      }
      ConfidenceInterval vu_ci = confidence_interval(vu);
      ConfidenceInterval iu_ci = confidence_interval(iu);
      ConfidenceInterval vd_ci = confidence_interval(vd);
      ConfidenceInterval id_ci = confidence_interval(id);
      table.add_row({inc, ci_cell(vu_ci), ci_cell(iu_ci), ci_cell(vd_ci),
                     ci_cell(id_ci)});
      report.add_cell({{"vca", inc}},
                      {{"vca_up_share", vu_ci},
                       {"iperf_up_share", iu_ci},
                       {"vca_down_share", vd_ci},
                       {"iperf_down_share", id_ci}});
    }
    table.print(std::cout);
    note("Expect: at 2 Mbps Meet and Zoom reach their nominal rates and "
         "iPerf3 takes the rest; Teams is passive — ~37% uplink and ~20% "
         "downlink of capacity.");
  }

  header("Figure 12 (scarce)", "iPerf3 vs VCAs on a 0.5 Mbps link");
  {
    auto jobs = iperf_pairs(DataRate::kbps(500), 2600);
    auto results = Sweep::run(jobs, run_competition, opts.jobs);

    TextTable table({"VCA", "VCA up share [CI]", "VCA down share [CI]"});
    report.begin_section("fig12-scarce", "iPerf3 vs VCAs @ 0.5 Mbps");
    size_t k = 0;
    for (const auto& inc : kProfiles) {
      std::vector<double> vu, vd;
      for (int rep = 0; rep < kReps; ++rep) {
        vu.push_back(results[k++].incumbent_up_share);
        vd.push_back(results[k++].incumbent_down_share);
      }
      ConfidenceInterval vu_ci = confidence_interval(vu);
      ConfidenceInterval vd_ci = confidence_interval(vd);
      table.add_row({inc, ci_cell(vu_ci), ci_cell(vd_ci)});
      report.add_cell({{"vca", inc}},
                      {{"vca_up_share", vu_ci}, {"vca_down_share", vd_ci}});
    }
    table.print(std::cout);
    note("Expect: Zoom >75% in both directions; Meet TCP-friendly on the "
         "uplink but ~75% on the downlink; Teams passive everywhere.");
  }

  header("Figure 13", "Zoom probing vs iPerf3 on a 0.5 Mbps link (timeseries)");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "zoom";
    cfg.competitor = CompetitorKind::kIperfUp;
    cfg.link = DataRate::kbps(500);
    cfg.seed = 23;
    std::vector<CompetitionConfig> jobs = {cfg};
    CompetitionResult r = Sweep::run(jobs, run_competition, opts.jobs)[0];
    std::cout << "uplink (zoom/iperf Mbps):\n  ";
    const auto& a = r.incumbent_up_series.samples();
    const auto& b = r.competitor_up_series.samples();
    for (size_t i = 0; i < a.size() && i < b.size(); i += 10) {
      std::cout << static_cast<int>(a[i].at.seconds()) << ":"
                << fmt(a[i].value, 2) << "/" << fmt(b[i].value, 2) << " ";
    }
    std::cout << "\n";
    report.begin_section("fig13", "Zoom probing vs iPerf3 @ 0.5 Mbps");
    report.add_cell(
        {{"vca", "zoom"}},
        {{"vca_up_share", BenchReport::scalar(r.incumbent_up_share)},
         {"iperf_up_share", BenchReport::scalar(r.competitor_up_share)}});
    note("Expect: periods where Zoom's stepwise probe bursts drive the "
         "iPerf3 throughput down sharply.");
  }
  return report.finish() ? 0 : 1;
}
