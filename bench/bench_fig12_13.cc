// Reproduces Figures 12 and 13: VCA vs a long TCP (iPerf3) flow.
//   12a/12b: link share on a 2 Mbps symmetric link, uplink and downlink
//   13: Zoom's probe bursts collapsing iPerf3 on a 0.5 Mbps link
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

constexpr int kReps = 3;

}  // namespace

int main() {
  header("Figure 12", "iPerf3 link sharing with VCAs on a 2 Mbps link");
  {
    TextTable table({"VCA", "VCA up share [CI]", "iperf up share [CI]",
                     "VCA down share [CI]", "iperf down share [CI]"});
    for (const std::string inc : {"meet", "teams", "zoom"}) {
      std::vector<double> vu, iu, vd, id;
      for (int rep = 0; rep < kReps; ++rep) {
        CompetitionConfig cfg;
        cfg.incumbent = inc;
        cfg.link = DataRate::mbps(2);
        cfg.seed = 2500 + static_cast<uint64_t>(rep);
        cfg.competitor = CompetitorKind::kIperfUp;      // uplink experiment
        CompetitionResult up = run_competition(cfg);
        cfg.competitor = CompetitorKind::kIperfDown;    // downlink experiment
        CompetitionResult down = run_competition(cfg);
        vu.push_back(up.incumbent_up_share);
        iu.push_back(up.competitor_up_share);
        vd.push_back(down.incumbent_down_share);
        id.push_back(down.competitor_down_share);
      }
      table.add_row({inc, ci_cell(confidence_interval(vu)),
                     ci_cell(confidence_interval(iu)),
                     ci_cell(confidence_interval(vd)),
                     ci_cell(confidence_interval(id))});
    }
    table.print(std::cout);
    note("Expect: at 2 Mbps Meet and Zoom reach their nominal rates and "
         "iPerf3 takes the rest; Teams is passive — ~37% uplink and ~20% "
         "downlink of capacity.");
  }

  header("Figure 12 (scarce)", "iPerf3 vs VCAs on a 0.5 Mbps link");
  {
    TextTable table({"VCA", "VCA up share [CI]", "VCA down share [CI]"});
    for (const std::string inc : {"meet", "teams", "zoom"}) {
      std::vector<double> vu, vd;
      for (int rep = 0; rep < kReps; ++rep) {
        CompetitionConfig cfg;
        cfg.incumbent = inc;
        cfg.link = DataRate::kbps(500);
        cfg.seed = 2600 + static_cast<uint64_t>(rep);
        cfg.competitor = CompetitorKind::kIperfUp;
        vu.push_back(run_competition(cfg).incumbent_up_share);
        cfg.competitor = CompetitorKind::kIperfDown;
        vd.push_back(run_competition(cfg).incumbent_down_share);
      }
      table.add_row({inc, ci_cell(confidence_interval(vu)),
                     ci_cell(confidence_interval(vd))});
    }
    table.print(std::cout);
    note("Expect: Zoom >75% in both directions; Meet TCP-friendly on the "
         "uplink but ~75% on the downlink; Teams passive everywhere.");
  }

  header("Figure 13", "Zoom probing vs iPerf3 on a 0.5 Mbps link (timeseries)");
  {
    CompetitionConfig cfg;
    cfg.incumbent = "zoom";
    cfg.competitor = CompetitorKind::kIperfUp;
    cfg.link = DataRate::kbps(500);
    cfg.seed = 23;
    CompetitionResult r = run_competition(cfg);
    std::cout << "uplink (zoom/iperf Mbps):\n  ";
    const auto& a = r.incumbent_up_series.samples();
    const auto& b = r.competitor_up_series.samples();
    for (size_t i = 0; i < a.size() && i < b.size(); i += 10) {
      std::cout << static_cast<int>(a[i].at.seconds()) << ":"
                << fmt(a[i].value, 2) << "/" << fmt(b[i].value, 2) << " ";
    }
    std::cout << "\n";
    note("Expect: periods where Zoom's stepwise probe bursts drive the "
         "iPerf3 throughput down sharply.");
  }
  return 0;
}
