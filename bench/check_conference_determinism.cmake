# ctest script: bench_conference must be byte-identical across --jobs 1
# and --jobs 8 (stdout and --json, minus the run-dependent "timing"
# line) — the cascaded-fleet sims may not depend on worker scheduling.
# Run as:
#   cmake -DBENCH=<bench_conference> -DWORKDIR=<dir> -P this_script
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<binary> -DWORKDIR=<dir> -P "
                      "check_conference_determinism.cmake")
endif()

set(json1 "${WORKDIR}/conference_det_j1.json")
set(json8 "${WORKDIR}/conference_det_j8.json")

execute_process(
  COMMAND "${BENCH}" --quick --jobs 1 --json "${json1}"
  OUTPUT_VARIABLE out1 RESULT_VARIABLE rc1 ERROR_VARIABLE err1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "bench_conference --jobs 1 failed (rc=${rc1}):\n${err1}")
endif()

execute_process(
  COMMAND "${BENCH}" --quick --jobs 8 --json "${json8}"
  OUTPUT_VARIABLE out8 RESULT_VARIABLE rc8 ERROR_VARIABLE err8)
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "bench_conference --jobs 8 failed (rc=${rc8}):\n${err8}")
endif()

if(NOT out1 STREQUAL out8)
  message(FATAL_ERROR "bench_conference stdout differs between --jobs 1 and "
                      "--jobs 8:\n--- jobs 1 ---\n${out1}\n--- jobs 8 ---\n"
                      "${out8}")
endif()

file(READ "${json1}" j1)
file(READ "${json8}" j8)
# The timing block is the single run-dependent line in the report.
string(REGEX REPLACE "[^\n]*\"timing\"[^\n]*" "" j1 "${j1}")
string(REGEX REPLACE "[^\n]*\"timing\"[^\n]*" "" j8 "${j8}")
if(NOT j1 STREQUAL j8)
  message(FATAL_ERROR "bench_conference --json differs between --jobs 1 and "
                      "--jobs 8 after stripping the timing line")
endif()

message(STATUS "bench_conference deterministic across --jobs 1 and --jobs 8")
