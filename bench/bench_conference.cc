// City-scale cascaded-SFU conference sweeps (Chang et al., "Can You See
// Me Now?"): per-client bitrate vs conference size, SFU load vs local
// fanout, relay-link cost vs region count, and gallery vs speaker layout.
//
//   --quick  trims every grid for the CI determinism gate
//   --perf   one fixed conference run; prints deterministic totals on
//            stdout (CONF_PERF ...) and the wall-clock figures on stderr
//            (CONF_PERF_TIMING ...), so byte-comparing stdout across
//            --shards counts is the sharded-engine identity gate while
//            the timing line feeds the perf-floor/regression gates.
//            Shape flags: --participants N --regions R --duration SECS;
//            --json PATH additionally writes a BenchReport (per-shard
//            counters land in its timing line).
//   --shards S  run every simulation on the sharded parallel core with
//            S worker threads (0 = legacy single-scheduler engine)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "harness/scenario.h"
#include "vca/profile.h"

namespace {

using namespace vca;
using namespace vca::bench;

ConferenceConfig base_cfg(bool quick, const SweepOptions& opts) {
  ConferenceConfig cfg;
  cfg.seed = 7100;
  cfg.duration = Duration::seconds(quick ? 20 : 40);
  cfg.measure_from = Duration::seconds(quick ? 10 : 20);
  cfg.shards = opts.shards;
  return cfg;
}

// --- panel 1: gallery scaling curves ---------------------------------------

void scale_panel(BenchReport& report, const SweepOptions& opts, bool quick) {
  const std::vector<int> sizes =
      quick ? std::vector<int>{4, 8, 12} : std::vector<int>{4, 8, 16, 25, 49};
  const std::vector<std::string> profiles =
      quick ? std::vector<std::string>{"meet", "webex"}
            : std::vector<std::string>{"meet", "zoom", "webex"};

  std::vector<ConferenceConfig> jobs;
  for (int n : sizes) {
    for (const auto& profile : profiles) {
      ConferenceConfig cfg = base_cfg(quick, opts);
      cfg.profile = profile;
      cfg.participants = n;
      cfg.regions = 2;
      jobs.push_back(cfg);
    }
  }
  auto results = Sweep::run(jobs, run_conference, opts.jobs);

  note("Per-client receive bitrate and SFU load vs conference size "
       "(gallery, 2 regions):");
  TextTable table({"n", "profile", "down Mbps", "per-feed Mbps", "up Mbps",
                   "fwd kpps", "peak fanout"});
  report.begin_section("conf_scale",
                       "Gallery scaling: bitrate and SFU load vs size");
  size_t k = 0;
  for (int n : sizes) {
    for (const auto& profile : profiles) {
      const ConferenceResult& r = results[k++];
      VcaKind kind = vca_profile(profile).kind;
      int tiles = visible_tiles(kind, n, ViewMode::kGallery);
      double per_feed = r.mean_client_down_mbps / std::max(1, tiles);
      double fwd_pps = 0.0;
      int peak_fanout = 0;
      for (const auto& reg : r.regions) {
        fwd_pps += reg.forwarded_pps;
        peak_fanout = std::max(peak_fanout, reg.peak_subscriptions);
      }
      table.add_row({std::to_string(n), profile,
                     fmt(r.mean_client_down_mbps, 2), fmt(per_feed, 3),
                     fmt(r.mean_client_up_mbps, 2), fmt(fwd_pps / 1000.0, 1),
                     std::to_string(peak_fanout)});
      report.add_cell(
          {{"participants", std::to_string(n)}, {"profile", profile}},
          {{"down_mbps", BenchReport::scalar(r.mean_client_down_mbps)},
           {"per_feed_mbps", BenchReport::scalar(per_feed)},
           {"up_mbps", BenchReport::scalar(r.mean_client_up_mbps)},
           {"forwarded_pps", BenchReport::scalar(fwd_pps)},
           {"peak_fanout", BenchReport::scalar(peak_fanout)}});
    }
  }
  table.print(std::cout);
  note("Expect: per-feed bitrate non-increasing in n (tiles shrink); "
       "uplink drops once tiles cross a ladder rung (Meet at n=7); "
       "forwarded pps ~linear in peak local fanout.");
}

// --- panel 2: region count -------------------------------------------------

void regions_panel(BenchReport& report, const SweepOptions& opts, bool quick) {
  const std::vector<int> region_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const int n = quick ? 12 : 24;

  std::vector<ConferenceConfig> jobs;
  for (int regions : region_counts) {
    ConferenceConfig cfg = base_cfg(quick, opts);
    cfg.profile = "webex";
    cfg.participants = n;
    cfg.regions = regions;
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_conference, opts.jobs);

  note("Cascading cost vs region count (webex, " + std::to_string(n) +
       " participants, gallery):");
  TextTable table({"regions", "down Mbps", "relay-up Mbps (sum)",
                   "relay util %", "fwd kpps", "relay streams"});
  report.begin_section("conf_regions", "Relay cost vs region count");
  size_t k = 0;
  for (int regions : region_counts) {
    const ConferenceResult& r = results[k++];
    double relay_up = 0.0, util = 0.0, fwd_pps = 0.0;
    int relay_streams = 0;
    for (const auto& reg : r.regions) {
      relay_up += reg.relay_up_mbps;
      util = std::max(util, reg.relay_up_utilization);
      fwd_pps += reg.forwarded_pps;
      relay_streams += reg.relay_out_streams;
    }
    table.add_row({std::to_string(regions), fmt(r.mean_client_down_mbps, 2),
                   fmt(relay_up, 2), fmt(util * 100.0, 2),
                   fmt(fwd_pps / 1000.0, 1), std::to_string(relay_streams)});
    report.add_cell(
        {{"regions", std::to_string(regions)}},
        {{"down_mbps", BenchReport::scalar(r.mean_client_down_mbps)},
         {"relay_up_mbps", BenchReport::scalar(relay_up)},
         {"relay_utilization", BenchReport::scalar(util)},
         {"forwarded_pps", BenchReport::scalar(fwd_pps)},
         {"relay_streams", BenchReport::scalar(relay_streams)}});
  }
  table.print(std::cout);
  note("Expect: client bitrate ~independent of region count; relay bytes "
       "grow with regions (each publisher crosses each inter-SFU link "
       "once), never with remote fanout.");
}

// --- panel 3: layout -------------------------------------------------------

void layout_panel(BenchReport& report, const SweepOptions& opts, bool quick) {
  const int n = quick ? 13 : 25;
  std::vector<ConferenceConfig> jobs;
  for (ViewMode mode : {ViewMode::kGallery, ViewMode::kSpeaker}) {
    ConferenceConfig cfg = base_cfg(quick, opts);
    cfg.profile = "webex";
    cfg.participants = n;
    cfg.regions = 2;
    cfg.mode = mode;
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_conference, opts.jobs);

  note("Gallery vs speaker (webex, " + std::to_string(n) +
       " participants, 2 regions; everyone pins client 1):");
  TextTable table({"mode", "down Mbps", "pinned up Mbps", "fwd kpps"});
  report.begin_section("conf_layout", "Gallery vs speaker layout");
  size_t k = 0;
  for (const char* mode : {"gallery", "speaker"}) {
    const ConferenceResult& r = results[k++];
    double fwd_pps = 0.0;
    for (const auto& reg : r.regions) fwd_pps += reg.forwarded_pps;
    table.add_row({mode, fmt(r.mean_client_down_mbps, 2),
                   fmt(r.c1_up_mbps, 2), fmt(fwd_pps / 1000.0, 1)});
    report.add_cell({{"mode", mode}},
                    {{"down_mbps", BenchReport::scalar(r.mean_client_down_mbps)},
                     {"c1_up_mbps", BenchReport::scalar(r.c1_up_mbps)},
                     {"forwarded_pps", BenchReport::scalar(fwd_pps)}});
  }
  table.print(std::cout);
  note("Expect: speaker mode subscribes only the pinned feed plus a "
       "filmstrip, cutting downlink; the pinned publisher's uplink rises "
       "to the large-tile request.");
}

// --- --perf: packets-forwarded/sec wall-clock proxy ------------------------

// Deterministic totals to stdout, wall-clock to stderr. Stdout (and the
// --json file minus its one timing line) must be byte-identical across
// --shards values >= 1: that is the sharded-engine identity gate
// (check_shard_scaling.cmake). check_conference_perf.cmake and
// check_bench_regression.cmake read the stderr/JSON timing figures.
int run_perf(const SweepOptions& opts, int participants, int regions,
             int duration_sec) {
  ConferenceConfig cfg;
  cfg.profile = "webex";
  cfg.participants = participants;
  cfg.regions = regions;
  cfg.seed = 7100;
  cfg.duration = Duration::seconds(duration_sec);
  cfg.measure_from = Duration::seconds(duration_sec / 2);
  cfg.shards = opts.shards;
  BenchReport report("bench_conference --perf", opts);
  uint64_t events_before = sim_events_total();
  auto t0 = std::chrono::steady_clock::now();
  ConferenceResult r = run_conference(cfg);
  auto t1 = std::chrono::steady_clock::now();
  double wall = std::chrono::duration<double>(t1 - t0).count();
  uint64_t events = sim_events_total() - events_before;
  if (!r.invariant_violations.empty()) {
    for (const auto& v : r.invariant_violations) std::cerr << v << "\n";
    return 1;
  }
  std::cout << "CONF_PERF participants=" << participants << " regions="
            << regions << " packets_forwarded=" << r.total_forwarded_packets
            << " sim_events=" << events << " active=" << r.active_at_end
            << "\n";
  std::cerr << "CONF_PERF_TIMING wall_sec=" << fmt(wall, 3) << " pps="
            << static_cast<int64_t>(r.total_forwarded_packets / wall)
            << " events_per_sec=" << static_cast<int64_t>(events / wall)
            << " shards=" << opts.shards << "\n";
  report.begin_section("conf_perf", "Fixed-shape perf run totals");
  report.add_cell(
      {{"participants", std::to_string(participants)},
       {"regions", std::to_string(regions)},
       {"profile", cfg.profile}},
      {{"packets_forwarded",
        BenchReport::scalar(static_cast<double>(r.total_forwarded_packets))},
       {"active_at_end", BenchReport::scalar(r.active_at_end)}});
  return report.finish() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, perf = false;
  int participants = 16, regions = 2, duration_sec = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--perf") == 0) perf = true;
    if (i + 1 < argc && std::strcmp(argv[i], "--participants") == 0)
      participants = std::atoi(argv[i + 1]);
    if (i + 1 < argc && std::strcmp(argv[i], "--regions") == 0)
      regions = std::atoi(argv[i + 1]);
    if (i + 1 < argc && std::strcmp(argv[i], "--duration") == 0)
      duration_sec = std::atoi(argv[i + 1]);
  }
  SweepOptions opts = parse_sweep_args(argc, argv);
  if (perf) return run_perf(opts, participants, regions, duration_sec);
  BenchReport report("bench_conference", opts);

  header("Conference scale", "Cascaded-SFU fleet scaling curves");
  scale_panel(report, opts, quick);

  header("Region count", "Inter-SFU relay cost");
  regions_panel(report, opts, quick);

  header("Layout", "Gallery vs speaker");
  layout_panel(report, opts, quick);

  return report.finish() ? 0 : 1;
}
