// Fault-injection study: hard mid-call outages (rate -> 0, unlike the
// paper's §4 shaped-down disruptions) and how each profile's resilience
// machinery rides them out. Extends the §4 recovery comparison to full
// connectivity loss: detection latency, reconnect latency after restore,
// and time-to-recovery of the media rate, per profile and outage target.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 4;

std::string opt_s(const std::optional<Duration>& d, int prec = 1) {
  return d ? fmt(d->seconds(), prec) : std::string("never");
}

void uplink_outage_panel(BenchReport& report, const SweepOptions& opts) {
  header("outage-a", "10 s uplink outage at t=60 s (4 reps)");
  std::vector<OutageConfig> jobs;
  for (const auto& profile : kProfiles) {
    for (int rep = 0; rep < kReps; ++rep) {
      OutageConfig cfg;
      cfg.profile = profile;
      cfg.seed = 900 + static_cast<uint64_t>(rep);
      jobs.push_back(cfg);
    }
  }
  auto results = Sweep::run(jobs, run_outage, opts.jobs);

  TextTable table({"profile", "detect s [CI]", "reconnect s [CI]",
                   "TTR s [CI]", "degradations", "invariant violations"});
  report.begin_section("outage-a", "10 s uplink outage at t=60 s");
  size_t k = 0;
  for (const auto& profile : kProfiles) {
    std::vector<double> detect, reconnect, ttr;
    int degrades = 0;
    size_t violations = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const OutageResult& r = results[k++];
      if (r.detect_delay) detect.push_back(r.detect_delay->seconds());
      if (r.reconnect_delay) reconnect.push_back(r.reconnect_delay->seconds());
      // Censored = remaining call time, conservative (as in bench_fig4).
      ttr.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 110.0);
      degrades += r.degrade_events;
      violations += r.invariant_violations.size();
    }
    ConfidenceInterval detect_ci = confidence_interval(detect);
    ConfidenceInterval reconnect_ci = confidence_interval(reconnect);
    ConfidenceInterval ttr_ci = confidence_interval(ttr);
    table.add_row({profile, ci_cell(detect_ci, 1), ci_cell(reconnect_ci, 1),
                   ci_cell(ttr_ci, 1), std::to_string(degrades),
                   std::to_string(violations)});
    report.add_cell(
        {{"profile", profile}},
        {{"detect_sec", detect_ci},
         {"reconnect_sec", reconnect_ci},
         {"ttr_sec", ttr_ci},
         {"degradations", BenchReport::scalar(static_cast<double>(degrades))},
         {"invariant_violations",
          BenchReport::scalar(static_cast<double>(violations))}});
  }
  table.print(std::cout);
  note("detect = outage onset -> media-timeout watchdog; reconnect = link "
       "restore -> first keepalive echo / live feedback.");
}

void target_sweep_panel(BenchReport& report, const SweepOptions& opts) {
  header("outage-b", "outage target sweep, meet profile, single run");
  struct Row {
    const char* name;
    OutageTarget target;
  };
  const std::vector<Row> kTargets = {Row{"uplink", OutageTarget::kUplink},
                                     Row{"downlink", OutageTarget::kDownlink},
                                     Row{"both", OutageTarget::kBoth},
                                     Row{"sfu", OutageTarget::kSfu}};
  std::vector<OutageConfig> jobs;
  for (const Row& row : kTargets) {
    OutageConfig cfg;
    cfg.profile = "meet";
    cfg.seed = 17;
    cfg.target = row.target;
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_outage, opts.jobs);

  TextTable table({"target", "detect (s)", "reconnect (s)", "TTR (s)",
                   "reconnects"});
  report.begin_section("outage-b", "Outage target sweep, meet profile");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const OutageResult& r = results[i];
    table.add_row({kTargets[i].name, opt_s(r.detect_delay),
                   opt_s(r.reconnect_delay),
                   r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1)
                             : std::string("censored"),
                   std::to_string(r.reconnects)});
    report.add_cell(
        {{"target", kTargets[i].name}},
        {{"detect_sec",
          BenchReport::scalar(r.detect_delay ? r.detect_delay->seconds()
                                             : -1.0)},
         {"reconnect_sec",
          BenchReport::scalar(r.reconnect_delay ? r.reconnect_delay->seconds()
                                                : -1.0)},
         {"ttr_sec",
          BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds() : -1.0)},
         {"reconnects",
          BenchReport::scalar(static_cast<double>(r.reconnects))}});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_outage", opts);
  uplink_outage_panel(report, opts);
  target_sweep_panel(report, opts);
  return report.finish() ? 0 : 1;
}
