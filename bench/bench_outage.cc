// Fault-injection study: hard mid-call outages (rate -> 0, unlike the
// paper's §4 shaped-down disruptions) and how each profile's resilience
// machinery rides them out. Extends the §4 recovery comparison to full
// connectivity loss: detection latency, reconnect latency after restore,
// and time-to-recovery of the media rate, per profile and outage target.
#include "bench_common.h"
#include "core/stats_math.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

std::string opt_s(const std::optional<Duration>& d, int prec = 1) {
  return d ? fmt(d->seconds(), prec) : std::string("never");
}

void uplink_outage_panel() {
  header("outage-a", "10 s uplink outage at t=60 s (4 reps)");
  TextTable table({"profile", "detect s [CI]", "reconnect s [CI]",
                   "TTR s [CI]", "degradations", "invariant violations"});
  for (const std::string profile : {"meet", "teams", "zoom"}) {
    std::vector<double> detect, reconnect, ttr;
    int degrades = 0;
    size_t violations = 0;
    for (int rep = 0; rep < 4; ++rep) {
      OutageConfig cfg;
      cfg.profile = profile;
      cfg.seed = 900 + static_cast<uint64_t>(rep);
      OutageResult r = run_outage(cfg);
      if (r.detect_delay) detect.push_back(r.detect_delay->seconds());
      if (r.reconnect_delay) reconnect.push_back(r.reconnect_delay->seconds());
      // Censored = remaining call time, conservative (as in bench_fig4).
      ttr.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 110.0);
      degrades += r.degrade_events;
      violations += r.invariant_violations.size();
    }
    table.add_row({profile, ci_cell(confidence_interval(detect), 1),
                   ci_cell(confidence_interval(reconnect), 1),
                   ci_cell(confidence_interval(ttr), 1),
                   std::to_string(degrades), std::to_string(violations)});
  }
  table.print(std::cout);
  note("detect = outage onset -> media-timeout watchdog; reconnect = link "
       "restore -> first keepalive echo / live feedback.");
}

void target_sweep_panel() {
  header("outage-b", "outage target sweep, meet profile, single run");
  TextTable table({"target", "detect (s)", "reconnect (s)", "TTR (s)",
                   "reconnects"});
  struct Row {
    const char* name;
    OutageTarget target;
  };
  for (const Row& row : {Row{"uplink", OutageTarget::kUplink},
                         Row{"downlink", OutageTarget::kDownlink},
                         Row{"both", OutageTarget::kBoth},
                         Row{"sfu", OutageTarget::kSfu}}) {
    OutageConfig cfg;
    cfg.profile = "meet";
    cfg.seed = 17;
    cfg.target = row.target;
    OutageResult r = run_outage(cfg);
    table.add_row({row.name, opt_s(r.detect_delay), opt_s(r.reconnect_delay),
                   r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1)
                             : std::string("censored"),
                   std::to_string(r.reconnects)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  uplink_outage_panel();
  target_sweep_panel();
  return 0;
}
