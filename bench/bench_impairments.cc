// Extension experiments (paper §8 future work): VCA utilization and video
// quality under random packet loss, added latency, and jitter — the
// impairments the paper explicitly leaves for future exploration.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 3;

void panel(BenchReport& report, const SweepOptions& opts,
           const std::string& section_id, const std::string& title,
           const std::vector<double>& levels,
           void (*apply)(TwoPartyConfig&, double), const char* unit) {
  header("Extension (§8)", title);
  std::vector<TwoPartyConfig> jobs;
  for (const auto& profile : kProfiles) {
    for (double level : levels) {
      for (int rep = 0; rep < kReps; ++rep) {
        TwoPartyConfig cfg;
        cfg.profile = profile;
        cfg.seed = 4000 + static_cast<uint64_t>(rep);
        apply(cfg, level);
        jobs.push_back(cfg);
      }
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  size_t k = 0;
  for (const auto& profile : kProfiles) {
    TextTable table({std::string("level (") + unit + ")", "uplink Mbps [CI]",
                     "recv fps [CI]", "freeze % [CI]"});
    report.begin_section(section_id + "-" + profile, title + " — " + profile);
    for (double level : levels) {
      size_t k_fps = k, k_freeze = k;
      auto up = take(results, k, kReps, [](const TwoPartyResult& r) {
        return r.c1_up_mbps;
      });
      auto fps = take(results, k_fps, kReps, [](const TwoPartyResult& r) {
        return r.c1_received.median_fps;
      });
      auto freeze = take(results, k_freeze, kReps, [](const TwoPartyResult& r) {
        return 100.0 * r.c1_received.freeze_ratio;
      });
      ConfidenceInterval up_ci = confidence_interval(up);
      ConfidenceInterval fps_ci = confidence_interval(fps);
      ConfidenceInterval freeze_ci = confidence_interval(freeze);
      table.add_row({fmt(level, 1), ci_cell(up_ci), ci_cell(fps_ci, 1),
                     ci_cell(freeze_ci, 1)});
      report.add_cell({{"level", fmt(level, 1)}, {"profile", profile}},
                      {{"up_mbps", up_ci},
                       {"fps", fps_ci},
                       {"freeze_pct", freeze_ci}});
    }
    note(profile + ":");
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_impairments", opts);

  panel(report, opts, "loss", "Random packet loss on C1's access links",
        {0.0, 1.0, 2.0, 5.0, 10.0},
        [](TwoPartyConfig& cfg, double pct) { cfg.c1_loss = pct / 100.0; },
        "% loss");
  note("Expect: Zoom's FEC keeps its rate nearly flat; Meet's loss-based "
       "controller sheds rate beyond ~2%; freezes rise for all.");

  panel(report, opts, "latency", "Added one-way latency",
        {0.0, 25.0, 50.0, 100.0},
        [](TwoPartyConfig& cfg, double ms) {
          cfg.c1_extra_latency = Duration::millis_d(ms);
        },
        "ms");
  note("Expect: utilization roughly flat (rate control is not "
       "latency-bound at these RTTs); recovery loops just get lazier.");

  panel(report, opts, "jitter", "Path jitter (gaussian, sd)",
        {0.0, 5.0, 15.0, 30.0},
        [](TwoPartyConfig& cfg, double ms) {
          cfg.c1_jitter = Duration::millis_d(ms);
        },
        "ms sd");
  note("Expect: heavy jitter pollutes the delay-gradient signal; "
       "delay-based controllers (Meet) get conservative first.");
  return report.finish() ? 0 : 1;
}
