// Extension experiments (paper §8 future work): VCA utilization and video
// quality under random packet loss, added latency, and jitter — the
// impairments the paper explicitly leaves for future exploration.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

constexpr int kReps = 3;

struct Cell {
  ConfidenceInterval up, fps, freeze;
};

template <typename Apply>
Cell sweep(const std::string& profile, Apply apply) {
  std::vector<double> up, fps, freeze;
  for (int rep = 0; rep < kReps; ++rep) {
    TwoPartyConfig cfg;
    cfg.profile = profile;
    cfg.seed = 4000 + static_cast<uint64_t>(rep);
    apply(cfg);
    TwoPartyResult r = run_two_party(cfg);
    up.push_back(r.c1_up_mbps);
    fps.push_back(r.c1_received.median_fps);
    freeze.push_back(100.0 * r.c1_received.freeze_ratio);
  }
  return {confidence_interval(up), confidence_interval(fps),
          confidence_interval(freeze)};
}

void panel(const std::string& title, const std::vector<double>& levels,
           void (*apply)(TwoPartyConfig&, double), const char* unit) {
  header("Extension (§8)", title);
  for (const std::string profile : {"meet", "teams", "zoom"}) {
    TextTable table({std::string("level (") + unit + ")", "uplink Mbps [CI]",
                     "recv fps [CI]", "freeze % [CI]"});
    for (double level : levels) {
      Cell c = sweep(profile, [&](TwoPartyConfig& cfg) { apply(cfg, level); });
      table.add_row({fmt(level, 1), ci_cell(c.up), ci_cell(c.fps, 1),
                     ci_cell(c.freeze, 1)});
    }
    note(profile + ":");
    table.print(std::cout);
  }
}

}  // namespace

int main() {
  panel("Random packet loss on C1's access links", {0.0, 1.0, 2.0, 5.0, 10.0},
        [](TwoPartyConfig& cfg, double pct) { cfg.c1_loss = pct / 100.0; },
        "% loss");
  note("Expect: Zoom's FEC keeps its rate nearly flat; Meet's loss-based "
       "controller sheds rate beyond ~2%; freezes rise for all.");

  panel("Added one-way latency", {0.0, 25.0, 50.0, 100.0},
        [](TwoPartyConfig& cfg, double ms) {
          cfg.c1_extra_latency = Duration::millis_d(ms);
        },
        "ms");
  note("Expect: utilization roughly flat (rate control is not "
       "latency-bound at these RTTs); recovery loops just get lazier.");

  panel("Path jitter (gaussian, sd)", {0.0, 5.0, 15.0, 30.0},
        [](TwoPartyConfig& cfg, double ms) {
          cfg.c1_jitter = Duration::millis_d(ms);
        },
        "ms sd");
  note("Expect: heavy jitter pollutes the delay-gradient signal; "
       "delay-based controllers (Meet) get conservative first.");
  return 0;
}
