// vcabench_fuzz: seed-driven scenario fuzzer driver (ROADMAP item 5).
//
//   vcabench_fuzz --seeds 256 [--seed-base 1] [--jobs J] [--json PATH]
//                 [--shrink] [--inject-wedge] [--event-budget N]
//                 [--shards S]   sharded core for cascaded scenarios
//                                (results byte-identical at any S >= 1)
//   vcabench_fuzz --replay '<spec>'      replay one serialized scenario
//   vcabench_fuzz --replay-seed S        replay one generated seed
//   vcabench_fuzz --print-seed S         dump a seed's spec and exit
//   vcabench_fuzz --corpus DIR           replay every spec file in DIR
//
// Batch runs go through Sweep::run, so stdout and the --json report are
// byte-identical at any --jobs count (failures are aggregated from
// submission-ordered result slots; shrinking happens serially afterwards
// and only for failing seeds). Exit status is nonzero iff any scenario
// failed an oracle (or the report could not be written).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/fuzz.h"
#include "harness/sweep.h"

namespace {

using namespace vca;

struct FuzzArgs {
  int seeds = 256;
  uint64_t seed_base = 1;
  bool shrink = false;
  bool inject_wedge = false;
  uint64_t event_budget = FuzzRunOptions{}.event_budget_per_virtual_sec;
  std::string replay_spec;
  uint64_t replay_seed = 0;
  bool have_replay_seed = false;
  uint64_t print_seed = 0;
  bool have_print_seed = false;
  std::string corpus_dir;
};

FuzzArgs parse_fuzz_args(int argc, char** argv) {
  FuzzArgs a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      a.seeds = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seed-base") == 0) {
      a.seed_base = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--shrink") == 0) {
      a.shrink = true;
    } else if (std::strcmp(argv[i], "--inject-wedge") == 0) {
      a.inject_wedge = true;
    } else if (std::strcmp(argv[i], "--event-budget") == 0) {
      a.event_budget = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      a.replay_spec = next();
    } else if (std::strcmp(argv[i], "--replay-seed") == 0) {
      a.replay_seed = std::strtoull(next(), nullptr, 10);
      a.have_replay_seed = true;
    } else if (std::strcmp(argv[i], "--print-seed") == 0) {
      a.print_seed = std::strtoull(next(), nullptr, 10);
      a.have_print_seed = true;
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      a.corpus_dir = next();
    }
  }
  return a;
}

void print_failures(const FuzzResult& r, const std::string& origin) {
  for (const FuzzFailure& f : r.failures) {
    std::cout << "FAIL " << origin << " [" << f.category << "] " << f.detail
              << "\n";
  }
  if (!r.failures.empty()) {
    std::cout << "  spec:  " << r.spec << "\n";
    std::cout << "  repro: vcabench_fuzz --replay '" << r.spec << "'\n";
  }
}

int run_one(const FuzzScenario& sc, const FuzzRunOptions& opt,
            const std::string& origin) {
  FuzzResult r = run_fuzz_scenario(sc, opt);
  print_failures(r, origin);
  if (r.ok()) {
    std::cout << "OK " << origin << " (" << r.sim_events << " events, "
              << r.reconnects << " reconnects)\n";
    return 0;
  }
  return 1;
}

// Replays every spec file in `dir` (sorted by filename; '#' lines and
// blanks skipped). The corpus is the regression ledger: every seed a past
// fuzzing campaign minimized and fixed, expected to stay oracle-clean.
int run_corpus(const std::string& dir, const FuzzRunOptions& opt,
               const SweepOptions& sweep_opts) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> specs;  // (file, spec)
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      specs.push_back({entry.path().filename().string(), line});
    }
  }
  if (ec) {
    std::cerr << "vcabench_fuzz: cannot read corpus dir " << dir << "\n";
    return 2;
  }
  std::sort(specs.begin(), specs.end());
  if (specs.empty()) {
    std::cout << "corpus " << dir << ": no specs\n";
    return 0;
  }

  std::vector<FuzzScenario> jobs;
  for (const auto& [file, spec] : specs) {
    auto sc = FuzzScenario::from_spec(spec);
    if (!sc) {
      std::cout << "FAIL " << file << " [spec] unparseable spec line\n";
      return 1;
    }
    jobs.push_back(*sc);
  }
  auto results = Sweep::run(
      jobs, [&](const FuzzScenario& sc) { return run_fuzz_scenario(sc, opt); },
      sweep_opts.jobs);
  int failed = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    print_failures(results[i], specs[i].first);
    if (!results[i].ok()) ++failed;
  }
  std::cout << "corpus: " << results.size() - static_cast<size_t>(failed)
            << "/" << results.size() << " clean\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions sweep_opts = parse_sweep_args(argc, argv);
  FuzzArgs args = parse_fuzz_args(argc, argv);
  FuzzRunOptions opt;
  opt.event_budget_per_virtual_sec = args.event_budget;
  opt.shards = sweep_opts.shards;

  if (args.have_print_seed) {
    FuzzScenario sc = fuzz_scenario_from_seed(args.print_seed);
    std::cout << sc.to_spec() << "\n";
    return 0;
  }
  if (!args.replay_spec.empty()) {
    auto sc = FuzzScenario::from_spec(args.replay_spec);
    if (!sc) {
      std::cerr << "vcabench_fuzz: unparseable --replay spec\n";
      return 2;
    }
    return run_one(*sc, opt, "replay");
  }
  if (args.have_replay_seed) {
    return run_one(fuzz_scenario_from_seed(args.replay_seed), opt,
                   "seed " + std::to_string(args.replay_seed));
  }
  if (!args.corpus_dir.empty()) {
    return run_corpus(args.corpus_dir, opt, sweep_opts);
  }

  // Batch mode.
  BenchReport report("vcabench_fuzz", sweep_opts);
  std::vector<FuzzScenario> jobs;
  for (int i = 0; i < args.seeds; ++i) {
    FuzzScenario sc =
        fuzz_scenario_from_seed(args.seed_base + static_cast<uint64_t>(i));
    sc.inject_wedge = args.inject_wedge;
    jobs.push_back(sc);
  }
  auto results = Sweep::run(
      jobs, [&](const FuzzScenario& sc) { return run_fuzz_scenario(sc, opt); },
      sweep_opts.jobs);

  uint64_t total_events = 0;
  int failed = 0;
  std::map<std::string, int> by_category;  // string-keyed: stable order
  report.begin_section("fuzz", "seed-driven scenario fuzzing");
  for (const FuzzResult& r : results) {
    total_events += r.sim_events;
    if (r.ok()) continue;
    ++failed;
    print_failures(r, "seed " + std::to_string(r.seed));
    for (const FuzzFailure& f : r.failures) ++by_category[f.category];
    report.add_cell({{"seed", std::to_string(r.seed)},
                     {"category", r.failures.front().category}},
                    {{"failures", BenchReport::scalar(
                          static_cast<double>(r.failures.size()))}});
  }
  std::cout << "fuzz: " << results.size() - static_cast<size_t>(failed) << "/"
            << results.size() << " scenarios oracle-clean (seeds "
            << args.seed_base << ".." << args.seed_base + args.seeds - 1
            << ", " << total_events << " sim events)\n";
  for (const auto& [cat, n] : by_category) {
    std::cout << "  " << cat << ": " << n << "\n";
  }
  report.add_cell(
      {{"summary", "totals"}},
      {{"scenarios", BenchReport::scalar(static_cast<double>(results.size()))},
       {"failed", BenchReport::scalar(static_cast<double>(failed))}});

  if (args.shrink && failed > 0) {
    std::cout << "\nshrinking failures to minimal reproducers:\n";
    for (const FuzzResult& r : results) {
      if (r.ok()) continue;
      FuzzScenario sc = fuzz_scenario_from_seed(r.seed);
      sc.inject_wedge = args.inject_wedge;
      auto shrunk = shrink_failure(sc, opt);
      if (!shrunk) {
        std::cout << "seed " << r.seed
                  << ": failure did not reproduce under shrinking\n";
        continue;
      }
      std::cout << "seed " << r.seed << " [" << shrunk->category << "] after "
                << shrunk->runs << " runs -> " << shrunk->minimal.faults.size()
                << " faults, " << shrunk->minimal.clients.size()
                << " clients, "
                << shrunk->minimal.duration_ms / 1000 << "s\n";
      std::cout << "  " << shrunk->detail << "\n";
      std::cout << "  minimal: " << shrunk->minimal.to_spec() << "\n";
      std::cout << "  repro:   vcabench_fuzz --replay '"
                << shrunk->minimal.to_spec() << "'\n";
    }
  }

  bool report_ok = report.finish();
  return failed == 0 && report_ok ? 0 : 1;
}
