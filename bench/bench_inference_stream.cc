// Streaming-service bench: the bounded online analyzer (src/streaming)
// scored two ways.
//
// Accuracy (default): for every profile we run two-party calls with the
// simulated tcpdump on C1's downlink, then analyze the same trace twice
// — the offline pipeline (unbounded, analyze_records) and the streaming
// service at its production defaults (32 MB cap, sketch promotion bar,
// LRU/idle eviction) — and compare both against getStats() truth.
// Acceptance: the streaming primary-video median FPS and mean rate must
// be within +/-10% of the offline pipeline on every rep; the binary
// exits nonzero otherwise, so CI enforces it.
//
// --perf: the SynthChurn workload (100k mice + 10k mid + 200 hot flows,
// 30 s) through one analyzer under the default cap. Deterministic totals
// go to stdout; wall-clock throughput (packets/s) and peak live heap
// (vca_perf_alloc counters) go to the stderr timing line and the JSON
// "timing" block, which check_bench_regression.cmake gates against the
// committed BENCH_inference_stream.json. Packet count is fed to
// note_sim_events so the timing block's events_per_sec IS the analyzer's
// packets/s. Exits nonzero if peak live heap exceeds the configured cap.
//
// --quick trims to one rep and a shorter call (used by the determinism
// ctest); --reps N overrides. --jobs/--json as everywhere else.
#include <chrono>
#include <cmath>
#include <cstring>

#include "analysis/inference.h"
#include "bench_common.h"
#include "core/perf.h"
#include "harness/scenario.h"
#include "streaming/analyzer.h"
#include "streaming/synth.h"

namespace {

using namespace vca;

double truth_median_fps(const std::vector<SecondStats>& seconds,
                        Duration measure_from) {
  std::vector<double> v;
  TimePoint from = TimePoint::zero() + measure_from;
  for (const SecondStats& s : seconds) {
    if (s.at > from && s.fps > 0.0) v.push_back(s.fps);
  }
  return median_of_sorted_copy(std::move(v));
}

double truth_median_width(const std::vector<SecondStats>& seconds,
                          Duration measure_from) {
  std::vector<double> v;
  TimePoint from = TimePoint::zero() + measure_from;
  for (const SecondStats& s : seconds) {
    if (s.at > from && s.width > 0) v.push_back(static_cast<double>(s.width));
  }
  return median_of_sorted_copy(std::move(v));
}

double truth_freeze_ms(const std::vector<SecondStats>& seconds,
                       Duration measure_from) {
  double total = 0.0;
  TimePoint from = TimePoint::zero() + measure_from;
  for (const SecondStats& s : seconds) {
    if (s.at > from) total += s.freeze_ms;
  }
  return total;
}

double pct_err(double estimate, double truth) {
  if (truth <= 0.0) return estimate <= 0.0 ? 0.0 : 100.0;
  return 100.0 * (estimate - truth) / truth;
}

// Highest-byte video stream across the streaming service's final
// reports (the analogue of TraceAnalysis::primary_video over possibly
// multiple eviction generations).
const StreamReport* primary_video_of(const std::vector<StreamReport>& reports) {
  const StreamReport* best = nullptr;
  for (const StreamReport& s : reports) {
    if (s.kind != StreamKind::kVideo) continue;
    if (best == nullptr || s.ip_bytes > best->ip_bytes) best = &s;
  }
  return best;
}

int run_accuracy(const vca::SweepOptions& opts, bool quick, int reps) {
  using namespace vca::bench;
  BenchReport report("bench_inference_stream", opts);
  header("Streaming estimator accuracy",
         "Bounded online analyzer vs offline pipeline vs getStats() truth");

  const char* profiles[] = {"meet", "teams", "zoom"};
  Duration duration = Duration::seconds(quick ? 80 : 150);
  Duration measure_from = Duration::seconds(30);

  std::vector<TwoPartyConfig> jobs;
  for (const char* profile : profiles) {
    for (int rep = 0; rep < reps; ++rep) {
      TwoPartyConfig cfg;
      cfg.profile = profile;
      cfg.seed = 900 + static_cast<uint64_t>(rep);
      cfg.duration = duration;
      cfg.measure_from = measure_from;
      cfg.capture_traces = true;
      jobs.push_back(cfg);
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  TextTable table({"VCA", "stream fps", "offline fps", "truth fps",
                   "fps err %", "stream Mbps", "offline Mbps", "rate err %",
                   "est width", "truth width", "freezes", "truth frz ms"});
  report.begin_section("stream_accuracy",
                       "Streaming (bounded, production config) vs offline");
  bool acceptance_ok = true;
  size_t k = 0;
  for (const char* profile : profiles) {
    std::vector<double> s_fps, o_fps, t_fps, fps_err, s_rate, o_rate, rate_err,
        s_width, t_width, s_frz, t_frz;
    for (int rep = 0; rep < reps; ++rep) {
      const TwoPartyResult& r = results[k++];
      TraceAnalysis offline =
          analyze_records(r.c1_down_records, measure_from.seconds());

      // Production defaults: sketch bar up, hard cap on, eviction live —
      // exactly what `vcabench analyze --stream` runs.
      StreamingAnalyzer streaming{StreamingConfig{}};
      int64_t from_ns = measure_from.ns();
      for (const PacketRecord& rec : r.c1_down_records) {
        if (rec.ts_ns >= from_ns) streaming.on_record(rec);
      }
      streaming.finish();

      const StreamReport* off = offline.primary_video();
      const StreamReport* on = primary_video_of(streaming.reports());
      double of = off != nullptr ? off->median_fps : 0.0;
      double sf = on != nullptr ? on->median_fps : 0.0;
      double orate = off != nullptr ? off->mean_rate_mbps : 0.0;
      double srate = on != nullptr ? on->mean_rate_mbps : 0.0;
      double fe = pct_err(sf, of);
      double re = pct_err(srate, orate);
      s_fps.push_back(sf);
      o_fps.push_back(of);
      t_fps.push_back(truth_median_fps(r.c1_recv_seconds, measure_from));
      fps_err.push_back(fe);
      s_rate.push_back(srate);
      o_rate.push_back(orate);
      rate_err.push_back(re);
      if (std::abs(fe) > 10.0 || std::abs(re) > 10.0) acceptance_ok = false;

      // Extended estimates vs getStats truth. The blind ladder width must
      // land within one ladder step (25%) of the real encode width — for
      // the WebRTC-normal profiles. Zoom's SVC layer sends 1280-wide at
      // ~0.7 Mbps, far off any WebRTC rate-per-pixel curve, so a
      // bitrate-only ladder cannot recover it; its row is reported but
      // not gated (the paper likewise never inferred resolution blind,
      // only FPS and bitrate — EXPERIMENTS.md records the gap). Freeze
      // detections sit beside the freeze-rule milliseconds the receiver
      // actually counted.
      double sw = on != nullptr ? static_cast<double>(on->est_width) : 0.0;
      double tw = truth_median_width(r.c1_recv_seconds, measure_from);
      s_width.push_back(sw);
      t_width.push_back(tw);
      s_frz.push_back(on != nullptr ? static_cast<double>(on->freeze_events)
                                    : 0.0);
      t_frz.push_back(truth_freeze_ms(r.c1_recv_seconds, measure_from));
      bool gate_width = std::strcmp(profile, "zoom") != 0;
      if (gate_width && tw > 0.0 && std::abs(sw - tw) > 0.25 * tw) {
        acceptance_ok = false;
      }
    }
    ConfidenceInterval sf_ci = confidence_interval(s_fps);
    ConfidenceInterval of_ci = confidence_interval(o_fps);
    ConfidenceInterval tf_ci = confidence_interval(t_fps);
    ConfidenceInterval fe_ci = confidence_interval(fps_err);
    ConfidenceInterval sr_ci = confidence_interval(s_rate);
    ConfidenceInterval or_ci = confidence_interval(o_rate);
    ConfidenceInterval re_ci = confidence_interval(rate_err);
    ConfidenceInterval sw_ci = confidence_interval(s_width);
    ConfidenceInterval tw_ci = confidence_interval(t_width);
    ConfidenceInterval sz_ci = confidence_interval(s_frz);
    ConfidenceInterval tz_ci = confidence_interval(t_frz);
    table.add_row({profile, ci_cell(sf_ci, 1), ci_cell(of_ci, 1),
                   ci_cell(tf_ci, 1), ci_cell(fe_ci, 1), ci_cell(sr_ci),
                   ci_cell(or_ci), ci_cell(re_ci, 1), ci_cell(sw_ci, 0),
                   ci_cell(tw_ci, 0), ci_cell(sz_ci, 1), ci_cell(tz_ci, 0)});
    report.add_cell({{"vca", profile}},
                    {{"stream_fps", sf_ci},
                     {"offline_fps", of_ci},
                     {"truth_fps", tf_ci},
                     {"fps_err_pct", fe_ci},
                     {"stream_rate_mbps", sr_ci},
                     {"offline_rate_mbps", or_ci},
                     {"rate_err_pct", re_ci},
                     {"est_width", sw_ci},
                     {"truth_width", tw_ci},
                     {"stream_freezes", sz_ci},
                     {"truth_freeze_ms", tz_ci}});
  }
  table.print(std::cout);
  note(acceptance_ok
           ? "acceptance: streaming median FPS and mean rate within +/-10% "
             "of the offline pipeline (all profiles), ladder width within "
             "one step of getStats truth (meet/teams; zoom's SVC "
             "rate-per-pixel defeats any bitrate-only ladder, see "
             "EXPERIMENTS.md)"
           : "ACCEPTANCE FAILED: streaming estimate off by >10% from the "
             "offline pipeline, or ladder width off by >25% from truth");
  bool ok = report.finish();
  return acceptance_ok && ok ? 0 : 1;
}

// --- --perf: churn throughput + peak live heap under the cap ---------------

// Deterministic totals to stdout, wall-clock and heap figures to stderr
// (STREAM_PERF_TIMING) and the JSON timing block. The packet count is
// noted as sim events, so timing.events_per_sec == analyzer packets/s —
// that is the figure check_bench_regression.cmake gates.
int run_perf(const vca::SweepOptions& opts, int cap_mb) {
  using namespace vca::bench;
  SynthChurnConfig scfg;  // defaults: 100k mice + 10k mid + 200 hot, 30 s
  SynthChurn gen(scfg);

  StreamingConfig cfg;  // production defaults: 32 MB cap, promote bar 8
  if (cap_mb > 0) {
    cfg.memory_cap_bytes = static_cast<size_t>(cap_mb) << 20;
  }

  // Generator state is workload, not analyzer: baseline after it exists.
  int64_t heap_baseline = perf::live_bytes();
  perf::reset_peak_live();

  BenchReport report("bench_inference_stream --perf", opts);
  int64_t final_reports = 0, window_reports = 0;
  auto t0 = std::chrono::steady_clock::now();
  StreamingAnalyzer an(cfg);
  an.set_report_sink([&](const StreamReport&) { ++final_reports; });
  an.set_window_sink([&](const WindowReport&) { ++window_reports; });
  ParsedPacket p;
  while (gen.next(&p)) an.on_parsed(p);
  an.finish();
  auto t1 = std::chrono::steady_clock::now();
  double wall = std::chrono::duration<double>(t1 - t0).count();
  int64_t peak_delta = perf::peak_live_bytes() - heap_baseline;

  const StreamingAnalyzer::Stats& st = an.stats();
  const FlowTable::Stats& ts = an.table().stats();
  note_sim_events(static_cast<uint64_t>(st.packets));

  std::cout << "STREAM_PERF flows=" << gen.total_flows() << " packets="
            << st.packets << " sketch_only=" << ts.sketch_only_packets
            << " promoted=" << ts.promoted << " evicted="
            << (ts.evicted_lru + ts.evicted_idle) << " final_reports="
            << final_reports << " windows=" << window_reports
            << " flow_slots=" << an.table().max_flows() << "\n";
  std::cerr << "STREAM_PERF_TIMING wall_sec=" << fmt(wall, 3) << " pps="
            << static_cast<int64_t>(static_cast<double>(st.packets) / wall)
            << " peak_live_bytes=" << peak_delta << " cap_bytes="
            << cfg.memory_cap_bytes << " alloc_tracking="
            << (perf::alloc_tracking_active() ? 1 : 0) << "\n";

  bool under_cap = true;
  if (perf::alloc_tracking_active() &&
      peak_delta > static_cast<int64_t>(cfg.memory_cap_bytes)) {
    under_cap = false;
    std::cerr << "MEMORY CAP EXCEEDED: peak live heap " << peak_delta
              << " B over the " << cfg.memory_cap_bytes << " B cap\n";
  }

  report.begin_section("stream_perf", "Churn workload totals");
  report.add_cell(
      {{"workload", "synth_churn"}},
      {{"packets", BenchReport::scalar(static_cast<double>(st.packets))},
       {"promoted", BenchReport::scalar(static_cast<double>(ts.promoted))},
       {"evicted", BenchReport::scalar(
                       static_cast<double>(ts.evicted_lru + ts.evicted_idle))},
       {"final_reports",
        BenchReport::scalar(static_cast<double>(final_reports))},
       {"windows", BenchReport::scalar(static_cast<double>(window_reports))}});
  bool ok = report.finish();
  return under_cap && ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vca;
  SweepOptions opts = parse_sweep_args(argc, argv);
  bool quick = false, perf_mode = false;
  int reps = 0, cap_mb = 0;  // cap_mb 0 = the StreamingConfig default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--perf") == 0) perf_mode = true;
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--cap-mb") == 0 && i + 1 < argc) {
      cap_mb = std::atoi(argv[i + 1]);
    }
  }
  if (reps < 1) reps = quick ? 1 : 3;
  return perf_mode ? run_perf(opts, cap_mb) : run_accuracy(opts, quick, reps);
}
