// Reproduces Figure 1: median utilization under static shaping.
//   1a: upstream bitrate vs uplink capacity (meet / teams / zoom, native)
//   1b: downstream bitrate vs downlink capacity
//   1c: native vs Chrome clients, upstream
// Five repetitions per point; cells show the mean across runs.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCapsMbps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                                       1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0,
                                       5.0, 10.0};
constexpr int kReps = 5;

TwoPartyConfig point_cfg(const std::string& profile, double cap_mbps,
                         bool uplink, int rep) {
  TwoPartyConfig cfg;
  cfg.profile = profile;
  cfg.seed = 500 + static_cast<uint64_t>(rep);
  if (uplink) {
    cfg.c1_up = DataRate::mbps_d(cap_mbps);
  } else {
    cfg.c1_down = DataRate::mbps_d(cap_mbps);
  }
  return cfg;
}

void sweep(BenchReport& report, const SweepOptions& opts,
           const std::string& section_id, const std::string& title,
           const std::vector<std::string>& profiles, bool uplink) {
  std::vector<TwoPartyConfig> jobs;
  for (double cap : kCapsMbps) {
    for (const auto& p : profiles) {
      for (int rep = 0; rep < kReps; ++rep) {
        jobs.push_back(point_cfg(p, cap, uplink, rep));
      }
    }
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);

  TextTable table([&] {
    std::vector<std::string> h = {uplink ? "uplink cap (Mbps)"
                                         : "downlink cap (Mbps)"};
    for (const auto& p : profiles) h.push_back(p);
    return h;
  }());
  report.begin_section(section_id, title);
  size_t k = 0;
  for (double cap : kCapsMbps) {
    std::vector<std::string> row = {fmt(cap, 1)};
    for (const auto& p : profiles) {
      auto vals = take(results, k, kReps, [&](const TwoPartyResult& r) {
        return uplink ? r.c1_up_mbps : r.c1_down_mbps;
      });
      ConfidenceInterval ci = confidence_interval(vals);
      row.push_back(fmt(ci.mean));
      report.add_cell({{"cap_mbps", fmt(cap, 1)}, {"profile", p}},
                      {{"mbps", ci}});
    }
    table.add_row(row);
  }
  note(title);
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig1", opts);

  header("Figure 1a", "Upstream utilization vs uplink capacity");
  sweep(report, opts, "fig1a", "median sent bitrate (Mbps), native clients:",
        {"meet", "teams", "zoom"}, /*uplink=*/true);

  header("Figure 1b", "Downstream utilization vs downlink capacity");
  sweep(report, opts, "fig1b", "median received bitrate (Mbps):",
        {"meet", "teams", "zoom"}, /*uplink=*/false);
  note("Expect: Meet plateaus near 0.19 Mbps below ~0.7 Mbps (simulcast low "
       "copy, 39-70% utilization); Zoom downstream exceeds its upstream "
       "(server-side FEC).");

  header("Figure 1c", "Browser vs native clients, upstream");
  sweep(report, opts, "fig1c", "median sent bitrate (Mbps):",
        {"teams", "teams-chrome", "zoom", "zoom-chrome"}, /*uplink=*/true);
  note("Expect: Teams-Chrome well below Teams-native (0.61 vs 0.84 at 1 "
       "Mbps); Zoom-Chrome ~= Zoom-native.");
  return report.finish() ? 0 : 1;
}
