// Reproduces Figure 1: median utilization under static shaping.
//   1a: upstream bitrate vs uplink capacity (meet / teams / zoom, native)
//   1b: downstream bitrate vs downlink capacity
//   1c: native vs Chrome clients, upstream
// Five repetitions per point; cells show the mean across runs.
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCapsMbps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                                       1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0,
                                       5.0, 10.0};
constexpr int kReps = 5;

double sweep_point(const std::string& profile, double cap_mbps, bool uplink) {
  std::vector<double> vals;
  for (int rep = 0; rep < kReps; ++rep) {
    TwoPartyConfig cfg;
    cfg.profile = profile;
    cfg.seed = 500 + static_cast<uint64_t>(rep);
    if (uplink) {
      cfg.c1_up = DataRate::mbps_d(cap_mbps);
    } else {
      cfg.c1_down = DataRate::mbps_d(cap_mbps);
    }
    TwoPartyResult r = run_two_party(cfg);
    vals.push_back(uplink ? r.c1_up_mbps : r.c1_down_mbps);
  }
  return mean_of(vals);
}

void sweep(const std::string& title, const std::vector<std::string>& profiles,
           bool uplink) {
  TextTable table([&] {
    std::vector<std::string> h = {uplink ? "uplink cap (Mbps)"
                                         : "downlink cap (Mbps)"};
    for (const auto& p : profiles) h.push_back(p);
    return h;
  }());
  for (double cap : kCapsMbps) {
    std::vector<std::string> row = {fmt(cap, 1)};
    for (const auto& p : profiles) {
      row.push_back(fmt(sweep_point(p, cap, uplink)));
    }
    table.add_row(row);
  }
  note(title);
  table.print(std::cout);
}

}  // namespace

int main() {
  header("Figure 1a", "Upstream utilization vs uplink capacity");
  sweep("median sent bitrate (Mbps), native clients:",
        {"meet", "teams", "zoom"}, /*uplink=*/true);

  header("Figure 1b", "Downstream utilization vs downlink capacity");
  sweep("median received bitrate (Mbps):", {"meet", "teams", "zoom"},
        /*uplink=*/false);
  note("Expect: Meet plateaus near 0.19 Mbps below ~0.7 Mbps (simulcast low "
       "copy, 39-70% utilization); Zoom downstream exceeds its upstream "
       "(server-side FEC).");

  header("Figure 1c", "Browser vs native clients, upstream");
  sweep("median sent bitrate (Mbps):",
        {"teams", "teams-chrome", "zoom", "zoom-chrome"}, /*uplink=*/true);
  note("Expect: Teams-Chrome well below Teams-native (0.61 vs 0.84 at 1 "
       "Mbps); Zoom-Chrome ~= Zoom-native.");
  return 0;
}
