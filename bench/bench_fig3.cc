// Reproduces Figure 3: video freezes under constrained capacity.
//   3a: freeze ratio vs downstream capacity (Meet, Teams-Chrome)
//   3b: Full Intra Request (FIR) count vs upstream capacity
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCaps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                   0.9, 1.0, 1.2, 1.5, 2.0};
constexpr int kReps = 5;

}  // namespace

int main() {
  header("Figure 3a", "Freeze ratio vs downstream capacity");
  {
    TextTable table({"downlink cap (Mbps)", "meet freeze% [CI]",
                     "teams-chrome freeze% [CI]"});
    for (double cap : kCaps) {
      std::vector<std::string> row = {fmt(cap, 1)};
      for (const std::string profile : {"meet", "teams-chrome"}) {
        std::vector<double> vals;
        for (int rep = 0; rep < kReps; ++rep) {
          TwoPartyConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1200 + static_cast<uint64_t>(rep);
          cfg.c1_down = DataRate::mbps_d(cap);
          TwoPartyResult r = run_two_party(cfg);
          vals.push_back(100.0 * r.c1_received.freeze_ratio);
        }
        row.push_back(ci_cell(confidence_interval(vals), 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: freeze ratio rises as the downlink degrades; Meet ~10% at "
         "0.3 Mbps; Teams-Chrome shows a ~3.6% floor even unconstrained.");
  }

  header("Figure 3b", "FIR count vs upstream capacity");
  {
    TextTable table({"uplink cap (Mbps)", "meet FIRs [CI]",
                     "teams-chrome FIRs [CI]"});
    for (double cap : kCaps) {
      std::vector<std::string> row = {fmt(cap, 1)};
      for (const std::string profile : {"meet", "teams-chrome"}) {
        std::vector<double> vals;
        for (int rep = 0; rep < kReps; ++rep) {
          TwoPartyConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1300 + static_cast<uint64_t>(rep);
          cfg.c1_up = DataRate::mbps_d(cap);
          TwoPartyResult r = run_two_party(cfg);
          vals.push_back(static_cast<double>(r.c2_received.fir_upstream));
        }
        row.push_back(ci_cell(confidence_interval(vals), 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: Teams-Chrome FIR count spikes below ~0.5 Mbps uplink "
         "(the high-resolution-at-low-rate bug produces undecodable "
         "frames); Meet stays low.");
  }
  return 0;
}
