// Reproduces Figure 3: video freezes under constrained capacity.
//   3a: freeze ratio vs downstream capacity (Meet, Teams-Chrome)
//   3b: Full Intra Request (FIR) count vs upstream capacity
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<double> kCaps = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                   0.9, 1.0, 1.2, 1.5, 2.0};
constexpr int kReps = 5;
const std::vector<std::string> kProfiles = {"meet", "teams-chrome"};

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig3", opts);

  header("Figure 3a", "Freeze ratio vs downstream capacity");
  {
    std::vector<TwoPartyConfig> jobs;
    for (double cap : kCaps) {
      for (const auto& profile : kProfiles) {
        for (int rep = 0; rep < kReps; ++rep) {
          TwoPartyConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1200 + static_cast<uint64_t>(rep);
          cfg.c1_down = DataRate::mbps_d(cap);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_two_party, opts.jobs);

    TextTable table({"downlink cap (Mbps)", "meet freeze% [CI]",
                     "teams-chrome freeze% [CI]"});
    report.begin_section("fig3a", "Freeze ratio vs downstream capacity");
    size_t k = 0;
    for (double cap : kCaps) {
      std::vector<std::string> row = {fmt(cap, 1)};
      for (const auto& profile : kProfiles) {
        auto vals = take(results, k, kReps, [](const TwoPartyResult& r) {
          return 100.0 * r.c1_received.freeze_ratio;
        });
        ConfidenceInterval ci = confidence_interval(vals);
        row.push_back(ci_cell(ci, 1));
        report.add_cell({{"cap_mbps", fmt(cap, 1)}, {"profile", profile}},
                        {{"freeze_pct", ci}});
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: freeze ratio rises as the downlink degrades; Meet ~10% at "
         "0.3 Mbps; Teams-Chrome shows a ~3.6% floor even unconstrained.");
  }

  header("Figure 3b", "FIR count vs upstream capacity");
  {
    std::vector<TwoPartyConfig> jobs;
    for (double cap : kCaps) {
      for (const auto& profile : kProfiles) {
        for (int rep = 0; rep < kReps; ++rep) {
          TwoPartyConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1300 + static_cast<uint64_t>(rep);
          cfg.c1_up = DataRate::mbps_d(cap);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_two_party, opts.jobs);

    TextTable table({"uplink cap (Mbps)", "meet FIRs [CI]",
                     "teams-chrome FIRs [CI]"});
    report.begin_section("fig3b", "FIR count vs upstream capacity");
    size_t k = 0;
    for (double cap : kCaps) {
      std::vector<std::string> row = {fmt(cap, 1)};
      for (const auto& profile : kProfiles) {
        auto vals = take(results, k, kReps, [](const TwoPartyResult& r) {
          return static_cast<double>(r.c2_received.fir_upstream);
        });
        ConfidenceInterval ci = confidence_interval(vals);
        row.push_back(ci_cell(ci, 1));
        report.add_cell({{"cap_mbps", fmt(cap, 1)}, {"profile", profile}},
                        {{"firs", ci}});
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: Teams-Chrome FIR count spikes below ~0.5 Mbps uplink "
         "(the high-resolution-at-low-rate bug produces undecodable "
         "frames); Meet stays low.");
  }
  return report.finish() ? 0 : 1;
}
