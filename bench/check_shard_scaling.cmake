# ctest script: the sharded-engine acceptance gate on the tentpole
# workload — a 200-party, 4-region cascaded conference.
#
# Two checks:
#  1. IDENTITY (always enforced): --shards 1 and --shards 4 must produce
#     byte-identical stdout and byte-identical --json reports once the
#     single run-dependent "timing" line is stripped. The partition is a
#     property of the topology; the thread count may only change wall
#     clock.
#  2. SCALING (hosts with >= 4 logical cores only): the 4-thread run must
#     be at least SPEEDUP_FLOOR_PCT/100 x faster than the 1-thread run.
#     On smaller hosts (the dev container is single-core — see
#     BENCH_microsim.json's num_cpus) the ratio is reported but not
#     enforced: four threads on one core cannot beat one thread, and
#     failing on that would only gate CI on hardware, not on code.
#
# usage: cmake -DBENCH=<bench_conference> -DWORKDIR=<dir>
#              [-DSPEEDUP_FLOOR_PCT=250] -P check_shard_scaling.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DBENCH=<binary> -DWORKDIR=<dir> -P "
                      "check_shard_scaling.cmake")
endif()
if(NOT DEFINED SPEEDUP_FLOOR_PCT)
  set(SPEEDUP_FLOOR_PCT 250)
endif()

set(shape --perf --participants 200 --regions 4 --duration 20)

foreach(s 1 4)
  execute_process(
    COMMAND "${BENCH}" ${shape} --shards ${s}
            --json "${WORKDIR}/shard_scaling_s${s}.json"
    OUTPUT_VARIABLE out_${s} RESULT_VARIABLE rc ERROR_VARIABLE err_${s})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "bench_conference ${shape} --shards ${s} failed (rc=${rc}):\n"
        "${err_${s}}")
  endif()
  if(NOT err_${s} MATCHES "CONF_PERF_TIMING wall_sec=([0-9]+)\\.([0-9]+)")
    message(FATAL_ERROR
        "no CONF_PERF_TIMING wall_sec= in --shards ${s} stderr:\n${err_${s}}")
  endif()
  # fmt(wall, 3) always prints 3 decimals: integer milliseconds.
  math(EXPR wall_ms_${s} "${CMAKE_MATCH_1} * 1000 + ${CMAKE_MATCH_2}")
endforeach()

# --- identity ---------------------------------------------------------------
if(NOT out_1 STREQUAL out_4)
  message(FATAL_ERROR
      "sharded engine is thread-count-dependent: --shards 1 and --shards 4 "
      "stdout differ.\n--- shards 1 ---\n${out_1}\n--- shards 4 ---\n"
      "${out_4}")
endif()

foreach(s 1 4)
  file(READ "${WORKDIR}/shard_scaling_s${s}.json" doc_${s})
  string(REGEX REPLACE "[^\n]*\"timing\"[^\n]*" "" doc_${s} "${doc_${s}}")
endforeach()
if(NOT doc_1 STREQUAL doc_4)
  message(FATAL_ERROR
      "sharded engine is thread-count-dependent: the --json reports differ "
      "outside the timing line (see ${WORKDIR}/shard_scaling_s{1,4}.json)")
endif()
message(STATUS
    "shard-identity: 200-party/4-region byte-identical at --shards 1 vs 4")

# --- scaling ----------------------------------------------------------------
cmake_host_system_information(RESULT cores QUERY NUMBER_OF_LOGICAL_CORES)
math(EXPR speedup_pct "${wall_ms_1} * 100 / ${wall_ms_4}")
if(cores LESS 4)
  message(STATUS
      "shard-scaling: host has ${cores} logical core(s); speedup "
      "${speedup_pct}% reported, floor ${SPEEDUP_FLOOR_PCT}% not enforced "
      "(needs >= 4 cores)")
else()
  math(EXPR need_ms "${wall_ms_4} * ${SPEEDUP_FLOOR_PCT} / 100")
  if(wall_ms_1 LESS ${need_ms})
    message(FATAL_ERROR
        "sharded core scaling regressed: shards=1 took ${wall_ms_1} ms vs "
        "shards=4 ${wall_ms_4} ms (speedup ${speedup_pct}%, floor "
        "${SPEEDUP_FLOOR_PCT}%)")
  endif()
  message(STATUS
      "shard-scaling: ${speedup_pct}% speedup at 4 shards >= "
      "${SPEEDUP_FLOOR_PCT}% floor (${wall_ms_1} ms -> ${wall_ms_4} ms)")
endif()
