// Reproduces Figures 5 and 6: response to a 30-second *downlink* capacity
// reduction, and the far client's uplink during it.
//   5a: downstream bitrate over time (drop to 0.25 Mbps)
//   5b: TTR vs drop severity
//   6:  C2's upstream bitrate while C1's downlink is constrained
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

const std::vector<std::string> kProfiles = {"meet", "teams", "zoom"};
constexpr int kReps = 4;

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = parse_sweep_args(argc, argv);
  BenchReport report("bench_fig5_6", opts);

  header("Figure 5a", "Downstream bitrate around a 30 s downlink drop to 0.25");
  {
    std::vector<DisruptionConfig> jobs;
    for (const auto& profile : kProfiles) {
      DisruptionConfig cfg;
      cfg.profile = profile;
      cfg.seed = 7;
      cfg.uplink = false;
      jobs.push_back(cfg);
    }
    auto results = Sweep::run(jobs, run_disruption, opts.jobs);
    report.begin_section("fig5a",
                         "Downstream bitrate around a 30 s downlink drop");
    for (size_t i = 0; i < jobs.size(); ++i) {
      const DisruptionResult& r = results[i];
      std::cout << kProfiles[i] << " (nominal " << fmt(r.ttr.nominal_mbps)
                << " Mbps, TTR "
                << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
                << "):\n  t(s):rate(Mbps) ";
      const auto& s = r.disrupted_series.samples();
      for (size_t j = 0; j < s.size(); j += 10) {
        std::cout << static_cast<int>(s[j].at.seconds()) << ":"
                  << fmt(s[j].value, 2) << " ";
      }
      std::cout << "\n";
      report.add_cell(
          {{"profile", kProfiles[i]}},
          {{"nominal_mbps", BenchReport::scalar(r.ttr.nominal_mbps)},
           {"ttr_sec", BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds()
                                                     : -1.0)}});
    }
  }

  header("Figure 5b", "Time to recovery vs downlink drop severity");
  {
    const std::vector<double> kDrops = {0.25, 0.5, 0.75, 1.0};
    std::vector<DisruptionConfig> jobs;
    for (double drop : kDrops) {
      for (const auto& profile : kProfiles) {
        for (int rep = 0; rep < kReps; ++rep) {
          DisruptionConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1700 + static_cast<uint64_t>(rep);
          cfg.uplink = false;
          cfg.drop_to = DataRate::mbps_d(drop);
          jobs.push_back(cfg);
        }
      }
    }
    auto results = Sweep::run(jobs, run_disruption, opts.jobs);

    TextTable table({"drop to (Mbps), downlink", "meet TTR s [CI]",
                     "teams TTR s [CI]", "zoom TTR s [CI]"});
    report.begin_section("fig5b", "Time to recovery vs downlink drop severity");
    size_t k = 0;
    for (double drop : kDrops) {
      std::vector<std::string> row = {fmt(drop, 2)};
      for (const auto& profile : kProfiles) {
        auto ttrs = take(results, k, kReps, [](const DisruptionResult& r) {
          return r.ttr.ttr ? r.ttr.ttr->seconds() : 210.0;
        });
        ConfidenceInterval ci = confidence_interval(ttrs);
        row.push_back(ci_cell(ci, 1));
        report.add_cell({{"drop_mbps", fmt(drop, 2)}, {"profile", profile}},
                        {{"ttr_sec", ci}});
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: Meet recovers in <10 s at every severity (SFU simulcast "
         "switch); Zoom fast (SVC layer re-add); Teams at least ~20 s "
         "slower at every level (end-to-end receiver-driven probing).");
  }

  header("Figure 6", "C2 upstream bitrate while C1's downlink drops to 0.25");
  {
    const std::vector<std::string> kFig6Profiles = {"meet", "teams"};
    std::vector<DisruptionConfig> jobs;
    for (const auto& profile : kFig6Profiles) {
      DisruptionConfig cfg;
      cfg.profile = profile;
      cfg.seed = 7;
      cfg.uplink = false;
      jobs.push_back(cfg);
    }
    auto results = Sweep::run(jobs, run_disruption, opts.jobs);
    report.begin_section("fig6", "C2 uplink while C1's downlink is dropped");
    for (size_t i = 0; i < jobs.size(); ++i) {
      const DisruptionResult& r = results[i];
      double before =
          r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(30),
                                      TimePoint::zero() + Duration::seconds(60))
              .value_or(0.0);
      double during =
          r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(65),
                                      TimePoint::zero() + Duration::seconds(90))
              .value_or(0.0);
      double after =
          r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(150),
                                      TimePoint::zero() + Duration::seconds(290))
              .value_or(0.0);
      std::cout << kFig6Profiles[i] << ": C2 uplink before=" << fmt(before)
                << " during=" << fmt(during) << " after=" << fmt(after)
                << " Mbps\n";
      report.add_cell({{"profile", kFig6Profiles[i]}},
                      {{"before_mbps", BenchReport::scalar(before)},
                       {"during_mbps", BenchReport::scalar(during)},
                       {"after_mbps", BenchReport::scalar(after)}});
    }
  }
  note("Expect: Meet's C2 keeps sending simulcast at full rate during the "
       "drop; Teams' C2 cuts its sending rate to what C1 can receive and "
       "recovers slowly.");
  return report.finish() ? 0 : 1;
}
