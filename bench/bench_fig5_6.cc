// Reproduces Figures 5 and 6: response to a 30-second *downlink* capacity
// reduction, and the far client's uplink during it.
//   5a: downstream bitrate over time (drop to 0.25 Mbps)
//   5b: TTR vs drop severity
//   6:  C2's upstream bitrate while C1's downlink is constrained
#include "bench_common.h"
#include "harness/scenario.h"

namespace {

using namespace vca;
using namespace vca::bench;

}  // namespace

int main() {
  header("Figure 5a", "Downstream bitrate around a 30 s downlink drop to 0.25");
  for (const std::string profile : {"meet", "teams", "zoom"}) {
    DisruptionConfig cfg;
    cfg.profile = profile;
    cfg.seed = 7;
    cfg.uplink = false;
    DisruptionResult r = run_disruption(cfg);
    std::cout << profile << " (nominal " << fmt(r.ttr.nominal_mbps)
              << " Mbps, TTR "
              << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + "s" : "censored")
              << "):\n  t(s):rate(Mbps) ";
    const auto& s = r.disrupted_series.samples();
    for (size_t i = 0; i < s.size(); i += 10) {
      std::cout << static_cast<int>(s[i].at.seconds()) << ":"
                << fmt(s[i].value, 2) << " ";
    }
    std::cout << "\n";
  }

  header("Figure 5b", "Time to recovery vs downlink drop severity");
  {
    TextTable table({"drop to (Mbps), downlink", "meet TTR s [CI]",
                     "teams TTR s [CI]", "zoom TTR s [CI]"});
    for (double drop : {0.25, 0.5, 0.75, 1.0}) {
      std::vector<std::string> row = {fmt(drop, 2)};
      for (const std::string profile : {"meet", "teams", "zoom"}) {
        std::vector<double> ttrs;
        for (int rep = 0; rep < 4; ++rep) {
          DisruptionConfig cfg;
          cfg.profile = profile;
          cfg.seed = 1700 + static_cast<uint64_t>(rep);
          cfg.uplink = false;
          cfg.drop_to = DataRate::mbps_d(drop);
          DisruptionResult r = run_disruption(cfg);
          ttrs.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 210.0);
        }
        row.push_back(ci_cell(confidence_interval(ttrs), 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    note("Expect: Meet recovers in <10 s at every severity (SFU simulcast "
         "switch); Zoom fast (SVC layer re-add); Teams at least ~20 s "
         "slower at every level (end-to-end receiver-driven probing).");
  }

  header("Figure 6", "C2 upstream bitrate while C1's downlink drops to 0.25");
  for (const std::string profile : {"meet", "teams"}) {
    DisruptionConfig cfg;
    cfg.profile = profile;
    cfg.seed = 7;
    cfg.uplink = false;
    DisruptionResult r = run_disruption(cfg);
    double before =
        r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(30),
                                    TimePoint::zero() + Duration::seconds(60))
            .value_or(0.0);
    double during =
        r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(65),
                                    TimePoint::zero() + Duration::seconds(90))
            .value_or(0.0);
    double after =
        r.c2_up_series.mean_between(TimePoint::zero() + Duration::seconds(150),
                                    TimePoint::zero() + Duration::seconds(290))
            .value_or(0.0);
    std::cout << profile << ": C2 uplink before=" << fmt(before)
              << " during=" << fmt(during) << " after=" << fmt(after)
              << " Mbps\n";
  }
  note("Expect: Meet's C2 keeps sending simulcast at full rate during the "
       "drop; Teams' C2 cuts its sending rate to what C1 can receive and "
       "recovers slowly.");
  return 0;
}
