// google-benchmark microbenchmarks for the simulator substrate itself:
// scheduler throughput, link serialization, TCP transfer, and a full
// two-party call per simulated minute. These back DESIGN.md's "measured
// hot path" numbers and gate the perf-smoke ctest floor.
#include <benchmark/benchmark.h>

#include "core/scheduler.h"
#include "harness/scenario.h"
#include "net/link.h"
#include "net/node.h"
#include "transport/tcp.h"

namespace {

using namespace vca;

// Self-rescheduling functor shaped like the simulator's real closures
// ([this]-style captures, trivially copyable, far under the scheduler's
// 64-byte inline capture budget). The committed pre-overhaul baseline
// (BENCH_microsim_pre.json) measured the same chain through
// std::function, which is what the old scheduler stored.
struct ChurnChain {
  EventScheduler* sched;
  int64_t* count;
  int64_t limit;
  void operator()() const {
    if (++*count < limit) sched->schedule(Duration::micros(10), *this);
  }
};

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventScheduler sched;
    int64_t count = 0;
    ChurnChain chain{&sched, &count, state.range(0)};
    sched.schedule(Duration::micros(10), chain);
    sched.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerChurn)->Arg(1000)->Arg(100000);

void BM_LinkSaturation(benchmark::State& state) {
  for (auto _ : state) {
    EventScheduler sched;
    Link::Config cfg;
    cfg.rate = DataRate::mbps(100);
    cfg.queue_bytes = 1 << 20;
    Link link(&sched, "l", cfg);
    struct Sink : PacketSink {
      int64_t n = 0;
      void deliver(Packet) override { ++n; }
    } sink;
    link.set_sink(&sink);
    for (int i = 0; i < state.range(0); ++i) {
      Packet p;
      p.id = static_cast<uint64_t>(i);
      p.size_bytes = 1200;
      link.deliver(std::move(p));
    }
    sched.run_all();
    benchmark::DoNotOptimize(sink.n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkSaturation)->Arg(10000);

void BM_TcpTransfer10MB(benchmark::State& state) {
  for (auto _ : state) {
    EventScheduler sched;
    Host a(1, "a"), b(2, "b");
    ForwardingNode router("r");
    Link::Config cfg;
    cfg.rate = DataRate::mbps(100);
    cfg.propagation = Duration::millis(5);
    cfg.queue_bytes = 1 << 20;
    Link up(&sched, "up", cfg), down(&sched, "down", cfg);
    a.set_uplink(&up);
    b.set_uplink(&down);  // b's acks return via its own "uplink"
    up.set_sink(&router);
    down.set_sink(&router);
    router.add_route(1, &a);
    router.add_route(2, &b);

    TcpSender sender(&sched, &a, {.flow = 1, .dst = 2});
    TcpReceiverEndpoint receiver(&sched, &b, {.flow = 1, .peer = 1});
    b.register_flow(1, [&](Packet p) { receiver.handle_packet(p); });
    a.register_flow(1, [&](Packet p) { sender.handle_packet(p); });
    sender.write(10 << 20);
    sched.run_until(TimePoint::zero() + Duration::seconds(30));
    benchmark::DoNotOptimize(receiver.delivered_bytes());
  }
  state.SetBytesProcessed(state.iterations() * (10 << 20));
}
BENCHMARK(BM_TcpTransfer10MB);

void BM_TwoPartyCallMinute(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    TwoPartyConfig cfg;
    cfg.profile = "meet";
    cfg.seed = seed++;
    cfg.duration = Duration::seconds(60);
    TwoPartyResult r = run_two_party(cfg);
    benchmark::DoNotOptimize(r.c1_up_mbps);
  }
}
BENCHMARK(BM_TwoPartyCallMinute)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
