# ctest script: the oracle layer must catch an injected liveness wedge,
# the shrinker must minimize it, and the printed repro command must
# replay to the same failure. Run as:
#   cmake -DBENCH=<vcabench_fuzz> -P this_script
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "usage: cmake -DBENCH=<binary> -P "
                      "check_fuzz_shrink.cmake")
endif()

execute_process(
  COMMAND "${BENCH}" --seeds 2 --inject-wedge --shrink
  OUTPUT_VARIABLE out RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "vcabench_fuzz --inject-wedge exited 0; the liveness "
                      "oracle missed the injected wedge:\n${out}")
endif()

if(NOT out MATCHES "\\[liveness-wedge\\]")
  message(FATAL_ERROR "expected a [liveness-wedge] failure in:\n${out}")
endif()

# Pull the first minimized spec out of the shrinker's repro line:
#   repro:   vcabench_fuzz --replay '<spec>'
if(NOT out MATCHES "repro:   vcabench_fuzz --replay '([^']+)'")
  message(FATAL_ERROR "no shrinker repro line in:\n${out}")
endif()
set(minimal_spec "${CMAKE_MATCH_1}")

# The minimal scenario must have shed the randomized fault load: the
# injected wedge alone explains the failure.
if(minimal_spec MATCHES "fl=")
  message(FATAL_ERROR "shrinker left faults in the minimal spec: "
                      "${minimal_spec}")
endif()

execute_process(
  COMMAND "${BENCH}" --replay "${minimal_spec}"
  OUTPUT_VARIABLE replay_out RESULT_VARIABLE replay_rc)
if(replay_rc EQUAL 0)
  message(FATAL_ERROR "minimized repro replayed clean; shrinking lost the "
                      "failure: ${minimal_spec}\n${replay_out}")
endif()
if(NOT replay_out MATCHES "\\[liveness-wedge\\]")
  message(FATAL_ERROR "minimized repro failed with a different category:\n"
                      "${replay_out}")
endif()

message(STATUS "vcabench_fuzz: wedge caught, minimized, and replayed from "
               "the printed command")
