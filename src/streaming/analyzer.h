// StreamingAnalyzer: the online inference service (tentpole of ROADMAP
// item 2). Ingests packets one at a time — from a live TraceRecorder
// sink or a chunked pcap replay, never a whole-file load — and emits:
//
//   * per-second WindowReports for every active promoted flow (rate,
//     fps, freeze events observed in that window), and
//   * a final StreamReport per flow generation, flushed when the flow is
//     evicted (LRU pressure or idle timeout) or at finish().
//
// State is strictly bounded by StreamingConfig::memory_cap_bytes via the
// sketch-gated FlowTable; the per-flow estimators are the same
// incremental core the offline pipeline runs (analysis/inference.h), in
// bounded mode. Report order is deterministic: windows emit in key
// order per window roll, final reports in eviction order (LRU order is
// packet-arrival order, idle/flush sweeps sort by key), so the same
// input — tapped live or replayed from a pcap — produces byte-identical
// report streams (enforced by streaming_analyzer_test).
//
// By default reports accumulate in vectors for tests and the CLI; a
// long-running service installs sinks instead, keeping the analyzer's
// own output O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "streaming/flow_table.h"
#include "trace/pcap.h"

namespace vca {

// One promoted flow's activity during one window. fps / rate_mbps are
// over the window span, so a 1 s window reads directly as per-second.
struct WindowReport {
  int64_t window_start_ns = 0;
  StreamKey key;
  StreamKind kind = StreamKind::kUnknown;  // provisional classification
  int64_t packets = 0;
  int64_t ip_bytes = 0;
  int frames = 0;
  int freeze_events = 0;
  double fps = 0.0;
  double rate_mbps = 0.0;

  bool operator==(const WindowReport&) const = default;
};

class StreamingAnalyzer {
 public:
  using WindowSink = std::function<void(const WindowReport&)>;
  using ReportSink = std::function<void(const StreamReport&)>;

  struct Stats {
    int64_t records_in = 0;
    int64_t parse_failures = 0;
    int64_t packets = 0;  // parsed and routed
    int64_t windows_emitted = 0;
    int64_t final_reports = 0;
  };

  explicit StreamingAnalyzer(StreamingConfig cfg = {});

  // Install sinks to stream reports out instead of accumulating them.
  void set_window_sink(WindowSink sink) { window_sink_ = std::move(sink); }
  void set_report_sink(ReportSink sink);

  // Ingest one captured record (parses the synthesized headers).
  void on_record(const PacketRecord& rec);
  // Ingest an already-parsed packet (synthetic workloads skip the byte
  // layer; the parse cost is not what those benches measure).
  void on_parsed(const ParsedPacket& p);

  // Live tap adapter: recorder.set_sink(analyzer.sink()) turns the
  // simulated tcpdump into a no-accumulation feed of this analyzer
  // (matches TraceRecorder::RecordSink).
  std::function<void(const PacketRecord&)> sink() {
    return [this](const PacketRecord& rec) { on_record(rec); };
  }

  // Replays a pcap file through the chunked reader; false if the file
  // cannot be opened. Does NOT finish() — callers may replay several
  // files into one analyzer before flushing.
  bool replay_pcap(const std::string& path);

  // End of input: closes the current window and flushes every live flow.
  void finish();

  const std::vector<StreamReport>& reports() const { return reports_; }
  const std::vector<WindowReport>& windows() const { return windows_; }
  const Stats& stats() const { return stats_; }
  const FlowTable& table() const { return table_; }
  const StreamingConfig& config() const { return cfg_; }

 private:
  void roll_windows(int64_t ts_ns);
  void emit_window(int64_t window_start_ns);

  StreamingConfig cfg_;
  FlowTable table_;
  int64_t window_end_ns_ = -1;
  WindowSink window_sink_;
  ReportSink report_sink_;
  std::vector<StreamReport> reports_;
  std::vector<WindowReport> windows_;
  Stats stats_;
};

}  // namespace vca
