#include "streaming/corpus.h"

#include <fstream>
#include <limits>
#include <sstream>

namespace vca {

namespace {
constexpr const char* kMagic = "# vca-labels v1";
}  // namespace

std::vector<LabelRow> labels_from_seconds(const std::vector<SecondStats>& s) {
  std::vector<LabelRow> rows;
  rows.reserve(s.size());
  for (const SecondStats& sec : s) {
    LabelRow r;
    r.second = sec.at.ns() / 1'000'000'000;
    r.fps = sec.fps;
    r.qp = sec.avg_qp;
    r.width = sec.width;
    r.freeze_ms = sec.freeze_ms;
    rows.push_back(r);
  }
  return rows;
}

bool write_labels_file(const std::string& path,
                       const std::vector<LabelRow>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << kMagic << '\n';
  f << "# second fps qp width freeze_ms\n";
  f.precision(std::numeric_limits<double>::max_digits10);  // exact round trip
  for (const LabelRow& r : rows) {
    f << r.second << ' ' << r.fps << ' ' << r.qp << ' ' << r.width << ' '
      << r.freeze_ms << '\n';
  }
  return f.good();
}

bool read_labels_file(const std::string& path, std::vector<LabelRow>* out) {
  out->clear();
  std::ifstream f(path);
  if (!f) return false;
  std::string line;
  if (!std::getline(f, line) || line != kMagic) return false;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    LabelRow r;
    if (!(ss >> r.second >> r.fps >> r.qp >> r.width >> r.freeze_ms)) {
      out->clear();
      return false;
    }
    out->push_back(r);
  }
  return true;
}

}  // namespace vca
