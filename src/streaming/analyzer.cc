#include "streaming/analyzer.h"

#include "analysis/parse.h"

namespace vca {

StreamingAnalyzer::StreamingAnalyzer(StreamingConfig cfg)
    : cfg_(cfg), table_(cfg) {
  table_.set_report_sink([this](const StreamReport& r) {
    ++stats_.final_reports;
    if (report_sink_) {
      report_sink_(r);
    } else {
      reports_.push_back(r);
    }
  });
}

void StreamingAnalyzer::set_report_sink(ReportSink sink) {
  report_sink_ = std::move(sink);
}

void StreamingAnalyzer::on_record(const PacketRecord& rec) {
  ++stats_.records_in;
  std::optional<ParsedPacket> p = parse_frame(rec);
  if (!p) {
    ++stats_.parse_failures;
    return;
  }
  on_parsed(*p);
}

void StreamingAnalyzer::on_parsed(const ParsedPacket& p) {
  roll_windows(p.ts_ns);
  ++stats_.packets;
  StreamKey key{p.src_ip, p.dst_ip, p.src_port, p.dst_port,
                p.is_rtp ? p.ssrc : 0};
  table_.on_packet(key, p);
}

bool StreamingAnalyzer::replay_pcap(const std::string& path) {
  PcapFileReader reader(path);
  if (!reader.ok()) return false;
  PacketRecord rec;
  while (reader.next(&rec)) on_record(rec);
  return true;
}

void StreamingAnalyzer::roll_windows(int64_t ts_ns) {
  if (window_end_ns_ < 0) {
    window_end_ns_ = (ts_ns / cfg_.window_ns + 1) * cfg_.window_ns;
    return;
  }
  if (ts_ns < window_end_ns_) return;
  // The window that just closed is the last one that saw packets: every
  // packet since the previous roll predates this boundary (rolls fire on
  // the first packet past it), so silent windows in a long gap emit
  // nothing and cost nothing.
  emit_window(window_end_ns_ - cfg_.window_ns);
  table_.sweep_idle(ts_ns);
  window_end_ns_ = (ts_ns / cfg_.window_ns + 1) * cfg_.window_ns;
}

void StreamingAnalyzer::emit_window(int64_t window_start_ns) {
  double span_sec = static_cast<double>(cfg_.window_ns) * 1e-9;
  table_.for_each_live([&](const StreamKey& key, StreamAccumulator& acc) {
    StreamAccumulator::Window w = acc.take_window();
    if (w.packets == 0) return;
    WindowReport r;
    r.window_start_ns = window_start_ns;
    r.key = key;
    r.kind = acc.provisional_kind();
    r.packets = w.packets;
    r.ip_bytes = w.ip_bytes;
    r.frames = w.frames;
    r.freeze_events = w.freeze_events;
    r.fps = static_cast<double>(w.frames) / span_sec;
    r.rate_mbps = static_cast<double>(w.ip_bytes) * 8.0 / span_sec / 1e6;
    ++stats_.windows_emitted;
    if (window_sink_) {
      window_sink_(r);
    } else {
      windows_.push_back(r);
    }
  });
}

void StreamingAnalyzer::finish() {
  if (window_end_ns_ >= 0) emit_window(window_end_ns_ - cfg_.window_ns);
  table_.flush_all();
  window_end_ns_ = -1;
}

}  // namespace vca
