// Labeled-corpus generation (after Odiathevar et al., PAPERS.md): the
// simulator as an infinite training-data factory for network monitors.
//
// A corpus item is a pcap any capture tool can open plus a ground-truth
// label sidecar: one row per second of the observed client's received
// video, taken from the simulator's getStats()-equivalent
// (WebRtcStatsCollector SecondStats) — exactly the truth a blind
// monitoring model should learn to recover from the packet stream. The
// sidecar is a versioned, line-oriented text file:
//
//   # vca-labels v1
//   # second fps qp width freeze_ms
//   30 30.000 28.50 1280 0.0
//
// `second` is the virtual-clock second the row describes (end of the 1 s
// window). write/read round-trip exactly (values printed with enough
// digits), which streaming_corpus_test asserts against the live
// SecondStats on both a two-party call and a 50-party conference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/webrtc_stats.h"

namespace vca {

struct LabelRow {
  int64_t second = 0;      // virtual seconds since t=0 (window end)
  double fps = 0.0;
  double qp = 0.0;
  int width = 0;
  double freeze_ms = 0.0;

  bool operator==(const LabelRow&) const = default;
};

// Converts collector output to sidecar rows (1:1, in order).
std::vector<LabelRow> labels_from_seconds(const std::vector<SecondStats>& s);

// Writes the sidecar; false if the file cannot be opened.
bool write_labels_file(const std::string& path,
                       const std::vector<LabelRow>& rows);

// Parses a sidecar back; false on open failure, bad header, or a
// malformed row. Partial output is cleared on failure.
bool read_labels_file(const std::string& path, std::vector<LabelRow>* out);

}  // namespace vca
