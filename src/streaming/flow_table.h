// Bounded flow table for the streaming analyzer: sketch-gated admission,
// LRU + idle eviction, final-report flush.
//
// Memory model (the DESIGN.md "streaming inference" entry derives the
// numbers): total footprint = sketch grid + max_flows x per-flow cost,
// where per-flow cost is the bounded StreamAccumulator (its seq-window
// ring, fps histogram, and freeze gap ring are all fixed-size) plus the
// hash-map node and LRU node. max_flows is computed from the configured
// memory cap, and the map's buckets are reserved up front, so processing
// a million distinct flows never allocates past the cap: mice stay in
// the sketch, heavy hitters get promoted, and when the table is full the
// least-recently-active flow is flushed (its final StreamReport emitted)
// to make room. A flow that returns after eviction re-promotes on its
// next packet — its sketch counters persist — and starts a fresh
// generation whose report covers only post-rejoin packets, so nothing is
// double-counted across generations.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "analysis/inference.h"
#include "streaming/sketch.h"

namespace vca {

struct StreamingConfig {
  // Hard cap on the analyzer's working state (sketch + flow table).
  size_t memory_cap_bytes = 32 * 1024 * 1024;
  // Sketch min-estimate a flow must reach to earn full per-flow state.
  // 1 admits every flow on first sight (useful when replaying a curated
  // capture where every flow matters).
  uint32_t promote_packets = 8;
  // A promoted flow silent this long is evicted at the next window roll.
  int64_t idle_timeout_ns = 15'000'000'000;
  // Windowed-report period.
  int64_t window_ns = 1'000'000'000;
  // Sketch geometry: width counters/row (rounded up to a power of two).
  size_t sketch_width = 1 << 15;
  int sketch_depth = 4;
};

class FlowTable {
 public:
  using ReportSink = std::function<void(const StreamReport&)>;

  struct Stats {
    int64_t sketch_only_packets = 0;  // charged to the sketch, no state yet
    int64_t promoted = 0;             // includes re-promotions after evict
    int64_t evicted_lru = 0;
    int64_t evicted_idle = 0;
    size_t peak_live_flows = 0;
  };

  explicit FlowTable(const StreamingConfig& cfg);

  // Every evicted or flushed flow's final report goes here.
  void set_report_sink(ReportSink sink) { report_sink_ = std::move(sink); }

  // Routes one parsed packet: charges the sketch, promotes/evicts as
  // needed, feeds the flow's accumulator when promoted. Returns the
  // accumulator, or nullptr while the flow is below the promotion bar.
  StreamAccumulator* on_packet(const StreamKey& key, const ParsedPacket& p);

  // Evicts (with final-report flush) every flow idle past the timeout.
  void sweep_idle(int64_t now_ns);

  // Flushes all remaining flows, in key order. The sketch survives (a
  // flush is end-of-input, not state reset).
  void flush_all();

  // Iterates live flows in deterministic (key-sorted) order.
  void for_each_live(
      const std::function<void(const StreamKey&, StreamAccumulator&)>& fn);

  size_t live_flows() const { return flows_.size(); }
  size_t max_flows() const { return max_flows_; }
  const Stats& stats() const { return stats_; }
  const CountMinSketch& sketch() const { return sketch_; }

  // The budgeting constant: conservative ceiling on one promoted flow's
  // heap footprint (bounded StreamAccumulator ~2.6 KB incl. its 512-seq
  // ring, plus map node, LRU node, and allocator slack).
  static constexpr size_t kPerFlowCostBytes = 4096;

 private:
  struct KeyHash {
    size_t operator()(const StreamKey& k) const {
      return static_cast<size_t>(stream_key_hash(k));
    }
  };
  struct Entry {
    StreamAccumulator acc{StreamAccumulator::Mode::kBounded};
    std::list<StreamKey>::iterator lru_it;
  };

  void evict(const StreamKey& key, bool idle);

  StreamingConfig cfg_;
  CountMinSketch sketch_;
  size_t max_flows_;
  std::unordered_map<StreamKey, Entry, KeyHash> flows_;
  std::list<StreamKey> lru_;  // front = most recently active
  ReportSink report_sink_;
  Stats stats_;
};

}  // namespace vca
