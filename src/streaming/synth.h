// Deterministic synthetic churn workload for the streaming analyzer's
// benches and memory-cap tests: a time-ordered stream of parsed packets
// drawn from three populations, sized so a run exercises every flow-
// table path at once —
//
//   * mice: one-shot probes (3 small packets each, staggered joins).
//     With a default promotion bar they live and die in the sketch; at
//     100k+ of them they are the "million concurrent flows" the table
//     must shrug off without allocating state.
//   * mid flows: burst long enough to promote, then go silent — the
//     idle-eviction + final-flush churn load.
//   * hot flows: synthetic 30 fps video (3-packet frames on a 90 kHz
//     clock) that stay promoted for the whole run and give the windowed
//     estimators a real signal.
//
// Everything is computed from the seed; iteration is allocation-free
// after construction (fixed event heap + per-flow scalar arrays), so a
// bench can baseline the allocation counter after building the
// generator and attribute every later byte to the analyzer under test.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/inference.h"
#include "analysis/parse.h"

namespace vca {

struct SynthChurnConfig {
  int mice_flows = 100'000;
  int mid_flows = 10'000;
  int hot_flows = 200;
  double duration_sec = 30.0;
  uint64_t seed = 1;
};

class SynthChurn {
 public:
  explicit SynthChurn(const SynthChurnConfig& cfg) : cfg_(cfg) {
    int total = cfg_.mice_flows + cfg_.mid_flows + cfg_.hot_flows;
    seqs_.assign(static_cast<size_t>(total), 0);
    stages_.assign(static_cast<size_t>(total), 0);
    heap_.reserve(static_cast<size_t>(total));
    int64_t dur_ns = static_cast<int64_t>(cfg_.duration_sec * 1e9);
    for (int f = 0; f < total; ++f) {
      heap_.push_back(Ev{join_time_ns(f, dur_ns), f});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
  }

  // Next packet in time order; false when the workload is exhausted.
  bool next(ParsedPacket* out) {
    if (pending_count_ > pending_pos_) {
      *out = pending_[pending_pos_++];
      return true;
    }
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Ev ev = heap_.back();
    heap_.pop_back();
    emit(ev);
    int64_t next_ns = next_event_ns(ev);
    if (next_ns >= 0) {
      heap_.push_back(Ev{next_ns, ev.flow});
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
    ++emitted_events_;
    *out = pending_[pending_pos_++];
    return true;
  }

  int total_flows() const {
    return cfg_.mice_flows + cfg_.mid_flows + cfg_.hot_flows;
  }

  static StreamKey key_of(const ParsedPacket& p) {
    return StreamKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port,
                     p.is_rtp ? p.ssrc : 0};
  }

 private:
  struct Ev {
    int64_t at_ns;
    int flow;
  };
  // Min-heap by time, flow id as the deterministic tiebreak.
  static bool later(const Ev& a, const Ev& b) {
    if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
    return a.flow > b.flow;
  }

  bool is_mouse(int f) const { return f < cfg_.mice_flows; }
  bool is_mid(int f) const {
    return f >= cfg_.mice_flows && f < cfg_.mice_flows + cfg_.mid_flows;
  }

  static uint64_t mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  int64_t join_time_ns(int f, int64_t dur_ns) const {
    // Joins staggered over the run with room for each class to play out
    // its whole lifecycle before the end of input.
    int64_t tail = is_mouse(f) ? 2'000'000'000
                   : is_mid(f) ? 4'000'000'000
                                : dur_ns - 1;  // hot flows join early
    int64_t window = std::max<int64_t>(1, dur_ns - tail);
    if (!is_mouse(f) && !is_mid(f)) window = std::min<int64_t>(window, 1'000'000'000);
    return static_cast<int64_t>(mix(cfg_.seed ^ static_cast<uint64_t>(f)) %
                                static_cast<uint64_t>(window));
  }

  // Lifecycle cadence per class; stage counts packets/frames emitted.
  static constexpr int kMousePackets = 3;
  static constexpr int64_t kMouseGapNs = 500'000'000;
  static constexpr int kMidPackets = 12;
  static constexpr int64_t kMidGapNs = 250'000'000;
  static constexpr int64_t kHotFrameNs = 33'333'333;  // ~30 fps

  int64_t next_event_ns(const Ev& ev) {
    int stage = ++stages_[static_cast<size_t>(ev.flow)];
    if (is_mouse(ev.flow)) {
      return stage < kMousePackets ? ev.at_ns + kMouseGapNs : -1;
    }
    if (is_mid(ev.flow)) {
      return stage < kMidPackets ? ev.at_ns + kMidGapNs : -1;
    }
    int64_t next = ev.at_ns + kHotFrameNs;
    int64_t dur_ns = static_cast<int64_t>(cfg_.duration_sec * 1e9);
    return next < dur_ns ? next : -1;
  }

  void emit(const Ev& ev) {
    pending_pos_ = 0;
    pending_count_ = 0;
    if (is_mouse(ev.flow)) {
      push_packet(ev, 150, /*rtp=*/false, /*marker=*/false);
    } else if (is_mid(ev.flow)) {
      push_packet(ev, 500, /*rtp=*/true, /*marker=*/true);
    } else {
      // One 3-packet video frame (same RTP timestamp, marker on last).
      push_packet(ev, 900, true, false);
      push_packet(ev, 900, true, false);
      push_packet(ev, 450, true, true);
    }
  }

  void push_packet(const Ev& ev, int ip_bytes, bool rtp, bool marker) {
    ParsedPacket p;
    // Packets inside one event get consecutive nanoseconds so the stream
    // stays strictly time-ordered.
    p.ts_ns = ev.at_ns + pending_count_;
    p.wire_bytes = static_cast<uint32_t>(ip_bytes + 14);
    p.ip_bytes = ip_bytes;
    uint32_t f = static_cast<uint32_t>(ev.flow);
    p.src_ip = 0x0b000000u | (f & 0xffffffu);  // 11.x.x.x, unique per flow
    p.dst_ip = 0x0a000001u;
    p.src_port = static_cast<uint16_t>(20000 + (f % 40000));
    p.dst_port = 3478;
    p.ip_proto = 17;
    if (rtp) {
      p.is_rtp = true;
      p.payload_type = 96;
      p.marker = marker;
      p.seq = seqs_[static_cast<size_t>(ev.flow)]++;
      p.rtp_timestamp = static_cast<uint32_t>(ev.at_ns / (1'000'000'000 / 90'000));
      p.ssrc = 0x100000u + f;
    } else {
      p.is_stun = true;
    }
    pending_[pending_count_++] = p;
  }

  SynthChurnConfig cfg_;
  std::vector<Ev> heap_;
  std::vector<uint16_t> seqs_;
  std::vector<uint8_t> stages_;
  ParsedPacket pending_[4];
  int pending_pos_ = 0;
  int pending_count_ = 0;
  int64_t emitted_events_ = 0;
};

}  // namespace vca
