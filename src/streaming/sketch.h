// Count-min sketch: the streaming service's prefilter (ROADMAP item 2's
// "millions of concurrent flows" requirement).
//
// A conference edge sees a long tail of mice — STUN probes, DNS, one-off
// keepalives — that would each cost a full per-flow StreamState if the
// flow table admitted every 5-tuple on first sight. The sketch charges
// every packet to d counters (one per row, hashes derived from the
// flow's 64-bit key hash) and only when the minimum over those rows
// reaches the promotion threshold does the flow earn real state. Memory
// is a fixed width x depth grid of uint32 counters, independent of flow
// count; the classic guarantee applies: the estimate never undercounts,
// and overcounts by more than 2N/width with probability at most
// 2^-depth, so false promotions are rare and bounded (asserted by
// streaming_sketch_test).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace vca {

class CountMinSketch {
 public:
  // `width` counters per row (rounded up to a power of two so row
  // indexing is a mask, not a division), `depth` rows.
  CountMinSketch(size_t width, int depth)
      : depth_(depth) {
    size_t w = 64;
    while (w < width) w <<= 1;
    width_ = w;
    mask_ = w - 1;
    counters_.assign(width_ * static_cast<size_t>(depth_), 0);
  }

  // Charges `n` to the key and returns the updated min-row estimate.
  uint32_t add(uint64_t key_hash, uint32_t n = 1) {
    uint32_t est = UINT32_MAX;
    for (int d = 0; d < depth_; ++d) {
      uint32_t& c = counters_[slot(key_hash, d)];
      // Saturate: a counter pinned at max keeps the min-estimate sound.
      if (c <= UINT32_MAX - n) c += n;
      if (c < est) est = c;
    }
    return est;
  }

  uint32_t estimate(uint64_t key_hash) const {
    uint32_t est = UINT32_MAX;
    for (int d = 0; d < depth_; ++d) {
      uint32_t c = counters_[slot(key_hash, d)];
      if (c < est) est = c;
    }
    return est;
  }

  void clear() {
    std::memset(counters_.data(), 0, counters_.size() * sizeof(uint32_t));
  }

  size_t width() const { return width_; }
  int depth() const { return depth_; }
  size_t memory_bytes() const { return counters_.size() * sizeof(uint32_t); }

 private:
  // Row hashes: mix the key hash with a per-row odd constant, then take
  // the high bits (the well-mixed ones under multiply) masked to width.
  size_t slot(uint64_t key_hash, int d) const {
    uint64_t h = key_hash * kRowSalts[d & 7];
    h ^= h >> 29;
    return static_cast<size_t>(d) * width_ + (static_cast<size_t>(h) & mask_);
  }

  static constexpr uint64_t kRowSalts[8] = {
      0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull,
      0xd6e8feb86659fd93ull, 0xa0761d6478bd642full, 0xe7037ed1a0b428dbull,
      0x8ebc6af09c88c6e3ull, 0x589965cc75374cc3ull};

  size_t width_ = 0;
  size_t mask_ = 0;
  int depth_ = 0;
  std::vector<uint32_t> counters_;
};

}  // namespace vca
