#include "streaming/flow_table.h"

#include <algorithm>

namespace vca {

FlowTable::FlowTable(const StreamingConfig& cfg)
    : cfg_(cfg), sketch_(cfg.sketch_width, cfg.sketch_depth) {
  size_t sketch_bytes = sketch_.memory_bytes();
  size_t budget =
      cfg_.memory_cap_bytes > sketch_bytes ? cfg_.memory_cap_bytes - sketch_bytes
                                           : 0;
  max_flows_ = std::max<size_t>(16, budget / kPerFlowCostBytes);
  // Reserve buckets up front: table growth must never rehash mid-run
  // (a rehash spike would breach the cap exactly when the table is full).
  flows_.reserve(max_flows_);
}

StreamAccumulator* FlowTable::on_packet(const StreamKey& key,
                                        const ParsedPacket& p) {
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    uint64_t h = stream_key_hash(key);
    uint32_t est = sketch_.add(h);
    if (est < cfg_.promote_packets) {
      ++stats_.sketch_only_packets;
      return nullptr;
    }
    if (flows_.size() >= max_flows_) {
      // Full: the least-recently-active flow makes room.
      evict(lru_.back(), /*idle=*/false);
      ++stats_.evicted_lru;
    }
    lru_.push_front(key);
    it = flows_.try_emplace(key).first;
    it->second.lru_it = lru_.begin();
    ++stats_.promoted;
    if (flows_.size() > stats_.peak_live_flows) {
      stats_.peak_live_flows = flows_.size();
    }
  } else {
    sketch_.add(stream_key_hash(key));
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  it->second.acc.on_packet(p);
  return &it->second.acc;
}

void FlowTable::evict(const StreamKey& key, bool idle) {
  (void)idle;
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  StreamReport r = it->second.acc.finish(key);
  lru_.erase(it->second.lru_it);
  flows_.erase(it);
  if (report_sink_) report_sink_(r);
}

void FlowTable::sweep_idle(int64_t now_ns) {
  std::vector<StreamKey> idle;
  for (const auto& [key, entry] : flows_) {
    if (now_ns - entry.acc.last_ns() >= cfg_.idle_timeout_ns) {
      idle.push_back(key);
    }
  }
  std::sort(idle.begin(), idle.end());  // deterministic flush order
  for (const StreamKey& key : idle) {
    evict(key, /*idle=*/true);
    ++stats_.evicted_idle;
  }
}

void FlowTable::flush_all() {
  std::vector<StreamKey> keys;
  keys.reserve(flows_.size());
  for (const auto& [key, entry] : flows_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const StreamKey& key : keys) evict(key, /*idle=*/false);
}

void FlowTable::for_each_live(
    const std::function<void(const StreamKey&, StreamAccumulator&)>& fn) {
  std::vector<StreamKey> keys;
  keys.reserve(flows_.size());
  for (const auto& [key, entry] : flows_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const StreamKey& key : keys) {
    auto it = flows_.find(key);
    if (it != flows_.end()) fn(key, it->second.acc);
  }
}

}  // namespace vca
