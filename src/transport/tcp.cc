#include "transport/tcp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vca {

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

TcpReceiverEndpoint::TcpReceiverEndpoint(EventScheduler* sched, Host* host,
                                         Config cfg)
    : sched_(sched), host_(host), cfg_(cfg) {}

void TcpReceiverEndpoint::handle_packet(const Packet& p) {
  const TcpMeta& m = p.tcp();
  if (m.is_ack) return;  // we only receive data

  int64_t newly = 0;
  if (m.seq == next_expected_) {
    next_expected_ += static_cast<uint64_t>(m.payload_bytes);
    newly += m.payload_bytes;
    // Drain contiguous out-of-order segments.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= next_expected_) {
      uint64_t seg_end = it->first + static_cast<uint64_t>(it->second);
      if (seg_end > next_expected_) {
        newly += static_cast<int64_t>(seg_end - next_expected_);
        next_expected_ = seg_end;
      }
      it = out_of_order_.erase(it);
    }
  } else if (m.seq > next_expected_) {
    out_of_order_[m.seq] = m.payload_bytes;
  }
  // Old/duplicate segments fall through and still trigger an ACK.

  delivered_bytes_ += newly;
  if (newly > 0 && on_data_) on_data_(newly);

  Packet ack;
  ack.id = next_packet_id_++;
  ack.flow = cfg_.flow;
  ack.dst = cfg_.peer;
  ack.type = PacketType::kTcpAck;
  ack.size_bytes = kTcpIpHeaderBytes + 12;  // SACK + timestamp options
  ack.created_at = sched_->now();
  TcpMeta am;
  am.is_ack = true;
  am.ack = next_expected_;
  am.sacked_through = m.seq;  // one-element SACK: the segment that arrived
  am.payload_bytes = m.payload_bytes;
  am.echo_ts = m.echo_ts;
  ack.meta = am;
  host_->send(std::move(ack));
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(EventScheduler* sched, Host* host, Config cfg)
    : sched_(sched), host_(host), cfg_(cfg), cwnd_(cfg.initial_cwnd) {
  if (cfg_.unlimited) {
    app_limit_ = std::numeric_limits<uint64_t>::max() / 2;
    sched_->schedule(Duration::zero(), [this] { maybe_send(); });
  }
}

void TcpSender::write(int64_t bytes) {
  if (cfg_.unlimited) return;
  app_limit_ += static_cast<uint64_t>(bytes);
  maybe_send();
}

int64_t TcpSender::pipe_bytes() const {
  int64_t pipe = 0;
  for (const auto& [seq, seg] : outstanding_) {
    if (!seg.sacked && !seg.lost) pipe += seg.len;
  }
  return pipe;
}

void TcpSender::maybe_send() {
  if (stopped_) return;
  const int64_t cwnd_bytes =
      static_cast<int64_t>(cwnd_ * static_cast<double>(cfg_.mss));
  int64_t pipe = pipe_bytes();
  bool sent_any = false;

  // Retransmit lost segments first (oldest hole first).
  for (auto& [seq, seg] : outstanding_) {
    if (pipe >= cwnd_bytes) break;
    if (seg.lost) {
      seg.lost = false;
      ++seg.rtx_count;
      seg.last_sent = sched_->now();
      ++retransmits_;
      transmit(seq, seg.len);
      pipe += seg.len;
      sent_any = true;
    }
  }

  // Then new data.
  while (pipe < cwnd_bytes && next_seq_ < app_limit_) {
    int payload = static_cast<int>(std::min<uint64_t>(
        static_cast<uint64_t>(cfg_.mss), app_limit_ - next_seq_));
    Segment seg;
    seg.len = payload;
    seg.last_sent = sched_->now();
    outstanding_[next_seq_] = seg;
    transmit(next_seq_, payload);
    next_seq_ += static_cast<uint64_t>(payload);
    pipe += payload;
    sent_any = true;
  }

  if (sent_any || !outstanding_.empty()) arm_rto();
}

void TcpSender::transmit(uint64_t seq, int payload) {
  Packet p;
  p.id = next_packet_id_++;
  p.flow = cfg_.flow;
  p.dst = cfg_.dst;
  p.type = PacketType::kTcpData;
  p.size_bytes = payload + kTcpIpHeaderBytes + 12;
  p.created_at = sched_->now();
  TcpMeta m;
  m.seq = seq;
  m.payload_bytes = payload;
  m.echo_ts = sched_->now();
  p.meta = m;
  host_->send(std::move(p));
}

void TcpSender::handle_packet(const Packet& p) {
  const TcpMeta& m = p.tcp();
  if (!m.is_ack) return;
  on_ack(m);
}

void TcpSender::update_rtt(Duration sample) {
  if (srtt_.is_zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    Duration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = rttvar_ * 3 / 4 + err / 4;
    srtt_ = srtt_ * 7 / 8 + sample / 8;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + rttvar_ * 4);
}

double TcpSender::cubic_window(Duration since_epoch) const {
  // W(t) = C*(t-K)^3 + Wmax, K = cbrt(Wmax*(1-beta)/C) per RFC 8312.
  double t = since_epoch.seconds();
  double k = std::cbrt(w_max_ * (1.0 - cfg_.beta) / cfg_.cubic_c);
  double w = cfg_.cubic_c * std::pow(t - k, 3.0) + w_max_;
  return std::max(w, 2.0);
}

void TcpSender::detect_losses() {
  // RFC 6675 flavor: a segment is lost once bytes >= 3*MSS above it have
  // been SACKed and it has not been (re)sent very recently.
  const uint64_t dup_thresh =
      static_cast<uint64_t>(3 * cfg_.mss);
  if (highest_sacked_ < dup_thresh) return;
  Duration guard = std::max(srtt_, Duration::millis(10));
  bool any_lost = false;
  for (auto& [seq, seg] : outstanding_) {
    if (seq + static_cast<uint64_t>(seg.len) + dup_thresh > highest_sacked_) break;
    if (!seg.sacked && !seg.lost && sched_->now() - seg.last_sent > guard) {
      seg.lost = true;
      any_lost = true;
    }
  }
  if (any_lost && !in_recovery_) enter_recovery();
}

void TcpSender::on_ack(const TcpMeta& m) {
  if (stopped_) return;
  TimePoint now = sched_->now();

  // SACK bookkeeping.
  if (m.sacked_through >= highest_acked_) {
    auto it = outstanding_.find(m.sacked_through);
    if (it != outstanding_.end()) it->second.sacked = true;
    uint64_t seg_end = m.sacked_through + static_cast<uint64_t>(m.payload_bytes);
    highest_sacked_ = std::max(highest_sacked_, seg_end);
  }

  if (m.ack > highest_acked_) {
    uint64_t prev = highest_acked_;
    highest_acked_ = m.ack;
    highest_sacked_ = std::max(highest_sacked_, highest_acked_);
    rto_backoff_ = 0;
    outstanding_.erase(outstanding_.begin(), outstanding_.lower_bound(m.ack));

    // RTT from the timestamp echoed off the segment that generated this
    // ack (RFC 7323 style) — immune to stale samples from data that sat
    // in the receiver's out-of-order buffer across a recovery episode.
    if (m.echo_ts > TimePoint::zero() && now > m.echo_ts) {
      update_rtt(now - m.echo_ts);
    }

    if (in_recovery_ && highest_acked_ >= recovery_point_) {
      in_recovery_ = false;
    }

    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(m.ack - prev) / cfg_.mss;  // slow start
      } else if (cfg_.algo == CcAlgo::kCubic) {
        if (epoch_start_ == TimePoint::infinite()) {
          epoch_start_ = now;
          if (w_max_ < cwnd_) w_max_ = cwnd_;
        }
        double target = cubic_window(now - epoch_start_);
        double acked_pkts = static_cast<double>(m.ack - prev) / cfg_.mss;
        if (target > cwnd_) {
          cwnd_ += std::min(acked_pkts,
                            (target - cwnd_) * acked_pkts / std::max(cwnd_, 1.0));
        } else {
          cwnd_ += 0.01 * acked_pkts / std::max(cwnd_, 1.0);
        }
      } else {  // Reno
        cwnd_ += static_cast<double>(m.ack - prev) / cfg_.mss / cwnd_;
      }
    }

    if (on_acked_) on_acked_(static_cast<int64_t>(highest_acked_));
  }

  detect_losses();
  maybe_send();
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recovery_point_ = next_seq_;
  w_max_ = cwnd_;
  ssthresh_ = std::max(2.0, cwnd_ * cfg_.beta);
  cwnd_ = ssthresh_;
  epoch_start_ = TimePoint::infinite();  // new cubic epoch on exit
}

void TcpSender::arm_rto() {
  if (outstanding_.empty()) return;
  uint64_t epoch = ++rto_epoch_;
  Duration timeout = rto_;
  for (int i = 0; i < rto_backoff_ && i < 6; ++i) timeout = timeout * 2;
  sched_->schedule(timeout, [this, epoch] {
    if (epoch == rto_epoch_ && !outstanding_.empty() && !stopped_) on_rto();
  });
}

void TcpSender::on_rto() {
  ++timeouts_;
  ++rto_backoff_;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  w_max_ = 0.0;
  epoch_start_ = TimePoint::infinite();
  in_recovery_ = false;
  // Everything unsacked is presumed lost; resend from the hole.
  for (auto& [seq, seg] : outstanding_) {
    if (!seg.sacked) seg.lost = true;
  }
  maybe_send();
}

}  // namespace vca
