// Packet-level TCP, detailed enough for bandwidth-sharing dynamics:
// slow start, CUBIC (or Reno) congestion avoidance, SACK-scoreboard loss
// recovery (RFC 6675-style pipe accounting), RTO with exponential backoff.
// This is the substitute for the paper's iPerf3 (TCP CUBIC) competitor and
// the underlying transport for the Netflix/YouTube ABR models.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "core/scheduler.h"
#include "core/time.h"
#include "core/units.h"
#include "net/node.h"
#include "net/packet.h"

namespace vca {

// Receiving endpoint: reassembles, acks every segment (echoing the
// segment's sequence as a one-element SACK), reports delivered bytes.
class TcpReceiverEndpoint {
 public:
  struct Config {
    FlowId flow = 0;        // flow id data arrives on (acks go back on it too)
    NodeId peer = kInvalidNode;
  };

  TcpReceiverEndpoint(EventScheduler* sched, Host* host, Config cfg);

  void handle_packet(const Packet& p);

  // Called with the number of newly delivered in-order payload bytes.
  void set_data_handler(std::function<void(int64_t)> h) { on_data_ = std::move(h); }

  int64_t delivered_bytes() const { return delivered_bytes_; }

 private:
  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  uint64_t next_expected_ = 0;
  std::map<uint64_t, int> out_of_order_;  // seq -> payload bytes
  int64_t delivered_bytes_ = 0;
  uint64_t next_packet_id_ = 1;
  std::function<void(int64_t)> on_data_;
};

class TcpSender {
 public:
  enum class CcAlgo { kCubic, kReno };

  struct Config {
    FlowId flow = 0;
    NodeId dst = kInvalidNode;
    int mss = kTcpMssBytes;
    CcAlgo algo = CcAlgo::kCubic;
    double cubic_c = 0.4;
    double beta = 0.7;           // multiplicative decrease factor
    double initial_cwnd = 10.0;  // packets
    Duration min_rto = Duration::millis(200);
    bool unlimited = false;      // iPerf3-style: always has data to send
  };

  TcpSender(EventScheduler* sched, Host* host, Config cfg);

  // Queue application bytes (ignored when unlimited).
  void write(int64_t bytes);
  void handle_packet(const Packet& p);  // incoming ACKs

  // Fires whenever cumulative acked bytes advance.
  void set_acked_handler(std::function<void(int64_t total)> h) {
    on_acked_ = std::move(h);
  }

  int64_t acked_bytes() const { return static_cast<int64_t>(highest_acked_); }
  int64_t sent_bytes() const { return static_cast<int64_t>(next_seq_); }
  double cwnd_packets() const { return cwnd_; }
  Duration srtt() const { return srtt_; }
  int retransmits() const { return retransmits_; }
  int timeouts() const { return timeouts_; }
  bool idle() const {
    return !cfg_.unlimited && next_seq_ >= app_limit_ && highest_acked_ >= app_limit_;
  }

  void stop() { stopped_ = true; }

 private:
  struct Segment {
    int len = 0;
    bool sacked = false;
    bool lost = false;
    int rtx_count = 0;
    TimePoint last_sent;
  };

  void maybe_send();
  void transmit(uint64_t seq, int payload);
  void on_ack(const TcpMeta& m);
  void detect_losses();
  void enter_recovery();
  void on_rto();
  void arm_rto();
  void update_rtt(Duration sample);
  double cubic_window(Duration since_epoch) const;
  int64_t pipe_bytes() const;

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  std::function<void(int64_t)> on_acked_;

  uint64_t next_seq_ = 0;        // next new byte to send
  uint64_t highest_acked_ = 0;   // cumulative ack point
  uint64_t highest_sacked_ = 0;  // highest byte known received
  uint64_t app_limit_ = 0;       // bytes the app has written
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  bool stopped_ = false;

  std::map<uint64_t, Segment> outstanding_;  // scoreboard, keyed by seq

  double cwnd_;                  // packets
  double ssthresh_ = 1e9;
  // CUBIC epoch state.
  double w_max_ = 0.0;
  TimePoint epoch_start_ = TimePoint::infinite();

  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration rto_ = Duration::seconds(1);
  int rto_backoff_ = 0;
  uint64_t rto_epoch_ = 0;       // invalidates stale RTO timers

  int retransmits_ = 0;
  int timeouts_ = 0;
  uint64_t next_packet_id_ = 1;
};

}  // namespace vca
