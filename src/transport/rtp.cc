#include "transport/rtp.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vca {

// ---------------------------------------------------------------------------
// RtpSender
// ---------------------------------------------------------------------------

RtpSender::RtpSender(EventScheduler* sched, Host* host, Config cfg)
    : sched_(sched), host_(host), cfg_(cfg) {}

void RtpSender::shutdown() {
  stopped_ = true;
  while (!pacer_.empty()) pacer_.pop_front();
  pacer_bytes_ = 0;
}

void RtpSender::send_frame(const EncodedFrame& frame) {
  if (stopped_) return;
  const int payload_per_packet = kMtuBytes;
  const int n_packets =
      std::max(1, (frame.bytes + payload_per_packet - 1) / payload_per_packet);

  // Overshoot protection: drop the whole frame if the pacer is so backed
  // up that this frame would sit longer than max_pacer_delay.
  Duration projected =
      cfg_.pacing_rate.transmit_time(pacer_bytes_ + frame.bytes);
  if (projected > cfg_.max_pacer_delay) {
    ++dropped_frames_;
    return;
  }

  int remaining = frame.bytes;
  for (int i = 0; i < n_packets; ++i) {
    int payload = std::min(remaining, payload_per_packet);
    remaining -= payload;
    Packet p;
    p.flow = cfg_.flow;
    p.dst = cfg_.dst;
    p.type = cfg_.media_type;
    p.size_bytes = payload + kRtpHeaderBytes + kUdpIpHeaderBytes;
    RtpMeta m;
    m.ssrc = cfg_.ssrc;
    m.seq = next_seq_++;
    m.frame_id = frame.frame_id;
    m.packets_in_frame = static_cast<uint16_t>(n_packets);
    m.packet_index = static_cast<uint16_t>(i);
    m.keyframe = frame.keyframe;
    m.spatial_layer = frame.spatial_layer;
    m.frame_width = frame.width;
    m.fps = frame.fps;
    m.qp = frame.qp;
    m.capture_time = frame.capture_time;
    p.meta = m;
    enqueue_packet(std::move(p));
  }

  if (cfg_.fec_overhead > 0.0) {
    // Accumulate fractional FEC credit so e.g. 0.15 overhead on a
    // 4-packet frame still emits FEC packets over time.
    fec_credit_ += cfg_.fec_overhead * n_packets;
    while (fec_credit_ >= 1.0) {
      fec_credit_ -= 1.0;
      Packet p;
      p.flow = cfg_.flow;
      p.dst = cfg_.dst;
      p.type = PacketType::kRtpFec;
      p.size_bytes = payload_per_packet + kRtpHeaderBytes + kUdpIpHeaderBytes;
      RtpMeta m;
      m.ssrc = cfg_.ssrc;
      m.seq = next_seq_++;
      m.frame_id = frame.frame_id;
      m.packets_in_frame = static_cast<uint16_t>(n_packets);
      m.packet_index = 0;
      m.keyframe = frame.keyframe;
      m.spatial_layer = frame.spatial_layer;
      m.is_fec = true;
      m.frame_width = frame.width;
      m.fps = frame.fps;
      m.qp = frame.qp;
      m.capture_time = frame.capture_time;
      p.meta = m;
      enqueue_packet(std::move(p));
    }
  }
}

void RtpSender::send_padding(int bytes) {
  if (stopped_) return;
  while (bytes > 0) {
    int sz = std::min(bytes, kMtuBytes);
    bytes -= sz;
    Packet p;
    p.flow = cfg_.flow;
    p.dst = cfg_.dst;
    p.type = PacketType::kRtpFec;
    p.size_bytes = sz + kRtpHeaderBytes + kUdpIpHeaderBytes;
    RtpMeta m;
    m.ssrc = cfg_.ssrc;
    m.seq = next_seq_++;
    m.frame_id = 0;  // attaches to an already-decoded frame: pure padding
    m.packets_in_frame = 1;
    m.is_fec = true;
    p.meta = m;
    enqueue_packet(std::move(p));
  }
}

void RtpSender::enqueue_packet(Packet p) {
  pacer_bytes_ += p.size_bytes;
  pacer_.push_back(std::move(p));
  if (!draining_) {
    draining_ = true;
    sched_->schedule(Duration::zero(), [this] { drain(); });
  }
}

void RtpSender::drain() {
  if (stopped_ || pacer_.empty()) {
    draining_ = false;
    return;
  }
  draining_ = true;
  Packet p = std::move(pacer_.front());
  pacer_.pop_front();
  pacer_bytes_ -= p.size_bytes;
  p.id = next_packet_id_++;
  p.created_at = sched_->now();
  p.rtp().abs_send_time = sched_->now();
  ++sent_packets_;
  if (p.type == PacketType::kRtpFec) {
    sent_fec_bytes_ += p.size_bytes;
  } else {
    sent_media_bytes_ += p.size_bytes;
    if (cfg_.enable_rtx) {
      if (history_.empty()) history_.resize(kHistorySlots);
      HistorySlot& slot = history_[p.rtp().seq & (kHistorySlots - 1)];
      slot.seq = p.rtp().seq;
      slot.valid = true;
      slot.pkt = p;
    }
  }
  Duration gap = cfg_.pacing_rate.transmit_time(p.size_bytes);
  host_->send(std::move(p));
  sched_->schedule(gap, [this] { drain(); });
}

void RtpSender::handle_rtcp(const RtcpMeta& fb) {
  if (stopped_) return;
  if (fb.fir_count > 0) keyframe_requested_ = true;
  if (cfg_.enable_rtx && !fb.nack_seqs.empty()) retransmit(fb.nack_seqs);
  if (feedback_handler_) feedback_handler_(fb);
}

void RtpSender::retransmit(const NackList& seqs) {
  if (history_.empty()) return;
  for (uint32_t seq : seqs) {
    const HistorySlot& slot = history_[seq & (kHistorySlots - 1)];
    if (!slot.valid || slot.seq != seq) continue;
    Packet p = slot.pkt;  // copy: the slot stays available for re-NACKs
    p.id = next_packet_id_++;
    p.created_at = sched_->now();
    p.rtp().abs_send_time = sched_->now();
    ++sent_packets_;
    sent_media_bytes_ += p.size_bytes;
    host_->send(std::move(p));
  }
}

bool RtpSender::take_keyframe_request() {
  return std::exchange(keyframe_requested_, false);
}

// ---------------------------------------------------------------------------
// RtpReceiver
// ---------------------------------------------------------------------------

RtpReceiver::RtpReceiver(EventScheduler* sched, Host* host, Config cfg)
    : sched_(sched), host_(host), cfg_(cfg) {
  // More frames than ever sit inside the loss deadline at once; reserving
  // up front keeps the reassembly path allocation-free in steady state.
  pending_.reserve(32);
  schedule_report();
}

bool RtpReceiver::PendingFrame::mark_media(uint16_t index) {
  const size_t word = index / 64;
  const uint64_t bit = uint64_t{1} << (index % 64);
  while (media_mask.size() <= word) media_mask.push_back(0);
  if ((media_mask[word] & bit) != 0) return false;
  media_mask[word] |= bit;
  ++media_count;
  return true;
}

RtpReceiver::PendingFrame* RtpReceiver::find_pending(uint64_t frame_id) {
  for (PendingFrame& f : pending_) {
    if (f.frame_id == frame_id) return &f;
  }
  return nullptr;
}

void RtpReceiver::erase_pending(uint64_t frame_id) {
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].frame_id == frame_id) {
      if (i + 1 != pending_.size()) pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      return;
    }
  }
}

void RtpReceiver::shutdown() { stopped_ = true; }

void RtpReceiver::schedule_report() {
  sched_->schedule(cfg_.report_interval, [this] {
    if (stopped_) return;  // retired mid-run: let the loop die quietly
    try_decode();          // also advances loss deadlines during silence
    send_report();
    schedule_report();
  });
}

void RtpReceiver::handle_packet(const Packet& p) {
  if (stopped_) return;
  const RtpMeta& m = p.rtp();
  if (m.ssrc != cfg_.ssrc) return;
  TimePoint now = sched_->now();

  if (observer_ != nullptr) observer_->on_packet(now, m.abs_send_time, p.size_bytes);

  received_media_bytes_ += p.size_bytes;
  bytes_in_interval_ += p.size_bytes;
  ++received_in_interval_;
  last_arrival_ = now;

  // Sequence bookkeeping for loss fraction and NACKs.
  int64_t seq = m.seq;
  if (highest_seq_ < 0) {
    highest_seq_ = seq;
    report_base_seq_ = seq;
  } else if (seq > highest_seq_) {
    for (int64_t s = highest_seq_ + 1; s < seq; ++s) {
      missing_seqs_.insert(static_cast<uint32_t>(s));
    }
    highest_seq_ = seq;
  } else {
    missing_seqs_.erase(static_cast<uint32_t>(seq));  // late or retransmitted
    nack_attempts_.erase(static_cast<uint32_t>(seq));
  }

  // Frame reassembly.
  PendingFrame* f = find_pending(m.frame_id);
  if (f == nullptr) {
    f = &pending_.emplace_back();
    f->frame_id = m.frame_id;
    f->packets_in_frame = m.packets_in_frame;
    f->first_arrival = now;
  }
  if (m.is_fec) {
    ++f->fec_received;
  } else {
    f->mark_media(m.packet_index);
    f->media_bytes += p.size_bytes;
  }
  if (!f->has_exemplar) {
    f->has_exemplar = true;
    f->exemplar = m;
  }

  try_decode();
}

void RtpReceiver::try_decode() {
  TimePoint now = sched_->now();
  // Drop state for frames behind the decode head (e.g. padding packets
  // tagged with old frame ids).
  if (started_) {
    for (size_t i = 0; i < pending_.size();) {
      if (pending_[i].frame_id < next_decode_frame_) {
        if (i + 1 != pending_.size()) pending_[i] = std::move(pending_.back());
        pending_.pop_back();
      } else {
        ++i;
      }
    }
  }
  if (!started_) {
    if (pending_.empty()) return;
    uint64_t min_id = pending_.front().frame_id;
    for (const PendingFrame& pf : pending_) {
      if (pf.frame_id < min_id) min_id = pf.frame_id;
    }
    next_decode_frame_ = min_id;
    started_ = true;
  }

  bool progress = true;
  while (progress) {
    progress = false;
    PendingFrame* f = find_pending(next_decode_frame_);
    if (f != nullptr) {
      bool complete = f->media_count >= f->packets_in_frame;
      // FEC can only repair a frame we saw at least one media packet of;
      // pure-FEC "frames" (probe padding) are never decodable.
      bool recoverable =
          f->media_count > 0 &&
          static_cast<int>(f->media_count) + f->fec_received >=
              static_cast<int>(f->packets_in_frame);
      if (complete || recoverable) {
        const RtpMeta& m = f->exemplar;
        // After a loss we only resume on a keyframe; drop inter frames.
        if (!stalled_ || m.keyframe) {
          DecodedFrame out;
          out.frame_id = m.frame_id;
          out.width = m.frame_width;
          out.fps = m.fps;
          out.qp = m.qp;
          out.keyframe = m.keyframe;
          out.spatial_layer = m.spatial_layer;
          out.bytes = f->media_bytes;
          out.capture_time = m.capture_time;
          out.delivered_at = now;
          out.recovered_by_fec = !complete && recoverable;
          ++frames_decoded_;
          stalled_ = false;
          if (frame_handler_) frame_handler_(out);
        } else {
          ++frames_lost_;  // decodable but discarded while waiting for IDR
        }
        erase_pending(next_decode_frame_);
        ++next_decode_frame_;
        progress = true;
        continue;
      }
      // Incomplete: give up after the deadline and stall until a keyframe.
      if (now - f->first_arrival > cfg_.frame_loss_deadline) {
        ++frames_lost_;
        if (!stalled_) {
          stalled_ = true;
          stall_since_ = now;
        }
        erase_pending(next_decode_frame_);
        ++next_decode_frame_;
        progress = true;
        continue;
      }
      break;  // still waiting for packets within the deadline
    }
    // Frame never seen. If any *later* frame has been waiting past the
    // deadline, declare this one lost and move on. (The earliest later
    // frame stands in for the map's upper_bound.)
    const PendingFrame* later = nullptr;
    for (const PendingFrame& pf : pending_) {
      if (pf.frame_id > next_decode_frame_ &&
          (later == nullptr || pf.frame_id < later->frame_id)) {
        later = &pf;
      }
    }
    if (later != nullptr &&
        now - later->first_arrival > cfg_.frame_loss_deadline) {
      ++frames_lost_;
      if (!stalled_) {
        stalled_ = true;
        stall_since_ = now;
      }
      ++next_decode_frame_;
      progress = true;
      continue;
    }
    break;
  }

  // Total silence also counts as a stall: the stream is live but nothing
  // is arriving (e.g. the shaped link is dropping everything).
  if (!stalled_ && started_ && pending_.empty() &&
      now - last_arrival_ > cfg_.frame_loss_deadline * 2) {
    stalled_ = true;
    stall_since_ = last_arrival_;
  }

  // FIR generation while stalled. A stream silent for several seconds is
  // treated as paused (e.g. a simulcast copy the sender stopped encoding),
  // not broken — receivers stop soliciting keyframes for it.
  bool paused = now - last_arrival_ > Duration::seconds(3);
  if (stalled_ && !paused && now - stall_since_ > cfg_.fir_after &&
      now - last_fir_ > cfg_.fir_after) {
    ++pending_fir_;
    ++fir_sent_;
    last_fir_ = now;
  }
}

void RtpReceiver::send_report() {
  TimePoint now = sched_->now();
  RtcpMeta fb;
  fb.ssrc = cfg_.ssrc;

  int64_t expected = highest_seq_ >= report_base_seq_
                         ? highest_seq_ - report_base_seq_ + 1
                         : 0;
  int64_t lost = std::max<int64_t>(0, expected - received_in_interval_);
  fb.loss_fraction =
      expected > 0 ? static_cast<double>(lost) / static_cast<double>(expected)
                   : 0.0;
  fb.receive_rate = rate_from_bytes(bytes_in_interval_, cfg_.report_interval);
  fb.highest_seq = highest_seq_;
  fb.fir_count = pending_fir_;

  if (observer_ != nullptr) {
    observer_->note_loss(fb.loss_fraction);
    fb.remb = observer_->remb(now);
    fb.queuing_delay_ms = observer_->queuing_delay_ms();
    fb.delay_gradient_ms_per_s = observer_->trendline();
  }

  if (cfg_.enable_nack) {
    for (uint32_t seq : missing_seqs_) {
      int& attempts = nack_attempts_[seq];
      if (attempts < 2) {
        ++attempts;
        fb.nack_seqs.push_back(seq);
      }
    }
    nacks_sent_ += static_cast<int>(fb.nack_seqs.size());
  }
  // Bound NACK state: anything far behind the head is unrecoverable.
  while (!missing_seqs_.empty() &&
         static_cast<int64_t>(*missing_seqs_.begin()) < highest_seq_ - 1000) {
    nack_attempts_.erase(*missing_seqs_.begin());
    missing_seqs_.erase(missing_seqs_.begin());
  }

  last_loss_fraction_ = fb.loss_fraction;
  last_receive_rate_ = fb.receive_rate;

  Packet p;
  p.id = next_packet_id_++;
  p.flow = cfg_.feedback_flow;
  p.dst = cfg_.feedback_dst;
  p.type = PacketType::kRtcp;
  p.size_bytes = 80 + static_cast<int>(fb.nack_seqs.size()) * 4;
  p.created_at = now;
  p.meta = std::move(fb);
  host_->send(std::move(p));

  report_base_seq_ = highest_seq_ + 1;
  received_in_interval_ = 0;
  bytes_in_interval_ = 0;
  pending_fir_ = 0;
}

}  // namespace vca
