// RTP media transport: sender with pacer, FEC and retransmission; receiver
// with reassembly, decode-chain tracking, NACK/FIR generation, and RTCP
// receiver reports. One RtpSender/RtpReceiver pair per SSRC (simulcast
// copies and SVC layers are separate SSRCs, as in WebRTC).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/inline_vec.h"
#include "core/ring.h"
#include "core/scheduler.h"
#include "core/time.h"
#include "core/units.h"
#include "media/frame.h"
#include "net/node.h"
#include "net/packet.h"

namespace vca {

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

class RtpSender {
 public:
  struct Config {
    uint32_t ssrc = 0;
    FlowId flow = 0;
    NodeId dst = kInvalidNode;
    PacketType media_type = PacketType::kRtpVideo;
    DataRate pacing_rate = DataRate::mbps(10);
    // Frames whose queueing in the pacer would exceed this are dropped
    // whole (encoder overshoot protection).
    Duration max_pacer_delay = Duration::millis(400);
    // FEC packets added per frame, as a fraction of the frame's media
    // packets (Zoom-style sender FEC). 0 disables.
    double fec_overhead = 0.0;
    bool enable_rtx = true;  // answer NACKs with retransmissions
  };

  RtpSender(EventScheduler* sched, Host* host, Config cfg);

  // Queue one encoded frame for transmission.
  void send_frame(const EncodedFrame& frame);

  // Emit FEC-marked padding (bandwidth probing, as Zoom's FBRA-style
  // probing and SFU estimate-growth probes do). Counts toward the
  // receiver's arrival rate but never toward decodable frames.
  void send_padding(int bytes);

  // Quiesce before mid-run retirement: drops the pacer queue, freezes the
  // counters, and lets any already-scheduled drain fire as a no-op. The
  // object must stay alive until the run ends (park it in a graveyard) —
  // the pacing timer captures a raw `this`, so destruction cannot happen
  // while a callback is still queued.
  void shutdown();

  void set_pacing_rate(DataRate r) { cfg_.pacing_rate = r; }
  void set_fec_overhead(double f) { cfg_.fec_overhead = f; }

  // Deliver an incoming RTCP packet for this SSRC (handles NACK/FIR and
  // forwards to the feedback handler, typically the congestion controller).
  void handle_rtcp(const RtcpMeta& fb);
  void set_feedback_handler(std::function<void(const RtcpMeta&)> h) {
    feedback_handler_ = std::move(h);
  }

  // True once a FIR arrived; reading clears the flag. The encoder polls
  // this to force a keyframe.
  bool take_keyframe_request();

  int64_t sent_media_bytes() const { return sent_media_bytes_; }
  int64_t sent_fec_bytes() const { return sent_fec_bytes_; }
  // Every packet that left this sender (media + FEC/padding + RTX). For
  // SFU-owned senders this is the per-stream share of the fleet's
  // packets-forwarded/sec CPU proxy.
  int64_t sent_packets() const { return sent_packets_; }
  int64_t dropped_frames() const { return dropped_frames_; }
  int64_t pacer_queue_bytes() const { return pacer_bytes_; }
  uint32_t ssrc() const { return cfg_.ssrc; }

 private:
  void enqueue_packet(Packet p);
  void drain();
  void retransmit(const NackList& seqs);

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  std::function<void(const RtcpMeta&)> feedback_handler_;

  uint32_t next_seq_ = 1;
  uint64_t next_packet_id_ = 1;
  double fec_credit_ = 0.0;
  RingDeque<Packet> pacer_;
  int64_t pacer_bytes_ = 0;
  bool draining_ = false;
  bool stopped_ = false;
  bool keyframe_requested_ = false;

  // Recently sent packets retained for retransmission: a direct-mapped
  // ring keyed by seq & (kHistorySlots - 1). Unlike the old
  // std::map<seq, Packet> (one node allocation per media packet), inserts
  // overwrite in place; a NACK only ever targets sequences within ~1000
  // of the head (see RtpReceiver's missing-seq bound), comfortably inside
  // the 2048-slot window. Sized lazily on first media packet so
  // RTX-disabled senders pay nothing.
  struct HistorySlot {
    uint32_t seq = 0;
    bool valid = false;
    Packet pkt;
  };
  static constexpr size_t kHistorySlots = 2048;
  std::vector<HistorySlot> history_;

  int64_t sent_media_bytes_ = 0;
  int64_t sent_fec_bytes_ = 0;
  int64_t sent_packets_ = 0;
  int64_t dropped_frames_ = 0;
};

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

// Shared receive-side observer interface: the receive-side bandwidth
// estimator (cc/remb.h) implements this to see every arriving packet
// across all SSRCs on a client.
class PacketArrivalObserver {
 public:
  virtual ~PacketArrivalObserver() = default;
  virtual void on_packet(TimePoint arrival, TimePoint send_time, int bytes) = 0;
  // Loss fraction of the most recent report interval (REMB-style
  // estimators fold loss into the estimate alongside delay).
  virtual void note_loss(double /*loss_fraction*/) {}
  // Called once per feedback interval; returns the estimate to advertise
  // (zero rate = no REMB).
  virtual DataRate remb(TimePoint now) = 0;
  virtual double queuing_delay_ms() const { return 0.0; }
  virtual double trendline() const { return 0.0; }
};

// A fully decodable frame delivered to the application layer.
struct DecodedFrame {
  uint64_t frame_id = 0;
  int width = 0;
  double fps = 0.0;
  int qp = 0;
  bool keyframe = false;
  uint8_t spatial_layer = 0;
  int bytes = 0;
  TimePoint capture_time;
  TimePoint delivered_at;
  bool recovered_by_fec = false;
};

class RtpReceiver {
 public:
  struct Config {
    uint32_t ssrc = 0;
    FlowId feedback_flow = 0;        // flow id for outgoing RTCP
    NodeId feedback_dst = kInvalidNode;
    Duration report_interval = Duration::millis(100);
    bool enable_nack = true;
    // Head-of-line frame considered lost after this long; decoder then
    // stalls until the next keyframe.
    Duration frame_loss_deadline = Duration::millis(200);
    // Stalled longer than this => send a Full Intra Request.
    Duration fir_after = Duration::millis(400);
  };

  RtpReceiver(EventScheduler* sched, Host* host, Config cfg);

  // Quiesce before mid-run retirement: stops the report loop (the pending
  // tick fires once as a no-op) and ignores further packets. As with
  // RtpSender::shutdown, the object must outlive the queued callback, so
  // retire into a graveyard rather than destroying immediately.
  void shutdown();

  // Feed a media packet (called by the owning client's dispatcher).
  void handle_packet(const Packet& p);

  void set_frame_handler(std::function<void(const DecodedFrame&)> h) {
    frame_handler_ = std::move(h);
  }
  // Optional shared bandwidth estimator whose REMB rides on our reports.
  void set_arrival_observer(PacketArrivalObserver* obs) { observer_ = obs; }

  // Stats.
  int64_t received_media_bytes() const { return received_media_bytes_; }
  int fir_sent() const { return fir_sent_; }
  int nacks_sent() const { return nacks_sent_; }
  int64_t frames_decoded() const { return frames_decoded_; }
  int64_t frames_lost() const { return frames_lost_; }
  double last_loss_fraction() const { return last_loss_fraction_; }
  DataRate last_receive_rate() const { return last_receive_rate_; }
  uint32_t ssrc() const { return cfg_.ssrc; }
  bool stalled() const { return stalled_; }

 private:
  // Reassembly state for one in-flight frame. Received media packets are
  // tracked in an inline bitmask (one bit per packet index; frames up to
  // 256 packets stay heap-free, bigger ones spill), and the metadata
  // exemplar stores just the first packet's RtpMeta instead of a whole
  // Packet. Lives in an unsorted vector scanned linearly: only the few
  // frames inside the loss deadline are ever pending, and scanning by
  // value keeps iteration order independent of heap layout (the
  // determinism requirement that rules out pointer-keyed maps).
  struct PendingFrame {
    uint64_t frame_id = 0;
    uint16_t packets_in_frame = 0;
    uint16_t media_count = 0;
    int fec_received = 0;
    bool has_exemplar = false;
    InlineVec<uint64_t, 4> media_mask;
    RtpMeta exemplar;
    TimePoint first_arrival;
    int media_bytes = 0;

    bool mark_media(uint16_t index);  // false if already marked (duplicate)
  };

  void try_decode();
  void send_report();
  void schedule_report();
  PendingFrame* find_pending(uint64_t frame_id);
  void erase_pending(uint64_t frame_id);

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  std::function<void(const DecodedFrame&)> frame_handler_;
  PacketArrivalObserver* observer_ = nullptr;

  std::vector<PendingFrame> pending_;
  uint64_t next_decode_frame_ = 0;
  bool stalled_ = false;       // waiting for a keyframe after loss
  bool stopped_ = false;       // shutdown() called; report loop ends
  bool started_ = false;
  TimePoint stall_since_;
  TimePoint last_fir_;
  TimePoint last_arrival_;

  // Sequence tracking for loss + NACK.
  int64_t highest_seq_ = -1;
  int64_t report_base_seq_ = 0;    // first seq expected in current interval
  int64_t received_in_interval_ = 0;
  int64_t bytes_in_interval_ = 0;
  std::set<uint32_t> missing_seqs_;
  std::map<uint32_t, int> nack_attempts_;

  int64_t received_media_bytes_ = 0;
  int fir_sent_ = 0;
  int nacks_sent_ = 0;
  int64_t frames_decoded_ = 0;
  int64_t frames_lost_ = 0;
  double last_loss_fraction_ = 0.0;
  DataRate last_receive_rate_;
  uint64_t next_packet_id_ = 1;
  int pending_fir_ = 0;
};

}  // namespace vca
