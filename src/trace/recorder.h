// TraceRecorder: the simulated tcpdump process.
//
// Hangs off a Link tap (the post-serialization vantage point, i.e. where
// the paper attaches tcpdump on the router) and synthesizes a real
// Ethernet/IPv4/UDP(or TCP) frame for every packet that crosses the
// wire, RTP header included for media, so the recorded trace is exactly
// what a capture tool would see: timestamps, lengths, and header bytes —
// no simulator ground truth. Records accumulate in memory as a
// PacketRecord stream and can be flushed to a libpcap file any external
// tool can open.
//
// Header synthesis mapping (stable, so offline analysis can demux):
//   * NodeId n      -> IPv4 10.0.(n>>8).(n&0xff); MAC 02:00:00:00:hh:ll
//   * FlowId f      -> UDP/TCP src & dst port 1024 + (f % 60000)
//   * RTP media     -> 12-byte RTP header: V=2, PT 96 (video and FEC —
//     repair traffic is deliberately indistinguishable by header, as in
//     the real apps) or 111 (audio), marker on the frame's last packet,
//     seq = low 16 bits, timestamp from capture time (90 kHz video,
//     48 kHz audio), SSRC verbatim.
//   * RTCP          -> V=2, PT 201 (receiver report)
//   * keepalive     -> STUN binding request (magic cookie 0x2112a442)
//
// Capture is header-truncated at `snaplen` (tcpdump -s): the record
// keeps the true wire length while storing only the bytes an analyzer
// needs, so minutes-long calls stay cheap to hold in memory.
//
// Lifetime contract: tap() captures `this`. The recorder must outlive
// every Link (or TapFanout) holding the returned std::function, or the
// tap must be detached (Link::set_tap({})) before the recorder is
// destroyed. Network::record() follows this contract for you.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "trace/pcap.h"

namespace vca {

class TraceRecorder {
 public:
  // A live consumer of synthesized records. While a sink is installed,
  // records flow to it instead of accumulating in memory — the tap
  // becomes a bounded-memory feed for the streaming analyzer, like
  // piping tcpdump into a monitor instead of writing a capture file.
  using RecordSink = std::function<void(const PacketRecord&)>;

  explicit TraceRecorder(uint32_t snaplen = kPcapDefaultSnaplen)
      : snaplen_(snaplen) {}

  LinkTap tap() {
    return [this](const Packet& p, TimePoint at) { on_packet(p, at); };
  }

  void set_sink(RecordSink sink) { sink_ = std::move(sink); }

  // Synthesize and append one record (the tap calls this).
  void on_packet(const Packet& p, TimePoint at);

  const std::vector<PacketRecord>& records() const { return records_; }
  std::vector<PacketRecord> take_records() { return std::move(records_); }
  size_t size() const { return records_.size(); }
  uint32_t snaplen() const { return snaplen_; }

  bool write_pcap(const std::string& path) const {
    return write_pcap_file(path, records_, snaplen_);
  }

  // Header synthesis helpers, exposed for tests and the analyzer's
  // address rendering.
  static uint32_t ip_of(NodeId n) {
    return (10u << 24) | (static_cast<uint32_t>(n) & 0xffff);
  }
  static uint16_t port_of(FlowId f) {
    return static_cast<uint16_t>(1024 + (f % 60000));
  }

 private:
  uint32_t snaplen_;
  RecordSink sink_;
  std::vector<PacketRecord> records_;
};

// Builds the synthesized frame for one packet (used by on_packet; pure,
// exposed so tests can golden-check header layout).
PacketRecord synthesize_frame(const Packet& p, TimePoint at, uint32_t snaplen);

}  // namespace vca
