#include "trace/pcap.h"

#include <array>
#include <cstring>
#include <fstream>

namespace vca {

namespace {

void put_u16(std::ostream& os, uint16_t v) {
  std::array<char, 2> b = {static_cast<char>(v & 0xff),
                           static_cast<char>((v >> 8) & 0xff)};
  os.write(b.data(), b.size());
}

void put_u32(std::ostream& os, uint32_t v) {
  std::array<char, 4> b = {static_cast<char>(v & 0xff),
                           static_cast<char>((v >> 8) & 0xff),
                           static_cast<char>((v >> 16) & 0xff),
                           static_cast<char>((v >> 24) & 0xff)};
  os.write(b.data(), b.size());
}

bool get_u16(std::istream& is, uint16_t* v) {
  std::array<char, 2> b;
  if (!is.read(b.data(), b.size())) return false;
  *v = static_cast<uint16_t>(static_cast<uint8_t>(b[0]) |
                             (static_cast<uint8_t>(b[1]) << 8));
  return true;
}

bool get_u32(std::istream& is, uint32_t* v) {
  std::array<char, 4> b;
  if (!is.read(b.data(), b.size())) return false;
  *v = static_cast<uint32_t>(static_cast<uint8_t>(b[0])) |
       (static_cast<uint32_t>(static_cast<uint8_t>(b[1])) << 8) |
       (static_cast<uint32_t>(static_cast<uint8_t>(b[2])) << 16) |
       (static_cast<uint32_t>(static_cast<uint8_t>(b[3])) << 24);
  return true;
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& os, uint32_t snaplen)
    : os_(os), snaplen_(snaplen) {
  put_u32(os_, kPcapMagicNanos);
  put_u16(os_, kPcapVersionMajor);
  put_u16(os_, kPcapVersionMinor);
  put_u32(os_, 0);  // thiszone
  put_u32(os_, 0);  // sigfigs
  put_u32(os_, snaplen_);
  put_u32(os_, kPcapLinkEthernet);
}

void PcapWriter::write(const PacketRecord& rec) {
  uint32_t incl = static_cast<uint32_t>(rec.bytes.size());
  if (incl > snaplen_) incl = snaplen_;
  put_u32(os_, static_cast<uint32_t>(rec.ts_ns / 1'000'000'000));
  put_u32(os_, static_cast<uint32_t>(rec.ts_ns % 1'000'000'000));
  put_u32(os_, incl);
  put_u32(os_, rec.wire_bytes);
  os_.write(reinterpret_cast<const char*>(rec.bytes.data()), incl);
}

PcapReader::PcapReader(std::istream& is) : is_(is) {
  uint32_t magic = 0;
  uint16_t major = 0, minor = 0;
  uint32_t zone = 0, sigfigs = 0;
  if (!get_u32(is_, &magic)) return;
  if (magic == kPcapMagicNanos) {
    nanosecond_ = true;
  } else if (magic == kPcapMagicMicros) {
    nanosecond_ = false;
  } else {
    return;  // byte-swapped or foreign capture: not ours
  }
  if (!get_u16(is_, &major) || !get_u16(is_, &minor)) return;
  if (!get_u32(is_, &zone) || !get_u32(is_, &sigfigs)) return;
  if (!get_u32(is_, &snaplen_) || !get_u32(is_, &link_type_)) return;
  ok_ = true;
}

bool PcapReader::next(PacketRecord* out) {
  if (!ok_) return false;
  uint32_t sec = 0, frac = 0, incl = 0, orig = 0;
  if (!get_u32(is_, &sec)) return false;  // clean EOF
  if (!get_u32(is_, &frac) || !get_u32(is_, &incl) || !get_u32(is_, &orig)) {
    return false;
  }
  out->ts_ns = static_cast<int64_t>(sec) * 1'000'000'000 +
               (nanosecond_ ? frac : static_cast<int64_t>(frac) * 1000);
  out->wire_bytes = orig;
  out->bytes.resize(incl);
  return static_cast<bool>(
      is_.read(reinterpret_cast<char*>(out->bytes.data()), incl));
}

std::vector<PacketRecord> PcapReader::read_all() {
  std::vector<PacketRecord> out;
  PacketRecord rec;
  while (next(&rec)) out.push_back(rec);
  return out;
}

PcapFileReader::PcapFileReader(const std::string& path, size_t buffer_bytes)
    : file_(path, std::ios::binary), buf_(std::max<size_t>(buffer_bytes, 64)) {
  if (!file_) return;
  if (!ensure(24)) return;  // global header
  uint32_t magic = u32_at(buf_pos_);
  if (magic == kPcapMagicNanos) {
    nanosecond_ = true;
  } else if (magic == kPcapMagicMicros) {
    nanosecond_ = false;
  } else {
    return;  // byte-swapped or foreign capture: not ours
  }
  snaplen_ = u32_at(buf_pos_ + 16);
  link_type_ = u32_at(buf_pos_ + 20);
  buf_pos_ += 24;
  ok_ = true;
}

bool PcapFileReader::ensure(size_t need) {
  if (buf_len_ - buf_pos_ >= need) return true;
  // Compact the unread tail to the front, then refill from disk.
  std::memmove(buf_.data(), buf_.data() + buf_pos_, buf_len_ - buf_pos_);
  buf_len_ -= buf_pos_;
  buf_pos_ = 0;
  if (need > buf_.size()) buf_.resize(need);  // snaplen exceeds the chunk
  while (buf_len_ < need) {
    file_.read(buf_.data() + buf_len_, static_cast<std::streamsize>(
                                           buf_.size() - buf_len_));
    size_t got = static_cast<size_t>(file_.gcount());
    if (got == 0) return false;
    buf_len_ += got;
  }
  return true;
}

uint32_t PcapFileReader::u32_at(size_t off) const {
  const auto* b = reinterpret_cast<const uint8_t*>(buf_.data() + off);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

bool PcapFileReader::next(PacketRecord* out) {
  if (!ok_) return false;
  if (!ensure(16)) return false;  // clean EOF (or truncated header)
  uint32_t sec = u32_at(buf_pos_);
  uint32_t frac = u32_at(buf_pos_ + 4);
  uint32_t incl = u32_at(buf_pos_ + 8);
  uint32_t orig = u32_at(buf_pos_ + 12);
  if (incl > kMaxRecordBytes) {
    ok_ = false;  // corrupt length: stop rather than allocate it
    return false;
  }
  if (!ensure(16 + incl)) return false;  // truncated capture body
  out->ts_ns = static_cast<int64_t>(sec) * 1'000'000'000 +
               (nanosecond_ ? frac : static_cast<int64_t>(frac) * 1000);
  out->wire_bytes = orig;
  out->bytes.assign(
      reinterpret_cast<const uint8_t*>(buf_.data() + buf_pos_ + 16),
      reinterpret_cast<const uint8_t*>(buf_.data() + buf_pos_ + 16 + incl));
  buf_pos_ += 16 + incl;
  return true;
}

bool write_pcap_file(const std::string& path,
                     const std::vector<PacketRecord>& records,
                     uint32_t snaplen) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  PcapWriter w(f, snaplen);
  for (const PacketRecord& rec : records) w.write(rec);
  return f.good();
}

std::vector<PacketRecord> read_pcap_file(const std::string& path, bool* ok) {
  PcapFileReader r(path);  // chunked: the file streams, never loads whole
  if (ok != nullptr) *ok = r.ok();
  if (!r.ok()) return {};
  std::vector<PacketRecord> out;
  PacketRecord rec;
  while (r.next(&rec)) out.push_back(std::move(rec));
  return out;
}

}  // namespace vca
