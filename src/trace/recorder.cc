#include "trace/recorder.h"

#include <algorithm>

namespace vca {

namespace {

constexpr int kEthernetBytes = 14;
constexpr int kIpv4Bytes = 20;
constexpr int kUdpBytes = 8;
constexpr int kTcpBytes = 20;

constexpr uint8_t kProtoTcp = 6;
constexpr uint8_t kProtoUdp = 17;

constexpr uint8_t kPtVideo = 96;   // FEC/padding share it: header-blind repair
constexpr uint8_t kPtAudio = 111;
constexpr uint8_t kPtRtcpRr = 201;

void push_u16(std::vector<uint8_t>& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v & 0xff));
}

void push_u32(std::vector<uint8_t>& b, uint32_t v) {
  b.push_back(static_cast<uint8_t>(v >> 24));
  b.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  b.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  b.push_back(static_cast<uint8_t>(v & 0xff));
}

void push_mac(std::vector<uint8_t>& b, NodeId n) {
  b.push_back(0x02);
  b.push_back(0x00);
  b.push_back(0x00);
  b.push_back(0x00);
  b.push_back(static_cast<uint8_t>((n >> 8) & 0xff));
  b.push_back(static_cast<uint8_t>(n & 0xff));
}

// RFC 1071 header checksum over the 20-byte IPv4 header.
uint16_t ipv4_checksum(const uint8_t* hdr) {
  uint32_t sum = 0;
  for (int i = 0; i < kIpv4Bytes; i += 2) {
    sum += (static_cast<uint32_t>(hdr[i]) << 8) | hdr[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum & 0xffff);
}

// 90 kHz media clock for video (and its FEC), 48 kHz for audio — the
// clocks real RTP profiles use, derived from the frame's capture time.
uint32_t rtp_timestamp(const RtpMeta& m, bool audio) {
  int64_t hz = audio ? 48'000 : 90'000;
  return static_cast<uint32_t>(m.capture_time.ns() / (1'000'000'000 / hz));
}

}  // namespace

PacketRecord synthesize_frame(const Packet& p, TimePoint at,
                              uint32_t snaplen) {
  PacketRecord rec;
  rec.ts_ns = at.ns();
  // p.size_bytes is the IP datagram length by repo convention (payload +
  // transport + IP headers); the Ethernet frame adds 14.
  int ip_total = std::max(p.size_bytes, kIpv4Bytes + kUdpBytes);
  rec.wire_bytes = static_cast<uint32_t>(kEthernetBytes + ip_total);

  std::vector<uint8_t>& b = rec.bytes;
  b.reserve(snaplen);

  // Ethernet.
  push_mac(b, p.dst);
  push_mac(b, p.src);
  push_u16(b, 0x0800);  // IPv4

  bool tcp = p.type == PacketType::kTcpData || p.type == PacketType::kTcpAck;
  if (tcp) ip_total = std::max(ip_total, kIpv4Bytes + kTcpBytes);

  // IPv4.
  size_t ip_off = b.size();
  b.push_back(0x45);  // v4, 20-byte header
  b.push_back(0x00);  // DSCP/ECN
  push_u16(b, static_cast<uint16_t>(ip_total));
  push_u16(b, static_cast<uint16_t>(p.id & 0xffff));
  push_u16(b, 0x4000);  // DF
  b.push_back(64);      // TTL
  b.push_back(tcp ? kProtoTcp : kProtoUdp);
  push_u16(b, 0);  // checksum placeholder
  push_u32(b, TraceRecorder::ip_of(p.src));
  push_u32(b, TraceRecorder::ip_of(p.dst));
  uint16_t csum = ipv4_checksum(b.data() + ip_off);
  b[ip_off + 10] = static_cast<uint8_t>(csum >> 8);
  b[ip_off + 11] = static_cast<uint8_t>(csum & 0xff);

  uint16_t port = TraceRecorder::port_of(p.flow);
  if (tcp) {
    const TcpMeta& m = p.tcp();
    push_u16(b, port);
    push_u16(b, port);
    push_u32(b, static_cast<uint32_t>(m.seq));
    push_u32(b, static_cast<uint32_t>(m.ack));
    b.push_back(0x50);  // 20-byte header
    uint8_t flags = 0;
    if (m.syn) flags |= 0x02;
    if (m.fin) flags |= 0x01;
    if (m.is_ack || m.ack > 0) flags |= 0x10;
    b.push_back(flags);
    push_u16(b, 0xffff);  // window
    push_u16(b, 0);       // checksum (optional in capture)
    push_u16(b, 0);       // urgent
  } else {
    push_u16(b, port);
    push_u16(b, port);
    push_u16(b, static_cast<uint16_t>(ip_total - kIpv4Bytes));
    push_u16(b, 0);  // UDP checksum 0: legal for IPv4

    switch (p.type) {
      case PacketType::kRtpVideo:
      case PacketType::kRtpAudio:
      case PacketType::kRtpFec: {
        const RtpMeta& m = p.rtp();
        bool audio = p.type == PacketType::kRtpAudio;
        bool last_in_frame =
            !m.is_fec && m.packet_index + 1 == m.packets_in_frame;
        b.push_back(0x80);  // V=2
        b.push_back(static_cast<uint8_t>((last_in_frame ? 0x80 : 0x00) |
                                         (audio ? kPtAudio : kPtVideo)));
        push_u16(b, static_cast<uint16_t>(m.seq & 0xffff));
        push_u32(b, rtp_timestamp(m, audio));
        push_u32(b, m.ssrc);
        break;
      }
      case PacketType::kRtcp: {
        const RtcpMeta& m = p.rtcp();
        b.push_back(0x80);
        b.push_back(kPtRtcpRr);
        push_u16(b, static_cast<uint16_t>(p.size_bytes / 4 - 1));
        push_u32(b, m.ssrc);
        break;
      }
      case PacketType::kKeepalive: {
        push_u16(b, 0x0001);  // STUN binding request
        push_u16(b, 0x0000);  // message length
        push_u32(b, 0x2112a442);  // magic cookie
        push_u32(b, static_cast<uint32_t>(p.id));
        push_u32(b, p.src);
        push_u32(b, p.flow);
        break;
      }
      default:
        break;
    }
  }
  // tcpdump -s semantics: captured bytes never exceed min(wire, snaplen);
  // payload past the synthesized headers is not materialized.
  size_t cap = std::min<size_t>(snaplen, rec.wire_bytes);
  if (b.size() > cap) b.resize(cap);
  return rec;
}

void TraceRecorder::on_packet(const Packet& p, TimePoint at) {
  PacketRecord rec = synthesize_frame(p, at, snaplen_);
  if (sink_) {
    sink_(rec);
    return;  // live feed: nothing accumulates
  }
  records_.push_back(std::move(rec));
}

}  // namespace vca
