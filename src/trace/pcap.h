// libpcap-format trace files for the simulated tcpdump.
//
// A PacketRecord is one captured frame: a nanosecond timestamp, the
// original on-the-wire length, and the captured bytes (possibly
// truncated at a snap length, exactly like `tcpdump -s N`). PcapWriter
// serializes a record stream into a standard libpcap file (nanosecond
// magic 0xa1b23c4d, LINKTYPE_ETHERNET) that tcpdump/tshark/Wireshark
// open directly; PcapReader loads one back into records.
//
// The on-disk format is always little-endian regardless of host, so
// traces are portable and the golden-header test can assert exact bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace vca {

struct PacketRecord {
  int64_t ts_ns = 0;           // capture time (virtual clock, ns since t=0)
  uint32_t wire_bytes = 0;     // original frame length on the wire
  std::vector<uint8_t> bytes;  // captured bytes, <= min(wire_bytes, snaplen)

  bool operator==(const PacketRecord&) const = default;
};

// Standard libpcap constants (https://wiki.wireshark.org/Development/
// LibpcapFileFormat). We write the nanosecond-resolution variant so the
// simulator's exact virtual timestamps survive the round trip.
constexpr uint32_t kPcapMagicNanos = 0xa1b23c4d;
constexpr uint32_t kPcapMagicMicros = 0xa1b2c3d4;
constexpr uint16_t kPcapVersionMajor = 2;
constexpr uint16_t kPcapVersionMinor = 4;
constexpr uint32_t kPcapLinkEthernet = 1;  // LINKTYPE_ETHERNET
constexpr uint32_t kPcapDefaultSnaplen = 96;

class PcapWriter {
 public:
  // Writes the global header immediately.
  PcapWriter(std::ostream& os, uint32_t snaplen = kPcapDefaultSnaplen);

  // Appends one record. Bytes beyond the writer's snaplen are truncated
  // (the record keeps its original wire length, like tcpdump -s).
  void write(const PacketRecord& rec);

  uint32_t snaplen() const { return snaplen_; }

 private:
  std::ostream& os_;
  uint32_t snaplen_;
};

class PcapReader {
 public:
  // Parses the global header; ok() is false on a foreign magic.
  explicit PcapReader(std::istream& is);

  bool ok() const { return ok_; }
  uint32_t link_type() const { return link_type_; }
  uint32_t snaplen() const { return snaplen_; }
  bool nanosecond() const { return nanosecond_; }

  // Reads the next record; false at EOF or on a truncated file.
  bool next(PacketRecord* out);

  // Drains the remaining records.
  std::vector<PacketRecord> read_all();

 private:
  std::istream& is_;
  bool ok_ = false;
  bool nanosecond_ = true;
  uint32_t link_type_ = 0;
  uint32_t snaplen_ = 0;
};

// Chunked file reader: iterates a libpcap file through a fixed-size read
// buffer, so memory stays O(buffer) no matter how large the capture is.
// This is the reader both the offline pipeline and the streaming
// service's replay path use — a multi-gigabyte trace streams record by
// record, never loaded whole.
class PcapFileReader {
 public:
  static constexpr size_t kDefaultBufferBytes = 64 * 1024;
  // A claimed capture length beyond this marks the file as corrupt
  // (jumbo frames top out far below it); keeps a bad length field from
  // driving an unbounded allocation.
  static constexpr uint32_t kMaxRecordBytes = 1 << 20;

  explicit PcapFileReader(const std::string& path,
                          size_t buffer_bytes = kDefaultBufferBytes);

  bool ok() const { return ok_; }
  uint32_t link_type() const { return link_type_; }
  uint32_t snaplen() const { return snaplen_; }
  bool nanosecond() const { return nanosecond_; }

  // Reads the next record; false at EOF, on a truncated file, or on a
  // corrupt length field. Refills the chunk buffer from disk as needed.
  bool next(PacketRecord* out);

 private:
  bool ensure(size_t need);  // >= need unread bytes buffered
  uint32_t u32_at(size_t off) const;

  std::ifstream file_;
  std::vector<char> buf_;
  size_t buf_pos_ = 0;  // next unread byte
  size_t buf_len_ = 0;  // valid bytes in buf_
  bool ok_ = false;
  bool nanosecond_ = true;
  uint32_t link_type_ = 0;
  uint32_t snaplen_ = 0;
};

// Convenience file round trip. write_pcap_file returns false if the file
// cannot be opened; read_pcap_file returns an empty vector and sets *ok
// (when non-null) to false on open/parse failure.
bool write_pcap_file(const std::string& path,
                     const std::vector<PacketRecord>& records,
                     uint32_t snaplen = kPcapDefaultSnaplen);
std::vector<PacketRecord> read_pcap_file(const std::string& path,
                                         bool* ok = nullptr);

}  // namespace vca
