#include "harness/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "apps/abr_video.h"
#include "apps/bulk_tcp.h"
#include "core/perf.h"
#include "core/rng.h"
#include "harness/network.h"
#include "harness/sweep.h"
#include "net/faults.h"
#include "net/shard.h"
#include "vca/call.h"
#include "vca/conference.h"

namespace vca {

namespace {

constexpr FlowId kCallFlowBase = 1000;
constexpr FlowId kCompFlowBase = 9000;
// Quiet tail appended after the last fault window so every scenario ends
// on a healthy network: reconnect/restore oracles need a settled epoch.
constexpr int64_t kTailMs = 30000;
// In-flight drain after outage onset: a packet mid-serialization at the
// old rate still delivers, plus propagation (<= 30 ms in the generator).
constexpr int64_t kOutageGraceMs = 300;
// Connectivity restore -> reconnect bound: keepalive backoff tops out at
// 4 s (ResilienceSpec), plus congested-RTT slack.
constexpr int64_t kTtrBoundMs = 15000;

TimePoint at_ms(int64_t v) { return TimePoint::zero() + Duration::millis(v); }

// Virtual length of a fault's dark/impaired window, for duration sizing.
int64_t fault_end_ms(const FuzzFault& f) {
  switch (f.kind) {
    case FuzzFaultKind::kFlap:
      return f.start_ms + f.a * (f.b + f.c);
    case FuzzFaultKind::kShape:
      return f.start_ms;  // instantaneous; persists but impairs nothing
    default:
      return f.start_ms + f.length_ms;
  }
}

bool is_connectivity_fault(const FuzzFault& f) {
  switch (f.kind) {
    case FuzzFaultKind::kOutage:
    case FuzzFaultKind::kFlap:
    case FuzzFaultKind::kSfuBlackout:
    case FuzzFaultKind::kRelayOutage:
      return true;
    case FuzzFaultKind::kBurstLoss:
      return f.c >= 500;  // loss_bad >= 50% can starve the path
    default:
      return false;
  }
}

const char* fault_kind_token(FuzzFaultKind k) {
  switch (k) {
    case FuzzFaultKind::kOutage: return "out";
    case FuzzFaultKind::kFlap: return "flap";
    case FuzzFaultKind::kBurstLoss: return "burst";
    case FuzzFaultKind::kReorder: return "reord";
    case FuzzFaultKind::kDuplicate: return "dup";
    case FuzzFaultKind::kShape: return "shape";
    case FuzzFaultKind::kSfuBlackout: return "sfu";
    case FuzzFaultKind::kRelayOutage: return "relay";
  }
  return "out";
}

bool fault_kind_from_token(const std::string& t, FuzzFaultKind* out) {
  if (t == "out") *out = FuzzFaultKind::kOutage;
  else if (t == "flap") *out = FuzzFaultKind::kFlap;
  else if (t == "burst") *out = FuzzFaultKind::kBurstLoss;
  else if (t == "reord") *out = FuzzFaultKind::kReorder;
  else if (t == "dup") *out = FuzzFaultKind::kDuplicate;
  else if (t == "shape") *out = FuzzFaultKind::kShape;
  else if (t == "sfu") *out = FuzzFaultKind::kSfuBlackout;
  else if (t == "relay") *out = FuzzFaultKind::kRelayOutage;
  else return false;
  return true;
}

const char* competitor_token(FuzzCompetitor c) {
  switch (c) {
    case FuzzCompetitor::kNone: return "none";
    case FuzzCompetitor::kBulkUp: return "bulkup";
    case FuzzCompetitor::kBulkDown: return "bulkdown";
    case FuzzCompetitor::kNetflix: return "netflix";
    case FuzzCompetitor::kYoutube: return "youtube";
  }
  return "none";
}

bool competitor_from_token(const std::string& t, FuzzCompetitor* out) {
  if (t == "none") *out = FuzzCompetitor::kNone;
  else if (t == "bulkup") *out = FuzzCompetitor::kBulkUp;
  else if (t == "bulkdown") *out = FuzzCompetitor::kBulkDown;
  else if (t == "netflix") *out = FuzzCompetitor::kNetflix;
  else if (t == "youtube") *out = FuzzCompetitor::kYoutube;
  else return false;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool parse_i64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string fmt_ms(int64_t v) {
  std::ostringstream ss;
  ss << static_cast<double>(v) / 1000.0 << "s";
  return ss.str();
}

// Cross-field topology validation shared by from_spec and the runner.
// Returns nullptr when consistent, else a static description. On a
// cascaded fleet the only infrastructure targets (-1) are the sfu/relay
// kinds — the other kinds read `a` as a fault parameter, so "which
// region's SFU" would be ambiguous for them.
const char* topology_error(const FuzzScenario& sc) {
  if (sc.regions < 1) return "regions must be >= 1";
  if (sc.clients.size() < 2) return "scenario needs >= 2 clients";
  for (const FuzzClient& c : sc.clients) {
    if (c.region < 0 || c.region >= sc.regions) {
      return "client region outside [0, regions)";
    }
  }
  for (const FuzzFault& f : sc.faults) {
    if (f.target_client < -1 ||
        f.target_client >= static_cast<int>(sc.clients.size())) {
      return "fault targets a missing client";
    }
    bool infra_kind = f.kind == FuzzFaultKind::kSfuBlackout ||
                      f.kind == FuzzFaultKind::kRelayOutage;
    if (f.kind == FuzzFaultKind::kRelayOutage &&
        (sc.regions < 2 || f.target_client != -1)) {
      return "relay outage needs a cascaded fleet and target -1";
    }
    if (sc.regions > 1 && f.target_client == -1) {
      if (!infra_kind) {
        return "cascaded fleets take -1 targets only for sfu/relay faults";
      }
      if (f.a < 0 || f.a >= sc.regions) {
        return "infrastructure fault region (a) outside [0, regions)";
      }
    }
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec serialization
// ---------------------------------------------------------------------------

std::string FuzzScenario::to_spec() const {
  std::ostringstream ss;
  ss << "v1;seed=" << seed << ";profile=" << profile
     << ";mode=" << (speaker ? "s" : "g") << ";dur=" << duration_ms
     << ";wedge=" << (inject_wedge ? 1 : 0);
  // Cascaded-fleet fields only appear when in play, so every pre-fleet
  // spec (the committed corpus) re-serializes byte-identically.
  if (regions > 1) ss << ";reg=" << regions;
  for (const FuzzClient& c : clients) {
    ss << ";cl=" << c.up_kbps << "," << c.down_kbps << "," << c.prop_ms << ","
       << c.queue_kb << "," << c.join_ms << "," << c.leave_ms;
    if (regions > 1) ss << "," << c.region;
  }
  for (const FuzzFault& f : faults) {
    ss << ";fl=" << fault_kind_token(f.kind) << "," << f.target_client << ","
       << (f.uplink ? "u" : "d") << "," << f.start_ms << "," << f.length_ms
       << "," << f.a << "," << f.b << "," << f.c;
  }
  if (competitor != FuzzCompetitor::kNone) {
    ss << ";comp=" << competitor_token(competitor) << ","
       << competitor_start_ms << "," << competitor_len_ms;
  }
  return ss.str();
}

std::optional<FuzzScenario> FuzzScenario::from_spec(const std::string& spec) {
  FuzzScenario sc;
  sc.clients.clear();
  std::vector<std::string> tokens = split(spec, ';');
  if (tokens.empty() || tokens[0] != "v1") return std::nullopt;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.empty()) continue;
    size_t eq = tok.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "seed") {
      if (!parse_u64(val, &sc.seed)) return std::nullopt;
    } else if (key == "profile") {
      if (val.empty()) return std::nullopt;
      sc.profile = val;
    } else if (key == "mode") {
      if (val != "s" && val != "g") return std::nullopt;
      sc.speaker = val == "s";
    } else if (key == "dur") {
      if (!parse_i64(val, &sc.duration_ms)) return std::nullopt;
    } else if (key == "wedge") {
      int64_t w;
      if (!parse_i64(val, &w) || (w != 0 && w != 1)) return std::nullopt;
      sc.inject_wedge = w == 1;
    } else if (key == "reg") {
      int64_t r;
      if (!parse_i64(val, &r) || r < 1) return std::nullopt;
      sc.regions = static_cast<int>(r);
    } else if (key == "cl") {
      std::vector<std::string> p = split(val, ',');
      // 7th field (region) is optional; absent means region 0, so the
      // pre-fleet 6-field corpus entries keep parsing.
      if (p.size() != 6 && p.size() != 7) return std::nullopt;
      FuzzClient c;
      int64_t prop, queue;
      if (!parse_i64(p[0], &c.up_kbps) || !parse_i64(p[1], &c.down_kbps) ||
          !parse_i64(p[2], &prop) || !parse_i64(p[3], &queue) ||
          !parse_i64(p[4], &c.join_ms) || !parse_i64(p[5], &c.leave_ms)) {
        return std::nullopt;
      }
      if (p.size() == 7) {
        int64_t region;
        if (!parse_i64(p[6], &region)) return std::nullopt;
        c.region = static_cast<int>(region);
      }
      c.prop_ms = static_cast<int>(prop);
      c.queue_kb = static_cast<int>(queue);
      sc.clients.push_back(c);
    } else if (key == "fl") {
      std::vector<std::string> p = split(val, ',');
      if (p.size() != 8) return std::nullopt;
      FuzzFault f;
      int64_t target;
      if (!fault_kind_from_token(p[0], &f.kind) ||
          !parse_i64(p[1], &target) || (p[2] != "u" && p[2] != "d") ||
          !parse_i64(p[3], &f.start_ms) || !parse_i64(p[4], &f.length_ms) ||
          !parse_i64(p[5], &f.a) || !parse_i64(p[6], &f.b) ||
          !parse_i64(p[7], &f.c)) {
        return std::nullopt;
      }
      f.target_client = static_cast<int>(target);
      f.uplink = p[2] == "u";
      sc.faults.push_back(f);
    } else if (key == "comp") {
      std::vector<std::string> p = split(val, ',');
      if (p.size() != 3) return std::nullopt;
      if (!competitor_from_token(p[0], &sc.competitor) ||
          !parse_i64(p[1], &sc.competitor_start_ms) ||
          !parse_i64(p[2], &sc.competitor_len_ms)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  if (topology_error(sc) != nullptr) return std::nullopt;
  return sc;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

FuzzScenario fuzz_scenario_from_seed(uint64_t seed) {
  FuzzScenario sc;
  sc.seed = seed;
  Rng root(seed);
  Rng topo = root.fork("fuzz-topology");
  Rng fr = root.fork("fuzz-faults");
  Rng cr = root.fork("fuzz-competitor");

  // ~1 seed in 5 exercises the cascaded geo-sharded fleet with a
  // city-scale roster; the rest keep the classic single-SFU call.
  bool conference = topo.bernoulli(0.2);
  int parts;
  int64_t base_dur;
  if (conference) {
    sc.regions = static_cast<int>(topo.uniform_int(2, 4));
    std::vector<std::string> names = conference_profile_names();
    sc.profile = names[static_cast<size_t>(
        topo.uniform_int(0, static_cast<int64_t>(names.size()) - 1))];
    // Quadratic bias toward the small end: most rosters land at 10-25
    // parties, the tail reaches 50 (wall time per scenario grows with
    // roster x visible tiles, so big ones must stay rare).
    double u = topo.uniform();
    parts = 10 + static_cast<int>(40.0 * u * u);
    sc.speaker = topo.bernoulli(0.2);
    base_dur = topo.uniform_int(18, 28) * 1000;
  } else {
    std::vector<std::string> names = all_profile_names();
    sc.profile = names[static_cast<size_t>(
        topo.uniform_int(0, static_cast<int64_t>(names.size()) - 1))];
    parts = static_cast<int>(topo.uniform_int(2, 5));
    sc.speaker = parts > 2 && topo.bernoulli(0.25);
    base_dur = topo.uniform_int(45, 75) * 1000;
  }

  for (int i = 0; i < parts; ++i) {
    FuzzClient c;
    if (conference) {
      // One client pinned per region (no empty shards), rest scatter.
      c.region = i < sc.regions
                     ? i
                     : static_cast<int>(topo.uniform_int(0, sc.regions - 1));
      if (i == 0) {
        // Shaped but roomy enough that a full gallery page of base-rung
        // tiles fits: a starved downlink would read as stuck-degraded.
        c.up_kbps = topo.uniform_int(500, 8000);
        c.down_kbps = topo.uniform_int(3000, 20000);
      } else {
        c.up_kbps = topo.uniform_int(2000, 20000);
        c.down_kbps = topo.uniform_int(3000, 50000);
      }
    } else if (i == 0) {
      // The observed client gets the paper's shaped access link.
      c.up_kbps = topo.uniform_int(300, 8000);
      c.down_kbps = topo.uniform_int(300, 8000);
    } else {
      c.up_kbps = topo.uniform_int(2000, 50000);
      c.down_kbps = topo.uniform_int(2000, 50000);
    }
    c.prop_ms = static_cast<int>(topo.uniform_int(2, 30));
    // Bound bufferbloat to ~1.3 s of uplink queue delay: a watchdog with
    // a 2.5 s media timeout must not be wedged by queue sizing alone.
    int64_t cap_kb =
        std::max<int64_t>(20, std::min<int64_t>(200, c.up_kbps / 6));
    c.queue_kb = static_cast<int>(topo.uniform_int(20, cap_kb));
    sc.clients.push_back(c);
  }

  // Churn (clients 2+ only; 0 and 1 anchor the two-party core).
  for (size_t i = 2; i < sc.clients.size(); ++i) {
    int mode = static_cast<int>(topo.uniform_int(0, 3));
    FuzzClient& c = sc.clients[i];
    if (mode == 1 || mode == 3) {
      c.join_ms = topo.uniform_int(5000, base_dur / 2);
    }
    if (mode == 2 || mode == 3) {
      int64_t earliest = std::max<int64_t>(c.join_ms + 5000, 10000);
      int64_t latest = std::max(earliest, base_dur - 5000);
      c.leave_ms = topo.uniform_int(earliest, latest);
    }
  }

  // Faults: bounded windows inside [5 s, 45 s], so duration = last fault
  // end + 30 s of quiet tail stays under ~90 s of virtual time. The
  // cascaded fleet gets tighter windows ([5 s, 10 s] starts, shorter
  // impairments) because its per-virtual-second cost is much higher.
  int n_faults = static_cast<int>(fr.uniform_int(0, conference ? 4 : 6));
  int64_t last_end = 0;
  for (int i = 0; i < n_faults; ++i) {
    FuzzFault f;
    int k = static_cast<int>(fr.uniform_int(0, conference ? 7 : 6));
    f.kind = static_cast<FuzzFaultKind>(k);
    if (f.kind == FuzzFaultKind::kSfuBlackout ||
        f.kind == FuzzFaultKind::kRelayOutage) {
      f.target_client = -1;
      if (conference) f.a = fr.uniform_int(0, sc.regions - 1);
    } else {
      f.target_client = static_cast<int>(fr.uniform_int(0, parts - 1));
      f.uplink = fr.bernoulli(0.5);
    }
    f.start_ms = fr.uniform_int(5000, conference ? 10000 : 45000);
    switch (f.kind) {
      case FuzzFaultKind::kOutage:
        f.length_ms = fr.uniform_int(500, conference ? 4000 : 10000);
        break;
      case FuzzFaultKind::kSfuBlackout:
        f.length_ms = fr.uniform_int(500, conference ? 4000 : 8000);
        break;
      case FuzzFaultKind::kRelayOutage:
        f.length_ms = fr.uniform_int(500, 5000);
        break;
      case FuzzFaultKind::kFlap:
        f.a = fr.uniform_int(1, conference ? 2 : 4);             // cycles
        f.b = fr.uniform_int(200, conference ? 1500 : 3000);     // down_for
        f.c = fr.uniform_int(200, conference ? 1500 : 3000);     // up_for
        f.length_ms = f.a * (f.b + f.c);
        break;
      case FuzzFaultKind::kBurstLoss:
        f.length_ms = fr.uniform_int(1000, conference ? 6000 : 15000);
        f.a = fr.uniform_int(10, 100);        // p_good_to_bad (per-mille)
        f.b = fr.uniform_int(50, 300);        // p_bad_to_good (per-mille)
        f.c = fr.uniform_int(300, 1000);      // loss_bad (per-mille)
        break;
      case FuzzFaultKind::kReorder:
        f.length_ms = fr.uniform_int(1000, conference ? 6000 : 15000);
        f.a = fr.uniform_int(50, 300);        // prob (per-mille)
        f.b = fr.uniform_int(2, 20);          // detour ms
        break;
      case FuzzFaultKind::kDuplicate:
        f.length_ms = fr.uniform_int(1000, conference ? 6000 : 15000);
        f.a = fr.uniform_int(50, 300);        // prob (per-mille)
        break;
      case FuzzFaultKind::kShape:
        f.length_ms = 0;
        f.a = fr.uniform_int(300, 2000);      // new rate (kbps)
        break;
    }
    sc.faults.push_back(f);
    last_end = std::max(last_end, fault_end_ms(f));
  }
  sc.duration_ms = std::max(base_dur, last_end + kTailMs);

  // Competing flow on client 0's host: ends >= 15 s before the scenario
  // does, so the liveness tail is judged on a drained network. The
  // cascaded fleet skips it — cross-traffic on one access link adds
  // nothing a client shape fault doesn't, at a large wall-time cost.
  if (!conference && cr.bernoulli(0.4)) {
    sc.competitor =
        static_cast<FuzzCompetitor>(cr.uniform_int(1, 4));
    sc.competitor_start_ms = cr.uniform_int(5000, sc.duration_ms / 2);
    int64_t latest_end = sc.duration_ms - 15000;
    if (sc.competitor_start_ms + 10000 <= latest_end) {
      sc.competitor_len_ms =
          cr.uniform_int(10000, latest_end - sc.competitor_start_ms);
    } else {
      sc.competitor = FuzzCompetitor::kNone;
      sc.competitor_start_ms = 0;
    }
  }
  return sc;
}

// ---------------------------------------------------------------------------
// Execution + oracles
// ---------------------------------------------------------------------------

FuzzResult run_fuzz_scenario(const FuzzScenario& sc,
                             const FuzzRunOptions& opt) {
  FuzzResult res;
  res.seed = sc.seed;
  res.spec = sc.to_spec();
  if (const char* err = topology_error(sc)) {
    res.failures.push_back({"spec", err});
    return res;
  }
  const bool cascaded = sc.regions > 1;
  const bool sharded = cascaded && opt.shards >= 1;

  Network net;
  if (sharded) net.enable_sharding();
  // Infrastructure: one SFU per region on a cascaded fleet (the region's
  // relay link pair carries inter-SFU traffic and its faults), else the
  // classic single mid-path SFU.
  std::vector<Network::Region*> regions;
  std::vector<Network::HostPorts> sfu_ports;
  if (cascaded) {
    for (int r = 0; r < sc.regions; ++r) {
      std::string name = "r" + std::to_string(r);
      regions.push_back(net.add_region(name, DataRate::gbps(2),
                                       Duration::millis(20), 8 << 20));
      sfu_ports.push_back(net.add_host_in_region(
          regions.back(), "sfu-" + name, DataRate::gbps(4),
          DataRate::gbps(4), Duration::millis(1), 8 << 20));
    }
  } else {
    sfu_ports.push_back(net.add_host("sfu", DataRate::gbps(2),
                                     DataRate::gbps(2), Duration::millis(8),
                                     4 << 20));
  }
  std::vector<Network::HostPorts> ports;
  for (size_t i = 0; i < sc.clients.size(); ++i) {
    const FuzzClient& c = sc.clients[i];
    std::string name = "c" + std::to_string(i + 1);
    DataRate up = DataRate::kbps(c.up_kbps);
    DataRate down = DataRate::kbps(c.down_kbps);
    Duration prop = Duration::millis(c.prop_ms);
    int64_t queue = static_cast<int64_t>(c.queue_kb) * 1024;
    ports.push_back(
        cascaded ? net.add_host_in_region(
                       regions[static_cast<size_t>(c.region)], name, up,
                       down, prop, queue)
                 : net.add_host(name, up, down, prop, queue));
  }

  std::unique_ptr<Call> call;
  std::unique_ptr<Conference> conf;
  std::vector<VcaClient*> cls;
  if (cascaded) {
    Conference::Config cc;
    cc.profile = vca_profile(sc.profile);
    cc.seed = sc.seed;
    cc.flow_base = kCallFlowBase;
    cc.mode = sc.speaker ? ViewMode::kSpeaker : ViewMode::kGallery;
    cc.pinned_client = 0;
    conf = std::make_unique<Conference>(&net.sched(), cc);
    for (size_t r = 0; r < sfu_ports.size(); ++r) {
      conf->add_region(sfu_ports[r].host, regions[r]->sched);
    }
    for (size_t i = 0; i < sc.clients.size(); ++i) {
      const FuzzClient& fc = sc.clients[i];
      // Conference owns churn: join_at/leave_at schedule it internally.
      TimePoint join_at =
          fc.join_ms > 0 ? at_ms(fc.join_ms) : TimePoint::zero();
      TimePoint leave_at =
          fc.leave_ms > 0 ? at_ms(fc.leave_ms) : TimePoint::infinite();
      cls.push_back(
          conf->add_client(ports[i].host, fc.region, join_at, leave_at));
    }
  } else {
    Call::Config cc;
    cc.profile = vca_profile(sc.profile);
    cc.seed = sc.seed;
    cc.flow_base = kCallFlowBase;
    cc.mode = sc.speaker ? ViewMode::kSpeaker : ViewMode::kGallery;
    cc.pinned_client = 0;
    call = std::make_unique<Call>(&net.sched(), sfu_ports[0].host, cc);
    for (auto& p : ports) cls.push_back(call->add_client(p.host));
  }

  FlowCapture* c0_up = net.capture(ports[0].up, Duration::millis(500));
  FlowCapture* c0_down = net.capture(ports[0].down, Duration::millis(500));

  // Only client targets (and the single-SFU's access links) route through
  // here; cascaded infrastructure faults are special-cased by kind.
  auto link_of = [&](const FuzzFault& f) -> Link* {
    if (f.target_client < 0) {
      return f.uplink ? sfu_ports[0].up : sfu_ports[0].down;
    }
    auto& p = ports[static_cast<size_t>(f.target_client)];
    return f.uplink ? p.up : p.down;
  };
  auto label_of = [&](const FuzzFault& f) -> std::string {
    if (f.target_client < 0) return f.uplink ? "sfu.up" : "sfu.down";
    return "c" + std::to_string(f.target_client + 1) +
           (f.uplink ? ".up" : ".down");
  };

  // Dark windows per faulted link, for the outage-silence oracle. Kept in
  // fault order (never pointer order) so failure output is deterministic.
  struct DarkLink {
    std::string label;
    Link* link;
    FlowCapture* cap;
    std::vector<std::pair<int64_t, int64_t>> windows;  // [start, end) ms
  };
  std::vector<DarkLink> dark;
  auto dark_entry = [&](const std::string& label, Link* link) -> DarkLink& {
    for (DarkLink& d : dark) {
      if (d.link == link) return d;
    }
    dark.push_back({label, link, net.capture(link, Duration::millis(50)), {}});
    return dark.back();
  };
  for (const FuzzFault& f : sc.faults) {
    switch (f.kind) {
      case FuzzFaultKind::kOutage:
        dark_entry(label_of(f), link_of(f))
            .windows.push_back({f.start_ms, f.start_ms + f.length_ms});
        break;
      case FuzzFaultKind::kFlap: {
        int64_t t = f.start_ms;
        DarkLink& d = dark_entry(label_of(f), link_of(f));
        for (int64_t i = 0; i < f.a; ++i) {
          d.windows.push_back({t, t + f.b});
          t += f.b + f.c;
        }
        break;
      }
      case FuzzFaultKind::kSfuBlackout: {
        size_t r = cascaded ? static_cast<size_t>(f.a) : 0;
        std::string base = cascaded ? "sfu-r" + std::to_string(r) : "sfu";
        dark_entry(base + ".up", sfu_ports[r].up)
            .windows.push_back({f.start_ms, f.start_ms + f.length_ms});
        dark_entry(base + ".down", sfu_ports[r].down)
            .windows.push_back({f.start_ms, f.start_ms + f.length_ms});
        break;
      }
      case FuzzFaultKind::kRelayOutage: {
        Network::Region* reg = regions[static_cast<size_t>(f.a)];
        dark_entry(reg->name + ".relay_up", reg->relay_up)
            .windows.push_back({f.start_ms, f.start_ms + f.length_ms});
        dark_entry(reg->name + ".relay_down", reg->relay_down)
            .windows.push_back({f.start_ms, f.start_ms + f.length_ms});
        break;
      }
      default:
        break;
    }
  }

  // Churn (single-SFU calls only — Conference schedules its own from
  // join_at/leave_at): late joiners are stopped by the t=0 event below
  // (scheduled before Call::start() runs, so it fires ahead of every
  // client tick), then started at join time; leavers stop mid-call and
  // never rejoin.
  if (!cascaded) {
    for (size_t i = 2; i < sc.clients.size(); ++i) {
      const FuzzClient& fc = sc.clients[i];
      VcaClient* cl = cls[i];
      if (fc.join_ms > 0) {
        net.sched().schedule_at(TimePoint::zero(), [cl] { cl->stop(); });
        net.sched().schedule_at(at_ms(fc.join_ms), [cl] { cl->start(); });
      }
      if (fc.leave_ms > 0) {
        net.sched().schedule_at(at_ms(fc.leave_ms), [cl] { cl->stop(); });
      }
    }
  }

  FaultPlan plan;
  for (const FuzzFault& f : sc.faults) {
    switch (f.kind) {
      case FuzzFaultKind::kOutage:
        plan.add_outage(link_of(f), at_ms(f.start_ms),
                        Duration::millis(f.length_ms));
        break;
      case FuzzFaultKind::kFlap:
        plan.add_flap(link_of(f), at_ms(f.start_ms), static_cast<int>(f.a),
                      Duration::millis(f.b), Duration::millis(f.c));
        break;
      case FuzzFaultKind::kBurstLoss: {
        GilbertElliott ge;
        ge.p_good_to_bad = static_cast<double>(f.a) / 1000.0;
        ge.p_bad_to_good = static_cast<double>(f.b) / 1000.0;
        ge.loss_good = 0.0;
        ge.loss_bad = static_cast<double>(f.c) / 1000.0;
        plan.add_burst_loss(link_of(f), at_ms(f.start_ms),
                            Duration::millis(f.length_ms), ge);
        break;
      }
      case FuzzFaultKind::kReorder:
        plan.add_reorder(link_of(f), at_ms(f.start_ms),
                         Duration::millis(f.length_ms),
                         static_cast<double>(f.a) / 1000.0,
                         Duration::millis(f.b));
        break;
      case FuzzFaultKind::kDuplicate:
        plan.add_duplicate(link_of(f), at_ms(f.start_ms),
                           Duration::millis(f.length_ms),
                           static_cast<double>(f.a) / 1000.0);
        break;
      case FuzzFaultKind::kShape:
        plan.add_shape(link_of(f), at_ms(f.start_ms), DataRate::kbps(f.a));
        break;
      case FuzzFaultKind::kSfuBlackout: {
        size_t r = cascaded ? static_cast<size_t>(f.a) : 0;
        plan.add_outage(sfu_ports[r].up, at_ms(f.start_ms),
                        Duration::millis(f.length_ms));
        plan.add_outage(sfu_ports[r].down, at_ms(f.start_ms),
                        Duration::millis(f.length_ms));
        SfuServer* sfu =
            cascaded ? conf->sfu(static_cast<int>(r)) : call->sfu();
        plan.at(at_ms(f.start_ms), "sfu-offline",
                [sfu] { sfu->set_online(false); });
        plan.at(at_ms(f.start_ms + f.length_ms), "sfu-restart",
                [sfu] { sfu->set_online(true); });
        break;
      }
      case FuzzFaultKind::kRelayOutage: {
        Network::Region* reg = regions[static_cast<size_t>(f.a)];
        plan.add_outage(reg->relay_up, at_ms(f.start_ms),
                        Duration::millis(f.length_ms));
        plan.add_outage(reg->relay_down, at_ms(f.start_ms),
                        Duration::millis(f.length_ms));
        break;
      }
    }
  }
  if (sc.inject_wedge) {
    // Unmatched rate->0 in the quiet tail, bypassing FaultPlan's outage
    // bookkeeping: the exact bug class satellite (a) fixed, preserved
    // here on demand so CI can prove the oracle + shrinker catch it.
    int64_t wedge_at = sc.duration_ms > kTailMs
                           ? sc.duration_ms - (kTailMs - 5000)
                           : std::max<int64_t>(1000, sc.duration_ms / 2);
    Link* l = ports[0].up;
    plan.at(at_ms(wedge_at), "wedge",
            [l] { l->set_rate(DataRate::zero()); });
  }
  plan.schedule(&net.sched());

  // Competing flow endpoints live on client 0's host (sharing its access
  // links) against a near server, like the paper's iPerf3/CDN setups.
  std::unique_ptr<BulkTcpApp> bulk;
  std::unique_ptr<AbrVideoApp> abr;
  if (sc.competitor != FuzzCompetitor::kNone) {
    auto server = net.add_host("server", DataRate::gbps(1), DataRate::gbps(1),
                               Duration::millis(1), 1 << 20);
    switch (sc.competitor) {
      case FuzzCompetitor::kBulkUp:
        bulk = std::make_unique<BulkTcpApp>(
            &net.sched(), ports[0].host, server.host,
            BulkTcpApp::Config{.flow = kCompFlowBase});
        break;
      case FuzzCompetitor::kBulkDown:
        bulk = std::make_unique<BulkTcpApp>(
            &net.sched(), server.host, ports[0].host,
            BulkTcpApp::Config{.flow = kCompFlowBase + 1});
        break;
      case FuzzCompetitor::kNetflix:
      case FuzzCompetitor::kYoutube: {
        AbrVideoApp::Config ac = sc.competitor == FuzzCompetitor::kNetflix
                                     ? AbrVideoApp::netflix()
                                     : AbrVideoApp::youtube();
        ac.flow_base = kCompFlowBase + 10;
        abr = std::make_unique<AbrVideoApp>(&net.sched(), ports[0].host,
                                            server.host, ac);
        break;
      }
      case FuzzCompetitor::kNone:
        break;
    }
    net.sched().schedule_at(at_ms(sc.competitor_start_ms), [&] {
      if (bulk) bulk->start();
      if (abr) abr->start();
    });
    net.sched().schedule_at(
        at_ms(sc.competitor_start_ms + sc.competitor_len_ms), [&] {
          if (bulk) bulk->stop();
          if (abr) abr->stop();
        });
  }

  // Run in 1 s virtual slices under the event-budget watchdog. The
  // budget is calibrated for a handful of participants; a city-scale
  // cascaded roster legitimately dispatches roster-proportional event
  // load per virtual second, so scale the storm threshold instead of
  // flagging healthy fanout.
  uint64_t budget = opt.event_budget_per_virtual_sec;
  if (cascaded) {
    budget *= std::max<uint64_t>(1, cls.size() / 4);
  }
  if (cascaded) conf->start(); else call->start();
  // Sharded core: one ShardRunner persists across every slice so its
  // worker threads are spawned once, and — the event-storm fix — each
  // slice's budget is a SHARED cap across the control strand and all
  // region shards, matching the single-scheduler accounting exactly. A
  // storm confined to one region exhausts the same budget either way.
  std::unique_ptr<ShardRunner> runner;
  if (sharded) {
    ShardRunner::Options ro;
    ro.threads = opt.shards;
    runner = std::make_unique<ShardRunner>(&net.sched(), net.shard_scheds(),
                                           &net.shard_bus(),
                                           net.shard_lookahead(), ro);
    Conference* c = conf.get();
    runner->set_barrier_hook([c] { c->drain_deferred_keyframes(); });
  }
  auto run_capped = [&](TimePoint until, uint64_t cap) {
    return runner ? runner->run_until_capped(until, cap)
                  : net.sched().run_until_capped(until, cap);
  };
  bool storm = false;
  for (int64_t t = 0; t < sc.duration_ms && !storm; ) {
    int64_t next = std::min<int64_t>(t + 1000, sc.duration_ms);
    if (!run_capped(at_ms(next), budget)) {
      std::ostringstream d;
      d << "event budget (" << budget
        << "/virtual-sec) exhausted at t="
        << fmt_ms((net.sched().now() - TimePoint::zero()).ns() / 1'000'000);
      res.failures.push_back({"event-storm", d.str()});
      storm = true;
    }
    t = next;
  }
  if (cascaded) conf->stop(); else call->stop();
  if (!storm) {
    run_capped(at_ms(sc.duration_ms) + Duration::millis(50),
               500'000);  // flush stop handlers
  }

  // --- oracle: invariant --- (link/clock state plus, on a cascaded
  // fleet, the Conference's own "no forwarding to departed clients" /
  // stale-subscription checks)
  std::vector<std::string> viol = net.check_invariants();
  if (cascaded) conf->append_invariant_violations(&viol);
  res.invariant_violations = static_cast<int>(viol.size());
  if (opt.count_invariants_globally) {
    note_invariant_violations(static_cast<uint64_t>(viol.size()));
  }
  for (const std::string& v : viol) res.failures.push_back({"invariant", v});

  // Perf bookkeeping (same contract as the scenario runners).
  res.sim_events = net.events_processed_total();
  note_sim_events(res.sim_events);
  perf::note_peak_heap_events(net.peak_pending_max());
  if (net.sharded()) {
    perf::note_shard_run(0, net.sched().events_processed(),
                         net.sched().peak_pending(),
                         net.shard_bus().handoffs_from(0));
    std::vector<EventScheduler*> scheds = net.shard_scheds();
    for (size_t i = 0; i < scheds.size(); ++i) {
      perf::note_shard_run(static_cast<int>(i) + 1,
                           scheds[i]->events_processed(),
                           scheds[i]->peak_pending(),
                           net.shard_bus().handoffs_from(
                               static_cast<int>(i) + 1));
    }
  }
  perf::note_link_packets(
      static_cast<uint64_t>(net.total_delivered_packets()));
  res.reconnects = cls[0]->reconnect_count();

  if (storm) return res;  // end-state oracles are meaningless mid-run

  // --- oracle: outage-silence ---
  for (const DarkLink& d : dark) {
    TimeSeries rs = d.cap->rates();
    for (const auto& [ws, we] : d.windows) {
      for (const Sample& s : rs.samples()) {
        int64_t bucket_end_ms = s.at.ns() / 1'000'000;
        int64_t bucket_start_ms = bucket_end_ms - 50;
        if (bucket_start_ms >= ws + kOutageGraceMs && bucket_end_ms <= we &&
            s.value > 0.0) {
          std::ostringstream det;
          det << d.label << " carried traffic at " << fmt_ms(bucket_start_ms)
              << " inside outage [" << fmt_ms(ws) << ", " << fmt_ms(we)
              << ")";
          res.failures.push_back({"outage-silence", det.str()});
          break;  // one report per window is enough
        }
      }
    }
  }

  // Fault-load summary the recovery oracles are scaled by.
  int64_t last_restore_ms = 0;
  int64_t last_fault_end_ms = 0;
  int conn_faults = 0;
  for (const FuzzFault& f : sc.faults) {
    int64_t end = fault_end_ms(f);
    last_fault_end_ms = std::max(last_fault_end_ms, end);
    if (is_connectivity_fault(f)) {
      conn_faults += f.kind == FuzzFaultKind::kFlap
                         ? static_cast<int>(f.a)
                         : 1;
      last_restore_ms = std::max(last_restore_ms, end);
    }
  }
  if (sc.competitor != FuzzCompetitor::kNone) {
    int64_t comp_end = sc.competitor_start_ms + sc.competitor_len_ms;
    last_restore_ms = std::max(last_restore_ms, comp_end);
    last_fault_end_ms = std::max(last_fault_end_ms, comp_end);
  }

  // --- oracle: liveness-wedge ---
  TimePoint end = at_ms(sc.duration_ms);
  bool tail_media =
      c0_down->mean_rate(end - Duration::seconds(10), end).bits_per_sec() > 0;
  if (!cls[0]->connected()) {
    res.failures.push_back(
        {"liveness-wedge",
         "client 0 disconnected at end of run despite a healthy tail"});
  } else if (!tail_media) {
    res.failures.push_back(
        {"liveness-wedge",
         "client 0 claims connected but received no downlink bytes in the "
         "final 10s"});
  }

  // --- oracle: ttr-bound --- (fault-era disconnects must clear within
  // the bound of the last connectivity restore; later congestion-born
  // flaps are judged only by the end-state liveness oracle above)
  {
    std::vector<std::pair<int64_t, int64_t>> down_intervals;
    int64_t open_since = -1;
    for (const ResilienceEvent& ev : cls[0]->resilience_events()) {
      int64_t t = (ev.at - TimePoint::zero()).ns() / 1'000'000;
      if (ev.kind == ResilienceEventKind::kMediaTimeout && open_since < 0) {
        open_since = t;
      } else if (ev.kind == ResilienceEventKind::kReconnected &&
                 open_since >= 0) {
        down_intervals.push_back({open_since, t});
        open_since = -1;
      }
    }
    if (open_since >= 0) down_intervals.push_back({open_since, sc.duration_ms});
    for (const auto& [s, e] : down_intervals) {
      if (s <= last_restore_ms && e > last_restore_ms + kTtrBoundMs) {
        std::ostringstream det;
        det << "client 0 disconnected at " << fmt_ms(s)
            << " and not reconnected until " << fmt_ms(e)
            << " (connectivity restored by " << fmt_ms(last_restore_ms)
            << ", bound " << fmt_ms(kTtrBoundMs) << ")";
        res.failures.push_back({"ttr-bound", det.str()});
      }
    }
  }

  // --- oracle: reconnect-storm ---
  int storm_bound = 60 + 20 * conn_faults;
  if (res.reconnects > storm_bound) {
    std::ostringstream det;
    det << "client 0 reconnected " << res.reconnects << " times (bound "
        << storm_bound << " for " << conn_faults << " connectivity faults)";
    res.failures.push_back({"reconnect-storm", det.str()});
  }

  // --- oracle: stuck-degraded ---
  if (cls[0]->audio_only() &&
      sc.duration_ms - last_fault_end_ms >= 20000) {
    std::ostringstream det;
    det << "client 0 still audio-only at end of run, "
        << fmt_ms(sc.duration_ms - last_fault_end_ms)
        << " after the last fault cleared";
    res.failures.push_back({"stuck-degraded", det.str()});
  }

  // --- oracle: stat-sanity ---
  {
    auto bad = [&](const std::string& what, double v, double lo, double hi) {
      if (std::isfinite(v) && v >= lo && v <= hi) return;
      std::ostringstream det;
      det << what << " = " << v << " outside [" << lo << ", " << hi << "]";
      res.failures.push_back({"stat-sanity", det.str()});
    };
    const auto& feeds = cls[0]->feeds();
    for (size_t i = 0; i < feeds.size(); ++i) {
      std::string tag = "client 0 feed " + std::to_string(i) + " ";
      bad(tag + "median_fps", feeds[i]->stats->median_fps(), 0.0, 240.0);
      bad(tag + "median_qp", feeds[i]->stats->median_qp(), 0.0, 100.0);
      bad(tag + "median_width", feeds[i]->stats->median_width(), 0.0, 4096.0);
      bad(tag + "freeze_ratio",
          feeds[i]->stats->freeze_ratio(Duration::millis(sc.duration_ms)),
          0.0, 1.000001);
    }
    bad("c1 uplink mean rate (mbps)",
        c0_up->mean_rate(TimePoint::zero(), end).mbps_f(), 0.0, 10000.0);
    bad("c1 downlink mean rate (mbps)",
        c0_down->mean_rate(TimePoint::zero(), end).mbps_f(), 0.0, 10000.0);
  }

  return res;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

namespace {

// Smallest duration that still covers every fault window (plus tail) and
// the competitor; the wedge only needs the tail itself.
int64_t min_duration_ms(const FuzzScenario& sc) {
  int64_t need = sc.inject_wedge ? kTailMs + 5000 : 15000;
  for (const FuzzFault& f : sc.faults) {
    need = std::max(need, fault_end_ms(f) + kTailMs);
  }
  if (sc.competitor != FuzzCompetitor::kNone) {
    need = std::max(need,
                    sc.competitor_start_ms + sc.competitor_len_ms + 15000);
  }
  for (const FuzzClient& c : sc.clients) {
    need = std::max({need, c.join_ms + 5000, c.leave_ms + 5000});
  }
  return need;
}

}  // namespace

std::optional<ShrinkResult> shrink_failure(const FuzzScenario& sc,
                                           const FuzzRunOptions& opt0) {
  FuzzRunOptions opt = opt0;
  // Re-running a known-bad scenario dozens of times must not multiply the
  // process-wide violation count the final report surfaces.
  opt.count_invariants_globally = false;

  int runs = 0;
  constexpr int kMaxRuns = 400;
  FuzzResult base = run_fuzz_scenario(sc, opt);
  ++runs;
  if (base.ok()) return std::nullopt;
  const std::string category = base.failures.front().category;
  std::string detail = base.failures.front().detail;
  FuzzScenario cur = sc;

  auto fails_same = [&](const FuzzScenario& cand, std::string* d) {
    if (runs >= kMaxRuns) return false;
    FuzzResult r = run_fuzz_scenario(cand, opt);
    ++runs;
    for (const FuzzFailure& f : r.failures) {
      if (f.category == category) {
        *d = f.detail;
        return true;
      }
    }
    return false;
  };
  auto try_accept = [&](const FuzzScenario& cand) {
    std::string d;
    if (fails_same(cand, &d)) {
      cur = cand;
      detail = d;
      return true;
    }
    return false;
  };

  bool changed = true;
  while (changed && runs < kMaxRuns) {
    changed = false;

    // Structural simplifications, cheapest first.
    if (cur.competitor != FuzzCompetitor::kNone) {
      FuzzScenario cand = cur;
      cand.competitor = FuzzCompetitor::kNone;
      cand.competitor_start_ms = cand.competitor_len_ms = 0;
      if (try_accept(cand)) changed = true;
    }
    {
      bool has_churn = false;
      for (const FuzzClient& c : cur.clients) {
        if (c.join_ms > 0 || c.leave_ms > 0) has_churn = true;
      }
      if (has_churn) {
        FuzzScenario cand = cur;
        for (FuzzClient& c : cand.clients) c.join_ms = c.leave_ms = 0;
        if (try_accept(cand)) changed = true;
      }
    }
    // Cascaded fleets: collapse to one region/SFU (dropping the relay
    // links and the faults that need them) — the single-SFU replay is
    // far cheaper and most bugs aren't relay-specific.
    if (cur.regions > 1) {
      FuzzScenario cand = cur;
      cand.regions = 1;
      for (FuzzClient& c : cand.clients) c.region = 0;
      std::vector<FuzzFault> kept;
      for (FuzzFault f : cand.faults) {
        if (f.kind == FuzzFaultKind::kRelayOutage) continue;
        if (f.kind == FuzzFaultKind::kSfuBlackout) f.a = 0;
        kept.push_back(f);
      }
      cand.faults = std::move(kept);
      if (try_accept(cand)) changed = true;
    }
    // City-scale rosters: halve before trying the all-the-way-to-2 step,
    // for bugs that need N parties but not all of them.
    if (cur.clients.size() > 4) {
      FuzzScenario cand = cur;
      cand.clients.resize(cur.clients.size() / 2);
      std::vector<FuzzFault> kept;
      for (const FuzzFault& f : cand.faults) {
        if (f.target_client < static_cast<int>(cand.clients.size())) {
          kept.push_back(f);
        }
      }
      cand.faults = std::move(kept);
      if (try_accept(cand)) changed = true;
    }
    if (cur.clients.size() > 2) {
      // Drop every extra participant (and the faults aimed at them).
      FuzzScenario cand = cur;
      cand.clients.resize(2);
      std::vector<FuzzFault> kept;
      for (const FuzzFault& f : cand.faults) {
        if (f.target_client < 2) kept.push_back(f);
      }
      cand.faults = std::move(kept);
      if (try_accept(cand)) changed = true;
    }
    if (cur.speaker) {
      FuzzScenario cand = cur;
      cand.speaker = false;
      if (try_accept(cand)) changed = true;
    }

    // All faults gone at once? (the common case for injected wedges)
    if (!cur.faults.empty()) {
      FuzzScenario cand = cur;
      cand.faults.clear();
      if (try_accept(cand)) changed = true;
    }

    // ddmin over the remaining fault list.
    if (cur.faults.size() > 1 && runs < kMaxRuns) {
      size_t n = 2;
      while (n <= cur.faults.size() && runs < kMaxRuns) {
        size_t chunk = (cur.faults.size() + n - 1) / n;
        bool reduced = false;
        for (size_t i = 0; i * chunk < cur.faults.size() && runs < kMaxRuns;
             ++i) {
          FuzzScenario cand = cur;
          cand.faults.clear();
          for (size_t j = 0; j < cur.faults.size(); ++j) {
            if (j / chunk != i) cand.faults.push_back(cur.faults[j]);
          }
          if (cand.faults.size() == cur.faults.size()) continue;
          if (try_accept(cand)) {
            changed = true;
            reduced = true;
            n = std::max<size_t>(2, n - 1);
            break;
          }
        }
        if (!reduced) {
          if (n >= cur.faults.size()) break;
          n = std::min(cur.faults.size(), n * 2);
        }
      }
    }

    // Shorten the call to the minimum that still covers everything left.
    {
      int64_t need = min_duration_ms(cur);
      if (need < cur.duration_ms) {
        FuzzScenario cand = cur;
        cand.duration_ms = need;
        if (try_accept(cand)) changed = true;
      }
    }
  }

  return ShrinkResult{cur, category, detail, runs};
}

}  // namespace vca
