#include "harness/sweep.h"

#include "core/perf.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

namespace vca {

namespace {

std::atomic<uint64_t> g_sim_events{0};
std::atomic<uint64_t> g_invariant_violations{0};

int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// JSON string escaping for the label/metric names we emit (ASCII tables,
// profile names, paths).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

}  // namespace

int default_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

SweepOptions parse_sweep_args(int argc, char** argv) {
  SweepOptions opts;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.jobs = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opts.shards = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json_path = argv[i + 1];
    }
  }
  return opts;
}

void note_sim_events(uint64_t n) {
  g_sim_events.fetch_add(n, std::memory_order_relaxed);
}

uint64_t sim_events_total() {
  return g_sim_events.load(std::memory_order_relaxed);
}

void note_invariant_violations(uint64_t n) {
  if (n) g_invariant_violations.fetch_add(n, std::memory_order_relaxed);
}

uint64_t invariant_violations_total() {
  return g_invariant_violations.load(std::memory_order_relaxed);
}

void Sweep::run_indexed(size_t n, int n_threads,
                        const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t workers = static_cast<size_t>(n_threads > 0 ? n_threads
                                                     : default_jobs());
  if (workers > n) workers = n;
  if (workers <= 1) {
    // The serial path stays thread-free: it is both the --jobs 1 baseline
    // the determinism tests compare against and the fast path on
    // single-core machines.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  // Deterministic error reporting: the first failing submission wins,
  // independent of which worker hit it.
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

BenchReport::BenchReport(std::string bench, SweepOptions opts)
    : bench_(std::move(bench)),
      opts_(std::move(opts)),
      events_at_start_(sim_events_total()),
      violations_at_start_(invariant_violations_total()),
      link_packets_at_start_(perf::link_packets_total()),
      allocs_at_start_(perf::alloc_calls()),
      wall_start_ns_(wall_now_ns()) {}

void BenchReport::begin_section(const std::string& id,
                                const std::string& title) {
  sections_.push_back({id, title, {}});
}

void BenchReport::add_cell(Labels labels, Metrics metrics) {
  if (sections_.empty()) begin_section("default", "");
  sections_.back().cells.push_back({std::move(labels), std::move(metrics)});
}

bool BenchReport::finish() {
  double wall_sec =
      static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
  uint64_t events = sim_events_total() - events_at_start_;
  uint64_t violations = invariant_violations_total() - violations_at_start_;
  double eps = wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  int jobs = opts_.jobs > 0 ? opts_.jobs : default_jobs();
  std::cerr << bench_ << ": wall " << json_num(wall_sec) << " s, "
            << events << " sim events, " << json_num(eps)
            << " events/s, jobs " << jobs << "\n";
  if (violations) {
    std::cerr << bench_ << ": " << violations
              << " invariant violation(s) — failing the report\n";
  }
  if (opts_.json_path.empty()) return violations == 0;

  std::ofstream f(opts_.json_path);
  if (!f) {
    std::cerr << bench_ << ": cannot write " << opts_.json_path << "\n";
    return false;
  }
  f << "{\n  \"bench\": \"" << json_escape(bench_) << "\",\n";
  f << "  \"sections\": [\n";
  for (size_t s = 0; s < sections_.size(); ++s) {
    const Section& sec = sections_[s];
    f << "    {\n      \"id\": \"" << json_escape(sec.id)
      << "\",\n      \"title\": \"" << json_escape(sec.title)
      << "\",\n      \"cells\": [\n";
    for (size_t c = 0; c < sec.cells.size(); ++c) {
      const Cell& cell = sec.cells[c];
      f << "        {\"labels\": {";
      for (size_t i = 0; i < cell.labels.size(); ++i) {
        if (i) f << ", ";
        f << "\"" << json_escape(cell.labels[i].first) << "\": \""
          << json_escape(cell.labels[i].second) << "\"";
      }
      f << "}, \"metrics\": {";
      for (size_t i = 0; i < cell.metrics.size(); ++i) {
        if (i) f << ", ";
        const ConfidenceInterval& ci = cell.metrics[i].second;
        f << "\"" << json_escape(cell.metrics[i].first) << "\": {\"mean\": "
          << json_num(ci.mean) << ", \"lo\": " << json_num(ci.lo)
          << ", \"hi\": " << json_num(ci.hi) << "}";
      }
      f << "}}" << (c + 1 < sec.cells.size() ? "," : "") << "\n";
    }
    f << "      ]\n    }" << (s + 1 < sections_.size() ? "," : "") << "\n";
  }
  f << "  ],\n";
  // Deterministic for a deterministic sim (it counts sim-level facts, not
  // wall-clock), so it sits OUTSIDE the strippable timing line.
  f << "  \"invariant_violations\": " << violations << ",\n";
  // One line, run-dependent: strip with `grep -v '"timing"'` when diffing.
  // Perf-counter fields (core/perf.h): peak scheduler heap occupancy and
  // link-delivered packets across all runs this report covers, plus the
  // global-new call count — nonzero only when vca_perf_alloc is linked in.
  uint64_t link_pkts = perf::link_packets_total() - link_packets_at_start_;
  double pps =
      wall_sec > 0.0 ? static_cast<double>(link_pkts) / wall_sec : 0.0;
  uint64_t allocs = perf::alloc_tracking_active()
                        ? perf::alloc_calls() - allocs_at_start_
                        : 0;
  f << "  \"timing\": {\"jobs\": " << jobs << ", \"wall_clock_sec\": "
    << json_num(wall_sec) << ", \"sim_events\": " << events
    << ", \"events_per_sec\": " << json_num(eps)
    << ", \"peak_heap_events\": " << perf::peak_heap_events()
    << ", \"link_packets\": " << link_pkts
    << ", \"link_packets_per_sec\": " << json_num(pps)
    << ", \"heap_alloc_calls\": " << allocs
    << ", \"alloc_tracking\": "
    << (perf::alloc_tracking_active() ? "true" : "false");
  // Per-shard breakdown (sharded core runs only). Lives INSIDE the one
  // timing line so the strippable-timing-line diff contract holds:
  // events and events/sec per shard, event-heap high-water mark, and
  // cross-shard mailbox handoffs (totals across every sharded run this
  // report covers; shard 0 is the control strand).
  if (perf::shard_slots() > 0) {
    f << ", \"shards\": [";
    for (int s = 0; s < perf::shard_slots(); ++s) {
      uint64_t sev = perf::shard_events(s);
      uint64_t hoff = perf::shard_handoffs(s);
      if (s) f << ", ";
      f << "{\"shard\": " << s << ", \"events\": " << sev
        << ", \"events_per_sec\": "
        << json_num(wall_sec > 0.0 ? static_cast<double>(sev) / wall_sec
                                   : 0.0)
        << ", \"peak_heap_events\": " << perf::shard_peak_heap(s)
        << ", \"handoffs\": " << hoff << ", \"handoffs_per_sec\": "
        << json_num(wall_sec > 0.0 ? static_cast<double>(hoff) / wall_sec
                                   : 0.0)
        << "}";
    }
    f << "]";
  }
  f << "}\n";
  f << "}\n";
  return f.good() && violations == 0;
}

}  // namespace vca
