#include "harness/scenario.h"

#include <algorithm>

#include "apps/abr_video.h"
#include "apps/bulk_tcp.h"
#include "core/perf.h"
#include "harness/network.h"
#include "harness/sweep.h"
#include "net/faults.h"
#include "vca/call.h"
#include "vca/conference.h"

namespace vca {

namespace {

// End-of-run bookkeeping every scenario runner shares: enforce the sim
// invariants (propagating any violation count into the process-wide
// counter BenchReport surfaces, so release builds fail loudly too),
// retire the run's events into the process-wide counter and feed the
// perf-counter layer (scheduler heap high-water mark, link-delivered
// packets). Returns the violation count for runners that also report it.
int finish_run(Network& net) {
  int violations = net.enforce_invariants();
  note_invariant_violations(static_cast<uint64_t>(violations));
  note_sim_events(net.events_processed_total());
  perf::note_peak_heap_events(net.peak_pending_max());
  perf::note_link_packets(
      static_cast<uint64_t>(net.total_delivered_packets()));
  if (net.sharded()) {
    // Per-shard breakdown for BenchReport's timing line: shard 0 is the
    // control strand, 1..R the region shards; handoffs are the packets a
    // shard posted into the cross-shard mailboxes.
    perf::note_shard_run(0, net.sched().events_processed(),
                         net.sched().peak_pending(),
                         net.shard_bus().handoffs_from(0));
    auto scheds = net.shard_scheds();
    for (size_t i = 0; i < scheds.size(); ++i) {
      perf::note_shard_run(static_cast<int>(i) + 1,
                           scheds[i]->events_processed(),
                           scheds[i]->peak_pending(),
                           net.shard_bus().handoffs_from(
                               static_cast<int>(i) + 1));
    }
  }
  return violations;
}

constexpr FlowId kIncumbentFlowBase = 1000;
constexpr FlowId kCompetitorFlowBase = 4000;
constexpr FlowId kIperfFlow = 9000;
constexpr FlowId kAbrFlowBase = 9100;

FeedQuality feed_quality(Call& call, SfuServer* sfu, VcaClient* viewer,
                         VcaClient* publisher, Duration duration) {
  FeedQuality q;
  if (viewer->feeds().empty()) return q;
  const auto& feed = *viewer->feeds().front();
  q.median_fps = feed.stats->median_fps();
  q.median_qp = feed.stats->median_qp();
  q.median_width = feed.stats->median_width();
  q.freeze_ratio = feed.stats->freeze_ratio(duration);
  q.fir_upstream =
      sfu->fir_count_for(publisher) + feed.receiver->fir_sent();
  (void)call;
  return q;
}

}  // namespace

int64_t queue_bytes_for(DataRate rate) {
  int64_t bdp_300ms = rate.bits_per_sec() * 3 / 10 / 8;
  return std::clamp<int64_t>(bdp_300ms, 20'000, 1'000'000);
}

// ---------------------------------------------------------------------------

TwoPartyResult run_two_party(const TwoPartyConfig& cfg) {
  Network net;
  auto sfu_ports = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                                Duration::millis(8), 4 << 20);
  DataRate shaped = std::min(cfg.c1_up, cfg.c1_down);
  auto c1 = net.add_host("c1", cfg.c1_up, cfg.c1_down,
                         Duration::millis(2) + cfg.c1_extra_latency,
                         queue_bytes_for(shaped));
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);
  if (cfg.c1_loss > 0.0) {
    c1.up->set_random_loss(cfg.c1_loss);
    c1.down->set_random_loss(cfg.c1_loss);
  }
  if (cfg.c1_jitter > Duration::zero()) {
    c1.up->set_jitter(cfg.c1_jitter);
    c1.down->set_jitter(cfg.c1_jitter);
  }

  Call::Config call_cfg;
  call_cfg.profile = vca_profile(cfg.profile);
  call_cfg.seed = cfg.seed;
  call_cfg.flow_base = kIncumbentFlowBase;
  Call call(&net.sched(), sfu_ports.host, call_cfg);
  VcaClient* cl1 = call.add_client(c1.host);
  VcaClient* cl2 = call.add_client(c2.host);

  FlowCapture* up_cap = net.capture(c1.up, cfg.bucket);
  FlowCapture* down_cap = net.capture(c1.down, cfg.bucket);
  TraceRecorder* up_rec = nullptr;
  TraceRecorder* down_rec = nullptr;
  if (cfg.capture_traces) {
    up_rec = net.record(c1.up, cfg.trace_snaplen);
    down_rec = net.record(c1.down, cfg.trace_snaplen);
  }

  call.start();
  net.sched().run_until(TimePoint::zero() + cfg.duration);
  call.stop();
  net.sched().run_for(Duration::millis(10));  // flush stop handlers

  TwoPartyResult out;
  TimePoint from = TimePoint::zero() + cfg.measure_from;
  TimePoint to = TimePoint::zero() + cfg.duration;
  out.c1_up_mbps = up_cap->mean_rate(from, to).mbps_f();
  out.c1_down_mbps = down_cap->mean_rate(from, to).mbps_f();
  out.c1_up_series = up_cap->rates();
  out.c1_down_series = down_cap->rates();
  out.c1_received = feed_quality(call, call.sfu(), cl1, cl2, cfg.duration);
  out.c2_received = feed_quality(call, call.sfu(), cl2, cl1, cfg.duration);
  if (cfg.capture_traces) {
    out.c1_up_records = up_rec->take_records();
    out.c1_down_records = down_rec->take_records();
    if (!cfg.pcap_path.empty()) {
      write_pcap_file(cfg.pcap_path, out.c1_down_records, cfg.trace_snaplen);
    }
    if (!cl1->feeds().empty()) {
      out.c1_recv_seconds = cl1->feeds().front()->stats->per_second();
    }
  }
  finish_run(net);
  return out;
}

// ---------------------------------------------------------------------------

DisruptionResult run_disruption(const DisruptionConfig& cfg) {
  Network net;
  auto sfu_ports = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                                Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), queue_bytes_for(cfg.drop_to));
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);

  Call::Config call_cfg;
  call_cfg.profile = vca_profile(cfg.profile);
  call_cfg.seed = cfg.seed;
  call_cfg.flow_base = kIncumbentFlowBase;
  Call call(&net.sched(), sfu_ports.host, call_cfg);
  call.add_client(c1.host);
  call.add_client(c2.host);

  Duration bucket = Duration::millis(500);
  Link* disrupted = cfg.uplink ? c1.up : c1.down;
  FlowCapture* dir_cap = net.capture(disrupted, bucket);
  FlowCapture* c2_up_cap = net.capture(c2.up, bucket);

  TimePoint t0 = TimePoint::zero();
  net.shape_at(disrupted, t0 + cfg.start, cfg.drop_to);
  net.shape_at(disrupted, t0 + cfg.start + cfg.length, DataRate::gbps(1));

  call.start();
  net.sched().run_until(t0 + cfg.total);
  call.stop();

  DisruptionResult out;
  out.disrupted_series = dir_cap->rates();
  out.c2_up_series = c2_up_cap->rates();
  out.ttr = time_to_recovery(out.disrupted_series, t0 + cfg.start,
                             t0 + cfg.start + cfg.length,
                             Duration::seconds(5), /*recovery_fraction=*/0.95);
  finish_run(net);
  return out;
}

// ---------------------------------------------------------------------------

OutageResult run_outage(const OutageConfig& cfg) {
  Network net;
  auto sfu_ports = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                                Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 256 * 1024);
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);

  Call::Config call_cfg;
  call_cfg.profile = vca_profile(cfg.profile);
  call_cfg.seed = cfg.seed;
  call_cfg.flow_base = kIncumbentFlowBase;
  Call call(&net.sched(), sfu_ports.host, call_cfg);
  VcaClient* cl1 = call.add_client(c1.host);
  call.add_client(c2.host);

  Duration bucket = Duration::millis(500);
  FlowCapture* up_cap = net.capture(c1.up, bucket);
  FlowCapture* down_cap = net.capture(c1.down, bucket);

  TimePoint t0 = TimePoint::zero();
  FaultPlan plan;
  switch (cfg.target) {
    case OutageTarget::kUplink:
      plan.add_outage(c1.up, t0 + cfg.start, cfg.length);
      break;
    case OutageTarget::kDownlink:
      plan.add_outage(c1.down, t0 + cfg.start, cfg.length);
      break;
    case OutageTarget::kBoth:
      plan.add_outage(c1.up, t0 + cfg.start, cfg.length);
      plan.add_outage(c1.down, t0 + cfg.start, cfg.length);
      break;
    case OutageTarget::kSfu: {
      // Server blackout: its access links go dark and it stops serving,
      // so restart resumes from live state (production SFU failover).
      plan.add_outage(sfu_ports.up, t0 + cfg.start, cfg.length);
      plan.add_outage(sfu_ports.down, t0 + cfg.start, cfg.length);
      SfuServer* sfu = call.sfu();
      plan.at(t0 + cfg.start, "sfu-offline", [sfu] { sfu->set_online(false); });
      plan.at(t0 + cfg.start + cfg.length, "sfu-restart",
              [sfu] { sfu->set_online(true); });
      break;
    }
  }
  plan.schedule(&net.sched());

  call.start();
  net.sched().run_until(t0 + cfg.total);
  call.stop();

  OutageResult out;
  out.c1_up_series = up_cap->rates();
  out.c1_down_series = down_cap->rates();
  const TimeSeries& affected = cfg.target == OutageTarget::kDownlink
                                   ? out.c1_down_series
                                   : out.c1_up_series;
  out.ttr = time_to_recovery(affected, t0 + cfg.start,
                             t0 + cfg.start + cfg.length,
                             Duration::seconds(5), /*recovery_fraction=*/0.95);
  TimePoint onset = t0 + cfg.start;
  TimePoint restored = t0 + cfg.start + cfg.length;
  for (const ResilienceEvent& ev : cl1->resilience_events()) {
    if (!out.detect_delay && ev.kind == ResilienceEventKind::kMediaTimeout &&
        ev.at >= onset) {
      out.detect_delay = ev.at - onset;
    }
    if (!out.reconnect_delay && ev.kind == ResilienceEventKind::kReconnected &&
        ev.at >= restored) {
      out.reconnect_delay = ev.at - restored;
    }
    if (ev.kind == ResilienceEventKind::kDegraded) ++out.degrade_events;
  }
  out.reconnects = cl1->reconnect_count();
  out.invariant_violations = net.check_invariants();
  net.enforce_invariants();
  finish_run(net);
  return out;
}

// ---------------------------------------------------------------------------

CompetitionResult run_competition(const CompetitionConfig& cfg) {
  Network net;
  auto seg = net.add_segment(cfg.link, Duration::millis(2),
                             queue_bytes_for(cfg.link));
  auto c1 = net.add_host_on_segment(seg, "c1");
  auto f1 = net.add_host_on_segment(seg, "f1");

  auto sfu1 = net.add_host("sfu1", DataRate::gbps(2), DataRate::gbps(2),
                           Duration::millis(8), 4 << 20);
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);

  Call::Config cc1;
  cc1.profile = vca_profile(cfg.incumbent);
  cc1.seed = cfg.seed;
  cc1.flow_base = kIncumbentFlowBase;
  Call incumbent(&net.sched(), sfu1.host, cc1);
  incumbent.add_client(c1.host);
  incumbent.add_client(c2.host);

  // Captures on the shared bottleneck, split by flow ranges.
  FlowCapture* inc_up = net.capture(seg->shared_up, cfg.bucket);
  inc_up->add_flow_range(kIncumbentFlowBase, kCompetitorFlowBase - 1);
  FlowCapture* inc_down = net.capture(seg->shared_down, cfg.bucket);
  inc_down->add_flow_range(kIncumbentFlowBase, kCompetitorFlowBase - 1);
  FlowCapture* comp_up = net.capture(seg->shared_up, cfg.bucket);
  comp_up->add_flow_range(kCompetitorFlowBase, 65000);
  FlowCapture* comp_down = net.capture(seg->shared_down, cfg.bucket);
  comp_down->add_flow_range(kCompetitorFlowBase, 65000);

  // Competitor endpoints (created lazily at competitor_start).
  std::unique_ptr<Call> comp_call;
  std::unique_ptr<BulkTcpApp> iperf_up_app, iperf_down_app;
  std::unique_ptr<AbrVideoApp> abr;

  Network::HostPorts sfu2{}, f2{}, server{};
  if (cfg.competitor == CompetitorKind::kVca) {
    sfu2 = net.add_host("sfu2", DataRate::gbps(2), DataRate::gbps(2),
                        Duration::millis(8), 4 << 20);
    f2 = net.add_host("f2", DataRate::gbps(1), DataRate::gbps(1),
                      Duration::millis(2), 1 << 20);
    Call::Config cc2;
    cc2.profile = vca_profile(cfg.competitor_profile);
    cc2.seed = cfg.seed + 1;
    cc2.flow_base = kCompetitorFlowBase;
    comp_call = std::make_unique<Call>(&net.sched(), sfu2.host, cc2);
    comp_call->add_client(f1.host);
    comp_call->add_client(f2.host);
  } else {
    // iPerf3 server / CDN edge: close by (the paper's 2 ms RTT server).
    server = net.add_host("server", DataRate::gbps(1), DataRate::gbps(1),
                          Duration::millis(1), 1 << 20);
    if (cfg.competitor == CompetitorKind::kIperfUp) {
      iperf_up_app = std::make_unique<BulkTcpApp>(
          &net.sched(), f1.host, server.host,
          BulkTcpApp::Config{.flow = kIperfFlow});
    } else if (cfg.competitor == CompetitorKind::kIperfDown) {
      iperf_down_app = std::make_unique<BulkTcpApp>(
          &net.sched(), server.host, f1.host,
          BulkTcpApp::Config{.flow = kIperfFlow + 1});
    } else {
      AbrVideoApp::Config ac = cfg.competitor == CompetitorKind::kNetflix
                                   ? AbrVideoApp::netflix()
                                   : AbrVideoApp::youtube();
      ac.flow_base = kAbrFlowBase;
      abr = std::make_unique<AbrVideoApp>(&net.sched(), f1.host, server.host,
                                          ac);
    }
  }

  TimePoint t0 = TimePoint::zero();
  incumbent.start();
  net.sched().schedule_at(t0 + cfg.competitor_start, [&] {
    if (comp_call) comp_call->start();
    if (iperf_up_app) iperf_up_app->start();
    if (iperf_down_app) iperf_down_app->start();
    if (abr) abr->start();
  });
  net.sched().schedule_at(t0 + cfg.competitor_start + cfg.competitor_len, [&] {
    if (comp_call) comp_call->stop();
    if (iperf_up_app) iperf_up_app->stop();
    if (iperf_down_app) iperf_down_app->stop();
    if (abr) abr->stop();
  });

  net.sched().run_until(t0 + cfg.total);
  incumbent.stop();

  CompetitionResult out;
  // Competition window: skip the first 15 s of the competitor's life so
  // both sides have converged.
  TimePoint from = t0 + cfg.competitor_start + Duration::seconds(15);
  TimePoint to = t0 + cfg.competitor_start + cfg.competitor_len;
  double cap = cfg.link.mbps_f();
  out.incumbent_up_mbps = inc_up->mean_rate(from, to).mbps_f();
  out.incumbent_down_mbps = inc_down->mean_rate(from, to).mbps_f();
  out.competitor_up_mbps = comp_up->mean_rate(from, to).mbps_f();
  out.competitor_down_mbps = comp_down->mean_rate(from, to).mbps_f();
  out.incumbent_up_share = out.incumbent_up_mbps / cap;
  out.incumbent_down_share = out.incumbent_down_mbps / cap;
  out.competitor_up_share = out.competitor_up_mbps / cap;
  out.competitor_down_share = out.competitor_down_mbps / cap;
  out.incumbent_up_series = inc_up->rates();
  out.incumbent_down_series = inc_down->rates();
  out.competitor_up_series = comp_up->rates();
  out.competitor_down_series = comp_down->rates();
  if (abr) {
    out.competitor_connections = abr->connections_opened();
    out.competitor_max_parallel = abr->max_parallel_seen();
  }
  finish_run(net);
  return out;
}

// ---------------------------------------------------------------------------

MultipartyResult run_multiparty(const MultipartyConfig& cfg) {
  Network net;
  auto sfu_ports = net.add_host("sfu", DataRate::gbps(4), DataRate::gbps(4),
                                Duration::millis(8), 8 << 20);

  Call::Config call_cfg;
  call_cfg.profile = vca_profile(cfg.profile);
  call_cfg.seed = cfg.seed;
  call_cfg.flow_base = kIncumbentFlowBase;
  call_cfg.mode = cfg.mode;
  call_cfg.pinned_client = 0;  // everyone pins C1 (§6.2)
  Call call(&net.sched(), sfu_ports.host, call_cfg);

  std::vector<Network::HostPorts> ports;
  for (int i = 0; i < cfg.participants; ++i) {
    ports.push_back(net.add_host("c" + std::to_string(i + 1),
                                 DataRate::gbps(1), DataRate::gbps(1),
                                 Duration::millis(2), 1 << 20));
    call.add_client(ports.back().host);
  }

  FlowCapture* up_cap = net.capture(ports[0].up);
  FlowCapture* down_cap = net.capture(ports[0].down);

  call.start();
  net.sched().run_until(TimePoint::zero() + cfg.duration);
  call.stop();

  MultipartyResult out;
  TimePoint from = TimePoint::zero() + cfg.measure_from;
  TimePoint to = TimePoint::zero() + cfg.duration;
  out.c1_up_mbps = up_cap->mean_rate(from, to).mbps_f();
  out.c1_down_mbps = down_cap->mean_rate(from, to).mbps_f();
  finish_run(net);
  return out;
}

ConferenceResult run_conference(const ConferenceConfig& cfg) {
  Network net;
  const bool sharded = cfg.shards >= 1;
  if (sharded) net.enable_sharding();
  Conference::Config conf_cfg;
  conf_cfg.profile = vca_profile(cfg.profile);
  conf_cfg.mode = cfg.mode;
  conf_cfg.seed = cfg.seed;
  conf_cfg.flow_base = kIncumbentFlowBase;
  Conference conf(&net.sched(), conf_cfg);

  // One region + SFU per shard; clients round-robin across shards so
  // every inter-SFU link carries real fanout.
  std::vector<Network::Region*> regions;
  std::vector<Network::HostPorts> sfu_ports;
  for (int r = 0; r < cfg.regions; ++r) {
    std::string name = "r" + std::to_string(r);
    regions.push_back(
        net.add_region(name, cfg.relay_rate, cfg.relay_prop, 8 << 20));
    sfu_ports.push_back(net.add_host_in_region(
        regions.back(), "sfu-" + name, DataRate::gbps(4), DataRate::gbps(4),
        Duration::millis(1), 8 << 20));
    conf.add_region(sfu_ports.back().host, regions.back()->sched);
  }

  const int stable = cfg.participants - cfg.late_joiners;
  std::vector<Network::HostPorts> ports;
  std::vector<VcaClient*> clients;
  for (int i = 0; i < cfg.participants; ++i) {
    int region = i % cfg.regions;
    ports.push_back(net.add_host_in_region(
        regions[static_cast<size_t>(region)], "c" + std::to_string(i + 1),
        cfg.client_up, cfg.client_down, Duration::millis(2),
        queue_bytes_for(cfg.client_down)));
    TimePoint join_at = TimePoint::zero();
    TimePoint leave_at = TimePoint::infinite();
    if (i >= stable) {
      join_at = TimePoint::zero() + cfg.churn_start +
                cfg.churn_step * (i - stable);
    } else if (i >= stable / 2 &&
               i < stable / 2 + cfg.early_leavers) {
      leave_at = TimePoint::zero() + cfg.churn_start +
                 cfg.churn_step * (i - stable / 2 + 1);
    }
    clients.push_back(
        conf.add_client(ports.back().host, region, join_at, leave_at));
  }

  std::vector<FlowCapture*> up_caps, down_caps;
  for (auto& p : ports) {
    up_caps.push_back(net.capture(p.up));
    down_caps.push_back(net.capture(p.down));
  }
  std::vector<FlowCapture*> relay_up_caps, relay_down_caps;
  for (auto* reg : regions) {
    relay_up_caps.push_back(net.capture(reg->relay_up));
    relay_down_caps.push_back(net.capture(reg->relay_down));
  }
  TraceRecorder* c1_down_rec = nullptr;
  if (cfg.capture_traces) {
    c1_down_rec = net.record(ports[0].down, cfg.trace_snaplen);
  }

  // Region-scoped faults.
  FaultPlan plan;
  TimePoint fault_at = TimePoint::zero() + cfg.fault_start;
  if (cfg.relay_outage_region >= 0 && cfg.relay_outage_region < cfg.regions) {
    Network::Region* reg = regions[static_cast<size_t>(cfg.relay_outage_region)];
    plan.add_outage(reg->relay_up, fault_at, cfg.fault_length);
    plan.add_outage(reg->relay_down, fault_at, cfg.fault_length);
  }
  if (cfg.sfu_blackout_region >= 0 && cfg.sfu_blackout_region < cfg.regions) {
    SfuServer* sfu = conf.sfu(cfg.sfu_blackout_region);
    plan.at(fault_at, "sfu-blackout", [sfu] { sfu->set_online(false); });
    plan.at(fault_at + cfg.fault_length, "sfu-restore",
            [sfu] { sfu->set_online(true); });
  }
  if (plan.size() > 0) plan.schedule(&net.sched());

  // Fanout high-water sampler (1 Hz), per region.
  std::vector<int> peak_subs(static_cast<size_t>(cfg.regions), 0);
  std::function<void()> sample = [&] {
    for (int r = 0; r < cfg.regions; ++r) {
      peak_subs[static_cast<size_t>(r)] =
          std::max(peak_subs[static_cast<size_t>(r)],
                   conf.sfu(r)->subscription_count());
    }
    net.sched().schedule(Duration::seconds(1), [&] { sample(); });
  };
  net.sched().schedule(Duration::seconds(1), [&] { sample(); });

  conf.start();
  if (sharded) {
    ShardRunner::Options ro;
    ro.threads = cfg.shards;
    ShardRunner runner(&net.sched(), net.shard_scheds(), &net.shard_bus(),
                       net.shard_lookahead(), ro);
    runner.set_barrier_hook([&conf] { conf.drain_deferred_keyframes(); });
    runner.run_until(TimePoint::zero() + cfg.duration);
  } else {
    net.sched().run_until(TimePoint::zero() + cfg.duration);
  }
  conf.stop();

  ConferenceResult out;
  TimePoint from = TimePoint::zero() + cfg.measure_from;
  TimePoint to = TimePoint::zero() + cfg.duration;
  out.c1_up_mbps = up_caps[0]->mean_rate(from, to).mbps_f();
  out.c1_down_mbps = down_caps[0]->mean_rate(from, to).mbps_f();

  std::vector<double> region_sum(static_cast<size_t>(cfg.regions), 0.0);
  std::vector<int> region_n(static_cast<size_t>(cfg.regions), 0);
  double down_sum = 0.0, up_sum = 0.0;
  int counted = 0;
  for (int i = 0; i < cfg.participants; ++i) {
    if (!conf.is_active(clients[static_cast<size_t>(i)])) continue;
    double down = down_caps[static_cast<size_t>(i)]->mean_rate(from, to).mbps_f();
    double up = up_caps[static_cast<size_t>(i)]->mean_rate(from, to).mbps_f();
    down_sum += down;
    up_sum += up;
    ++counted;
    region_sum[static_cast<size_t>(i % cfg.regions)] += down;
    region_n[static_cast<size_t>(i % cfg.regions)] += 1;
  }
  out.mean_client_down_mbps = counted > 0 ? down_sum / counted : 0.0;
  out.mean_client_up_mbps = counted > 0 ? up_sum / counted : 0.0;
  for (int r = 0; r < cfg.regions; ++r) {
    out.region_mean_down_mbps.push_back(
        region_n[static_cast<size_t>(r)] > 0
            ? region_sum[static_cast<size_t>(r)] / region_n[static_cast<size_t>(r)]
            : 0.0);
  }

  for (int r = 0; r < cfg.regions; ++r) {
    ConferenceRegionStats rs;
    rs.name = regions[static_cast<size_t>(r)]->name;
    rs.clients = region_n[static_cast<size_t>(r)];
    rs.forwarded_packets = conf.sfu(r)->forwarded_packets();
    rs.forwarded_pps =
        cfg.duration.seconds() > 0
            ? static_cast<double>(rs.forwarded_packets) / cfg.duration.seconds()
            : 0.0;
    rs.peak_subscriptions = peak_subs[static_cast<size_t>(r)];
    rs.relay_out_streams = conf.sfu(r)->relay_out_count();
    rs.relay_up_mbps = relay_up_caps[static_cast<size_t>(r)]->mean_rate(from, to).mbps_f();
    rs.relay_down_mbps =
        relay_down_caps[static_cast<size_t>(r)]->mean_rate(from, to).mbps_f();
    rs.relay_up_utilization =
        rs.relay_up_mbps / std::max(1e-9, cfg.relay_rate.mbps_f());
    out.total_forwarded_packets += rs.forwarded_packets;
    out.regions.push_back(rs);
  }
  out.active_at_end = conf.active_count();
  out.forwards_to_departed = conf.forwards_to_departed();

  // Conference-level invariants feed the process-wide counter here; the
  // link/clock invariants are counted inside finish_run (don't double
  // count them).
  conf.append_invariant_violations(&out.invariant_violations);
  note_invariant_violations(
      static_cast<uint64_t>(out.invariant_violations.size()));
  for (const auto& v : net.check_invariants()) {
    out.invariant_violations.push_back(v);
  }
  if (cfg.capture_traces) {
    out.c1_down_records = c1_down_rec->take_records();
    if (!cfg.pcap_path.empty()) {
      write_pcap_file(cfg.pcap_path, out.c1_down_records, cfg.trace_snaplen);
    }
    if (!clients[0]->feeds().empty()) {
      out.c1_recv_seconds = clients[0]->feeds().front()->stats->per_second();
    }
  }
  finish_run(net);
  return out;
}

}  // namespace vca
