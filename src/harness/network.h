// Topology builder: the laboratory network of §2.2 and Fig 7.
//
// Hosts hang off a router through a pair of access links (the uplink is
// where `tc` shaping happens in the paper); competition experiments put
// two hosts behind a switch that shares one shaped link pair.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/invariants.h"
#include "net/link.h"
#include "net/node.h"
#include "net/shard.h"
#include "stats/capture.h"
#include "trace/recorder.h"

namespace vca {

class Network {
 public:
  struct HostPorts {
    Host* host = nullptr;
    Link* up = nullptr;    // host -> router (shaped for uplink experiments)
    Link* down = nullptr;  // router -> host
  };

  struct Segment {
    ForwardingNode* sw = nullptr;
    Link* shared_up = nullptr;    // switch -> router (the shared bottleneck)
    Link* shared_down = nullptr;  // router -> switch
  };

  // A geographic region for cascaded-SFU fleets: a regional aggregation
  // node whose hosts reach the rest of the world through a pair of
  // wide-area relay links (where inter-region propagation delay and
  // relay-link faults live). Intra-region traffic never touches them.
  struct Region {
    std::string name;
    ForwardingNode* sw = nullptr;
    Link* relay_up = nullptr;    // region -> core (inter-SFU direction out)
    Link* relay_down = nullptr;  // core -> region
    DataRate relay_rate;
    // Sharded core only: the region's own scheduler and shard index
    // (shard 0 is the control strand). nullptr / 0 on a legacy Network.
    EventScheduler* sched = nullptr;
    int shard = 0;
  };

  Network() { checker_.watch(&sched_); }

  // Captures and recorders hand `this`-capturing taps to links (see the
  // ownership contract in stats/capture.h). Detach every tap before the
  // captures, fanouts, and recorders they point into are destroyed.
  ~Network() {
    for (Link* l : tapped_) l->set_tap({});
  }

  EventScheduler& sched() { return sched_; }
  ForwardingNode& router() { return router_; }

  // --- sharded parallel core (net/shard.h) --------------------------------
  //
  // Call before building the topology. Every region added afterwards gets
  // its own EventScheduler (one logical shard per region); hosts attached
  // directly to the router stay on the control strand (shard 0). Links
  // whose sink is the core router become boundary links: they feed the
  // cross-shard mailbox bus, and the minimum of their propagation delays
  // is the conservative lookahead (so it must stay > 0).
  void enable_sharding();
  bool sharded() const { return sharding_; }
  ShardBus& shard_bus() { return bus_; }
  // Schedulers of shards 1..R in region order (the ShardRunner input).
  std::vector<EventScheduler*> shard_scheds();
  Duration shard_lookahead() const { return boundary_min_prop_; }

  // Events retired across the control strand and every shard (equals
  // sched().events_processed() on a legacy Network).
  uint64_t events_processed_total() const {
    uint64_t total = sched_.events_processed();
    for (const auto& s : shard_scheds_) total += s->events_processed();
    return total;
  }
  // Deepest event heap across all shards (perf counter).
  uint64_t peak_pending_max() const {
    uint64_t peak = sched_.peak_pending();
    for (const auto& s : shard_scheds_) {
      peak = std::max<uint64_t>(peak, s->peak_pending());
    }
    return peak;
  }

  // A host directly attached to the router.
  HostPorts add_host(const std::string& name,
                     DataRate up = DataRate::gbps(1),
                     DataRate down = DataRate::gbps(1),
                     Duration prop = Duration::millis(2),
                     int64_t queue_bytes = 150 * 1024);

  // A shared access segment (paper Fig 7); attach hosts with
  // add_host_on_segment. Both directions are shaped to `rate`.
  Segment* add_segment(DataRate rate, Duration prop = Duration::millis(2),
                       int64_t queue_bytes = 150 * 1024);
  HostPorts add_host_on_segment(Segment* seg, const std::string& name);

  // A region (cascaded-SFU fleet). `relay_prop` is the one-way region <->
  // core backbone delay; region-to-region latency is the sum of the two
  // regions' relay propagations. Attach hosts (clients and the regional
  // SFU) with add_host_in_region.
  Region* add_region(const std::string& name,
                     DataRate relay_rate = DataRate::gbps(10),
                     Duration relay_prop = Duration::millis(25),
                     int64_t queue_bytes = 8 << 20);
  HostPorts add_host_in_region(Region* reg, const std::string& name,
                               DataRate up = DataRate::gbps(1),
                               DataRate down = DataRate::gbps(1),
                               Duration prop = Duration::millis(2),
                               int64_t queue_bytes = 150 * 1024);

  // Attach a capture to a link (multiple captures per link are fine).
  FlowCapture* capture(Link* link, Duration bucket = Duration::seconds(1));

  // Attach a packet-trace recorder to a link: the simulated `tcpdump -i
  // <link> -s <snaplen>`. Coexists with FlowCaptures on the same link
  // via the shared fanout.
  TraceRecorder* record(Link* link, uint32_t snaplen = kPcapDefaultSnaplen);

  // Sum of delivered packets over every link in the topology; feeds the
  // per-run perf counters (perf.h) in BenchReport's timing line.
  int64_t total_delivered_packets() const {
    int64_t total = 0;
    for (const auto& l : links_) total += l->delivered_packets();
    return total;
  }

  // True while `link` has a tap installed by capture()/record().
  bool link_is_tapped(const Link* link) const {
    for (const Link* l : tapped_) {
      if (l == link) return true;
    }
    return false;
  }

  // Re-shape a link at an absolute simulation time (the tc command).
  void shape_at(Link* link, TimePoint at, DataRate rate) {
    sched_.schedule_at(at, [link, rate] { link->set_rate(rate); });
  }

  // Simulation self-checks over every link this topology created plus the
  // scheduler clock. check() lists violations; enforce() also prints them
  // and asserts in debug builds. Scenarios call enforce() after run_until
  // so every test exercises the invariants.
  std::vector<std::string> check_invariants() const { return checker_.check(); }
  int enforce_invariants() const { return checker_.enforce(); }

 private:
  TapFanout* fanout_for(Link* link);
  // The scheduler that owns a region's topology (its own shard scheduler
  // when sharded, the global one otherwise).
  EventScheduler* region_owner_sched(Region* reg) {
    return reg->sched != nullptr ? reg->sched : &sched_;
  }

  EventScheduler sched_;
  bool sharding_ = false;
  ShardBus bus_;
  std::vector<std::unique_ptr<EventScheduler>> shard_scheds_;
  Duration boundary_min_prop_ = Duration::infinite();
  SimInvariantChecker checker_;
  ForwardingNode router_{"router"};
  NodeId next_id_ = 1;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<ForwardingNode>> switches_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<std::unique_ptr<FlowCapture>> captures_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  std::vector<std::unique_ptr<TapFanout>> fanouts_;
  std::vector<Link*> tapped_;  // parallel to fanouts_
};

}  // namespace vca
