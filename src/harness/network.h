// Topology builder: the laboratory network of §2.2 and Fig 7.
//
// Hosts hang off a router through a pair of access links (the uplink is
// where `tc` shaping happens in the paper); competition experiments put
// two hosts behind a switch that shares one shaped link pair.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/invariants.h"
#include "net/link.h"
#include "net/node.h"
#include "stats/capture.h"
#include "trace/recorder.h"

namespace vca {

class Network {
 public:
  struct HostPorts {
    Host* host = nullptr;
    Link* up = nullptr;    // host -> router (shaped for uplink experiments)
    Link* down = nullptr;  // router -> host
  };

  struct Segment {
    ForwardingNode* sw = nullptr;
    Link* shared_up = nullptr;    // switch -> router (the shared bottleneck)
    Link* shared_down = nullptr;  // router -> switch
  };

  // A geographic region for cascaded-SFU fleets: a regional aggregation
  // node whose hosts reach the rest of the world through a pair of
  // wide-area relay links (where inter-region propagation delay and
  // relay-link faults live). Intra-region traffic never touches them.
  struct Region {
    std::string name;
    ForwardingNode* sw = nullptr;
    Link* relay_up = nullptr;    // region -> core (inter-SFU direction out)
    Link* relay_down = nullptr;  // core -> region
    DataRate relay_rate;
  };

  Network() { checker_.watch(&sched_); }

  // Captures and recorders hand `this`-capturing taps to links (see the
  // ownership contract in stats/capture.h). Detach every tap before the
  // captures, fanouts, and recorders they point into are destroyed.
  ~Network() {
    for (Link* l : tapped_) l->set_tap({});
  }

  EventScheduler& sched() { return sched_; }
  ForwardingNode& router() { return router_; }

  // A host directly attached to the router.
  HostPorts add_host(const std::string& name,
                     DataRate up = DataRate::gbps(1),
                     DataRate down = DataRate::gbps(1),
                     Duration prop = Duration::millis(2),
                     int64_t queue_bytes = 150 * 1024);

  // A shared access segment (paper Fig 7); attach hosts with
  // add_host_on_segment. Both directions are shaped to `rate`.
  Segment* add_segment(DataRate rate, Duration prop = Duration::millis(2),
                       int64_t queue_bytes = 150 * 1024);
  HostPorts add_host_on_segment(Segment* seg, const std::string& name);

  // A region (cascaded-SFU fleet). `relay_prop` is the one-way region <->
  // core backbone delay; region-to-region latency is the sum of the two
  // regions' relay propagations. Attach hosts (clients and the regional
  // SFU) with add_host_in_region.
  Region* add_region(const std::string& name,
                     DataRate relay_rate = DataRate::gbps(10),
                     Duration relay_prop = Duration::millis(25),
                     int64_t queue_bytes = 8 << 20);
  HostPorts add_host_in_region(Region* reg, const std::string& name,
                               DataRate up = DataRate::gbps(1),
                               DataRate down = DataRate::gbps(1),
                               Duration prop = Duration::millis(2),
                               int64_t queue_bytes = 150 * 1024);

  // Attach a capture to a link (multiple captures per link are fine).
  FlowCapture* capture(Link* link, Duration bucket = Duration::seconds(1));

  // Attach a packet-trace recorder to a link: the simulated `tcpdump -i
  // <link> -s <snaplen>`. Coexists with FlowCaptures on the same link
  // via the shared fanout.
  TraceRecorder* record(Link* link, uint32_t snaplen = kPcapDefaultSnaplen);

  // Sum of delivered packets over every link in the topology; feeds the
  // per-run perf counters (perf.h) in BenchReport's timing line.
  int64_t total_delivered_packets() const {
    int64_t total = 0;
    for (const auto& l : links_) total += l->delivered_packets();
    return total;
  }

  // True while `link` has a tap installed by capture()/record().
  bool link_is_tapped(const Link* link) const {
    for (const Link* l : tapped_) {
      if (l == link) return true;
    }
    return false;
  }

  // Re-shape a link at an absolute simulation time (the tc command).
  void shape_at(Link* link, TimePoint at, DataRate rate) {
    sched_.schedule_at(at, [link, rate] { link->set_rate(rate); });
  }

  // Simulation self-checks over every link this topology created plus the
  // scheduler clock. check() lists violations; enforce() also prints them
  // and asserts in debug builds. Scenarios call enforce() after run_until
  // so every test exercises the invariants.
  std::vector<std::string> check_invariants() const { return checker_.check(); }
  int enforce_invariants() const { return checker_.enforce(); }

 private:
  TapFanout* fanout_for(Link* link);

  EventScheduler sched_;
  SimInvariantChecker checker_;
  ForwardingNode router_{"router"};
  NodeId next_id_ = 1;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<ForwardingNode>> switches_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<std::unique_ptr<FlowCapture>> captures_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  std::vector<std::unique_ptr<TapFanout>> fanouts_;
  std::vector<Link*> tapped_;  // parallel to fanouts_
};

}  // namespace vca
