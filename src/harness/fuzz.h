// Seed-driven scenario fuzzer (ROADMAP item 5): expands one 64-bit seed
// into a fully deterministic random scenario — topology (two-party or
// N-party SFU call with join/leave churn, or a multi-region cascaded
// SFU fleet carrying a 10-50-party conference), VCA profile, link
// shapes, competing flows, and a randomized FaultPlan — then runs it
// under an
// oracle layer that flags invariant violations, silent liveness wedges,
// unbounded recovery, reconnect storms, insane statistics, and event
// storms. A delta-debugging shrinker minimizes failing scenarios to the
// smallest reproducer and prints the exact replay command.
//
// Determinism contract: every scenario field is an integer (ms / kbps /
// per-mille / counts), so to_spec() round-trips exactly through
// from_spec() and a replayed spec is bit-for-bit the generated scenario.
// fuzz_scenario_from_seed(s) consumes randomness only from Rng streams
// forked off `s`, and run_fuzz_scenario builds a fresh share-nothing
// simulation universe per call — the same contract the sweep engine
// (sweep.h) relies on for byte-identical results at any --jobs count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vca {

// One participant's access links plus its churn window. Client 0 is the
// observed client (the paper's C1) and client 1 the far party; both are
// present for the whole call. Clients 2+ may join late and leave early
// (join_ms/leave_ms nonzero), the Chang et al. churn pattern.
struct FuzzClient {
  int64_t up_kbps = 0;
  int64_t down_kbps = 0;
  int prop_ms = 2;
  int queue_kb = 150;
  int64_t join_ms = 0;   // 0 = in the call from t=0
  int64_t leave_ms = 0;  // 0 = stays until the end
  int region = 0;        // cascaded-fleet region (< FuzzScenario::regions)
};

enum class FuzzFaultKind {
  kOutage,       // rate -> 0 window
  kFlap,         // a=cycles, b=down_ms, c=up_ms (start_ms = first down)
  kBurstLoss,    // a=p_good_to_bad_pm, b=p_bad_to_good_pm, c=loss_bad_pm
  kReorder,      // a=prob_pm, b=detour_ms
  kDuplicate,    // a=prob_pm
  kShape,        // a=rate_kbps applied at start_ms (length unused)
  kSfuBlackout,  // server offline + its access links dark for the window
  kRelayOutage,  // cascaded fleets only: one region's inter-SFU relay
                 // link pair dark for the window (a = region index)
};

struct FuzzFault {
  FuzzFaultKind kind = FuzzFaultKind::kOutage;
  int target_client = 0;  // -1 = SFU/relay infrastructure, not a client
  bool uplink = true;     // direction for client targets; SFU hits both
  int64_t start_ms = 0;
  int64_t length_ms = 0;
  // Kind-specific (see FuzzFaultKind). On a cascaded fleet (regions > 1)
  // every infrastructure fault (target_client == -1) reads `a` as the
  // region index it strikes; single-SFU scenarios ignore it.
  int64_t a = 0, b = 0, c = 0;
};

enum class FuzzCompetitor { kNone, kBulkUp, kBulkDown, kNetflix, kYoutube };

struct FuzzScenario {
  uint64_t seed = 0;
  std::string profile = "meet";
  bool speaker = false;  // speaker view pinning client 0 (else gallery)
  int64_t duration_ms = 60000;
  // 1 = the classic single-SFU call. >1 = a cascaded geo-sharded fleet
  // (one SfuServer per region, Conference semantics): clients attach by
  // FuzzClient::region and 10-50-party rosters with churn are in play.
  int regions = 1;
  std::vector<FuzzClient> clients;  // size >= 2
  std::vector<FuzzFault> faults;
  FuzzCompetitor competitor = FuzzCompetitor::kNone;
  int64_t competitor_start_ms = 0;
  int64_t competitor_len_ms = 0;
  // Deliberate bug for shrinker/oracle validation: an unmatched rate->0
  // action on client 0's uplink inside the quiet tail. The liveness
  // oracle must flag it and the shrinker must strip everything else.
  bool inject_wedge = false;

  // Canonical single-token serialization (';'-separated key=value list,
  // no spaces); round-trips exactly. This is the corpus/replay format.
  std::string to_spec() const;
  static std::optional<FuzzScenario> from_spec(const std::string& spec);
};

// Expand a seed into a bounded random scenario. Pure function of `seed`.
FuzzScenario fuzz_scenario_from_seed(uint64_t seed);

// One oracle violation. Categories:
//   "invariant"       SimInvariantChecker found broken link/clock state
//   "outage-silence"  traffic crossed a link inside a composed outage
//   "liveness-wedge"  client 0 silently dead at end of run (no media and
//                     no disconnected/degraded report to explain it)
//   "ttr-bound"       fault-era disconnect not recovered within bound of
//                     the last connectivity restore
//   "reconnect-storm" reconnect count out of proportion to the fault load
//   "stuck-degraded"  audio-only long after the last loss fault cleared
//   "stat-sanity"     NaN / negative / absurd end-of-run statistics
//   "event-storm"     per-virtual-second event budget exhausted
struct FuzzFailure {
  std::string category;
  std::string detail;
};

struct FuzzResult {
  uint64_t seed = 0;
  std::string spec;
  std::vector<FuzzFailure> failures;
  uint64_t sim_events = 0;
  int reconnects = 0;
  int invariant_violations = 0;
  bool ok() const { return failures.empty(); }
};

struct FuzzRunOptions {
  // Virtual-time watchdog: the run is driven in 1 s virtual slices and
  // aborted (category "event-storm") if a slice dispatches more than this
  // many events. Catches both runaway schedule storms and zero-delay
  // self-rescheduling loops that would otherwise hang run_until forever.
  uint64_t event_budget_per_virtual_sec = 2'000'000;
  // Feed invariant violations into the process-wide counter BenchReport
  // surfaces (sweep.h). Shrinking disables this: re-running a known-bad
  // scenario dozens of times should not multiply the reported count.
  bool count_invariants_globally = true;
  // Sharded parallel core for cascaded fleets (regions > 1): 0 = legacy
  // single-scheduler engine; >= 1 = one logical shard per region driven
  // by this many worker threads. The slice event budget is shared across
  // the control strand and every shard, so the event-storm oracle keeps
  // its per-virtual-second meaning — and its verdict — at any shard
  // count. Single-SFU scenarios ignore this (nothing to partition).
  int shards = 0;
};

FuzzResult run_fuzz_scenario(const FuzzScenario& sc,
                             const FuzzRunOptions& opt = {});

// Delta-debugging shrinker: structural simplifications (drop competitor,
// drop churn, drop extra participants, shorten the call) plus ddmin over
// the fault list, accepting a candidate only if it still fails with the
// same oracle category. Returns nullopt if `sc` does not fail at all.
struct ShrinkResult {
  FuzzScenario minimal;
  std::string category;  // failure category the minimal scenario preserves
  std::string detail;    // its failure detail
  int runs = 0;          // scenario executions spent shrinking
};
std::optional<ShrinkResult> shrink_failure(const FuzzScenario& sc,
                                           const FuzzRunOptions& opt = {});

}  // namespace vca
