// Experiment runners: one function per experiment family in the paper.
// The bench binaries sweep these and print the paper's tables/series.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/timeseries.h"
#include "core/units.h"
#include "stats/ttr.h"
#include "stats/webrtc_stats.h"
#include "trace/pcap.h"
#include "vca/layout.h"

namespace vca {

// ---------------------------------------------------------------------------
// §3: two-party call under static shaping.
// ---------------------------------------------------------------------------

struct FeedQuality {
  double median_fps = 0.0;
  double median_qp = 0.0;
  double median_width = 0.0;
  double freeze_ratio = 0.0;
  int fir_upstream = 0;  // FIRs triggered by this publisher's uplink stream
};

struct TwoPartyConfig {
  std::string profile = "meet";
  uint64_t seed = 1;
  DataRate c1_up = DataRate::gbps(1);
  DataRate c1_down = DataRate::gbps(1);
  Duration duration = Duration::seconds(150);  // the paper's 2.5-minute calls
  Duration measure_from = Duration::seconds(30);
  Duration bucket = Duration::seconds(1);
  // Path impairments on C1's access links (the paper's §8 future work:
  // "other network factors such as latency, packet loss, and jitter").
  double c1_loss = 0.0;
  Duration c1_extra_latency = Duration::zero();
  Duration c1_jitter = Duration::zero();
  // Packet-trace capture: the simulated `tcpdump` on C1's access links.
  // Records land in TwoPartyResult; pcap_path (when set) additionally
  // writes the downlink trace to a libpcap file.
  bool capture_traces = false;
  uint32_t trace_snaplen = kPcapDefaultSnaplen;
  std::string pcap_path;
};

struct TwoPartyResult {
  double c1_up_mbps = 0.0;    // mean utilization over the measure window
  double c1_down_mbps = 0.0;
  TimeSeries c1_up_series;
  TimeSeries c1_down_series;
  FeedQuality c1_received;    // the stream C1 watches (C2's video)
  FeedQuality c2_received;    // the stream C2 watches (C1's video)
  // Populated when cfg.capture_traces: header-level traces of C1's
  // access links plus the getStats()-style ground truth for the stream
  // C1 watches, so offline estimators can be validated blind.
  std::vector<PacketRecord> c1_down_records;
  std::vector<PacketRecord> c1_up_records;
  std::vector<SecondStats> c1_recv_seconds;
};

TwoPartyResult run_two_party(const TwoPartyConfig& cfg);

// ---------------------------------------------------------------------------
// §4: transient capacity disruption.
// ---------------------------------------------------------------------------

struct DisruptionConfig {
  std::string profile = "meet";
  uint64_t seed = 1;
  bool uplink = true;  // disrupt C1's uplink (else its downlink)
  DataRate drop_to = DataRate::kbps(250);
  Duration start = Duration::seconds(60);
  Duration length = Duration::seconds(30);
  Duration total = Duration::seconds(300);
};

struct DisruptionResult {
  TimeSeries disrupted_series;  // C1 bitrate in the disrupted direction
  TimeSeries c2_up_series;      // the far client's uplink (Fig 6)
  TtrResult ttr;
};

DisruptionResult run_disruption(const DisruptionConfig& cfg);

// ---------------------------------------------------------------------------
// Fault injection: a hard mid-call outage (rate -> 0, not merely shaped
// down) or an SFU blackout, driven by a FaultPlan. Measures how each
// profile's resilience machinery detects the dead path, reconnects once
// service returns, and how long the media rate takes to recover.
// ---------------------------------------------------------------------------

enum class OutageTarget {
  kUplink,    // C1's access uplink goes dark
  kDownlink,  // C1's access downlink goes dark
  kBoth,      // both directions (modem reboot)
  kSfu,       // the server blacks out for everyone
};

struct OutageConfig {
  std::string profile = "meet";
  uint64_t seed = 1;
  OutageTarget target = OutageTarget::kUplink;
  Duration start = Duration::seconds(60);
  Duration length = Duration::seconds(10);
  Duration total = Duration::seconds(180);
};

struct OutageResult {
  TimeSeries c1_up_series;
  TimeSeries c1_down_series;
  TtrResult ttr;  // recovery of the outage-affected direction
  // Outage onset -> the client's watchdog declaring the path dead.
  std::optional<Duration> detect_delay;
  // Service restoration -> the client's first successful reconnect.
  std::optional<Duration> reconnect_delay;
  int reconnects = 0;
  int degrade_events = 0;  // audio-only degradations observed
  std::vector<std::string> invariant_violations;  // empty == healthy sim
};

OutageResult run_outage(const OutageConfig& cfg);

// ---------------------------------------------------------------------------
// §5: competition on a shared bottleneck (paper Fig 7 topology).
// ---------------------------------------------------------------------------

enum class CompetitorKind { kVca, kIperfUp, kIperfDown, kNetflix, kYoutube };

struct CompetitionConfig {
  std::string incumbent = "zoom";
  CompetitorKind competitor = CompetitorKind::kVca;
  std::string competitor_profile = "meet";  // used when competitor == kVca
  DataRate link = DataRate::kbps(500);      // symmetric segment capacity
  uint64_t seed = 1;
  Duration competitor_start = Duration::seconds(30);
  Duration competitor_len = Duration::seconds(120);
  Duration total = Duration::seconds(180);
  Duration bucket = Duration::seconds(1);
};

struct CompetitionResult {
  // Mean rates over the competition window, and shares of link capacity.
  double incumbent_up_mbps = 0.0, incumbent_down_mbps = 0.0;
  double competitor_up_mbps = 0.0, competitor_down_mbps = 0.0;
  double incumbent_up_share = 0.0, incumbent_down_share = 0.0;
  double competitor_up_share = 0.0, competitor_down_share = 0.0;
  TimeSeries incumbent_up_series, incumbent_down_series;
  TimeSeries competitor_up_series, competitor_down_series;
  // Fig 14b.
  int competitor_connections = 0;
  int competitor_max_parallel = 0;
};

CompetitionResult run_competition(const CompetitionConfig& cfg);

// ---------------------------------------------------------------------------
// §6: call modalities.
// ---------------------------------------------------------------------------

struct MultipartyConfig {
  std::string profile = "meet";
  int participants = 4;
  ViewMode mode = ViewMode::kGallery;
  uint64_t seed = 1;
  Duration duration = Duration::seconds(120);
  Duration measure_from = Duration::seconds(40);
};

struct MultipartyResult {
  double c1_up_mbps = 0.0;    // client 1 = the observed / pinned client
  double c1_down_mbps = 0.0;
};

MultipartyResult run_multiparty(const MultipartyConfig& cfg);

// ---------------------------------------------------------------------------
// City-scale cascaded-SFU conference (Chang et al.'s deployment scale):
// one SFU per region, clients sharded round-robin across regions, media
// crossing each inter-SFU relay link exactly once per (publisher, peer
// region). Supports join/leave churn and region-scoped fault injection.
// ---------------------------------------------------------------------------

struct ConferenceConfig {
  std::string profile = "webex";
  int participants = 16;
  int regions = 2;
  ViewMode mode = ViewMode::kGallery;
  uint64_t seed = 1;
  Duration duration = Duration::seconds(60);
  Duration measure_from = Duration::seconds(20);
  // Client access links (finite: the per-client downlink is what caps
  // receive bitrate as the gallery grows).
  DataRate client_up = DataRate::mbps(10);
  DataRate client_down = DataRate::mbps(25);
  // Inter-SFU relay links.
  DataRate relay_rate = DataRate::gbps(2);
  Duration relay_prop = Duration::millis(25);
  // Churn: the last `late_joiners` clients join staggered after
  // `churn_start`; `early_leavers` clients (from the middle of the
  // roster) leave staggered after `churn_start`.
  int late_joiners = 0;
  int early_leavers = 0;
  Duration churn_start = Duration::seconds(25);
  Duration churn_step = Duration::seconds(2);
  // Region-scoped faults (negative region index = disabled).
  int relay_outage_region = -1;   // blackout that region's relay links
  int sfu_blackout_region = -1;   // that region's SFU process goes dark
  Duration fault_start = Duration::seconds(30);
  Duration fault_length = Duration::seconds(10);
  // Packet-trace capture of the observed client's downlink (the corpus
  // generator's vantage point), as in TwoPartyConfig.
  bool capture_traces = false;
  uint32_t trace_snaplen = kPcapDefaultSnaplen;
  std::string pcap_path;
  // Sharded parallel core (net/shard.h). 0 = legacy single-scheduler
  // engine (bit-exact with every pre-sharding release). >= 1 = partition
  // the simulation into one logical shard per region plus a control
  // strand, executed by `shards` worker threads. The partition is fixed
  // by the topology, so results are byte-identical at ANY shards >= 1;
  // only wall-clock changes with the thread count.
  int shards = 0;
};

struct ConferenceRegionStats {
  std::string name;
  int clients = 0;
  int64_t forwarded_packets = 0;   // SFU-originated, incl. retired streams
  double forwarded_pps = 0.0;      // per wall second of the whole run
  int peak_subscriptions = 0;      // local fanout degree high-water mark
  int relay_out_streams = 0;       // live relay egresses at end of run
  double relay_up_mbps = 0.0;      // mean over the measure window
  double relay_down_mbps = 0.0;
  double relay_up_utilization = 0.0;  // of relay capacity
};

struct ConferenceResult {
  // The observed client (roster index 0).
  double c1_up_mbps = 0.0;
  double c1_down_mbps = 0.0;
  // Across all clients active during the measure window.
  double mean_client_down_mbps = 0.0;
  double mean_client_up_mbps = 0.0;
  // Per-region means of the same (region-scoped degradation shows here).
  std::vector<double> region_mean_down_mbps;
  std::vector<ConferenceRegionStats> regions;
  int64_t total_forwarded_packets = 0;
  int active_at_end = 0;
  int64_t forwards_to_departed = 0;
  std::vector<std::string> invariant_violations;  // empty == healthy sim
  // Populated when cfg.capture_traces (cf. TwoPartyResult).
  std::vector<PacketRecord> c1_down_records;
  std::vector<SecondStats> c1_recv_seconds;
};

ConferenceResult run_conference(const ConferenceConfig& cfg);

// Queue sizing for a shaped link: ~300 ms of buffering, with floors and
// ceilings, roughly what a CPE + tc qdisc gives.
int64_t queue_bytes_for(DataRate rate);

}  // namespace vca
