#include "harness/network.h"

namespace vca {

void Network::enable_sharding() { sharding_ = true; }

std::vector<EventScheduler*> Network::shard_scheds() {
  std::vector<EventScheduler*> out;
  out.reserve(shard_scheds_.size());
  for (const auto& s : shard_scheds_) out.push_back(s.get());
  return out;
}

Network::HostPorts Network::add_host(const std::string& name, DataRate up,
                                     DataRate down, Duration prop,
                                     int64_t queue_bytes) {
  auto host = std::make_unique<Host>(next_id_++, name);
  Link::Config cfg;
  cfg.propagation = prop;
  cfg.queue_bytes = queue_bytes;

  cfg.rate = up;
  auto up_link = std::make_unique<Link>(&sched_, name + "-up", cfg);
  cfg.rate = down;
  auto down_link = std::make_unique<Link>(&sched_, name + "-down", cfg);

  host->set_uplink(up_link.get());
  up_link->set_sink(&router_);
  router_.add_route(host->id(), down_link.get());
  down_link->set_sink(host.get());

  HostPorts ports{host.get(), up_link.get(), down_link.get()};
  checker_.watch(up_link.get());
  checker_.watch(down_link.get());
  hosts_.push_back(std::move(host));
  links_.push_back(std::move(up_link));
  links_.push_back(std::move(down_link));
  return ports;
}

Network::Segment* Network::add_segment(DataRate rate, Duration prop,
                                       int64_t queue_bytes) {
  auto seg = std::make_unique<Segment>();
  auto sw = std::make_unique<ForwardingNode>("switch");

  Link::Config cfg;
  cfg.rate = rate;
  cfg.propagation = prop;
  cfg.queue_bytes = queue_bytes;
  auto up = std::make_unique<Link>(&sched_, "segment-up", cfg);
  auto down = std::make_unique<Link>(&sched_, "segment-down", cfg);

  sw->set_default_route(up.get());
  up->set_sink(&router_);
  down->set_sink(sw.get());

  seg->sw = sw.get();
  seg->shared_up = up.get();
  seg->shared_down = down.get();

  checker_.watch(up.get());
  checker_.watch(down.get());
  switches_.push_back(std::move(sw));
  links_.push_back(std::move(up));
  links_.push_back(std::move(down));
  segments_.push_back(std::move(seg));
  return segments_.back().get();
}

Network::HostPorts Network::add_host_on_segment(Segment* seg,
                                                const std::string& name) {
  auto host = std::make_unique<Host>(next_id_++, name);
  // Host <-> switch links are fast LAN links; the shared segment links
  // carry the shaping.
  Link::Config cfg;
  cfg.rate = DataRate::gbps(1);
  cfg.propagation = Duration::micros(200);
  cfg.queue_bytes = 1 << 20;

  auto up_link = std::make_unique<Link>(&sched_, name + "-lan-up", cfg);
  auto down_link = std::make_unique<Link>(&sched_, name + "-lan-down", cfg);

  host->set_uplink(up_link.get());
  up_link->set_sink(seg->sw);
  seg->sw->add_route(host->id(), down_link.get());
  down_link->set_sink(host.get());
  // Router reaches this host through the shared downlink.
  router_.add_route(host->id(), seg->shared_down);

  HostPorts ports{host.get(), up_link.get(), down_link.get()};
  checker_.watch(up_link.get());
  checker_.watch(down_link.get());
  hosts_.push_back(std::move(host));
  links_.push_back(std::move(up_link));
  links_.push_back(std::move(down_link));
  return ports;
}

Network::Region* Network::add_region(const std::string& name,
                                     DataRate relay_rate, Duration relay_prop,
                                     int64_t queue_bytes) {
  auto reg = std::make_unique<Region>();
  reg->name = name;
  reg->relay_rate = relay_rate;
  auto sw = std::make_unique<ForwardingNode>("region-" + name);

  // Sharded core: the region gets its own scheduler (one logical shard
  // per region) and its relay uplink becomes a boundary link — the only
  // place a shard-owned event can emit a packet toward a foreign shard,
  // so its propagation delay lower-bounds the conservative lookahead.
  // (Control-strand boundary links — core-host and segment uplinks —
  // never post mid-window: the control strand only runs at barriers, and
  // the barrier horizon never passes its next pending event.)
  EventScheduler* owner = &sched_;
  if (sharding_) {
    shard_scheds_.push_back(std::make_unique<EventScheduler>());
    owner = shard_scheds_.back().get();
    checker_.watch(owner);
    reg->sched = owner;
    reg->shard = bus_.add_shard();
    boundary_min_prop_ = std::min(boundary_min_prop_, relay_prop);
  }

  Link::Config cfg;
  cfg.rate = relay_rate;
  cfg.propagation = relay_prop;
  cfg.queue_bytes = queue_bytes;
  auto up = std::make_unique<Link>(owner, name + "-relay-up", cfg);
  auto down = std::make_unique<Link>(owner, name + "-relay-down", cfg);

  // Traffic leaving the region rides the relay uplink to the core; the
  // regional switch keeps per-host routes so intra-region traffic turns
  // around locally without paying the backbone delay.
  sw->set_default_route(up.get());
  up->set_sink(&router_);
  down->set_sink(sw.get());
  if (sharding_) up->set_cross_shard(&bus_, reg->shard);

  reg->sw = sw.get();
  reg->relay_up = up.get();
  reg->relay_down = down.get();

  checker_.watch(up.get());
  checker_.watch(down.get());
  switches_.push_back(std::move(sw));
  links_.push_back(std::move(up));
  links_.push_back(std::move(down));
  regions_.push_back(std::move(reg));
  return regions_.back().get();
}

Network::HostPorts Network::add_host_in_region(Region* reg,
                                               const std::string& name,
                                               DataRate up, DataRate down,
                                               Duration prop,
                                               int64_t queue_bytes) {
  auto host = std::make_unique<Host>(next_id_++, name);
  EventScheduler* owner = region_owner_sched(reg);
  Link::Config cfg;
  cfg.propagation = prop;
  cfg.queue_bytes = queue_bytes;

  cfg.rate = up;
  auto up_link = std::make_unique<Link>(owner, name + "-up", cfg);
  cfg.rate = down;
  auto down_link = std::make_unique<Link>(owner, name + "-down", cfg);

  host->set_uplink(up_link.get());
  up_link->set_sink(reg->sw);
  reg->sw->add_route(host->id(), down_link.get());
  down_link->set_sink(host.get());
  // The core reaches this host through the region's relay downlink.
  router_.add_route(host->id(), reg->relay_down);
  // Boundary links look the destination shard up by packet dst.
  if (sharding_) bus_.set_node_shard(host->id(), reg->shard);

  HostPorts ports{host.get(), up_link.get(), down_link.get()};
  checker_.watch(up_link.get());
  checker_.watch(down_link.get());
  hosts_.push_back(std::move(host));
  links_.push_back(std::move(up_link));
  links_.push_back(std::move(down_link));
  return ports;
}

TapFanout* Network::fanout_for(Link* link) {
  for (size_t i = 0; i < tapped_.size(); ++i) {
    if (tapped_[i] == link) return fanouts_[i].get();
  }
  auto fan = std::make_unique<TapFanout>();
  TapFanout* raw = fan.get();
  link->set_tap(raw->tap());
  fanouts_.push_back(std::move(fan));
  tapped_.push_back(link);
  return raw;
}

FlowCapture* Network::capture(Link* link, Duration bucket) {
  auto cap = std::make_unique<FlowCapture>(bucket);
  FlowCapture* raw = cap.get();
  captures_.push_back(std::move(cap));
  fanout_for(link)->add(raw->tap());
  return raw;
}

TraceRecorder* Network::record(Link* link, uint32_t snaplen) {
  auto rec = std::make_unique<TraceRecorder>(snaplen);
  TraceRecorder* raw = rec.get();
  recorders_.push_back(std::move(rec));
  fanout_for(link)->add(raw->tap());
  return raw;
}

}  // namespace vca
