// Deterministic parallel sweep engine for the bench suite.
//
// Every figure/table in the paper is a sweep: a capacity grid x profile x
// repetition product of *independent* simulations. Each job gets its own
// EventScheduler/Network/Call universe, so jobs are share-nothing by
// construction and can run on a fixed-size thread pool; results are
// collected into submission-order slots, which makes the aggregated
// tables and JSON byte-identical to a serial run regardless of --jobs.
//
// Thread-safety audit (everything reachable from one simulation job):
//  * EventScheduler, Network, Link, Host, Call, SfuServer, VcaClient,
//    FlowCapture, FaultPlan: owned per-job, never shared across jobs.
//  * Rng: one root per Call, forked per component; no global engine.
//  * Profile registry (vca_profile/all_profile_names): pure functions
//    returning fresh values; the only statics in src/ are constexpr.
//  * SimInvariantChecker: per-Network; enforce() writes to stderr only on
//    violation (already a failed run) and is the sole print in src/.
//  * Determinism requires more than no-data-races: containers iterated
//    during a sim must not be keyed/ordered by pointers, since heap
//    layout varies across thread schedules (SfuServer::tick groups
//    viewers in insertion order for exactly this reason).
//  * Cross-thread state introduced here: one atomic sim-event counter
//    (note_sim_events), fed by the scenario runners for events/sec
//    accounting. Workers must never write to stdout; all rendering
//    happens on the aggregating thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/stats_math.h"

namespace vca {

// Command-line options shared by every bench binary and the CLI:
//   --jobs N     worker threads across sweep cells (default: hw concurrency)
//   --shards N   worker threads INSIDE each simulation (sharded core;
//                0 = legacy single-scheduler engine)
//   --json PATH  machine-readable per-cell means/CIs + timing
struct SweepOptions {
  int jobs = 0;  // <= 0 means default_jobs()
  int shards = 0;  // 0 = unsharded engine; >= 1 = sharded, N threads/sim
  std::string json_path;
};

// Extracts --jobs/--json from argv; unrelated flags are left for the
// caller's own parser.
SweepOptions parse_sweep_args(int argc, char** argv);

int default_jobs();  // hardware_concurrency, at least 1

// Simulator events retired by scenario runs in this process (atomic;
// incremented by the run_* scenario runners from worker threads).
void note_sim_events(uint64_t n);
uint64_t sim_events_total();

// Invariant violations observed by SimInvariantChecker::enforce() across
// scenario runs in this process (atomic). BenchReport::finish() surfaces
// the window-delta in JSON and returns false when it is nonzero, so
// release builds (NDEBUG: assert is a no-op) still fail loudly instead of
// silently dropping the count.
void note_invariant_violations(uint64_t n);
uint64_t invariant_violations_total();

class Sweep {
 public:
  // Run fn(job) for every job on `n_threads` workers (<= 0 means
  // default_jobs()); returns results in submission order. Exceptions
  // propagate: the first throwing job (by submission index) rethrows
  // after the pool drains.
  template <typename Job, typename Fn>
  static auto run(const std::vector<Job>& jobs, Fn fn, int n_threads = 0)
      -> std::vector<std::invoke_result_t<Fn&, const Job&>> {
    using R = std::invoke_result_t<Fn&, const Job&>;
    std::vector<R> results(jobs.size());
    run_indexed(jobs.size(), n_threads,
                [&](size_t i) { results[i] = fn(jobs[i]); });
    return results;
  }

 private:
  static void run_indexed(size_t n, int n_threads,
                          const std::function<void(size_t)>& body);
};

// Accumulates the cells a bench binary prints and mirrors them into the
// --json file. Deterministic content (sections/cells) comes first; the
// run-dependent timing block is one final line, so a determinism diff is
// `grep -v '"timing"'`. Schema: see EXPERIMENTS.md.
class BenchReport {
 public:
  BenchReport(std::string bench, SweepOptions opts);

  void begin_section(const std::string& id, const std::string& title);

  using Labels = std::vector<std::pair<std::string, std::string>>;
  using Metrics = std::vector<std::pair<std::string, ConfidenceInterval>>;

  // One grid cell: axis coordinates plus named metrics. Scalars are
  // degenerate CIs (lo == mean == hi) via scalar() below.
  void add_cell(Labels labels, Metrics metrics);

  static ConfidenceInterval scalar(double v) { return {v, v, v}; }

  // Write the JSON file (if --json was given) and a timing note to
  // stderr. Returns false if the file could not be written OR if any
  // invariant violation was recorded since this report was constructed —
  // callers' existing `return report.finish() ? 0 : 1;` pattern turns
  // that into a nonzero process exit.
  bool finish();

 private:
  struct Cell {
    Labels labels;
    Metrics metrics;
  };
  struct Section {
    std::string id;
    std::string title;
    std::vector<Cell> cells;
  };

  std::string bench_;
  SweepOptions opts_;
  std::vector<Section> sections_;
  uint64_t events_at_start_ = 0;
  uint64_t violations_at_start_ = 0;
  uint64_t link_packets_at_start_ = 0;
  uint64_t allocs_at_start_ = 0;
  int64_t wall_start_ns_ = 0;
};

}  // namespace vca
