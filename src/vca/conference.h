// City-scale multiparty conferencing on a cascaded SFU fleet.
//
// Call (call.h) wires N clients to ONE SfuServer — the paper's §6
// laboratory topology, good to ~10 participants. Conference generalizes
// it to the geo-sharded deployments the providers actually run at city
// scale (Chang et al., "Can You See Me Now?"): one SfuServer per region,
// every client attached to its regional SFU, and media crossing between
// regions over inter-SFU relay links exactly once per (publisher, peer
// region) — then fanned out locally by the peer SFU with its own
// per-viewer selection.
//
// On top of the fleet it adds what city-scale calls need and a single
// Call never exercised:
//  * join/leave churn: participants may join late and leave (or time out)
//    mid-call, including while their SFU is blacked out. Every exit path
//    tears the member's subscriptions, publisher legs, relay egresses and
//    remote legs down on all SFUs; note_departed() arms the fleet-wide
//    "no forwarding to departed clients" invariant behind it.
//  * layout-driven subscription sets: a gallery viewer subscribes only to
//    the tiles on its visible page (layout.h visible_tiles), a speaker
//    viewer to the pinned speaker plus the filmstrip. Slots freed by a
//    leaver are backfilled from the join-ordered roster.
//  * relay refcounting: the first viewer of publisher P in region R
//    creates the P->R relay (one egress on P's SFU, one remote leg on
//    R's); the last one to go tears it down.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/scheduler.h"
#include "net/node.h"
#include "vca/client.h"
#include "vca/layout.h"
#include "vca/profile.h"
#include "vca/sfu.h"

namespace vca {

class Conference {
 public:
  struct Config {
    VcaProfile profile;
    ViewMode mode = ViewMode::kGallery;
    int pinned_client = 0;  // roster index everyone pins in speaker mode
    FlowId flow_base = 1000;
    uint64_t seed = 1;
    Duration signaling_tick = Duration::millis(200);
  };

  Conference(EventScheduler* sched, Config cfg);

  // Register a regional SFU (before start()); returns the region index.
  // On a sharded Network pass the region's own scheduler: the SFU and
  // every client of that region then live on the region's shard, while
  // the Conference's signaling/churn timers stay on the control strand.
  // nullptr keeps everything on the constructor scheduler (legacy).
  int add_region(Host* sfu_host, EventScheduler* region_sched = nullptr);

  // Add a participant attached to region `region`. `join_at` in the past
  // (or zero) means present from the start; a finite `leave_at` schedules
  // the member's departure. Flow ids are allocated here, at roster-build
  // time, so churn order never perturbs another member's flows.
  VcaClient* add_client(Host* host, int region,
                        TimePoint join_at = TimePoint::zero(),
                        TimePoint leave_at = TimePoint::infinite());

  void start();
  void stop();
  bool running() const { return running_; }

  // Immediate churn (tests drive these directly; scheduled churn from
  // add_client uses the same paths). Both are idempotent; leave() works
  // while any SFU is offline and while relays are mid-flight.
  void join(VcaClient* client);
  void leave(VcaClient* client);

  VcaClient* client(size_t i) { return members_[i].client.get(); }
  size_t size() const { return members_.size(); }
  int active_count() const;
  bool is_active(VcaClient* client) const;
  SfuServer* sfu(int region) { return sfus_[static_cast<size_t>(region)].get(); }
  int region_count() const { return static_cast<int>(sfus_.size()); }
  int region_of(VcaClient* client) const;
  const VcaProfile& profile() const { return cfg_.profile; }

  // Feeds a viewer currently subscribes to (its visible tiles).
  int subscription_count_for(VcaClient* viewer) const;
  // Live inter-SFU relay streams fleet-wide (one per publisher x peer
  // region with >= 1 viewer there).
  int relay_count() const;

  // Fleet-wide SFU invariants (same contract as
  // Link::append_invariant_violations): forwarding to departed clients,
  // stale subscriptions surviving an exit path.
  void append_invariant_violations(std::vector<std::string>* out) const;
  int64_t forwards_to_departed() const;

  // Sharded core: a peer SFU's keyframe request to a remote publisher is
  // the one direct cross-region call in the fleet. When any region runs
  // on its own scheduler, those requests are queued per viewer region
  // (written only by that region's shard thread) instead of invoked
  // inline; the ShardRunner's barrier hook drains them — region index
  // ascending, FIFO within — which keeps the order independent of the
  // worker-thread count. No-op on a legacy single-scheduler Conference.
  void drain_deferred_keyframes();

 private:
  struct Member {
    std::unique_ptr<VcaClient> client;
    int region = 0;
    int roster_index = 0;
    TimePoint join_at;
    TimePoint leave_at = TimePoint::infinite();
    bool joined = false;
    bool departed = false;
  };

  // One live viewer->publisher subscription.
  struct SubRec {
    VcaClient* viewer = nullptr;
    NodeId origin = kInvalidNode;
    int viewer_region = 0;
    int origin_region = 0;
    FlowId video_flow = 0;
    FlowId audio_flow = 0;
  };

  Member* member_for(VcaClient* client);
  Member* member_for_node(NodeId node);
  void ensure_relay(Member& pub, int viewer_region);
  void release_relay(NodeId origin, int origin_region, int viewer_region);
  void do_subscribe(Member& viewer, Member& pub);
  void do_unsubscribe(size_t rec_index);
  // Re-derive every active viewer's visible set from the roster and diff
  // it against live subscriptions (called on each membership change).
  void recompute_subscriptions();
  bool is_pinned_publisher(const Member& pub) const;
  void signaling();

  EventScheduler* sched_;
  Config cfg_;
  std::vector<std::unique_ptr<SfuServer>> sfus_;
  std::vector<EventScheduler*> region_scheds_;  // parallel to sfus_
  bool defer_keyframes_ = false;  // any region on a foreign scheduler
  struct PendingKeyframe {
    VcaClient* publisher = nullptr;
    int layer = 0;
  };
  std::vector<std::vector<PendingKeyframe>> pending_keyframes_;  // per region
  std::vector<Member> members_;
  std::vector<SubRec> subs_;
  // (publisher origin, viewer region) -> live subscription count / relay
  // flow base. Value-keyed map: deterministic iteration.
  std::map<std::pair<NodeId, int>, int> relay_refs_;
  std::map<std::pair<NodeId, int>, FlowId> relay_flows_;
  FlowId next_flow_;
  bool running_ = false;
};

}  // namespace vca
