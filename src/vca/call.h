// A video conference: N clients plus one SFU, wired together with the
// out-of-band signaling that real VCAs run over their control channels
// (layout-driven resolution requests, Teams' receiver-rate relaying,
// speaker-mode pinning).
#pragma once

#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "net/node.h"
#include "vca/client.h"
#include "vca/layout.h"
#include "vca/profile.h"
#include "vca/sfu.h"

namespace vca {

class Call {
 public:
  struct Config {
    VcaProfile profile;
    ViewMode mode = ViewMode::kGallery;
    int pinned_client = 0;  // who everyone pins in speaker mode
    FlowId flow_base = 1000;
    uint64_t seed = 1;
    Duration signaling_tick = Duration::millis(200);
  };

  Call(EventScheduler* sched, Host* sfu_host, Config cfg);

  // Add a participant (before start()).
  VcaClient* add_client(Host* host);

  void start();
  void stop();
  bool running() const { return running_; }

  VcaClient* client(size_t i) { return clients_[i].get(); }
  size_t size() const { return clients_.size(); }
  SfuServer* sfu() { return sfu_.get(); }
  const VcaProfile& profile() const { return cfg_.profile; }

 private:
  void signaling();

  EventScheduler* sched_;
  Config cfg_;
  std::unique_ptr<SfuServer> sfu_;
  std::vector<std::unique_ptr<VcaClient>> clients_;
  FlowId next_flow_;
  bool running_ = false;
};

}  // namespace vca
