// A VCA client endpoint: encodes and publishes media toward the SFU under
// its profile's congestion controller, and receives/decodes the feeds the
// SFU forwards to it, collecting WebRTC-style statistics per feed.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cc/remb.h"
#include "cc/sender_cc.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "media/encoder.h"
#include "net/node.h"
#include "stats/webrtc_stats.h"
#include "transport/rtp.h"
#include "vca/profile.h"

namespace vca {

// Connection-resilience lifecycle notifications, in call order. The
// outage scenario and tests read these to measure detection and
// reconnect latency.
enum class ResilienceEventKind {
  kMediaTimeout,  // watchdog declared the media path dead
  kReconnected,   // a keepalive echo / positive feedback revived it
  kDegraded,      // sustained loss shed video (audio-only)
  kRestored,      // loss cleared; video re-enabled
};

struct ResilienceEvent {
  TimePoint at;
  ResilienceEventKind kind;
};

class VcaClient {
 public:
  struct Config {
    VcaProfile profile;
    NodeId sfu_node = kInvalidNode;
    // Flow ids used by this client's uplink legs. Layer i media travels on
    // media_flow_base + i; audio on media_flow_base + kAudioFlowOffset.
    FlowId media_flow_base = 100;
    uint64_t seed = 1;
    Duration tick = Duration::millis(100);
  };

  static constexpr FlowId kAudioFlowOffset = 8;
  static constexpr FlowId kKeepaliveFlowOffset = 9;

  VcaClient(EventScheduler* sched, Host* host, Config cfg);

  void start();
  void stop();
  bool running() const { return running_; }

  Host* host() const { return host_; }
  const VcaProfile& profile() const { return cfg_.profile; }
  FlowId layer_flow(int layer) const {
    return cfg_.media_flow_base + static_cast<FlowId>(layer);
  }
  FlowId audio_flow() const { return cfg_.media_flow_base + kAudioFlowOffset; }
  FlowId keepalive_flow() const {
    return cfg_.media_flow_base + kKeepaliveFlowOffset;
  }
  uint32_t layer_ssrc(int layer) const {
    return static_cast<uint32_t>(host_->id()) * 64 + static_cast<uint32_t>(layer);
  }
  uint32_t audio_ssrc() const {
    return static_cast<uint32_t>(host_->id()) * 64 + 32;
  }

  // --- signaling inputs (set by the Call's signaling loop) ---
  void set_encode_max_width(int w) { max_width_ = w; }
  void set_allowed_rate(DataRate r) { allowed_rate_ = r; }  // Teams relay cap
  void set_ultra_low(bool v) { ultra_low_ = v; }
  void set_speaker_boost(double b);  // raises the CC ceiling, see client.cc
  void request_keyframe(int layer);

  DataRate current_target() const { return current_target_; }
  double uplink_loss_ewma() const { return loss_ewma_; }
  int encode_max_width() const { return max_width_; }
  const EncoderSettings* layer_settings(int layer) const;
  SenderCongestionController* controller() { return cc_.get(); }

  // --- subscriber side ---
  struct Feed {
    std::unique_ptr<RtpReceiver> receiver;
    std::unique_ptr<WebRtcStatsCollector> stats;
    NodeId publisher = kInvalidNode;
    FlowId flow = 0;
  };
  // Register an incoming video feed (called by the Call when wiring the
  // SFU's subscriptions). The feed's RTCP goes back to the SFU.
  Feed& add_feed(FlowId flow, uint32_t ssrc, NodeId publisher_node);
  // Drop a feed (churn: its publisher left, or the layout paged it out).
  // Unregisters the flow handler so late packets are silently dropped.
  void remove_feed(FlowId flow);
  const std::vector<std::unique_ptr<Feed>>& feeds() const { return feeds_; }
  ReceiveSideEstimator* downlink_estimator() { return downlink_est_.get(); }

  int64_t sent_media_bytes() const;

  // --- resilience introspection ---
  // Connected = the media path is believed alive (keepalive echoes or
  // positive receive-rate feedback within the profile's media timeout).
  bool connected() const { return connected_; }
  // Audio-only graceful degradation under sustained loss.
  bool audio_only() const { return degraded_; }
  int reconnect_count() const { return reconnect_count_; }
  const std::vector<ResilienceEvent>& resilience_events() const {
    return resilience_events_;
  }

 private:
  void tick();
  void keepalive_tick();
  void go_disconnected(TimePoint now);
  // Evidence the uplink path is alive (echo or media-progress feedback);
  // revives a disconnected client.
  void note_path_alive(TimePoint now);
  void update_degradation(TimePoint now);
  void on_layer_feedback(int layer, const RtcpMeta& fb);

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  Rng rng_;

  std::unique_ptr<SenderCongestionController> cc_;

  struct Layer {
    std::unique_ptr<AdaptiveEncoder> encoder;
    std::unique_ptr<RtpSender> sender;
    bool active = false;
    DataRate last_rx;  // per-stream receive rate from the latest report
  };
  std::vector<Layer> layers_;
  double loss_ewma_ = 0.0;  // aggregate uplink loss across streams

  std::unique_ptr<RtpSender> audio_sender_;
  uint64_t audio_frame_id_ = 0;
  std::function<void()> schedule_audio_;

  std::unique_ptr<ReceiveSideEstimator> downlink_est_;
  std::vector<std::unique_ptr<Feed>> feeds_;
  // Feeds removed mid-run, parked until destruction: their receivers'
  // report timers capture raw `this` pointers. Nothing iterates this.
  std::vector<std::unique_ptr<Feed>> feed_graveyard_;

  int max_width_ = 1280;
  DataRate allowed_rate_ = DataRate::mbps(1000);
  bool ultra_low_ = false;
  double speaker_boost_ = 1.0;
  DataRate current_target_;

  // Per-run draws (the across-experiment variability in the paper's CIs).
  double nominal_scale_ = 1.0;

  // Baseline stall emulation (Teams, §3.2).
  TimePoint stall_until_;
  TimePoint next_stall_ = TimePoint::infinite();

  // --- resilience state ---
  SenderCongestionController::Bounds cc_bounds_;  // kept for reconnect reset
  bool connected_ = true;
  TimePoint last_path_ok_;
  Duration probe_interval_ = Duration::millis(250);
  uint64_t keepalive_id_ = 1;
  bool degraded_ = false;
  TimePoint loss_high_since_ = TimePoint::infinite();
  TimePoint loss_low_since_ = TimePoint::infinite();
  int reconnect_count_ = 0;
  std::vector<ResilienceEvent> resilience_events_;

  bool running_ = false;
};

}  // namespace vca
