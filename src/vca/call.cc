#include "vca/call.h"

#include <algorithm>

namespace vca {

Call::Call(EventScheduler* sched, Host* sfu_host, Config cfg)
    : sched_(sched), cfg_(std::move(cfg)), next_flow_(cfg_.flow_base) {
  SfuServer::Config sc;
  sc.profile = cfg_.profile;
  sfu_ = std::make_unique<SfuServer>(sched_, sfu_host, sc);
}

VcaClient* Call::add_client(Host* host) {
  VcaClient::Config cc;
  cc.profile = cfg_.profile;
  cc.sfu_node = sfu_->host()->id();
  cc.media_flow_base = next_flow_;
  next_flow_ += 16;
  cc.seed = cfg_.seed * 7919 + clients_.size() + 1;
  clients_.push_back(std::make_unique<VcaClient>(sched_, host, cc));
  return clients_.back().get();
}

void Call::start() {
  if (running_) return;
  running_ = true;
  const int n = static_cast<int>(clients_.size());

  for (auto& c : clients_) sfu_->add_publisher(c.get());

  // Subscriptions: each viewer displays `displayed_feeds` publishers
  // (Teams' fixed 2x2 grid shows only four, §6.1).
  for (int v = 0; v < n; ++v) {
    VcaClient* viewer = clients_[static_cast<size_t>(v)].get();
    int budget_feeds = displayed_feeds(cfg_.profile.kind, n, cfg_.mode);
    int used = 0;
    for (int p = 0; p < n && used < budget_feeds; ++p) {
      if (p == v) continue;
      VcaClient* publisher = clients_[static_cast<size_t>(p)].get();
      FlowId video_flow = next_flow_++;
      FlowId audio_flow = next_flow_++;
      sfu_->subscribe(viewer, publisher, video_flow, audio_flow);
      viewer->add_feed(video_flow, video_flow, publisher->host()->id());
      bool pinned = cfg_.mode == ViewMode::kSpeaker && p == cfg_.pinned_client;
      sfu_->set_pinned(viewer, publisher, pinned);
      sfu_->set_desired_width(
          viewer, publisher,
          requested_width(cfg_.profile.kind, n, cfg_.mode, pinned));
      ++used;
    }
  }

  // Teams §6.1 anomaly: in calls with six or more participants the relayed
  // downstream thins even though the uplink is unchanged.
  if (cfg_.profile.kind == VcaKind::kTeams) {
    sfu_->set_relay_divisor(n >= 6 ? 2 : 1);
  }

  for (auto& c : clients_) c->start();
  sfu_->start();
  signaling();
}

void Call::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& c : clients_) c->stop();
}

void Call::signaling() {
  if (!running_) return;
  const int n = static_cast<int>(clients_.size());

  for (int p = 0; p < n; ++p) {
    VcaClient* publisher = clients_[static_cast<size_t>(p)].get();
    bool pinned =
        cfg_.mode == ViewMode::kSpeaker && p == cfg_.pinned_client;

    // Encode ceiling: the largest resolution any viewer requests. Note
    // that a single viewer pinning this publisher raises it for everyone
    // — the §6.2 "one participant's setting affects others" effect.
    int max_w = 0;
    for (int v = 0; v < n; ++v) {
      if (v == p) continue;
      max_w = std::max(
          max_w, requested_width(cfg_.profile.kind, n, cfg_.mode, pinned));
    }
    if (n == 1) max_w = 1280;
    publisher->set_encode_max_width(std::max(max_w, 180));

    if (cfg_.profile.arch == Architecture::kRelay) {
      // Teams: the server is just a relay, so the *sender* must respect
      // the most constrained receiver (§4.2, Fig 6).
      publisher->set_allowed_rate(sfu_->min_viewer_share_for(publisher));
    }
    if (cfg_.profile.kind == VcaKind::kMeet) {
      publisher->set_ultra_low(sfu_->any_ultra_low(publisher));
    }
    if (cfg_.profile.speaker_uplink_anomaly) {
      // Teams §6.2 anomaly: the pinned client's uplink keeps growing with
      // the participant count (1.25 -> 2.9 Mbps from n=3 to n=8).
      double boost =
          pinned ? std::clamp(0.9 + 0.235 * (n - 3), 1.0, 2.1) : 1.0;
      publisher->set_speaker_boost(boost);
    }
  }

  sched_->schedule(cfg_.signaling_tick, [this] { signaling(); });
}

}  // namespace vca
