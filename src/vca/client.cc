#include "vca/client.h"

#include <algorithm>
#include <cmath>

namespace vca {

VcaClient::VcaClient(EventScheduler* sched, Host* host, Config cfg)
    : sched_(sched), host_(host), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  const VcaProfile& p = cfg_.profile;

  // Per-run nominal draw: Teams' wide confidence bands come from here.
  if (p.nominal_run_sd > 0.0) {
    nominal_scale_ = std::exp(rng_.fork("nominal").gaussian(0.0, p.nominal_run_sd));
    nominal_scale_ = std::clamp(nominal_scale_, 0.7, 1.45);
  }

  SenderCongestionController::Bounds bounds;
  bounds.min_rate = DataRate::kbps(80);
  bounds.max_rate = p.nominal_video * nominal_scale_;
  bounds.start_rate = std::min(p.start_rate, bounds.max_rate);
  cc_bounds_ = bounds;
  cc_ = make_sender_cc(p.cc_name, bounds);

  double run_scale = std::exp(rng_.fork("encoder").gaussian(0.0, p.encoder_run_sd));

  layers_.resize(p.layers.size());
  for (size_t i = 0; i < p.layers.size(); ++i) {
    int layer = static_cast<int>(i);
    AdaptiveEncoder::Config ec;
    ec.ssrc = layer_ssrc(layer);
    ec.spatial_layer = static_cast<uint8_t>(layer);
    ec.policy = p.policy_for_layer(layer);
    ec.run_scale = run_scale;
    layers_[i].encoder = std::make_unique<AdaptiveEncoder>(
        sched_, rng_.fork(1000 + static_cast<uint64_t>(layer)), ec);

    RtpSender::Config sc;
    sc.ssrc = layer_ssrc(layer);
    sc.flow = layer_flow(layer);
    sc.dst = cfg_.sfu_node;
    sc.fec_overhead = p.sender_fec;
    layers_[i].sender = std::make_unique<RtpSender>(sched_, host_, sc);
    layers_[i].sender->set_feedback_handler(
        [this, layer](const RtcpMeta& fb) { on_layer_feedback(layer, fb); });

    layers_[i].encoder->set_frame_handler([this, layer](const EncodedFrame& f) {
      if (!running_) return;
      if (sched_->now() < stall_until_) return;  // emulated encoder hiccup
      if (layers_[static_cast<size_t>(layer)].sender->take_keyframe_request()) {
        layers_[static_cast<size_t>(layer)].encoder->request_keyframe();
      }
      layers_[static_cast<size_t>(layer)].sender->send_frame(f);
    });

    // Uplink RTCP for this layer arrives on the same flow id.
    host_->register_flow(layer_flow(layer), [this, layer](Packet pk) {
      if (pk.type == PacketType::kRtcp) {
        layers_[static_cast<size_t>(layer)].sender->handle_rtcp(pk.rtcp());
      }
    });
  }

  RtpSender::Config ac;
  ac.ssrc = audio_ssrc();
  ac.flow = audio_flow();
  ac.dst = cfg_.sfu_node;
  ac.media_type = PacketType::kRtpAudio;
  audio_sender_ = std::make_unique<RtpSender>(sched_, host_, ac);

  // Audio RTCP from the SFU. While degraded to audio-only there is no
  // video feedback, so the audio reports are the only loss signal left —
  // fold them into the smoothed loss so restoration requires a genuinely
  // clean path, not just silence.
  host_->register_flow(audio_flow(), [this](Packet pk) {
    if (pk.type != PacketType::kRtcp) return;
    const RtcpMeta& fb = pk.rtcp();
    audio_sender_->handle_rtcp(fb);
    if (!fb.receive_rate.is_zero()) note_path_alive(sched_->now());
    if (degraded_) {
      loss_ewma_ = std::max(0.98 * loss_ewma_ + 0.02 * fb.loss_fraction,
                            0.93 * loss_ewma_ + 0.07 * fb.loss_fraction);
    }
  });

  // Keepalive echoes from the SFU: the watchdog's liveness signal. The
  // SFU sends RTCP reports unconditionally even when nothing arrives, so
  // mere RTCP arrival cannot prove the uplink works — only echoes and
  // reports showing receive progress do.
  host_->register_flow(keepalive_flow(), [this](Packet pk) {
    if (pk.type == PacketType::kKeepalive) note_path_alive(sched_->now());
  });

  auto est_cfg = ReceiveSideEstimator::preset(
      p.viewer_preset, std::max(DataRate::kbps(400), p.nominal_video * 0.5),
      p.viewer_max_estimate);
  if (p.viewer_est_increase > 0.0) {
    est_cfg.increase_per_sec = p.viewer_est_increase;
  }
  if (p.viewer_est_clamp > 0.0) est_cfg.clamp_factor = p.viewer_est_clamp;
  downlink_est_ = std::make_unique<ReceiveSideEstimator>(est_cfg);
}

void VcaClient::start() {
  if (running_) return;
  running_ = true;
  const VcaProfile& p = cfg_.profile;

  if (p.stall_every_mean > Duration::zero()) {
    next_stall_ = sched_->now() +
                  Duration::seconds_d(rng_.exponential(
                      p.stall_every_mean.seconds()));
  }

  // Audio: a fixed-rate stream, one frame per 20 ms. Marked as keyframes
  // so packet loss never stalls the (loss-concealing) audio decoder.
  const int audio_payload = static_cast<int>(
      cfg_.profile.audio_rate.bits_per_sec() / 50 / 8);
  schedule_audio_ = [this, audio_payload]() {
    if (!running_) return;
    if (connected_) {
      EncodedFrame f;
      f.ssrc = audio_ssrc();
      f.frame_id = audio_frame_id_++;
      f.bytes = audio_payload;
      f.keyframe = true;
      f.fps = 50.0;
      f.capture_time = sched_->now();
      audio_sender_->send_frame(f);
    }
    sched_->schedule(Duration::millis(20), schedule_audio_);
  };
  schedule_audio_();

  connected_ = true;
  last_path_ok_ = sched_->now();
  probe_interval_ = p.resilience.keepalive_initial;
  if (cfg_.sfu_node != kInvalidNode) keepalive_tick();

  tick();
}

void VcaClient::stop() {
  // Idempotent: churn scenarios (fuzzer join/leave) can race a scheduled
  // leave against the end-of-run Call::stop(); finalizing stats twice
  // would double-count the tail freeze window.
  if (!running_) return;
  running_ = false;
  for (auto& l : layers_) {
    if (l.encoder) l.encoder->stop();
    l.active = false;
  }
  for (auto& f : feeds_) {
    if (f->stats) f->stats->finalize();
  }
}

void VcaClient::set_speaker_boost(double b) {
  if (b == speaker_boost_) return;
  speaker_boost_ = b;
  // The anomalous speaker traffic is extra *demand*, not a license to
  // bypass congestion control: raise the controller's ceiling to the
  // boosted nominal and let its own ramp climb there. An unconstrained
  // uplink still reproduces the Fig 15c growth; a narrow one converges
  // near capacity instead of oscillating through degrade/restore
  // (fuzzer seeds 320/406: pinned client stuck audio-only forever).
  cc_bounds_.max_rate =
      cfg_.profile.nominal_video * nominal_scale_ * std::max(1.0, b);
  cc_->set_max_rate(cc_bounds_.max_rate);
}

void VcaClient::request_keyframe(int layer) {
  if (layer >= 0 && layer < static_cast<int>(layers_.size())) {
    layers_[static_cast<size_t>(layer)].encoder->request_keyframe();
  }
}

const EncoderSettings* VcaClient::layer_settings(int layer) const {
  if (layer < 0 || layer >= static_cast<int>(layers_.size())) return nullptr;
  return &layers_[static_cast<size_t>(layer)].encoder->settings();
}

int64_t VcaClient::sent_media_bytes() const {
  int64_t total = 0;
  for (const auto& l : layers_) {
    total += l.sender->sent_media_bytes() + l.sender->sent_fec_bytes();
  }
  return total;
}

void VcaClient::keepalive_tick() {
  if (!running_) return;
  const ResilienceSpec& rs = cfg_.profile.resilience;
  Packet pk;
  pk.id = keepalive_id_++;
  pk.flow = keepalive_flow();
  pk.dst = cfg_.sfu_node;
  pk.size_bytes = kKeepaliveBytes;
  pk.type = PacketType::kKeepalive;
  pk.created_at = sched_->now();
  host_->send(pk);

  Duration next = rs.keepalive_interval;
  if (!connected_) {
    // Reconnect probing: exponential backoff up to the profile's cap.
    next = probe_interval_;
    probe_interval_ = std::min(
        Duration::seconds_d(probe_interval_.seconds() * rs.keepalive_backoff),
        rs.keepalive_max);
  }
  sched_->schedule(next, [this] { keepalive_tick(); });
}

void VcaClient::go_disconnected(TimePoint now) {
  connected_ = false;
  resilience_events_.push_back({now, ResilienceEventKind::kMediaTimeout});
  probe_interval_ = cfg_.profile.resilience.keepalive_initial;
  for (auto& l : layers_) {
    if (l.active) {
      l.encoder->stop();
      l.active = false;
    }
    l.last_rx = DataRate::zero();
  }
  // Stale loss estimates describe the dead path, not the one we will
  // reconnect over.
  loss_ewma_ = 0.0;
  loss_high_since_ = TimePoint::infinite();
  loss_low_since_ = TimePoint::infinite();
}

void VcaClient::note_path_alive(TimePoint now) {
  last_path_ok_ = now;
  if (connected_) return;
  connected_ = true;
  ++reconnect_count_;
  resilience_events_.push_back({now, ResilienceEventKind::kReconnected});
  const ResilienceSpec& rs = cfg_.profile.resilience;
  probe_interval_ = rs.keepalive_initial;
  if (rs.reset_cc_on_reconnect) {
    // Pre-outage controller state is meaningless on the restored path:
    // re-ramp from the profile's start rate, as the apps do after ICE
    // restart.
    cc_ = make_sender_cc(cfg_.profile.cc_name, cc_bounds_);
  }
  loss_ewma_ = 0.0;
}

void VcaClient::update_degradation(TimePoint now) {
  const ResilienceSpec& rs = cfg_.profile.resilience;
  if (!degraded_) {
    if (loss_ewma_ >= rs.degrade_loss) {
      if (loss_high_since_ == TimePoint::infinite()) loss_high_since_ = now;
      if (now - loss_high_since_ >= rs.degrade_after) {
        degraded_ = true;
        resilience_events_.push_back({now, ResilienceEventKind::kDegraded});
        loss_low_since_ = TimePoint::infinite();
      }
    } else {
      loss_high_since_ = TimePoint::infinite();
    }
  } else {
    if (loss_ewma_ <= rs.restore_loss) {
      if (loss_low_since_ == TimePoint::infinite()) loss_low_since_ = now;
      if (now - loss_low_since_ >= rs.restore_hold) {
        degraded_ = false;
        resilience_events_.push_back({now, ResilienceEventKind::kRestored});
        loss_high_since_ = TimePoint::infinite();
      }
    } else {
      loss_low_since_ = TimePoint::infinite();
    }
  }
}

void VcaClient::on_layer_feedback(int layer, const RtcpMeta& fb) {
  if (!fb.receive_rate.is_zero()) note_path_alive(sched_->now());
  layers_[static_cast<size_t>(layer)].last_rx = fb.receive_rate;
  // The controller reasons about the client's *aggregate* uplink: patch
  // the per-stream receive rate with the sum across active streams, and
  // smooth the loss signal across streams/reports — a single 100 ms
  // report from one layer that happened to dodge the drop-tail queue must
  // not read as "the path is clean".
  RtcpMeta combined = fb;
  DataRate total_rx = DataRate::zero();
  for (const auto& l : layers_) total_rx = total_rx + l.last_rx;
  combined.receive_rate = total_rx;
  // Fast-attack / slow-decay smoothing: congestion onset must register
  // within a few reports (a joining flow may not grab a "clean" first
  // impression), while recovery is only believed once sustained.
  loss_ewma_ = std::max(0.98 * loss_ewma_ + 0.02 * fb.loss_fraction,
                        0.93 * loss_ewma_ + 0.07 * fb.loss_fraction);
  combined.loss_fraction = loss_ewma_;
  cc_->on_feedback(combined, sched_->now());
}

void VcaClient::tick() {
  if (!running_) return;
  const VcaProfile& p = cfg_.profile;
  TimePoint now = sched_->now();

  // Media-timeout watchdog: no keepalive echo and no receive-progress
  // feedback for the profile's timeout => the path is dead. Shed media
  // and let the (backing-off) keepalive probes revive us.
  if (connected_ && cfg_.sfu_node != kInvalidNode &&
      now - last_path_ok_ > p.resilience.media_timeout) {
    go_disconnected(now);
  }
  if (!connected_) {
    current_target_ = DataRate::zero();
    sched_->schedule(cfg_.tick, [this] { tick(); });
    return;
  }
  update_degradation(now);

  // Baseline encoder stalls (Teams's 3.6% unconstrained freeze ratio).
  if (now >= next_stall_ && next_stall_ != TimePoint::infinite()) {
    stall_until_ = now + p.stall_len;
    next_stall_ =
        now + Duration::seconds_d(rng_.exponential(p.stall_every_mean.seconds()));
  }

  DataRate target = cc_->target_rate(now) * p.target_margin;
  target = std::min(target, allowed_rate_);
  bool boosted = speaker_boost_ > 1.0 && p.speaker_uplink_anomaly;
  if (boosted) {
    // Teams §6.2 anomaly: pinned client's uplink scales with participants.
    // set_speaker_boost raised the CC ceiling to the boosted nominal, so
    // the controller itself carries the anomalous demand — free of the
    // per-receiver allowed_rate_ clamp (receivers cannot use the extra
    // traffic; that is what makes it an anomaly) but still backing off
    // when the uplink genuinely cannot carry it.
    target = cc_->target_rate(now);
  }
  current_target_ = target;

  StreamAllocation alloc = p.allocate(target, max_width_, ultra_low_);
  // Graceful degradation: sustained loss sheds every video layer; the
  // audio stream (loss-concealing decoder, tiny rate) keeps the call up.
  if (degraded_) alloc.items.clear();
  if (boosted && !alloc.items.empty()) {
    // The anomalous extra traffic bypasses the normal per-width encode
    // ceiling (that is what makes it an anomaly).
    alloc.items[0].target = target;
  }

  // Layer ladders are at most 4 deep, so a word of bits replaces the
  // per-tick std::vector<bool> this loop used to allocate.
  uint64_t wanted = 0;
  DataRate total_media = DataRate::zero();
  for (const auto& item : alloc.items) {
    auto& l = layers_[static_cast<size_t>(item.layer)];
    wanted |= uint64_t{1} << static_cast<unsigned>(item.layer);
    l.encoder->set_target(item.target, max_width_);
    total_media = total_media + item.target;
    if (!l.active) {
      l.active = true;
      l.encoder->request_keyframe();
      l.encoder->start();
    }
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (!(wanted >> i & 1) && layers_[i].active) {
      layers_[i].encoder->stop();
      layers_[i].active = false;
      layers_[i].last_rx = DataRate::zero();
    }
  }

  // Pacing: a bit above the aggregate media rate, split per stream.
  for (const auto& item : alloc.items) {
    auto& l = layers_[static_cast<size_t>(item.layer)];
    l.sender->set_pacing_rate(
        std::max(item.target * 1.15, DataRate::kbps(300)));
  }

  // Zoom probes above its encodable rate with redundant FEC packets (§4.1:
  // "Zoom may be using redundant FEC packets to gauge capacity") — the
  // bursts that flatten iPerf3 in Fig 13 are these. Padding only flows
  // while the controller is in its probe cycle, not whenever the layout
  // caps the encodable layers below the controller's target.
  auto* zoom_cc = dynamic_cast<ZoomSenderController*>(cc_.get());
  bool probing = zoom_cc != nullptr &&
                 zoom_cc->state() == ZoomSenderController::State::kProbe;
  if (p.kind == VcaKind::kZoom && probing && target > total_media &&
      !layers_.empty()) {
    DataRate pad_rate = target - total_media;
    int bytes = static_cast<int>(pad_rate.bits_per_sec() *
                                 cfg_.tick.seconds() / 8.0);
    if (bytes > 300) {
      layers_[0].sender->set_pacing_rate(std::max(
          layers_[0].encoder->settings().bitrate + pad_rate * 1.5,
          DataRate::kbps(500)));
      layers_[0].sender->send_padding(bytes);
    }
  }

  sched_->schedule(cfg_.tick, [this] { tick(); });
}

VcaClient::Feed& VcaClient::add_feed(FlowId flow, uint32_t ssrc,
                                     NodeId publisher_node) {
  auto feed = std::make_unique<Feed>();
  feed->publisher = publisher_node;
  feed->flow = flow;
  RtpReceiver::Config rc;
  rc.ssrc = ssrc;
  rc.feedback_flow = flow;
  rc.feedback_dst = cfg_.sfu_node;
  rc.report_interval = cfg_.profile.feedback_interval;
  feed->receiver = std::make_unique<RtpReceiver>(sched_, host_, rc);
  feed->receiver->set_arrival_observer(downlink_est_.get());
  feed->stats = std::make_unique<WebRtcStatsCollector>(sched_);
  auto* stats = feed->stats.get();
  feed->receiver->set_frame_handler(
      [stats](const DecodedFrame& f) { stats->on_frame(f); });
  auto* receiver = feed->receiver.get();
  host_->register_flow(flow, [receiver](Packet pk) {
    if (pk.is_media()) receiver->handle_packet(pk);
  });
  feeds_.push_back(std::move(feed));
  return *feeds_.back();
}

void VcaClient::remove_feed(FlowId flow) {
  for (auto it = feeds_.begin(); it != feeds_.end(); ++it) {
    if ((*it)->flow != flow) continue;
    host_->unregister_flow(flow);
    // The receiver's report timer holds a raw `this`; quiesce it and park
    // the feed until the client is destroyed (see RtpReceiver::shutdown).
    (*it)->receiver->shutdown();
    feed_graveyard_.push_back(std::move(*it));
    feeds_.erase(it);
    return;
  }
}

}  // namespace vca
