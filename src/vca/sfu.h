// SFU server models (§2.1 "streaming architecture", §4.2).
//
// All three VCAs route media through an intermediary server; what the
// server *does* differs and drives the paper's downlink results:
//  * Teams  (kRelay):         forwards the single stream untouched; rate
//    adaptation is end-to-end (the far sender obeys the receiver's slow,
//    conservative estimate) => slow downlink recovery (Fig 5b, Fig 6).
//  * Meet   (kSimulcastSfu):  picks one of the uploaded copies per viewer
//    and can thin frames (temporal layers); switching is instant once the
//    viewer's estimate moves => sub-10 s downlink recovery (Fig 5b).
//  * Zoom   (kSvcSfu):        selects how many SVC layers to forward and
//    adds server-side FEC (the §3.1 up/down asymmetry); layer re-adds are
//    instant => fast downlink recovery.
//  * Webex  (kSimulcastSfu):  like Meet with a three-copy ladder
//    (Chang et al., "Can You See Me Now?").
//
// The SFU re-originates every forwarded stream (fresh SSRC/sequence/frame
// numbering), as production SFUs do, so temporal thinning and stream
// switches never break the viewer's decode chain.
//
// Cascaded fleets: SFUs can be organized one-per-region, with each client
// publishing to its regional SFU. A local publisher's streams are relayed
// *once* per peer region (add_relay_out) over inter-SFU relay flows; the
// peer SFU terminates them as a remote publisher leg (add_remote_publisher)
// and fans out to its local viewers with the same per-viewer selection it
// applies to local legs. Only local legs are ever relayed, so a stream
// crosses each inter-SFU link at most once and relay loops are
// structurally impossible.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cc/remb.h"
#include "core/scheduler.h"
#include "net/node.h"
#include "transport/rtp.h"
#include "vca/client.h"
#include "vca/profile.h"

namespace vca {

class SfuServer {
 public:
  struct Config {
    VcaProfile profile;
    Duration tick = Duration::millis(100);
  };

  SfuServer(EventScheduler* sched, Host* host, Config cfg);

  Host* host() const { return host_; }

  // Register a client as a media publisher (uplink legs).
  void add_publisher(VcaClient* client);

  // Forward `publisher`'s video+audio to `viewer` on the given flows.
  // The caller must also call viewer->add_feed(video_flow, ...).
  void subscribe(VcaClient* viewer, VcaClient* publisher, FlowId video_flow,
                 FlowId audio_flow);
  // Same, with the publisher named by its origin node — works for both
  // local and remote (relay-ingress) publisher legs.
  void subscribe_origin(VcaClient* viewer, NodeId origin, FlowId video_flow,
                        FlowId audio_flow);

  void set_desired_width(VcaClient* viewer, VcaClient* publisher, int width);
  void set_desired_width_origin(VcaClient* viewer, NodeId origin, int width);
  void set_pinned(VcaClient* viewer, VcaClient* publisher, bool pinned);
  void set_pinned_origin(VcaClient* viewer, NodeId origin, bool pinned);
  // Teams §6.1 anomaly: downstream thinning for large calls.
  void set_relay_divisor(int divisor) { relay_divisor_ = divisor; }

  // --- cascaded-fleet wiring (conference.h drives this) ---
  // Relay egress: forward local publisher `publisher`'s streams, exactly
  // once, to the peer SFU host at `peer_sfu`. Layer i media travels on
  // relay flow `flow_base + i`, audio on `flow_base + n_layers`; RTCP for
  // each stream returns on the same flow.
  void add_relay_out(VcaClient* publisher, NodeId peer_sfu, FlowId flow_base);
  void remove_relay_out(NodeId origin, NodeId peer_sfu);
  // Relay ingress: terminate the streams the peer SFU at `peer_sfu`
  // relays for the remote publisher `origin`. `keyframe_request` routes a
  // local viewer's FIR back toward the origin encoder (out-of-band, like
  // the signaling loop).
  void add_remote_publisher(NodeId origin, NodeId peer_sfu, FlowId flow_base,
                            std::function<void(int)> keyframe_request);
  void remove_remote_publisher(NodeId origin);

  // --- teardown (every exit path: leave, timeout, blackout, mid-relay) ---
  // All teardown works while the SFU is offline: a blacked-out server
  // still has to forget clients that gave up on it, otherwise their flow
  // handlers dangle and their subscriptions keep consuming fanout.
  void unsubscribe(VcaClient* viewer, NodeId origin);
  void unsubscribe_viewer(VcaClient* viewer);
  void remove_publisher(VcaClient* publisher);

  // Departed-client bookkeeping behind the "no forwarding to departed
  // clients" sim-invariant: the conference marks a client departed the
  // moment it leaves; any subsequent frame forwarded to it means some
  // exit path failed to tear its subscriptions down.
  void note_departed(NodeId viewer_node);
  int64_t forwards_to_departed() const { return forwards_to_departed_; }
  // Appends one line per violated SFU invariant (same contract as
  // Link::append_invariant_violations).
  void append_invariant_violations(std::vector<std::string>* out) const;

  void start();

  // Fault injection: while offline the server neither processes inbound
  // media/feedback nor echoes keepalives, so every client's watchdog
  // fires. Restart (back online) resumes service with state intact.
  void set_online(bool v) { online_ = v; }
  bool online() const { return online_; }

  // --- queries used by the Call's signaling loop ---
  // The smallest per-feed downlink budget any viewer has for `publisher`
  // (Teams: relayed to the publisher as its allowed sending rate).
  DataRate min_viewer_share_for(VcaClient* publisher) const;
  DataRate min_viewer_share_for_origin(NodeId origin) const;
  // Meet: some viewer of `publisher` is so starved it needs the ultra-low
  // low-stream variant.
  bool any_ultra_low(VcaClient* publisher) const;
  bool any_ultra_low_origin(NodeId origin) const;
  // Introspection for tests/benches.
  int selected_stream(VcaClient* viewer, VcaClient* publisher) const;
  int active_layers(VcaClient* viewer, VcaClient* publisher) const;
  DataRate viewer_budget(VcaClient* viewer) const;
  // FIRs generated against this publisher's uplink streams (Fig 3b).
  int fir_count_for(VcaClient* publisher) const;

  // --- per-SFU load metrics (the fleet CPU proxy) ---
  // Packets this SFU originated toward viewers and peer SFUs (media, FEC,
  // probe padding and retransmissions), including streams already torn
  // down. The per-second rate is ~linear in local fanout degree.
  int64_t forwarded_packets() const;
  // Live subscriptions (local fanout degree) and relay egress streams.
  int subscription_count() const { return static_cast<int>(subs_.size()); }
  int relay_out_count() const { return static_cast<int>(relays_.size()); }

 private:
  struct PublisherLeg {
    VcaClient* client = nullptr;  // nullptr for remote (relay-ingress) legs
    NodeId origin = kInvalidNode;
    std::vector<FlowId> owned_flows;  // host flow handlers to drop on removal
    std::function<void(int)> keyframe_request;
    std::vector<std::unique_ptr<RtpReceiver>> layer_receivers;
    std::unique_ptr<RtpReceiver> audio_receiver;
    std::unique_ptr<ReceiveSideEstimator> uplink_estimator;
    std::vector<DecodedFrame> latest;  // most recent frame per layer
    std::vector<bool> has_latest;
    bool is_local() const { return client != nullptr; }
  };

  struct Subscription {
    VcaClient* viewer = nullptr;
    PublisherLeg* leg = nullptr;
    std::unique_ptr<RtpSender> video_sender;
    std::unique_ptr<RtpSender> audio_sender;
    FlowId video_flow = 0;
    FlowId audio_flow = 0;
    int desired_width = 1280;
    bool pinned = false;
    // Meet/Webex state.
    int selected_stream = 0;
    int temporal_divisor = 1;
    uint64_t thinning_counter = 0;
    int debounce = 0;
    bool wants_ultra_low = false;
    // Zoom state.
    int active_layers = 1;
    // Probe-cycle state (see maybe_probe).
    TimePoint cooldown_until;
    // Re-origination counters.
    uint64_t next_video_frame = 0;
    uint64_t next_audio_frame = 0;
    // Latest viewer feedback.
    DataRate viewer_remb;
    DataRate viewer_rx;       // what actually arrived at the viewer
    double viewer_loss = 0.0;
    double viewer_qd_ms = 0.0;
    DataRate share;  // budget assigned this tick
  };

  // One relay egress: a local publisher's ladder re-originated toward one
  // peer SFU (all layers, no per-viewer selection — the peer selects).
  struct RelayOut {
    PublisherLeg* leg = nullptr;
    NodeId peer = kInvalidNode;
    std::vector<FlowId> owned_flows;  // RTCP-return handlers on this host
    std::vector<std::unique_ptr<RtpSender>> layer_senders;
    std::unique_ptr<RtpSender> audio_sender;
    std::vector<uint64_t> next_frame;
    uint64_t next_audio_frame = 0;
  };

  void on_video_frame(PublisherLeg* leg, int layer, const DecodedFrame& f);
  void on_audio_frame(PublisherLeg* leg, const DecodedFrame& f);
  void forward(Subscription& sub, const DecodedFrame& f, bool thinnable);
  void relay_video(RelayOut& relay, int layer, const DecodedFrame& f);
  void tick();
  void update_selection(Subscription& sub);
  void maybe_probe(Subscription& sub);
  const Subscription* find(VcaClient* viewer, VcaClient* publisher) const;
  PublisherLeg* leg_for(NodeId origin);
  void retire_subscription(std::unique_ptr<Subscription> sub);
  void retire_relay(std::unique_ptr<RelayOut> relay);
  void remove_leg(NodeId origin);
  bool departed(NodeId node) const {
    return !departed_.empty() && departed_.count(node) > 0;
  }

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  std::vector<std::unique_ptr<PublisherLeg>> legs_;
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<std::unique_ptr<RelayOut>> relays_;
  // Torn down mid-run, parked until the server is destroyed: their
  // senders'/receivers' pacing and report timers capture raw `this`
  // pointers (see RtpSender::shutdown). Nothing iterates these, so the
  // dangling leg/viewer pointers inside are never followed.
  std::vector<std::unique_ptr<PublisherLeg>> leg_graveyard_;
  std::vector<std::unique_ptr<Subscription>> sub_graveyard_;
  std::vector<std::unique_ptr<RelayOut>> relay_graveyard_;
  std::unordered_set<NodeId> departed_;
  // Packet totals of senders already torn down, so churn never makes the
  // forwarded-packet counter go backwards.
  int64_t retired_forwarded_packets_ = 0;
  int64_t forwards_to_departed_ = 0;
  int relay_divisor_ = 1;
  bool online_ = true;
  bool started_ = false;
};

}  // namespace vca
