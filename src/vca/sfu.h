// SFU server models (§2.1 "streaming architecture", §4.2).
//
// All three VCAs route media through an intermediary server; what the
// server *does* differs and drives the paper's downlink results:
//  * Teams  (kRelay):         forwards the single stream untouched; rate
//    adaptation is end-to-end (the far sender obeys the receiver's slow,
//    conservative estimate) => slow downlink recovery (Fig 5b, Fig 6).
//  * Meet   (kSimulcastSfu):  picks one of the uploaded copies per viewer
//    and can thin frames (temporal layers); switching is instant once the
//    viewer's estimate moves => sub-10 s downlink recovery (Fig 5b).
//  * Zoom   (kSvcSfu):        selects how many SVC layers to forward and
//    adds server-side FEC (the §3.1 up/down asymmetry); layer re-adds are
//    instant => fast downlink recovery.
//
// The SFU re-originates every forwarded stream (fresh SSRC/sequence/frame
// numbering), as production SFUs do, so temporal thinning and stream
// switches never break the viewer's decode chain.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cc/remb.h"
#include "core/scheduler.h"
#include "net/node.h"
#include "transport/rtp.h"
#include "vca/client.h"
#include "vca/profile.h"

namespace vca {

class SfuServer {
 public:
  struct Config {
    VcaProfile profile;
    Duration tick = Duration::millis(100);
  };

  SfuServer(EventScheduler* sched, Host* host, Config cfg);

  Host* host() const { return host_; }

  // Register a client as a media publisher (uplink legs).
  void add_publisher(VcaClient* client);

  // Forward `publisher`'s video+audio to `viewer` on the given flows.
  // The caller must also call viewer->add_feed(video_flow, ...).
  void subscribe(VcaClient* viewer, VcaClient* publisher, FlowId video_flow,
                 FlowId audio_flow);

  void set_desired_width(VcaClient* viewer, VcaClient* publisher, int width);
  void set_pinned(VcaClient* viewer, VcaClient* publisher, bool pinned);
  // Teams §6.1 anomaly: downstream thinning for large calls.
  void set_relay_divisor(int divisor) { relay_divisor_ = divisor; }

  void start();

  // Fault injection: while offline the server neither processes inbound
  // media/feedback nor echoes keepalives, so every client's watchdog
  // fires. Restart (back online) resumes service with state intact.
  void set_online(bool v) { online_ = v; }
  bool online() const { return online_; }

  // --- queries used by the Call's signaling loop ---
  // The smallest per-feed downlink budget any viewer has for `publisher`
  // (Teams: relayed to the publisher as its allowed sending rate).
  DataRate min_viewer_share_for(VcaClient* publisher) const;
  // Meet: some viewer of `publisher` is so starved it needs the ultra-low
  // low-stream variant.
  bool any_ultra_low(VcaClient* publisher) const;
  // Introspection for tests/benches.
  int selected_stream(VcaClient* viewer, VcaClient* publisher) const;
  int active_layers(VcaClient* viewer, VcaClient* publisher) const;
  DataRate viewer_budget(VcaClient* viewer) const;
  // FIRs generated against this publisher's uplink streams (Fig 3b).
  int fir_count_for(VcaClient* publisher) const;

 private:
  struct PublisherLeg {
    VcaClient* client = nullptr;
    std::vector<std::unique_ptr<RtpReceiver>> layer_receivers;
    std::unique_ptr<RtpReceiver> audio_receiver;
    std::unique_ptr<ReceiveSideEstimator> uplink_estimator;
    std::vector<DecodedFrame> latest;  // most recent frame per layer
    std::vector<bool> has_latest;
  };

  struct Subscription {
    VcaClient* viewer = nullptr;
    PublisherLeg* leg = nullptr;
    std::unique_ptr<RtpSender> video_sender;
    std::unique_ptr<RtpSender> audio_sender;
    int desired_width = 1280;
    bool pinned = false;
    // Meet state.
    int selected_stream = 0;
    int temporal_divisor = 1;
    uint64_t thinning_counter = 0;
    int debounce = 0;
    bool wants_ultra_low = false;
    // Zoom state.
    int active_layers = 1;
    // Probe-cycle state (see maybe_probe).
    TimePoint cooldown_until;
    // Re-origination counters.
    uint64_t next_video_frame = 0;
    uint64_t next_audio_frame = 0;
    // Latest viewer feedback.
    DataRate viewer_remb;
    DataRate viewer_rx;       // what actually arrived at the viewer
    double viewer_loss = 0.0;
    double viewer_qd_ms = 0.0;
    DataRate share;  // budget assigned this tick
  };

  void on_video_frame(PublisherLeg* leg, int layer, const DecodedFrame& f);
  void on_audio_frame(PublisherLeg* leg, const DecodedFrame& f);
  void forward(Subscription& sub, const DecodedFrame& f, bool thinnable);
  void tick();
  void update_selection(Subscription& sub);
  void maybe_probe(Subscription& sub);
  const Subscription* find(VcaClient* viewer, VcaClient* publisher) const;

  EventScheduler* sched_;
  Host* host_;
  Config cfg_;
  std::vector<std::unique_ptr<PublisherLeg>> legs_;
  std::vector<std::unique_ptr<Subscription>> subs_;
  int relay_divisor_ = 1;
  bool online_ = true;
  bool started_ = false;
};

}  // namespace vca
