// Viewing-mode and layout logic (§6).
//
// Each viewer's screen layout determines the video resolution it wants
// from every publisher; the publisher's encoder (and the SFU's stream
// selection) obey the *maximum* requested across viewers. This is the
// mechanism behind the paper's Fig. 15: adding participants shrinks tiles,
// shrinking tiles lowers requested resolutions, and that lowers *everyone
// else's uplink*.
#pragma once

#include <algorithm>
#include <cmath>

namespace vca {

enum class ViewMode {
  kGallery,  // all participants tiled
  kSpeaker,  // one participant pinned large
};

enum class VcaKind { kMeet, kTeams, kZoom, kWebex };

// Screen geometry of the paper's laptops (Dell Latitude 3300).
constexpr int kScreenWidth = 1366;
constexpr int kScreenHeight = 768;

// Speaker mode renders the pinned feed plus a thumbnail filmstrip; feeds
// beyond the strip are not rendered (or, in a cascaded conference,
// subscribed) at all.
constexpr int kSpeakerFilmstrip = 6;

// Gallery paging: every client renders at most one page of tiles, no
// matter how large the conference is. Chang et al. ("Can You See Me
// Now?") report Zoom and Webex capping the gallery at a 5x5 grid and Meet
// at a smaller tiled page; the Linux Teams client keeps its fixed 2x2.
inline int gallery_page_capacity(VcaKind kind) {
  switch (kind) {
    case VcaKind::kTeams: return 4;
    case VcaKind::kMeet: return 16;
    case VcaKind::kZoom: return 25;
    case VcaKind::kWebex: return 25;
  }
  return 25;
}

// How many remote feeds a viewer actually renders — and therefore how many
// subscriptions a cascaded conference creates for it. This is what keeps a
// 500-party call's downlink bounded: the per-viewer fanout saturates at
// the page size while the roster keeps growing.
inline int visible_tiles(VcaKind kind, int participants, ViewMode mode) {
  int remote = std::max(0, participants - 1);
  if (mode == ViewMode::kSpeaker) return std::min(remote, 1 + kSpeakerFilmstrip);
  return std::min(remote, gallery_page_capacity(kind));
}

// Resolution ladder request given a tile width in pixels.
inline int width_request_for_tile(int tile_width) {
  if (tile_width >= 1000) return 1280;
  if (tile_width >= 600) return 640;
  if (tile_width >= 280) return 320;
  return 180;
}

// The video width viewer `viewer` requests from publisher `publisher` in a
// call with `participants` total clients. In speaker mode, `pinned` says
// whether this publisher is the one pinned by the viewer.
inline int requested_width(VcaKind kind, int participants, ViewMode mode,
                           bool pinned) {
  if (participants <= 2) {
    // Two-party call: the remote video fills the window.
    return 1280;
  }
  if (mode == ViewMode::kSpeaker) {
    // Pinned video is large; everyone else is a thumbnail strip.
    return pinned ? 1280 : 180;
  }
  switch (kind) {
    case VcaKind::kZoom:
    case VcaKind::kWebex: {
      // Zoom/Webex tile participants (self included) in a near-square
      // grid: 2x2 up to 4, a third column from 5 (the paper's n=5 knee).
      // Past one gallery page the grid stops growing, so the request
      // bottoms out at the page's tile size (paging leaves every pinned
      // small-N result unchanged: by n=25 the request is already 180).
      int tiles = std::min(participants, gallery_page_capacity(kind));
      int cols = static_cast<int>(std::ceil(std::sqrt(tiles)));
      int tile = kScreenWidth / std::max(1, cols);
      return width_request_for_tile(tile);
    }
    case VcaKind::kMeet: {
      // Meet keeps medium tiles longer; the paper observes the uplink
      // reduction at n = 7 (§6.1), i.e. once more than 6 are tiled.
      return participants <= 6 ? 640 : 320;
    }
    case VcaKind::kTeams: {
      // Teams on Linux has a fixed 2x2 layout: tiles never shrink, so the
      // requested width never changes with n (§6.1: "upstream utilization
      // remains almost constant").
      return 640;
    }
  }
  return 640;
}

// How many remote videos the viewer actually displays (and therefore how
// many feeds the SFU forwards to it).
inline int displayed_feeds(VcaKind kind, int participants, ViewMode mode) {
  int remote = participants - 1;
  if (mode == ViewMode::kSpeaker) return remote;  // pinned + thumbnails
  if (kind == VcaKind::kTeams) return std::min(4, remote);  // fixed 4-tile grid
  return remote;
}

}  // namespace vca
