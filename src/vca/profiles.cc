#include "vca/profile.h"

#include <algorithm>
#include <cmath>

namespace vca {

namespace {

// ---------------------------------------------------------------------------
// Encoder adaptation policies (§3.2, Fig 2). These map a bitrate budget to
// the (width, fps, QP) triple that the WebRTC stats would report.
// ---------------------------------------------------------------------------

// Meet low simulcast copy: 320x180, 30 fps. QP sits near 38; the paper
// observes an unexplained *drop* to 33 at very low rates (the ultra-low
// variant, §3.2: "not clear why the quantization parameter reduces from 38
// to 33 at 0.3 Mbps"). Under uplink pressure this copy absorbs the whole
// budget and Meet trims fps and QP instead (Fig 2d-e at 0.3-0.4 Mbps).
EncoderSettings meet_low_policy(DataRate target, int /*max_width*/) {
  EncoderSettings s;
  s.width = 320;
  s.bitrate = target;
  double kbps = target.kbps_f();
  if (kbps <= 125.0) {
    s.qp = 33;  // emulated quirk
    s.fps = 30.0;
  } else {
    s.qp = std::clamp(38 - static_cast<int>((kbps - 150.0) / 20.0), 28, 38);
    s.fps = kbps > 200.0 ? 24.0 : 30.0;
  }
  return s;
}

// Meet high simulcast copy: 640x360 at ~0.7 Mbps, QP-first degradation
// under uplink pressure (Fig 2e), fps stays 30 at the sender (temporal
// thinning happens at the SFU).
EncoderSettings meet_high_policy(DataRate target, int max_width) {
  EncoderSettings s;
  s.width = std::min(640, max_width);
  s.fps = 30.0;
  s.bitrate = target;
  double kbps = target.kbps_f();
  s.qp = std::clamp(30 + static_cast<int>((700.0 - kbps) / 25.0), 24, 40);
  return s;
}

// Teams: a single stream that degrades width, fps and QP together, with
// the paper's emulated bug: frame width *increases* again once the budget
// falls to ~0.3 Mbps (§3.2: "the frame width increases as uplink capacity
// is reduced to 0.3 Mbps ... suggesting a poor design decision or
// implementation bug"), which in turn causes freezes and FIRs (Fig 3b).
EncoderSettings teams_policy(DataRate target, int max_width) {
  EncoderSettings s;
  double kbps = target.kbps_f();
  int ladder;
  if (kbps >= 1150) {
    ladder = 1280;
  } else if (kbps >= 850) {
    ladder = 960;
  } else if (kbps >= 550) {
    ladder = 640;
  } else if (kbps >= 350) {
    ladder = 480;
  } else if (kbps >= 320) {
    ladder = 320;
  } else {
    ladder = 960;  // emulated width bug below ~0.32 Mbps
  }
  // The bug case ignores the viewer's requested width entirely.
  s.width = kbps < 320 ? 960 : std::min(ladder, max_width);
  s.fps = std::clamp(18.0 + 12.0 * kbps / 1300.0, 12.0, 30.0);
  s.qp = std::clamp(26 + static_cast<int>((1300.0 - kbps) / 40.0), 24, 45);
  s.bitrate = target;
  return s;
}

// Zoom SVC layers (not observable via WebRTC stats in the paper, but
// modeled for completeness): base 180p, +360p, +720p enhancement.
EncoderSettings zoom_layer_policy(int layer, DataRate target) {
  EncoderSettings s;
  static constexpr int kWidths[] = {180, 360, 1280};
  s.width = kWidths[std::clamp(layer, 0, 2)];
  s.fps = 30.0;
  s.qp = 32 - 2 * layer;
  s.bitrate = target;
  return s;
}

// Webex simulcast copies (Chang et al., "Can You See Me Now?"): a ladder
// of 180p/360p/720p copies, each degrading QP-first under pressure while
// fps stays 30 (temporal adaptation happens at the server).
EncoderSettings webex_layer_policy(int layer, DataRate target, int max_width) {
  EncoderSettings s;
  static constexpr int kWidths[] = {320, 640, 1280};
  static constexpr double kNominalKbps[] = {200.0, 600.0, 1700.0};
  int i = std::clamp(layer, 0, 2);
  s.width = std::min(kWidths[i], std::max(180, max_width));
  s.fps = 30.0;
  s.bitrate = target;
  double kbps = std::max(1.0, target.kbps_f());
  s.qp = std::clamp(
      30 + static_cast<int>(25.0 * (kNominalKbps[i] - kbps) / kNominalKbps[i]),
      24, 42);
  return s;
}

VcaProfile meet_base() {
  VcaProfile p;
  p.name = "meet";
  p.kind = VcaKind::kMeet;
  p.arch = Architecture::kSimulcastSfu;
  p.cc_name = "gcc";
  // Two copies observed in the paper: 320x180 and 640x360 (§3.1).
  p.layers = {
      {.width = 320, .rate = DataRate::kbps(150), .min_request_width = 0},
      {.width = 640, .rate = DataRate::kbps(700), .min_request_width = 640},
  };
  p.nominal_video = DataRate::kbps(850);
  p.start_rate = DataRate::kbps(500);
  p.viewer_preset = ReceiveSideEstimator::Preset::kGcc;
  p.sfu_uplink_preset = ReceiveSideEstimator::Preset::kGcc;
  p.viewer_max_estimate = DataRate::kbps(2600);
  p.viewer_est_increase = 0.22;  // fast simulcast switch-up (Fig 5b)
  p.sfu_est_increase = 0.085;    // ~20 s uplink recovery scale (Fig 4b)
  p.viewer_est_clamp = 1.2;      // low-copy plateau under constraint (Fig 1b)
  p.encoder_run_sd = 0.04;
  // Middle-of-the-pack resilience: WebRTC-standard 2.5 s consent timeout,
  // moderate probe backoff, GCC re-ramps from start after a reconnect.
  p.resilience.media_timeout = Duration::millis(2500);
  p.resilience.keepalive_initial = Duration::millis(250);
  p.resilience.keepalive_max = Duration::seconds(4);
  return p;
}

VcaProfile teams_base() {
  VcaProfile p;
  p.name = "teams";
  p.kind = VcaKind::kTeams;
  p.arch = Architecture::kRelay;
  p.cc_name = "teams";
  p.layers = {{.width = 1280, .rate = DataRate::kbps(1300), .min_request_width = 0}};
  p.nominal_video = DataRate::kbps(1300);
  p.start_rate = DataRate::kbps(600);
  p.viewer_preset = ReceiveSideEstimator::Preset::kConservative;
  p.sfu_uplink_preset = ReceiveSideEstimator::Preset::kGcc;
  p.viewer_max_estimate = DataRate::mbps(4);
  // Wide run-to-run variability (large CIs in Figs 1-2, and the Table 2
  // upstream/downstream asymmetry the paper attributes to variance).
  p.encoder_run_sd = 0.10;
  p.nominal_run_sd = 0.16;
  // Baseline 3.6% freeze ratio (Fig 3a at unconstrained capacity).
  p.stall_every_mean = Duration::seconds(18);
  p.stall_len = Duration::millis(650);
  p.speaker_uplink_anomaly = true;
  // Slowest of the three to notice and to come back (the §4 recovery
  // ordering carries over to outages): long watchdog, lazy probe backoff,
  // and a conservative post-reconnect ramp via the Teams controller's
  // cautious phase.
  p.resilience.media_timeout = Duration::seconds(4);
  p.resilience.keepalive_initial = Duration::millis(500);
  p.resilience.keepalive_max = Duration::seconds(8);
  p.resilience.degrade_loss = 0.20;  // sheds video comparatively early
  return p;
}

VcaProfile zoom_base() {
  VcaProfile p;
  p.name = "zoom";
  p.kind = VcaKind::kZoom;
  p.arch = Architecture::kSvcSfu;
  p.cc_name = "zoom";
  p.layers = {
      {.width = 180, .rate = DataRate::kbps(120), .min_request_width = 0},
      {.width = 360, .rate = DataRate::kbps(280), .min_request_width = 320},
      {.width = 1280, .rate = DataRate::kbps(330), .min_request_width = 640},
  };
  p.nominal_video = DataRate::kbps(680);
  // Zoom joins calls at a low rate and climbs: under a congested link the
  // climb stays paused, which is what starves a joining Zoom client
  // against an incumbent one (Fig 9a).
  p.start_rate = DataRate::kbps(150);
  p.sender_fec = 0.05;
  p.server_fec = 0.18;  // the §3.1 upstream/downstream asymmetry
  p.viewer_preset = ReceiveSideEstimator::Preset::kAggressive;
  p.sfu_uplink_preset = ReceiveSideEstimator::Preset::kAggressive;
  p.viewer_max_estimate = DataRate::mbps(3);
  p.encoder_run_sd = 0.04;
  // Fastest reconnect: aggressive keepalives and a tight watchdog, plus
  // FEC-backed loss tolerance so video is shed only under extreme loss.
  p.resilience.media_timeout = Duration::seconds(2);
  p.resilience.keepalive_initial = Duration::millis(200);
  p.resilience.keepalive_max = Duration::seconds(2);
  // Zoom keeps pushing FEC-protected video through §4.1's shaped-down
  // disruption (~40% smoothed loss) rather than shedding it; only
  // outage-grade loss rates trip its audio-only fallback.
  p.resilience.degrade_loss = 0.55;
  p.resilience.degrade_after = Duration::seconds(8);
  return p;
}

VcaProfile webex_base() {
  VcaProfile p;
  p.name = "webex";
  p.kind = VcaKind::kWebex;
  p.arch = Architecture::kSimulcastSfu;
  p.cc_name = "gcc";
  // Three simulcast copies (Chang et al.: Webex publishes a ladder up to
  // 720p; the server forwards one copy per viewer).
  p.layers = {
      {.width = 320, .rate = DataRate::kbps(200), .min_request_width = 0},
      {.width = 640, .rate = DataRate::kbps(600), .min_request_width = 640},
      {.width = 1280, .rate = DataRate::kbps(1700), .min_request_width = 1280},
  };
  p.nominal_video = DataRate::kbps(2500);
  p.start_rate = DataRate::kbps(600);
  p.viewer_preset = ReceiveSideEstimator::Preset::kGcc;
  p.sfu_uplink_preset = ReceiveSideEstimator::Preset::kGcc;
  p.viewer_max_estimate = DataRate::mbps(4);
  p.viewer_est_increase = 0.18;
  p.sfu_est_increase = 0.09;
  p.viewer_est_clamp = 1.3;
  p.encoder_run_sd = 0.05;
  // Between Meet and Teams on the recovery spectrum: a 3 s watchdog with
  // WebRTC-style probe backoff.
  p.resilience.media_timeout = Duration::millis(3000);
  p.resilience.keepalive_initial = Duration::millis(300);
  p.resilience.keepalive_max = Duration::seconds(4);
  return p;
}

}  // namespace

EncoderPolicy VcaProfile::policy_for_layer(int layer) const {
  switch (kind) {
    case VcaKind::kMeet:
      return layer == 0 ? EncoderPolicy(meet_low_policy)
                        : EncoderPolicy(meet_high_policy);
    case VcaKind::kTeams:
      return teams_policy;
    case VcaKind::kZoom:
      return [layer](DataRate target, int) {
        return zoom_layer_policy(layer, target);
      };
    case VcaKind::kWebex:
      return [layer](DataRate target, int max_width) {
        return webex_layer_policy(layer, target, max_width);
      };
  }
  return meet_high_policy;
}

DataRate VcaProfile::width_rate_cap(int max_width) const {
  // Receiver-driven encode ceiling: no VCA spends full bitrate on a video
  // nobody displays larger than a small tile.
  if (kind == VcaKind::kTeams) {
    if (max_width >= 1280) return DataRate::kbps(1400);
    if (max_width >= 960) return DataRate::kbps(1100);
    if (max_width >= 640) return DataRate::kbps(900);
    if (max_width >= 480) return DataRate::kbps(550);
    if (max_width >= 320) return DataRate::kbps(300);
    return DataRate::kbps(150);
  }
  // Meet/Zoom gate whole layers instead; cap is effectively unbounded.
  return DataRate::mbps(10);
}

StreamAllocation VcaProfile::allocate(DataRate total, int max_width,
                                      bool ultra_low) const {
  StreamAllocation out;
  switch (kind) {
    case VcaKind::kTeams: {
      DataRate t = std::min(total, width_rate_cap(max_width));
      out.items.push_back({.layer = 0, .target = t, .ultra_low = false});
      return out;
    }
    case VcaKind::kMeet: {
      if (layers.size() < 2) {
        // Single-stream variant (meet-nosimulcast ablation): the whole
        // budget rides one rate-adaptive stream, capped at its nominal.
        DataRate lo = std::clamp(total, DataRate::kbps(80), layers[0].rate);
        out.items.push_back({.layer = 0, .target = lo, .ultra_low = false});
        return out;
      }
      const DataRate low_full =
          ultra_low ? DataRate::kbps(110) : layers[0].rate;
      // High copy needs a viewer that wants >= 640 and leftover budget.
      DataRate hi_cap = max_width >= 960 ? DataRate::kbps(850)
                                         : DataRate::kbps(720);
      bool high_ok = max_width >= layers[1].min_request_width &&
                     total >= DataRate::kbps(460);
      if (high_ok) {
        DataRate hi = std::min(total - low_full, hi_cap);
        out.items.push_back({.layer = 0, .target = low_full, .ultra_low = ultra_low});
        out.items.push_back({.layer = 1, .target = hi, .ultra_low = false});
      } else {
        // Low copy absorbs the whole (small) budget — this is where Meet's
        // >90% uplink utilization at 0.3-0.5 Mbps comes from (Fig 1a), and
        // the width/fps reduction of Fig 2d-f. When every viewer's tile is
        // tiny (gallery with 7+ participants), there is nothing to spend
        // the budget on: the uplink collapses to ~0.2 Mbps (Fig 15b, n=7).
        DataRate cap =
            max_width <= 320 ? DataRate::kbps(180) : DataRate::kbps(420);
        // The ultra-low request must cap the spend here too: in a large
        // gallery every viewer's per-feed share is tiny, the SFU signals
        // ultra-low, and the *publishers* are all on this branch (their
        // tiles are small, so the high copy is gated out). Ignoring the
        // shrink kept every uplink at the full small-tile cap, which is
        // N x 70 kbps of excess on each viewer's already-starved downlink.
        if (ultra_low) cap = std::min(cap, DataRate::kbps(110));
        // Never spend above the congestion-controlled grant: the 80 kbps
        // quality floor applies only when the grant affords it, otherwise
        // a sub-floor grant (large calls squeeze per-client budgets hard)
        // turned into a permanent ~self-inflicted overload.
        DataRate floor = std::min(total, DataRate::kbps(80));
        DataRate lo = std::clamp(total, floor, cap);
        out.items.push_back({.layer = 0, .target = lo, .ultra_low = ultra_low});
      }
      return out;
    }
    case VcaKind::kWebex: {
      // Simulcast ladder: lower active copies publish at nominal and the
      // TOP active copy is rate-adaptive — it absorbs the whole leftover
      // budget (up to 1.2x its nominal). The activation thresholds
      // (lower nominals + 0.3x the new rung) are deliberately inside the
      // estimate each state can bootstrap: the uplink REMB is clamped to
      // 1.5x measured arrival, so a state must *spend* enough that the
      // estimate can reach the next rung's threshold, or the ladder
      // wedges at the bottom with viewers selecting copies the encoder
      // never activates.
      int eligible = 1;
      for (size_t i = 1; i < layers.size(); ++i) {
        if (max_width >= layers[i].min_request_width) {
          eligible = static_cast<int>(i) + 1;
        }
      }
      int active = 1;
      DataRate cum = layers[0].rate;
      for (int i = 1; i < eligible; ++i) {
        if (total < cum + layers[static_cast<size_t>(i)].rate * 0.3) break;
        cum = cum + layers[static_cast<size_t>(i)].rate;
        active = i + 1;
      }
      DataRate committed = DataRate::zero();
      for (int i = 0; i + 1 < active; ++i) {
        out.items.push_back({.layer = i,
                             .target = layers[static_cast<size_t>(i)].rate,
                             .ultra_low = false});
        committed = committed + layers[static_cast<size_t>(i)].rate;
      }
      const int top = active - 1;
      const DataRate spec = layers[static_cast<size_t>(top)].rate;
      DataRate rest = total > committed ? total - committed : DataRate::zero();
      // A lone base copy spends up to 450 kbps (not its 200k nominal) —
      // but only while a higher rung is *eligible*: the extra headroom is
      // what lets the estimate climb past the 640p rung's activation
      // point. When the tile width caps the ladder at the base (a large
      // gallery requesting 320-wide), there is nothing to bootstrap
      // toward, and overspending would undo the paper's tile-shrink →
      // bitrate-drop scaling.
      DataRate t = (top == 0 && eligible > 1)
                       ? std::min(rest, DataRate::kbps(450))
                       : std::clamp(rest, spec * 0.3, spec * 1.2);
      out.items.push_back({.layer = top, .target = t, .ultra_low = false});
      return out;
    }
    case VcaKind::kZoom: {
      // Activate layers bottom-up while they fit; the top active layer
      // absorbs the remaining budget (Zoom's encoder tracks its target
      // closely across SVC layers, §4.2). A layout that gates out upper
      // layers also caps the spend — this is the n=5 uplink knee of
      // Fig 15b (0.8 -> 0.4 Mbps when tiles shrink below 640).
      DataRate width_cap = DataRate::zero();
      for (const auto& l : layers) {
        if (max_width >= l.min_request_width) width_cap = width_cap + l.rate;
      }
      total = std::min(total, width_cap * 1.05);
      DataRate committed = DataRate::zero();
      int top = -1;
      for (size_t i = 0; i < layers.size(); ++i) {
        if (max_width < layers[i].min_request_width) break;
        if (i > 0 && committed + layers[i].rate * 0.6 > total) break;
        out.items.push_back({.layer = static_cast<int>(i),
                             .target = layers[i].rate,
                             .ultra_low = false});
        committed = committed + layers[i].rate;
        top = static_cast<int>(i);
      }
      if (top >= 0) {
        DataRate lower = committed - layers[static_cast<size_t>(top)].rate;
        DataRate spec = layers[static_cast<size_t>(top)].rate;
        DataRate remainder = total > lower ? total - lower : DataRate::kbps(50);
        out.items.back().target =
            std::clamp(remainder, spec * 0.5, spec * 1.4);
      }
      return out;
    }
  }
  return out;
}

VcaProfile vca_profile(const std::string& name) {
  if (name == "meet") return meet_base();
  if (name == "teams") return teams_base();
  if (name == "zoom") return zoom_base();
  if (name == "webex") return webex_base();
  if (name == "teams-chrome") {
    VcaProfile p = teams_base();
    p.name = "teams-chrome";
    p.platform = Platform::kChrome;
    // Browser client uses ~72% of the native client's rate at the same
    // capacity (Fig 1c: 0.61 vs 0.84 Mbps under 1 Mbps shaping).
    p.target_margin = 0.72;
    p.nominal_run_sd = 0.12;
    return p;
  }
  if (name == "zoom-chrome") {
    VcaProfile p = zoom_base();
    p.name = "zoom-chrome";
    p.platform = Platform::kChrome;
    // Paper: Zoom's utilization is similar across native and browser.
    return p;
  }
  // --- ablation variants (bench_ablation) ---
  if (name == "zoom-noprobe") {
    VcaProfile p = zoom_base();
    p.name = "zoom-noprobe";
    p.cc_name = "zoom-noprobe";
    return p;
  }
  if (name == "teams-gcc") {
    VcaProfile p = teams_base();
    p.name = "teams-gcc";
    p.cc_name = "gcc";
    return p;
  }
  if (name == "meet-nosimulcast") {
    VcaProfile p = meet_base();
    p.name = "meet-nosimulcast";
    p.layers = {{.width = 640, .rate = DataRate::kbps(850),
                 .min_request_width = 0}};
    return p;
  }
  return meet_base();
}

std::vector<std::string> all_profile_names() {
  return {"meet", "teams", "zoom", "teams-chrome", "zoom-chrome"};
}

std::vector<std::string> conference_profile_names() {
  return {"meet", "teams", "zoom", "webex"};
}

}  // namespace vca
