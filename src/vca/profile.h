// Per-VCA behavioral profiles.
//
// A VcaProfile is the complete parameterization of one application
// (and platform variant): congestion controller, streaming architecture,
// stream/layer ladder, encoder adaptation policy, FEC strategy, estimator
// aggressiveness, and the per-run variability knobs. Everything the paper
// attributes to "proprietary design differences" (§2.1) is data here.
#pragma once

#include <string>
#include <vector>

#include "cc/remb.h"
#include "core/inline_vec.h"
#include "core/time.h"
#include "core/units.h"
#include "media/encoder.h"
#include "vca/layout.h"

namespace vca {

enum class Platform { kNative, kChrome };

enum class Architecture {
  kRelay,          // Teams: server forwards; rate control is end-to-end
  kSimulcastSfu,   // Meet: sender uploads multiple copies; server selects
  kSvcSfu,         // Zoom: layered coding; server selects layers, adds FEC
};

// One simulcast copy (Meet) or SVC layer (Zoom) or the single stream (Teams).
struct LayerSpec {
  int width = 640;          // native encode width of this layer
  DataRate rate;            // nominal rate of this layer at full quality
  int min_request_width = 0;  // layer active only if a viewer wants >= this
};

// Result of splitting the congestion-controlled budget across layers.
// Computed every client tick (10x/sec per client); the inline vector keeps
// that hot path heap-free (no profile has more than 4 layers).
struct StreamAllocation {
  struct Item {
    int layer = 0;
    DataRate target;
    bool ultra_low = false;  // Meet low-stream quirk variant (§3.2)
  };
  InlineVec<Item, 4> items;
};

// Client resilience parameterization: how an app detects a dead path,
// how hard it hammers reconnect probes, and when it sheds video to keep
// audio alive. The §4 recovery differences between the three apps extend
// to outages: these knobs are per-profile data, like everything else the
// paper attributes to proprietary design.
struct ResilienceSpec {
  // Watchdog: no keepalive echo and no positive receive-rate feedback for
  // this long => the media path is declared dead.
  Duration media_timeout = Duration::millis(2500);
  // Keepalive cadence while healthy, and the exponential backoff schedule
  // for reconnect probes while the path is down.
  Duration keepalive_interval = Duration::seconds(1);
  Duration keepalive_initial = Duration::millis(250);
  Duration keepalive_max = Duration::seconds(4);
  double keepalive_backoff = 2.0;
  // Graceful degradation: sustained uplink loss above `degrade_loss` for
  // `degrade_after` sheds video (audio-only); loss back under
  // `restore_loss` for `restore_hold` re-enables it.
  double degrade_loss = 0.25;
  Duration degrade_after = Duration::seconds(4);
  double restore_loss = 0.08;
  Duration restore_hold = Duration::seconds(4);
  // Re-ramp from start_rate after a reconnect (vs. trusting pre-outage
  // controller state).
  bool reset_cc_on_reconnect = true;
};

struct VcaProfile {
  std::string name;
  VcaKind kind = VcaKind::kMeet;
  Platform platform = Platform::kNative;
  Architecture arch = Architecture::kSimulcastSfu;

  std::string cc_name = "gcc";
  DataRate nominal_video;              // CC ceiling (sum of layer payloads)
  DataRate start_rate = DataRate::kbps(500);
  DataRate audio_rate = DataRate::kbps(32);

  double sender_fec = 0.0;             // client-side FEC overhead (Zoom)
  double server_fec = 0.0;             // SFU adds FEC downstream (Zoom, §3.1)

  std::vector<LayerSpec> layers;

  ReceiveSideEstimator::Preset viewer_preset = ReceiveSideEstimator::Preset::kGcc;
  ReceiveSideEstimator::Preset sfu_uplink_preset =
      ReceiveSideEstimator::Preset::kGcc;
  DataRate viewer_max_estimate = DataRate::mbps(4);  // total downlink appetite
  // Optional growth-rate overrides on the presets (0 = keep the preset's).
  // Meet's viewer estimate climbs fast (sub-10 s downlink recovery, Fig 5b)
  // while its uplink REMB at the SFU recovers on the ~20 s scale (Fig 4b).
  double viewer_est_increase = 0.0;
  double sfu_est_increase = 0.0;
  // Growth ceiling (x receive rate) for the viewer estimate; Meet's tight
  // ceiling is what pins its constrained downlink at the low simulcast
  // copy (Fig 1b) — upgrades happen only when probe padding survives.
  double viewer_est_clamp = 0.0;

  // Per-run variability: lognormal sigma applied to the encoder's rate
  // mapping and to the nominal target. Teams' wide confidence bands in
  // Figs. 1-2 come from large values here.
  double encoder_run_sd = 0.04;
  double nominal_run_sd = 0.0;

  // Baseline encoder hiccups. Teams shows a 3.6% freeze ratio even on an
  // unconstrained link (§3.2, Fig 3a) — emulated as sporadic encode stalls.
  Duration stall_every_mean = Duration::zero();  // zero = no stalls
  Duration stall_len = Duration::zero();

  // Browser clients of Teams use noticeably less bandwidth than native
  // (Fig 1c); modeled as a safety margin on the CC target.
  double target_margin = 1.0;

  // Teams anomaly (§6.2): pinned client's uplink grows with participant
  // count even though all traffic goes to one server.
  bool speaker_uplink_anomaly = false;

  Duration feedback_interval = Duration::millis(100);

  // Outage detection / reconnect / degradation behavior.
  ResilienceSpec resilience;

  // --- behavior ---
  EncoderPolicy policy_for_layer(int layer) const;
  StreamAllocation allocate(DataRate total, int max_width, bool ultra_low) const;
  // Receiver-driven encode ceiling for a given requested width.
  DataRate width_rate_cap(int max_width) const;
};

// Factory: "meet", "teams", "zoom", "webex", "teams-chrome", "zoom-chrome".
VcaProfile vca_profile(const std::string& name);

// All profile names, in the order the paper's tables list them. "webex"
// (Chang et al.'s fourth app, used by the conference benches) is kept out
// of this list on purpose: fuzz-scenario generation draws from it by
// index, and growing it would silently re-roll every existing seed.
std::vector<std::string> all_profile_names();

// Profiles the cascaded-conference benches sweep (the Chang et al. app
// set): the paper trio plus Webex.
std::vector<std::string> conference_profile_names();

}  // namespace vca
