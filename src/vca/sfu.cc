#include "vca/sfu.h"

#include <algorithm>

namespace vca {

SfuServer::SfuServer(EventScheduler* sched, Host* host, Config cfg)
    : sched_(sched), host_(host), cfg_(std::move(cfg)) {}

void SfuServer::start() {
  if (started_) return;
  started_ = true;
  tick();
}

SfuServer::PublisherLeg* SfuServer::leg_for(NodeId origin) {
  for (auto& l : legs_) {
    if (l->origin == origin) return l.get();
  }
  return nullptr;
}

void SfuServer::add_publisher(VcaClient* client) {
  auto leg = std::make_unique<PublisherLeg>();
  leg->client = client;
  leg->origin = client->host()->id();
  leg->keyframe_request = [client](int layer) { client->request_keyframe(layer); };
  auto est_cfg = ReceiveSideEstimator::preset(
      cfg_.profile.sfu_uplink_preset, DataRate::kbps(500), DataRate::mbps(10));
  if (cfg_.profile.sfu_est_increase > 0.0) {
    est_cfg.increase_per_sec = cfg_.profile.sfu_est_increase;
  }
  leg->uplink_estimator = std::make_unique<ReceiveSideEstimator>(est_cfg);

  const size_t n_layers = cfg_.profile.layers.size();
  leg->latest.resize(n_layers);
  leg->has_latest.assign(n_layers, false);
  PublisherLeg* raw = leg.get();

  for (size_t i = 0; i < n_layers; ++i) {
    int layer = static_cast<int>(i);
    RtpReceiver::Config rc;
    rc.ssrc = client->layer_ssrc(layer);
    rc.feedback_flow = client->layer_flow(layer);
    rc.feedback_dst = client->host()->id();
    rc.report_interval = cfg_.profile.feedback_interval;
    auto receiver = std::make_unique<RtpReceiver>(sched_, host_, rc);
    receiver->set_arrival_observer(raw->uplink_estimator.get());
    receiver->set_frame_handler([this, raw, layer](const DecodedFrame& f) {
      on_video_frame(raw, layer, f);
    });
    RtpReceiver* recv = receiver.get();
    host_->register_flow(client->layer_flow(layer), [this, recv](Packet pk) {
      if (online_ && pk.is_media()) recv->handle_packet(pk);
    });
    leg->owned_flows.push_back(client->layer_flow(layer));
    leg->layer_receivers.push_back(std::move(receiver));
  }

  RtpReceiver::Config ac;
  ac.ssrc = client->audio_ssrc();
  ac.feedback_flow = client->audio_flow();
  ac.feedback_dst = client->host()->id();
  ac.enable_nack = false;
  ac.fir_after = Duration::seconds(3600);
  leg->audio_receiver = std::make_unique<RtpReceiver>(sched_, host_, ac);
  leg->audio_receiver->set_frame_handler(
      [this, raw](const DecodedFrame& f) { on_audio_frame(raw, f); });
  RtpReceiver* arecv = leg->audio_receiver.get();
  host_->register_flow(client->audio_flow(), [this, arecv](Packet pk) {
    if (online_ && pk.is_media()) arecv->handle_packet(pk);
  });
  leg->owned_flows.push_back(client->audio_flow());

  // Keepalive echo: bounce the probe straight back. The echo reaching the
  // client is its proof the round trip (and this server) is alive. The
  // copy is heap-free: keepalives carry no metadata (monostate variant).
  NodeId client_node = client->host()->id();
  host_->register_flow(client->keepalive_flow(), [this, client_node](Packet pk) {
    if (!online_ || pk.type != PacketType::kKeepalive) return;
    Packet echo = pk;
    echo.dst = client_node;
    echo.created_at = sched_->now();
    host_->send(echo);
  });
  leg->owned_flows.push_back(client->keepalive_flow());

  legs_.push_back(std::move(leg));
}

void SfuServer::add_remote_publisher(NodeId origin, NodeId peer_sfu,
                                     FlowId flow_base,
                                     std::function<void(int)> keyframe_request) {
  auto leg = std::make_unique<PublisherLeg>();
  leg->client = nullptr;
  leg->origin = origin;
  leg->keyframe_request = std::move(keyframe_request);

  const size_t n_layers = cfg_.profile.layers.size();
  leg->latest.resize(n_layers);
  leg->has_latest.assign(n_layers, false);
  PublisherLeg* raw = leg.get();

  for (size_t i = 0; i < n_layers; ++i) {
    int layer = static_cast<int>(i);
    FlowId flow = flow_base + static_cast<FlowId>(i);
    RtpReceiver::Config rc;
    rc.ssrc = static_cast<uint32_t>(flow);
    rc.feedback_flow = flow;
    rc.feedback_dst = peer_sfu;
    rc.report_interval = cfg_.profile.feedback_interval;
    auto receiver = std::make_unique<RtpReceiver>(sched_, host_, rc);
    receiver->set_frame_handler([this, raw, layer](const DecodedFrame& f) {
      on_video_frame(raw, layer, f);
    });
    RtpReceiver* recv = receiver.get();
    host_->register_flow(flow, [this, recv](Packet pk) {
      if (online_ && pk.is_media()) recv->handle_packet(pk);
    });
    leg->owned_flows.push_back(flow);
    leg->layer_receivers.push_back(std::move(receiver));
  }

  FlowId audio_flow = flow_base + static_cast<FlowId>(n_layers);
  RtpReceiver::Config ac;
  ac.ssrc = static_cast<uint32_t>(audio_flow);
  ac.feedback_flow = audio_flow;
  ac.feedback_dst = peer_sfu;
  ac.enable_nack = false;
  ac.fir_after = Duration::seconds(3600);
  leg->audio_receiver = std::make_unique<RtpReceiver>(sched_, host_, ac);
  leg->audio_receiver->set_frame_handler(
      [this, raw](const DecodedFrame& f) { on_audio_frame(raw, f); });
  RtpReceiver* arecv = leg->audio_receiver.get();
  host_->register_flow(audio_flow, [this, arecv](Packet pk) {
    if (online_ && pk.is_media()) arecv->handle_packet(pk);
  });
  leg->owned_flows.push_back(audio_flow);

  legs_.push_back(std::move(leg));
}

void SfuServer::add_relay_out(VcaClient* publisher, NodeId peer_sfu,
                              FlowId flow_base) {
  PublisherLeg* leg = leg_for(publisher->host()->id());
  if (leg == nullptr || !leg->is_local()) return;  // only local legs relay

  auto relay = std::make_unique<RelayOut>();
  relay->leg = leg;
  relay->peer = peer_sfu;
  const size_t n_layers = cfg_.profile.layers.size();
  relay->next_frame.assign(n_layers, 0);

  for (size_t i = 0; i < n_layers; ++i) {
    int layer = static_cast<int>(i);
    FlowId flow = flow_base + static_cast<FlowId>(i);
    RtpSender::Config sc;
    sc.ssrc = static_cast<uint32_t>(flow);
    sc.flow = flow;
    sc.dst = peer_sfu;
    sc.pacing_rate = DataRate::mbps(8);
    auto sender = std::make_unique<RtpSender>(sched_, host_, sc);
    RtpSender* raw_sender = sender.get();
    // The peer's ingress receivers report back on the same flow: NACKs
    // repair inter-SFU loss from this sender's history, and a stalled
    // ingress FIRs straight through to the origin encoder.
    host_->register_flow(flow, [this, raw_sender, leg, layer](Packet pk) {
      if (!online_ || pk.type != PacketType::kRtcp) return;
      raw_sender->handle_rtcp(pk.rtcp());
      if (raw_sender->take_keyframe_request() && leg->keyframe_request) {
        leg->keyframe_request(layer);
      }
    });
    relay->owned_flows.push_back(flow);
    relay->layer_senders.push_back(std::move(sender));
  }

  FlowId audio_flow = flow_base + static_cast<FlowId>(n_layers);
  RtpSender::Config ac;
  ac.ssrc = static_cast<uint32_t>(audio_flow);
  ac.flow = audio_flow;
  ac.dst = peer_sfu;
  ac.media_type = PacketType::kRtpAudio;
  relay->audio_sender = std::make_unique<RtpSender>(sched_, host_, ac);

  relays_.push_back(std::move(relay));
}

void SfuServer::subscribe(VcaClient* viewer, VcaClient* publisher,
                          FlowId video_flow, FlowId audio_flow) {
  subscribe_origin(viewer, publisher->host()->id(), video_flow, audio_flow);
}

void SfuServer::subscribe_origin(VcaClient* viewer, NodeId origin,
                                 FlowId video_flow, FlowId audio_flow) {
  PublisherLeg* leg = leg_for(origin);
  if (leg == nullptr) return;

  auto sub = std::make_unique<Subscription>();
  sub->viewer = viewer;
  sub->leg = leg;
  sub->video_flow = video_flow;
  sub->audio_flow = audio_flow;
  sub->viewer_remb = DataRate::kbps(400);

  RtpSender::Config vc;
  vc.ssrc = video_flow;  // unique per subscription by construction
  vc.flow = video_flow;
  vc.dst = viewer->host()->id();
  vc.pacing_rate = DataRate::mbps(8);
  vc.fec_overhead = cfg_.profile.server_fec;  // Zoom server-side FEC (§3.1)
  sub->video_sender = std::make_unique<RtpSender>(sched_, host_, vc);

  RtpSender::Config ac;
  ac.ssrc = video_flow + 1000000;
  ac.flow = audio_flow;
  ac.dst = viewer->host()->id();
  ac.media_type = PacketType::kRtpAudio;
  sub->audio_sender = std::make_unique<RtpSender>(sched_, host_, ac);

  // Viewer RTCP for this feed arrives on the video flow.
  Subscription* raw = sub.get();
  host_->register_flow(video_flow, [this, raw](Packet pk) {
    if (!online_ || pk.type != PacketType::kRtcp) return;
    const RtcpMeta& fb = pk.rtcp();
    if (!fb.remb.is_zero()) raw->viewer_remb = fb.remb;
    if (!fb.receive_rate.is_zero()) raw->viewer_rx = fb.receive_rate;
    raw->viewer_loss = fb.loss_fraction;
    raw->viewer_qd_ms = fb.queuing_delay_ms;
    raw->video_sender->handle_rtcp(fb);
    if (raw->video_sender->take_keyframe_request()) {
      // Propagate the viewer's FIR upstream to the real encoder.
      bool simulcast = cfg_.profile.kind == VcaKind::kMeet ||
                       cfg_.profile.kind == VcaKind::kWebex;
      int layer = simulcast ? raw->selected_stream : 0;
      if (raw->leg->keyframe_request) raw->leg->keyframe_request(layer);
    }
  });

  // Defaults depend on architecture.
  if (cfg_.profile.kind == VcaKind::kMeet ||
      cfg_.profile.kind == VcaKind::kWebex) {
    sub->selected_stream = static_cast<int>(cfg_.profile.layers.size()) - 1;
  } else if (cfg_.profile.kind == VcaKind::kZoom) {
    sub->active_layers = static_cast<int>(cfg_.profile.layers.size());
  }
  subs_.push_back(std::move(sub));
}

void SfuServer::set_desired_width(VcaClient* viewer, VcaClient* publisher,
                                  int width) {
  set_desired_width_origin(viewer, publisher->host()->id(), width);
}

void SfuServer::set_desired_width_origin(VcaClient* viewer, NodeId origin,
                                         int width) {
  for (auto& s : subs_) {
    if (s->viewer == viewer && s->leg->origin == origin) {
      s->desired_width = width;
    }
  }
}

void SfuServer::set_pinned(VcaClient* viewer, VcaClient* publisher, bool pinned) {
  set_pinned_origin(viewer, publisher->host()->id(), pinned);
}

void SfuServer::set_pinned_origin(VcaClient* viewer, NodeId origin, bool pinned) {
  for (auto& s : subs_) {
    if (s->viewer == viewer && s->leg->origin == origin) s->pinned = pinned;
  }
}

// --- teardown ---------------------------------------------------------------

void SfuServer::retire_subscription(std::unique_ptr<Subscription> sub) {
  retired_forwarded_packets_ +=
      sub->video_sender->sent_packets() + sub->audio_sender->sent_packets();
  host_->unregister_flow(sub->video_flow);
  sub->video_sender->shutdown();
  sub->audio_sender->shutdown();
  sub->leg = nullptr;  // the leg may be torn down next; never follow this
  sub_graveyard_.push_back(std::move(sub));
}

void SfuServer::retire_relay(std::unique_ptr<RelayOut> relay) {
  for (const auto& s : relay->layer_senders) {
    retired_forwarded_packets_ += s->sent_packets();
    s->shutdown();
  }
  retired_forwarded_packets_ += relay->audio_sender->sent_packets();
  relay->audio_sender->shutdown();
  for (FlowId f : relay->owned_flows) host_->unregister_flow(f);
  relay->leg = nullptr;
  relay_graveyard_.push_back(std::move(relay));
}

void SfuServer::unsubscribe(VcaClient* viewer, NodeId origin) {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if ((*it)->viewer == viewer && (*it)->leg->origin == origin) {
      retire_subscription(std::move(*it));
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void SfuServer::unsubscribe_viewer(VcaClient* viewer) {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if ((*it)->viewer == viewer) {
      retire_subscription(std::move(*it));
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void SfuServer::remove_publisher(VcaClient* publisher) {
  remove_leg(publisher->host()->id());
}

void SfuServer::remove_remote_publisher(NodeId origin) { remove_leg(origin); }

void SfuServer::remove_leg(NodeId origin) {
  PublisherLeg* leg = leg_for(origin);
  if (leg == nullptr) return;

  // Subscriptions fed by this leg go first (their senders reference it).
  for (auto it = subs_.begin(); it != subs_.end();) {
    if ((*it)->leg == leg) {
      retire_subscription(std::move(*it));
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  // Then any relay egress of this leg.
  for (auto it = relays_.begin(); it != relays_.end();) {
    if ((*it)->leg == leg) {
      retire_relay(std::move(*it));
      it = relays_.erase(it);
    } else {
      ++it;
    }
  }
  // Finally the uplink (or relay-ingress) flow handlers and the leg itself.
  for (auto it = legs_.begin(); it != legs_.end(); ++it) {
    if (it->get() == leg) {
      for (FlowId f : leg->owned_flows) host_->unregister_flow(f);
      for (const auto& r : leg->layer_receivers) r->shutdown();
      if (leg->audio_receiver) leg->audio_receiver->shutdown();
      leg_graveyard_.push_back(std::move(*it));
      legs_.erase(it);
      break;
    }
  }
}

void SfuServer::remove_relay_out(NodeId origin, NodeId peer_sfu) {
  for (auto it = relays_.begin(); it != relays_.end();) {
    if ((*it)->leg->origin == origin && (*it)->peer == peer_sfu) {
      retire_relay(std::move(*it));
      it = relays_.erase(it);
    } else {
      ++it;
    }
  }
}

void SfuServer::note_departed(NodeId viewer_node) {
  departed_.insert(viewer_node);
}

void SfuServer::append_invariant_violations(std::vector<std::string>* out) const {
  if (forwards_to_departed_ > 0) {
    out->push_back("sfu " + host_->name() + ": forwarded " +
                   std::to_string(forwards_to_departed_) +
                   " frames to departed clients");
  }
  for (const auto& s : subs_) {
    if (departed(s->viewer->host()->id())) {
      out->push_back("sfu " + host_->name() +
                     ": stale subscription for departed viewer " +
                     s->viewer->host()->name());
    }
  }
}

// --- media fanout -----------------------------------------------------------

void SfuServer::on_video_frame(PublisherLeg* leg, int layer,
                               const DecodedFrame& f) {
  if (!online_) return;
  leg->latest[static_cast<size_t>(layer)] = f;
  leg->has_latest[static_cast<size_t>(layer)] = true;

  // Cascade first: a local publisher's frame crosses each inter-SFU link
  // exactly once, unselected and unthinned — the peer SFU runs its own
  // per-viewer selection. Remote legs never relay (no loops).
  if (leg->is_local()) {
    for (auto& r : relays_) {
      if (r->leg == leg) relay_video(*r, layer, f);
    }
  }

  for (auto& s : subs_) {
    if (s->leg != leg) continue;
    switch (cfg_.profile.kind) {
      case VcaKind::kTeams: {
        DecodedFrame out = f;
        // Emulated §6.1 anomaly: large Teams calls thin the relayed
        // stream even though the publisher's uplink is unchanged.
        s->temporal_divisor = relay_divisor_;
        forward(*s, out, /*thinnable=*/true);
        break;
      }
      case VcaKind::kMeet:
      case VcaKind::kWebex: {
        if (layer != s->selected_stream) break;
        forward(*s, f, /*thinnable=*/true);
        break;
      }
      case VcaKind::kZoom: {
        // Composite SVC forwarding, triggered by base-layer frames:
        // byte count is the sum of the active layers; reported quality is
        // the top active layer's.
        if (layer != 0) break;
        DecodedFrame out = f;
        int top = 0;
        for (int l = 1; l < s->active_layers &&
                        l < static_cast<int>(leg->latest.size());
             ++l) {
          if (!leg->has_latest[static_cast<size_t>(l)]) continue;
          const DecodedFrame& lf = leg->latest[static_cast<size_t>(l)];
          // Only combine fresh enhancement frames (the encoder may have
          // stopped a layer under uplink pressure).
          if (sched_->now() - lf.delivered_at > Duration::millis(150)) continue;
          out.bytes += lf.bytes;
          top = l;
        }
        const DecodedFrame& top_frame = leg->latest[static_cast<size_t>(top)];
        out.width = top_frame.width;
        out.qp = top_frame.qp;
        forward(*s, out, /*thinnable=*/false);
        break;
      }
    }
  }
}

// Fanout cost audit: the SFU re-originates every forwarded stream, so the
// unavoidable per-extra-viewer cost is exactly one EncodedFrame (a flat
// stack struct) handed to that viewer's RtpSender, which packetizes it
// into the viewer's own freshly-built packets. No received Packet is ever
// copied per viewer — reassembled frames fan out, packets do not.
void SfuServer::forward(Subscription& sub, const DecodedFrame& f,
                        bool thinnable) {
  if (departed(sub.viewer->host()->id())) {
    // "No forwarding to departed clients" sim-invariant: every exit path
    // must have torn this subscription down before media reaches it.
    ++forwards_to_departed_;
  }
  if (thinnable && sub.temporal_divisor > 1 && !f.keyframe) {
    if (++sub.thinning_counter % static_cast<uint64_t>(sub.temporal_divisor) != 0) {
      return;
    }
  }
  EncodedFrame out;
  out.ssrc = sub.video_sender->ssrc();
  out.frame_id = sub.next_video_frame++;
  out.bytes = f.bytes;
  out.keyframe = f.keyframe;
  out.spatial_layer = f.spatial_layer;
  out.width = f.width;
  out.fps = sub.temporal_divisor > 1 ? f.fps / sub.temporal_divisor : f.fps;
  out.qp = f.qp;
  out.capture_time = f.capture_time;
  sub.video_sender->send_frame(out);
}

void SfuServer::relay_video(RelayOut& relay, int layer, const DecodedFrame& f) {
  EncodedFrame out;
  out.ssrc = relay.layer_senders[static_cast<size_t>(layer)]->ssrc();
  out.frame_id = relay.next_frame[static_cast<size_t>(layer)]++;
  out.bytes = f.bytes;
  out.keyframe = f.keyframe;
  out.spatial_layer = f.spatial_layer;
  out.width = f.width;
  out.fps = f.fps;
  out.qp = f.qp;
  out.capture_time = f.capture_time;
  relay.layer_senders[static_cast<size_t>(layer)]->send_frame(out);
}

void SfuServer::on_audio_frame(PublisherLeg* leg, const DecodedFrame& f) {
  if (!online_) return;
  if (leg->is_local()) {
    for (auto& r : relays_) {
      if (r->leg != leg) continue;
      EncodedFrame out;
      out.ssrc = r->audio_sender->ssrc();
      out.frame_id = r->next_audio_frame++;
      out.bytes = f.bytes;
      out.keyframe = true;
      out.fps = f.fps;
      out.capture_time = f.capture_time;
      r->audio_sender->send_frame(out);
    }
  }
  for (auto& s : subs_) {
    if (s->leg != leg) continue;
    if (departed(s->viewer->host()->id())) ++forwards_to_departed_;
    EncodedFrame out;
    out.ssrc = s->audio_sender->ssrc();
    out.frame_id = s->next_audio_frame++;
    out.bytes = f.bytes;
    out.keyframe = true;
    out.fps = f.fps;
    out.capture_time = f.capture_time;
    s->audio_sender->send_frame(out);
  }
}

void SfuServer::tick() {
  if (!online_) {  // outage: keep the clock, do no work
    sched_->schedule(cfg_.tick, [this] { tick(); });
    return;
  }
  // Split each viewer's downlink estimate across its feeds, then update
  // per-subscription stream/layer selection. Viewers are processed in
  // first-appearance (subs_ insertion) order: a pointer-keyed std::map
  // here would make per-tick processing order follow heap layout, which
  // diverges between identically-seeded runs once sims execute on worker
  // threads. The grouping runs as nested scans over subs_ rather than
  // materializing a per-tick vector-of-vectors — this fires 10x/sec in
  // every simulated call, and the handful of subscriptions per SFU makes
  // the O(n^2) scan cheaper than the allocations it replaces.
  for (size_t i = 0; i < subs_.size(); ++i) {
    VcaClient* viewer = subs_[i]->viewer;
    bool seen_before = false;
    for (size_t j = 0; j < i; ++j) {
      if (subs_[j]->viewer == viewer) {
        seen_before = true;
        break;
      }
    }
    if (seen_before) continue;

    DataRate budget = subs_[i]->viewer_remb;  // first sub carries the REMB
    bool has_pinned = false;
    int n = 0;
    for (size_t j = i; j < subs_.size(); ++j) {
      if (subs_[j]->viewer != viewer) continue;
      has_pinned |= subs_[j]->pinned;
      ++n;
    }
    for (size_t j = i; j < subs_.size(); ++j) {
      if (subs_[j]->viewer != viewer) continue;
      Subscription* s = subs_[j].get();
      if (has_pinned) {
        s->share = s->pinned ? budget * 0.75
                             : budget * (0.25 / std::max(1, n - 1));
      } else {
        s->share = budget * (1.0 / n);
      }
      update_selection(*s);
      maybe_probe(*s);
    }
  }
  sched_->schedule(cfg_.tick, [this] { tick(); });
}

void SfuServer::maybe_probe(Subscription& sub) {
  // The viewer's delay-based estimate is clamped to ~1.5x what actually
  // arrives, so after a downgrade it can never climb back by itself.
  // Real SFUs (and Zoom's server, with FEC) send probe padding to let the
  // estimate grow — this is what makes Meet/Zoom downlink recovery fast
  // (Fig 5b) while relay-only Teams stays slow.
  const VcaProfile& p = cfg_.profile;
  if (p.kind == VcaKind::kTeams) return;
  if (sub.viewer_loss > 0.05) return;  // genuinely congested: do not pile on

  // Is there anything to upgrade to?
  bool wants_upgrade = false;
  if (p.kind == VcaKind::kMeet) {
    const int top = static_cast<int>(p.layers.size()) - 1;
    bool width_ok = sub.desired_width >= p.layers.back().min_request_width;
    wants_upgrade =
        width_ok && !(sub.selected_stream == top && sub.temporal_divisor == 1);
  } else if (p.kind == VcaKind::kWebex) {
    int top_eligible = 0;
    for (size_t i = 0; i < p.layers.size(); ++i) {
      if (sub.desired_width >= p.layers[i].min_request_width) {
        top_eligible = static_cast<int>(i);
      }
    }
    wants_upgrade = sub.selected_stream < top_eligible;
  } else {  // Zoom
    int max_layers = 0;
    for (const auto& l : p.layers) {
      if (sub.desired_width < l.min_request_width) break;
      ++max_layers;
    }
    wants_upgrade = sub.active_layers < max_layers;
  }
  TimePoint now = sched_->now();
  if (!wants_upgrade) return;

  // A growing standing queue at the viewer means the probe is the problem:
  // stop pushing.
  if (sub.viewer_qd_ms > 40.0) {
    sub.cooldown_until = now + Duration::seconds(3);
    return;
  }

  // Probe cycle: pad continuously while the path looks clean, abort the
  // moment the viewer reports loss, then cool down before retrying. On a
  // genuinely constrained link every probe dies within a feedback interval
  // and the mean utilization stays pinned near the low tier (Fig 1b's
  // Meet plateau); after a disruption *ends*, probes run uninterrupted and
  // the viewer's estimate climbs to the upgrade threshold within seconds
  // (Fig 5b's fast Meet/Zoom downlink recovery).
  if (sub.viewer_loss > 0.03) {
    sub.cooldown_until =
        now + (p.kind == VcaKind::kZoom ? Duration::seconds(2)
                                        : Duration::seconds(3));
    return;
  }
  if (now < sub.cooldown_until) return;

  double factor = p.kind == VcaKind::kZoom ? 0.5 : 0.6;
  int bytes = static_cast<int>(sub.share.bits_per_sec() * factor *
                               cfg_.tick.seconds() / 8.0);
  if (bytes > 0) sub.video_sender->send_padding(bytes);
}

void SfuServer::update_selection(Subscription& sub) {
  const VcaProfile& p = cfg_.profile;
  double kbps = sub.share.kbps_f();

  switch (p.kind) {
    case VcaKind::kTeams:
      break;  // relay: nothing to select
    case VcaKind::kMeet: {
      // Desired state from the budget: full high copy, thinned high copy,
      // or the low copy (Fig 1b's 39-70% utilization knee; Fig 2a's fps
      // staircase between 0.7 and 1.0 Mbps).
      const int top = static_cast<int>(p.layers.size()) - 1;
      int want_stream;
      int want_div = 1;
      bool width_ok = sub.desired_width >= p.layers.back().min_request_width;
      // Upgrades must be *validated*: the viewer has to have demonstrably
      // received at the next tier's rate (probe padding supplies the extra
      // bytes). An estimate inflated by slow creep is not enough — this is
      // what pins a constrained downlink at the low copy (Fig 1b).
      double rx_kbps = sub.viewer_rx.kbps_f();
      if (width_ok && kbps >= 730.0) {
        want_stream = top;
      } else if (width_ok && kbps >= 500.0) {
        want_stream = top;
        want_div = 2;
      } else {
        want_stream = 0;
        if (top == 0 && kbps < 500.0) want_div = 2;  // single-stream ablation
      }
      auto rank = [](int stream, int div) { return stream == 0 ? 0 : (div > 1 ? 1 : 2); };
      if (rank(want_stream, want_div) > rank(sub.selected_stream, sub.temporal_divisor)) {
        double need = want_div > 1 ? 500.0 : 730.0;
        if (rx_kbps < need * 1.02) {
          want_stream = sub.selected_stream;
          want_div = sub.temporal_divisor;
        }
      }
      sub.wants_ultra_low = kbps < 170.0;
      if (want_stream != sub.selected_stream || want_div != sub.temporal_divisor) {
        if (++sub.debounce >= 3) {  // ~300 ms of hysteresis
          bool stream_changed = want_stream != sub.selected_stream;
          sub.selected_stream = want_stream;
          sub.temporal_divisor = want_div;
          sub.debounce = 0;
          if (stream_changed && sub.leg->keyframe_request) {
            sub.leg->keyframe_request(want_stream);
          }
        }
      } else {
        sub.debounce = 0;
      }
      break;
    }
    case VcaKind::kWebex: {
      // Generalized simulcast selection over the profile's ladder: the
      // highest copy the viewer's tile is eligible for whose nominal rate
      // fits the share, with the same rx-validated upgrade rule as Meet.
      const auto& layers = p.layers;
      int want = 0;
      for (int i = static_cast<int>(layers.size()) - 1; i >= 1; --i) {
        size_t idx = static_cast<size_t>(i);
        if (sub.desired_width < layers[idx].min_request_width) continue;
        if (kbps >= layers[idx].rate.kbps_f() * 1.1) {
          want = i;
          break;
        }
      }
      if (want > sub.selected_stream) {
        double need = layers[static_cast<size_t>(want)].rate.kbps_f();
        if (sub.viewer_rx.kbps_f() < need * 1.02) want = sub.selected_stream;
      }
      sub.wants_ultra_low = false;
      if (want != sub.selected_stream) {
        if (++sub.debounce >= 3) {
          sub.selected_stream = want;
          sub.debounce = 0;
          if (sub.leg->keyframe_request) sub.leg->keyframe_request(want);
        }
      } else {
        sub.debounce = 0;
      }
      break;
    }
    case VcaKind::kZoom: {
      // Keep adding layers while the cumulative nominal rate fits.
      double cum = 0.0;
      int k = 0;
      for (size_t i = 0; i < p.layers.size(); ++i) {
        if (sub.desired_width < p.layers[i].min_request_width) break;
        cum += p.layers[i].rate.kbps_f();
        if (i > 0 && cum * 1.08 > kbps) break;
        k = static_cast<int>(i) + 1;
      }
      sub.active_layers = std::max(1, k);
      break;
    }
  }
}

DataRate SfuServer::min_viewer_share_for(VcaClient* publisher) const {
  return min_viewer_share_for_origin(publisher->host()->id());
}

DataRate SfuServer::min_viewer_share_for_origin(NodeId origin) const {
  DataRate best = DataRate::mbps(1000);
  bool any = false;
  for (const auto& s : subs_) {
    if (s->leg->origin != origin) continue;
    any = true;
    // A relay that is temporally thinning delivers half the publisher's
    // rate; the publisher may keep sending at divisor x the viewer's
    // per-feed budget (otherwise the thinning feeds back into the uplink,
    // which the paper explicitly does not observe, §6.1).
    DataRate share = s->share * std::max(1, s->temporal_divisor);
    if (share < best) best = share;
  }
  return any ? best : DataRate::mbps(1000);
}

bool SfuServer::any_ultra_low(VcaClient* publisher) const {
  return any_ultra_low_origin(publisher->host()->id());
}

bool SfuServer::any_ultra_low_origin(NodeId origin) const {
  for (const auto& s : subs_) {
    if (s->leg->origin == origin && s->wants_ultra_low) return true;
  }
  return false;
}

const SfuServer::Subscription* SfuServer::find(VcaClient* viewer,
                                               VcaClient* publisher) const {
  for (const auto& s : subs_) {
    if (s->viewer == viewer && s->leg->client == publisher) return s.get();
  }
  return nullptr;
}

int SfuServer::selected_stream(VcaClient* viewer, VcaClient* publisher) const {
  const Subscription* s = find(viewer, publisher);
  return s != nullptr ? s->selected_stream : -1;
}

int SfuServer::active_layers(VcaClient* viewer, VcaClient* publisher) const {
  const Subscription* s = find(viewer, publisher);
  return s != nullptr ? s->active_layers : -1;
}

int SfuServer::fir_count_for(VcaClient* publisher) const {
  for (const auto& leg : legs_) {
    if (leg->client != publisher) continue;
    int total = 0;
    for (const auto& r : leg->layer_receivers) total += r->fir_sent();
    return total;
  }
  return 0;
}

DataRate SfuServer::viewer_budget(VcaClient* viewer) const {
  for (const auto& s : subs_) {
    if (s->viewer == viewer) return s->viewer_remb;
  }
  return DataRate::zero();
}

int64_t SfuServer::forwarded_packets() const {
  int64_t total = retired_forwarded_packets_;
  for (const auto& s : subs_) {
    total += s->video_sender->sent_packets() + s->audio_sender->sent_packets();
  }
  for (const auto& r : relays_) {
    for (const auto& ls : r->layer_senders) total += ls->sent_packets();
    total += r->audio_sender->sent_packets();
  }
  return total;
}

}  // namespace vca
