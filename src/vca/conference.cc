#include "vca/conference.h"

#include <algorithm>

namespace vca {

namespace {
// Flow-id plan: every flow is a pure function of roster position, so a
// member's flows never depend on join order, churn history, or how many
// times a tile paged in and out (a re-subscription reuses its old flows —
// safe, they are unregistered in between).
constexpr FlowId kSubFlowOffset = 1'000'000;
constexpr FlowId kRelayFlowOffset = 10'000'000;
}  // namespace

Conference::Conference(EventScheduler* sched, Config cfg)
    : sched_(sched), cfg_(std::move(cfg)), next_flow_(cfg_.flow_base) {}

int Conference::add_region(Host* sfu_host, EventScheduler* region_sched) {
  EventScheduler* sched = region_sched != nullptr ? region_sched : sched_;
  SfuServer::Config sc;
  sc.profile = cfg_.profile;
  sfus_.push_back(std::make_unique<SfuServer>(sched, sfu_host, sc));
  region_scheds_.push_back(sched);
  pending_keyframes_.emplace_back();
  defer_keyframes_ |= sched != sched_;
  return static_cast<int>(sfus_.size()) - 1;
}

VcaClient* Conference::add_client(Host* host, int region, TimePoint join_at,
                                  TimePoint leave_at) {
  Member m;
  m.region = region;
  m.roster_index = static_cast<int>(members_.size());
  m.join_at = join_at;
  m.leave_at = leave_at;

  VcaClient::Config cc;
  cc.profile = cfg_.profile;
  cc.sfu_node = sfus_[static_cast<size_t>(region)]->host()->id();
  cc.media_flow_base = next_flow_;
  next_flow_ += 16;
  cc.seed = cfg_.seed * 7919 + members_.size() + 1;
  // The client's media timers live on its region's shard, with its SFU.
  m.client = std::make_unique<VcaClient>(
      region_scheds_[static_cast<size_t>(region)], host, cc);
  members_.push_back(std::move(m));
  return members_.back().client.get();
}

Conference::Member* Conference::member_for(VcaClient* client) {
  for (auto& m : members_) {
    if (m.client.get() == client) return &m;
  }
  return nullptr;
}

Conference::Member* Conference::member_for_node(NodeId node) {
  for (auto& m : members_) {
    if (m.client->host()->id() == node) return &m;
  }
  return nullptr;
}

int Conference::active_count() const {
  int n = 0;
  for (const auto& m : members_) n += m.joined ? 1 : 0;
  return n;
}

bool Conference::is_active(VcaClient* client) const {
  for (const auto& m : members_) {
    if (m.client.get() == client) return m.joined;
  }
  return false;
}

int Conference::region_of(VcaClient* client) const {
  for (const auto& m : members_) {
    if (m.client.get() == client) return m.region;
  }
  return -1;
}

int Conference::subscription_count_for(VcaClient* viewer) const {
  int n = 0;
  for (const auto& s : subs_) n += s.viewer == viewer ? 1 : 0;
  return n;
}

int Conference::relay_count() const {
  int n = 0;
  for (const auto& [key, refs] : relay_refs_) n += refs > 0 ? 1 : 0;
  return n;
}

bool Conference::is_pinned_publisher(const Member& pub) const {
  return cfg_.mode == ViewMode::kSpeaker &&
         pub.roster_index == cfg_.pinned_client;
}

void Conference::start() {
  if (running_) return;
  running_ = true;
  TimePoint now = sched_->now();
  for (auto& m : members_) {
    if (m.join_at <= now) {
      join(m.client.get());
    } else {
      VcaClient* c = m.client.get();
      sched_->schedule_at(m.join_at, [this, c] {
        if (running_) join(c);
      });
    }
    if (m.leave_at < TimePoint::infinite()) {
      VcaClient* c = m.client.get();
      sched_->schedule_at(m.leave_at, [this, c] {
        if (running_) leave(c);
      });
    }
  }
  for (auto& s : sfus_) s->start();
  signaling();
}

void Conference::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& m : members_) {
    if (m.joined) m.client->stop();
  }
}

void Conference::join(VcaClient* client) {
  Member* m = member_for(client);
  if (m == nullptr || m->joined || m->departed) return;
  m->joined = true;
  sfus_[static_cast<size_t>(m->region)]->add_publisher(client);
  client->start();
  recompute_subscriptions();
}

void Conference::leave(VcaClient* client) {
  Member* m = member_for(client);
  if (m == nullptr || !m->joined) return;
  m->joined = false;
  m->departed = true;
  NodeId node = client->host()->id();

  // Arm the invariant first: from this instant, any frame any SFU
  // forwards toward this client proves an exit path leaked.
  for (auto& s : sfus_) s->note_departed(node);

  // Tear down every subscription touching the leaver — feeds others have
  // of it, and feeds it has of others — releasing relays whose last
  // viewer this was.
  for (size_t i = subs_.size(); i-- > 0;) {
    if (subs_[i].viewer == client || subs_[i].origin == node) {
      do_unsubscribe(i);
    }
  }

  // Its publisher legs: the home SFU (which also drops any remaining
  // relay egresses) and every remote leg peers still hold.
  sfus_[static_cast<size_t>(m->region)]->remove_publisher(client);
  for (size_t r = 0; r < sfus_.size(); ++r) {
    if (static_cast<int>(r) != m->region) {
      sfus_[r]->remove_remote_publisher(node);
    }
  }
  client->stop();
  recompute_subscriptions();
}

void Conference::ensure_relay(Member& pub, int viewer_region) {
  NodeId origin = pub.client->host()->id();
  auto key = std::make_pair(origin, viewer_region);
  int& refs = relay_refs_[key];
  ++refs;
  if (refs > 1) return;

  const FlowId streams =
      static_cast<FlowId>(cfg_.profile.layers.size()) + 1;  // layers + audio
  FlowId flow_base =
      cfg_.flow_base + kRelayFlowOffset +
      (static_cast<FlowId>(pub.roster_index) *
           static_cast<FlowId>(sfus_.size()) +
       static_cast<FlowId>(viewer_region)) *
          streams;
  relay_flows_[key] = flow_base;

  SfuServer* home = sfus_[static_cast<size_t>(pub.region)].get();
  SfuServer* peer = sfus_[static_cast<size_t>(viewer_region)].get();
  home->add_relay_out(pub.client.get(), peer->host()->id(), flow_base);
  VcaClient* pub_client = pub.client.get();
  if (defer_keyframes_) {
    // The remote leg fires from the VIEWER region's shard; the publisher
    // lives on another. Queue the request (single writer: that shard's
    // thread) and let the barrier hook deliver it — deferred on every
    // sharded run, whatever the worker count, so results stay identical
    // across --shards values.
    peer->add_remote_publisher(
        origin, home->host()->id(), flow_base,
        [this, pub_client, viewer_region](int layer) {
          pending_keyframes_[static_cast<size_t>(viewer_region)].push_back(
              PendingKeyframe{pub_client, layer});
        });
  } else {
    peer->add_remote_publisher(
        origin, home->host()->id(), flow_base,
        [pub_client](int layer) { pub_client->request_keyframe(layer); });
  }
}

void Conference::release_relay(NodeId origin, int origin_region,
                               int viewer_region) {
  auto key = std::make_pair(origin, viewer_region);
  auto it = relay_refs_.find(key);
  if (it == relay_refs_.end() || it->second == 0) return;
  if (--it->second > 0) return;
  relay_refs_.erase(it);
  relay_flows_.erase(key);
  SfuServer* home = sfus_[static_cast<size_t>(origin_region)].get();
  SfuServer* peer = sfus_[static_cast<size_t>(viewer_region)].get();
  home->remove_relay_out(origin, peer->host()->id());
  peer->remove_remote_publisher(origin);
}

void Conference::do_subscribe(Member& viewer, Member& pub) {
  NodeId origin = pub.client->host()->id();
  if (viewer.region != pub.region) ensure_relay(pub, viewer.region);

  SubRec rec;
  rec.viewer = viewer.client.get();
  rec.origin = origin;
  rec.viewer_region = viewer.region;
  rec.origin_region = pub.region;
  rec.video_flow = cfg_.flow_base + kSubFlowOffset +
                   (static_cast<FlowId>(viewer.roster_index) *
                        static_cast<FlowId>(members_.size()) +
                    static_cast<FlowId>(pub.roster_index)) *
                       2;
  rec.audio_flow = rec.video_flow + 1;

  SfuServer* sfu = sfus_[static_cast<size_t>(viewer.region)].get();
  sfu->subscribe_origin(viewer.client.get(), origin, rec.video_flow,
                        rec.audio_flow);
  viewer.client->add_feed(rec.video_flow, rec.video_flow, origin);
  subs_.push_back(rec);
}

void Conference::do_unsubscribe(size_t rec_index) {
  SubRec rec = subs_[rec_index];
  subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(rec_index));
  SfuServer* sfu = sfus_[static_cast<size_t>(rec.viewer_region)].get();
  sfu->unsubscribe(rec.viewer, rec.origin);
  rec.viewer->remove_feed(rec.video_flow);
  if (rec.viewer_region != rec.origin_region) {
    release_relay(rec.origin, rec.origin_region, rec.viewer_region);
  }
}

void Conference::recompute_subscriptions() {
  if (!running_) return;
  const int n = active_count();
  const int tiles = visible_tiles(cfg_.profile.kind, n, cfg_.mode);

  // Desired set per active viewer: in speaker mode the pinned speaker
  // always occupies a slot, then the join-ordered roster backfills the
  // remaining tiles. A leaver's slot is reclaimed by the next active
  // member automatically.
  for (auto& viewer : members_) {
    if (!viewer.joined) continue;
    // Collect desired publishers, in roster order.
    std::vector<const Member*> desired;
    if (cfg_.mode == ViewMode::kSpeaker &&
        cfg_.pinned_client >= 0 &&
        cfg_.pinned_client < static_cast<int>(members_.size())) {
      const Member& pinned = members_[static_cast<size_t>(cfg_.pinned_client)];
      if (pinned.joined && pinned.client.get() != viewer.client.get()) {
        desired.push_back(&pinned);
      }
    }
    for (const auto& pub : members_) {
      if (static_cast<int>(desired.size()) >= tiles) break;
      if (!pub.joined || pub.client.get() == viewer.client.get()) continue;
      bool already = false;
      for (const Member* d : desired) already |= d == &pub;
      if (!already) desired.push_back(&pub);
    }

    // Drop subscriptions that fell off the page.
    for (size_t i = subs_.size(); i-- > 0;) {
      if (subs_[i].viewer != viewer.client.get()) continue;
      bool keep = false;
      for (const Member* d : desired) {
        keep |= d->client->host()->id() == subs_[i].origin;
      }
      if (!keep) do_unsubscribe(i);
    }
    // Add the missing ones.
    for (const Member* d : desired) {
      NodeId origin = d->client->host()->id();
      bool have = false;
      for (const auto& s : subs_) {
        have |= s.viewer == viewer.client.get() && s.origin == origin;
      }
      if (!have) do_subscribe(viewer, *member_for_node(origin));
    }
    // Refresh layout-driven knobs (they change with the active count).
    SfuServer* sfu = sfus_[static_cast<size_t>(viewer.region)].get();
    for (const Member* d : desired) {
      NodeId origin = d->client->host()->id();
      bool pinned = is_pinned_publisher(*d);
      sfu->set_pinned_origin(viewer.client.get(), origin, pinned);
      sfu->set_desired_width_origin(
          viewer.client.get(), origin,
          requested_width(cfg_.profile.kind, n, cfg_.mode, pinned));
    }
  }
}

void Conference::signaling() {
  if (!running_) return;
  const int n = active_count();

  // Teams §6.1 anomaly at fleet scale: the relay thinning keys off the
  // conference size, not any single SFU's local population.
  if (cfg_.profile.kind == VcaKind::kTeams) {
    for (auto& s : sfus_) s->set_relay_divisor(n >= 6 ? 2 : 1);
  }

  for (auto& pub : members_) {
    if (!pub.joined) continue;
    VcaClient* publisher = pub.client.get();
    NodeId origin = publisher->host()->id();
    bool pinned = is_pinned_publisher(pub);

    int max_w = n <= 1 ? 1280
                       : requested_width(cfg_.profile.kind, n, cfg_.mode,
                                         pinned);
    publisher->set_encode_max_width(std::max(max_w, 180));

    if (cfg_.profile.arch == Architecture::kRelay) {
      // The most constrained viewer anywhere in the fleet governs the
      // sender (cross-SFU signaling: each regional SFU reports the
      // narrowest share among its local viewers of this publisher).
      DataRate min_share = DataRate::mbps(1000);
      for (auto& s : sfus_) {
        min_share = std::min(min_share, s->min_viewer_share_for_origin(origin));
      }
      publisher->set_allowed_rate(min_share);
    }
    if (cfg_.profile.kind == VcaKind::kMeet) {
      bool ultra = false;
      for (auto& s : sfus_) ultra |= s->any_ultra_low_origin(origin);
      publisher->set_ultra_low(ultra);
    }
    if (cfg_.profile.speaker_uplink_anomaly) {
      double boost = pinned ? std::clamp(0.9 + 0.235 * (n - 3), 1.0, 2.1) : 1.0;
      publisher->set_speaker_boost(boost);
    }
  }

  sched_->schedule(cfg_.signaling_tick, [this] { signaling(); });
}

void Conference::append_invariant_violations(std::vector<std::string>* out) const {
  for (const auto& s : sfus_) s->append_invariant_violations(out);
}

void Conference::drain_deferred_keyframes() {
  for (auto& queue : pending_keyframes_) {
    for (const PendingKeyframe& pk : queue) {
      // Safe on a departed publisher: members own their clients for the
      // Conference's lifetime and request_keyframe on a stopped client
      // only marks the (idle) encoder.
      pk.publisher->request_keyframe(pk.layer);
    }
    queue.clear();
  }
}

int64_t Conference::forwards_to_departed() const {
  int64_t total = 0;
  for (const auto& s : sfus_) total += s->forwards_to_departed();
  return total;
}

}  // namespace vca
