#include "apps/abr_video.h"

#include <algorithm>
#include <cmath>

namespace vca {

AbrVideoApp::AbrVideoApp(EventScheduler* sched, Host* client, Host* server,
                         Config cfg)
    : sched_(sched),
      client_(client),
      server_(server),
      cfg_(std::move(cfg)),
      next_flow_(cfg_.flow_base) {}

void AbrVideoApp::start() {
  if (running_) return;
  running_ = true;
  playback_tick();
  request_next_chunk();
}

void AbrVideoApp::stop() {
  running_ = false;
  for (auto& c : conns_) {
    if (c->sender) c->sender->stop();
  }
}

AbrVideoApp::Connection* AbrVideoApp::open_connection() {
  auto conn = std::make_unique<Connection>();
  conn->flow = next_flow_++;
  TcpSender::Config sc;
  sc.flow = conn->flow;
  sc.dst = client_->id();
  conn->sender = std::make_unique<TcpSender>(sched_, server_, sc);
  conn->receiver = std::make_unique<TcpReceiverEndpoint>(
      sched_, client_, TcpReceiverEndpoint::Config{conn->flow, server_->id()});

  Connection* raw = conn.get();
  client_->register_flow(conn->flow, [raw](Packet p) {
    raw->receiver->handle_packet(p);
  });
  server_->register_flow(conn->flow, [raw](Packet p) {
    raw->sender->handle_packet(p);
  });
  raw->receiver->set_data_handler([this](int64_t newly) {
    delivered_bytes_ += newly;
    chunk_remaining_ -= newly;
    if (chunk_in_flight_ && chunk_remaining_ <= 0) {
      chunk_in_flight_ = false;
      on_chunk_complete(sched_->now() - chunk_started_);
    }
  });

  ++connections_opened_;
  conns_.push_back(std::move(conn));
  return raw;
}

void AbrVideoApp::request_next_chunk() {
  if (!running_) return;
  if (buffer_s_ >= cfg_.buffer_target_s) {
    // OFF period: check back shortly.
    sched_->schedule(Duration::millis(500), [this] { request_next_chunk(); });
    return;
  }

  // Ladder choice from the smoothed throughput estimate.
  quality_ = 0;
  for (size_t i = 0; i < cfg_.ladder.size(); ++i) {
    if (cfg_.ladder[i].mbps_f() <= cfg_.safety * throughput_est_mbps_) {
      quality_ = static_cast<int>(i);
    }
  }
  int64_t chunk_bytes =
      cfg_.ladder[static_cast<size_t>(quality_)].bytes_in(cfg_.chunk_duration);

  chunk_started_ = sched_->now();
  chunk_remaining_ = chunk_bytes;
  chunk_in_flight_ = true;

  int fan = cfg_.multi_connection ? parallel_ : 1;
  fan = std::clamp(fan, 1, cfg_.max_parallel);
  max_parallel_seen_ = std::max(max_parallel_seen_, fan);
  parallel_history_.push_back(fan);
  while (static_cast<int>(conns_.size()) < fan) open_connection();
  int64_t per_conn = (chunk_bytes + fan - 1) / fan;
  int64_t left = chunk_bytes;
  for (int i = 0; i < fan && left > 0; ++i) {
    int64_t share = std::min(per_conn, left);
    conns_[static_cast<size_t>(i)]->sender->write(share);
    left -= share;
  }
}

void AbrVideoApp::on_chunk_complete(Duration took) {
  if (!running_) return;
  buffer_s_ += cfg_.chunk_duration.seconds();

  double chunk_mbps =
      static_cast<double>(
          cfg_.ladder[static_cast<size_t>(quality_)].bits_per_sec()) *
      cfg_.chunk_duration.seconds() / std::max(0.05, took.seconds()) / 1e6;
  // EWMA throughput estimate.
  throughput_est_mbps_ = 0.6 * throughput_est_mbps_ + 0.4 * chunk_mbps;

  if (cfg_.multi_connection) {
    // Netflix's observed escalation: when downloads cannot keep up with
    // playback, it opens more parallel connections; when comfortable, it
    // backs down (Fig 14b).
    if (took > cfg_.chunk_duration || buffer_s_ < 8.0) {
      parallel_ = std::min(cfg_.max_parallel, parallel_ + 2);
    } else if (parallel_ > 1) {
      parallel_ -= 1;
    }
  }
  request_next_chunk();
}

void AbrVideoApp::playback_tick() {
  if (!running_) return;
  if (buffer_s_ > 0.0) {
    buffer_s_ = std::max(0.0, buffer_s_ - 0.25);
  } else if (connections_opened_ > 0) {
    rebuffer_s_ += 0.25;
  }
  sched_->schedule(Duration::millis(250), [this] { playback_tick(); });
}

}  // namespace vca
