// iPerf3 substitute: one long-lived bulk TCP CUBIC flow between two hosts
// (§5.2; the paper's server sits on the same network, RTT ~2 ms).
#pragma once

#include <memory>

#include "core/scheduler.h"
#include "net/node.h"
#include "transport/tcp.h"

namespace vca {

class BulkTcpApp {
 public:
  struct Config {
    FlowId flow = 9000;
    TcpSender::CcAlgo algo = TcpSender::CcAlgo::kCubic;
  };

  // Data flows sender_host -> receiver_host.
  BulkTcpApp(EventScheduler* sched, Host* sender_host, Host* receiver_host,
             Config cfg)
      : sched_(sched), src_(sender_host), dst_(receiver_host), cfg_(cfg) {}

  void start() {
    if (sender_) return;
    TcpSender::Config sc;
    sc.flow = cfg_.flow;
    sc.dst = dst_->id();
    sc.algo = cfg_.algo;
    sc.unlimited = true;
    sender_ = std::make_unique<TcpSender>(sched_, src_, sc);
    receiver_ = std::make_unique<TcpReceiverEndpoint>(
        sched_, dst_, TcpReceiverEndpoint::Config{cfg_.flow, src_->id()});
    dst_->register_flow(cfg_.flow, [this](Packet p) {
      if (receiver_) receiver_->handle_packet(p);
    });
    src_->register_flow(cfg_.flow, [this](Packet p) {
      if (sender_) sender_->handle_packet(p);
    });
  }

  void stop() {
    if (sender_) sender_->stop();
  }

  int64_t delivered_bytes() const {
    return receiver_ ? receiver_->delivered_bytes() : 0;
  }
  TcpSender* sender() { return sender_.get(); }

 private:
  EventScheduler* sched_;
  Host* src_;
  Host* dst_;
  Config cfg_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiverEndpoint> receiver_;
};

}  // namespace vca
