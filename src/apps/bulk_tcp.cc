#include "apps/bulk_tcp.h"

// BulkTcpApp is header-only; this translation unit anchors the library.
