// Adaptive-bitrate video streaming client (the paper's Netflix and
// YouTube competitors, §5.3).
//
// Chunked downloads over TCP with a throughput-driven ladder, a playback
// buffer, and — for the Netflix profile — the multi-connection escalation
// the paper observes under scarcity (Fig 14b: 28 connections over the
// 2-minute run, up to 11 in parallel).
#pragma once

#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "core/units.h"
#include "net/node.h"
#include "transport/tcp.h"

namespace vca {

class AbrVideoApp {
 public:
  struct Config {
    std::vector<DataRate> ladder = {
        DataRate::kbps(235),  DataRate::kbps(375), DataRate::kbps(560),
        DataRate::kbps(750),  DataRate::kbps(1050), DataRate::kbps(1750),
        DataRate::kbps(3000),
    };
    Duration chunk_duration = Duration::seconds(4);
    double buffer_target_s = 24.0;
    double safety = 0.8;            // pick ladder <= safety * estimate
    bool multi_connection = false;  // Netflix: parallel conns when starved
    int max_parallel = 12;
    FlowId flow_base = 9100;
  };

  static Config netflix() {
    Config c;
    c.multi_connection = true;
    return c;
  }
  static Config youtube() {
    // YouTube runs one QUIC connection; QUIC's CUBIC-like congestion
    // control makes a single persistent TCP-CUBIC connection the closest
    // behavioral stand-in [Corbel et al. 2019].
    Config c;
    c.multi_connection = false;
    return c;
  }

  // Video flows server -> client.
  AbrVideoApp(EventScheduler* sched, Host* client, Host* server, Config cfg);

  void start();
  void stop();

  // Stats for Fig 14.
  int connections_opened() const { return connections_opened_; }
  int max_parallel_seen() const { return max_parallel_seen_; }
  int64_t delivered_bytes() const { return delivered_bytes_; }
  double buffer_seconds() const { return buffer_s_; }
  int current_quality() const { return quality_; }
  double rebuffer_seconds() const { return rebuffer_s_; }
  const std::vector<int>& parallel_history() const { return parallel_history_; }

 private:
  // Persistent HTTP-style connections: reused across chunks, with extra
  // ones opened only when escalating parallelism (so the total connection
  // count stays in the tens, as the paper measures in Fig 14b).
  struct Connection {
    std::unique_ptr<TcpSender> sender;      // lives at the server host
    std::unique_ptr<TcpReceiverEndpoint> receiver;
    FlowId flow = 0;
  };

  void request_next_chunk();
  void on_chunk_complete(Duration took);
  void playback_tick();
  Connection* open_connection();

  EventScheduler* sched_;
  Host* client_;
  Host* server_;
  Config cfg_;

  std::vector<std::unique_ptr<Connection>> conns_;
  FlowId next_flow_;
  int quality_ = 0;
  double buffer_s_ = 0.0;
  double rebuffer_s_ = 0.0;
  double throughput_est_mbps_ = 1.0;
  int parallel_ = 1;
  bool chunk_in_flight_ = false;
  int64_t chunk_remaining_ = 0;
  TimePoint chunk_started_;
  bool running_ = false;

  int connections_opened_ = 0;
  int max_parallel_seen_ = 0;
  int64_t delivered_bytes_ = 0;
  std::vector<int> parallel_history_;
};

}  // namespace vca
