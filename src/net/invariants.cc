#include "net/invariants.h"

#include <cassert>
#include <iostream>

namespace vca {

std::vector<std::string> SimInvariantChecker::check() const {
  std::vector<std::string> out;
  TimePoint now = sched_ != nullptr ? sched_->now() : TimePoint::zero();
  if (sched_ != nullptr && !sched_->time_monotonic()) {
    out.push_back("scheduler: dispatched an event before the current time");
  }
  for (const Link* l : links_) {
    l->append_invariant_violations(&out, now);
  }
  return out;
}

int SimInvariantChecker::enforce() const {
  std::vector<std::string> violations = check();
  for (const std::string& v : violations) {
    std::cerr << "SIM INVARIANT VIOLATION: " << v << "\n";
  }
  assert(violations.empty() && "sim invariant violation (see stderr)");
  return static_cast<int>(violations.size());
}

}  // namespace vca
