#include "net/invariants.h"

#include <algorithm>
#include <cassert>
#include <iostream>
#include <string>

namespace vca {

std::vector<std::string> SimInvariantChecker::check() const {
  std::vector<std::string> out;
  // On a sharded sim the clocks agree at every barrier (and at the end,
  // when check() runs); use the latest so "busy past its finish" is
  // judged against the furthest-advanced shard.
  TimePoint now = TimePoint::zero();
  for (size_t i = 0; i < scheds_.size(); ++i) {
    now = std::max(now, scheds_[i]->now());
    if (!scheds_[i]->time_monotonic()) {
      std::string who = scheds_.size() == 1
                            ? std::string("scheduler")
                            : "scheduler " + std::to_string(i);
      out.push_back(who + ": dispatched an event before the current time");
    }
  }
  for (const Link* l : links_) {
    l->append_invariant_violations(&out, now);
  }
  return out;
}

int SimInvariantChecker::enforce() const {
  std::vector<std::string> violations = check();
  for (const std::string& v : violations) {
    std::cerr << "SIM INVARIANT VIOLATION: " << v << "\n";
  }
  assert(violations.empty() && "sim invariant violation (see stderr)");
  return static_cast<int>(violations.size());
}

}  // namespace vca
