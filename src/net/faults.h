// Schedulable fault injection: the disruption shapes a real measurement
// campaign throws at a VCA (mid-call outages, link flaps, bursty loss,
// reordering, duplication, server failure) expressed as one declarative
// plan and installed onto the event scheduler.
//
// A FaultPlan is built before the run and armed once with schedule().
// Every entry is deterministic: timed actions fire at fixed virtual
// times, and the random impairments they enable (burst loss, reorder,
// duplication) draw from the target Link's impairment streams, which are
// seeded up front. Identical seed + identical plan => identical packet
// traces (see net_faults_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/time.h"
#include "net/link.h"

namespace vca {

class FaultPlan {
 public:
  struct Entry {
    TimePoint at;
    std::string label;
    std::function<void()> action;
  };

  // Link outage: rate -> 0 at `start`, restored to the link's healthy rate
  // at `start + length`. Packets queue through the outage (drop-tail);
  // serialization resumes on restore.
  //
  // Overlapping windows compose: the link stays dark until the *last*
  // overlapping outage ends, and then restores to the rate it had when the
  // first of them began (the pre-fault healthy rate). Without this
  // depth-counting an inner window's restore would wake the link in the
  // middle of an outer outage — the hazard the fuzzer's outage-silence
  // oracle flags (see tests/net_faults_test.cc).
  void add_outage(Link* link, TimePoint start, Duration length);

  // Link flap: `cycles` outages of `down_for` each, separated by `up_for`
  // of healthy operation, starting at `first_down`.
  void add_flap(Link* link, TimePoint first_down, int cycles,
                Duration down_for, Duration up_for);

  // Gilbert-Elliott burst loss on [start, start+length); reverts to the
  // link's configured i.i.d. loss afterwards.
  void add_burst_loss(Link* link, TimePoint start, Duration length,
                      const GilbertElliott& ge);

  // Probabilistic reordering (extra `detour` delay) on [start, start+length).
  void add_reorder(Link* link, TimePoint start, Duration length, double prob,
                   Duration detour);

  // Probabilistic duplication on [start, start+length).
  void add_duplicate(Link* link, TimePoint start, Duration length, double prob);

  // Re-shape the link at `at` (the tc command), composed with outages:
  // while an outage holds the link at rate 0, the shape updates the
  // *healthy* rate the final restore will apply instead of waking the
  // downed link early.
  void add_shape(Link* link, TimePoint at, DataRate rate);

  // Arbitrary timed action — infrastructure faults beyond single links
  // (e.g. an SFU process outage/restart) hook in here so the net layer
  // stays ignorant of what runs on top of it.
  void at(TimePoint when, std::string label, std::function<void()> action);

  // Install every entry onto the scheduler. Call exactly once, before the
  // first entry's time; entries at equal times fire in insertion order.
  void schedule(EventScheduler* sched);

  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  // Per-link composition state for overlapping outage windows: `depth`
  // counts the outages currently holding the link down, `healthy` is the
  // rate captured when depth went 0 -> 1 (and updated by add_shape actions
  // firing mid-outage). Keyed by pointer but only ever looked up, never
  // iterated, so it cannot introduce pointer-order nondeterminism.
  struct LinkFaultState {
    int depth = 0;
    DataRate healthy;
  };
  LinkFaultState& state_of(Link* link) { return fault_state_[link]; }

  std::vector<Entry> entries_;
  std::map<Link*, LinkFaultState> fault_state_;
  bool armed_ = false;
};

}  // namespace vca
