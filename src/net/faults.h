// Schedulable fault injection: the disruption shapes a real measurement
// campaign throws at a VCA (mid-call outages, link flaps, bursty loss,
// reordering, duplication, server failure) expressed as one declarative
// plan and installed onto the event scheduler.
//
// A FaultPlan is built before the run and armed once with schedule().
// Every entry is deterministic: timed actions fire at fixed virtual
// times, and the random impairments they enable (burst loss, reorder,
// duplication) draw from the target Link's impairment streams, which are
// seeded up front. Identical seed + identical plan => identical packet
// traces (see net_faults_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/time.h"
#include "net/link.h"

namespace vca {

class FaultPlan {
 public:
  struct Entry {
    TimePoint at;
    std::string label;
    std::function<void()> action;
  };

  // Link outage: rate -> 0 at `start`, restored to the rate the link had
  // when the outage began at `start + length`. Packets queue through the
  // outage (drop-tail); serialization resumes on restore.
  void add_outage(Link* link, TimePoint start, Duration length);

  // Link flap: `cycles` outages of `down_for` each, separated by `up_for`
  // of healthy operation, starting at `first_down`.
  void add_flap(Link* link, TimePoint first_down, int cycles,
                Duration down_for, Duration up_for);

  // Gilbert-Elliott burst loss on [start, start+length); reverts to the
  // link's configured i.i.d. loss afterwards.
  void add_burst_loss(Link* link, TimePoint start, Duration length,
                      const GilbertElliott& ge);

  // Probabilistic reordering (extra `detour` delay) on [start, start+length).
  void add_reorder(Link* link, TimePoint start, Duration length, double prob,
                   Duration detour);

  // Probabilistic duplication on [start, start+length).
  void add_duplicate(Link* link, TimePoint start, Duration length, double prob);

  // Arbitrary timed action — infrastructure faults beyond single links
  // (e.g. an SFU process outage/restart) hook in here so the net layer
  // stays ignorant of what runs on top of it.
  void at(TimePoint when, std::string label, std::function<void()> action);

  // Install every entry onto the scheduler. Call exactly once, before the
  // first entry's time; entries at equal times fire in insertion order.
  void schedule(EventScheduler* sched);

  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
  // Rate each downed link had when its current outage began, so nested
  // flap cycles restore the right thing.
  std::map<Link*, DataRate> saved_rate_;
  bool armed_ = false;
};

}  // namespace vca
