// Network nodes: endpoints (Host) and store-and-forward nodes
// (ForwardingNode: the router and the switch in the paper's Figure 7).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"

namespace vca {

// An endpoint. Flows register per-FlowId handlers; the host dispatches
// incoming packets to them and stamps src on outgoing ones.
class Host : public PacketSink {
 public:
  using PacketHandler = std::function<void(Packet)>;

  Host(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  void set_uplink(Link* l) { uplink_ = l; }
  Link* uplink() const { return uplink_; }

  void register_flow(FlowId flow, PacketHandler handler) {
    handlers_[flow] = std::move(handler);
  }
  void unregister_flow(FlowId flow) { handlers_.erase(flow); }

  void send(Packet p) {
    p.src = id_;
    if (uplink_ != nullptr) uplink_->deliver(std::move(p));
  }

  void deliver(Packet p) override {
    auto it = handlers_.find(p.flow);
    if (it != handlers_.end()) it->second(std::move(p));
    // Unknown flows are silently dropped, like a closed port.
  }

 private:
  NodeId id_;
  std::string name_;
  Link* uplink_ = nullptr;
  std::unordered_map<FlowId, PacketHandler> handlers_;
};

// Forwards by destination NodeId with an optional default route.
// Forwarding itself is instantaneous; all delay and loss live in Links.
class ForwardingNode : public PacketSink {
 public:
  explicit ForwardingNode(std::string name) : name_(std::move(name)) {}

  void add_route(NodeId dst, PacketSink* next_hop) { routes_[dst] = next_hop; }
  void set_default_route(PacketSink* next_hop) { default_ = next_hop; }
  const std::string& name() const { return name_; }

  void deliver(Packet p) override {
    auto it = routes_.find(p.dst);
    PacketSink* hop = it != routes_.end() ? it->second : default_;
    if (hop != nullptr) hop->deliver(std::move(p));
  }

 private:
  std::string name_;
  std::unordered_map<NodeId, PacketSink*> routes_;
  PacketSink* default_ = nullptr;
};

}  // namespace vca
