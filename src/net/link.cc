#include "net/link.h"

#include <algorithm>
#include <utility>

#include "net/shard.h"

namespace vca {

void Link::reseed_impairments() {
  Rng root(cfg_.impairment_seed);
  loss_jitter_rng_ = root;
  burst_rng_ = root.fork("burst");
  reorder_rng_ = root.fork("reorder");
  duplicate_rng_ = root.fork("duplicate");
  burst_state_bad_ = false;
}

void Link::set_impairment_seed(uint64_t seed) {
  cfg_.impairment_seed = seed;
  reseed_impairments();
}

void Link::set_burst_loss(const GilbertElliott& ge) {
  burst_loss_ = ge;
  burst_loss_enabled_ = true;
}

void Link::set_reorder(double prob, Duration extra) {
  reorder_prob_ = prob;
  reorder_extra_ = extra;
}

void Link::set_rate(DataRate r) {
  bool was_down = cfg_.rate.is_zero();
  cfg_.rate = r;
  // Restoring a downed link resumes serialization of whatever the queue
  // retained through the outage. (An in-flight packet at rate-change time
  // still finishes at the old rate and restarts the loop itself.)
  if (was_down && !r.is_zero() && !busy_ && !queue_.empty()) {
    start_transmission();
  }
}

void Link::deliver(Packet p) {
  ++offered_packets_;
  // An empty queue always admits one packet, even one larger than the
  // configured capacity — matches bfifo semantics.
  if (queued_bytes_ + p.size_bytes > cfg_.queue_bytes && !queue_.empty()) {
    ++queue_dropped_packets_;
    queue_dropped_bytes_ += p.size_bytes;
    return;
  }
  queue_.push_back(std::move(p));
  queued_bytes_ += queue_.back().size_bytes;
  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  // A down link holds its queue and waits for set_rate() to resume.
  if (queue_.empty() || cfg_.rate.is_zero()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= in_flight_.size_bytes;
  Duration tx = cfg_.rate.transmit_time(in_flight_.size_bytes);
  finish_at_ = sched_->now() + tx;
  sched_->schedule(tx, [this] { finish_transmission(); });
}

bool Link::impairment_drop() {
  if (burst_loss_enabled_) {
    // Advance the two-state chain once per crossing, then draw the loss
    // from the state the packet landed in.
    if (burst_state_bad_) {
      if (burst_rng_.bernoulli(burst_loss_.p_bad_to_good)) {
        burst_state_bad_ = false;
      }
    } else if (burst_rng_.bernoulli(burst_loss_.p_good_to_bad)) {
      burst_state_bad_ = true;
    }
    double p = burst_state_bad_ ? burst_loss_.loss_bad : burst_loss_.loss_good;
    return burst_rng_.bernoulli(p);
  }
  return cfg_.random_loss > 0.0 &&
         loss_jitter_rng_.bernoulli(cfg_.random_loss);
}

uint32_t Link::park_in_transit(Packet&& p) {
  if (transit_free_ != kNoSlot) {
    uint32_t slot = transit_free_;
    transit_free_ = transit_[slot].next_free;
    transit_[slot].p = std::move(p);
    return slot;
  }
  transit_.push_back(TransitSlot{std::move(p), kNoSlot});
  return static_cast<uint32_t>(transit_.size() - 1);
}

void Link::deliver_from_transit(uint32_t slot) {
  // Move straight out of the slot into deliver()'s by-value parameter —
  // the move completes before the sink runs, so a reentrant hop that
  // parks new packets (possibly reallocating transit_) is safe; the slot
  // is re-indexed (not held by reference) when it is freed afterwards.
  if (sink_ != nullptr) sink_->deliver(std::move(transit_[slot].p));
  transit_[slot].next_free = transit_free_;
  transit_free_ = slot;
}

void Link::finish_transmission() {
  delivered_bytes_ += in_flight_.size_bytes;
  ++delivered_packets_;
  if (tap_) tap_(in_flight_, sched_->now());

  // netem-style impairments after the wire: loss, jitter, reorder, dup.
  if (impairment_drop()) {
    ++impairment_dropped_packets_;
    impairment_dropped_bytes_ += in_flight_.size_bytes;
    start_transmission();
    return;
  }
  if (sink_ != nullptr) {
    Duration delay = cfg_.propagation;
    if (!cfg_.jitter_sd.is_zero()) {
      double extra = std::max(
          0.0, loss_jitter_rng_.gaussian(0.0, cfg_.jitter_sd.seconds()));
      delay += Duration::seconds_d(extra);
    }
    if (reorder_prob_ > 0.0 && reorder_rng_.bernoulli(reorder_prob_)) {
      delay += reorder_extra_;
      ++reordered_packets_;
    }
    bool dup = duplicate_prob_ > 0.0 && duplicate_rng_.bernoulli(duplicate_prob_);
    int tgt;
    if (bus_ != nullptr &&
        (tgt = bus_->shard_of(in_flight_.dst)) != owner_shard_) {
      // Cross-shard: the barrier drains this into the target shard's
      // scheduler. arrival >= now + propagation >= now + lookahead, so
      // the packet always lands in a strictly later window.
      TimePoint arrive = sched_->now() + delay;
      if (dup) {
        ++duplicated_packets_;
        bus_->post(owner_shard_, tgt, arrive, sink_, Packet(in_flight_));
      }
      bus_->post(owner_shard_, tgt, arrive, sink_, std::move(in_flight_));
      start_transmission();
      return;
    }
    if (dup) {
      // The only place the forward path copies a packet — and only when a
      // duplicate is actually emitted.
      ++duplicated_packets_;
      uint32_t dslot = park_in_transit(Packet(in_flight_));
      sched_->schedule(delay, [this, dslot] { deliver_from_transit(dslot); });
    }
    uint32_t slot = park_in_transit(std::move(in_flight_));
    sched_->schedule(delay, [this, slot] { deliver_from_transit(slot); });
  }
  start_transmission();
}

void Link::append_invariant_violations(std::vector<std::string>* out,
                                       TimePoint now) const {
  auto fail = [&](const std::string& what) {
    out->push_back("link '" + name_ + "': " + what);
  };

  if (queued_bytes_ < 0) {
    fail("negative queued_bytes (" + std::to_string(queued_bytes_) + ")");
  }
  int64_t sum = 0;
  for (const Packet& p : queue_) sum += p.size_bytes;
  if (sum != queued_bytes_) {
    fail("queue byte accounting drift (counter " +
         std::to_string(queued_bytes_) + ", actual " + std::to_string(sum) +
         ")");
  }

  int64_t accounted = delivered_packets_ + queue_dropped_packets_ +
                      static_cast<int64_t>(queue_.size()) + (busy_ ? 1 : 0);
  if (accounted != offered_packets_) {
    fail("packet conservation broken (offered " +
         std::to_string(offered_packets_) + ", accounted " +
         std::to_string(accounted) + ")");
  }

  if (busy_) {
    if (finish_at_ == TimePoint::infinite()) {
      fail("busy with an infinite finish time (eternally-busy wedge)");
    } else if (finish_at_ < now) {
      fail("busy past its scheduled finish time (missed event)");
    }
  } else if (!queue_.empty() && !cfg_.rate.is_zero()) {
    fail("idle with " + std::to_string(queue_.size()) +
         " queued packets on an up link (stalled serialization)");
  }
}

}  // namespace vca
