#include "net/link.h"

#include <algorithm>

#include <utility>

namespace vca {

void Link::deliver(Packet p) {
  // An empty queue always admits one packet, even one larger than the
  // configured capacity — matches bfifo semantics.
  if (queued_bytes_ + p.size_bytes > cfg_.queue_bytes && !queue_.empty()) {
    ++dropped_packets_;
    dropped_bytes_ += p.size_bytes;
    return;
  }
  queue_.push_back(std::move(p));
  queued_bytes_ += queue_.back().size_bytes;
  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= in_flight_.size_bytes;
  Duration tx = cfg_.rate.transmit_time(in_flight_.size_bytes);
  if (tx.is_infinite()) {
    // Zero-rate link: drop (shaped to nothing).
    ++dropped_packets_;
    dropped_bytes_ += in_flight_.size_bytes;
    busy_ = false;
    return;
  }
  sched_->schedule(tx, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  delivered_bytes_ += in_flight_.size_bytes;
  ++delivered_packets_;
  if (tap_) tap_(in_flight_, sched_->now());

  // netem-style impairments after the wire: random loss and jitter.
  if (cfg_.random_loss > 0.0 || !cfg_.jitter_sd.is_zero()) {
    if (!impairment_rng_) impairment_rng_.emplace(cfg_.impairment_seed);
    if (cfg_.random_loss > 0.0 && impairment_rng_->bernoulli(cfg_.random_loss)) {
      ++dropped_packets_;
      dropped_bytes_ += in_flight_.size_bytes;
      start_transmission();
      return;
    }
  }
  if (sink_ != nullptr) {
    Duration delay = cfg_.propagation;
    if (!cfg_.jitter_sd.is_zero()) {
      double extra =
          std::max(0.0, impairment_rng_->gaussian(0.0, cfg_.jitter_sd.seconds()));
      delay += Duration::seconds_d(extra);
    }
    Packet out = std::move(in_flight_);
    sched_->schedule(delay, [this, out = std::move(out)]() mutable {
      if (sink_ != nullptr) sink_->deliver(std::move(out));
    });
  }
  start_transmission();
}

}  // namespace vca
