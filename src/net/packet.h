// The simulated wire format.
//
// A Packet carries just enough metadata for the receiving endpoint to do
// its transport-layer job. Media, feedback, and TCP metadata live in a
// variant; the network layer itself only reads src/dst/size.
#pragma once

#include <cstdint>
#include <variant>

#include "core/inline_vec.h"
#include "core/time.h"
#include "core/units.h"

namespace vca {

using NodeId = uint32_t;
using FlowId = uint32_t;

constexpr NodeId kInvalidNode = 0xffffffff;

enum class PacketType : uint8_t {
  kRtpVideo,
  kRtpAudio,
  kRtpFec,
  kRtcp,
  kTcpData,
  kTcpAck,
  // Connectivity probe (STUN-consent-style). Clients send these on a
  // dedicated flow; the SFU echoes them back. The echo is the client's
  // liveness signal for its media-timeout watchdog.
  kKeepalive,
};

constexpr int kKeepaliveBytes = 48;  // STUN binding request-sized

// Per-packet RTP metadata. `wire` fields describe the encoded frame the
// packet belongs to so the receiver can reassemble and compute stats.
struct RtpMeta {
  uint32_t ssrc = 0;
  uint32_t seq = 0;            // per-ssrc sequence number
  uint64_t frame_id = 0;       // monotonically increasing per encoder
  uint16_t packets_in_frame = 1;
  uint16_t packet_index = 0;   // position within the frame
  bool keyframe = false;
  uint8_t spatial_layer = 0;   // SVC layer (0 = base) or simulcast stream id
  bool is_fec = false;
  // Encoding parameters stamped on the frame (for WebRTC-style stats).
  int frame_width = 0;
  double fps = 0.0;
  int qp = 0;
  TimePoint capture_time;      // when the frame left the encoder
  TimePoint abs_send_time;     // when the packet left the sender (for delay-gradient CC)
};

// NACK lists are almost always a handful of sequence numbers; the inline
// capacity keeps copying an RTCP packet heap-free in the common case while
// burst-loss reports past 16 entries still spill gracefully.
using NackList = InlineVec<uint32_t, 16>;

// RTCP feedback, sent receiver -> sender (possibly terminated at an SFU).
struct RtcpMeta {
  uint32_t ssrc = 0;
  double loss_fraction = 0.0;        // losses / expected over the report interval
  DataRate receive_rate;             // what the receiver actually got
  DataRate remb;                     // receiver's bandwidth estimate (0 = absent)
  double delay_gradient_ms_per_s = 0.0;  // trendline slope seen by the receiver
  double queuing_delay_ms = 0.0;     // smoothed one-way queuing delay estimate
  int fir_count = 0;                 // Full Intra Requests in this report
  NackList nack_seqs;                // sequence numbers requested for RTX
  int64_t highest_seq = -1;
};

struct TcpMeta {
  uint64_t seq = 0;        // first byte carried (data) / next expected (ack)
  uint64_t ack = 0;
  int payload_bytes = 0;
  bool syn = false;
  bool fin = false;
  bool is_ack = false;
  // SACK-lite: highest contiguous + count of duplicate acks is enough for
  // the fast-retransmit dynamics we need.
  uint64_t sacked_through = 0;
  TimePoint echo_ts;       // timestamp echo for RTT sampling
};

struct Packet {
  uint64_t id = 0;
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int size_bytes = 0;
  PacketType type = PacketType::kRtpVideo;
  TimePoint created_at;

  std::variant<std::monostate, RtpMeta, RtcpMeta, TcpMeta> meta;

  const RtpMeta& rtp() const { return std::get<RtpMeta>(meta); }
  RtpMeta& rtp() { return std::get<RtpMeta>(meta); }
  const RtcpMeta& rtcp() const { return std::get<RtcpMeta>(meta); }
  RtcpMeta& rtcp() { return std::get<RtcpMeta>(meta); }
  const TcpMeta& tcp() const { return std::get<TcpMeta>(meta); }
  TcpMeta& tcp() { return std::get<TcpMeta>(meta); }

  bool is_media() const {
    return type == PacketType::kRtpVideo || type == PacketType::kRtpAudio ||
           type == PacketType::kRtpFec;
  }
};

// Wire overhead constants (IP + UDP + RTP, IP + TCP).
constexpr int kRtpHeaderBytes = 12;
constexpr int kUdpIpHeaderBytes = 28;
constexpr int kTcpIpHeaderBytes = 40;
constexpr int kMtuBytes = 1200;           // typical WebRTC max payload
constexpr int kTcpMssBytes = 1448;

}  // namespace vca
