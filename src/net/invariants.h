// Sim invariant checker: the production-robustness safety net the fault
// subsystem demanded. Registers the simulation's links and scheduler and,
// on check(), validates:
//   * packet conservation per link (offered == delivered + dropped +
//     queued + in flight),
//   * non-negative, drift-free queue byte accounting,
//   * monotonic event time on the scheduler,
//   * serialization liveness (no eternally-busy link, no idle link with a
//     backlog) — the wedge class the zero-rate outage fix closed.
//
// check() is cheap (O(total queued packets)) and runs in every build;
// enforce() additionally aborts in debug builds so a violating test dies
// loudly at the point of corruption instead of producing garbage figures.
#pragma once

#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/link.h"

namespace vca {

class SimInvariantChecker {
 public:
  void watch(const Link* link) { links_.push_back(link); }
  // Multiple schedulers: the sharded core registers the control strand
  // plus one per region shard; each is checked for monotonic event time.
  void watch(const EventScheduler* sched) { scheds_.push_back(sched); }

  // Every violation found, one human-readable line each; empty == healthy.
  std::vector<std::string> check() const;

  // check(), print any violations to stderr, and (debug builds) abort.
  // Returns the violation count so release callers can surface it.
  int enforce() const;

 private:
  std::vector<const Link*> links_;
  std::vector<const EventScheduler*> scheds_;
};

}  // namespace vca
