// A unidirectional link: rate-limited serialization in front of a finite
// drop-tail queue, plus propagation delay. `set_rate()` mid-simulation is
// the equivalent of re-running `tc` on the testbed router.
//
// Outage semantics: a zero rate models a *down* link, not an infinitely
// slow one. Packets keep queueing (drop-tail once the buffer fills) while
// serialization is paused; restoring a nonzero rate restarts the
// serialization loop with whatever survived in the queue — like a cable
// unplugged and replugged under a CPE buffer.
//
// Impairments (netem-style) are applied after serialization, at the
// simulated tcpdump vantage point: i.i.d. random loss, Gilbert-Elliott
// burst loss, gaussian jitter, probabilistic reordering and duplication.
// All impairment draws come from RNG streams derived from
// `impairment_seed`; each impairment gets its own forked stream so that
// enabling one never perturbs another's draws. The seed is latched when
// the Link is constructed — changing it later requires
// set_impairment_seed(), which reseeds every stream and resets the
// Gilbert-Elliott chain to the good state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ring.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/time.h"
#include "core/units.h"
#include "net/packet.h"

namespace vca {

class ShardBus;

// Anything that can accept a packet: links, hosts, routers.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet p) = 0;
};

// Observation hook: fires for every packet that finishes serialization
// (i.e., actually crossed the wire) — the simulated tcpdump vantage point.
using LinkTap = std::function<void(const Packet&, TimePoint)>;

// Two-state Markov loss model (Gilbert-Elliott). The chain advances once
// per packet crossing the wire; the packet is then dropped with the loss
// probability of the state it landed in.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  // per-packet transition into the burst state
  double p_bad_to_good = 0.25; // per-packet recovery from the burst state
  double loss_good = 0.0;      // residual loss outside bursts
  double loss_bad = 0.5;       // loss inside a burst
};

class Link : public PacketSink {
 public:
  struct Config {
    DataRate rate = DataRate::gbps(1);
    Duration propagation = Duration::millis(1);
    int64_t queue_bytes = 150 * 1024;  // typical CPE buffer (~120 ms at 10 Mbps)
    // Path impairments (netem-style; the paper's §8 future work):
    double random_loss = 0.0;          // i.i.d. packet loss probability
    Duration jitter_sd = Duration::zero();  // gaussian jitter on propagation
    uint64_t impairment_seed = 1;
  };

  Link(EventScheduler* sched, std::string name, Config cfg)
      : sched_(sched), name_(std::move(name)), cfg_(cfg) {
    reseed_impairments();
  }

  void set_sink(PacketSink* sink) { sink_ = sink; }
  void set_tap(LinkTap tap) { tap_ = std::move(tap); }

  // Change the serialization rate. Applies to the next packet that starts
  // serialization (like tc: the in-flight packet finishes at the old rate).
  // Zero pauses serialization (outage); a later nonzero rate resumes it.
  void set_rate(DataRate r);
  DataRate rate() const { return cfg_.rate; }
  bool is_down() const { return cfg_.rate.is_zero(); }
  void set_queue_bytes(int64_t b) { cfg_.queue_bytes = b; }
  void set_random_loss(double p) { cfg_.random_loss = p; }
  void set_jitter(Duration sd) { cfg_.jitter_sd = sd; }

  // Burst loss (Gilbert-Elliott). Replaces i.i.d. loss while enabled;
  // clear_burst_loss() reverts to cfg_.random_loss.
  void set_burst_loss(const GilbertElliott& ge);
  void clear_burst_loss() { burst_loss_enabled_ = false; }
  bool burst_loss_enabled() const { return burst_loss_enabled_; }

  // Reordering: with probability `prob`, a packet takes a detour of
  // `extra` on top of propagation (+jitter), landing behind packets
  // serialized after it. Duplication: with probability `prob`, a packet is
  // delivered twice.
  void set_reorder(double prob, Duration extra);
  void set_duplicate(double prob) { duplicate_prob_ = prob; }

  // Reseed every impairment stream (loss/jitter, burst chain, reorder,
  // duplication) and reset the Gilbert-Elliott chain to the good state.
  // The constructor seed is otherwise latched for the Link's lifetime.
  void set_impairment_seed(uint64_t seed);

  void deliver(Packet p) override;

  // Sharded-core boundary hook (net/shard.h): Network marks the links
  // whose sink is the core router. After serialization + impairments, a
  // packet whose destination lives on a foreign shard is posted to the
  // bus (to be drained at the next barrier) instead of being scheduled
  // on this shard's clock. Packets staying on `owner_shard` take the
  // normal transit-pool path, byte-identically to the unsharded engine.
  void set_cross_shard(ShardBus* bus, int owner_shard) {
    bus_ = bus;
    owner_shard_ = owner_shard;
  }
  int owner_shard() const { return owner_shard_; }

  // Stats.
  int64_t offered_packets() const { return offered_packets_; }
  int64_t delivered_bytes() const { return delivered_bytes_; }
  int64_t delivered_packets() const { return delivered_packets_; }
  int64_t dropped_packets() const {
    return queue_dropped_packets_ + impairment_dropped_packets_;
  }
  int64_t dropped_bytes() const {
    return queue_dropped_bytes_ + impairment_dropped_bytes_;
  }
  int64_t queue_dropped_packets() const { return queue_dropped_packets_; }
  int64_t impairment_dropped_packets() const {
    return impairment_dropped_packets_;
  }
  int64_t duplicated_packets() const { return duplicated_packets_; }
  int64_t reordered_packets() const { return reordered_packets_; }
  int64_t queued_bytes() const { return queued_bytes_; }
  int64_t queue_packets() const { return static_cast<int64_t>(queue_.size()); }
  Duration current_queue_delay() const {
    return cfg_.rate.transmit_time(queued_bytes_);
  }
  const std::string& name() const { return name_; }

  // Sim invariants, checked by SimInvariantChecker (net/invariants.h):
  //   * packet conservation: every offered packet is delivered, dropped,
  //     queued, or in flight;
  //   * non-negative, consistent queue byte accounting;
  //   * serialization liveness: a pending queue on an up link implies an
  //     in-flight packet, and busy implies a finite scheduled finish.
  // Appends one human-readable line per violation.
  void append_invariant_violations(std::vector<std::string>* out,
                                   TimePoint now) const;

 private:
  friend struct LinkTestPeer;  // invariant tests corrupt state directly

  void reseed_impairments();
  void start_transmission();
  void finish_transmission();
  bool impairment_drop();
  uint32_t park_in_transit(Packet&& p);
  void deliver_from_transit(uint32_t slot);

  EventScheduler* sched_;
  std::string name_;
  Config cfg_;
  PacketSink* sink_ = nullptr;
  LinkTap tap_;
  ShardBus* bus_ = nullptr;  // non-null only on boundary links (sharded)
  int owner_shard_ = 0;

  // Independent impairment streams (see header comment).
  Rng loss_jitter_rng_{1};
  Rng burst_rng_{1};
  Rng reorder_rng_{1};
  Rng duplicate_rng_{1};

  bool burst_loss_enabled_ = false;
  GilbertElliott burst_loss_;
  bool burst_state_bad_ = false;

  double reorder_prob_ = 0.0;
  Duration reorder_extra_ = Duration::millis(20);
  double duplicate_prob_ = 0.0;

  RingDeque<Packet> queue_;
  int64_t queued_bytes_ = 0;
  bool busy_ = false;
  Packet in_flight_;
  TimePoint finish_at_;

  // Propagation-delay transit pool. A Packet (~200 bytes with its metadata
  // variant) does not fit the scheduler's 64-byte inline closure, so
  // packets crossing the wire are parked in indexed slots and the
  // scheduled closure captures only [this, slot]. The free list recycles
  // slots, so the pool grows to the propagation-window high-water mark
  // once and then serves the rest of the run allocation-free.
  struct TransitSlot {
    Packet p;
    uint32_t next_free = kNoSlot;
  };
  static constexpr uint32_t kNoSlot = 0xffffffff;
  std::vector<TransitSlot> transit_;
  uint32_t transit_free_ = kNoSlot;

  int64_t offered_packets_ = 0;
  int64_t delivered_bytes_ = 0;
  int64_t delivered_packets_ = 0;
  int64_t queue_dropped_packets_ = 0;
  int64_t queue_dropped_bytes_ = 0;
  int64_t impairment_dropped_packets_ = 0;
  int64_t impairment_dropped_bytes_ = 0;
  int64_t duplicated_packets_ = 0;
  int64_t reordered_packets_ = 0;
};

}  // namespace vca
