// A unidirectional link: rate-limited serialization in front of a finite
// drop-tail queue, plus propagation delay. `set_rate()` mid-simulation is
// the equivalent of re-running `tc` on the testbed router.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "core/rng.h"
#include "core/scheduler.h"
#include "core/time.h"
#include "core/units.h"
#include "net/packet.h"

namespace vca {

// Anything that can accept a packet: links, hosts, routers.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet p) = 0;
};

// Observation hook: fires for every packet that finishes serialization
// (i.e., actually crossed the wire) — the simulated tcpdump vantage point.
using LinkTap = std::function<void(const Packet&, TimePoint)>;

class Link : public PacketSink {
 public:
  struct Config {
    DataRate rate = DataRate::gbps(1);
    Duration propagation = Duration::millis(1);
    int64_t queue_bytes = 150 * 1024;  // typical CPE buffer (~120 ms at 10 Mbps)
    // Path impairments (netem-style; the paper's §8 future work):
    double random_loss = 0.0;          // i.i.d. packet loss probability
    Duration jitter_sd = Duration::zero();  // gaussian jitter on propagation
    uint64_t impairment_seed = 1;
  };

  Link(EventScheduler* sched, std::string name, Config cfg)
      : sched_(sched), name_(std::move(name)), cfg_(cfg) {}

  void set_sink(PacketSink* sink) { sink_ = sink; }
  void set_tap(LinkTap tap) { tap_ = std::move(tap); }

  // Change the serialization rate. Applies to the next packet that starts
  // serialization (like tc: the in-flight packet finishes at the old rate).
  void set_rate(DataRate r) { cfg_.rate = r; }
  DataRate rate() const { return cfg_.rate; }
  void set_queue_bytes(int64_t b) { cfg_.queue_bytes = b; }
  void set_random_loss(double p) { cfg_.random_loss = p; }
  void set_jitter(Duration sd) { cfg_.jitter_sd = sd; }

  void deliver(Packet p) override;

  // Stats.
  int64_t delivered_bytes() const { return delivered_bytes_; }
  int64_t delivered_packets() const { return delivered_packets_; }
  int64_t dropped_packets() const { return dropped_packets_; }
  int64_t dropped_bytes() const { return dropped_bytes_; }
  int64_t queued_bytes() const { return queued_bytes_; }
  Duration current_queue_delay() const {
    return cfg_.rate.transmit_time(queued_bytes_);
  }
  const std::string& name() const { return name_; }

 private:
  void start_transmission();
  void finish_transmission();

  EventScheduler* sched_;
  std::string name_;
  Config cfg_;
  PacketSink* sink_ = nullptr;
  LinkTap tap_;
  std::optional<Rng> impairment_rng_;

  std::deque<Packet> queue_;
  int64_t queued_bytes_ = 0;
  bool busy_ = false;
  Packet in_flight_;

  int64_t delivered_bytes_ = 0;
  int64_t delivered_packets_ = 0;
  int64_t dropped_packets_ = 0;
  int64_t dropped_bytes_ = 0;
};

}  // namespace vca
