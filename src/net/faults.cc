#include "net/faults.h"

#include <cassert>
#include <utility>

namespace vca {

void FaultPlan::at(TimePoint when, std::string label,
                   std::function<void()> action) {
  entries_.push_back({when, std::move(label), std::move(action)});
}

void FaultPlan::add_outage(Link* link, TimePoint start, Duration length) {
  at(start, link->name() + " down", [this, link] {
    LinkFaultState& st = state_of(link);
    if (st.depth++ == 0) {
      // Capture the live rate at outage time, not plan-build time: shaping
      // may have changed it since. Deeper windows must NOT re-capture —
      // the link is already at rate 0 and saving that would "restore" to a
      // dead link and wedge it forever.
      st.healthy = link->rate();
    }
    link->set_rate(DataRate::zero());
  });
  at(start + length, link->name() + " up", [this, link] {
    LinkFaultState& st = state_of(link);
    if (st.depth == 0) return;  // unmatched restore (defensive)
    if (--st.depth == 0) link->set_rate(st.healthy);
    // depth > 0: another overlapping outage still holds the link down;
    // its own restore will wake it.
  });
}

void FaultPlan::add_shape(Link* link, TimePoint at_time, DataRate rate) {
  at(at_time, link->name() + " shape", [this, link, rate] {
    LinkFaultState& st = state_of(link);
    if (st.depth > 0) {
      // Mid-outage shape: retarget what the final restore applies; waking
      // a downed link early would break outage-silence guarantees.
      st.healthy = rate;
    } else {
      link->set_rate(rate);
    }
  });
}

void FaultPlan::add_flap(Link* link, TimePoint first_down, int cycles,
                         Duration down_for, Duration up_for) {
  TimePoint t = first_down;
  for (int i = 0; i < cycles; ++i) {
    add_outage(link, t, down_for);
    t += down_for + up_for;
  }
}

void FaultPlan::add_burst_loss(Link* link, TimePoint start, Duration length,
                               const GilbertElliott& ge) {
  at(start, link->name() + " burst-loss on",
     [link, ge] { link->set_burst_loss(ge); });
  at(start + length, link->name() + " burst-loss off",
     [link] { link->clear_burst_loss(); });
}

void FaultPlan::add_reorder(Link* link, TimePoint start, Duration length,
                            double prob, Duration detour) {
  at(start, link->name() + " reorder on",
     [link, prob, detour] { link->set_reorder(prob, detour); });
  at(start + length, link->name() + " reorder off",
     [link] { link->set_reorder(0.0, Duration::zero()); });
}

void FaultPlan::add_duplicate(Link* link, TimePoint start, Duration length,
                              double prob) {
  at(start, link->name() + " duplicate on",
     [link, prob] { link->set_duplicate(prob); });
  at(start + length, link->name() + " duplicate off",
     [link] { link->set_duplicate(0.0); });
}

void FaultPlan::schedule(EventScheduler* sched) {
  assert(!armed_ && "FaultPlan::schedule called twice");
  armed_ = true;
  for (Entry& e : entries_) {
    sched->schedule_at(e.at, e.action);
  }
}

}  // namespace vca
