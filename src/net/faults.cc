#include "net/faults.h"

#include <cassert>
#include <utility>

namespace vca {

void FaultPlan::at(TimePoint when, std::string label,
                   std::function<void()> action) {
  entries_.push_back({when, std::move(label), std::move(action)});
}

void FaultPlan::add_outage(Link* link, TimePoint start, Duration length) {
  at(start, link->name() + " down", [this, link] {
    // Capture the live rate at outage time, not plan-build time: shaping
    // may have changed it since.
    if (!link->is_down()) saved_rate_[link] = link->rate();
    link->set_rate(DataRate::zero());
  });
  at(start + length, link->name() + " up", [this, link] {
    auto it = saved_rate_.find(link);
    if (it != saved_rate_.end()) link->set_rate(it->second);
  });
}

void FaultPlan::add_flap(Link* link, TimePoint first_down, int cycles,
                         Duration down_for, Duration up_for) {
  TimePoint t = first_down;
  for (int i = 0; i < cycles; ++i) {
    add_outage(link, t, down_for);
    t += down_for + up_for;
  }
}

void FaultPlan::add_burst_loss(Link* link, TimePoint start, Duration length,
                               const GilbertElliott& ge) {
  at(start, link->name() + " burst-loss on",
     [link, ge] { link->set_burst_loss(ge); });
  at(start + length, link->name() + " burst-loss off",
     [link] { link->clear_burst_loss(); });
}

void FaultPlan::add_reorder(Link* link, TimePoint start, Duration length,
                            double prob, Duration detour) {
  at(start, link->name() + " reorder on",
     [link, prob, detour] { link->set_reorder(prob, detour); });
  at(start + length, link->name() + " reorder off",
     [link] { link->set_reorder(0.0, Duration::zero()); });
}

void FaultPlan::add_duplicate(Link* link, TimePoint start, Duration length,
                              double prob) {
  at(start, link->name() + " duplicate on",
     [link, prob] { link->set_duplicate(prob); });
  at(start + length, link->name() + " duplicate off",
     [link] { link->set_duplicate(0.0); });
}

void FaultPlan::schedule(EventScheduler* sched) {
  assert(!armed_ && "FaultPlan::schedule called twice");
  armed_ = true;
  for (Entry& e : entries_) {
    sched->schedule_at(e.at, e.action);
  }
}

}  // namespace vca
