// Sharded parallel event core: conservative synchronization for one
// simulation split across per-region EventSchedulers (ROADMAP item 2).
//
// The partition is a property of the TOPOLOGY, not of the thread count:
// shard 0 is the control strand (core hosts, the router's own links,
// conference signaling/churn/fault timers) and each Network region gets
// one shard of its own. `--shards N` only picks how many worker threads
// execute those logical shards, so results are byte-identical at any N —
// the determinism bar the acceptance harness enforces. shards=0 keeps
// the legacy single-scheduler engine, whose event interleaving (a single
// global sequence counter) is intentionally left untouched.
//
// Synchronization is classic conservative PDES with barrier epochs:
//   * lookahead L = the minimum propagation delay over the boundary
//     links (the links that hand packets to the core router). A packet
//     sent at time t anywhere arrives at another shard no earlier than
//     t + L, because Link's jitter extra is max(0, gaussian) and reorder
//     detours only add delay — nominal propagation is a hard lower bound.
//   * each epoch runs every shard over the half-open window [cur, h),
//     h <= min(control's next event, earliest pending event + L), in
//     parallel; events scheduled at exactly h wait for the next window.
//   * at the barrier the runner drains the cross-shard mailboxes (source
//     shard ascending, FIFO within a source — a deterministic merge
//     order), fires the barrier hook (deferred cross-region control
//     calls, e.g. Conference keyframe requests), then runs the control
//     strand up to and including h and drains again.
//
// Cross-shard packet handoff: a boundary Link whose in-flight packet
// targets a foreign shard posts (arrival time, packet, sink) into the
// per-(src,dst) mailbox instead of scheduling locally. Mailboxes are
// single-producer (the owning shard's thread, during a window) /
// single-consumer (the runner thread, at a barrier) — no locks on the
// hot path; the barrier's own mutex provides the happens-before edges.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/scheduler.h"
#include "core/time.h"
#include "net/link.h"
#include "net/packet.h"

namespace vca {

// Cross-shard packet mailboxes plus the node -> shard map.
class ShardBus {
 public:
  ShardBus() { add_shard(); }  // shard 0: the control strand

  // Register one more shard (topology-build time only). Returns its index.
  int add_shard();
  int shards() const { return n_; }

  void set_node_shard(NodeId node, int shard) { node_shard_[node] = shard; }
  int shard_of(NodeId node) const {
    auto it = node_shard_.find(node);
    return it != node_shard_.end() ? it->second : 0;
  }

  // Post a packet crossing from shard `src` into shard `dst`, arriving at
  // `at`. Called only from shard src's thread during a window (or from
  // the runner thread while workers are parked).
  void post(int src, int dst, TimePoint at, PacketSink* sink, Packet p);

  // Drain every mailbox targeting `dst` into its scheduler: sources in
  // ascending order, entries in post order. Runner thread only, at a
  // barrier. Packets are parked in per-shard arrival pools (a Packet does
  // not fit the scheduler's inline closure) and freed on delivery.
  void drain_into(int dst, EventScheduler* sched);

  bool any_pending() const;
  uint64_t handoffs_from(int src) const {
    return handoffs_[static_cast<size_t>(src)];
  }
  uint64_t handoffs_total() const;

 private:
  struct Entry {
    TimePoint at;
    PacketSink* sink = nullptr;
    Packet p;
  };
  struct ArrivalSlot {
    PacketSink* sink = nullptr;
    Packet p;
    uint32_t next_free = kNoSlot;
  };
  static constexpr uint32_t kNoSlot = 0xffffffff;
  // Per-destination arrival pool: slots are filled by the runner at a
  // barrier and emptied by the destination shard's thread mid-window;
  // the barrier orders the two, so no slot is ever touched concurrently.
  struct ArrivalPool {
    std::vector<ArrivalSlot> slots;
    uint32_t free_head = kNoSlot;
  };

  void deliver_arrival(int dst, uint32_t slot);

  int n_ = 0;
  std::vector<std::vector<Entry>> boxes_;  // [src * n_ + dst]
  std::vector<ArrivalPool> pools_;         // [dst]
  std::vector<uint64_t> handoffs_;         // [src]
  std::unordered_map<NodeId, int> node_shard_;
};

// Drives the control scheduler plus the region shards through barrier
// epochs, on a pool of persistent worker threads (threads == 1 runs the
// shard windows inline — same logical partition, same results).
class ShardRunner {
 public:
  struct Options {
    int threads = 1;
  };

  // `shards[i]` is the scheduler of shard i+1; `lookahead` must be a hard
  // lower bound on cross-shard packet latency (Network computes it as the
  // minimum boundary-link propagation delay).
  ShardRunner(EventScheduler* control, std::vector<EventScheduler*> shards,
              ShardBus* bus, Duration lookahead, Options opt);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  // Runs at every barrier after the mailbox drain and before the control
  // strand — the slot for deferred cross-shard control calls.
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  // Advance every shard to `end` (events at exactly `end` included, like
  // EventScheduler::run_until).
  void run_until(TimePoint end);

  // run_until under a SHARED event budget: the cap covers events
  // dispatched by the control strand and every shard together (the
  // fuzzer's event-storm oracle; see the regression test). Returns false
  // when the budget is exhausted. The remaining-budget slice handed to
  // each shard is computed before the window from the epoch-start total,
  // so the verdict is identical at any worker-thread count.
  bool run_until_capped(TimePoint end, uint64_t max_events);

  uint64_t events_processed() const;
  int shard_count() const { return static_cast<int>(shards_.size()) + 1; }

 private:
  struct WindowJob {
    TimePoint end;
    uint64_t cap = 0;
    bool inclusive = false;  // final pass: run_until (<=) not run_window (<)
  };

  bool drive(TimePoint end, uint64_t max_events);
  void run_shard_window(size_t idx);
  void execute_window(const WindowJob& job);
  void worker_main(size_t worker_index);

  EventScheduler* control_;
  std::vector<EventScheduler*> shards_;
  ShardBus* bus_;
  Duration lookahead_;
  std::function<void()> barrier_hook_;

  // Barrier state. Workers sleep on cv_start_ until the epoch generation
  // advances, run their strided share of shards for the posted window,
  // then bump done_ and sleep again. The runner publishes the window
  // under mu_ and collects per-shard dispatch counts after done_ == all.
  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  size_t done_ = 0;
  bool quit_ = false;
  WindowJob job_;
  std::vector<uint64_t> window_dispatched_;  // [shard index - 1]
};

}  // namespace vca
