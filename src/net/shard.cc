#include "net/shard.h"

#include <algorithm>
#include <utility>

namespace vca {

// --- ShardBus --------------------------------------------------------------

int ShardBus::add_shard() {
  int id = n_++;
  boxes_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), {});
  pools_.resize(static_cast<size_t>(n_));
  handoffs_.resize(static_cast<size_t>(n_), 0);
  return id;
}

void ShardBus::post(int src, int dst, TimePoint at, PacketSink* sink,
                    Packet p) {
  boxes_[static_cast<size_t>(src) * static_cast<size_t>(n_) +
         static_cast<size_t>(dst)]
      .push_back(Entry{at, sink, std::move(p)});
  ++handoffs_[static_cast<size_t>(src)];
}

void ShardBus::deliver_arrival(int dst, uint32_t slot) {
  ArrivalPool& pool = pools_[static_cast<size_t>(dst)];
  // Move out before the sink runs: the sink may cascade into another
  // hand-off that allocates a slot (reallocating `slots`), so the slot is
  // re-indexed — never held by reference — when freed afterwards.
  ArrivalSlot& s = pool.slots[slot];
  PacketSink* sink = s.sink;
  Packet p = std::move(s.p);
  if (sink != nullptr) sink->deliver(std::move(p));
  pool.slots[slot].next_free = pool.free_head;
  pool.free_head = slot;
}

void ShardBus::drain_into(int dst, EventScheduler* sched) {
  ArrivalPool& pool = pools_[static_cast<size_t>(dst)];
  for (int src = 0; src < n_; ++src) {
    auto& box = boxes_[static_cast<size_t>(src) * static_cast<size_t>(n_) +
                       static_cast<size_t>(dst)];
    for (Entry& e : box) {
      uint32_t slot;
      if (pool.free_head != kNoSlot) {
        slot = pool.free_head;
        pool.free_head = pool.slots[slot].next_free;
        pool.slots[slot].sink = e.sink;
        pool.slots[slot].p = std::move(e.p);
      } else {
        slot = static_cast<uint32_t>(pool.slots.size());
        pool.slots.push_back(ArrivalSlot{e.sink, std::move(e.p), kNoSlot});
      }
      sched->schedule_at(e.at,
                         [this, dst, slot] { deliver_arrival(dst, slot); });
    }
    box.clear();
  }
}

bool ShardBus::any_pending() const {
  for (const auto& box : boxes_) {
    if (!box.empty()) return true;
  }
  return false;
}

uint64_t ShardBus::handoffs_total() const {
  uint64_t total = 0;
  for (uint64_t h : handoffs_) total += h;
  return total;
}

// --- ShardRunner -----------------------------------------------------------

ShardRunner::ShardRunner(EventScheduler* control,
                         std::vector<EventScheduler*> shards, ShardBus* bus,
                         Duration lookahead, Options opt)
    : control_(control),
      shards_(std::move(shards)),
      bus_(bus),
      lookahead_(lookahead) {
  window_dispatched_.assign(shards_.size(), 0);
  threads_ = std::clamp(opt.threads, 1, static_cast<int>(shards_.size()));
  if (shards_.empty()) threads_ = 1;
  if (threads_ > 1) {
    workers_.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) {
      workers_.emplace_back(
          [this, w] { worker_main(static_cast<size_t>(w)); });
    }
  }
}

ShardRunner::~ShardRunner() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      quit_ = true;
      ++generation_;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }
}

void ShardRunner::run_shard_window(size_t idx) {
  EventScheduler* s = shards_[idx];
  window_dispatched_[idx] = job_.inclusive
                                ? [&] {
                                    uint64_t before = s->events_processed();
                                    s->run_until(job_.end);
                                    return s->events_processed() - before;
                                  }()
                                : s->run_window_capped(job_.end, job_.cap);
}

void ShardRunner::worker_main(size_t worker_index) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return generation_ != seen || quit_; });
      if (quit_) return;
      seen = generation_;
    }
    // Strided ownership: worker w runs shards w, w+T, w+2T, ... so the
    // assignment is fixed for the whole run (cache affinity) and no two
    // workers ever touch the same scheduler.
    for (size_t i = worker_index; i < shards_.size();
         i += static_cast<size_t>(threads_)) {
      run_shard_window(i);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_;
    }
    cv_done_.notify_one();
  }
}

void ShardRunner::execute_window(const WindowJob& job) {
  if (workers_.empty()) {
    job_ = job;
    for (size_t i = 0; i < shards_.size(); ++i) run_shard_window(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    done_ = 0;
    ++generation_;
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return done_ == workers_.size(); });
}

uint64_t ShardRunner::events_processed() const {
  uint64_t total = control_->events_processed();
  for (const EventScheduler* s : shards_) total += s->events_processed();
  return total;
}

void ShardRunner::run_until(TimePoint end) { drive(end, UINT64_MAX); }

bool ShardRunner::run_until_capped(TimePoint end, uint64_t max_events) {
  return drive(end, max_events);
}

bool ShardRunner::drive(TimePoint end, uint64_t max_events) {
  uint64_t dispatched = 0;
  TimePoint cur = control_->now();

  auto barrier = [&]() -> bool {
    // 1. Merge the window's cross-shard traffic, sources ascending.
    for (int d = 0; d < bus_->shards(); ++d) {
      bus_->drain_into(d, d == 0 ? control_
                                 : shards_[static_cast<size_t>(d - 1)]);
    }
    // 2. Deferred cross-shard control calls (e.g. relay keyframe
    //    requests) fire here, before the control strand's own events.
    if (barrier_hook_) barrier_hook_();
    // 3. The control strand catches up to the barrier instant. Its sends
    //    over boundary links post mailbox entries (arrival > cur, so
    //    they belong to a later window) — drain them right away.
    uint64_t before = control_->events_processed();
    control_->run_until(cur);
    dispatched += control_->events_processed() - before;
    for (int d = 1; d < bus_->shards(); ++d) {
      bus_->drain_into(d, shards_[static_cast<size_t>(d - 1)]);
    }
    return dispatched < max_events;
  };

  while (cur < end) {
    if (!barrier()) return false;

    // Earliest pending event anywhere bounds how far the windows may
    // reach: nothing can be sent before it, so nothing can arrive at a
    // foreign shard before it + lookahead.
    TimePoint t0 = control_->next_event_time();
    for (EventScheduler* s : shards_) t0 = std::min(t0, s->next_event_time());
    if (t0 == TimePoint::infinite()) {
      // Globally idle: jump every clock straight to the end.
      control_->run_until(end);
      for (EventScheduler* s : shards_) s->run_window(end);
      cur = end;
      break;
    }
    TimePoint h = std::min(end, t0 + lookahead_);
    // Control events must execute at a barrier, never inside a window.
    h = std::min(h, control_->next_event_time());
    if (h <= cur) h = std::min(end, cur + lookahead_);  // defensive floor

    uint64_t cap = max_events - dispatched;  // identical for every shard
    execute_window(WindowJob{h, cap, false});
    bool capped = false;
    for (size_t i = 0; i < shards_.size(); ++i) {
      dispatched += window_dispatched_[i];
      capped |= window_dispatched_[i] >= cap &&
                shards_[i]->next_event_time() < h;
    }
    if (capped || dispatched >= max_events) return false;
    cur = h;
  }

  // Final inclusive pass: the control strand has run at `end`; now the
  // shards take their events at exactly `end` (zero-delay chains
  // included, matching run_until semantics), then one last drain/hook so
  // nothing posted at the horizon is lost for a later run_until call.
  if (!barrier()) return false;
  execute_window(WindowJob{end, 0, true});
  for (size_t i = 0; i < shards_.size(); ++i) dispatched += window_dispatched_[i];
  if (dispatched >= max_events) return false;
  return barrier();
}

}  // namespace vca
