// Time-series containers used by the measurement harness: raw samples,
// windowed byte→rate conversion, and the 5-second rolling-median used by
// the paper's time-to-recovery metric (§4.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/time.h"
#include "core/units.h"

namespace vca {

struct Sample {
  TimePoint at;
  double value = 0.0;
};

// An append-only (time, value) series. Times must be non-decreasing.
class TimeSeries {
 public:
  void push(TimePoint at, double value) {
    // Front-load capacity so steady-state pushes during a measured call
    // never reallocate mid-window (a minute of 1 Hz samples fits many
    // doublings over).
    if (samples_.capacity() == 0) samples_.reserve(kInitialCapacity);
    samples_.push_back({at, value});
  }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  // All values with at in [from, to).
  std::vector<double> values_between(TimePoint from, TimePoint to) const {
    std::vector<double> out;
    for (const auto& s : samples_) {
      if (s.at >= from && s.at < to) out.push_back(s.value);
    }
    return out;
  }

  // Rolling median over a trailing window, evaluated at each sample time.
  TimeSeries rolling_median(Duration window) const;

  // Average of values in [from, to); nullopt if none.
  std::optional<double> mean_between(TimePoint from, TimePoint to) const;

 private:
  static constexpr size_t kInitialCapacity = 256;
  std::vector<Sample> samples_;
};

// Converts per-packet byte arrivals into a rate series sampled on a fixed
// grid (default 1 s buckets) — the simulated analogue of reading tcpdump
// output into per-second throughput.
class RateMeter {
 public:
  explicit RateMeter(Duration bucket = Duration::seconds(1)) : bucket_(bucket) {}

  void on_bytes(TimePoint at, int64_t bytes) {
    if (buckets_.capacity() == 0) buckets_.reserve(kInitialBuckets);
    int64_t idx = at.ns() / bucket_.ns();
    if (buckets_.empty() || idx > last_idx_) {
      // Fill any skipped buckets with zero so idle periods show as 0 rate.
      while (!buckets_.empty() && last_idx_ + 1 < idx) {
        buckets_.push_back(0);
        ++last_idx_;
      }
      if (buckets_.empty()) first_idx_ = idx;
      buckets_.push_back(0);
      last_idx_ = idx;
    }
    if (idx >= first_idx_ &&
        idx - first_idx_ < static_cast<int64_t>(buckets_.size())) {
      buckets_[static_cast<size_t>(idx - first_idx_)] += bytes;
    }
    total_bytes_ += bytes;
  }

  int64_t total_bytes() const { return total_bytes_; }
  Duration bucket() const { return bucket_; }

  // Rate series; each sample is stamped at the *end* of its bucket.
  TimeSeries rates() const {
    TimeSeries out;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      TimePoint end = TimePoint::from_ns((first_idx_ + static_cast<int64_t>(i) + 1) *
                                         bucket_.ns());
      out.push(end, rate_from_bytes(buckets_[i], bucket_).mbps_f());
    }
    return out;
  }

  // Mean rate over buckets fully inside [from, to).
  DataRate mean_rate(TimePoint from, TimePoint to) const {
    int64_t bytes = 0;
    int64_t n = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      TimePoint start = TimePoint::from_ns((first_idx_ + static_cast<int64_t>(i)) *
                                           bucket_.ns());
      if (start >= from && start + bucket_ <= to) {
        bytes += buckets_[i];
        ++n;
      }
    }
    if (n == 0) return DataRate::zero();
    return rate_from_bytes(bytes, bucket_ * n);
  }

 private:
  static constexpr size_t kInitialBuckets = 256;
  Duration bucket_;
  std::vector<int64_t> buckets_;
  int64_t first_idx_ = 0;
  int64_t last_idx_ = -1;
  int64_t total_bytes_ = 0;
};

}  // namespace vca
