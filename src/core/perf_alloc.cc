// Global allocation instrumentation. Link this TU (CMake target
// vca_perf_alloc) into a binary to have every operator new/delete bump
// the counters in core/perf.h — the allocation-gate test uses it to prove
// the steady-state hot loop of a call is allocation-free. Ordinary
// targets never link it, so their allocation path is the stock one.
//
// The replacements forward to malloc/free, which the sanitizer runtimes
// intercept as usual, so instrumented targets stay ASan/TSan-compatible.
#include <execinfo.h>
#include <malloc.h>
#include <unistd.h>

#include <cstdlib>
#include <new>

#include "core/perf.h"

namespace {

struct TrackingArmed {
  TrackingArmed() {
    vca::perf::g_alloc_tracking.store(true, std::memory_order_relaxed);
  }
};
TrackingArmed g_armed;

// When the trap is armed, the offending allocation identifies itself with
// a raw backtrace (feed the addresses to addr2line -e <binary>) and
// aborts — environments without a debugger still get the culprit.
void maybe_trap() {
  if (!vca::perf::g_alloc_trap.load(std::memory_order_relaxed)) return;
  vca::perf::set_alloc_trap(false);  // don't re-enter from backtrace's allocs
  void* frames[32];
  int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, STDERR_FILENO);
  std::abort();
}

void* counted_alloc(std::size_t n) {
  maybe_trap();
  vca::perf::g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  vca::perf::g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p != nullptr) {
    vca::perf::note_live_alloc(
        static_cast<int64_t>(malloc_usable_size(p)));
  }
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  maybe_trap();
  vca::perf::g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  vca::perf::g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (n == 0) n = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p != nullptr) {
    vca::perf::note_live_alloc(
        static_cast<int64_t>(malloc_usable_size(p)));
  }
  return p;
}

void counted_free(void* p) {
  if (p != nullptr) {
    vca::perf::g_free_calls.fetch_add(1, std::memory_order_relaxed);
    vca::perf::note_live_free(
        static_cast<int64_t>(malloc_usable_size(p)));
  }
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_aligned_alloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
