// Deterministic random streams.
//
// Every experiment seeds one root Rng; components derive independent
// sub-streams via fork(tag) so adding randomness to one component never
// perturbs another's draws. This is what makes every figure reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace vca {

class Rng {
 public:
  explicit Rng(uint64_t seed)
      : seed_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed), engine_(seed_) {}

  // Derive an independent stream keyed by `tag`.
  Rng fork(std::string_view tag) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a over the tag
    for (char c : tag) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return Rng(seed_ ^ h);
  }

  Rng fork(uint64_t salt) const {
    return Rng(seed_ ^ ((salt + 1) * 0x9e3779b97f4a7c15ULL));
  }

  uint64_t seed() const { return seed_; }

  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  int64_t uniform_int(int64_t lo, int64_t hi) {  // inclusive
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace vca
