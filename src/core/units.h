// Strong types for data rates and sizes.
#pragma once

#include <cstdint>
#include <ostream>

#include "core/time.h"

namespace vca {

// A data rate in bits per second. Rates in this codebase are always
// wire rates (payload + headers) unless a name says otherwise.
class DataRate {
 public:
  constexpr DataRate() = default;

  static constexpr DataRate bps(int64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(int64_t v) { return DataRate(v * 1000); }
  static constexpr DataRate kbps_d(double v) {
    return DataRate(static_cast<int64_t>(v * 1000.0));
  }
  static constexpr DataRate mbps(int64_t v) { return DataRate(v * 1'000'000); }
  static constexpr DataRate mbps_d(double v) {
    return DataRate(static_cast<int64_t>(v * 1e6));
  }
  static constexpr DataRate gbps(int64_t v) { return DataRate(v * 1'000'000'000); }
  static constexpr DataRate zero() { return DataRate(0); }

  constexpr int64_t bits_per_sec() const { return bps_; }
  constexpr double kbps_f() const { return static_cast<double>(bps_) / 1e3; }
  constexpr double mbps_f() const { return static_cast<double>(bps_) / 1e6; }
  constexpr bool is_zero() const { return bps_ == 0; }

  // Time to serialize `bytes` at this rate. The intermediate
  // bytes * 8e9 passes int64 range at ~1.15e9 bytes (a few seconds of
  // 1 Gbps traffic), so the product is carried in 128 bits.
  constexpr Duration transmit_time(int64_t bytes) const {
    if (bps_ <= 0) return Duration::infinite();
    return Duration::nanos(static_cast<int64_t>(
        static_cast<__int128>(bytes) * 8 * 1'000'000'000 / bps_));
  }

  // Bytes transferred in `d` at this rate. bps_ * d.ns() is ~1e19 at
  // 1 Gbps over 10 s — past int64 — so the product is carried in 128 bits.
  constexpr int64_t bytes_in(Duration d) const {
    return static_cast<int64_t>(static_cast<__int128>(bps_) * d.ns() / 8 /
                                1'000'000'000);
  }

  constexpr DataRate operator+(DataRate o) const { return DataRate(bps_ + o.bps_); }
  constexpr DataRate operator-(DataRate o) const { return DataRate(bps_ - o.bps_); }
  constexpr DataRate operator*(double k) const {
    return DataRate(static_cast<int64_t>(static_cast<double>(bps_) * k));
  }
  constexpr double operator/(DataRate o) const {
    return static_cast<double>(bps_) / static_cast<double>(o.bps_);
  }
  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  explicit constexpr DataRate(int64_t bps) : bps_(bps) {}
  int64_t bps_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, DataRate r) {
  return os << r.mbps_f() << "Mbps";
}

// 128-bit intermediate: bytes * 8e9 overflows int64 for byte counts
// beyond ~1.15e9 (a 10 s window of 1 Gbps traffic).
constexpr DataRate rate_from_bytes(int64_t bytes, Duration over) {
  if (over.ns() <= 0) return DataRate::zero();
  return DataRate::bps(static_cast<int64_t>(
      static_cast<__int128>(bytes) * 8 * 1'000'000'000 / over.ns()));
}

}  // namespace vca
