// Zero-cost-when-off performance counters for the simulator core.
//
// Two kinds of state live here:
//
//  * Hot-loop accumulators (peak event-heap depth, link packet totals):
//    fed once per *simulation run* by the scenario runners — never from
//    inside the event loop — and surfaced through BenchReport's timing
//    line next to the existing events/sec counter. Cost when nobody
//    reads them: a couple of relaxed atomic ops per run.
//
//  * Heap instrumentation (g_alloc_*): bumped by the replacement
//    operator new/delete in perf_alloc.cc, which is linked ONLY into
//    targets that opt in (the allocation-gate test). In every other
//    binary these atomics exist but are never written, so the counters
//    read zero and the hot path contains no instrumentation at all —
//    "off" costs nothing because nothing is compiled into it.
//
// Reading the counters: see EXPERIMENTS.md ("Perf counters").
#pragma once

#include <atomic>
#include <cstdint>

namespace vca::perf {

// --- heap instrumentation (written only by perf_alloc.cc) -----------------

inline std::atomic<uint64_t> g_alloc_calls{0};
inline std::atomic<uint64_t> g_alloc_bytes{0};
inline std::atomic<uint64_t> g_free_calls{0};
// Flipped on by perf_alloc.cc's initializer; lets reports distinguish a
// genuine zero-allocation window from "not instrumented".
inline std::atomic<bool> g_alloc_tracking{false};

inline bool alloc_tracking_active() {
  return g_alloc_tracking.load(std::memory_order_relaxed);
}
inline uint64_t alloc_calls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}
inline uint64_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}
inline uint64_t free_calls() {
  return g_free_calls.load(std::memory_order_relaxed);
}

// Debug aid for hunting stray hot-loop allocations: while armed (and
// perf_alloc.cc is linked), the very next allocation prints a backtrace
// to stderr and aborts. Arm it right before a window that must be
// allocation-free; the trap names the culprit instead of just counting it.
inline std::atomic<bool> g_alloc_trap{false};
inline void set_alloc_trap(bool on) {
  g_alloc_trap.store(on, std::memory_order_relaxed);
}

// --- per-run accumulators (fed by scenario runners) -----------------------

inline std::atomic<uint64_t> g_peak_heap_events{0};
inline std::atomic<uint64_t> g_link_packets{0};

// Record a run's event-heap high-water mark; the global keeps the max
// across every run in the process (sweeps run many in parallel).
inline void note_peak_heap_events(uint64_t peak) {
  uint64_t cur = g_peak_heap_events.load(std::memory_order_relaxed);
  while (peak > cur && !g_peak_heap_events.compare_exchange_weak(
                           cur, peak, std::memory_order_relaxed)) {
  }
}

// Record packets delivered across a run's links (per-Link packets/sec in
// the timing line = this total over wall time).
inline void note_link_packets(uint64_t n) {
  g_link_packets.fetch_add(n, std::memory_order_relaxed);
}

inline uint64_t peak_heap_events() {
  return g_peak_heap_events.load(std::memory_order_relaxed);
}
inline uint64_t link_packets_total() {
  return g_link_packets.load(std::memory_order_relaxed);
}

}  // namespace vca::perf
