// Zero-cost-when-off performance counters for the simulator core.
//
// Two kinds of state live here:
//
//  * Hot-loop accumulators (peak event-heap depth, link packet totals):
//    fed once per *simulation run* by the scenario runners — never from
//    inside the event loop — and surfaced through BenchReport's timing
//    line next to the existing events/sec counter. Cost when nobody
//    reads them: a couple of relaxed atomic ops per run.
//
//  * Heap instrumentation (g_alloc_*): bumped by the replacement
//    operator new/delete in perf_alloc.cc, which is linked ONLY into
//    targets that opt in (the allocation-gate test). In every other
//    binary these atomics exist but are never written, so the counters
//    read zero and the hot path contains no instrumentation at all —
//    "off" costs nothing because nothing is compiled into it.
//
// Reading the counters: see EXPERIMENTS.md ("Perf counters").
#pragma once

#include <atomic>
#include <cstdint>

namespace vca::perf {

// --- heap instrumentation (written only by perf_alloc.cc) -----------------

inline std::atomic<uint64_t> g_alloc_calls{0};
inline std::atomic<uint64_t> g_alloc_bytes{0};
inline std::atomic<uint64_t> g_free_calls{0};
// Flipped on by perf_alloc.cc's initializer; lets reports distinguish a
// genuine zero-allocation window from "not instrumented".
inline std::atomic<bool> g_alloc_tracking{false};

inline bool alloc_tracking_active() {
  return g_alloc_tracking.load(std::memory_order_relaxed);
}
inline uint64_t alloc_calls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}
inline uint64_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}
inline uint64_t free_calls() {
  return g_free_calls.load(std::memory_order_relaxed);
}

// Live-heap accounting (also written only by perf_alloc.cc): bytes
// currently allocated and the high-water mark, measured via
// malloc_usable_size so frees subtract exactly what their allocation
// added. The streaming memory-cap gate works on deltas: snapshot
// live_bytes() as the baseline, reset_peak_live(), run the workload, and
// peak_live_bytes() - baseline is the workload's peak footprint.
inline std::atomic<int64_t> g_live_bytes{0};
inline std::atomic<int64_t> g_peak_live_bytes{0};

inline void note_live_alloc(int64_t n) {
  int64_t live = g_live_bytes.fetch_add(n, std::memory_order_relaxed) + n;
  int64_t cur = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > cur && !g_peak_live_bytes.compare_exchange_weak(
                           cur, live, std::memory_order_relaxed)) {
  }
}
inline void note_live_free(int64_t n) {
  g_live_bytes.fetch_sub(n, std::memory_order_relaxed);
}
inline int64_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
inline int64_t peak_live_bytes() {
  return g_peak_live_bytes.load(std::memory_order_relaxed);
}
// Restart peak tracking from the current live level.
inline void reset_peak_live() {
  g_peak_live_bytes.store(live_bytes(), std::memory_order_relaxed);
}

// Debug aid for hunting stray hot-loop allocations: while armed (and
// perf_alloc.cc is linked), the very next allocation prints a backtrace
// to stderr and aborts. Arm it right before a window that must be
// allocation-free; the trap names the culprit instead of just counting it.
inline std::atomic<bool> g_alloc_trap{false};
inline void set_alloc_trap(bool on) {
  g_alloc_trap.store(on, std::memory_order_relaxed);
}

// --- per-run accumulators (fed by scenario runners) -----------------------

inline std::atomic<uint64_t> g_peak_heap_events{0};
inline std::atomic<uint64_t> g_link_packets{0};

// Record a run's event-heap high-water mark; the global keeps the max
// across every run in the process (sweeps run many in parallel).
inline void note_peak_heap_events(uint64_t peak) {
  uint64_t cur = g_peak_heap_events.load(std::memory_order_relaxed);
  while (peak > cur && !g_peak_heap_events.compare_exchange_weak(
                           cur, peak, std::memory_order_relaxed)) {
  }
}

// Record packets delivered across a run's links (per-Link packets/sec in
// the timing line = this total over wall time).
inline void note_link_packets(uint64_t n) {
  g_link_packets.fetch_add(n, std::memory_order_relaxed);
}

inline uint64_t peak_heap_events() {
  return g_peak_heap_events.load(std::memory_order_relaxed);
}
inline uint64_t link_packets_total() {
  return g_link_packets.load(std::memory_order_relaxed);
}

// --- per-shard accumulators (sharded parallel core, net/shard.h) ----------
//
// Shard 0 is the control strand; 1..N-1 are region shards. Fed once per
// sharded run by the scenario runners (never from inside a window), keyed
// by shard index so BenchReport's timing line can break events, heap
// high-water marks, and cross-shard mailbox handoffs down per shard.
// Fixed-size: a run with more shards than kMaxShards folds the tail into
// the last slot rather than dropping it.

inline constexpr int kMaxShards = 32;

inline std::atomic<uint64_t> g_shard_events[kMaxShards]{};
inline std::atomic<uint64_t> g_shard_peak_heap[kMaxShards]{};
inline std::atomic<uint64_t> g_shard_handoffs[kMaxShards]{};
inline std::atomic<int> g_shard_slots{0};

inline void note_shard_run(int shard, uint64_t events, uint64_t peak_heap,
                           uint64_t handoffs) {
  if (shard < 0) return;
  if (shard >= kMaxShards) shard = kMaxShards - 1;
  g_shard_events[shard].fetch_add(events, std::memory_order_relaxed);
  g_shard_handoffs[shard].fetch_add(handoffs, std::memory_order_relaxed);
  uint64_t cur = g_shard_peak_heap[shard].load(std::memory_order_relaxed);
  while (peak_heap > cur && !g_shard_peak_heap[shard].compare_exchange_weak(
                                cur, peak_heap, std::memory_order_relaxed)) {
  }
  int slots = g_shard_slots.load(std::memory_order_relaxed);
  while (shard + 1 > slots && !g_shard_slots.compare_exchange_weak(
                                  slots, shard + 1,
                                  std::memory_order_relaxed)) {
  }
}

// Number of shard slots ever fed in this process (0 = no sharded run).
inline int shard_slots() {
  return g_shard_slots.load(std::memory_order_relaxed);
}
inline uint64_t shard_events(int shard) {
  return g_shard_events[shard].load(std::memory_order_relaxed);
}
inline uint64_t shard_peak_heap(int shard) {
  return g_shard_peak_heap[shard].load(std::memory_order_relaxed);
}
inline uint64_t shard_handoffs(int shard) {
  return g_shard_handoffs[shard].load(std::memory_order_relaxed);
}

}  // namespace vca::perf
