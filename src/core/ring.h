// A vector-backed ring deque for hot-path FIFO queues.
//
// std::deque allocates and frees ~512-byte node blocks continuously while
// a queue cycles in steady state, which shows up directly in the
// allocation counter of an instrumented run. RingDeque keeps one
// power-of-two circular buffer that doubles on overflow and is never
// shrunk: once a queue has seen its high-water mark, push/pop are
// allocation-free for the rest of the simulation. Used by Link's drop-tail
// queue, the RTP pacer, and the REMB estimator's sliding windows.
#pragma once

#include <cstddef>
#include <iterator>
#include <new>
#include <utility>

namespace vca {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  RingDeque(const RingDeque& o) { copy_from(o); }

  RingDeque(RingDeque&& o) noexcept
      : buf_(o.buf_), cap_(o.cap_), head_(o.head_), size_(o.size_) {
    o.buf_ = nullptr;
    o.cap_ = 0;
    o.head_ = 0;
    o.size_ = 0;
  }

  RingDeque& operator=(const RingDeque& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }

  RingDeque& operator=(RingDeque&& o) noexcept {
    if (this != &o) {
      destroy();
      buf_ = o.buf_;
      cap_ = o.cap_;
      head_ = o.head_;
      size_ = o.size_;
      o.buf_ = nullptr;
      o.cap_ = 0;
      o.head_ = 0;
      o.size_ = 0;
    }
    return *this;
  }

  ~RingDeque() { destroy(); }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* p = ::new (static_cast<void*>(slot(size_))) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_front() {
    slot(0)->~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  void pop_back() {
    slot(size_ - 1)->~T();
    --size_;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) slot(i)->~T();
    head_ = 0;
    size_ = 0;
  }

  T& front() { return *slot(0); }
  const T& front() const { return *slot(0); }
  T& back() { return *slot(size_ - 1); }
  const T& back() const { return *slot(size_ - 1); }
  T& operator[](std::size_t i) { return *slot(i); }
  const T& operator[](std::size_t i) const { return *slot(i); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  // Pre-size the buffer (rounded up to a power of two) so a queue with a
  // known high-water mark never reallocates mid-simulation.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t target = cap_ == 0 ? kInitialCap : cap_;
    while (target < n) target *= 2;
    grow_to(target);
  }

  // Minimal random-access iteration (range-for, index arithmetic).
  template <typename Q, typename Ref>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = Ref*;
    using reference = Ref&;

    Iter(Q* q, std::size_t i) : q_(q), i_(i) {}
    Ref& operator*() const { return (*q_)[i_]; }
    Ref* operator->() const { return &(*q_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++i_;
      return t;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    Q* q_;
    std::size_t i_;
  };

  using iterator = Iter<RingDeque, T>;
  using const_iterator = Iter<const RingDeque, const T>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  static constexpr std::size_t kInitialCap = 16;

  T* slot(std::size_t i) const {
    return buf_ + ((head_ + i) & (cap_ - 1));
  }

  void grow() { grow_to(cap_ == 0 ? kInitialCap : cap_ * 2); }

  void grow_to(std::size_t new_cap) {
    T* buf = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                            std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(buf + i)) T(std::move(*slot(i)));
      slot(i)->~T();
    }
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t{alignof(T)});
    }
    buf_ = buf;
    cap_ = new_cap;
    head_ = 0;
  }

  void destroy() {
    clear();
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t{alignof(T)});
      buf_ = nullptr;
      cap_ = 0;
    }
  }

  void copy_from(const RingDeque& o) {
    for (const T& v : o) push_back(v);
  }

  T* buf_ = nullptr;
  std::size_t cap_ = 0;  // always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace vca
