// Summary statistics used when aggregating repeated experiments:
// median, percentiles, mean, and the 90% confidence intervals the paper
// draws as bands around each curve.
#pragma once

#include <cstddef>
#include <vector>

namespace vca {

double mean_of(const std::vector<double>& v);
double median_of_sorted_copy(std::vector<double> v);
// p in [0,100]; linear interpolation between closest ranks.
double percentile_of(std::vector<double> v, double p);
double stddev_of(const std::vector<double>& v);  // sample stddev (n-1)

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

// Two-sided confidence interval on the mean using Student's t critical
// values (the paper runs 3-5 repetitions per condition, so normal
// approximations would be too tight).
ConfidenceInterval confidence_interval(const std::vector<double>& v,
                                       double confidence = 0.90);

}  // namespace vca
