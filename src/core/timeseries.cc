#include "core/timeseries.h"

#include <deque>

namespace vca {

namespace {
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
  return (lo + hi) / 2.0;
}
}  // namespace

TimeSeries TimeSeries::rolling_median(Duration window) const {
  TimeSeries out;
  std::deque<Sample> in_window;
  for (const auto& s : samples_) {
    in_window.push_back(s);
    while (!in_window.empty() && in_window.front().at < s.at - window) {
      in_window.pop_front();
    }
    std::vector<double> vals;
    vals.reserve(in_window.size());
    for (const auto& w : in_window) vals.push_back(w.value);
    out.push(s.at, median_of(std::move(vals)));
  }
  return out;
}

std::optional<double> TimeSeries::mean_between(TimePoint from, TimePoint to) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const auto& s : samples_) {
    if (s.at >= from && s.at < to) {
      sum += s.value;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

}  // namespace vca
