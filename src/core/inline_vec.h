// A small vector with inline storage for the first N elements.
//
// Built for per-packet metadata that is almost always tiny but must not
// be artificially capped: RtcpMeta's NACK list holds a handful of
// sequence numbers in the common case, yet a burst-lossy report can ask
// for dozens. The first N elements live inside the object (so copying a
// Packet through the network never touches the heap); growth past N
// spills to a heap buffer exactly like a std::vector would.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace vca {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "inline capacity must be nonzero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  InlineVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  InlineVec(const InlineVec& o) { append_from(o); }

  InlineVec(InlineVec&& o) noexcept { steal_from(o); }

  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) {
      clear();
      append_from(o);
    }
    return *this;
  }

  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this != &o) {
      clear();
      release_heap();
      steal_from(o);
    }
    return *this;
  }

  ~InlineVec() {
    clear();
    release_heap();
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* p = ::new (static_cast<void*>(data_ptr() + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() {
    data_ptr()[size_ - 1].~T();
    --size_;
  }

  void clear() {
    T* d = data_ptr();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

  T& operator[](std::size_t i) { return data_ptr()[i]; }
  const T& operator[](std::size_t i) const { return data_ptr()[i]; }
  T& back() { return data_ptr()[size_ - 1]; }
  const T& back() const { return data_ptr()[size_ - 1]; }
  T& front() { return data_ptr()[0]; }
  const T& front() const { return data_ptr()[0]; }

  T* data() { return data_ptr(); }
  const T* data() const { return data_ptr(); }
  iterator begin() { return data_ptr(); }
  iterator end() { return data_ptr() + size_; }
  const_iterator begin() const { return data_ptr(); }
  const_iterator end() const { return data_ptr() + size_; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  // True while elements still live in the inline buffer (no heap spill).
  bool is_inline() const { return heap_ == nullptr; }

  static constexpr std::size_t inline_capacity() { return N; }

 private:
  T* data_ptr() {
    return heap_ != nullptr ? heap_
                            : std::launder(reinterpret_cast<T*>(inline_));
  }
  const T* data_ptr() const {
    return heap_ != nullptr ? heap_
                            : std::launder(reinterpret_cast<const T*>(inline_));
  }

  void grow() {
    std::size_t new_cap = cap_ * 2;
    T* buf = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                            std::align_val_t{alignof(T)}));
    T* d = data_ptr();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(buf + i)) T(std::move(d[i]));
      d[i].~T();
    }
    release_heap();
    heap_ = buf;
    cap_ = new_cap;
  }

  void release_heap() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
      cap_ = N;
    }
  }

  void append_from(const InlineVec& o) {
    for (const T& v : o) push_back(v);
  }

  // Precondition: *this is empty with no heap buffer.
  void steal_from(InlineVec& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      T* src = o.data_ptr();
      T* dst = std::launder(reinterpret_cast<T*>(inline_));
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
        src[i].~T();
      }
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

template <typename T, std::size_t N>
bool operator==(const InlineVec<T, N>& a, const InlineVec<T, N>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace vca
