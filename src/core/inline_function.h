// A small-buffer-only callable for the event hot path.
//
// Every simulator event used to ride in a std::function, whose copy/move
// machinery and (for captures past ~16 bytes) heap allocation dominated
// scheduler cost at the millions-of-events-per-second the sweeps run at.
// InlineCallback stores its target in a fixed 64-byte inline buffer and
// refuses — at compile time — anything that does not fit: the sim's own
// closures capture a `this` pointer and at most a couple of scalars, and a
// capture that outgrows the buffer is a hot-path bug, not something to
// paper over with an allocation (Link parks whole Packets in a transit
// pool for exactly this reason).
//
// Trivially copyable targets (almost every closure in src/) move as a raw
// byte copy with no manager call, which keeps d-ary-heap sift operations
// cheap. Non-trivial targets (e.g. std::function handed in by tests) get a
// generated manager that move-constructs/destroys properly.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace vca {

class InlineCallback {
 public:
  static constexpr std::size_t kCapacity = 64;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  // Does a callable type fit the inline buffer? Exposed so call sites (and
  // the compile-fail test) can static_assert on it with a readable message.
  template <typename F>
  static constexpr bool fits =
      sizeof(std::decay_t<F>) <= kCapacity &&
      alignof(std::decay_t<F>) <= kAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&> &&
             InlineCallback::fits<F>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "callable capture exceeds InlineCallback's 64-byte buffer");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (!std::is_trivially_copyable_v<Fn> ||
                  !std::is_trivially_destructible_v<Fn>) {
      manage_ = [](Op op, void* dst, void* src) noexcept {
        switch (op) {
          case Op::kMoveDestroy:
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
            break;
          case Op::kDestroy:
            static_cast<Fn*>(dst)->~Fn();
            break;
        }
      };
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(o); }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  enum class Op { kMoveDestroy, kDestroy };

  void move_from(InlineCallback& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Op::kMoveDestroy, buf_, o.buf_);
      } else {
        std::memcpy(buf_, o.buf_, kCapacity);
      }
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_ != nullptr && manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
};

}  // namespace vca
