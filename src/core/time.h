// Strong types for simulated time.
//
// The whole simulator runs on a single virtual clock owned by the
// EventScheduler. Durations and time points are nanosecond-resolution
// integers wrapped in distinct types so that a raw count can never be
// confused with a rate or a byte count.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <ostream>

namespace vca {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(int64_t v) { return Duration(v); }
  static constexpr Duration micros(int64_t v) { return Duration(v * 1000); }
  static constexpr Duration millis(int64_t v) { return Duration(v * 1'000'000); }
  static constexpr Duration seconds(int64_t v) { return Duration(v * 1'000'000'000); }
  static constexpr Duration seconds_d(double v) {
    return Duration(static_cast<int64_t>(v * 1e9));
  }
  static constexpr Duration millis_d(double v) {
    return Duration(static_cast<int64_t>(v * 1e6));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr int64_t us() const { return ns_ / 1000; }
  constexpr int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<int64_t>::max();
  }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  template <typename T>
    requires std::integral<T>
  constexpr Duration operator*(T k) const {
    return Duration(ns_ * static_cast<int64_t>(k));
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  template <typename T>
    requires std::integral<T>
  constexpr Duration operator/(T k) const {
    return Duration(ns_ / static_cast<int64_t>(k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_ns(int64_t v) { return TimePoint(v); }
  static constexpr TimePoint zero() { return TimePoint(0); }
  static constexpr TimePoint infinite() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.ns()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.ns()); }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.seconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << t.seconds() << "s";
}

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanos(static_cast<int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<int64_t>(v));
}
}  // namespace literals

}  // namespace vca
