#include "core/stats_math.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace vca {

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double median_of_sorted_copy(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t n = v.size();
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  double upper = v[n / 2];
  if (n % 2 == 1) return upper;
  // Even n: the other middle order statistic is the max of the left half.
  return (*std::max_element(v.begin(), v.begin() + n / 2) + upper) / 2.0;
}

// Selection instead of a full sort: this sits on the per-cell JSON
// aggregation path, where the inputs are per-bucket sample vectors.
double percentile_of(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(v.begin(), v.end());
  if (p >= 100.0) return *std::max_element(v.begin(), v.end());
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  std::nth_element(v.begin(), v.begin() + lo, v.end());
  double at_lo = v[lo];
  if (frac == 0.0 || lo + 1 >= v.size()) return at_lo;
  // After nth_element the (lo+1)-th order statistic is the min of the
  // right partition.
  double at_hi = *std::min_element(v.begin() + lo + 1, v.end());
  return at_lo * (1.0 - frac) + at_hi * frac;
}

double stddev_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean_of(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

namespace {
// Two-sided Student-t critical values for small degrees of freedom.
double t_critical(size_t dof, double confidence) {
  // Rows: dof 1..30; columns: 90%, 95%, 99%.
  static constexpr std::array<std::array<double, 3>, 30> kTable = {{
      {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
      {2.132, 2.776, 4.604},  {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
      {1.895, 2.365, 3.499},  {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
      {1.812, 2.228, 3.169},  {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
      {1.771, 2.160, 3.012},  {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
      {1.746, 2.120, 2.921},  {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
      {1.729, 2.093, 2.861},  {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
      {1.717, 2.074, 2.819},  {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
      {1.708, 2.060, 2.787},  {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
      {1.701, 2.048, 2.763},  {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750},
  }};
  size_t col = confidence >= 0.985 ? 2 : (confidence >= 0.925 ? 1 : 0);
  if (dof == 0) dof = 1;
  if (dof <= kTable.size()) return kTable[dof - 1][col];
  // Large-sample normal quantiles.
  static constexpr std::array<double, 3> kZ = {1.645, 1.960, 2.576};
  return kZ[col];
}
}  // namespace

ConfidenceInterval confidence_interval(const std::vector<double>& v,
                                       double confidence) {
  ConfidenceInterval ci;
  ci.mean = mean_of(v);
  if (v.size() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  double half = t_critical(v.size() - 1, confidence) * stddev_of(v) /
                std::sqrt(static_cast<double>(v.size()));
  ci.lo = ci.mean - half;
  ci.hi = ci.mean + half;
  return ci;
}

}  // namespace vca
