// Discrete-event scheduler: the single virtual clock driving a simulation.
//
// The event queue is a hand-rolled 4-ary min-heap over (timestamp, seq)
// holding InlineCallback closures. Compared to the original
// std::priority_queue<std::function> it dispatches an event without any
// heap traffic (closures live in the event's 64-byte inline buffer) and
// pops by moving from the mutable top slot — no const_cast needed. The
// wider fanout halves tree depth versus a binary heap, which matters
// because sift moves copy whole 88-byte events.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/inline_function.h"
#include "core/time.h"

namespace vca {

// A strictly ordered event queue. Events scheduled for the same instant
// fire in scheduling order (FIFO tie-break via a monotonic sequence
// number), which keeps runs deterministic.
class EventScheduler {
 public:
  using Callback = InlineCallback;

  TimePoint now() const { return now_; }

  // Schedule `fn` to run `delay` from now. Negative delays clamp to now.
  // Perfect-forwarded so the closure is built directly inside the heap
  // slot (C++20 parenthesized aggregate init) — zero intermediate moves.
  template <typename F>
    requires std::is_constructible_v<Callback, F&&>
  void schedule(Duration delay, F&& fn) {
    schedule_at(delay < Duration::zero() ? now_ : now_ + delay,
                std::forward<F>(fn));
  }

  template <typename F>
    requires std::is_constructible_v<Callback, F&&>
  void schedule_at(TimePoint t, F&& fn) {
    if (t < now_) t = now_;
    heap_.emplace_back(t, next_seq_++, std::forward<F>(fn));
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  }

  // Run events until the queue is empty or the clock would pass `end`.
  // The clock is left at `end` (or at the last event if the queue drained).
  void run_until(TimePoint end) {
    while (!heap_.empty() && heap_.front().at <= end) {
      Event ev = pop_top();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ev.fn();
    }
    if (now_ < end) now_ = end;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  // run_until with an event budget: stops early (returning false) once
  // `max_events` events have been dispatched. The fuzzer's virtual-time
  // watchdog uses this to bound runaway scenarios — including zero-delay
  // self-rescheduling loops that never advance the clock, which a plain
  // run_until would spin on forever.
  bool run_until_capped(TimePoint end, uint64_t max_events) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_.front().at <= end) {
      if (dispatched >= max_events) return false;
      Event ev = pop_top();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ++dispatched;
      ev.fn();
    }
    if (now_ < end) now_ = end;
    return true;
  }

  // Epoch API for the sharded parallel core (net/shard.h). Runs every
  // event strictly BEFORE `end` and then advances the clock to `end`,
  // so a barrier at `end` sees all shards on the same instant and events
  // scheduled at exactly `end` wait for the next window (after the
  // control strand has run at the barrier). Returns the dispatch count.
  uint64_t run_window(TimePoint end) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_.front().at < end) {
      Event ev = pop_top();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ++dispatched;
      ev.fn();
    }
    if (now_ < end) now_ = end;
    return dispatched;
  }

  // run_window with an event budget: stops (clock mid-window) once
  // `max_events` events have been dispatched. The caller detects the
  // capped case by `result == max_events && next_event_time() < end`.
  uint64_t run_window_capped(TimePoint end, uint64_t max_events) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_.front().at < end) {
      if (dispatched >= max_events) return dispatched;
      Event ev = pop_top();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ++dispatched;
      ev.fn();
    }
    if (now_ < end) now_ = end;
    return dispatched;
  }

  // Timestamp of the earliest pending event (infinite when empty); the
  // sharded runner uses it to pick the next conservative window end.
  TimePoint next_event_time() const {
    return heap_.empty() ? TimePoint::infinite() : heap_.front().at;
  }

  // Drain every event regardless of timestamp; the clock stops at the
  // last event rather than jumping to infinity.
  void run_all() {
    while (!heap_.empty()) {
      Event ev = pop_top();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ev.fn();
    }
  }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  // High-water mark of the event heap (perf counter: how deep the
  // simulation's in-flight event set ever got).
  size_t peak_pending() const { return peak_pending_; }
  uint64_t events_processed() const { return events_processed_; }
  // False if any event was ever dispatched at a time before the clock —
  // impossible by construction, verified by the sim invariant checker.
  bool time_monotonic() const { return time_monotonic_; }

 private:
  friend struct SchedulerTestPeer;  // invariant tests corrupt state directly

  struct Event {
    TimePoint at;
    uint64_t seq;
    Callback fn;
  };

  // Min-heap order on (at, seq): earlier time first, FIFO within a tie.
  static bool before(const Event& a, const Event& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  // Hole-insertion sifts: the displaced event rides in a local and is
  // written exactly once, so each level costs one event move, not a swap.
  void sift_up(size_t i) {
    if (i == 0) return;
    Event tmp = std::move(heap_[i]);
    while (i > 0) {
      size_t parent = (i - 1) / 4;
      if (!before(tmp, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(tmp);
  }

  Event pop_top() {
    Event ev = std::move(heap_.front());
    if (heap_.size() == 1) {  // the common near-empty case: no sift at all
      heap_.pop_back();
      return ev;
    }
    Event tail = std::move(heap_.back());
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n > 0) {
      size_t i = 0;
      for (;;) {
        size_t first = 4 * i + 1;
        if (first >= n) break;
        size_t best = first;
        size_t lim = first + 4 < n ? first + 4 : n;
        for (size_t c = first + 1; c < lim; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], tail)) break;
        heap_[i] = std::move(heap_[best]);
        i = best;
      }
      heap_[i] = std::move(tail);
    }
    return ev;
  }

  TimePoint now_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  size_t peak_pending_ = 0;
  bool time_monotonic_ = true;
  std::vector<Event> heap_;
};

}  // namespace vca
