// Discrete-event scheduler: the single virtual clock driving a simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/time.h"

namespace vca {

// A strictly ordered event queue. Events scheduled for the same instant
// fire in scheduling order (FIFO tie-break), which keeps runs deterministic.
class EventScheduler {
 public:
  using Callback = std::function<void()>;

  TimePoint now() const { return now_; }

  // Schedule `fn` to run `delay` from now. Negative delays clamp to now.
  void schedule(Duration delay, Callback fn) {
    schedule_at(delay < Duration::zero() ? now_ : now_ + delay, std::move(fn));
  }

  void schedule_at(TimePoint t, Callback fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  // Run events until the queue is empty or the clock would pass `end`.
  // The clock is left at `end` (or at the last event if the queue drained).
  void run_until(TimePoint end) {
    while (!queue_.empty() && queue_.top().at <= end) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ev.fn();
    }
    if (now_ < end) now_ = end;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  // Drain every event regardless of timestamp; the clock stops at the
  // last event rather than jumping to infinity.
  void run_all() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (ev.at < now_) time_monotonic_ = false;
      now_ = ev.at;
      ++events_processed_;
      ev.fn();
    }
  }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }
  // False if any event was ever dispatched at a time before the clock —
  // impossible by construction, verified by the sim invariant checker.
  bool time_monotonic() const { return time_monotonic_; }

 private:
  struct Event {
    TimePoint at;
    uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  TimePoint now_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool time_monotonic_ = true;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace vca
