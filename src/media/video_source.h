// Synthetic talking-head source.
//
// The paper feeds a pre-recorded 1280x720 talking-head video into each
// client (via ffmpeg) so every run sees the same motion statistics. We
// model the only property that matters downstream: per-frame encoding
// complexity — a slowly wandering AR(1) process around 1.0 with occasional
// short motion bursts (gestures), which is what makes encoded bitrate
// fluctuate around its target.
#pragma once

#include "core/rng.h"
#include "core/time.h"

namespace vca {

class VideoSource {
 public:
  struct Config {
    double ar_coeff = 0.97;        // AR(1) persistence
    double noise_sd = 0.03;        // innovation stddev
    double burst_rate_hz = 0.05;   // expected gesture bursts per second
    double burst_gain = 1.35;      // complexity multiplier during a burst
    Duration burst_len = Duration::seconds(2);
  };

  explicit VideoSource(Rng rng) : VideoSource(rng, Config{}) {}
  VideoSource(Rng rng, Config cfg) : rng_(rng), cfg_(cfg) {}

  // Advance to `now` and return the current complexity multiplier (~1.0).
  double complexity(TimePoint now) {
    // AR(1) step per call (frame-paced by the encoder).
    state_ = cfg_.ar_coeff * state_ +
             (1.0 - cfg_.ar_coeff) * 1.0 + rng_.gaussian(0.0, cfg_.noise_sd);
    if (state_ < 0.5) state_ = 0.5;
    if (state_ > 1.8) state_ = 1.8;
    if (now >= burst_until_ &&
        rng_.bernoulli(cfg_.burst_rate_hz / 30.0)) {  // per 30 fps frame
      burst_until_ = now + cfg_.burst_len;
    }
    return now < burst_until_ ? state_ * cfg_.burst_gain : state_;
  }

 private:
  Rng rng_;
  Config cfg_;
  double state_ = 1.0;
  TimePoint burst_until_;
};

}  // namespace vca
