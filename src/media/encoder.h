// Rate-controlled video encoder model.
//
// Real-time encoders are very good at hitting a bitrate target; what
// differs across VCAs is *which* encoding parameters (width, fps, QP) they
// trade away to get there (§3.2). The AdaptiveEncoder hits its target and
// reports the parameter choices made by a pluggable, VCA-specific policy,
// so WebRTC-style stats downstream see the paper's Fig. 2 shapes.
#pragma once

#include <functional>

#include "core/rng.h"
#include "core/scheduler.h"
#include "core/time.h"
#include "core/units.h"
#include "media/frame.h"
#include "media/video_source.h"

namespace vca {

struct EncoderSettings {
  int width = 640;
  double fps = 30.0;
  int qp = 30;
  DataRate bitrate;  // encoder output target (payload bits/s)
};

// Maps a bitrate budget (and a layout-imposed resolution cap) to concrete
// encoding parameters. Implementations live in vca/profiles.cc.
using EncoderPolicy = std::function<EncoderSettings(DataRate target, int max_width)>;

class AdaptiveEncoder {
 public:
  struct Config {
    uint32_t ssrc = 0;
    uint8_t spatial_layer = 0;
    EncoderPolicy policy;
    Duration keyframe_interval = Duration::seconds(10);
    double keyframe_cost = 3.0;    // keyframe size multiplier
    double frame_noise_sd = 0.06;  // lognormal-ish size jitter
    // Per-run encoder variability: scales the whole rate mapping. Teams'
    // wide confidence bands in Figs. 1-2 come from a large value here.
    double run_scale = 1.0;
  };

  AdaptiveEncoder(EventScheduler* sched, Rng rng, Config cfg);

  void set_frame_handler(std::function<void(const EncodedFrame&)> h) {
    frame_handler_ = std::move(h);
  }

  // (Re)target the encoder; takes effect on the next frame.
  void set_target(DataRate target, int max_width);
  void request_keyframe() { keyframe_pending_ = true; }

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  const EncoderSettings& settings() const { return settings_; }
  uint64_t frames_emitted() const { return next_frame_id_; }

 private:
  void tick();

  EventScheduler* sched_;
  Rng rng_;
  VideoSource source_;
  Config cfg_;
  std::function<void(const EncodedFrame&)> frame_handler_;

  EncoderSettings settings_;
  DataRate target_;
  int max_width_ = 1280;
  bool running_ = false;
  bool keyframe_pending_ = true;  // first frame is always an IDR
  TimePoint last_keyframe_;
  uint64_t next_frame_id_ = 0;
  double size_debt_ = 0.0;  // rate-control integrator: keeps long-run average on target
};

}  // namespace vca
