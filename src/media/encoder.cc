#include "media/encoder.h"

#include <algorithm>
#include <cmath>

namespace vca {

AdaptiveEncoder::AdaptiveEncoder(EventScheduler* sched, Rng rng, Config cfg)
    : sched_(sched),
      rng_(rng.fork("encoder-noise")),
      source_(rng.fork("source"), {}),
      cfg_(cfg),
      target_(DataRate::kbps(300)) {
  settings_ = cfg_.policy ? cfg_.policy(target_, max_width_) : EncoderSettings{};
}

void AdaptiveEncoder::set_target(DataRate target, int max_width) {
  target_ = target;
  max_width_ = max_width;
  settings_ = cfg_.policy ? cfg_.policy(target_, max_width_)
                          : EncoderSettings{640, 30.0, 30, target_};
}

void AdaptiveEncoder::start() {
  if (running_) return;
  running_ = true;
  sched_->schedule(Duration::zero(), [this] { tick(); });
}

void AdaptiveEncoder::tick() {
  if (!running_) return;
  TimePoint now = sched_->now();

  double fps = std::max(1.0, settings_.fps);
  DataRate rate = settings_.bitrate.is_zero() ? target_ : settings_.bitrate;

  bool keyframe = keyframe_pending_ ||
                  (cfg_.keyframe_interval > Duration::zero() &&
                   now - last_keyframe_ >= cfg_.keyframe_interval);
  keyframe_pending_ = false;
  if (keyframe) last_keyframe_ = now;

  double avg_bytes = rate.bits_per_sec() / fps / 8.0 * cfg_.run_scale;
  double jitter = std::exp(rng_.gaussian(0.0, cfg_.frame_noise_sd));
  double complexity = source_.complexity(now);
  double bytes = avg_bytes * jitter * complexity;
  if (keyframe) bytes *= cfg_.keyframe_cost;
  // Rate-control integrator: repay keyframe/complexity overshoot so the
  // long-run average stays on target, like a real encoder's VBV.
  bytes = std::max(avg_bytes * 0.25, bytes - size_debt_ * 0.15);
  size_debt_ += bytes - avg_bytes;
  size_debt_ = std::clamp(size_debt_, -20.0 * avg_bytes, 20.0 * avg_bytes);

  EncodedFrame f;
  f.ssrc = cfg_.ssrc;
  f.frame_id = next_frame_id_++;
  f.bytes = std::max(40, static_cast<int>(bytes));
  f.keyframe = keyframe;
  f.spatial_layer = cfg_.spatial_layer;
  f.width = settings_.width;
  f.fps = settings_.fps;
  f.qp = settings_.qp;
  f.capture_time = now;
  if (frame_handler_) frame_handler_(f);

  sched_->schedule(Duration::seconds_d(1.0 / fps), [this] { tick(); });
}

}  // namespace vca
