// An encoded video frame as handed from an encoder to an RTP sender.
#pragma once

#include <cstdint>

#include "core/time.h"

namespace vca {

struct EncodedFrame {
  uint32_t ssrc = 0;          // stream this frame belongs to
  uint64_t frame_id = 0;      // monotonic per-ssrc
  int bytes = 0;              // encoded size (payload only)
  bool keyframe = false;
  uint8_t spatial_layer = 0;  // SVC layer index / simulcast stream index
  // Encoding parameters in force when this frame was produced; carried
  // through to the receiver for WebRTC-getStats-style reporting.
  int width = 0;
  double fps = 0.0;
  int qp = 0;
  TimePoint capture_time;
};

}  // namespace vca
