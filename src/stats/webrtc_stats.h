// Per-second application statistics, mirroring what the paper reads from
// Chrome's WebRTC getStats() API for Meet and Teams-Chrome (§3.2):
// frames per second, QP, frame width, freeze time — per received stream.
#pragma once

#include <vector>

#include "core/scheduler.h"
#include "core/stats_math.h"
#include "core/time.h"
#include "stats/freeze.h"
#include "transport/rtp.h"

namespace vca {

struct SecondStats {
  TimePoint at;           // end of the 1 s window
  double fps = 0.0;
  double avg_qp = 0.0;
  int width = 0;          // width of the last frame seen in the window
  double freeze_ms = 0.0; // freeze time accrued during the window
};

class WebRtcStatsCollector {
 public:
  explicit WebRtcStatsCollector(EventScheduler* sched) : sched_(sched) {
    seconds_.reserve(128);  // multi-minute call without a mid-run realloc
    schedule_tick();
  }

  void on_frame(const DecodedFrame& f) {
    freeze_.on_frame(f.delivered_at);
    ++frames_in_window_;
    qp_sum_ += f.qp;
    last_width_ = f.width;
    total_frames_++;
  }

  void finalize() { freeze_.finalize(sched_->now()); }

  const std::vector<SecondStats>& per_second() const { return seconds_; }
  const FreezeDetector& freeze() const { return freeze_; }

  double freeze_ratio(Duration call_duration) const {
    return freeze_.freeze_ratio(call_duration);
  }

  // Medians over the call (paper plots medians with CIs across runs).
  double median_fps() const { return median_field(&SecondStats::fps); }
  double median_qp() const { return median_field(&SecondStats::avg_qp); }
  double median_width() const {
    std::vector<double> v;
    for (const auto& s : seconds_) {
      if (s.width > 0) v.push_back(static_cast<double>(s.width));
    }
    return median_of_sorted_copy(std::move(v));
  }
  int64_t total_frames() const { return total_frames_; }

 private:
  void schedule_tick() {
    sched_->schedule(Duration::seconds(1), [this] {
      SecondStats s;
      s.at = sched_->now();
      s.fps = static_cast<double>(frames_in_window_);
      s.avg_qp = frames_in_window_ > 0
                     ? qp_sum_ / static_cast<double>(frames_in_window_)
                     : 0.0;
      s.width = last_width_;
      Duration frozen_now = freeze_.frozen_time();
      s.freeze_ms = (frozen_now - frozen_reported_).millis();
      frozen_reported_ = frozen_now;
      seconds_.push_back(s);
      frames_in_window_ = 0;
      qp_sum_ = 0.0;
      schedule_tick();
    });
  }

  double median_field(double SecondStats::*field) const {
    std::vector<double> v;
    for (const auto& s : seconds_) {
      if (s.fps > 0.0) v.push_back(s.*field);  // skip empty seconds
    }
    return median_of_sorted_copy(std::move(v));
  }

  EventScheduler* sched_;
  std::vector<SecondStats> seconds_;
  FreezeDetector freeze_;
  int frames_in_window_ = 0;
  double qp_sum_ = 0.0;
  int last_width_ = 0;
  Duration frozen_reported_ = Duration::zero();
  int64_t total_frames_ = 0;
};

}  // namespace vca
