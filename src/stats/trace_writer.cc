#include "stats/trace_writer.h"

#include <iomanip>
#include <map>

namespace vca {

void TraceWriter::write_series(std::ostream& os,
                               const std::vector<std::string>& names,
                               const std::vector<const TimeSeries*>& series) {
  os << "t_s";
  for (const auto& n : names) os << "," << n;
  os << "\n";

  // Merge on timestamps.
  std::map<int64_t, std::vector<double>> rows;
  std::map<int64_t, std::vector<bool>> present;
  for (size_t i = 0; i < series.size(); ++i) {
    for (const auto& s : series[i]->samples()) {
      auto& row = rows[s.at.ns()];
      auto& mask = present[s.at.ns()];
      if (row.empty()) {
        row.assign(series.size(), 0.0);
        mask.assign(series.size(), false);
      }
      row[i] = s.value;
      mask[i] = true;
    }
  }
  os << std::fixed << std::setprecision(4);
  for (const auto& [ns, row] : rows) {
    os << static_cast<double>(ns) * 1e-9;
    const auto& mask = present[ns];
    for (size_t i = 0; i < row.size(); ++i) {
      os << ",";
      if (mask[i]) os << row[i];
    }
    os << "\n";
  }
}

void TraceWriter::write_stats(std::ostream& os,
                              const std::vector<SecondStats>& stats) {
  os << "t_s,fps,avg_qp,width,freeze_ms\n";
  os << std::fixed << std::setprecision(3);
  for (const auto& s : stats) {
    os << s.at.seconds() << "," << s.fps << "," << s.avg_qp << "," << s.width
       << "," << s.freeze_ms << "\n";
  }
}

}  // namespace vca
