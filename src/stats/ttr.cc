#include "stats/ttr.h"

#include <algorithm>
#include <vector>

#include "core/stats_math.h"

namespace vca {

TtrResult time_to_recovery(const TimeSeries& rates, TimePoint disruption_start,
                           TimePoint disruption_end, Duration median_window,
                           double recovery_fraction) {
  TtrResult out;
  // Nominal = median bitrate over the pre-disruption window (skip the first
  // few seconds of call ramp-up).
  std::vector<double> pre =
      rates.values_between(disruption_start - Duration::seconds(45),
                           disruption_start);
  if (pre.size() > 10) pre.erase(pre.begin(), pre.begin() + 5);
  out.nominal_mbps = median_of_sorted_copy(pre);
  if (out.nominal_mbps <= 0.0) return out;

  TimeSeries rolling = rates.rolling_median(median_window);
  double threshold = out.nominal_mbps * recovery_fraction;
  for (const auto& s : rolling.samples()) {
    if (s.at < disruption_end) continue;
    if (s.value >= threshold) {
      out.ttr = s.at - disruption_end;
      return out;
    }
  }
  return out;  // censored: never recovered
}

}  // namespace vca
