// Time-to-recovery, the paper's §4.1 metric: the time between the end of a
// network disruption and the first moment the 5-second rolling median of
// the bitrate reaches the pre-disruption (nominal) median bitrate.
#pragma once

#include <optional>

#include "core/time.h"
#include "core/timeseries.h"

namespace vca {

struct TtrResult {
  double nominal_mbps = 0.0;   // median bitrate before the disruption
  std::optional<Duration> ttr; // nullopt = never recovered before call end
};

// `rates` is a bitrate series (Mbps). The disruption spans
// [disruption_start, disruption_end).
TtrResult time_to_recovery(const TimeSeries& rates, TimePoint disruption_start,
                           TimePoint disruption_end,
                           Duration median_window = Duration::seconds(5),
                           double recovery_fraction = 1.0);

}  // namespace vca
