// Traffic capture: the simulated tcpdump. A FlowCapture hangs off a Link
// tap and meters bytes for a chosen set of flows (or everything crossing
// the link), producing the per-second rate series every figure is built on.
//
// Ownership contract — tap() captures `this` into a std::function with
// no lifetime guard. Whoever installs the returned LinkTap (on a Link or
// into a TapFanout) must either (a) keep the capture/fanout alive for as
// long as the tap can fire, or (b) detach first: Link::set_tap({})
// drops the function, and nothing fires afterwards. Network owns its
// links, fanouts, and captures together and detaches every tap in its
// destructor before they die, so scenario code never dangles; hand-wired
// topologies (tests, examples) must follow the same order. The same
// contract applies to TapFanout::tap() below and TraceRecorder::tap()
// (src/trace/recorder.h).
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "core/timeseries.h"
#include "net/link.h"
#include "net/packet.h"

namespace vca {

class FlowCapture {
 public:
  explicit FlowCapture(Duration bucket = Duration::seconds(1)) : meter_(bucket) {}

  // Restrict to specific flows or flow ranges; no filter = everything.
  void add_flow(FlowId f) { flows_.insert(f); }
  void add_flow_range(FlowId lo, FlowId hi) { ranges_.push_back({lo, hi}); }

  LinkTap tap() {
    return [this](const Packet& p, TimePoint at) {
      if (!matches(p.flow)) return;
      meter_.on_bytes(at, p.size_bytes);
    };
  }

  bool matches(FlowId f) const {
    if (flows_.empty() && ranges_.empty()) return true;
    if (flows_.contains(f)) return true;
    for (const auto& r : ranges_) {
      if (f >= r.first && f <= r.second) return true;
    }
    return false;
  }

  const RateMeter& meter() const { return meter_; }
  TimeSeries rates() const { return meter_.rates(); }
  int64_t total_bytes() const { return meter_.total_bytes(); }
  DataRate mean_rate(TimePoint from, TimePoint to) const {
    return meter_.mean_rate(from, to);
  }

 private:
  std::unordered_set<FlowId> flows_;
  std::vector<std::pair<FlowId, FlowId>> ranges_;
  RateMeter meter_;
};

// A Link exposes a single tap; TapFanout lets several captures observe it.
class TapFanout {
 public:
  void add(LinkTap tap) { taps_.push_back(std::move(tap)); }
  LinkTap tap() {
    return [this](const Packet& p, TimePoint at) {
      for (auto& t : taps_) t(p, at);
    };
  }

 private:
  std::vector<LinkTap> taps_;
};

}  // namespace vca
