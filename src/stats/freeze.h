// Video freeze detection, using the paper's rule (§3.2): a freeze occurs
// when the inter-frame gap exceeds max(3 * avg_frame_duration,
// avg_frame_duration + 150 ms). Freeze ratio = frozen time / call time.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/time.h"

namespace vca {

class FreezeDetector {
 public:
  // Report a delivered (rendered) frame.
  void on_frame(TimePoint at) {
    if (has_last_) {
      Duration gap = at - last_frame_;
      Duration avg = average_frame_duration();
      if (!avg.is_zero()) {
        Duration threshold = std::max(avg * 3, avg + Duration::millis(150));
        if (gap > threshold) {
          frozen_ += gap - avg;
          ++freeze_count_;
        }
      }
      // Fixed 120-entry ring with a running sum: O(1) per frame, no heap.
      if (count_ == kWindow) {
        sum_ -= ring_[pos_];
      } else {
        ++count_;
      }
      ring_[pos_] = gap;
      sum_ += gap;
      pos_ = (pos_ + 1) % kWindow;
    }
    last_frame_ = at;
    has_last_ = true;
  }

  // Account for a freeze still in progress when the call ends.
  void finalize(TimePoint call_end) {
    if (!has_last_) return;
    Duration gap = call_end - last_frame_;
    Duration avg = average_frame_duration();
    if (!avg.is_zero()) {
      Duration threshold = std::max(avg * 3, avg + Duration::millis(150));
      if (gap > threshold) {
        frozen_ += gap - avg;
        ++freeze_count_;
      }
    }
    has_last_ = false;
  }

  Duration average_frame_duration() const {
    if (count_ == 0) return Duration::zero();
    return sum_ / static_cast<int64_t>(count_);
  }

  Duration frozen_time() const { return frozen_; }
  int freeze_count() const { return freeze_count_; }

  double freeze_ratio(Duration call_duration) const {
    if (call_duration.is_zero()) return 0.0;
    return frozen_ / call_duration;
  }

 private:
  static constexpr std::size_t kWindow = 120;
  Duration ring_[kWindow] = {};
  std::size_t count_ = 0;
  std::size_t pos_ = 0;
  Duration sum_ = Duration::zero();
  TimePoint last_frame_;
  bool has_last_ = false;
  Duration frozen_ = Duration::zero();
  int freeze_count_ = 0;
};

}  // namespace vca
