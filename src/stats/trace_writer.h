// CSV trace export: dump rate series and per-second stats so results can
// be re-plotted outside the harness (gnuplot/pandas), mirroring the
// paper's promise to release raw experiment data.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/timeseries.h"
#include "stats/webrtc_stats.h"

namespace vca {

class TraceWriter {
 public:
  // Write one or more aligned series as columns: t, <name1>, <name2>, ...
  // Series are sampled on their own grids; rows are emitted per unique
  // timestamp with empty cells where a series has no sample.
  static void write_series(std::ostream& os,
                           const std::vector<std::string>& names,
                           const std::vector<const TimeSeries*>& series);

  // Per-second application stats (fps/qp/width/freeze) as CSV.
  static void write_stats(std::ostream& os,
                          const std::vector<SecondStats>& stats);
};

}  // namespace vca
