// Plain-text table and CSV emitters used by the bench harness to print
// the paper's tables and figure series.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace vca {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os) const {
    std::vector<size_t> w(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < headers_.size(); ++i) {
        os << "| " << std::setw(static_cast<int>(w[i])) << std::left
           << (i < cells.size() ? cells[i] : "") << " ";
      }
      os << "|\n";
    };
    line(headers_);
    for (size_t i = 0; i < headers_.size(); ++i) {
      os << "|" << std::string(w[i] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) line(r);
  }

  void print_csv(std::ostream& os) const {
    auto row = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ",";
        os << cells[i];
      }
      os << "\n";
    };
    row(headers_);
    for (const auto& r : rows_) row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

}  // namespace vca
