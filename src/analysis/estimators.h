// Extended blind estimators beyond FPS/bitrate (ROADMAP item 2, after
// Sharma et al., "Estimating WebRTC Video QoE Metrics Without Using
// Application Headers"): resolution-ladder inference, freeze detection,
// and a composite QoE proxy. Everything here operates on frame-level
// observations the segmenter recovers from packet headers — never on
// simulator state — and in O(1) amortized time and O(1) space per
// stream, so the same code serves the offline per-file pipeline and the
// bounded-state streaming service.
#pragma once

#include <cstdint>

namespace vca {

// ---------------------------------------------------------------------------
// Resolution-ladder inference
// ---------------------------------------------------------------------------
//
// The apps encode a small discrete ladder of widths (180/320/480/640/
// 960/1280, see vca/profiles.cc), and each rung has a characteristic
// video rate band (VcaProfile::width_rate_cap). A blind observer sees the
// achieved video rate (mean frame bytes x frame rate) and snaps it to the
// nearest rung; boundaries sit at the geometric midpoints between the
// rungs' nominal rates, which keeps the mapping monotone and robust to
// the +/-20% encoder-rate jitter the profiles model.
//
// Returns the inferred frame width in pixels, or 0 when there is no
// frame-rate signal to work with.
int infer_ladder_width(double mean_frame_bytes, double fps);

// ---------------------------------------------------------------------------
// Blind freeze detection
// ---------------------------------------------------------------------------
//
// The application-level rule (stats/freeze.h, the paper's §3.2) keys off
// decoded-frame gaps. Blind, we only have wire frames; the streaming
// rule is: a freeze is an inter-frame gap exceeding
//   max(2 x median_gap, median_gap + 150 ms)
// where median_gap is the median over a sliding window of recent gaps
// (medians resist the gap outliers that bursty networks create, where
// the running average the app-level detector uses would inflate the
// threshold after every stall). Constant space: a 64-entry gap ring.
class GapFreezeEstimator {
 public:
  // Report the wire start of one segmented frame (nanoseconds).
  void on_frame_start(int64_t start_ns);

  // Account for a still-open gap at end of stream (optional; mirrors
  // FreezeDetector::finalize).
  void finalize(int64_t end_ns);

  int freeze_events() const { return freeze_events_; }
  int64_t frozen_ns() const { return frozen_ns_; }

  // Frozen share of an observation window of `span_ns`.
  double freeze_ratio(int64_t span_ns) const {
    return span_ns > 0 ? static_cast<double>(frozen_ns_) /
                             static_cast<double>(span_ns)
                       : 0.0;
  }

 private:
  int64_t median_gap_ns() const;
  void note_gap(int64_t gap_ns);

  static constexpr int kWindow = 64;
  int64_t gaps_[kWindow] = {};
  int count_ = 0;
  int pos_ = 0;
  int64_t last_start_ns_ = 0;
  bool has_last_ = false;
  int freeze_events_ = 0;
  int64_t frozen_ns_ = 0;
};

// ---------------------------------------------------------------------------
// QoE proxy
// ---------------------------------------------------------------------------
//
// A Sharma-style composite MOS on the 1..5 scale from the three blind
// estimates: frame-rate sufficiency (30 fps = full marks), resolution
// rung (log-scaled, 160 px -> 0, 1280 px -> 1), and freeze penalty
// (a 20% frozen window already scores zero). Weights follow the usual
// parametric QoE models' ordering: motion smoothness > clarity > stalls,
// with stalls entering as a penalty rather than a reward term.
// Returns 0.0 when there is no video signal at all.
double qoe_mos(double fps, int width, double freeze_ratio);

}  // namespace vca
