#include "analysis/inference.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/stats_math.h"

namespace vca {

// ---------------------------------------------------------------------------
// FrameSegmenter
// ---------------------------------------------------------------------------

void FrameSegmenter::on_packet(const ParsedPacket& p) {
  // Duplication guard: an exact sequence repeat inside the sliding
  // window is the same packet delivered twice.
  if (std::find(recent_seqs_.begin(), recent_seqs_.end(), p.seq) !=
      recent_seqs_.end()) {
    ++duplicates_;
    return;
  }
  if (recent_seqs_.size() < kSeqWindow) {
    recent_seqs_.push_back(p.seq);
  } else {
    recent_seqs_[seq_cursor_] = p.seq;
    seq_cursor_ = (seq_cursor_ + 1) % kSeqWindow;
  }

  // A straggler for a frame that is still open merges into it.
  for (FrameObservation& f : open_) {
    if (f.rtp_timestamp == p.rtp_timestamp) {
      ++f.packets;
      f.ip_bytes += p.ip_bytes;
      f.end_ns = std::max(f.end_ns, p.ts_ns);
      return;
    }
  }

  // Repair traffic: a timestamp far behind the newest seen is FEC, a
  // retransmission after its frame closed, or stale-clock padding.
  if (have_ts_) {
    int32_t ahead = static_cast<int32_t>(p.rtp_timestamp - max_ts_);
    if (ahead < -kStaleTicks) {
      repair_bytes_ += p.ip_bytes;
      return;
    }
    if (ahead > 0) max_ts_ = p.rtp_timestamp;
  } else {
    have_ts_ = true;
    max_ts_ = p.rtp_timestamp;
  }

  if (open_.size() >= kMaxOpen) close_oldest();
  FrameObservation f;
  f.rtp_timestamp = p.rtp_timestamp;
  f.start_ns = p.ts_ns;
  f.end_ns = p.ts_ns;
  f.packets = 1;
  f.ip_bytes = p.ip_bytes;
  open_.push_back(f);
}

void FrameSegmenter::close_oldest() {
  closed_.push_back(open_.front());
  open_.erase(open_.begin());
}

std::vector<FrameObservation> FrameSegmenter::finish() {
  while (!open_.empty()) close_oldest();
  std::vector<FrameObservation> out = std::move(closed_);
  closed_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

const char* stream_kind_name(StreamKind k) {
  switch (k) {
    case StreamKind::kAudio: return "audio";
    case StreamKind::kVideo: return "video";
    case StreamKind::kControl: return "control";
    case StreamKind::kUnknown: break;
  }
  return "unknown";
}

namespace {

std::string ip_str(uint32_t ip) {
  std::ostringstream ss;
  ss << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
     << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return ss.str();
}

struct StreamState {
  StreamReport report;
  FrameSegmenter segmenter;
  int64_t first_ns = 0;
  int64_t last_ns = 0;
  int64_t rtp_packets = 0;
  int64_t rtcp_packets = 0;
  int64_t stun_packets = 0;
};

// Size/rate heuristics, blind to payload types: audio is a steady
// trickle of small constant-size packets (tens of pps, ~100-300 B);
// video is anything RTP with larger packets or real frame structure;
// STUN/RTCP-dominated flows are control.
StreamKind classify(const StreamState& s) {
  const StreamReport& r = s.report;
  if (s.rtp_packets == 0) {
    if (s.stun_packets + s.rtcp_packets > 0) return StreamKind::kControl;
    return StreamKind::kUnknown;
  }
  bool small_packets = r.mean_packet_bytes <= 350.0;
  bool audio_cadence = r.packets_per_sec >= 15.0 && r.packets_per_sec <= 130.0;
  if (small_packets && audio_cadence && r.frames > 0) {
    // Distinguish a genuinely small-framed video stream from audio: video
    // frames span multiple packets or arrive slower than their packets.
    double packets_per_frame =
        static_cast<double>(r.packets) / std::max(1, r.frames);
    if (packets_per_frame < 1.5) return StreamKind::kAudio;
  }
  return StreamKind::kVideo;
}

}  // namespace

std::string StreamReport::describe() const {
  std::ostringstream ss;
  ss << ip_str(key.src_ip) << ':' << key.src_port << "->"
     << ip_str(key.dst_ip) << ':' << key.dst_port;
  if (key.ssrc != 0) ss << " ssrc " << key.ssrc;
  return ss.str();
}

const StreamReport* TraceAnalysis::primary(StreamKind kind) const {
  const StreamReport* best = nullptr;
  for (const StreamReport& s : streams) {
    if (s.kind != kind) continue;
    if (best == nullptr || s.ip_bytes > best->ip_bytes) best = &s;
  }
  return best;
}

TraceAnalysis analyze_records(const std::vector<PacketRecord>& records,
                              double from_sec) {
  TraceAnalysis out;
  int64_t from_ns = static_cast<int64_t>(from_sec * 1e9);

  std::map<StreamKey, StreamState> streams;
  int64_t first_ns = -1, last_ns = 0;

  for (const PacketRecord& rec : records) {
    if (rec.ts_ns < from_ns) continue;
    std::optional<ParsedPacket> p = parse_frame(rec);
    if (!p) continue;

    StreamKey key{p->src_ip, p->dst_ip, p->src_port, p->dst_port,
                  p->is_rtp ? p->ssrc : 0};
    StreamState& s = streams[key];
    StreamReport& r = s.report;
    if (r.packets == 0) {
      r.key = key;
      s.first_ns = p->ts_ns;
    }
    ++r.packets;
    r.ip_bytes += p->ip_bytes;
    s.last_ns = p->ts_ns;
    if (p->is_rtp) {
      ++s.rtp_packets;
      s.segmenter.on_packet(*p);
    } else if (p->is_rtcp) {
      ++s.rtcp_packets;
    } else if (p->is_stun) {
      ++s.stun_packets;
    }

    out.packets++;
    out.ip_bytes += p->ip_bytes;
    if (first_ns < 0) first_ns = p->ts_ns;
    last_ns = std::max(last_ns, p->ts_ns);
  }

  for (auto& [key, s] : streams) {
    StreamReport& r = s.report;
    double dur = static_cast<double>(s.last_ns - s.first_ns) * 1e-9;
    r.first_ts_sec = static_cast<double>(s.first_ns) * 1e-9;
    r.last_ts_sec = static_cast<double>(s.last_ns) * 1e-9;
    r.mean_packet_bytes =
        static_cast<double>(r.ip_bytes) / static_cast<double>(r.packets);
    if (dur > 0.0) {
      r.packets_per_sec = static_cast<double>(r.packets) / dur;
      r.mean_rate_mbps = static_cast<double>(r.ip_bytes) * 8.0 / dur / 1e6;
    }

    std::vector<FrameObservation> frames = s.segmenter.finish();
    r.repair_bytes = s.segmenter.repair_bytes();
    r.duplicate_packets = s.segmenter.duplicate_packets();
    r.frames = static_cast<int>(frames.size());
    if (!frames.empty()) {
      int64_t frame_bytes = 0;
      r.first_sec = frames.front().start_ns / 1'000'000'000;
      int64_t last_sec = r.first_sec;
      for (const FrameObservation& f : frames) {
        frame_bytes += f.ip_bytes;
        last_sec = std::max(last_sec, f.start_ns / 1'000'000'000);
      }
      r.mean_frame_bytes = static_cast<double>(frame_bytes) /
                           static_cast<double>(frames.size());
      r.fps_per_sec.assign(static_cast<size_t>(last_sec - r.first_sec + 1),
                           0.0);
      for (const FrameObservation& f : frames) {
        r.fps_per_sec[static_cast<size_t>(f.start_ns / 1'000'000'000 -
                                          r.first_sec)] += 1.0;
      }
      std::vector<double> nonzero;
      for (double v : r.fps_per_sec) {
        if (v > 0.0) nonzero.push_back(v);
      }
      r.median_fps = median_of_sorted_copy(std::move(nonzero));
    }

    r.kind = classify(s);
    out.streams.push_back(std::move(r));
  }

  if (first_ns >= 0) {
    out.first_ts_sec = static_cast<double>(first_ns) * 1e-9;
    out.last_ts_sec = static_cast<double>(last_ns) * 1e-9;
    double dur = out.last_ts_sec - out.first_ts_sec;
    if (dur > 0.0) {
      out.mean_rate_mbps = static_cast<double>(out.ip_bytes) * 8.0 / dur / 1e6;
    }
  }
  return out;
}

TraceAnalysis analyze_pcap_file(const std::string& path, double from_sec,
                                bool* ok) {
  bool read_ok = false;
  std::vector<PacketRecord> records = read_pcap_file(path, &read_ok);
  if (ok != nullptr) *ok = read_ok;
  return analyze_records(records, from_sec);
}

}  // namespace vca
