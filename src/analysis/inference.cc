#include "analysis/inference.h"

#include <algorithm>
#include <sstream>

#include "core/stats_math.h"

namespace vca {

// ---------------------------------------------------------------------------
// FrameSegmenter
// ---------------------------------------------------------------------------

void FrameSegmenter::on_packet(const ParsedPacket& p) {
  // Duplication guard: an exact sequence repeat inside the sliding
  // window is the same packet delivered twice.
  if (std::find(recent_seqs_.begin(), recent_seqs_.end(), p.seq) !=
      recent_seqs_.end()) {
    ++duplicates_;
    return;
  }
  if (recent_seqs_.size() < kSeqWindow) {
    recent_seqs_.push_back(p.seq);
  } else {
    recent_seqs_[seq_cursor_] = p.seq;
    seq_cursor_ = (seq_cursor_ + 1) % kSeqWindow;
  }

  // A straggler for a frame that is still open merges into it.
  for (FrameObservation& f : open_) {
    if (f.rtp_timestamp == p.rtp_timestamp) {
      ++f.packets;
      f.ip_bytes += p.ip_bytes;
      f.end_ns = std::max(f.end_ns, p.ts_ns);
      return;
    }
  }

  // Repair traffic: a timestamp far behind the newest seen is FEC, a
  // retransmission after its frame closed, or stale-clock padding.
  if (have_ts_) {
    int32_t ahead = static_cast<int32_t>(p.rtp_timestamp - max_ts_);
    if (ahead < -kStaleTicks) {
      repair_bytes_ += p.ip_bytes;
      return;
    }
    if (ahead > 0) max_ts_ = p.rtp_timestamp;
  } else {
    have_ts_ = true;
    max_ts_ = p.rtp_timestamp;
  }

  if (open_.size() >= kMaxOpen) close_oldest();
  FrameObservation f;
  f.rtp_timestamp = p.rtp_timestamp;
  f.start_ns = p.ts_ns;
  f.end_ns = p.ts_ns;
  f.packets = 1;
  f.ip_bytes = p.ip_bytes;
  open_.push_back(f);
}

void FrameSegmenter::close_oldest() {
  closed_.push_back(open_.front());
  open_.erase(open_.begin());
}

bool FrameSegmenter::pop_closed(FrameObservation* out) {
  if (closed_cursor_ >= closed_.size()) return false;
  *out = closed_[closed_cursor_++];
  if (closed_cursor_ == closed_.size()) {
    // Fully drained: recycle the buffer so steady-state draining never
    // grows it (bounded-state contract of the streaming service).
    closed_.clear();
    closed_cursor_ = 0;
  }
  return true;
}

std::vector<FrameObservation> FrameSegmenter::finish() {
  while (!open_.empty()) close_oldest();
  std::vector<FrameObservation> out(closed_.begin() + static_cast<long>(
                                        closed_cursor_),
                                    closed_.end());
  closed_.clear();
  closed_cursor_ = 0;
  return out;
}

// ---------------------------------------------------------------------------
// StreamKey
// ---------------------------------------------------------------------------

const char* stream_kind_name(StreamKind k) {
  switch (k) {
    case StreamKind::kAudio: return "audio";
    case StreamKind::kVideo: return "video";
    case StreamKind::kControl: return "control";
    case StreamKind::kUnknown: break;
  }
  return "unknown";
}

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string ip_str(uint32_t ip) {
  std::ostringstream ss;
  ss << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
     << ((ip >> 8) & 0xff) << '.' << (ip & 0xff);
  return ss.str();
}

}  // namespace

uint64_t stream_key_hash(const StreamKey& k) {
  uint64_t a = (static_cast<uint64_t>(k.src_ip) << 32) | k.dst_ip;
  uint64_t b = (static_cast<uint64_t>(k.src_port) << 48) |
               (static_cast<uint64_t>(k.dst_port) << 32) | k.ssrc;
  return splitmix64(a) ^ splitmix64(b + 0x632be59bd9b4e019ull);
}

std::string StreamReport::describe() const {
  std::ostringstream ss;
  ss << ip_str(key.src_ip) << ':' << key.src_port << "->"
     << ip_str(key.dst_ip) << ':' << key.dst_port;
  if (key.ssrc != 0) ss << " ssrc " << key.ssrc;
  return ss.str();
}

// ---------------------------------------------------------------------------
// StreamAccumulator
// ---------------------------------------------------------------------------

void StreamAccumulator::on_packet(const ParsedPacket& p) {
  if (packets_ == 0) first_ns_ = p.ts_ns;
  ++packets_;
  ip_bytes_ += p.ip_bytes;
  last_ns_ = p.ts_ns;
  if (p.is_rtp) {
    ++rtp_packets_;
    segmenter_.on_packet(p);
  } else if (p.is_rtcp) {
    ++rtcp_packets_;
  } else if (p.is_stun) {
    ++stun_packets_;
  }
  ++window_.packets;
  window_.ip_bytes += p.ip_bytes;
  drain_closed();
}

void StreamAccumulator::drain_closed() {
  FrameObservation f;
  while (segmenter_.pop_closed(&f)) note_closed_frame(f);
}

void StreamAccumulator::note_closed_frame(const FrameObservation& f) {
  int64_t sec = f.start_ns / 1'000'000'000;
  if (frames_ == 0) {
    first_frame_sec_ = sec;
    cur_sec_ = sec;
    cur_sec_frames_ = 0;
  }
  if (mode_ == Mode::kOffline) {
    // Frames close in nondecreasing start order, so `sec` never precedes
    // first_frame_sec_; the vector reproduces the offline pipeline's
    // exact per-second series.
    size_t idx = static_cast<size_t>(sec - first_frame_sec_);
    if (idx >= fps_per_sec_.size()) fps_per_sec_.resize(idx + 1, 0.0);
    fps_per_sec_[idx] += 1.0;
  } else {
    if (sec != cur_sec_) {
      int bin = std::min(cur_sec_frames_, kFpsBins - 1);
      if (cur_sec_frames_ > 0) ++fps_hist_[bin];
      cur_sec_ = sec;
      cur_sec_frames_ = 0;
    }
    ++cur_sec_frames_;
  }
  ++frames_;
  frame_bytes_ += f.ip_bytes;
  ++window_.frames;
  int before = freeze_.freeze_events();
  freeze_.on_frame_start(f.start_ns);
  window_.freeze_events += freeze_.freeze_events() - before;
}

StreamAccumulator::Window StreamAccumulator::take_window() {
  Window out = window_;
  window_ = Window{};
  return out;
}

StreamKind StreamAccumulator::classify(const StreamReport& r) const {
  // Size/rate heuristics, blind to payload types: audio is a steady
  // trickle of small constant-size packets (tens of pps, ~100-300 B);
  // video is anything RTP with larger packets or real frame structure;
  // STUN/RTCP-dominated flows are control.
  if (rtp_packets_ == 0) {
    if (stun_packets_ + rtcp_packets_ > 0) return StreamKind::kControl;
    return StreamKind::kUnknown;
  }
  bool small_packets = r.mean_packet_bytes <= 350.0;
  bool audio_cadence = r.packets_per_sec >= 15.0 && r.packets_per_sec <= 130.0;
  if (small_packets && audio_cadence && r.frames > 0) {
    // Distinguish a genuinely small-framed video stream from audio: video
    // frames span multiple packets or arrive slower than their packets.
    double packets_per_frame =
        static_cast<double>(r.packets) / std::max(1, r.frames);
    if (packets_per_frame < 1.5) return StreamKind::kAudio;
  }
  return StreamKind::kVideo;
}

StreamKind StreamAccumulator::provisional_kind() const {
  StreamReport r;
  r.packets = packets_;
  r.frames = static_cast<int>(frames_);
  if (packets_ > 0) {
    r.mean_packet_bytes =
        static_cast<double>(ip_bytes_) / static_cast<double>(packets_);
  }
  double dur = static_cast<double>(last_ns_ - first_ns_) * 1e-9;
  if (dur > 0.0) r.packets_per_sec = static_cast<double>(packets_) / dur;
  return classify(r);
}

double StreamAccumulator::bounded_median_fps() const {
  uint64_t n = 0;
  for (int b = 0; b < kFpsBins; ++b) n += fps_hist_[b];
  if (n == 0) return 0.0;
  // Per-second frame counts are small integers, so the histogram median
  // equals the sorted-vector median the offline pipeline computes.
  uint64_t lo_rank = (n - 1) / 2, hi_rank = n / 2;
  double lo = 0.0, hi = 0.0;
  uint64_t seen = 0;
  for (int b = 0; b < kFpsBins; ++b) {
    uint64_t next = seen + fps_hist_[b];
    if (lo_rank >= seen && lo_rank < next) lo = static_cast<double>(b);
    if (hi_rank >= seen && hi_rank < next) {
      hi = static_cast<double>(b);
      break;
    }
    seen = next;
  }
  return (lo + hi) / 2.0;
}

StreamReport StreamAccumulator::finish(const StreamKey& key) {
  // Close any still-open frames and route them through the same
  // incremental accounting every drained frame took.
  for (const FrameObservation& f : segmenter_.finish()) note_closed_frame(f);

  StreamReport r;
  r.key = key;
  r.packets = packets_;
  r.ip_bytes = ip_bytes_;
  if (packets_ == 0) return r;

  double dur = static_cast<double>(last_ns_ - first_ns_) * 1e-9;
  r.first_ts_sec = static_cast<double>(first_ns_) * 1e-9;
  r.last_ts_sec = static_cast<double>(last_ns_) * 1e-9;
  r.mean_packet_bytes =
      static_cast<double>(ip_bytes_) / static_cast<double>(packets_);
  if (dur > 0.0) {
    r.packets_per_sec = static_cast<double>(packets_) / dur;
    r.mean_rate_mbps = static_cast<double>(ip_bytes_) * 8.0 / dur / 1e6;
  }

  r.repair_bytes = segmenter_.repair_bytes();
  r.duplicate_packets = segmenter_.duplicate_packets();
  r.frames = static_cast<int>(frames_);
  if (frames_ > 0) {
    r.first_sec = first_frame_sec_;
    r.mean_frame_bytes = static_cast<double>(frame_bytes_) /
                         static_cast<double>(frames_);
    if (mode_ == Mode::kOffline) {
      r.fps_per_sec = fps_per_sec_;
      std::vector<double> nonzero;
      for (double v : r.fps_per_sec) {
        if (v > 0.0) nonzero.push_back(v);
      }
      r.median_fps = median_of_sorted_copy(std::move(nonzero));
    } else {
      if (cur_sec_frames_ > 0) {
        ++fps_hist_[std::min(cur_sec_frames_, kFpsBins - 1)];
        cur_sec_frames_ = 0;
      }
      r.median_fps = bounded_median_fps();
    }
    freeze_.finalize(last_ns_);
    r.freeze_events = freeze_.freeze_events();
    r.est_freeze_ratio = freeze_.freeze_ratio(last_ns_ - first_ns_);
    r.est_width = infer_ladder_width(r.mean_frame_bytes, r.median_fps);
    r.qoe = qoe_mos(r.median_fps, r.est_width, r.est_freeze_ratio);
  }

  r.kind = classify(r);
  return r;
}

// ---------------------------------------------------------------------------
// Trace-level analysis
// ---------------------------------------------------------------------------

const StreamReport* TraceAnalysis::primary(StreamKind kind) const {
  const StreamReport* best = nullptr;
  for (const StreamReport& s : streams) {
    if (s.kind != kind) continue;
    if (best == nullptr || s.ip_bytes > best->ip_bytes) best = &s;
  }
  return best;
}

TraceAnalysisBuilder::TraceAnalysisBuilder(double from_sec)
    : from_ns_(static_cast<int64_t>(from_sec * 1e9)) {}

void TraceAnalysisBuilder::add(const PacketRecord& rec) {
  if (rec.ts_ns < from_ns_) return;
  std::optional<ParsedPacket> p = parse_frame(rec);
  if (!p) return;

  StreamKey key{p->src_ip, p->dst_ip, p->src_port, p->dst_port,
                p->is_rtp ? p->ssrc : 0};
  StreamAccumulator* acc = nullptr;
  for (auto& [k, a] : streams_) {
    if (k == key) {
      acc = &a;
      break;
    }
  }
  if (acc == nullptr) {
    streams_.emplace_back(key, StreamAccumulator(StreamAccumulator::Mode::kOffline));
    acc = &streams_.back().second;
  }
  acc->on_packet(*p);

  ++packets_;
  ip_bytes_ += p->ip_bytes;
  if (first_ns_ < 0) first_ns_ = p->ts_ns;
  last_ns_ = std::max(last_ns_, p->ts_ns);
}

TraceAnalysis TraceAnalysisBuilder::finish() {
  TraceAnalysis out;
  out.packets = packets_;
  out.ip_bytes = ip_bytes_;

  std::sort(streams_.begin(), streams_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [key, acc] : streams_) {
    out.streams.push_back(acc.finish(key));
  }

  if (first_ns_ >= 0) {
    out.first_ts_sec = static_cast<double>(first_ns_) * 1e-9;
    out.last_ts_sec = static_cast<double>(last_ns_) * 1e-9;
    double dur = out.last_ts_sec - out.first_ts_sec;
    if (dur > 0.0) {
      out.mean_rate_mbps = static_cast<double>(out.ip_bytes) * 8.0 / dur / 1e6;
    }
  }
  return out;
}

TraceAnalysis analyze_records(const std::vector<PacketRecord>& records,
                              double from_sec) {
  TraceAnalysisBuilder builder(from_sec);
  for (const PacketRecord& rec : records) builder.add(rec);
  return builder.finish();
}

TraceAnalysis analyze_pcap_file(const std::string& path, double from_sec,
                                bool* ok) {
  TraceAnalysisBuilder builder(from_sec);
  PcapFileReader reader(path);
  if (ok != nullptr) *ok = reader.ok();
  PacketRecord rec;
  while (reader.next(&rec)) builder.add(rec);
  return builder.finish();
}

}  // namespace vca
