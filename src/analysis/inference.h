// Blind inference over packet traces (the paper's §3.3), built on one
// shared incremental estimator core.
//
// For Zoom the paper had no getStats() and estimated frame rate and
// media bitrate purely from packet headers, sizes, and timing in a
// tcpdump capture, then validated those estimators against
// webrtc-internals. This module is that pipeline for our traces:
//
//   PacketRecord bytes -> parse -> per-flow demux -> stream
//   classification (audio vs video vs control, by size/rate heuristics)
//   -> frame segmentation (RTP-timestamp grouping with reorder /
//   duplication / repair handling) -> per-second FPS, frame-size,
//   resolution-ladder, freeze, QoE, and utilization estimators.
//
// Two consumers share the core:
//   * the offline per-file pipeline (analyze_records / analyze_pcap_file)
//     — unbounded history, exact per-second series in the report;
//   * the streaming service (src/streaming) — StreamAccumulator in
//     bounded mode holds O(1) state per flow (fps histogram instead of a
//     per-second vector) so millions of concurrent flows fit a memory
//     cap. Both modes see identical packets -> identical frame sequence
//     -> identical medians; only the report's fps_per_sec vector differs
//     (empty in bounded mode).
//
// Nothing in here reads simulator state; the estimators are calibrated
// against WebRtcStatsCollector ground truth by bench_inference /
// bench_inference_stream, which report the error distributions
// (EXPERIMENTS.md "Estimator accuracy").
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/estimators.h"
#include "analysis/parse.h"
#include "trace/pcap.h"

namespace vca {

// ---------------------------------------------------------------------------
// Frame segmentation
// ---------------------------------------------------------------------------

struct FrameObservation {
  uint32_t rtp_timestamp = 0;
  int64_t start_ns = 0;   // first packet of the frame on the wire
  int64_t end_ns = 0;     // last packet seen for the frame
  int packets = 0;
  int64_t ip_bytes = 0;
};

// Groups one RTP stream's packets into frames by RTP timestamp. Robust
// to the trace impairments src/net/faults can inject:
//   * duplication: a sliding window of recent sequence numbers drops
//     exact repeats;
//   * reordering: a small set of frames stays open, so a straggler with
//     an already-open timestamp merges instead of founding a new frame;
//   * repair traffic / padding: packets whose timestamp is far *behind*
//     the newest seen (FEC bursts, retransmissions after the frame
//     closed, probe padding with a stale clock) are tallied as repair
//     bytes, never as frames;
//   * loss: simply yields smaller frames — never a negative count.
class FrameSegmenter {
 public:
  void on_packet(const ParsedPacket& p);

  // Closes all open frames and returns the stream's frames in wire order.
  std::vector<FrameObservation> finish();

  // Bounded-state users drain frames as they close instead of letting
  // them accumulate until finish(); frames pop in wire order.
  bool pop_closed(FrameObservation* out);

  int64_t repair_bytes() const { return repair_bytes_; }
  int duplicate_packets() const { return duplicates_; }

 private:
  void close_oldest();

  std::vector<FrameObservation> open_;    // at most kMaxOpen, oldest first
  std::vector<FrameObservation> closed_;
  size_t closed_cursor_ = 0;              // pop_closed read position
  std::vector<uint16_t> recent_seqs_;     // ring buffer of seen seqs
  size_t seq_cursor_ = 0;
  bool have_ts_ = false;
  uint32_t max_ts_ = 0;                   // newest timestamp (wrap-aware)
  int64_t repair_bytes_ = 0;
  int duplicates_ = 0;

  static constexpr size_t kMaxOpen = 4;
  static constexpr size_t kSeqWindow = 512;
  // A timestamp this far behind the newest is repair, not a frame
  // (0.5 s at the 90 kHz video clock).
  static constexpr int32_t kStaleTicks = 45'000;
};

// ---------------------------------------------------------------------------
// Stream reports
// ---------------------------------------------------------------------------

enum class StreamKind { kUnknown, kAudio, kVideo, kControl };

const char* stream_kind_name(StreamKind k);

struct StreamKey {
  uint32_t src_ip = 0, dst_ip = 0;
  uint16_t src_port = 0, dst_port = 0;
  uint32_t ssrc = 0;  // 0 for non-RTP flows

  auto tie() const { return std::tie(src_ip, dst_ip, src_port, dst_port, ssrc); }
  bool operator<(const StreamKey& o) const { return tie() < o.tie(); }
  bool operator==(const StreamKey& o) const { return tie() == o.tie(); }
};

// 64-bit mix of the 5-tuple, shared by the streaming flow table and the
// count-min sketch (which derives its row hashes from it). SplitMix64
// finalizer over the packed fields: cheap, well-distributed, and
// identical on every host (no std::hash dependence).
uint64_t stream_key_hash(const StreamKey& k);

struct StreamReport {
  StreamKey key;
  StreamKind kind = StreamKind::kUnknown;

  int64_t packets = 0;
  int64_t ip_bytes = 0;            // sum of IP datagram lengths
  double first_ts_sec = 0.0;
  double last_ts_sec = 0.0;
  double mean_packet_bytes = 0.0;  // IP bytes per packet
  double packets_per_sec = 0.0;
  double mean_rate_mbps = 0.0;     // IP-layer rate over the stream's life

  // Video estimates (frame segmentation output).
  int frames = 0;
  double median_fps = 0.0;         // median of nonzero per-second counts
  double mean_frame_bytes = 0.0;
  int64_t repair_bytes = 0;        // FEC / RTX / padding attributed blind
  int duplicate_packets = 0;
  std::vector<double> fps_per_sec;  // indexed from first_sec; offline only
  int64_t first_sec = 0;

  // Extended blind estimates (analysis/estimators.h). All derived from
  // headers alone; 0 when there is no video signal.
  int est_width = 0;               // resolution-ladder inference
  int freeze_events = 0;           // blind freeze detections
  double est_freeze_ratio = 0.0;   // frozen share of the stream's life
  double qoe = 0.0;                // Sharma-style MOS proxy, 1..5

  std::string describe() const;  // "10.0.0.2:2024->10.0.0.5:2024 ssrc 130"
  bool operator==(const StreamReport&) const = default;
};

// ---------------------------------------------------------------------------
// Incremental per-flow estimator (the shared core)
// ---------------------------------------------------------------------------

// Consumes one flow's parsed packets one at a time and produces a
// StreamReport. kOffline keeps the exact per-second FPS series (state
// grows with stream duration, as the offline report requires); kBounded
// replaces it with a constant-size frame-count histogram whose median is
// identical for integer per-second counts, so per-flow state is O(1)
// regardless of stream length.
class StreamAccumulator {
 public:
  enum class Mode { kOffline, kBounded };

  // Per-second window counters for the streaming service; reset by
  // take_window().
  struct Window {
    int64_t packets = 0;
    int64_t ip_bytes = 0;
    int frames = 0;         // frames closed during the window
    int freeze_events = 0;  // blind freeze detections during the window
    bool operator==(const Window&) const = default;
  };

  explicit StreamAccumulator(Mode mode = Mode::kOffline) : mode_(mode) {}

  void on_packet(const ParsedPacket& p);

  // Closes open frames and builds the final report (stamped with `key`).
  StreamReport finish(const StreamKey& key);

  // Live introspection (streaming service).
  int64_t packets() const { return packets_; }
  int64_t ip_bytes() const { return ip_bytes_; }
  int64_t first_ns() const { return first_ns_; }
  int64_t last_ns() const { return last_ns_; }
  // Classification from the evidence so far (cheap; used for window
  // reports before the stream ends).
  StreamKind provisional_kind() const;
  Window take_window();

 private:
  void drain_closed();
  void note_closed_frame(const FrameObservation& f);
  StreamKind classify(const StreamReport& r) const;
  double bounded_median_fps() const;

  static constexpr int kFpsBins = 128;  // per-second counts above clamp here

  Mode mode_;
  FrameSegmenter segmenter_;
  GapFreezeEstimator freeze_;
  int64_t packets_ = 0;
  int64_t ip_bytes_ = 0;
  int64_t first_ns_ = 0;
  int64_t last_ns_ = 0;
  int64_t rtp_packets_ = 0;
  int64_t rtcp_packets_ = 0;
  int64_t stun_packets_ = 0;
  // Closed-frame aggregates (identical order in both modes).
  int64_t frames_ = 0;
  int64_t frame_bytes_ = 0;
  int64_t first_frame_sec_ = 0;
  int64_t cur_sec_ = 0;
  int cur_sec_frames_ = 0;
  std::vector<double> fps_per_sec_;        // kOffline
  uint32_t fps_hist_[kFpsBins] = {};       // kBounded
  Window window_;
  int freeze_events_at_window_ = 0;
};

// ---------------------------------------------------------------------------
// Trace-level analysis
// ---------------------------------------------------------------------------

struct TraceAnalysis {
  std::vector<StreamReport> streams;  // deterministic: sorted by key
  int64_t packets = 0;
  int64_t ip_bytes = 0;
  double first_ts_sec = 0.0;
  double last_ts_sec = 0.0;
  double mean_rate_mbps = 0.0;  // aggregate IP-layer utilization

  // Highest-byte-count stream of the given kind; nullptr if none.
  const StreamReport* primary(StreamKind kind) const;
  const StreamReport* primary_video() const {
    return primary(StreamKind::kVideo);
  }
};

// Incremental offline analysis: feed records one at a time (e.g. from a
// chunked pcap read) and finish() when the trace ends. Packets with
// timestamps before `from_sec` are ignored (measurement-window trim,
// like cutting the first 30 s of a capture before computing medians).
class TraceAnalysisBuilder {
 public:
  explicit TraceAnalysisBuilder(double from_sec = 0.0);
  void add(const PacketRecord& rec);
  TraceAnalysis finish();

 private:
  int64_t from_ns_;
  int64_t packets_ = 0;
  int64_t ip_bytes_ = 0;
  int64_t first_ns_ = -1;
  int64_t last_ns_ = 0;
  // A capture of our testbed holds a handful of flows, so demux is a
  // flat vector with linear lookup; finish() sorts by key for the
  // deterministic report order. (The streaming service, which must hold
  // millions of flows, has its own sketch-backed table.)
  std::vector<std::pair<StreamKey, StreamAccumulator>> streams_;
};

// Runs the full blind pipeline over an in-memory record vector.
TraceAnalysis analyze_records(const std::vector<PacketRecord>& records,
                              double from_sec = 0.0);

// Convenience: analyze a libpcap file with a bounded read buffer (records
// stream through the pipeline one at a time; the file is never loaded
// whole). Sets *ok (when non-null) to false if the file cannot be opened
// or parsed.
TraceAnalysis analyze_pcap_file(const std::string& path, double from_sec = 0.0,
                                bool* ok = nullptr);

}  // namespace vca
