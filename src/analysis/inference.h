// Blind offline inference over a packet trace (the paper's §3.3).
//
// For Zoom the paper had no getStats() and estimated frame rate and
// media bitrate purely from packet headers, sizes, and timing in a
// tcpdump capture, then validated those estimators against
// webrtc-internals. This module is that pipeline for our traces:
//
//   PacketRecord bytes -> parse -> per-flow demux -> stream
//   classification (audio vs video vs control, by size/rate heuristics)
//   -> frame segmentation (RTP-timestamp grouping with reorder /
//   duplication / repair handling) -> per-second FPS, frame-size, and
//   utilization estimators.
//
// Nothing in here reads simulator state; the estimators are calibrated
// against WebRtcStatsCollector ground truth by bench_inference, which
// reports the error distributions (EXPERIMENTS.md "Estimator accuracy").
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/parse.h"
#include "trace/pcap.h"

namespace vca {

// ---------------------------------------------------------------------------
// Frame segmentation
// ---------------------------------------------------------------------------

struct FrameObservation {
  uint32_t rtp_timestamp = 0;
  int64_t start_ns = 0;   // first packet of the frame on the wire
  int64_t end_ns = 0;     // last packet seen for the frame
  int packets = 0;
  int64_t ip_bytes = 0;
};

// Groups one RTP stream's packets into frames by RTP timestamp. Robust
// to the trace impairments src/net/faults can inject:
//   * duplication: a sliding window of recent sequence numbers drops
//     exact repeats;
//   * reordering: a small set of frames stays open, so a straggler with
//     an already-open timestamp merges instead of founding a new frame;
//   * repair traffic / padding: packets whose timestamp is far *behind*
//     the newest seen (FEC bursts, retransmissions after the frame
//     closed, probe padding with a stale clock) are tallied as repair
//     bytes, never as frames;
//   * loss: simply yields smaller frames — never a negative count.
class FrameSegmenter {
 public:
  void on_packet(const ParsedPacket& p);

  // Closes all open frames and returns the stream's frames in wire order.
  std::vector<FrameObservation> finish();

  int64_t repair_bytes() const { return repair_bytes_; }
  int duplicate_packets() const { return duplicates_; }

 private:
  void close_oldest();

  std::vector<FrameObservation> open_;    // at most kMaxOpen, oldest first
  std::vector<FrameObservation> closed_;
  std::vector<uint16_t> recent_seqs_;     // ring buffer of seen seqs
  size_t seq_cursor_ = 0;
  bool have_ts_ = false;
  uint32_t max_ts_ = 0;                   // newest timestamp (wrap-aware)
  int64_t repair_bytes_ = 0;
  int duplicates_ = 0;

  static constexpr size_t kMaxOpen = 4;
  static constexpr size_t kSeqWindow = 512;
  // A timestamp this far behind the newest is repair, not a frame
  // (0.5 s at the 90 kHz video clock).
  static constexpr int32_t kStaleTicks = 45'000;
};

// ---------------------------------------------------------------------------
// Stream reports
// ---------------------------------------------------------------------------

enum class StreamKind { kUnknown, kAudio, kVideo, kControl };

const char* stream_kind_name(StreamKind k);

struct StreamKey {
  uint32_t src_ip = 0, dst_ip = 0;
  uint16_t src_port = 0, dst_port = 0;
  uint32_t ssrc = 0;  // 0 for non-RTP flows

  auto tie() const { return std::tie(src_ip, dst_ip, src_port, dst_port, ssrc); }
  bool operator<(const StreamKey& o) const { return tie() < o.tie(); }
  bool operator==(const StreamKey& o) const { return tie() == o.tie(); }
};

struct StreamReport {
  StreamKey key;
  StreamKind kind = StreamKind::kUnknown;

  int64_t packets = 0;
  int64_t ip_bytes = 0;            // sum of IP datagram lengths
  double first_ts_sec = 0.0;
  double last_ts_sec = 0.0;
  double mean_packet_bytes = 0.0;  // IP bytes per packet
  double packets_per_sec = 0.0;
  double mean_rate_mbps = 0.0;     // IP-layer rate over the stream's life

  // Video estimates (frame segmentation output).
  int frames = 0;
  double median_fps = 0.0;         // median of nonzero per-second counts
  double mean_frame_bytes = 0.0;
  int64_t repair_bytes = 0;        // FEC / RTX / padding attributed blind
  int duplicate_packets = 0;
  std::vector<double> fps_per_sec;  // indexed from first_sec
  int64_t first_sec = 0;

  std::string describe() const;  // "10.0.0.2:2024->10.0.0.5:2024 ssrc 130"
};

struct TraceAnalysis {
  std::vector<StreamReport> streams;  // deterministic: sorted by key
  int64_t packets = 0;
  int64_t ip_bytes = 0;
  double first_ts_sec = 0.0;
  double last_ts_sec = 0.0;
  double mean_rate_mbps = 0.0;  // aggregate IP-layer utilization

  // Highest-byte-count stream of the given kind; nullptr if none.
  const StreamReport* primary(StreamKind kind) const;
  const StreamReport* primary_video() const {
    return primary(StreamKind::kVideo);
  }
};

// Runs the full blind pipeline. Packets with timestamps before
// `from_sec` are ignored (measurement-window trim, like cutting the
// first 30 s of a capture before computing medians).
TraceAnalysis analyze_records(const std::vector<PacketRecord>& records,
                              double from_sec = 0.0);

// Convenience: read a libpcap file and analyze it. Sets *ok (when
// non-null) to false if the file cannot be opened or parsed.
TraceAnalysis analyze_pcap_file(const std::string& path, double from_sec = 0.0,
                                bool* ok = nullptr);

}  // namespace vca
