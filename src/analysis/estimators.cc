#include "analysis/estimators.h"

#include <algorithm>
#include <cmath>

namespace vca {

namespace {

// Ladder rungs and their nominal encode rates (bits/sec), mirroring
// VcaProfile::width_rate_cap. Boundaries between neighbours are the
// geometric midpoints of these rates.
struct Rung {
  int width;
  double rate_bps;
};
constexpr Rung kLadder[] = {
    {180, 120e3},  {320, 300e3},  {480, 550e3},
    {640, 900e3},  {960, 1100e3}, {1280, 1400e3},
};
constexpr int kRungs = static_cast<int>(sizeof(kLadder) / sizeof(kLadder[0]));

}  // namespace

int infer_ladder_width(double mean_frame_bytes, double fps) {
  if (fps <= 0.0 || mean_frame_bytes <= 0.0) return 0;
  double rate = mean_frame_bytes * 8.0 * fps;
  for (int i = 0; i + 1 < kRungs; ++i) {
    double boundary =
        std::sqrt(kLadder[i].rate_bps * kLadder[i + 1].rate_bps);
    if (rate < boundary) return kLadder[i].width;
  }
  return kLadder[kRungs - 1].width;
}

void GapFreezeEstimator::on_frame_start(int64_t start_ns) {
  if (has_last_) note_gap(start_ns - last_start_ns_);
  last_start_ns_ = start_ns;
  has_last_ = true;
}

void GapFreezeEstimator::finalize(int64_t end_ns) {
  if (!has_last_) return;
  note_gap(end_ns - last_start_ns_);
  has_last_ = false;
}

void GapFreezeEstimator::note_gap(int64_t gap_ns) {
  if (count_ >= 8) {  // need a gap baseline before judging freezes
    int64_t med = median_gap_ns();
    int64_t threshold = std::max(2 * med, med + 150'000'000);
    if (gap_ns > threshold) {
      ++freeze_events_;
      frozen_ns_ += gap_ns - med;
    }
  }
  gaps_[pos_] = gap_ns;
  pos_ = (pos_ + 1) % kWindow;
  if (count_ < kWindow) ++count_;
}

int64_t GapFreezeEstimator::median_gap_ns() const {
  int64_t copy[kWindow];
  std::copy(gaps_, gaps_ + count_, copy);
  auto mid = copy + count_ / 2;
  std::nth_element(copy, mid, copy + count_);
  return *mid;
}

double qoe_mos(double fps, int width, double freeze_ratio) {
  if (fps <= 0.0) return 0.0;
  double fps_score = std::clamp(fps / 30.0, 0.0, 1.0);
  double res_score =
      width > 0
          ? std::clamp(std::log2(static_cast<double>(width) / 160.0) / 3.0,
                       0.0, 1.0)
          : 0.0;
  double freeze_pen = std::clamp(freeze_ratio * 5.0, 0.0, 1.0);
  double score =
      0.45 * fps_score + 0.35 * res_score + 0.20 * (1.0 - freeze_pen);
  return 1.0 + 4.0 * score;
}

}  // namespace vca
