#include "analysis/parse.h"

namespace vca {

namespace {

uint16_t rd_u16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t rd_u32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

std::optional<ParsedPacket> parse_frame(const PacketRecord& rec) {
  const std::vector<uint8_t>& b = rec.bytes;
  if (b.size() < 14 + 20) return std::nullopt;
  if (rd_u16(&b[12]) != 0x0800) return std::nullopt;  // not IPv4

  const uint8_t* ip = &b[14];
  if ((ip[0] >> 4) != 4) return std::nullopt;
  size_t ihl = static_cast<size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || b.size() < 14 + ihl) return std::nullopt;

  ParsedPacket out;
  out.ts_ns = rec.ts_ns;
  out.wire_bytes = rec.wire_bytes;
  out.ip_bytes = rd_u16(ip + 2);
  out.ip_proto = ip[9];
  out.src_ip = rd_u32(ip + 12);
  out.dst_ip = rd_u32(ip + 16);

  size_t l4 = 14 + ihl;
  if (out.ip_proto == 6) {  // TCP
    if (b.size() < l4 + 4) return out;  // ports truncated: still usable sizes
    out.src_port = rd_u16(&b[l4]);
    out.dst_port = rd_u16(&b[l4 + 2]);
    return out;
  }
  if (out.ip_proto != 17) return out;

  if (b.size() < l4 + 8) return out;
  out.src_port = rd_u16(&b[l4]);
  out.dst_port = rd_u16(&b[l4 + 2]);

  const uint8_t* pay = &b[l4 + 8];
  size_t pay_len = b.size() - (l4 + 8);

  // STUN: type 0x0001 (binding request) + magic cookie at offset 4.
  if (pay_len >= 8 && pay[0] == 0x00 && pay[1] == 0x01 &&
      rd_u32(pay + 4) == 0x2112a442) {
    out.is_stun = true;
    return out;
  }

  // RTP/RTCP: version bits == 2; RFC 5761 splits them on payload type —
  // 192..223 (i.e. PT with the marker stripped in 64..95 range shifted)
  // is RTCP, anything else with V=2 is RTP.
  if (pay_len >= 8 && (pay[0] >> 6) == 2) {
    uint8_t second = pay[1];
    if (second >= 192 && second <= 223) {
      out.is_rtcp = true;
      return out;
    }
    if (pay_len >= 12) {
      out.is_rtp = true;
      out.marker = (second & 0x80) != 0;
      out.payload_type = second & 0x7f;
      out.seq = rd_u16(pay + 2);
      out.rtp_timestamp = rd_u32(pay + 4);
      out.ssrc = rd_u32(pay + 8);
    }
  }
  return out;
}

}  // namespace vca
