// Offline header parsing for captured traces.
//
// This is the *blind* side of the measurement pipeline: everything here
// operates on the raw bytes of a PacketRecord — the same view tcpdump
// gives an external observer — and never on simulator state. The parser
// understands exactly what a capture of our testbed contains: Ethernet,
// IPv4, UDP/TCP, and inside UDP the RTP/RTCP/STUN discrimination
// heuristics every real trace-analysis tool uses (RTP version bits plus
// the RFC 5761 payload-type split, STUN magic cookie).
#pragma once

#include <cstdint>
#include <optional>

#include "trace/pcap.h"

namespace vca {

struct ParsedPacket {
  int64_t ts_ns = 0;
  uint32_t wire_bytes = 0;   // Ethernet frame length on the wire
  int ip_bytes = 0;          // IP datagram length (header field, not caplen)
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t ip_proto = 0;      // 6 = TCP, 17 = UDP

  // UDP payload classification.
  bool is_rtp = false;
  bool is_rtcp = false;
  bool is_stun = false;

  // RTP fields (valid when is_rtp).
  uint8_t payload_type = 0;
  bool marker = false;
  uint16_t seq = 0;
  uint32_t rtp_timestamp = 0;
  uint32_t ssrc = 0;
};

// Parses one captured Ethernet frame. Returns nullopt for frames the
// capture truncated below the headers or that are not IPv4.
std::optional<ParsedPacket> parse_frame(const PacketRecord& rec);

}  // namespace vca
