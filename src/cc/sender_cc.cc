#include "cc/sender_cc.h"

#include <algorithm>

namespace vca {

// ---------------------------------------------------------------------------
// GCC (Meet)
// ---------------------------------------------------------------------------

GccSenderController::GccSenderController(Bounds b)
    : bounds_(b), loss_rate_(b.start_rate) {}

void GccSenderController::on_feedback(const RtcpMeta& fb, TimePoint now) {
  Duration dt = last_feedback_ == TimePoint() ? Duration::millis(100)
                                              : now - last_feedback_;
  last_feedback_ = now;
  // Loss-based component (WebRTC sender-side rule, ~1 Hz decrease cadence).
  if (fb.loss_fraction > 0.10) {
    if (now - last_decrease_ > Duration::seconds(1)) {
      loss_rate_ = loss_rate_ * (1.0 - 0.5 * fb.loss_fraction);
      last_decrease_ = now;
    }
  } else if (fb.loss_fraction < 0.06) {
    loss_rate_ = loss_rate_ * (1.0 + 0.08 * dt.seconds());
  }
  loss_rate_ = std::clamp(loss_rate_, bounds_.min_rate, bounds_.max_rate);
  if (!fb.remb.is_zero()) remb_ = fb.remb;
}

DataRate GccSenderController::target_rate(TimePoint) {
  DataRate r = loss_rate_;
  if (!remb_.is_zero()) r = std::min(r, remb_);
  return std::clamp(r, bounds_.min_rate, bounds_.max_rate);
}

void GccSenderController::set_max_rate(DataRate cap) {
  bounds_.max_rate = cap;
  loss_rate_ = std::min(loss_rate_, cap);
}

// ---------------------------------------------------------------------------
// Teams
// ---------------------------------------------------------------------------

TeamsSenderController::TeamsSenderController(Bounds b)
    : bounds_(b), rate_(b.start_rate), last_good_rate_(b.max_rate) {}

void TeamsSenderController::on_feedback(const RtcpMeta& fb, TimePoint now) {
  Duration dt = last_feedback_ == TimePoint() ? Duration::millis(100)
                                              : now - last_feedback_;
  last_feedback_ = now;

  // Congestion triggers: meaningful loss, or delay *building up*. A queue
  // that is merely full-but-stable (a steady-rate overloader like Zoom)
  // produces no gradient and only the loss trigger fires.
  bool loss_trigger = fb.loss_fraction > 0.10;
  bool delay_trigger = fb.delay_gradient_ms_per_s > 45.0;

  if ((loss_trigger || delay_trigger) &&
      now - last_decrease_ > Duration::seconds(1)) {
    DataRate floor = fb.receive_rate * 0.85;
    DataRate backed = rate_ * (delay_trigger ? 0.85 : 0.90);
    DataRate next = std::min(backed, std::max(floor, bounds_.min_rate));
    bool deep = next < rate_ * 0.6;
    if (deep) {
      last_good_rate_ = rate_;
      // Distinctive slow-then-fast recovery: hold a cautious additive
      // ramp for a while before the multiplicative phase (Fig 4a).
      cautious_until_ = now + Duration::seconds(8);
    }
    rate_ = next;
    last_decrease_ = now;
  } else if (fb.loss_fraction < 0.08) {
    if (now < cautious_until_) {
      rate_ = rate_ + DataRate::kbps_d(20.0 * dt.seconds());  // slow phase
    } else if (rate_ < last_good_rate_ * 0.95) {
      rate_ = rate_ * (1.0 + 0.25 * dt.seconds());            // fast phase
    } else {
      rate_ = rate_ + DataRate::kbps_d(40.0 * dt.seconds());  // near nominal
    }
  }
  rate_ = std::clamp(rate_, bounds_.min_rate, bounds_.max_rate);
}

DataRate TeamsSenderController::target_rate(TimePoint) { return rate_; }

void TeamsSenderController::set_max_rate(DataRate cap) {
  bounds_.max_rate = cap;
  rate_ = std::min(rate_, cap);
  // Mirror construction: the recovery knee sits at the ceiling, so a raised
  // ceiling is reachable through the fast multiplicative phase instead of
  // the 40 kbps/s near-nominal crawl.
  last_good_rate_ = cap;
}

// ---------------------------------------------------------------------------
// Zoom
// ---------------------------------------------------------------------------

ZoomSenderController::ZoomSenderController(Bounds b, Tuning t)
    : bounds_(b), tuning_(t), rate_(b.start_rate) {
  if (rate_ < b.max_rate * 0.6) state_ = State::kRamp;
}

void ZoomSenderController::on_feedback(const RtcpMeta& fb, TimePoint now) {
  Duration dt = last_feedback_ == TimePoint() ? Duration::millis(100)
                                              : now - last_feedback_;
  last_feedback_ = now;
  const DataRate nominal = bounds_.max_rate;

  // Track how long the path has been clean: climbing requires a sustained
  // clean streak, so a flow joining an already-congested link never gets
  // to ride its first few unrepresentative reports upward (Fig 9a).
  if (fb.loss_fraction > tuning_.ramp_pause_loss) last_dirty_ = now;
  bool clean = now - last_dirty_ > Duration::seconds(2);

  // FEC masks loss below the threshold; above it, back off gently and
  // infrequently — Zoom keeps pushing where others collapse (§5.1).
  if (fb.loss_fraction > tuning_.loss_backoff_threshold &&
      now - last_decrease_ > tuning_.backoff_interval) {
    rate_ = rate_ * tuning_.backoff_factor;
    last_decrease_ = now;
    if (rate_ < nominal * 0.6) {
      if (state_ == State::kSteady || state_ == State::kProbe) {
        seen_disruption_ = true;  // a real collapse, not a slow start
      }
      state_ = State::kRamp;
    }
  }

  switch (state_) {
    case State::kSteady:
      if (rate_ < nominal * 0.6) {
        state_ = State::kRamp;
      } else if (clean && rate_ < nominal) {
        // Drift back up to nominal after mild dips.
        rate_ = std::min(
            nominal, rate_ * (1.0 + tuning_.ramp_frac_per_sec * dt.seconds()));
      }
      break;
    case State::kRamp:
      // Proportional climb after a disruption, paused unless the path has
      // been clean for a sustained stretch.
      if (clean) {
        rate_ = rate_ * (1.0 + tuning_.ramp_frac_per_sec * dt.seconds());
      }
      if (rate_ >= nominal * 0.8) {
        // Probe cycles only follow genuine disruptions; the initial climb
        // into a call settles directly at nominal.
        if (!tuning_.probing_enabled || !seen_disruption_) {
          state_ = State::kSteady;
        } else {
          state_ = State::kProbe;
          probe_hold_until_ = now + tuning_.probe_hold;
        }
      }
      break;
    case State::kProbe:
      // Stepwise probing: hold, step up, hold ... well past nominal, then
      // settle back (the overshoot visible in Fig 4a and Fig 13).
      if (fb.loss_fraction > 0.35) {
        // Even Zoom gives up when the probe destroys the link.
        rate_ = rate_ * 0.9;
        if (rate_ < nominal * 0.6) state_ = State::kRamp;
        break;
      }
      if (now >= probe_hold_until_) {
        if (rate_ >= nominal * tuning_.probe_ceiling_factor) {
          state_ = State::kSteady;
          rate_ = nominal;
        } else {
          rate_ = rate_ + tuning_.probe_step;
          probe_hold_until_ = now + tuning_.probe_hold;
        }
      }
      break;
  }

  DataRate probe_max = nominal * tuning_.probe_ceiling_factor;
  rate_ = std::clamp(rate_, bounds_.min_rate,
                     state_ == State::kProbe ? probe_max : nominal);
}

DataRate ZoomSenderController::target_rate(TimePoint) { return rate_; }

void ZoomSenderController::set_max_rate(DataRate cap) {
  bounds_.max_rate = cap;
  rate_ = std::min(rate_, cap * tuning_.probe_ceiling_factor);
}

// ---------------------------------------------------------------------------

std::unique_ptr<SenderCongestionController> make_sender_cc(
    const std::string& name, SenderCongestionController::Bounds b) {
  if (name == "gcc") return std::make_unique<GccSenderController>(b);
  if (name == "teams") return std::make_unique<TeamsSenderController>(b);
  if (name == "zoom") return std::make_unique<ZoomSenderController>(b);
  if (name == "zoom-noprobe") {
    ZoomSenderController::Tuning t;
    t.probing_enabled = false;
    return std::make_unique<ZoomSenderController>(b, t);
  }
  return nullptr;
}

}  // namespace vca
