// Receive-side bandwidth estimation (the REMB that rides on RTCP reports).
//
// This is a delay-gradient estimator in the spirit of Google Congestion
// Control's remote-rate controller [Carlucci et al., MMSys'16]: it watches
// one-way delay build-up across all incoming media packets at a client (or
// at an SFU leg), declares overuse/underuse, and produces a rate estimate
// that the sender (or the SFU's layer selector) obeys.
//
// The same machinery, with different aggressiveness presets, models:
//  * Meet/WebRTC receivers and SFU uplink legs  (kGcc)
//  * Teams' receiver-driven downlink estimate    (kConservative) — the slow
//    clamp is what produces the paper's 20+ second downlink recoveries (§4.2)
//  * Zoom's server-side probing estimate          (kAggressive) — recovers
//    almost instantly once capacity returns
#pragma once

#include "core/ring.h"
#include "core/time.h"
#include "core/units.h"
#include "transport/rtp.h"

namespace vca {

class ReceiveSideEstimator : public PacketArrivalObserver {
 public:
  enum class Preset { kGcc, kConservative, kAggressive };

  struct Config {
    DataRate min_rate = DataRate::kbps(50);
    DataRate max_rate = DataRate::mbps(10);
    DataRate start_rate = DataRate::kbps(300);
    double backoff = 0.85;            // estimate = backoff * receive rate on overuse
    double increase_per_sec = 0.12;   // multiplicative growth when clear
    double clamp_factor = 1.5;        // estimate <= clamp * measured receive rate
    double overuse_delay_ms = 60.0;   // sustained queuing delay => overuse
    double trend_threshold = 15.0;    // ms/s delay slope => overuse
    double loss_overuse = 0.12;       // sustained loss fraction => overuse
    Duration hold_after_backoff = Duration::millis(500);
  };

  static Config preset(Preset p, DataRate start, DataRate max);

  explicit ReceiveSideEstimator(Config cfg);

  // PacketArrivalObserver
  void on_packet(TimePoint arrival, TimePoint send_time, int bytes) override;
  void note_loss(double loss_fraction) override;
  DataRate remb(TimePoint now) override;
  double queuing_delay_ms() const override { return queuing_delay_ms_; }
  double trendline() const override { return trend_ms_per_s_; }

  DataRate receive_rate(TimePoint now) const;
  DataRate current_estimate() const { return estimate_; }

 private:
  void update_signals(TimePoint now);
  void update_min_owd(TimePoint at, double owd_ms);

  Config cfg_;
  DataRate estimate_;

  struct Arrival {
    TimePoint at;
    double owd_ms;
    int bytes;
  };
  // Ring-backed windows: these cycle once per packet, where a std::deque
  // would be allocating/freeing node blocks for the whole call.
  RingDeque<Arrival> window_;       // ~1 s of arrivals
  RingDeque<Arrival> rate_window_;  // 500 ms for receive-rate measurement
  // Baseline propagation delay: a sliding-window minimum over bucketed
  // recent samples. A point-in-time refresh would latch whatever sample
  // happens to arrive at the refresh instant — under a standing queue
  // that inflates the baseline and masks overuse.
  struct OwdBucket {
    int64_t idx = 0;   // arrival time / bucket length
    double min_ms = 0.0;
  };
  RingDeque<OwdBucket> owd_buckets_;
  double min_owd_ms_ = 1e18;         // min over owd_buckets_
  double queuing_delay_ms_ = 0.0;
  double trend_ms_per_s_ = 0.0;
  double loss_ewma_ = 0.0;
  TimePoint last_update_;
  TimePoint hold_until_;
  TimePoint last_arrival_;
  TimePoint last_group_head_;
};

}  // namespace vca
