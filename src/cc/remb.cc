#include "cc/remb.h"

#include <algorithm>
#include <cmath>

namespace vca {

ReceiveSideEstimator::Config ReceiveSideEstimator::preset(Preset p,
                                                          DataRate start,
                                                          DataRate max) {
  Config c;
  c.start_rate = start;
  c.max_rate = max;
  switch (p) {
    case Preset::kGcc:
      // GCC's adaptive threshold tolerates a standing queue built by a
      // loss-responsive competitor (Meet shares fairly with Teams, Fig 8,
      // and holds its nominal rate against TCP CUBIC at 2 Mbps, Fig 12).
      // Genuine capacity shortage still registers through the loss term.
      c.overuse_delay_ms = 350.0;
      c.trend_threshold = 60.0;
      break;
    case Preset::kConservative:
      // Teams' receiver-driven estimate: small clamp over what is actually
      // arriving and slow growth => the chicken-and-egg ramp the paper
      // measures as 20-40 s downlink recoveries.
      c.backoff = 0.85;
      c.increase_per_sec = 0.05;
      c.clamp_factor = 1.15;
      c.overuse_delay_ms = 40.0;
      c.hold_after_backoff = Duration::seconds(1);
      break;
    case Preset::kAggressive:
      // Zoom's server-side behavior: probes hard (FEC-padded) and trusts
      // capacity quickly once packets flow again.
      c.backoff = 0.9;
      c.increase_per_sec = 0.30;
      c.clamp_factor = 2.5;
      c.overuse_delay_ms = 120.0;
      c.trend_threshold = 60.0;  // keyframe bursts must not read as overuse
      c.loss_overuse = 0.30;     // FEC-protected: holds its layers against TCP
      c.hold_after_backoff = Duration::millis(200);
      break;
  }
  return c;
}

ReceiveSideEstimator::ReceiveSideEstimator(Config cfg)
    : cfg_(cfg), estimate_(cfg.start_rate) {
  // Size the sliding windows for a high-rate flow up front (~1 s of
  // arrivals at a few thousand packets/sec) so steady state never crosses
  // a doubling boundary mid-measurement.
  window_.reserve(4096);
  rate_window_.reserve(2048);
  owd_buckets_.reserve(64);
}

void ReceiveSideEstimator::on_packet(TimePoint arrival, TimePoint send_time,
                                     int bytes) {
  double owd_ms = (arrival - send_time).millis();
  // Group packets that arrive in one burst (a paced frame): only the head
  // of a burst contributes a delay sample. Later packets of the same frame
  // queue behind their own siblings, which would otherwise read as a
  // spurious positive delay gradient on every keyframe (real GCC filters
  // arrivals into packet groups for exactly this reason).
  if (window_.empty() || arrival - last_group_head_ > Duration::millis(5)) {
    window_.push_back({arrival, owd_ms, bytes});
    last_group_head_ = arrival;
  }
  rate_window_.push_back({arrival, owd_ms, bytes});
  last_arrival_ = arrival;
  while (!window_.empty() && window_.front().at < arrival - Duration::seconds(1)) {
    window_.pop_front();
  }
  while (!rate_window_.empty() &&
         rate_window_.front().at < arrival - Duration::millis(500)) {
    rate_window_.pop_front();
  }
  update_min_owd(arrival, owd_ms);
}

// Track the propagation-delay baseline as the minimum over the last
// ~60 s of samples, bucketed so the window costs O(1) per packet. The
// window forgets slowly enough that a standing queue cannot pollute the
// baseline before the backoff drains it, yet route changes (not a thing
// in-sim, but cheap) still age out of the estimate.
void ReceiveSideEstimator::update_min_owd(TimePoint at, double owd_ms) {
  constexpr int64_t kBucketNs = 5'000'000'000;  // 5 s
  constexpr int64_t kBuckets = 12;              // 60 s window
  int64_t idx = at.ns() / kBucketNs;
  if (!owd_buckets_.empty() && owd_buckets_.back().idx == idx) {
    owd_buckets_.back().min_ms = std::min(owd_buckets_.back().min_ms, owd_ms);
  } else {
    owd_buckets_.push_back({idx, owd_ms});
  }
  while (!owd_buckets_.empty() && owd_buckets_.front().idx + kBuckets <= idx) {
    owd_buckets_.pop_front();
  }
  double m = 1e18;
  for (const OwdBucket& b : owd_buckets_) m = std::min(m, b.min_ms);
  min_owd_ms_ = m;
}

void ReceiveSideEstimator::note_loss(double loss_fraction) {
  loss_ewma_ = 0.85 * loss_ewma_ + 0.15 * loss_fraction;
}

DataRate ReceiveSideEstimator::receive_rate(TimePoint now) const {
  if (rate_window_.empty()) return DataRate::zero();
  int64_t bytes = 0;
  for (const auto& a : rate_window_) bytes += a.bytes;
  Duration span = now - rate_window_.front().at;
  if (span < Duration::millis(100)) span = Duration::millis(100);
  return rate_from_bytes(bytes, span);
}

void ReceiveSideEstimator::update_signals(TimePoint now) {
  if (window_.size() < 4) {
    trend_ms_per_s_ = 0.0;
    queuing_delay_ms_ = 0.0;
    return;
  }
  // Least-squares slope of queuing delay over the window, in ms per second.
  double t0 = window_.front().at.seconds();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = static_cast<double>(window_.size());
  for (const auto& a : window_) {
    double x = a.at.seconds() - t0;
    double y = a.owd_ms - min_owd_ms_;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double denom = n * sxx - sx * sx;
  trend_ms_per_s_ = denom > 1e-12 ? (n * sxy - sx * sy) / denom : 0.0;
  // Smoothed queuing delay over the most recent quarter of the window.
  size_t tail = std::max<size_t>(1, window_.size() / 4);
  double sum = 0.0;
  for (size_t i = window_.size() - tail; i < window_.size(); ++i) {
    sum += window_[i].owd_ms - min_owd_ms_;
  }
  queuing_delay_ms_ = sum / static_cast<double>(tail);
  (void)now;
}

DataRate ReceiveSideEstimator::remb(TimePoint now) {
  update_signals(now);
  Duration dt = last_update_ == TimePoint() ? Duration::millis(100)
                                            : now - last_update_;
  last_update_ = now;

  DataRate rx = receive_rate(now);
  // No data, no opinion: without arrivals the estimate must not inflate.
  if (rate_window_.empty() || now - last_arrival_ > Duration::millis(500)) {
    return std::clamp(estimate_, cfg_.min_rate, cfg_.max_rate);
  }
  bool overuse = queuing_delay_ms_ > cfg_.overuse_delay_ms ||
                 trend_ms_per_s_ > cfg_.trend_threshold ||
                 loss_ewma_ > cfg_.loss_overuse;

  if (overuse) {
    // Back off below the measured receive rate; if the estimate is already
    // under it, keep shrinking gently so sustained overuse always drains.
    DataRate backed = std::min(rx * cfg_.backoff, estimate_ * 0.97);
    if (backed < estimate_) estimate_ = backed;
    hold_until_ = now + cfg_.hold_after_backoff;
  } else if (now >= hold_until_) {
    // Growth is ceilinged at clamp_factor x what is demonstrably arriving
    // (the knob separating "fast" and "slow" recoveries) — but the ceiling
    // never *cuts* the estimate: a sender going briefly idle must not
    // collapse the receiver's view of the path.
    DataRate grown = estimate_ * (1.0 + cfg_.increase_per_sec * dt.seconds());
    DataRate ceiling = rx * cfg_.clamp_factor;
    estimate_ = std::max(estimate_, std::min(grown, ceiling));
  }

  estimate_ = std::clamp(estimate_, cfg_.min_rate, cfg_.max_rate);
  return estimate_;
}

}  // namespace vca
