// Sender-side congestion controllers — one per VCA, since the paper
// attributes most cross-VCA differences to proprietary congestion control
// (§2.1, §5). Each consumes RTCP feedback and produces a target media rate.
#pragma once

#include <memory>
#include <string>

#include "core/time.h"
#include "core/units.h"
#include "net/packet.h"

namespace vca {

class SenderCongestionController {
 public:
  struct Bounds {
    DataRate min_rate = DataRate::kbps(100);
    DataRate max_rate = DataRate::mbps(2);    // nominal ceiling for the VCA
    DataRate start_rate = DataRate::kbps(500);
  };

  virtual ~SenderCongestionController() = default;
  virtual void on_feedback(const RtcpMeta& fb, TimePoint now) = 0;
  virtual DataRate target_rate(TimePoint now) = 0;
  // Retarget the ceiling mid-call (the Teams speaker boost grows with the
  // participant count). Raising it lets the normal ramp logic climb toward
  // the new ceiling; lowering it clamps the current rate immediately.
  virtual void set_max_rate(DataRate cap) = 0;
  virtual std::string name() const = 0;
};

// --- Meet (WebRTC / Google Congestion Control) ----------------------------
// Loss-based sender rule combined with the receiver's REMB: aggressive
// enough to fill a clean link, but overuse-triggered REMB backoffs make it
// yield to queue-filling competitors (the paper's "Meet backs off when a
// Zoom client joins", Fig 8a).
class GccSenderController : public SenderCongestionController {
 public:
  explicit GccSenderController(Bounds b);
  void on_feedback(const RtcpMeta& fb, TimePoint now) override;
  DataRate target_rate(TimePoint now) override;
  void set_max_rate(DataRate cap) override;
  std::string name() const override { return "gcc"; }
  DataRate loss_component() const { return loss_rate_; }
  DataRate remb_component() const { return remb_; }

 private:
  Bounds bounds_;
  DataRate loss_rate_;   // loss-based component
  DataRate remb_;        // receiver estimate (0 until first report)
  TimePoint last_decrease_;
  TimePoint last_feedback_;
};

// --- Teams -----------------------------------------------------------------
// Conservative hybrid: reacts to loss *and* to delay build-up (gradient),
// and after a deep backoff ramps slowly-then-quickly (the distinctive
// recovery shape in Fig 4a). The gradient trigger is what makes it
// extremely passive against TCP CUBIC's sawtooth (Fig 12) while staying
// roughly fair against steady-rate VCAs in the uplink (Fig 8b).
class TeamsSenderController : public SenderCongestionController {
 public:
  explicit TeamsSenderController(Bounds b);
  void on_feedback(const RtcpMeta& fb, TimePoint now) override;
  DataRate target_rate(TimePoint now) override;
  void set_max_rate(DataRate cap) override;
  std::string name() const override { return "teams"; }

 private:
  Bounds bounds_;
  DataRate rate_;
  DataRate last_good_rate_;   // rate before the most recent deep backoff
  TimePoint last_decrease_;
  TimePoint cautious_until_;  // slow-ramp phase after a deep backoff
  TimePoint last_feedback_;
};

// --- Zoom -------------------------------------------------------------------
// Loss-tolerant (FEC absorbs moderate loss) and delay-insensitive, with a
// ramp + stepwise-probe recovery cycle that overshoots nominal before
// settling (Fig 4a) — the probe bursts that flatten iPerf3 in Fig 13.
class ZoomSenderController : public SenderCongestionController {
 public:
  struct Tuning {
    double loss_backoff_threshold = 0.25;  // FEC hides anything below this
    double backoff_factor = 0.90;
    Duration backoff_interval = Duration::seconds(4);
    // Proportional climb after disruption: multiplicative increase plus
    // multiplicative decrease preserves rate *ratios*, which is why an
    // incumbent Zoom and a joining Zoom never converge to a fair share
    // (Fig 9a) the way AIMD flows would.
    double ramp_frac_per_sec = 0.06;
    // Climb only when loss sits below what FEC comfortably covers; a
    // congested link (15-25% loss) pins a joining flow, random loss of a
    // few percent does not.
    double ramp_pause_loss = 0.13;
    DataRate probe_step = DataRate::kbps(150);
    Duration probe_hold = Duration::seconds(12);
    double probe_ceiling_factor = 1.7;     // probe up to this x nominal
    bool probing_enabled = true;           // ablation knob
  };

  explicit ZoomSenderController(Bounds b) : ZoomSenderController(b, Tuning{}) {}
  ZoomSenderController(Bounds b, Tuning t);
  void on_feedback(const RtcpMeta& fb, TimePoint now) override;
  DataRate target_rate(TimePoint now) override;
  void set_max_rate(DataRate cap) override;
  std::string name() const override { return "zoom"; }

  enum class State { kSteady, kRamp, kProbe };
  State state() const { return state_; }

 private:
  Bounds bounds_;
  Tuning tuning_;
  DataRate rate_;
  State state_ = State::kSteady;
  bool seen_disruption_ = false;
  TimePoint last_decrease_;
  TimePoint probe_hold_until_;
  TimePoint last_dirty_;
  TimePoint last_feedback_;
};

// Factory for profile tables and ablation benches.
std::unique_ptr<SenderCongestionController> make_sender_cc(
    const std::string& name, SenderCongestionController::Bounds b);

}  // namespace vca
