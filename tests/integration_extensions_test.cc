// Integration tests for the §8 extension features (impairments) and a few
// cross-cutting paper claims used as regression guards.
#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace vca {
namespace {

TEST(ExtensionTest, RandomLossReducesMeetUplink) {
  auto run = [](double loss_pct) {
    TwoPartyConfig cfg;
    cfg.profile = "meet";
    cfg.seed = 9;
    cfg.duration = Duration::seconds(90);
    cfg.c1_loss = loss_pct / 100.0;
    return run_two_party(cfg).c1_up_mbps;
  };
  double clean = run(0.0);
  double lossy = run(8.0);
  EXPECT_LT(lossy, clean * 0.8);  // loss-based controller sheds rate
}

TEST(ExtensionTest, ZoomShrugsOffModerateRandomLoss) {
  auto run = [](double loss_pct) {
    TwoPartyConfig cfg;
    cfg.profile = "zoom";
    cfg.seed = 9;
    cfg.duration = Duration::seconds(90);
    cfg.c1_loss = loss_pct / 100.0;
    return run_two_party(cfg).c1_up_mbps;
  };
  double clean = run(0.0);
  double lossy = run(8.0);
  // FEC-protected: Zoom keeps sending near its nominal rate.
  EXPECT_GT(lossy, clean * 0.85);
}

TEST(ExtensionTest, AddedLatencyBarelyMovesUtilization) {
  auto run = [](double ms) {
    TwoPartyConfig cfg;
    cfg.profile = "meet";
    cfg.seed = 9;
    cfg.duration = Duration::seconds(90);
    cfg.c1_extra_latency = Duration::millis_d(ms);
    return run_two_party(cfg).c1_up_mbps;
  };
  EXPECT_NEAR(run(80.0), run(0.0), 0.25);
}

TEST(ExtensionTest, JitterDegradesFreezesBeforeUtilization) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 9;
  cfg.duration = Duration::seconds(90);
  cfg.c1_jitter = Duration::millis(25);
  TwoPartyResult r = run_two_party(cfg);
  // Still sends video, but the jittered path costs some smoothness.
  EXPECT_GT(r.c1_up_mbps, 0.3);
  EXPECT_GE(r.c1_received.freeze_ratio, 0.0);
}

// --- paper-claim regression guards -----------------------------------------

TEST(PaperClaimTest, TeamsChromeUsesLessThanNativeWhenShaped) {
  auto run = [](const std::string& profile) {
    TwoPartyConfig cfg;
    cfg.profile = profile;
    cfg.seed = 12;
    cfg.duration = Duration::seconds(90);
    cfg.c1_up = DataRate::mbps(1);
    return run_two_party(cfg).c1_up_mbps;
  };
  EXPECT_LT(run("teams-chrome"), run("teams") * 0.95);  // Fig 1c
}

TEST(PaperClaimTest, MeetDownlinkPlateausOnSimulcastLowCopy) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 12;
  cfg.duration = Duration::seconds(120);
  cfg.c1_down = DataRate::kbps(500);
  TwoPartyResult r = run_two_party(cfg);
  // Fig 1b: utilization pinned far below capacity.
  EXPECT_LT(r.c1_down_mbps, 0.36);
  // ...and the received stream is the 320-wide copy.
  EXPECT_EQ(r.c1_received.median_width, 320);
}

TEST(PaperClaimTest, ZoomUplinkDisruptionOvershootsNominal) {
  DisruptionConfig cfg;
  cfg.profile = "zoom";
  cfg.seed = 12;
  DisruptionResult r = run_disruption(cfg);
  double peak = 0.0;
  for (const auto& s : r.disrupted_series.samples()) {
    if (s.at.seconds() > 95.0 && s.at.seconds() < 250.0) {
      peak = std::max(peak, s.value);
    }
  }
  EXPECT_GT(peak, r.ttr.nominal_mbps * 1.25);  // Fig 4a probe overshoot
}

}  // namespace
}  // namespace vca
