// The sweep engine's contract: parallel execution is an implementation
// detail, never observable in the results — a --jobs 8 run must produce
// byte-identical output to --jobs 1, and both must match the pre-sweep
// serial code path (a plain loop over the scenario runner).
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "harness/scenario.h"
#include "harness/sweep.h"
#include "stats/table.h"

namespace vca {
namespace {

TEST(SweepTest, ResultsComeBackInSubmissionOrder) {
  // Early jobs sleep longest, so with any real parallelism (or work
  // stealing) completion order inverts submission order.
  std::vector<int> jobs;
  for (int i = 0; i < 64; ++i) jobs.push_back(i);
  auto results = Sweep::run(
      jobs,
      [](const int& i) {
        std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 50));
        return i * i;
      },
      8);
  ASSERT_EQ(results.size(), jobs.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(SweepTest, FirstSubmittedErrorWinsDeterministically) {
  std::vector<int> jobs{0, 1, 2, 3, 4, 5, 6, 7};
  for (int run = 0; run < 3; ++run) {
    try {
      Sweep::run(
          jobs,
          [](const int& i) -> int {
            if (i == 3 || i == 6) {
              throw std::runtime_error("job " + std::to_string(i));
            }
            return i;
          },
          4);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 3");  // lowest index, not first-to-fail
    }
  }
}

TEST(SweepTest, ZeroJobsAndEmptyInputAreFine) {
  EXPECT_TRUE(Sweep::run(std::vector<int>{}, [](const int& i) { return i; })
                  .empty());
  auto r = Sweep::run(std::vector<int>{41}, [](const int& i) { return i + 1; },
                      0);  // 0 => default_jobs()
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 42);
  EXPECT_GE(default_jobs(), 1);
}

TEST(SweepTest, ParseArgs) {
  const char* argv[] = {"bench", "--jobs", "8", "--other", "x",
                        "--json", "/tmp/out.json"};
  SweepOptions o = parse_sweep_args(7, const_cast<char**>(argv));
  EXPECT_EQ(o.jobs, 8);
  EXPECT_EQ(o.json_path, "/tmp/out.json");
  SweepOptions d = parse_sweep_args(1, const_cast<char**>(argv));
  EXPECT_EQ(d.jobs, 0);
  EXPECT_TRUE(d.json_path.empty());
}

// A representative bench grid, shortened: capacity x profile x rep over
// real two-party simulations.
std::vector<TwoPartyConfig> grid_jobs() {
  std::vector<TwoPartyConfig> jobs;
  for (double cap : {0.5, 1.0}) {
    for (const std::string profile : {"meet", "zoom"}) {
      for (int rep = 0; rep < 2; ++rep) {
        TwoPartyConfig cfg;
        cfg.profile = profile;
        cfg.seed = 1200 + static_cast<uint64_t>(rep);
        cfg.c1_down = DataRate::mbps_d(cap);
        cfg.duration = Duration::seconds(25);
        cfg.measure_from = Duration::seconds(5);
        jobs.push_back(cfg);
      }
    }
  }
  return jobs;
}

// Render results the way a bench table cell would — full precision, so
// any cross-thread nondeterminism shows up as a byte difference.
std::string render(const std::vector<TwoPartyResult>& results) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : results) {
    os << r.c1_up_mbps << "|" << r.c1_down_mbps << "|"
       << r.c1_received.median_fps << "|" << r.c1_received.median_width << "|"
       << r.c1_received.freeze_ratio << "|" << r.c2_received.fir_upstream
       << "\n";
  }
  return os.str();
}

TEST(SweepTest, BenchGridByteIdenticalAcrossJobCounts) {
  std::vector<TwoPartyConfig> jobs = grid_jobs();

  // The pre-sweep serial code path: a plain loop over the runner.
  std::vector<TwoPartyResult> serial;
  for (const auto& cfg : jobs) serial.push_back(run_two_party(cfg));

  auto jobs1 = Sweep::run(jobs, run_two_party, 1);
  auto jobs8 = Sweep::run(jobs, run_two_party, 8);

  std::string expect = render(serial);
  EXPECT_EQ(render(jobs1), expect);
  EXPECT_EQ(render(jobs8), expect);
}

std::string file_without_timing(const std::string& path) {
  std::ifstream f(path);
  std::string line, out;
  while (std::getline(f, line)) {
    if (line.find("\"timing\"") == std::string::npos) out += line + "\n";
  }
  return out;
}

TEST(SweepTest, JsonReportByteIdenticalAcrossJobCounts) {
  std::vector<TwoPartyConfig> jobs = grid_jobs();
  auto report_for = [&](int n_jobs, const std::string& path) {
    SweepOptions opts;
    opts.jobs = n_jobs;
    opts.json_path = path;
    BenchReport report("sweep_test", opts);
    report.begin_section("grid", "downlink grid");
    auto results = Sweep::run(jobs, run_two_party, n_jobs);
    for (size_t i = 0; i < jobs.size(); i += 2) {
      std::vector<double> vals = {results[i].c1_down_mbps,
                                  results[i + 1].c1_down_mbps};
      report.add_cell({{"profile", jobs[i].profile},
                       {"cap_mbps", fmt(jobs[i].c1_down.mbps_f(), 1)}},
                      {{"down_mbps", confidence_interval(vals)}});
    }
    ASSERT_TRUE(report.finish());
  };
  std::string p1 = testing::TempDir() + "/sweep_j1.json";
  std::string p8 = testing::TempDir() + "/sweep_j8.json";
  report_for(1, p1);
  report_for(8, p8);
  std::string a = file_without_timing(p1);
  EXPECT_EQ(a, file_without_timing(p8));
  EXPECT_FALSE(a.empty());
  // The stripped-out timing line exists in the raw file.
  std::ifstream f(p8);
  std::string raw((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(raw.find("\"timing\""), std::string::npos);
  EXPECT_NE(raw.find("\"events_per_sec\""), std::string::npos);
}

TEST(SweepTest, SimEventCounterAdvances) {
  uint64_t before = sim_events_total();
  TwoPartyConfig cfg;
  cfg.duration = Duration::seconds(5);
  cfg.measure_from = Duration::seconds(1);
  run_two_party(cfg);
  EXPECT_GT(sim_events_total(), before);
}

}  // namespace
}  // namespace vca
