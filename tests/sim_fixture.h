// Shared test topology: two hosts connected through a router, with
// independently shapeable uplinks and downlinks — a miniature of the
// paper's laboratory setup.
#pragma once

#include <memory>

#include "core/scheduler.h"
#include "net/link.h"
#include "net/node.h"

namespace vca::testing {

struct TwoHostNet {
  EventScheduler sched;
  Host c1{1, "c1"};
  Host c2{2, "c2"};
  ForwardingNode router{"router"};
  std::unique_ptr<Link> c1_up, c1_down, c2_up, c2_down;

  explicit TwoHostNet(DataRate rate = DataRate::mbps(100),
                      Duration prop = Duration::millis(5),
                      int64_t queue_bytes = 150 * 1024) {
    Link::Config cfg;
    cfg.rate = rate;
    cfg.propagation = prop;
    cfg.queue_bytes = queue_bytes;
    c1_up = std::make_unique<Link>(&sched, "c1-up", cfg);
    c1_down = std::make_unique<Link>(&sched, "c1-down", cfg);
    c2_up = std::make_unique<Link>(&sched, "c2-up", cfg);
    c2_down = std::make_unique<Link>(&sched, "c2-down", cfg);
    c1.set_uplink(c1_up.get());
    c2.set_uplink(c2_up.get());
    c1_up->set_sink(&router);
    c2_up->set_sink(&router);
    router.add_route(c1.id(), c1_down.get());
    router.add_route(c2.id(), c2_down.get());
    c1_down->set_sink(&c1);
    c2_down->set_sink(&c2);
  }
};

}  // namespace vca::testing
