#include <gtest/gtest.h>

#include <vector>

#include "sim_fixture.h"
#include "transport/rtp.h"

namespace vca {
namespace {

using namespace vca::literals;
using vca::testing::TwoHostNet;

constexpr FlowId kMedia = 10;
constexpr FlowId kFeedback = 11;

struct RtpPair {
  TwoHostNet& net;
  RtpSender sender;
  RtpReceiver receiver;
  std::vector<DecodedFrame> frames;

  explicit RtpPair(TwoHostNet& n, double fec = 0.0)
      : net(n),
        sender(&n.sched, &n.c1,
               {.ssrc = 1,
                .flow = kMedia,
                .dst = n.c2.id(),
                .pacing_rate = DataRate::mbps(50),
                .fec_overhead = fec}),
        receiver(&n.sched, &n.c2,
                 {.ssrc = 1, .feedback_flow = kFeedback, .feedback_dst = n.c1.id()}) {
    n.c2.register_flow(kMedia, [this](Packet p) { receiver.handle_packet(p); });
    n.c1.register_flow(kFeedback,
                       [this](Packet p) { sender.handle_rtcp(p.rtcp()); });
    receiver.set_frame_handler(
        [this](const DecodedFrame& f) { frames.push_back(f); });
  }

  EncodedFrame frame(uint64_t id, int bytes, bool key = false) {
    EncodedFrame f;
    f.ssrc = 1;
    f.frame_id = id;
    f.bytes = bytes;
    f.keyframe = key;
    f.width = 640;
    f.fps = 30;
    f.qp = 28;
    f.capture_time = net.sched.now();
    return f;
  }
};

TEST(RtpTest, SingleFrameDeliveredAndDecoded) {
  TwoHostNet net;
  RtpPair p(net);
  p.sender.send_frame(p.frame(0, 3000, true));
  net.sched.run_for(1_s);
  ASSERT_EQ(p.frames.size(), 1u);
  EXPECT_EQ(p.frames[0].frame_id, 0u);
  EXPECT_EQ(p.frames[0].width, 640);
  EXPECT_FALSE(p.frames[0].recovered_by_fec);
}

TEST(RtpTest, LargeFrameFragmentedAcrossPackets) {
  TwoHostNet net;
  RtpPair p(net);
  int received_packets = 0;
  net.c2.register_flow(kMedia, [&](Packet pk) {
    ++received_packets;
    p.receiver.handle_packet(pk);
  });
  p.sender.send_frame(p.frame(0, 5000, true));  // 5 packets at 1200 B MTU
  net.sched.run_for(1_s);
  EXPECT_EQ(received_packets, 5);
  ASSERT_EQ(p.frames.size(), 1u);
}

TEST(RtpTest, InOrderFrameDelivery) {
  TwoHostNet net;
  RtpPair p(net);
  for (uint64_t i = 0; i < 30; ++i) p.sender.send_frame(p.frame(i, 2000, i == 0));
  net.sched.run_for(2_s);
  ASSERT_EQ(p.frames.size(), 30u);
  for (uint64_t i = 0; i < 30; ++i) EXPECT_EQ(p.frames[i].frame_id, i);
}

TEST(RtpTest, NackRecoversLostPacket) {
  TwoHostNet net;
  RtpPair p(net);
  // Drop exactly one media packet on its way to c2.
  int count = 0;
  net.c2.register_flow(kMedia, [&](Packet pk) {
    if (++count == 5) return;  // swallow the 5th packet
    p.receiver.handle_packet(pk);
  });
  for (uint64_t i = 0; i < 10; ++i) p.sender.send_frame(p.frame(i, 2000, i == 0));
  net.sched.run_for(2_s);
  // The retransmission should have repaired the stream: all 10 frames.
  EXPECT_EQ(p.frames.size(), 10u);
  EXPECT_GT(p.receiver.nacks_sent(), 0);
}

TEST(RtpTest, FecRecoversLossWithoutRetransmission) {
  TwoHostNet net;
  RtpPair p(net, /*fec=*/0.5);
  int count = 0;
  net.c2.register_flow(kMedia, [&](Packet pk) {
    // Drop one *media* packet of frame 3; FEC packets still arrive.
    if (!pk.rtp().is_fec && pk.rtp().frame_id == 3 && pk.rtp().packet_index == 1 &&
        count++ == 0) {
      return;
    }
    p.receiver.handle_packet(pk);
  });
  for (uint64_t i = 0; i < 10; ++i) p.sender.send_frame(p.frame(i, 3000, i == 0));
  net.sched.run_for(2_s);
  EXPECT_EQ(p.frames.size(), 10u);
  bool fec_used = false;
  for (const auto& f : p.frames) fec_used |= f.recovered_by_fec;
  EXPECT_TRUE(fec_used);
  EXPECT_GT(p.sender.sent_fec_bytes(), 0);
}

TEST(RtpTest, UnrecoveredLossStallsUntilKeyframe) {
  TwoHostNet net;
  RtpPair p(net);
  // Disable retransmission by eating NACK-triggered RTX: drop all packets
  // of frame 5 permanently.
  net.c2.register_flow(kMedia, [&](Packet pk) {
    if (pk.rtp().frame_id == 5) return;
    p.receiver.handle_packet(pk);
  });
  // 30 fps-ish spacing so deadlines engage.
  for (uint64_t i = 0; i < 30; ++i) {
    net.sched.schedule(Duration::millis(33 * static_cast<int64_t>(i)), [&, i] {
      p.sender.send_frame(p.frame(i, 2000, i == 0 || i == 15));
    });
  }
  net.sched.run_for(3_s);
  // Frames 6..14 are undecodable (stall); decoding resumes at keyframe 15.
  std::vector<uint64_t> ids;
  for (const auto& f : p.frames) ids.push_back(f.frame_id);
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 5) == ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 10) == ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 15) != ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 29) != ids.end());
  EXPECT_GT(p.receiver.frames_lost(), 0);
}

TEST(RtpTest, FirSentDuringLongStall) {
  TwoHostNet net;
  RtpPair p(net);
  bool blackhole = false;
  net.c2.register_flow(kMedia, [&](Packet pk) {
    if (blackhole) return;
    p.receiver.handle_packet(pk);
  });
  // Steady stream, then a long outage with traffic still flowing (dropped).
  for (uint64_t i = 0; i < 90; ++i) {
    net.sched.schedule(Duration::millis(33 * static_cast<int64_t>(i)), [&, i] {
      p.sender.send_frame(p.frame(i, 2000, i == 0));
    });
  }
  net.sched.schedule(1_s, [&] { blackhole = true; });
  net.sched.run_for(4_s);
  EXPECT_GT(p.receiver.fir_sent(), 0);
  EXPECT_TRUE(p.sender.take_keyframe_request() || p.receiver.fir_sent() > 0);
}

TEST(RtpTest, FeedbackCarriesLossFraction) {
  TwoHostNet net;
  RtpPair p(net);
  std::vector<double> losses;
  p.sender.set_feedback_handler(
      [&](const RtcpMeta& fb) { losses.push_back(fb.loss_fraction); });
  int count = 0;
  net.c2.register_flow(kMedia, [&](Packet pk) {
    if (++count % 4 == 0) return;  // drop 25%, but prevent nack repair
    p.receiver.handle_packet(pk);
  });
  for (uint64_t i = 0; i < 60; ++i) {
    net.sched.schedule(Duration::millis(16 * static_cast<int64_t>(i)),
                       [&, i] { p.sender.send_frame(p.frame(i, 2400, i == 0)); });
  }
  net.sched.run_for(2_s);
  ASSERT_FALSE(losses.empty());
  double max_loss = *std::max_element(losses.begin(), losses.end());
  EXPECT_GT(max_loss, 0.1);
}

TEST(RtpTest, PacerDropsFramesWhenOverloaded) {
  TwoHostNet net;
  RtpPair p(net);
  p.sender.set_pacing_rate(DataRate::kbps(100));  // tiny pacer budget
  for (uint64_t i = 0; i < 60; ++i) p.sender.send_frame(p.frame(i, 20000, i == 0));
  net.sched.run_for(2_s);
  EXPECT_GT(p.sender.dropped_frames(), 0);
}

TEST(RtpTest, FeedbackReportsReceiveRate) {
  TwoHostNet net;
  RtpPair p(net);
  DataRate seen;
  p.sender.set_feedback_handler([&](const RtcpMeta& fb) {
    if (fb.receive_rate > seen) seen = fb.receive_rate;
  });
  // ~1.0 Mbps: 30 frames/s x ~4.2 kB.
  for (uint64_t i = 0; i < 60; ++i) {
    net.sched.schedule(Duration::millis(33 * static_cast<int64_t>(i)),
                       [&, i] { p.sender.send_frame(p.frame(i, 4200, i == 0)); });
  }
  net.sched.run_for(3_s);
  EXPECT_GT(seen.mbps_f(), 0.5);
  EXPECT_LT(seen.mbps_f(), 2.5);
}

}  // namespace
}  // namespace vca
