#include <gtest/gtest.h>

#include "stats/freeze.h"

namespace vca {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::from_ns(ms * 1'000'000); }

TEST(FreezeTest, SteadyStreamHasNoFreezes) {
  FreezeDetector fd;
  for (int64_t t = 0; t < 10'000; t += 33) fd.on_frame(at_ms(t));
  EXPECT_EQ(fd.freeze_count(), 0);
  EXPECT_EQ(fd.frozen_time().ms(), 0);
}

TEST(FreezeTest, LongGapCountsAsFreeze) {
  FreezeDetector fd;
  for (int64_t t = 0; t <= 2'000; t += 33) fd.on_frame(at_ms(t));
  fd.on_frame(at_ms(3'000));  // ~1 s gap >> max(3*33, 33+150)
  EXPECT_EQ(fd.freeze_count(), 1);
  EXPECT_GT(fd.frozen_time().ms(), 800);
}

TEST(FreezeTest, GapBelowThresholdIgnored) {
  FreezeDetector fd;
  for (int64_t t = 0; t <= 2'000; t += 33) fd.on_frame(at_ms(t));
  // 120 ms gap: above 3*33=99ms? The paper rule is max(3d, d+150) = 183ms.
  fd.on_frame(at_ms(2'100 + 20));
  EXPECT_EQ(fd.freeze_count(), 0);
}

TEST(FreezeTest, PaperThresholdUsesAdditive150msForFastStreams) {
  FreezeDetector fd;
  // 60 fps stream: d=16.7ms, 3d = 50ms, but threshold is d+150 = 167ms.
  for (int64_t t = 0; t <= 1'000; t += 17) fd.on_frame(at_ms(t));
  fd.on_frame(at_ms(1'100));  // 100 ms gap: > 3d but < d+150
  EXPECT_EQ(fd.freeze_count(), 0);
  fd.on_frame(at_ms(1'300));  // 200 ms gap: freeze
  EXPECT_EQ(fd.freeze_count(), 1);
}

TEST(FreezeTest, FreezeRatio) {
  FreezeDetector fd;
  for (int64_t t = 0; t <= 1'000; t += 33) fd.on_frame(at_ms(t));
  fd.on_frame(at_ms(2'000));  // ~1 s frozen in a 2 s call
  double ratio = fd.freeze_ratio(Duration::seconds(2));
  EXPECT_GT(ratio, 0.40);
  EXPECT_LT(ratio, 0.55);
}

TEST(FreezeTest, FinalizeCountsTrailingFreeze) {
  FreezeDetector fd;
  for (int64_t t = 0; t <= 1'000; t += 33) fd.on_frame(at_ms(t));
  fd.finalize(at_ms(4'000));  // stream died 3 s before call end
  EXPECT_EQ(fd.freeze_count(), 1);
  EXPECT_GT(fd.frozen_time().ms(), 2'500);
}

TEST(FreezeTest, MultipleFreezesAccumulate) {
  FreezeDetector fd;
  int64_t t = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 30; ++i) {
      fd.on_frame(at_ms(t));
      t += 33;
    }
    t += 500;  // freeze gap
  }
  EXPECT_EQ(fd.freeze_count(), 2);  // gaps between the three bursts
  EXPECT_GT(fd.frozen_time().ms(), 800);
}

}  // namespace
}  // namespace vca
