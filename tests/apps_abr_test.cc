#include <gtest/gtest.h>

#include "apps/abr_video.h"
#include "apps/bulk_tcp.h"
#include "sim_fixture.h"

namespace vca {
namespace {

using namespace vca::literals;
using vca::testing::TwoHostNet;

TEST(BulkTcpTest, SaturatesBottleneck) {
  TwoHostNet net(DataRate::mbps(10));
  BulkTcpApp app(&net.sched, &net.c1, &net.c2, {});
  app.start();
  net.sched.run_for(20_s);
  double mbps = static_cast<double>(app.delivered_bytes()) * 8 / 20e6;
  EXPECT_GT(mbps, 8.0);
  app.stop();
  int64_t bytes = app.sender()->sent_bytes();
  net.sched.run_for(5_s);
  EXPECT_EQ(app.sender()->sent_bytes(), bytes);
}

struct AbrRig {
  TwoHostNet net;  // c1 = viewer, c2 = CDN server
  AbrVideoApp app;
  AbrRig(DataRate link, AbrVideoApp::Config cfg)
      : net(DataRate::gbps(1)),
        app(&net.sched, &net.c1, &net.c2,
            [&] {
              cfg.flow_base = 9100;
              return cfg;
            }()) {
    net.c1_down->set_rate(link);  // viewer's downlink is the bottleneck
    net.c1_down->set_queue_bytes(40'000);
  }
};

TEST(AbrTest, ClimbsLadderWithHeadroom) {
  AbrRig rig(DataRate::mbps(5), AbrVideoApp::youtube());
  rig.app.start();
  rig.net.sched.run_for(60_s);
  rig.app.stop();
  EXPECT_GE(rig.app.current_quality(), 4);  // >= 1.05 Mbps tier
  EXPECT_GT(rig.app.buffer_seconds(), 10.0);
  EXPECT_LT(rig.app.rebuffer_seconds(), 3.0);
}

TEST(AbrTest, StaysLowOnScarceLink) {
  AbrRig rig(DataRate::kbps(400), AbrVideoApp::youtube());
  rig.app.start();
  rig.net.sched.run_for(90_s);
  rig.app.stop();
  EXPECT_LE(rig.app.current_quality(), 1);
}

TEST(AbrTest, NetflixEscalatesParallelConnectionsUnderScarcity) {
  AbrRig rig(DataRate::kbps(300), AbrVideoApp::netflix());
  rig.app.start();
  rig.net.sched.run_for(120_s);
  rig.app.stop();
  // Fig 14b behavior: many connections, several in parallel.
  EXPECT_GT(rig.app.connections_opened(), 10);
  EXPECT_GE(rig.app.max_parallel_seen(), 3);
}

TEST(AbrTest, YoutubeKeepsSingleConnectionPerChunk) {
  AbrRig rig(DataRate::kbps(300), AbrVideoApp::youtube());
  rig.app.start();
  rig.net.sched.run_for(60_s);
  rig.app.stop();
  EXPECT_EQ(rig.app.max_parallel_seen(), 1);
}

TEST(AbrTest, OffPeriodsWhenBufferFull) {
  AbrRig rig(DataRate::mbps(20), AbrVideoApp::youtube());
  rig.app.start();
  rig.net.sched.run_for(120_s);
  rig.app.stop();
  // Buffer saturates at the target and stays there.
  EXPECT_LE(rig.app.buffer_seconds(), 30.0);
  EXPECT_GT(rig.app.buffer_seconds(), 15.0);
}

TEST(AbrTest, DeliversActualBytes) {
  AbrRig rig(DataRate::mbps(2), AbrVideoApp::youtube());
  rig.app.start();
  rig.net.sched.run_for(30_s);
  rig.app.stop();
  EXPECT_GT(rig.app.delivered_bytes(), 500'000);
}

}  // namespace
}  // namespace vca
