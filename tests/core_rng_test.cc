#include <gtest/gtest.h>

#include "core/rng.h"

namespace vca {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng root(7);
  Rng x = root.fork("x");
  Rng y = root.fork("y");
  // Forks with different tags should produce different streams...
  EXPECT_NE(x.uniform(), y.uniform());
  // ...and the same tag should reproduce the same stream.
  Rng x2 = Rng(7).fork("x");
  Rng x3 = Rng(7).fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(x2.uniform(), x3.uniform());
}

TEST(RngTest, UniformRangeRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng r(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.gaussian(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(13);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng a(0), b(0);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace vca
