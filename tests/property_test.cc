// Property-style parameterized suites: invariants that must hold across
// sweeps of rates, seeds, and profiles.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "media/encoder.h"
#include "sim_fixture.h"
#include "transport/tcp.h"
#include "vca/call.h"

namespace vca {
namespace {

using namespace vca::literals;

// --- Encoder hits any target in its operating range -----------------------

class EncoderRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(EncoderRateSweep, LongRunAverageOnTarget) {
  const int kbps = GetParam();
  EventScheduler sched;
  AdaptiveEncoder enc(&sched, Rng(17),
                      {.ssrc = 1, .spatial_layer = 0,
                       .policy = [](DataRate t, int) {
                         return EncoderSettings{640, 30.0, 30, t};
                       }});
  int64_t bytes = 0;
  enc.set_frame_handler([&](const EncodedFrame& f) { bytes += f.bytes; });
  enc.set_target(DataRate::kbps(kbps), 1280);
  enc.start();
  sched.run_until(TimePoint::zero() + 60_s);
  double got_kbps = static_cast<double>(bytes) * 8 / 60.0 / 1000.0;
  EXPECT_NEAR(got_kbps, kbps, kbps * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Targets, EncoderRateSweep,
                         ::testing::Values(100, 250, 500, 800, 1200, 2000));

// --- The wire never exceeds the shaped capacity ----------------------------

class CapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySweep, ShapedLinkCapsEveryBucket) {
  TwoPartyConfig cfg;
  cfg.profile = "zoom";  // the most aggressive sender
  cfg.seed = 5;
  cfg.duration = Duration::seconds(60);
  cfg.c1_up = DataRate::mbps_d(GetParam());
  TwoPartyResult r = run_two_party(cfg);
  for (const auto& s : r.c1_up_series.samples()) {
    EXPECT_LE(s.value, GetParam() * 1.02 + 0.02)
        << "bucket at t=" << s.at.seconds();
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CapacitySweep,
                         ::testing::Values(0.3, 0.5, 1.0, 2.0, 5.0));

// --- TCP delivers exactly what was written under random loss ---------------

class TcpLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossSweep, ExactDeliveryUnderRandomDrops) {
  vca::testing::TwoHostNet net(DataRate::mbps(20));
  TcpSender sender(&net.sched, &net.c1, {.flow = 1, .dst = 2});
  TcpReceiverEndpoint receiver(&net.sched, &net.c2, {.flow = 1, .peer = 1});
  Rng rng(static_cast<uint64_t>(GetParam()));
  net.c2.register_flow(1, [&](Packet p) {
    if (rng.bernoulli(0.05)) return;  // 5% random loss
    receiver.handle_packet(p);
  });
  net.c1.register_flow(1, [&](Packet p) { sender.handle_packet(p); });
  sender.write(2'000'000);
  net.sched.run_until(TimePoint::zero() + 120_s);
  EXPECT_EQ(receiver.delivered_bytes(), 2'000'000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpLossSweep, ::testing::Range(1, 9));

// --- Every profile is deterministic and well-behaved ----------------------

class ProfileSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileSweep, DeterministicAndBounded) {
  auto run = [&](uint64_t seed) {
    TwoPartyConfig cfg;
    cfg.profile = GetParam();
    cfg.seed = seed;
    cfg.duration = Duration::seconds(45);
    return run_two_party(cfg);
  };
  TwoPartyResult a = run(11);
  TwoPartyResult b = run(11);
  EXPECT_DOUBLE_EQ(a.c1_up_mbps, b.c1_up_mbps);
  EXPECT_DOUBLE_EQ(a.c1_down_mbps, b.c1_down_mbps);
  // Sanity bounds on an unconstrained link.
  EXPECT_GT(a.c1_up_mbps, 0.2);
  EXPECT_LT(a.c1_up_mbps, 3.0);
  EXPECT_GE(a.c1_received.freeze_ratio, 0.0);
  EXPECT_LE(a.c1_received.freeze_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::Values("meet", "teams", "zoom",
                                           "teams-chrome", "zoom-chrome"));

// --- Link byte conservation across random traffic --------------------------

class LinkConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkConservationSweep, OfferedEqualsDeliveredPlusDropped) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::kbps(500);
  cfg.queue_bytes = 10'000;
  Link link(&sched, "l", cfg);
  struct Sink : PacketSink {
    int64_t bytes = 0;
    void deliver(Packet p) override { bytes += p.size_bytes; }
  } sink;
  link.set_sink(&sink);
  Rng rng(static_cast<uint64_t>(GetParam()));
  int64_t offered = 0;
  for (int i = 0; i < 3000; ++i) {
    // A whole Packet does not fit the scheduler's 64-byte inline capture;
    // capture the size and build the packet at delivery time instead.
    int sz = static_cast<int>(rng.uniform_int(40, 1500));
    offered += sz;
    sched.schedule(Duration::millis(rng.uniform_int(0, 20'000)), [&link, sz] {
      Packet p;
      p.size_bytes = sz;
      link.deliver(std::move(p));
    });
  }
  sched.run_all();
  EXPECT_EQ(offered, sink.bytes + link.dropped_bytes());
  EXPECT_EQ(sink.bytes, link.delivered_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkConservationSweep, ::testing::Range(1, 7));

// --- Multiparty utilization behaves across participant counts --------------

class ParticipantsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParticipantsSweep, DownlinkScalesWithFeeds) {
  MultipartyConfig cfg;
  cfg.profile = "meet";
  cfg.participants = GetParam();
  cfg.seed = 4;
  cfg.duration = Duration::seconds(50);
  MultipartyResult r = run_multiparty(cfg);
  EXPECT_GT(r.c1_down_mbps, 0.1);
  // Downlink cannot exceed feeds x (top copy + overhead headroom).
  EXPECT_LT(r.c1_down_mbps, (GetParam() - 1) * 1.0 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(N, ParticipantsSweep, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace vca
