// Cascaded SFU fleet tests: cross-region delivery, churn teardown on
// every exit path (incl. during an SFU blackout), region-scoped relay
// faults, and the relay-at-most-once property.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "net/faults.h"
#include "vca/conference.h"

namespace vca {
namespace {

using namespace vca::literals;

struct ConfRig {
  Network net;
  std::vector<Network::Region*> regions;
  std::vector<Network::HostPorts> sfu_ports;
  std::vector<Network::HostPorts> client_ports;
  std::unique_ptr<Conference> conf;

  // `region_of[i]` pins client i's region; empty = round-robin.
  ConfRig(const std::string& profile, int n_regions, int n_clients,
          std::vector<int> region_of = {}, ViewMode mode = ViewMode::kGallery,
          uint64_t seed = 1) {
    Conference::Config cfg;
    cfg.profile = vca_profile(profile);
    cfg.mode = mode;
    cfg.seed = seed;
    conf = std::make_unique<Conference>(&net.sched(), cfg);
    for (int r = 0; r < n_regions; ++r) {
      regions.push_back(net.add_region("r" + std::to_string(r),
                                       DataRate::gbps(2),
                                       Duration::millis(20)));
      sfu_ports.push_back(net.add_host_in_region(
          regions.back(), "sfu-r" + std::to_string(r), DataRate::gbps(4),
          DataRate::gbps(4), Duration::millis(1), 8 << 20));
      conf->add_region(sfu_ports.back().host);
    }
    for (int i = 0; i < n_clients; ++i) {
      int region = region_of.empty() ? i % n_regions
                                     : region_of[static_cast<size_t>(i)];
      client_ports.push_back(net.add_host_in_region(
          regions[static_cast<size_t>(region)], "c" + std::to_string(i + 1),
          DataRate::mbps(10), DataRate::mbps(25), Duration::millis(2),
          1 << 20));
      conf->add_client(client_ports.back().host, region);
    }
  }

  VcaClient* cl(int i) { return conf->client(static_cast<size_t>(i)); }
  void run_to(double sec) {
    net.sched().run_until(TimePoint::zero() + Duration::millis(
                                                  static_cast<int64_t>(sec * 1000)));
  }
  const VcaClient::Feed* feed_from(VcaClient* viewer, VcaClient* pub) {
    for (const auto& f : viewer->feeds()) {
      if (f->publisher == pub->host()->id()) return f.get();
    }
    return nullptr;
  }
  std::vector<std::string> violations() {
    std::vector<std::string> out;
    conf->append_invariant_violations(&out);
    return out;
  }
};

TEST(ConferenceTest, CascadedDeliveryAcrossRegions) {
  ConfRig rig("webex", 2, 4);
  rig.conf->start();
  rig.run_to(25);

  // Every viewer decodes every other participant's video, local and
  // cross-region alike.
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(rig.conf->subscription_count_for(rig.cl(v)), 3);
    for (int p = 0; p < 4; ++p) {
      if (p == v) continue;
      const auto* feed = rig.feed_from(rig.cl(v), rig.cl(p));
      ASSERT_NE(feed, nullptr) << "viewer " << v << " publisher " << p;
      EXPECT_GT(feed->receiver->frames_decoded(), 100)
          << "viewer " << v << " publisher " << p;
    }
  }
  // Each publisher is relayed to exactly the one peer region that views
  // it: 4 publishers x 1 peer region.
  EXPECT_EQ(rig.conf->relay_count(), 4);
  EXPECT_TRUE(rig.violations().empty());
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

TEST(ConferenceTest, LeaveTearsDownEverySubscriptionAndRelay) {
  ConfRig rig("webex", 2, 5);
  rig.conf->start();
  rig.run_to(15);
  ASSERT_EQ(rig.conf->active_count(), 5);

  // c1 (region 1) leaves mid-call while its streams are mid-relay into
  // region 0.
  rig.conf->leave(rig.cl(1));
  rig.run_to(30);

  EXPECT_EQ(rig.conf->active_count(), 4);
  EXPECT_FALSE(rig.conf->is_active(rig.cl(1)));
  // Nobody forwards to the departed client, and no stale subscription
  // survives anywhere in the fleet.
  EXPECT_EQ(rig.conf->forwards_to_departed(), 0);
  EXPECT_TRUE(rig.violations().empty());
  // Remaining viewers dropped exactly the departed feed.
  for (int v = 0; v < 5; ++v) {
    if (v == 1) continue;
    EXPECT_EQ(rig.conf->subscription_count_for(rig.cl(v)), 3);
    EXPECT_EQ(rig.feed_from(rig.cl(v), rig.cl(1)), nullptr);
  }
  // Relays of the leaver are gone; each remaining publisher still has
  // one peer region viewing it.
  EXPECT_EQ(rig.conf->relay_count(), 4);
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

// Satellite regression: a client that leaves (or times out) *during an
// SFU blackout* must still have its subscriptions, legs and relays torn
// down on every SFU — the stale-viewer leak this PR fixes left dangling
// flow handlers and kept forwarding to the departed client after the
// blackout lifted.
TEST(ConferenceTest, ChurnDuringSfuBlackoutLeavesNoStaleState) {
  ConfRig rig("webex", 2, 6);
  rig.conf->start();
  rig.run_to(12);

  // Region 0's SFU goes dark.
  rig.conf->sfu(0)->set_online(false);
  rig.run_to(14);
  // During the blackout: a region-0 client and a region-1 client (whose
  // streams are mid-relay into the blacked-out region) both leave.
  rig.conf->leave(rig.cl(0));
  rig.conf->leave(rig.cl(3));
  rig.run_to(18);
  rig.conf->sfu(0)->set_online(true);
  rig.run_to(35);

  EXPECT_EQ(rig.conf->active_count(), 4);
  EXPECT_EQ(rig.conf->forwards_to_departed(), 0);
  EXPECT_TRUE(rig.violations().empty());
  // Survivors resumed decoding after the restore.
  const auto* feed = rig.feed_from(rig.cl(2), rig.cl(4));
  ASSERT_NE(feed, nullptr);
  int64_t at_restore = feed->receiver->frames_decoded();
  rig.run_to(45);
  EXPECT_GT(feed->receiver->frames_decoded(), at_restore + 50);
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

// Inter-SFU loss/outage must degrade only cross-region feeds: local
// fanout inside each region keeps flowing.
TEST(ConferenceTest, RelayOutageIsRegionScoped) {
  ConfRig rig("webex", 2, 6);
  rig.conf->start();
  rig.run_to(20);

  // c0 (region 0) watches c2 (region 0, local) and c1 (region 1, via the
  // relay).
  const auto* local_feed = rig.feed_from(rig.cl(0), rig.cl(2));
  const auto* remote_feed = rig.feed_from(rig.cl(0), rig.cl(1));
  ASSERT_NE(local_feed, nullptr);
  ASSERT_NE(remote_feed, nullptr);

  FaultPlan plan;
  plan.add_outage(rig.regions[1]->relay_up, TimePoint::zero() + 20_s, 10_s);
  plan.add_outage(rig.regions[1]->relay_down, TimePoint::zero() + 20_s, 10_s);
  plan.schedule(&rig.net.sched());

  rig.run_to(22);  // let in-flight packets drain
  int64_t local_at_22 = local_feed->receiver->frames_decoded();
  int64_t remote_at_22 = remote_feed->receiver->frames_decoded();
  rig.run_to(29);
  // Local decode marches on through the relay outage...
  EXPECT_GT(local_feed->receiver->frames_decoded(), local_at_22 + 100);
  // ...while the cross-region feed is starved (nothing traverses the
  // dark relay; allow a handful of frames for queued stragglers).
  EXPECT_LT(remote_feed->receiver->frames_decoded(), remote_at_22 + 10);

  // Service heals region-wide once the relay returns.
  rig.run_to(32);
  int64_t remote_at_32 = remote_feed->receiver->frames_decoded();
  rig.run_to(45);
  EXPECT_GT(remote_feed->receiver->frames_decoded(), remote_at_32 + 100);
  EXPECT_TRUE(rig.violations().empty());
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

// The relay-at-most-once property, measured: region 0's publishers cross
// the region-0 relay uplink once each, so quadrupling the *viewers* in
// region 1 must not grow the relay bytes (only SFU-1's local fanout).
TEST(ConferenceTest, RelayBytesIndependentOfRemoteFanout) {
  auto relay_media_bytes = [](int remote_viewers, int* local_fanout) {
    // Clients 0..2 publish from region 0; the rest view from region 1.
    std::vector<int> region_of(static_cast<size_t>(3 + remote_viewers), 0);
    for (int i = 3; i < 3 + remote_viewers; ++i) {
      region_of[static_cast<size_t>(i)] = 1;
    }
    ConfRig rig("webex", 2, 3 + remote_viewers, region_of);
    // Region-0 publishers' relay flows toward region 1 (media direction
    // only; their RTCP returns on the other region's relay uplink).
    FlowCapture* cap = rig.net.capture(rig.regions[0]->relay_up);
    const FlowId streams =
        static_cast<FlowId>(rig.conf->profile().layers.size()) + 1;
    cap->add_flow_range(1000 + 10'000'000,
                        1000 + 10'000'000 + 3 * 2 * streams);
    rig.conf->start();
    rig.run_to(20);
    *local_fanout = rig.conf->sfu(1)->subscription_count();
    rig.conf->stop();
    EXPECT_EQ(rig.net.enforce_invariants(), 0);
    return cap->total_bytes();
  };

  int fanout_one = 0, fanout_four = 0;
  int64_t bytes_one = relay_media_bytes(1, &fanout_one);
  int64_t bytes_four = relay_media_bytes(4, &fanout_four);

  ASSERT_GT(bytes_one, 0);
  // 4x the remote viewers => 4x the remote SFU's local fanout...
  EXPECT_GE(fanout_four, 3 * fanout_one);
  // ...but the inter-SFU link still carries each ladder once. (Budget
  // splits differ slightly between the runs; 40% headroom is far below
  // the 4x a per-viewer relay would cost.)
  EXPECT_LT(static_cast<double>(bytes_four),
            static_cast<double>(bytes_one) * 1.4);
}

// No transit: media relayed between regions 1 and 2 must never ride
// region 0's relay links (loops/duplication are structurally excluded).
TEST(ConferenceTest, RelayTrafficNeverTransitsThirdRegion) {
  ConfRig rig("webex", 3, 6);
  // Region 0's relay links, filtered to *other* regions' relay flow
  // ranges: publishers 1,4 (region 1) and 2,5 (region 2).
  FlowCapture* up_cap = rig.net.capture(rig.regions[0]->relay_up);
  FlowCapture* down_cap = rig.net.capture(rig.regions[0]->relay_down);
  const FlowId streams =
      static_cast<FlowId>(rig.conf->profile().layers.size()) + 1;
  auto relay_base = [&](int pub_idx, int viewer_region) {
    return static_cast<FlowId>(1000 + 10'000'000 +
                               (pub_idx * 3 + viewer_region) * streams);
  };
  for (int pub : {1, 2, 4, 5}) {
    int home = pub % 3;
    for (int vr = 0; vr < 3; ++vr) {
      if (vr == home || vr == 0) continue;  // region-0-bound legs do belong
      up_cap->add_flow_range(relay_base(pub, vr),
                             relay_base(pub, vr) + streams - 1);
      down_cap->add_flow_range(relay_base(pub, vr),
                               relay_base(pub, vr) + streams - 1);
    }
  }
  rig.conf->start();
  rig.run_to(15);
  EXPECT_EQ(up_cap->total_bytes(), 0);
  EXPECT_EQ(down_cap->total_bytes(), 0);
  // Sanity: the fleet is actually relaying (every publisher to both peer
  // regions).
  EXPECT_EQ(rig.conf->relay_count(), 12);
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

// Late joiners page into existing viewers' galleries and publish both
// ways; leavers free tiles that backfill from the roster.
TEST(ConferenceTest, JoinLeaveChurnReconcilesSubscriptions) {
  ConfRig rig("teams", 2, 6);  // Teams: 2x2 grid, tiles scarcer than members
  rig.conf->start();
  rig.run_to(10);
  // Teams gallery page is 4: each viewer sees 4 of the 5 others.
  EXPECT_EQ(rig.conf->subscription_count_for(rig.cl(5)), 4);
  EXPECT_EQ(rig.feed_from(rig.cl(5), rig.cl(4)), nullptr);  // paged out

  rig.conf->leave(rig.cl(0));
  rig.run_to(11);
  // c4 backfills the freed tile.
  EXPECT_EQ(rig.conf->subscription_count_for(rig.cl(5)), 4);
  EXPECT_NE(rig.feed_from(rig.cl(5), rig.cl(4)), nullptr);
  EXPECT_EQ(rig.conf->forwards_to_departed(), 0);
  EXPECT_TRUE(rig.violations().empty());
  rig.conf->stop();
  EXPECT_EQ(rig.net.enforce_invariants(), 0);
}

// The tentpole acceptance case, shrunk to test duration: a 200-party,
// 4-region cascaded conference with join/leave churn runs to completion
// with zero invariant violations.
TEST(ConferenceTest, TwoHundredPartyFourRegionRunsClean) {
  ConferenceConfig cfg;
  cfg.profile = "webex";
  cfg.participants = 200;
  cfg.regions = 4;
  cfg.duration = 12_s;
  cfg.measure_from = 6_s;
  cfg.late_joiners = 4;
  cfg.early_leavers = 4;
  cfg.churn_start = 4_s;
  cfg.churn_step = Duration::millis(500);
  ConferenceResult res = run_conference(cfg);

  EXPECT_EQ(res.active_at_end, 196);
  EXPECT_EQ(res.forwards_to_departed, 0);
  EXPECT_TRUE(res.invariant_violations.empty())
      << res.invariant_violations.front();
  EXPECT_GT(res.mean_client_down_mbps, 0.1);
  EXPECT_EQ(res.regions.size(), 4u);
  for (const auto& r : res.regions) {
    EXPECT_GT(r.forwarded_packets, 0);
    EXPECT_GT(r.peak_subscriptions, 0);
    EXPECT_GT(r.relay_out_streams, 0);
  }
}

// Chang et al.'s qualitative scaling law: per-client receive bitrate is
// non-increasing in conference size (the downlink budget splits across
// more, smaller tiles until the visible page caps it).
// Chang et al.'s gallery scaling: growing the conference shrinks every
// tile, which lowers the per-feed receive bitrate (4 parties watch
// 640-wide tiles, 12 parties 320-wide ones). The *total* downlink may
// still grow with the number of visible tiles, so the monotone claim is
// per-feed, not per-client-total.
TEST(ConferenceTest, PerFeedBitrateNonIncreasingInSize) {
  auto per_feed_down = [](int participants) {
    ConferenceConfig cfg;
    cfg.profile = "webex";
    cfg.participants = participants;
    cfg.regions = 2;
    cfg.duration = 30_s;
    cfg.measure_from = 15_s;
    ConferenceResult res = run_conference(cfg);
    EXPECT_TRUE(res.invariant_violations.empty());
    int tiles = visible_tiles(VcaKind::kWebex, participants, ViewMode::kGallery);
    return res.mean_client_down_mbps / tiles;
  };
  double at4 = per_feed_down(4);
  double at12 = per_feed_down(12);
  ASSERT_GT(at4, 0.2);
  // The 320-wide tile should cost well under half the 640-wide one.
  EXPECT_LE(at12, at4 * 0.6);
}

}  // namespace
}  // namespace vca
