// The tentpole acceptance gate for the hot-path overhaul: with the
// allocation-counting operator new linked in (vca_perf_alloc), a warmed-up
// two-party call must run its hot loop with ZERO new heap allocations.
// Every steady-state container (scheduler heap, link queues and transit
// pool, pacer, RTX history, frame reassembly pool, REMB windows, stats
// rings) reaches its high-water mark during warm-up and is then reused.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/perf.h"
#include "harness/network.h"
#include "vca/call.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VCA_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VCA_UNDER_SANITIZER 1
#endif

namespace vca {
namespace {

using namespace vca::literals;

TEST(PerfAllocTest, CounterIsArmedByLinkedReplacementOperators) {
  ASSERT_TRUE(perf::alloc_tracking_active())
      << "core_perf_test must link vca_perf_alloc";
  uint64_t before = perf::alloc_calls();
  int* p = new int(7);
  EXPECT_GT(perf::alloc_calls(), before);
  delete p;
}

TEST(PerfAllocTest, TwoPartyCallHotLoopIsAllocationFree) {
  Network net;
  auto sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                          Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);

  Call::Config cfg;
  cfg.profile = vca_profile("meet");
  cfg.seed = 1;
  Call call(&net.sched(), sfu.host, cfg);
  call.add_client(c1.host);
  call.add_client(c2.host);

  call.start();
  // Warm-up: 30 sim seconds lets the congestion controllers finish their
  // ramp, so queues, windows, and pools hit their high-water marks.
  net.sched().run_until(TimePoint::zero() + 30_s);

  uint64_t allocs_before = perf::alloc_calls();
  net.sched().run_until(TimePoint::zero() + 90_s);  // the measured minute
  uint64_t delta = perf::alloc_calls() - allocs_before;

#if defined(VCA_UNDER_SANITIZER)
  // Sanitizer runtimes interpose their own allocation machinery; the
  // strict-zero gate is only meaningful in plain builds.
  EXPECT_LT(delta, 1000u) << "unexpected allocation storm under sanitizer";
#else
  EXPECT_EQ(delta, 0u)
      << "hot loop allocated " << delta
      << " times across 60 sim seconds; some steady-state container is "
         "still growing or a closure outgrew its inline storage";
#endif
  call.stop();
  net.sched().run_for(Duration::millis(10));
  EXPECT_EQ(net.enforce_invariants(), 0);
}

}  // namespace
}  // namespace vca
