// SimInvariantChecker coverage: each violation class is triggered
// synthetically (test peers corrupt Link / EventScheduler internals the
// way a real bug would) and the exact diagnostic line is asserted, so a
// reworded or dropped diagnostic fails here instead of surfacing as an
// unexplained fuzzer report.
//
// enforce() aborts in assert-enabled builds by design, so everything but
// the release-mode return-value test goes through check().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/invariants.h"
#include "net/link.h"

namespace vca {

struct LinkTestPeer {
  static void set_queued_bytes(Link* l, int64_t v) { l->queued_bytes_ = v; }
  static void set_offered_packets(Link* l, int64_t v) {
    l->offered_packets_ = v;
  }
  static void set_busy(Link* l, bool busy, TimePoint finish) {
    l->busy_ = busy;
    l->finish_at_ = finish;
  }
};

struct SchedulerTestPeer {
  static void jump_clock(EventScheduler* s, TimePoint t) { s->now_ = t; }
};

namespace {

TimePoint at_s(double s) { return TimePoint::zero() + Duration::seconds_d(s); }

struct Sink : PacketSink {
  int delivered = 0;
  void deliver(Packet) override { ++delivered; }
};

Packet make_packet(uint64_t id, int bytes) {
  Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

struct Fixture {
  EventScheduler sched;
  Sink sink;
  Link link;
  SimInvariantChecker checker;

  Fixture() : link(&sched, "l0", cfg()) {
    link.set_sink(&sink);
    checker.watch(&link);
    checker.watch(&sched);
  }

  static Link::Config cfg() {
    Link::Config c;
    c.rate = DataRate::mbps(10);
    c.propagation = Duration::millis(1);
    return c;
  }
};

TEST(NetInvariants, HealthyLinkReportsNothing) {
  Fixture f;
  f.link.deliver(make_packet(1, 1000));
  f.sched.run_until(at_s(1));
  EXPECT_EQ(f.sink.delivered, 1);
  EXPECT_TRUE(f.checker.check().empty());
}

TEST(NetInvariants, NegativeQueuedBytes) {
  Fixture f;
  LinkTestPeer::set_queued_bytes(&f.link, -37);
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 2u);  // negative + the implied counter/actual drift
  EXPECT_EQ(v[0], "link 'l0': negative queued_bytes (-37)");
  EXPECT_EQ(v[1],
            "link 'l0': queue byte accounting drift (counter -37, actual 0)");
}

TEST(NetInvariants, QueueByteAccountingDrift) {
  Fixture f;
  LinkTestPeer::set_queued_bytes(&f.link, 512);
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0],
            "link 'l0': queue byte accounting drift (counter 512, actual 0)");
}

TEST(NetInvariants, PacketConservationBroken) {
  Fixture f;
  // Three packets claimed offered, none delivered/dropped/queued/in-flight.
  LinkTestPeer::set_offered_packets(&f.link, 3);
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0],
            "link 'l0': packet conservation broken (offered 3, accounted 0)");
}

TEST(NetInvariants, EternallyBusyWedge) {
  Fixture f;
  // busy_ counts toward conservation, so claim one offered packet to
  // isolate the serialization-liveness line.
  LinkTestPeer::set_offered_packets(&f.link, 1);
  LinkTestPeer::set_busy(&f.link, true, TimePoint::infinite());
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0],
            "link 'l0': busy with an infinite finish time "
            "(eternally-busy wedge)");
}

TEST(NetInvariants, BusyPastScheduledFinish) {
  Fixture f;
  f.sched.schedule_at(at_s(2), [] {});
  f.sched.run_until(at_s(2));
  LinkTestPeer::set_offered_packets(&f.link, 1);
  LinkTestPeer::set_busy(&f.link, true, at_s(1));
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0],
            "link 'l0': busy past its scheduled finish time (missed event)");
}

TEST(NetInvariants, StalledSerialization) {
  Fixture f;
  // Two back-to-back packets: the first starts serializing, the second
  // queues behind it. Forcing busy_ off then models a lost finish event.
  f.link.deliver(make_packet(1, 1000));
  f.link.deliver(make_packet(2, 1000));
  LinkTestPeer::set_busy(&f.link, false, TimePoint::zero());
  LinkTestPeer::set_offered_packets(&f.link, 1);  // re-balance conservation
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0],
            "link 'l0': idle with 1 queued packets on an up link "
            "(stalled serialization)");
}

TEST(NetInvariants, SchedulerDispatchedIntoThePast) {
  Fixture f;
  f.sched.schedule_at(at_s(1), [] {});
  // A clock that jumped ahead of a pending event is exactly what the
  // monotonicity latch exists to catch.
  SchedulerTestPeer::jump_clock(&f.sched, at_s(2));
  f.sched.run_all();
  std::vector<std::string> v = f.checker.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "scheduler: dispatched an event before the current time");
}

TEST(NetInvariants, ViolationsAccumulatePerLink) {
  EventScheduler sched;
  Link a(&sched, "a", Fixture::cfg());
  Link b(&sched, "b", Fixture::cfg());
  SimInvariantChecker checker;
  checker.watch(&a);
  checker.watch(&b);
  LinkTestPeer::set_offered_packets(&a, 1);
  LinkTestPeer::set_offered_packets(&b, 2);
  std::vector<std::string> v = checker.check();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0],
            "link 'a': packet conservation broken (offered 1, accounted 0)");
  EXPECT_EQ(v[1],
            "link 'b': packet conservation broken (offered 2, accounted 0)");
}

#ifdef NDEBUG
// Release builds must *return* the violation count (BenchReport surfaces
// it and vcabench exits nonzero); assert-enabled builds abort instead, so
// this test only exists where the assert compiles out.
TEST(NetInvariants, EnforceReturnsViolationCountInRelease) {
  Fixture f;
  EXPECT_EQ(f.checker.enforce(), 0);
  LinkTestPeer::set_queued_bytes(&f.link, -1);
  testing::internal::CaptureStderr();
  int n = f.checker.enforce();
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(n, 2);
  EXPECT_NE(err.find("SIM INVARIANT VIOLATION: link 'l0': negative "
                     "queued_bytes (-1)"),
            std::string::npos);
}
#endif

}  // namespace
}  // namespace vca
