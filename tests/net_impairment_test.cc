#include <gtest/gtest.h>

#include <vector>

#include "core/scheduler.h"
#include "net/link.h"

namespace vca {
namespace {

using namespace vca::literals;

struct Collector : PacketSink {
  std::vector<TimePoint> arrivals;
  EventScheduler* sched;
  explicit Collector(EventScheduler* s) : sched(s) {}
  void deliver(Packet) override { arrivals.push_back(sched->now()); }
};

TEST(ImpairmentTest, RandomLossDropsExpectedFraction) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(100);
  cfg.random_loss = 0.10;
  cfg.queue_bytes = 10 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  for (int i = 0; i < 5000; ++i) {
    Packet p;
    p.id = static_cast<uint64_t>(i);
    p.size_bytes = 500;
    link.deliver(std::move(p));
  }
  sched.run_all();
  double loss = 1.0 - static_cast<double>(sink.arrivals.size()) / 5000.0;
  EXPECT_NEAR(loss, 0.10, 0.02);
  // Random drops are still accounted.
  EXPECT_EQ(sink.arrivals.size() + static_cast<size_t>(link.dropped_packets()),
            5000u);
}

TEST(ImpairmentTest, ZeroLossIsLossless) {
  EventScheduler sched;
  Link link(&sched, "l", {});
  Collector sink(&sched);
  link.set_sink(&sink);
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.size_bytes = 500;
    link.deliver(std::move(p));
  }
  sched.run_all();
  EXPECT_EQ(sink.arrivals.size(), 100u);
}

TEST(ImpairmentTest, JitterSpreadsArrivals) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::gbps(1);
  cfg.propagation = 10_ms;
  cfg.jitter_sd = 5_ms;
  cfg.queue_bytes = 10 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  for (int i = 0; i < 500; ++i) {
    sched.schedule(Duration::millis(i * 10), [&link] {
      Packet p;
      p.size_bytes = 100;
      link.deliver(std::move(p));
    });
  }
  sched.run_all();
  ASSERT_EQ(sink.arrivals.size(), 500u);
  // Delays = arrival - send time (send at i*10ms): must vary, never < prop.
  double min_ms = 1e18, max_ms = 0;
  for (size_t i = 0; i < sink.arrivals.size(); ++i) {
    // Arrivals may reorder under jitter; recover the delay range instead.
    min_ms = std::min(min_ms, sink.arrivals[i].millis());
    max_ms = std::max(max_ms, sink.arrivals[i].millis());
  }
  EXPECT_GT(max_ms - min_ms, 4900.0);  // sends span 4990 ms + jitter spread
}

TEST(ImpairmentTest, JitterIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    EventScheduler sched;
    Link::Config cfg;
    cfg.jitter_sd = 5_ms;
    cfg.impairment_seed = seed;
    Link link(&sched, "l", cfg);
    Collector sink(&sched);
    link.set_sink(&sink);
    for (int i = 0; i < 50; ++i) {
      Packet p;
      p.size_bytes = 100;
      link.deliver(std::move(p));
    }
    sched.run_all();
    int64_t sum = 0;
    for (auto t : sink.arrivals) sum += t.ns();
    return sum;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace vca
