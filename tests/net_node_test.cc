#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "net/node.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(NodeTest, HostDispatchesByFlowId) {
  Host h(1, "c1");
  int flow7 = 0, flow9 = 0;
  h.register_flow(7, [&](Packet) { ++flow7; });
  h.register_flow(9, [&](Packet) { ++flow9; });
  Packet p;
  p.flow = 7;
  h.deliver(p);
  p.flow = 9;
  h.deliver(p);
  p.flow = 9;
  h.deliver(p);
  p.flow = 1234;  // unknown flow silently dropped
  h.deliver(p);
  EXPECT_EQ(flow7, 1);
  EXPECT_EQ(flow9, 2);
}

TEST(NodeTest, HostStampsSourceOnSend) {
  EventScheduler sched;
  Link link(&sched, "up", {});
  Host h(42, "c1");
  h.set_uplink(&link);
  NodeId seen = kInvalidNode;
  link.set_tap([&](const Packet& p, TimePoint) { seen = p.src; });
  link.set_sink(nullptr);
  Packet p;
  p.dst = 7;
  h.send(p);
  sched.run_all();
  EXPECT_EQ(seen, 42u);
}

TEST(NodeTest, ForwardingNodeRoutesByDestination) {
  Host a(1, "a"), b(2, "b");
  int got_a = 0, got_b = 0;
  a.register_flow(0, [&](Packet) { ++got_a; });
  b.register_flow(0, [&](Packet) { ++got_b; });
  ForwardingNode router("r");
  router.add_route(1, &a);
  router.add_route(2, &b);
  Packet p;
  p.dst = 2;
  router.deliver(p);
  p.dst = 1;
  router.deliver(p);
  p.dst = 1;
  router.deliver(p);
  EXPECT_EQ(got_a, 2);
  EXPECT_EQ(got_b, 1);
}

TEST(NodeTest, DefaultRouteUsedForUnknownDestination) {
  Host fallback(9, "cloud");
  int got = 0;
  fallback.register_flow(0, [&](Packet) { ++got; });
  ForwardingNode router("r");
  router.set_default_route(&fallback);
  Packet p;
  p.dst = 12345;
  router.deliver(p);
  EXPECT_EQ(got, 1);
}

TEST(NodeTest, EndToEndThroughTwoLinksAndRouter) {
  EventScheduler sched;
  Host c1(1, "c1"), c2(2, "c2");
  ForwardingNode router("r");
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.propagation = 2_ms;
  Link up(&sched, "c1-up", cfg);
  Link down(&sched, "c2-down", cfg);
  c1.set_uplink(&up);
  up.set_sink(&router);
  router.add_route(2, &down);
  down.set_sink(&c2);

  TimePoint arrival;
  c2.register_flow(5, [&](Packet) { arrival = sched.now(); });

  Packet p;
  p.flow = 5;
  p.dst = 2;
  p.size_bytes = 1250;  // 1 ms at 10 Mbps
  c1.send(p);
  sched.run_all();
  // 1 ms tx + 2 ms prop + 1 ms tx + 2 ms prop = 6 ms.
  EXPECT_EQ(arrival.ns(), Duration::millis(6).ns());
}

}  // namespace
}  // namespace vca
