// Tests for probe padding and its interaction with the receiver.
#include <gtest/gtest.h>

#include "cc/remb.h"
#include "sim_fixture.h"
#include "transport/rtp.h"

namespace vca {
namespace {

using namespace vca::literals;
using vca::testing::TwoHostNet;

struct PaddedPair {
  TwoHostNet& net;
  RtpSender sender;
  RtpReceiver receiver;
  int frames = 0;

  explicit PaddedPair(TwoHostNet& n)
      : net(n),
        sender(&n.sched, &n.c1,
               {.ssrc = 1, .flow = 10, .dst = n.c2.id(),
                .pacing_rate = DataRate::mbps(50)}),
        receiver(&n.sched, &n.c2,
                 {.ssrc = 1, .feedback_flow = 10, .feedback_dst = n.c1.id()}) {
    n.c2.register_flow(10, [this](Packet p) {
      if (p.is_media()) receiver.handle_packet(p);
    });
    n.c1.register_flow(10, [this](Packet p) {
      if (p.type == PacketType::kRtcp) sender.handle_rtcp(p.rtcp());
    });
    receiver.set_frame_handler([this](const DecodedFrame&) { ++frames; });
  }

  void send_frame(uint64_t id, bool key = false) {
    EncodedFrame f;
    f.ssrc = 1;
    f.frame_id = id;
    f.bytes = 2000;
    f.keyframe = key;
    f.capture_time = net.sched.now();
    sender.send_frame(f);
  }
};

TEST(PaddingTest, PaddingNeverDecodesAsFrames) {
  TwoHostNet net;
  PaddedPair p(net);
  p.send_frame(0, true);
  for (int i = 0; i < 20; ++i) p.sender.send_padding(2400);
  net.sched.run_for(2_s);
  EXPECT_EQ(p.frames, 1);  // only the real frame
}

TEST(PaddingTest, PaddingCountsTowardReceiveRate) {
  TwoHostNet net;
  PaddedPair p(net);
  DataRate rate_with_padding;
  p.sender.set_feedback_handler([&](const RtcpMeta& fb) {
    if (fb.receive_rate > rate_with_padding) rate_with_padding = fb.receive_rate;
  });
  // ~0.5 Mbps media + ~1 Mbps padding.
  for (int i = 0; i < 30; ++i) {
    net.sched.schedule(Duration::millis(100 * i), [&, i] {
      p.send_frame(static_cast<uint64_t>(i), i == 0);
      p.sender.send_padding(12'500);
    });
  }
  net.sched.run_for(4_s);
  EXPECT_GT(rate_with_padding.mbps_f(), 1.0);
}

TEST(PaddingTest, PaddingGrowsReceiverEstimate) {
  TwoHostNet net;
  PaddedPair p(net);
  auto cfg = ReceiveSideEstimator::preset(ReceiveSideEstimator::Preset::kGcc,
                                          DataRate::kbps(300),
                                          DataRate::mbps(5));
  ReceiveSideEstimator est(cfg);
  p.receiver.set_arrival_observer(&est);
  // Media alone: ~0.16 Mbps. The estimate saturates near 1.5x that.
  for (int i = 0; i < 100; ++i) {
    net.sched.schedule(Duration::millis(100 * i),
                       [&, i] { p.send_frame(static_cast<uint64_t>(i), i == 0); });
  }
  net.sched.run_for(11_s);
  double without = est.current_estimate().mbps_f();
  // Now add heavy padding: the estimate must climb well past that.
  for (int i = 100; i < 200; ++i) {
    net.sched.schedule(Duration::millis(100 * (i - 100)), [&, i] {
      p.send_frame(static_cast<uint64_t>(i));
      p.sender.send_padding(25'000);  // ~2 Mbps of probing
    });
  }
  net.sched.run_for(11_s);
  EXPECT_GT(est.current_estimate().mbps_f(), without * 1.5);
}

TEST(PaddingTest, FecBytesAccountedSeparately) {
  TwoHostNet net;
  PaddedPair p(net);
  p.send_frame(0, true);
  p.sender.send_padding(5000);
  net.sched.run_for(1_s);
  EXPECT_GT(p.sender.sent_fec_bytes(), 4900);
  EXPECT_GT(p.sender.sent_media_bytes(), 1900);
  EXPECT_LT(p.sender.sent_media_bytes(), 3000);
}

}  // namespace
}  // namespace vca
