// ScenarioFuzzer unit + property tests: the seed -> scenario expansion is
// deterministic and round-trips through its spec string, the oracle layer
// catches a deliberately injected wedge, the shrinker minimizes it while
// preserving the failure category, and randomized flap timing around the
// media-timeout watchdog's detect/backoff boundaries never produces a
// wedge, a reconnect storm, or a stuck audio-only ending.
#include <gtest/gtest.h>

#include <string>

#include "core/rng.h"
#include "harness/fuzz.h"

namespace vca {
namespace {

FuzzRunOptions quiet_opts() {
  FuzzRunOptions opt;
  opt.count_invariants_globally = false;  // keep BenchReport counters clean
  return opt;
}

TEST(HarnessFuzz, SpecRoundTripsExactly) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FuzzScenario sc = fuzz_scenario_from_seed(seed);
    std::string spec = sc.to_spec();
    auto back = FuzzScenario::from_spec(spec);
    ASSERT_TRUE(back.has_value()) << spec;
    EXPECT_EQ(back->to_spec(), spec) << "seed " << seed;
  }
}

TEST(HarnessFuzz, SameSeedSameScenario) {
  for (uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    EXPECT_EQ(fuzz_scenario_from_seed(seed).to_spec(),
              fuzz_scenario_from_seed(seed).to_spec());
  }
  EXPECT_NE(fuzz_scenario_from_seed(1).to_spec(),
            fuzz_scenario_from_seed(2).to_spec());
}

TEST(HarnessFuzz, GeneratorRespectsBounds) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzScenario sc = fuzz_scenario_from_seed(seed);
    EXPECT_GE(sc.clients.size(), 2u);
    EXPECT_LE(sc.clients.size(), 5u);
    EXPECT_GE(sc.duration_ms, 45000);
    for (const FuzzFault& f : sc.faults) {
      EXPECT_GE(f.target_client, -1);
      EXPECT_LT(f.target_client, static_cast<int>(sc.clients.size()));
      EXPECT_GE(f.start_ms, 0);
    }
  }
}

TEST(HarnessFuzz, MalformedSpecsRejected) {
  EXPECT_FALSE(FuzzScenario::from_spec("").has_value());
  EXPECT_FALSE(FuzzScenario::from_spec("v2;seed=1").has_value());
  EXPECT_FALSE(FuzzScenario::from_spec("v1;seed=1;profile=meet;mode=g;"
                                       "dur=60000;wedge=0")
                   .has_value());  // fewer than two clients
  // Fault targeting a client index that does not exist.
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=meet;mode=g;dur=60000;wedge=0;"
                   "cl=5000,5000,5,100,0,0;cl=5000,5000,5,100,0,0;"
                   "fl=out,7,u,1000,1000,0,0,0")
                   .has_value());
}

TEST(HarnessFuzz, CleanTwoPartyScenarioPassesOracles) {
  FuzzScenario sc;
  sc.seed = 424242;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
  EXPECT_TRUE(r.ok()) << r.failures.front().category << ": "
                      << r.failures.front().detail;
  EXPECT_GT(r.sim_events, 0u);
}

TEST(HarnessFuzz, OracleCatchesInjectedWedge) {
  FuzzScenario sc;
  sc.seed = 77;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  sc.inject_wedge = true;
  FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
  ASSERT_FALSE(r.ok());
  bool wedge = false;
  for (const FuzzFailure& f : r.failures) {
    if (f.category == "liveness-wedge") wedge = true;
  }
  EXPECT_TRUE(wedge) << "expected a liveness-wedge failure";
}

TEST(HarnessFuzz, ShrinkerMinimizesInjectedWedge) {
  // Start from a deliberately noisy scenario: extra participants, churn,
  // a competitor, and irrelevant faults. Everything but the wedge itself
  // must shrink away.
  FuzzScenario sc = fuzz_scenario_from_seed(5);
  sc.inject_wedge = true;
  auto shrunk = shrink_failure(sc, quiet_opts());
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->category, "liveness-wedge");
  EXPECT_EQ(shrunk->minimal.faults.size(), 0u);
  EXPECT_EQ(shrunk->minimal.clients.size(), 2u);
  EXPECT_EQ(shrunk->minimal.competitor, FuzzCompetitor::kNone);
  EXPECT_LE(shrunk->minimal.duration_ms, sc.duration_ms);
  // The minimal spec must replay to the same failure category.
  auto replay = FuzzScenario::from_spec(shrunk->minimal.to_spec());
  ASSERT_TRUE(replay.has_value());
  FuzzResult r = run_fuzz_scenario(*replay, quiet_opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().category, "liveness-wedge");
}

TEST(HarnessFuzz, ShrinkerReturnsNulloptForPassingScenario) {
  FuzzScenario sc;
  sc.seed = 9;
  sc.profile = "zoom";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  EXPECT_FALSE(shrink_failure(sc, quiet_opts()).has_value());
}

TEST(HarnessFuzz, EventStormBudgetTripsOracle) {
  FuzzScenario sc;
  sc.seed = 31337;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  FuzzRunOptions opt = quiet_opts();
  opt.event_budget_per_virtual_sec = 50;  // absurdly tight: must trip
  FuzzResult r = run_fuzz_scenario(sc, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().category, "event-storm");
}

// Satellite property test: flap timing randomized across the watchdog's
// detect (media_timeout = 2.5 s) and keepalive-backoff (0.25 s .. 4 s)
// boundaries. Whatever the phase relationship, the run must end with the
// client either reconnected or explicitly degraded — never silently
// wedged, never storming reconnects, never parked audio-only (the oracles
// encode exactly these properties, so "no failures" is the assertion).
TEST(HarnessFuzz, WatchdogFlapTimingProperty) {
  Rng rng(0xF1A9C0DE);
  for (int i = 0; i < 14; ++i) {
    FuzzScenario sc;
    sc.seed = 100000 + static_cast<uint64_t>(i);
    sc.profile = (i % 2) != 0 ? "meet" : "teams";
    sc.duration_ms = 60000;
    sc.clients = {{6000, 6000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
    FuzzFault fl;
    fl.kind = FuzzFaultKind::kFlap;
    fl.target_client = 0;
    fl.uplink = rng.bernoulli(0.5);
    fl.start_ms = rng.uniform_int(6000, 12000);
    // Down windows straddle the 2.5 s detect boundary; up windows straddle
    // the keepalive backoff range, including gaps too short to probe.
    fl.a = rng.uniform_int(2, 4);                // cycles
    fl.b = rng.uniform_int(1800, 3500);          // down_ms
    fl.c = rng.uniform_int(200, 4500);           // up_ms
    sc.faults = {fl};
    FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
    EXPECT_TRUE(r.ok()) << "iteration " << i << " spec " << sc.to_spec()
                        << " failed [" << r.failures.front().category << "] "
                        << r.failures.front().detail;
  }
}

}  // namespace
}  // namespace vca
