// ScenarioFuzzer unit + property tests: the seed -> scenario expansion is
// deterministic and round-trips through its spec string, the oracle layer
// catches a deliberately injected wedge, the shrinker minimizes it while
// preserving the failure category, and randomized flap timing around the
// media-timeout watchdog's detect/backoff boundaries never produces a
// wedge, a reconnect storm, or a stuck audio-only ending.
#include <gtest/gtest.h>

#include <string>

#include "core/rng.h"
#include "harness/fuzz.h"

namespace vca {
namespace {

FuzzRunOptions quiet_opts() {
  FuzzRunOptions opt;
  opt.count_invariants_globally = false;  // keep BenchReport counters clean
  return opt;
}

TEST(HarnessFuzz, SpecRoundTripsExactly) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FuzzScenario sc = fuzz_scenario_from_seed(seed);
    std::string spec = sc.to_spec();
    auto back = FuzzScenario::from_spec(spec);
    ASSERT_TRUE(back.has_value()) << spec;
    EXPECT_EQ(back->to_spec(), spec) << "seed " << seed;
  }
}

TEST(HarnessFuzz, SameSeedSameScenario) {
  for (uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    EXPECT_EQ(fuzz_scenario_from_seed(seed).to_spec(),
              fuzz_scenario_from_seed(seed).to_spec());
  }
  EXPECT_NE(fuzz_scenario_from_seed(1).to_spec(),
            fuzz_scenario_from_seed(2).to_spec());
}

TEST(HarnessFuzz, GeneratorRespectsBounds) {
  bool saw_conference = false, saw_two_party = false;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzScenario sc = fuzz_scenario_from_seed(seed);
    EXPECT_GE(sc.clients.size(), 2u);
    if (sc.regions > 1) {
      // Cascaded-fleet scenarios: city-scale roster, shorter calls.
      saw_conference = true;
      EXPECT_LE(sc.regions, 4);
      EXPECT_GE(sc.clients.size(), 10u);
      EXPECT_LE(sc.clients.size(), 50u);
      EXPECT_GE(sc.duration_ms, 18000);
      for (const FuzzClient& c : sc.clients) {
        EXPECT_GE(c.region, 0);
        EXPECT_LT(c.region, sc.regions);
      }
    } else {
      saw_two_party = true;
      EXPECT_LE(sc.clients.size(), 5u);
      EXPECT_GE(sc.duration_ms, 45000);
      for (const FuzzFault& f : sc.faults) {
        EXPECT_NE(f.kind, FuzzFaultKind::kRelayOutage);
      }
    }
    for (const FuzzFault& f : sc.faults) {
      EXPECT_GE(f.target_client, -1);
      EXPECT_LT(f.target_client, static_cast<int>(sc.clients.size()));
      EXPECT_GE(f.start_ms, 0);
      if (sc.regions > 1 && f.target_client == -1) {
        EXPECT_TRUE(f.kind == FuzzFaultKind::kSfuBlackout ||
                    f.kind == FuzzFaultKind::kRelayOutage);
        EXPECT_GE(f.a, 0);
        EXPECT_LT(f.a, sc.regions);
      }
    }
  }
  EXPECT_TRUE(saw_conference);  // ~20% of seeds; 60 draws make this sure
  EXPECT_TRUE(saw_two_party);
}

TEST(HarnessFuzz, ConferenceSpecRoundTripsExactly) {
  // Hand-built cascaded spec: 3 regions, per-client region fields, a
  // region-targeted blackout and a relay outage.
  const std::string spec =
      "v1;seed=42;profile=webex;mode=g;dur=30000;wedge=0;reg=3;"
      "cl=4000,12000,5,100,0,0,0;cl=8000,20000,5,100,0,0,1;"
      "cl=8000,20000,5,100,4000,15000,2;cl=8000,20000,5,100,0,0,1;"
      "fl=sfu,-1,u,6000,2000,1,0,0;fl=relay,-1,u,9000,2500,2,0,0";
  auto sc = FuzzScenario::from_spec(spec);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->regions, 3);
  EXPECT_EQ(sc->clients[2].region, 2);
  EXPECT_EQ(sc->faults[1].kind, FuzzFaultKind::kRelayOutage);
  EXPECT_EQ(sc->to_spec(), spec);
}

TEST(HarnessFuzz, PreFleetSpecsStayByteIdentical) {
  // A 6-field single-SFU spec (the committed corpus format) must parse
  // and re-serialize without sprouting region fields.
  const std::string spec =
      "v1;seed=7;profile=meet;mode=g;dur=45000;wedge=0;"
      "cl=5000,5000,5,100,0,0;cl=20000,20000,5,100,0,0;"
      "fl=sfu,-1,u,9000,2000,0,0,0";
  auto sc = FuzzScenario::from_spec(spec);
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->regions, 1);
  EXPECT_EQ(sc->to_spec(), spec);
}

TEST(HarnessFuzz, MalformedSpecsRejected) {
  EXPECT_FALSE(FuzzScenario::from_spec("").has_value());
  EXPECT_FALSE(FuzzScenario::from_spec("v2;seed=1").has_value());
  EXPECT_FALSE(FuzzScenario::from_spec("v1;seed=1;profile=meet;mode=g;"
                                       "dur=60000;wedge=0")
                   .has_value());  // fewer than two clients
  // Fault targeting a client index that does not exist.
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=meet;mode=g;dur=60000;wedge=0;"
                   "cl=5000,5000,5,100,0,0;cl=5000,5000,5,100,0,0;"
                   "fl=out,7,u,1000,1000,0,0,0")
                   .has_value());
  // Client placed in a region the fleet does not have.
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=webex;mode=g;dur=30000;wedge=0;reg=2;"
                   "cl=5000,5000,5,100,0,0,0;cl=5000,5000,5,100,0,0,5")
                   .has_value());
  // Relay outage needs a cascaded fleet (regions > 1).
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=meet;mode=g;dur=60000;wedge=0;"
                   "cl=5000,5000,5,100,0,0;cl=5000,5000,5,100,0,0;"
                   "fl=relay,-1,u,9000,2000,0,0,0")
                   .has_value());
  // Blackout aimed at a region index outside the fleet.
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=webex;mode=g;dur=30000;wedge=0;reg=2;"
                   "cl=5000,5000,5,100,0,0,0;cl=5000,5000,5,100,0,0,1;"
                   "fl=sfu,-1,u,6000,2000,3,0,0")
                   .has_value());
  // Ambiguous: a generic outage cannot target "the SFU" on a fleet.
  EXPECT_FALSE(FuzzScenario::from_spec(
                   "v1;seed=1;profile=webex;mode=g;dur=30000;wedge=0;reg=2;"
                   "cl=5000,5000,5,100,0,0,0;cl=5000,5000,5,100,0,0,1;"
                   "fl=out,-1,u,6000,2000,0,0,0")
                   .has_value());
}

TEST(HarnessFuzz, CleanTwoPartyScenarioPassesOracles) {
  FuzzScenario sc;
  sc.seed = 424242;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
  EXPECT_TRUE(r.ok()) << r.failures.front().category << ": "
                      << r.failures.front().detail;
  EXPECT_GT(r.sim_events, 0u);
}

TEST(HarnessFuzz, CleanConferenceScenarioPassesOracles) {
  FuzzScenario sc;
  sc.seed = 171717;
  sc.profile = "webex";
  sc.regions = 3;
  sc.duration_ms = 20000;
  for (int i = 0; i < 9; ++i) {
    FuzzClient c;
    c.up_kbps = i == 0 ? 4000 : 10000;
    c.down_kbps = i == 0 ? 12000 : 20000;
    c.prop_ms = 5;
    c.queue_kb = 100;
    c.region = i % 3;
    sc.clients.push_back(c);
  }
  FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
  EXPECT_TRUE(r.ok()) << r.failures.front().category << ": "
                      << r.failures.front().detail;
  EXPECT_GT(r.sim_events, 0u);
}

TEST(HarnessFuzz, ShrinkerCollapsesCascadedFleet) {
  // A wedge on client 0's uplink inside a 2-region 10-party conference
  // is not region- or roster-specific, so the shrinker must collapse the
  // fleet to a single region and the roster to the two anchors.
  FuzzScenario sc;
  sc.seed = 5151;
  sc.profile = "meet";
  sc.regions = 2;
  sc.duration_ms = 40000;
  for (int i = 0; i < 10; ++i) {
    FuzzClient c;
    c.up_kbps = i == 0 ? 4000 : 10000;
    c.down_kbps = i == 0 ? 12000 : 20000;
    c.prop_ms = 5;
    c.queue_kb = 100;
    c.region = i % 2;
    sc.clients.push_back(c);
  }
  FuzzFault relay;
  relay.kind = FuzzFaultKind::kRelayOutage;
  relay.target_client = -1;
  relay.start_ms = 6000;
  relay.length_ms = 1500;
  relay.a = 1;
  sc.faults = {relay};
  sc.inject_wedge = true;
  auto shrunk = shrink_failure(sc, quiet_opts());
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->category, "liveness-wedge");
  EXPECT_EQ(shrunk->minimal.regions, 1);
  EXPECT_EQ(shrunk->minimal.clients.size(), 2u);
  EXPECT_EQ(shrunk->minimal.faults.size(), 0u);
}

TEST(HarnessFuzz, OracleCatchesInjectedWedge) {
  FuzzScenario sc;
  sc.seed = 77;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  sc.inject_wedge = true;
  FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
  ASSERT_FALSE(r.ok());
  bool wedge = false;
  for (const FuzzFailure& f : r.failures) {
    if (f.category == "liveness-wedge") wedge = true;
  }
  EXPECT_TRUE(wedge) << "expected a liveness-wedge failure";
}

TEST(HarnessFuzz, ShrinkerMinimizesInjectedWedge) {
  // Start from a deliberately noisy scenario: extra participants, churn,
  // a competitor, and irrelevant faults. Everything but the wedge itself
  // must shrink away.
  FuzzScenario sc = fuzz_scenario_from_seed(5);
  sc.inject_wedge = true;
  auto shrunk = shrink_failure(sc, quiet_opts());
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->category, "liveness-wedge");
  EXPECT_EQ(shrunk->minimal.faults.size(), 0u);
  EXPECT_EQ(shrunk->minimal.clients.size(), 2u);
  EXPECT_EQ(shrunk->minimal.competitor, FuzzCompetitor::kNone);
  EXPECT_LE(shrunk->minimal.duration_ms, sc.duration_ms);
  // The minimal spec must replay to the same failure category.
  auto replay = FuzzScenario::from_spec(shrunk->minimal.to_spec());
  ASSERT_TRUE(replay.has_value());
  FuzzResult r = run_fuzz_scenario(*replay, quiet_opts());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().category, "liveness-wedge");
}

TEST(HarnessFuzz, ShrinkerReturnsNulloptForPassingScenario) {
  FuzzScenario sc;
  sc.seed = 9;
  sc.profile = "zoom";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  EXPECT_FALSE(shrink_failure(sc, quiet_opts()).has_value());
}

TEST(HarnessFuzz, EventStormBudgetTripsOracle) {
  FuzzScenario sc;
  sc.seed = 31337;
  sc.profile = "meet";
  sc.duration_ms = 45000;
  sc.clients = {{8000, 8000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
  FuzzRunOptions opt = quiet_opts();
  opt.event_budget_per_virtual_sec = 50;  // absurdly tight: must trip
  FuzzResult r = run_fuzz_scenario(sc, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.front().category, "event-storm");
}

// Satellite property test: flap timing randomized across the watchdog's
// detect (media_timeout = 2.5 s) and keepalive-backoff (0.25 s .. 4 s)
// boundaries. Whatever the phase relationship, the run must end with the
// client either reconnected or explicitly degraded — never silently
// wedged, never storming reconnects, never parked audio-only (the oracles
// encode exactly these properties, so "no failures" is the assertion).
TEST(HarnessFuzz, WatchdogFlapTimingProperty) {
  Rng rng(0xF1A9C0DE);
  for (int i = 0; i < 14; ++i) {
    FuzzScenario sc;
    sc.seed = 100000 + static_cast<uint64_t>(i);
    sc.profile = (i % 2) != 0 ? "meet" : "teams";
    sc.duration_ms = 60000;
    sc.clients = {{6000, 6000, 5, 100, 0, 0}, {20000, 20000, 5, 100, 0, 0}};
    FuzzFault fl;
    fl.kind = FuzzFaultKind::kFlap;
    fl.target_client = 0;
    fl.uplink = rng.bernoulli(0.5);
    fl.start_ms = rng.uniform_int(6000, 12000);
    // Down windows straddle the 2.5 s detect boundary; up windows straddle
    // the keepalive backoff range, including gaps too short to probe.
    fl.a = rng.uniform_int(2, 4);                // cycles
    fl.b = rng.uniform_int(1800, 3500);          // down_ms
    fl.c = rng.uniform_int(200, 4500);           // up_ms
    sc.faults = {fl};
    FuzzResult r = run_fuzz_scenario(sc, quiet_opts());
    EXPECT_TRUE(r.ok()) << "iteration " << i << " spec " << sc.to_spec()
                        << " failed [" << r.failures.front().category << "] "
                        << r.failures.front().detail;
  }
}

}  // namespace
}  // namespace vca
