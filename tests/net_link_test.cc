#include <gtest/gtest.h>

#include <vector>

#include "core/scheduler.h"
#include "net/link.h"

namespace vca {
namespace {

using namespace vca::literals;

struct Collector : PacketSink {
  std::vector<std::pair<uint64_t, TimePoint>> got;
  EventScheduler* sched;
  explicit Collector(EventScheduler* s) : sched(s) {}
  void deliver(Packet p) override { got.emplace_back(p.id, sched->now()); }
};

Packet make_packet(uint64_t id, int bytes) {
  Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

TEST(LinkTest, SerializationPlusPropagationDelay) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);       // 1250 bytes = 10 ms
  cfg.propagation = 5_ms;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.deliver(make_packet(1, 1250));
  sched.run_all();
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].second.ns(), Duration::millis(15).ns());
}

TEST(LinkTest, BackToBackPacketsQueue) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);
  cfg.propagation = Duration::zero();
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.deliver(make_packet(1, 1250));
  link.deliver(make_packet(2, 1250));
  sched.run_all();
  ASSERT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(sink.got[0].second.ms(), 10);
  EXPECT_EQ(sink.got[1].second.ms(), 20);
}

TEST(LinkTest, DropTailWhenQueueFull) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::kbps(100);
  cfg.queue_bytes = 3000;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  for (int i = 0; i < 10; ++i) link.deliver(make_packet(i, 1000));
  sched.run_all();
  EXPECT_GT(link.dropped_packets(), 0);
  EXPECT_EQ(link.delivered_packets() + link.dropped_packets(), 10);
}

TEST(LinkTest, RateChangeAppliesToNextPacket) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);
  cfg.propagation = Duration::zero();
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.deliver(make_packet(1, 1250));
  // Halve the rate while packet 1 is being serialized.
  sched.schedule(1_ms, [&] {
    link.set_rate(DataRate::kbps(500));
    link.deliver(make_packet(2, 1250));
  });
  sched.run_all();
  ASSERT_EQ(sink.got.size(), 2u);
  EXPECT_EQ(sink.got[0].second.ms(), 10);  // finished at old rate
  EXPECT_EQ(sink.got[1].second.ms(), 30);  // 10 + 20 ms at new rate
}

TEST(LinkTest, TapSeesEveryDeliveredPacket) {
  EventScheduler sched;
  Link link(&sched, "l", {});
  Collector sink(&sched);
  link.set_sink(&sink);
  int tapped = 0;
  int64_t tapped_bytes = 0;
  link.set_tap([&](const Packet& p, TimePoint) {
    ++tapped;
    tapped_bytes += p.size_bytes;
  });
  for (int i = 0; i < 5; ++i) link.deliver(make_packet(i, 500));
  sched.run_all();
  EXPECT_EQ(tapped, 5);
  EXPECT_EQ(tapped_bytes, 2500);
  EXPECT_EQ(link.delivered_bytes(), 2500);
}

// Zero rate models an outage: packets queue (up to the drop-tail limit)
// instead of vanishing, and nothing is delivered while the link is down.
TEST(LinkTest, ZeroRateQueuesInsteadOfDropping) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::zero();
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.deliver(make_packet(1, 100));
  sched.run_all();
  EXPECT_TRUE(link.is_down());
  EXPECT_EQ(sink.got.size(), 0u);
  EXPECT_EQ(link.dropped_packets(), 0);
  EXPECT_EQ(link.queue_packets(), 1);

  // Restoring the rate restarts the serialization loop: the queued packet
  // drains without any new deliver() call (the classic wedge regression).
  link.set_rate(DataRate::mbps(1));
  sched.run_all();
  EXPECT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(link.queue_packets(), 0);
}

TEST(LinkTest, QueueDelayReflectsBacklog) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  for (int i = 0; i < 5; ++i) link.deliver(make_packet(i, 1250));
  // One packet is in flight; four are queued: 4 * 10 ms.
  EXPECT_EQ(link.current_queue_delay().ms(), 40);
  sched.run_all();
}

TEST(LinkTest, OversizePacketAdmittedWhenQueueEmpty) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.queue_bytes = 100;  // smaller than the packet
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.deliver(make_packet(1, 1500));
  sched.run_all();
  EXPECT_EQ(sink.got.size(), 1u);
}

}  // namespace
}  // namespace vca
