#include <gtest/gtest.h>

#include "cc/remb.h"

namespace vca {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::from_ns(ms * 1'000'000); }

// Feed a synthetic arrival pattern: packets of `bytes` at `rate`, with
// one-way delay `owd_ms`.
void feed(ReceiveSideEstimator& est, int64_t from_ms, int64_t to_ms,
          double rate_mbps, double owd_ms) {
  int bytes = 1200;
  double interval_ms = bytes * 8 / (rate_mbps * 1000.0);
  for (double t = static_cast<double>(from_ms); t < static_cast<double>(to_ms);
       t += interval_ms) {
    TimePoint arrival = at_ms(static_cast<int64_t>(t));
    TimePoint sent = arrival - Duration::millis_d(owd_ms);
    est.on_packet(arrival, sent, bytes);
  }
}

ReceiveSideEstimator::Config gcc_cfg() {
  return ReceiveSideEstimator::preset(ReceiveSideEstimator::Preset::kGcc,
                                      DataRate::kbps(300), DataRate::mbps(10));
}

TEST(RembTest, GrowsOnCleanLink) {
  ReceiveSideEstimator est(gcc_cfg());
  DataRate last;
  for (int64_t t = 0; t <= 10'000; t += 100) {
    feed(est, t, t + 100, 2.0, 10.0);
    last = est.remb(at_ms(t + 100));
  }
  EXPECT_GT(last.kbps_f(), 500.0);  // grew well beyond the 300 kbps start
}

TEST(RembTest, ClampedByReceiveRate) {
  ReceiveSideEstimator est(gcc_cfg());
  DataRate last;
  for (int64_t t = 0; t <= 30'000; t += 100) {
    feed(est, t, t + 100, 1.0, 10.0);  // only 1 Mbps ever arrives
    last = est.remb(at_ms(t + 100));
  }
  EXPECT_LE(last.mbps_f(), 1.6);  // <= clamp_factor * receive rate
}

TEST(RembTest, BacksOffOnQueuingDelay) {
  ReceiveSideEstimator est(gcc_cfg());
  for (int64_t t = 0; t <= 5'000; t += 100) {
    feed(est, t, t + 100, 2.0, 10.0);
    est.remb(at_ms(t + 100));
  }
  DataRate before = est.current_estimate();
  // Delay jumps to 150 ms: a bloated queue.
  for (int64_t t = 5'000; t <= 7'000; t += 100) {
    feed(est, t, t + 100, 2.0, 150.0);
    est.remb(at_ms(t + 100));
  }
  EXPECT_LT(est.current_estimate().bits_per_sec(), before.bits_per_sec());
}

TEST(RembTest, TrendlineDetectsRamp) {
  ReceiveSideEstimator est(gcc_cfg());
  // Delay ramps 10 -> 110 ms over one second: slope ~100 ms/s.
  int64_t t0 = 0;
  for (int i = 0; i < 100; ++i) {
    double owd = 10.0 + i * 1.0;
    TimePoint arrival = at_ms(t0 + i * 10);
    est.on_packet(arrival, arrival - Duration::millis_d(owd), 1200);
  }
  est.remb(at_ms(1'000));
  EXPECT_GT(est.trendline(), 50.0);
}

TEST(RembTest, ConservativePresetRecoversSlower) {
  auto run = [](ReceiveSideEstimator::Preset preset) {
    auto cfg = ReceiveSideEstimator::preset(preset, DataRate::kbps(300),
                                            DataRate::mbps(5));
    ReceiveSideEstimator est(cfg);
    // Steady 2 Mbps, then capacity collapses to 0.25, then restores. The
    // sender obeys the estimate, so arrivals track min(estimate, capacity).
    DataRate estimate = cfg.start_rate;
    int64_t recovered_at = -1;
    for (int64_t t = 0; t <= 120'000; t += 100) {
      double cap = (t >= 30'000 && t < 60'000) ? 0.25 : 2.0;
      double arriving = std::min(cap, estimate.mbps_f());
      double owd = arriving > cap * 0.99 ? 80.0 : 10.0;  // congested => delay
      feed(est, t, t + 100, arriving, owd);
      estimate = est.remb(at_ms(t + 100));
      if (t >= 60'000 && recovered_at < 0 && estimate.mbps_f() > 1.5) {
        recovered_at = t - 60'000;
      }
    }
    return recovered_at;
  };
  int64_t gcc = run(ReceiveSideEstimator::Preset::kGcc);
  int64_t cons = run(ReceiveSideEstimator::Preset::kConservative);
  ASSERT_GE(gcc, 0);
  // The conservative (Teams-style) estimator takes much longer — or never
  // recovers within the window.
  if (cons >= 0) {
    EXPECT_GT(cons, gcc * 2);
  } else {
    SUCCEED();
  }
}

TEST(RembTest, AggressivePresetRecoversFast) {
  auto cfg = ReceiveSideEstimator::preset(
      ReceiveSideEstimator::Preset::kAggressive, DataRate::kbps(300),
      DataRate::mbps(5));
  ReceiveSideEstimator est(cfg);
  DataRate estimate = cfg.start_rate;
  int64_t recovered_at = -1;
  for (int64_t t = 0; t <= 90'000; t += 100) {
    double cap = (t >= 30'000 && t < 60'000) ? 0.25 : 2.0;
    double arriving = std::min(cap, estimate.mbps_f());
    double owd = arriving > cap * 0.99 ? 80.0 : 10.0;
    feed(est, t, t + 100, arriving, owd);
    estimate = est.remb(at_ms(t + 100));
    if (t >= 60'000 && recovered_at < 0 && estimate.mbps_f() > 1.5) {
      recovered_at = t - 60'000;
    }
  }
  ASSERT_GE(recovered_at, 0);
  EXPECT_LT(recovered_at, 10'000);  // under ten seconds (paper: Meet/Zoom)
}

// Regression for the min-OWD baseline refresh. The old code *overwrote*
// the baseline with whatever sample arrived once 60 s had passed since
// the last refresh. Under a standing queue that sample is itself queued,
// so the measured queuing delay collapsed to ~0 at the refresh boundary
// and overuse went undetected until the next backoff. The windowed
// minimum keeps the pre-queue baseline alive across the boundary.
TEST(RembTest, OveruseDetectedAcrossRefreshBoundaryUnderStandingQueue) {
  ReceiveSideEstimator est(gcc_cfg());
  // 55 s of clean link: baseline OWD 10 ms, estimate grows.
  for (int64_t t = 0; t < 55'000; t += 100) {
    feed(est, t, t + 100, 1.0, 10.0);
    est.remb(at_ms(t + 100));
  }
  // A standing queue builds and *stays*: +440 ms of queuing delay that
  // spans the old implementation's t=60 s refresh boundary.
  DataRate at_onset = est.current_estimate();
  for (int64_t t = 55'000; t < 70'000; t += 100) {
    feed(est, t, t + 100, 1.0, 450.0);
    est.remb(at_ms(t + 100));
  }
  // Past the refresh boundary the estimator must still see the queue
  // (old code: queuing_delay_ms() ~ 0 here, and the estimate regrew).
  EXPECT_GT(est.queuing_delay_ms(), 350.0);
  EXPECT_LT(est.current_estimate().bits_per_sec(), at_onset.bits_per_sec());
}

TEST(RembTest, BaselineStillAgesOutAfterTheQueueDrains) {
  // The windowed minimum must not pin the baseline forever: once old
  // samples age out (> 60 s), a higher plateau becomes the new baseline
  // and steady operation resumes (the route-change case).
  ReceiveSideEstimator est(gcc_cfg());
  for (int64_t t = 0; t < 10'000; t += 100) {
    feed(est, t, t + 100, 1.0, 10.0);
    est.remb(at_ms(t + 100));
  }
  // OWD settles 100 ms higher (route change), for well past the window.
  for (int64_t t = 10'000; t < 90'000; t += 100) {
    feed(est, t, t + 100, 1.0, 110.0);
    est.remb(at_ms(t + 100));
  }
  // The 10 ms samples have aged out: 110 ms reads as zero queuing again.
  EXPECT_LT(est.queuing_delay_ms(), 5.0);
}

TEST(RembTest, RespectsBounds) {
  auto cfg = gcc_cfg();
  cfg.min_rate = DataRate::kbps(200);
  cfg.max_rate = DataRate::kbps(800);
  ReceiveSideEstimator est(cfg);
  for (int64_t t = 0; t <= 20'000; t += 100) {
    feed(est, t, t + 100, 5.0, 5.0);
    DataRate r = est.remb(at_ms(t + 100));
    EXPECT_GE(r.kbps_f(), 199.0);
    EXPECT_LE(r.kbps_f(), 801.0);
  }
}

}  // namespace
}  // namespace vca
