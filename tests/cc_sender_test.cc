#include <gtest/gtest.h>

#include "cc/sender_cc.h"

namespace vca {
namespace {

TimePoint at_ms(int64_t ms) { return TimePoint::from_ns(ms * 1'000'000); }

SenderCongestionController::Bounds bounds(double nominal_mbps) {
  SenderCongestionController::Bounds b;
  b.min_rate = DataRate::kbps(100);
  b.max_rate = DataRate::mbps_d(nominal_mbps);
  b.start_rate = DataRate::kbps(500);
  return b;
}

RtcpMeta fb(double loss, double rx_mbps, double gradient = 0.0,
            double remb_mbps = 0.0) {
  RtcpMeta m;
  m.loss_fraction = loss;
  m.receive_rate = DataRate::mbps_d(rx_mbps);
  m.delay_gradient_ms_per_s = gradient;
  if (remb_mbps > 0) m.remb = DataRate::mbps_d(remb_mbps);
  return m;
}

TEST(GccSenderTest, RampsToNominalOnCleanFeedback) {
  GccSenderController cc(bounds(1.0));
  for (int64_t t = 0; t <= 60'000; t += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(t)).mbps_f()), at_ms(t));
  }
  EXPECT_NEAR(cc.target_rate(at_ms(60'000)).mbps_f(), 1.0, 0.01);
}

TEST(GccSenderTest, RembCapsTarget) {
  GccSenderController cc(bounds(1.0));
  for (int64_t t = 0; t <= 30'000; t += 100) {
    cc.on_feedback(fb(0.0, 0.5, 0.0, /*remb=*/0.4), at_ms(t));
  }
  EXPECT_LE(cc.target_rate(at_ms(30'000)).mbps_f(), 0.41);
}

TEST(GccSenderTest, LossCausesBackoff) {
  GccSenderController cc(bounds(1.0));
  for (int64_t t = 0; t <= 30'000; t += 100) cc.on_feedback(fb(0.0, 1.0), at_ms(t));
  double before = cc.target_rate(at_ms(30'000)).mbps_f();
  for (int64_t t = 30'000; t <= 34'000; t += 100) {
    cc.on_feedback(fb(0.3, 0.5), at_ms(t));
  }
  EXPECT_LT(cc.target_rate(at_ms(34'000)).mbps_f(), before * 0.7);
}

TEST(TeamsSenderTest, GradientTriggersBackoffEvenWithoutLoss) {
  TeamsSenderController cc(bounds(1.5));
  for (int64_t t = 0; t <= 60'000; t += 100) cc.on_feedback(fb(0.0, 1.5), at_ms(t));
  double before = cc.target_rate(at_ms(60'000)).mbps_f();
  EXPECT_NEAR(before, 1.5, 0.05);
  // TCP-like sawtooth: repeated strong positive delay gradients, no loss.
  for (int64_t t = 60'000; t <= 75'000; t += 100) {
    cc.on_feedback(fb(0.0, 1.0, /*gradient=*/60.0), at_ms(t));
  }
  EXPECT_LT(cc.target_rate(at_ms(75'000)).mbps_f(), before * 0.5);
}

TEST(TeamsSenderTest, SlowThenFastRecovery) {
  TeamsSenderController cc(bounds(1.5));
  // Reach nominal, then force a deep backoff.
  for (int64_t t = 0; t <= 60'000; t += 100) cc.on_feedback(fb(0.0, 1.5), at_ms(t));
  for (int64_t t = 60'000; t <= 64'000; t += 100) {
    cc.on_feedback(fb(0.5, 0.2), at_ms(t));
  }
  double low = cc.target_rate(at_ms(64'000)).mbps_f();
  ASSERT_LT(low, 0.5);
  // Clean feedback resumes; measure growth in the first 5 s vs next 10 s.
  for (int64_t t = 64'000; t <= 69'000; t += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(t)).mbps_f()), at_ms(t));
  }
  double after_slow = cc.target_rate(at_ms(69'000)).mbps_f();
  for (int64_t t = 69'000; t <= 79'000; t += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(t)).mbps_f()), at_ms(t));
  }
  double after_fast = cc.target_rate(at_ms(79'000)).mbps_f();
  double slow_growth_per_s = (after_slow - low) / 5.0;
  double fast_growth_per_s = (after_fast - after_slow) / 10.0;
  EXPECT_GT(fast_growth_per_s, slow_growth_per_s * 1.5);
}

TEST(ZoomSenderTest, ToleratesModerateLoss) {
  // Start at steady nominal, then sustain 18% loss — below the FEC
  // protection threshold, so Zoom must NOT back off (§5.1).
  auto b = bounds(0.8);
  b.start_rate = DataRate::kbps(700);
  ZoomSenderController cc(b);
  for (int64_t t = 0; t <= 60'000; t += 100) {
    cc.on_feedback(fb(0.18, 0.6), at_ms(t));
  }
  EXPECT_GT(cc.target_rate(at_ms(60'000)).mbps_f(), 0.65);
}

TEST(ZoomSenderTest, ProbesAboveNominalAfterDisruption) {
  ZoomSenderController cc(bounds(0.8));
  // Settle at nominal.
  for (int64_t t = 0; t <= 60'000; t += 100) cc.on_feedback(fb(0.0, 0.8), at_ms(t));
  // Severe disruption: heavy loss for 30 s.
  for (int64_t t = 60'000; t <= 90'000; t += 100) {
    cc.on_feedback(fb(0.6, 0.2), at_ms(t));
  }
  EXPECT_LT(cc.target_rate(at_ms(90'000)).mbps_f(), 0.5);
  // Recovery: find the peak rate during the next two minutes.
  double peak = 0.0;
  for (int64_t t = 90'000; t <= 210'000; t += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(t)).mbps_f()), at_ms(t));
    peak = std::max(peak, cc.target_rate(at_ms(t)).mbps_f());
  }
  EXPECT_GT(peak, 0.8 * 1.3);  // overshoot well past nominal (Fig 4a)
  // ...but eventually settles back to nominal.
  EXPECT_NEAR(cc.target_rate(at_ms(210'000)).mbps_f(), 0.8, 0.1);
}

TEST(ZoomSenderTest, NoProbeAblationStaysAtNominal) {
  ZoomSenderController::Tuning t;
  t.probing_enabled = false;
  ZoomSenderController cc(bounds(0.8), t);
  for (int64_t ts = 0; ts <= 60'000; ts += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(ts)).mbps_f()), at_ms(ts));
  }
  double peak = 0.0;
  for (int64_t ts = 60'000; ts <= 120'000; ts += 100) {
    cc.on_feedback(fb(0.0, cc.target_rate(at_ms(ts)).mbps_f()), at_ms(ts));
    peak = std::max(peak, cc.target_rate(at_ms(ts)).mbps_f());
  }
  EXPECT_LE(peak, 0.81);
}

TEST(SenderCcFactoryTest, MakesAllControllers) {
  auto b = bounds(1.0);
  EXPECT_NE(make_sender_cc("gcc", b), nullptr);
  EXPECT_NE(make_sender_cc("teams", b), nullptr);
  EXPECT_NE(make_sender_cc("zoom", b), nullptr);
  EXPECT_NE(make_sender_cc("zoom-noprobe", b), nullptr);
  EXPECT_EQ(make_sender_cc("bogus", b), nullptr);
}

TEST(SenderCcTest, AllRespectMinRate) {
  for (const char* name : {"gcc", "teams", "zoom"}) {
    auto cc = make_sender_cc(name, bounds(1.0));
    for (int64_t t = 0; t <= 30'000; t += 100) {
      cc->on_feedback(fb(0.9, 0.05), at_ms(t));  // catastrophic loss
    }
    EXPECT_GE(cc->target_rate(at_ms(30'000)).kbps_f(), 99.0) << name;
  }
}

}  // namespace
}  // namespace vca
