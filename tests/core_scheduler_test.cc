#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/scheduler.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(30_ms, [&] { order.push_back(3); });
  sched.schedule(10_ms, [&] { order.push_back(1); });
  sched.schedule(20_ms, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, FifoTieBreakAtSameInstant) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(5_ms, [&] { order.push_back(1); });
  sched.schedule(5_ms, [&] { order.push_back(2); });
  sched.schedule(5_ms, [&] { order.push_back(3); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  EventScheduler sched;
  TimePoint seen;
  sched.schedule(250_ms, [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_EQ(seen.ns(), Duration::millis(250).ns());
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule(100_ms, [&] { ++fired; });
  sched.schedule(300_ms, [&] { ++fired; });
  sched.run_until(TimePoint::zero() + 200_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().ns(), Duration::millis(200).ns());
  sched.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  EventScheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sched.schedule(10_ms, chain);
  };
  sched.schedule(10_ms, chain);
  sched.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now().ns(), Duration::millis(50).ns());
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  EventScheduler sched;
  bool ran = false;
  sched.schedule(10_ms, [&] {
    sched.schedule(Duration::millis(-5), [&] { ran = true; });
  });
  sched.run_all();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, RunForAdvancesRelative) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule(1_s, [&] { ++fired; });
  sched.run_for(500_ms);
  EXPECT_EQ(fired, 0);
  sched.run_for(500_ms);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CountsProcessedEvents) {
  EventScheduler sched;
  for (int i = 0; i < 10; ++i) sched.schedule(Duration::millis(i), [] {});
  sched.run_all();
  EXPECT_EQ(sched.events_processed(), 10u);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, ScheduleAtInThePastRunsAtNowInFifoOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(20_ms, [&] {
    // An absolute time already behind the clock clamps to now...
    sched.schedule_at(TimePoint::zero() + 5_ms, [&] { order.push_back(1); });
    // ...and keeps FIFO order against a same-instant successor.
    sched.schedule(Duration::zero(), [&] { order.push_back(2); });
  });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now().ns(), Duration::millis(20).ns());
}

TEST(SchedulerTest, InterleavedRunUntilRunForDrainsInOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.schedule(Duration::millis(10 * (i + 1)), [&order, i] {
      order.push_back(i);
    });
  }
  // Ties dropped at the boundaries plus events scheduled mid-drain.
  sched.schedule(40_ms, [&] { order.push_back(100); });
  sched.run_until(TimePoint::zero() + 25_ms);     // fires 0, 1
  sched.run_for(15_ms);                           // to 40 ms: 2, 3, 100
  sched.schedule(5_ms, [&] { order.push_back(200); });  // at 45 ms
  sched.run_for(40_ms);                           // to 80 ms: 200, 4..7
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 100, 200, 4, 5, 6, 7}));
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, TracksPeakPendingHighWaterMark) {
  EventScheduler sched;
  for (int i = 0; i < 100; ++i) sched.schedule(Duration::millis(i), [] {});
  EXPECT_EQ(sched.peak_pending(), 100u);
  sched.run_all();
  // The mark is a high-water mark: draining does not lower it.
  EXPECT_EQ(sched.peak_pending(), 100u);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, HeapStaysOrderedUnderChurn) {
  // Interleaved pushes and pops with many duplicate timestamps exercise
  // the 4-ary heap's sift paths harder than the happy-path tests above.
  EventScheduler sched;
  std::vector<std::pair<int64_t, int>> fired;
  int label = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      int64_t ms = 100 + 10 * ((i * 7) % 13);
      sched.schedule(Duration::millis(ms), [&fired, &sched, label] {
        fired.push_back({sched.now().ns(), label});
      });
      ++label;
    }
    sched.run_for(30_ms);
  }
  sched.run_all();
  // Time never goes backwards; same-time events keep submission order.
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first) << "at " << i;
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second) << "at " << i;
    }
  }
  EXPECT_EQ(fired.size(), 250u);
}

// --- inline-callback capture budget ---------------------------------------

// Small captures are storable; a capture larger than the scheduler's
// 64-byte inline buffer must be rejected at compile time (the fits<F>
// constraint), not silently heap-allocated.
struct SmallCapture {
  char bytes[48];
  void operator()() const {}
};
struct OversizeCapture {
  char bytes[65];
  void operator()() const {}
};
static_assert(std::is_constructible_v<EventScheduler::Callback, SmallCapture>,
              "a 48-byte callable must fit the inline buffer");
static_assert(
    !std::is_constructible_v<EventScheduler::Callback, OversizeCapture>,
    "a 65-byte callable must fail to convert (no silent heap fallback)");
static_assert(EventScheduler::Callback::fits<SmallCapture>);
static_assert(!EventScheduler::Callback::fits<OversizeCapture>);

TEST(SchedulerTest, CallbackMoveTransfersNonTrivialCapture) {
  // A move-only capture (unique_ptr) exercises the manage_ path of the
  // inline callable: moving the callback must move the capture with it.
  auto value = std::make_unique<int>(42);
  EventScheduler::Callback cb;
  {
    int out = 0;
    EventScheduler::Callback first(
        [v = std::move(value), &out] { out = *v; });
    cb = std::move(first);
    EXPECT_FALSE(static_cast<bool>(first));
    EXPECT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(out, 42);
  }
}

}  // namespace
}  // namespace vca
