#include <gtest/gtest.h>

#include <vector>

#include "core/scheduler.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(30_ms, [&] { order.push_back(3); });
  sched.schedule(10_ms, [&] { order.push_back(1); });
  sched.schedule(20_ms, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, FifoTieBreakAtSameInstant) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule(5_ms, [&] { order.push_back(1); });
  sched.schedule(5_ms, [&] { order.push_back(2); });
  sched.schedule(5_ms, [&] { order.push_back(3); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  EventScheduler sched;
  TimePoint seen;
  sched.schedule(250_ms, [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_EQ(seen.ns(), Duration::millis(250).ns());
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule(100_ms, [&] { ++fired; });
  sched.schedule(300_ms, [&] { ++fired; });
  sched.run_until(TimePoint::zero() + 200_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now().ns(), Duration::millis(200).ns());
  sched.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  EventScheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sched.schedule(10_ms, chain);
  };
  sched.schedule(10_ms, chain);
  sched.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now().ns(), Duration::millis(50).ns());
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  EventScheduler sched;
  bool ran = false;
  sched.schedule(10_ms, [&] {
    sched.schedule(Duration::millis(-5), [&] { ran = true; });
  });
  sched.run_all();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, RunForAdvancesRelative) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule(1_s, [&] { ++fired; });
  sched.run_for(500_ms);
  EXPECT_EQ(fired, 0);
  sched.run_for(500_ms);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CountsProcessedEvents) {
  EventScheduler sched;
  for (int i = 0; i < 10; ++i) sched.schedule(Duration::millis(i), [] {});
  sched.run_all();
  EXPECT_EQ(sched.events_processed(), 10u);
  EXPECT_TRUE(sched.empty());
}

}  // namespace
}  // namespace vca
