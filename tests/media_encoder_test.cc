#include <gtest/gtest.h>

#include <vector>

#include "core/scheduler.h"
#include "media/encoder.h"

namespace vca {
namespace {

using namespace vca::literals;

EncoderSettings fixed_policy(DataRate target, int max_width) {
  EncoderSettings s;
  s.width = std::min(640, max_width);
  s.fps = 30.0;
  s.qp = 30;
  s.bitrate = target;
  return s;
}

struct EncoderHarness {
  EventScheduler sched;
  AdaptiveEncoder encoder;
  std::vector<EncodedFrame> frames;

  explicit EncoderHarness(uint64_t seed = 1)
      : encoder(&sched, Rng(seed),
                {.ssrc = 1, .spatial_layer = 0, .policy = fixed_policy}) {
    encoder.set_frame_handler(
        [this](const EncodedFrame& f) { frames.push_back(f); });
  }
};

TEST(EncoderTest, EmitsAtConfiguredFps) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), 1280);
  h.encoder.start();
  h.sched.run_for(10_s);
  // 30 fps for 10 s: ~300 frames (first tick at t=0).
  EXPECT_NEAR(static_cast<double>(h.frames.size()), 300.0, 5.0);
}

TEST(EncoderTest, HitsBitrateTarget) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(800), 1280);
  h.encoder.start();
  h.sched.run_for(30_s);
  int64_t bytes = 0;
  for (const auto& f : h.frames) bytes += f.bytes;
  double mbps = static_cast<double>(bytes) * 8 / 30e6;
  EXPECT_NEAR(mbps, 0.8, 0.12);  // within 15% of target
}

TEST(EncoderTest, FirstFrameIsKeyframe) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), 1280);
  h.encoder.start();
  h.sched.run_for(100_ms);
  ASSERT_FALSE(h.frames.empty());
  EXPECT_TRUE(h.frames[0].keyframe);
}

TEST(EncoderTest, KeyframeOnRequest) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), 1280);
  h.encoder.start();
  h.sched.run_for(1_s);
  size_t before = h.frames.size();
  h.encoder.request_keyframe();
  h.sched.run_for(200_ms);
  bool found = false;
  for (size_t i = before; i < h.frames.size(); ++i) {
    found |= h.frames[i].keyframe;
  }
  EXPECT_TRUE(found);
}

TEST(EncoderTest, KeyframesAreLarger) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), 1280);
  h.encoder.start();
  h.sched.run_for(30_s);
  double key_sum = 0, key_n = 0, delta_sum = 0, delta_n = 0;
  for (const auto& f : h.frames) {
    if (f.keyframe) {
      key_sum += f.bytes;
      ++key_n;
    } else {
      delta_sum += f.bytes;
      ++delta_n;
    }
  }
  ASSERT_GT(key_n, 0);
  ASSERT_GT(delta_n, 0);
  EXPECT_GT(key_sum / key_n, 1.5 * delta_sum / delta_n);
}

TEST(EncoderTest, RetargetTakesEffect) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(1000), 1280);
  h.encoder.start();
  h.sched.run_for(10_s);
  h.encoder.set_target(DataRate::kbps(200), 1280);
  size_t split = h.frames.size();
  h.sched.run_for(10_s);
  int64_t before = 0, after = 0;
  for (size_t i = 0; i < h.frames.size(); ++i) {
    (i < split ? before : after) += h.frames[i].bytes;
  }
  EXPECT_GT(before, after * 3);
}

TEST(EncoderTest, PolicyControlsReportedSettings) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), /*max_width=*/320);
  h.encoder.start();
  h.sched.run_for(1_s);
  ASSERT_FALSE(h.frames.empty());
  EXPECT_EQ(h.frames.back().width, 320);  // min(640, max_width)
  EXPECT_EQ(h.frames.back().qp, 30);
}

TEST(EncoderTest, StopCeasesOutput) {
  EncoderHarness h;
  h.encoder.set_target(DataRate::kbps(500), 1280);
  h.encoder.start();
  h.sched.run_for(1_s);
  h.encoder.stop();
  size_t n = h.frames.size();
  h.sched.run_for(2_s);
  EXPECT_EQ(h.frames.size(), n);
}

TEST(EncoderTest, DeterministicAcrossRuns) {
  EncoderHarness a(99), b(99);
  a.encoder.set_target(DataRate::kbps(500), 1280);
  b.encoder.set_target(DataRate::kbps(500), 1280);
  a.encoder.start();
  b.encoder.start();
  a.sched.run_for(5_s);
  b.sched.run_for(5_s);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].bytes, b.frames[i].bytes);
  }
}

TEST(VideoSourceTest, ComplexityStaysInRange) {
  VideoSource src(Rng(5));
  for (int i = 0; i < 10000; ++i) {
    double c = src.complexity(TimePoint::from_ns(i * 33'000'000LL));
    EXPECT_GT(c, 0.2);
    EXPECT_LT(c, 3.0);
  }
}

}  // namespace
}  // namespace vca
