// Direct tests of SFU forwarding behavior (selection, thinning, FEC,
// keyframe propagation) using a real two-client call rig.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "vca/call.h"

namespace vca {
namespace {

using namespace vca::literals;

struct SfuRig {
  Network net;
  Network::HostPorts sfu, c1, c2;
  std::unique_ptr<Call> call;

  explicit SfuRig(const std::string& profile, uint64_t seed = 1) {
    sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                       Duration::millis(8), 4 << 20);
    c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                      Duration::millis(2), 1 << 20);
    c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                      Duration::millis(2), 1 << 20);
    Call::Config cfg;
    cfg.profile = vca_profile(profile);
    cfg.seed = seed;
    call = std::make_unique<Call>(&net.sched(), sfu.host, cfg);
    call->add_client(c1.host);
    call->add_client(c2.host);
  }
  VcaClient* cl(int i) { return call->client(static_cast<size_t>(i)); }
};

TEST(SfuTest, MeetSelectsHighCopyWithHeadroom) {
  SfuRig rig("meet");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 40_s);
  EXPECT_EQ(rig.call->sfu()->selected_stream(rig.cl(0), rig.cl(1)), 1);
  // The viewer sees 640-wide video at full rate.
  EXPECT_EQ(rig.cl(0)->feeds()[0]->stats->per_second().back().width, 640);
  rig.call->stop();
}

TEST(SfuTest, MeetDowngradesToLowCopyUnderDownlinkConstraint) {
  SfuRig rig("meet");
  rig.c1.down->set_rate(DataRate::kbps(400));
  rig.c1.down->set_queue_bytes(15'000);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 60_s);
  EXPECT_EQ(rig.call->sfu()->selected_stream(rig.cl(0), rig.cl(1)), 0);
  EXPECT_EQ(rig.cl(0)->feeds()[0]->stats->per_second().back().width, 320);
  rig.call->stop();
}

TEST(SfuTest, MeetThinsTemporallyInTheMiddleBand) {
  SfuRig rig("meet");
  rig.c1.down->set_rate(DataRate::kbps(650));
  rig.c1.down->set_queue_bytes(24'000);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 90_s);
  // Either the thinned high copy (fps ~15) or the low copy (fps 30,
  // width 320) — never full-rate 640@30 (Fig 2a's staircase).
  double fps = rig.cl(0)->feeds()[0]->stats->median_fps();
  double width = rig.cl(0)->feeds()[0]->stats->median_width();
  EXPECT_TRUE((width == 640 && fps < 22.0) || width == 320)
      << "width=" << width << " fps=" << fps;
  rig.call->stop();
}

TEST(SfuTest, ZoomForwardsAllLayersWithFecOverhead) {
  SfuRig rig("zoom");
  FlowCapture* down = rig.net.capture(rig.c1.down);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 60_s);
  EXPECT_EQ(rig.call->sfu()->active_layers(rig.cl(0), rig.cl(1)), 3);
  // Downstream carries the upstream media plus ~18% server FEC.
  FlowCapture* up = rig.net.capture(rig.c2.up);
  rig.net.sched().run_until(TimePoint::zero() + 120_s);
  double down_mbps = down->mean_rate(TimePoint::zero() + 70_s,
                                     TimePoint::zero() + 120_s)
                         .mbps_f();
  double up_mbps = up->mean_rate(TimePoint::zero() + 70_s,
                                 TimePoint::zero() + 120_s)
                       .mbps_f();
  EXPECT_GT(down_mbps, up_mbps * 1.08);
  rig.call->stop();
}

TEST(SfuTest, ZoomShedsLayersUnderDownlinkConstraint) {
  SfuRig rig("zoom");
  rig.c1.down->set_rate(DataRate::kbps(400));
  rig.c1.down->set_queue_bytes(15'000);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 60_s);
  EXPECT_LT(rig.call->sfu()->active_layers(rig.cl(0), rig.cl(1)), 3);
  rig.call->stop();
}

TEST(SfuTest, TeamsRelayDoesNotReoriginateQuality) {
  SfuRig rig("teams");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 40_s);
  // What C1 sees is exactly what C2 encodes (width passes through).
  const EncoderSettings* s = rig.cl(1)->layer_settings(0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(rig.cl(0)->feeds()[0]->stats->per_second().back().width, s->width);
  rig.call->stop();
}

TEST(SfuTest, ViewerFirPropagatesToPublisherEncoder) {
  SfuRig rig("meet");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 10_s);
  uint64_t frames_before = 0;
  // Blackhole C1's downlink media for a while: its feed stalls, FIRs flow
  // back to the SFU, which must solicit keyframes upstream.
  (void)frames_before;
  rig.c1.down->set_rate(DataRate::kbps(10));
  rig.net.sched().run_until(TimePoint::zero() + 13_s);
  rig.c1.down->set_rate(DataRate::gbps(1));
  int fir_before = rig.cl(0)->feeds()[0]->receiver->fir_sent();
  rig.net.sched().run_until(TimePoint::zero() + 30_s);
  EXPECT_GE(rig.cl(0)->feeds()[0]->receiver->fir_sent(), fir_before);
  // And the call must fully recover.
  auto& stats = *rig.cl(0)->feeds()[0]->stats;
  rig.net.sched().run_until(TimePoint::zero() + 40_s);
  EXPECT_GT(stats.per_second().back().fps, 20.0);
  rig.call->stop();
}

TEST(SfuTest, ViewerBudgetTracksDownlink) {
  SfuRig rig("meet");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 40_s);
  DataRate unconstrained = rig.call->sfu()->viewer_budget(rig.cl(0));
  rig.c1.down->set_rate(DataRate::kbps(300));
  rig.c1.down->set_queue_bytes(12'000);
  rig.net.sched().run_until(TimePoint::zero() + 80_s);
  DataRate constrained = rig.call->sfu()->viewer_budget(rig.cl(0));
  EXPECT_LT(constrained.bits_per_sec(), unconstrained.bits_per_sec());
  EXPECT_LT(constrained.kbps_f(), 500.0);
  rig.call->stop();
}

}  // namespace
}  // namespace vca
