#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/inline_vec.h"
#include "harness/network.h"
#include "net/packet.h"
#include "vca/call.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(InlineVecTest, StaysInlineUpToCapacity) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(InlineVecTest, SpillsPastCapacityAndKeepsContents) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
  v.clear();
  EXPECT_TRUE(v.empty());
  // clear() keeps the spilled buffer for reuse: refill without realloc.
  for (int i = 0; i < 50; ++i) v.push_back(-i);
  EXPECT_EQ(v.size(), 50u);
  EXPECT_EQ(v[49], -49);
}

TEST(InlineVecTest, CopySemanticsInlineAndSpilled) {
  InlineVec<std::string, 2> small;
  small.push_back("a");
  InlineVec<std::string, 2> small_copy(small);
  EXPECT_EQ(small_copy.size(), 1u);
  EXPECT_EQ(small_copy[0], "a");
  small_copy[0] = "changed";
  EXPECT_EQ(small[0], "a");  // deep copy

  InlineVec<std::string, 2> big;
  for (int i = 0; i < 10; ++i) big.push_back(std::to_string(i));
  InlineVec<std::string, 2> big_copy;
  big_copy = big;
  EXPECT_EQ(big_copy.size(), 10u);
  EXPECT_EQ(big_copy[9], "9");
  EXPECT_EQ(big.size(), 10u);
  EXPECT_TRUE(big == big_copy);
}

TEST(InlineVecTest, MoveStealsSpilledBufferAndMovesInlineElements) {
  InlineVec<std::string, 2> big;
  for (int i = 0; i < 10; ++i) big.push_back(std::to_string(i));
  const std::string* heap_data = big.data();
  InlineVec<std::string, 2> stolen(std::move(big));
  // Spilled storage transfers by pointer steal, not element copies.
  EXPECT_EQ(stolen.data(), heap_data);
  EXPECT_EQ(stolen.size(), 10u);
  EXPECT_TRUE(big.empty());  // NOLINT(bugprone-use-after-move)

  InlineVec<std::string, 4> small;
  small.push_back("x");
  small.push_back("y");
  InlineVec<std::string, 4> moved(std::move(small));
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_TRUE(moved.is_inline());
  EXPECT_EQ(moved[0], "x");
  EXPECT_EQ(moved[1], "y");

  // Move-assign over an existing spilled vector frees/replaces cleanly.
  InlineVec<std::string, 2> target;
  for (int i = 0; i < 8; ++i) target.push_back("old");
  target = std::move(stolen);
  EXPECT_EQ(target.size(), 10u);
  EXPECT_EQ(target[0], "0");
}

TEST(InlineVecTest, NackListInlineForTypicalBurst) {
  // RtcpMeta::nack_seqs is an InlineVec<uint32_t, 16>: a typical loss
  // burst rides inline in the packet's metadata variant; a pathological
  // one spills but stays correct.
  NackList nacks;
  for (uint32_t s = 100; s < 112; ++s) nacks.push_back(s);
  EXPECT_TRUE(nacks.is_inline());
  for (uint32_t s = 112; s < 140; ++s) nacks.push_back(s);
  EXPECT_FALSE(nacks.is_inline());
  EXPECT_EQ(nacks.size(), 40u);
  EXPECT_EQ(nacks[0], 100u);
  EXPECT_EQ(nacks.back(), 139u);

  // The list survives the copy into a Packet's metadata variant.
  RtcpMeta fb;
  fb.ssrc = 7;
  fb.nack_seqs = nacks;
  Packet p;
  p.meta = fb;
  ASSERT_EQ(p.rtcp().nack_seqs.size(), 40u);
  EXPECT_EQ(p.rtcp().nack_seqs[39], 139u);
}

TEST(InlineVecTest, NackRoundTripThroughSfuHop) {
  // End-to-end: viewer-side downlink loss makes the viewer NACK the SFU's
  // re-originating sender, which retransmits from its history ring. The
  // NACK list crosses the wire inside RtcpMeta both on the SFU hop and on
  // the publisher leg.
  Network net;
  auto sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                          Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);
  c1.down->set_random_loss(0.05);

  Call::Config cfg;
  cfg.profile = vca_profile("meet");
  cfg.seed = 3;
  Call call(&net.sched(), sfu.host, cfg);
  VcaClient* viewer = call.add_client(c1.host);
  call.add_client(c2.host);

  call.start();
  net.sched().run_until(TimePoint::zero() + 30_s);
  call.stop();

  ASSERT_FALSE(viewer->feeds().empty());
  const auto& feed = *viewer->feeds().front();
  // Lossy downlink forced NACKs, and retransmissions kept video flowing.
  EXPECT_GT(feed.receiver->nacks_sent(), 0);
  EXPECT_GT(feed.stats->total_frames(), 200);
  EXPECT_EQ(net.enforce_invariants(), 0);
}

}  // namespace
}  // namespace vca
