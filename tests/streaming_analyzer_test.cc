// Streaming analyzer end-to-end: equivalence with the offline pipeline
// on a real captured trace, and byte-identical reports whether packets
// arrive through the live TraceRecorder sink or a pcap replay.
#include "streaming/analyzer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/network.h"
#include "harness/scenario.h"
#include "vca/call.h"

namespace vca {
namespace {

StreamingConfig replay_config() {
  StreamingConfig cfg;
  cfg.promote_packets = 1;  // curated capture: admit every flow
  cfg.idle_timeout_ns = 3'600'000'000'000;  // no idle eviction mid-test
  return cfg;
}

TEST(StreamingAnalyzerTest, MatchesOfflinePipelineOnCapturedTrace) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 11;
  cfg.duration = Duration::seconds(60);
  cfg.capture_traces = true;
  TwoPartyResult r = run_two_party(cfg);
  ASSERT_FALSE(r.c1_down_records.empty());

  TraceAnalysis offline = analyze_records(r.c1_down_records, 20.0);

  StreamingAnalyzer streaming(replay_config());
  for (const PacketRecord& rec : r.c1_down_records) {
    if (rec.ts_ns >= 20'000'000'000) streaming.on_record(rec);
  }
  streaming.finish();

  ASSERT_EQ(streaming.reports().size(), offline.streams.size());
  for (const StreamReport& off : offline.streams) {
    const StreamReport* on = nullptr;
    for (const StreamReport& s : streaming.reports()) {
      if (s.key == off.key) on = &s;
    }
    ASSERT_NE(on, nullptr) << off.describe();
    // Same packets through the same incremental core: everything except
    // the offline-only per-second vector is bit-equal, including the
    // histogram-vs-vector median and the extended estimates.
    EXPECT_EQ(on->packets, off.packets);
    EXPECT_EQ(on->ip_bytes, off.ip_bytes);
    EXPECT_EQ(on->frames, off.frames);
    EXPECT_EQ(on->kind, off.kind);
    EXPECT_DOUBLE_EQ(on->median_fps, off.median_fps);
    EXPECT_DOUBLE_EQ(on->mean_rate_mbps, off.mean_rate_mbps);
    EXPECT_DOUBLE_EQ(on->mean_frame_bytes, off.mean_frame_bytes);
    EXPECT_EQ(on->est_width, off.est_width);
    EXPECT_EQ(on->freeze_events, off.freeze_events);
    EXPECT_DOUBLE_EQ(on->est_freeze_ratio, off.est_freeze_ratio);
    EXPECT_DOUBLE_EQ(on->qoe, off.qoe);
    EXPECT_TRUE(on->fps_per_sec.empty());  // bounded mode
  }

  // The primary video stream carries a real signal end to end.
  const StreamReport* video = offline.primary_video();
  ASSERT_NE(video, nullptr);
  EXPECT_GT(video->median_fps, 0.0);
  EXPECT_GT(video->est_width, 0);
  EXPECT_GT(video->qoe, 1.0);
}

// One deterministic simulated call, observed two ways: (a) a live
// TraceRecorder sink feeding the analyzer packet by packet with nothing
// accumulating, (b) the classic capture -> pcap file -> chunked replay.
// Same input, so the analyzer must produce byte-identical reports.
TEST(StreamingAnalyzerTest, LiveTapAndPcapReplayAreByteIdentical) {
  auto run_call = [](StreamingAnalyzer* live_sink_target,
                     std::vector<PacketRecord>* captured) {
    Network net;
    auto sfu_ports = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                                  Duration::millis(8), 4 << 20);
    auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                           Duration::millis(2), 1 << 20);
    auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                           Duration::millis(2), 1 << 20);
    Call::Config ccfg;
    ccfg.profile = vca_profile("teams");
    ccfg.seed = 23;
    Call call(&net.sched(), sfu_ports.host, ccfg);
    call.add_client(c1.host);
    call.add_client(c2.host);
    TraceRecorder* rec = net.record(c1.down);
    if (live_sink_target != nullptr) {
      rec->set_sink(live_sink_target->sink());
    }
    call.start();
    net.sched().run_until(TimePoint::zero() + Duration::seconds(40));
    call.stop();
    net.sched().run_for(Duration::millis(10));
    if (live_sink_target != nullptr) {
      EXPECT_EQ(rec->size(), 0u);  // live feed: nothing accumulated
    }
    if (captured != nullptr) *captured = rec->take_records();
  };

  StreamingAnalyzer live(replay_config());
  run_call(&live, nullptr);
  live.finish();

  std::vector<PacketRecord> records;
  run_call(nullptr, &records);
  ASSERT_FALSE(records.empty());
  std::string path = testing::TempDir() + "/stream_replay_test.pcap";
  ASSERT_TRUE(write_pcap_file(path, records));
  StreamingAnalyzer replay(replay_config());
  ASSERT_TRUE(replay.replay_pcap(path));
  replay.finish();
  std::remove(path.c_str());

  ASSERT_GT(live.reports().size(), 0u);
  EXPECT_EQ(live.reports(), replay.reports());
  EXPECT_EQ(live.windows(), replay.windows());
  EXPECT_EQ(live.stats().packets, replay.stats().packets);
}

TEST(StreamingAnalyzerTest, WindowReportsTrackSteadyStateFps) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 3;
  cfg.duration = Duration::seconds(50);
  cfg.capture_traces = true;
  TwoPartyResult r = run_two_party(cfg);

  StreamingAnalyzer an(replay_config());
  for (const PacketRecord& rec : r.c1_down_records) an.on_record(rec);
  an.finish();

  // Identify the video flow from the final reports, then check its
  // steady-state windows carry a plausible per-second frame rate.
  const StreamReport* video = nullptr;
  for (const StreamReport& s : an.reports()) {
    if (s.kind == StreamKind::kVideo &&
        (video == nullptr || s.ip_bytes > video->ip_bytes)) {
      video = &s;
    }
  }
  ASSERT_NE(video, nullptr);
  // Steady state excludes the warm-up and the partial tail window at the
  // moment the call tears down.
  int steady = 0;
  for (const WindowReport& w : an.windows()) {
    if (w.key == video->key && w.window_start_ns >= 20'000'000'000 &&
        w.window_start_ns < 49'000'000'000) {
      EXPECT_GE(w.fps, 10.0) << "window at " << w.window_start_ns;
      EXPECT_LE(w.fps, 60.0);
      EXPECT_GT(w.rate_mbps, 0.0);
      ++steady;
    }
  }
  EXPECT_GT(steady, 20);
}

}  // namespace
}  // namespace vca
