#include <gtest/gtest.h>

#include "vca/profile.h"

namespace vca {
namespace {

TEST(ProfileTest, FactoryKnowsAllNames) {
  for (const auto& name : all_profile_names()) {
    VcaProfile p = vca_profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_FALSE(p.layers.empty());
    EXPECT_GT(p.nominal_video.bits_per_sec(), 0);
  }
}

TEST(ProfileTest, ArchitecturesMatchPaper) {
  EXPECT_EQ(vca_profile("meet").arch, Architecture::kSimulcastSfu);
  EXPECT_EQ(vca_profile("teams").arch, Architecture::kRelay);
  EXPECT_EQ(vca_profile("zoom").arch, Architecture::kSvcSfu);
}

TEST(ProfileTest, ZoomHasServerFecTeamsAndMeetDoNot) {
  EXPECT_GT(vca_profile("zoom").server_fec, 0.0);
  EXPECT_EQ(vca_profile("meet").server_fec, 0.0);
  EXPECT_EQ(vca_profile("teams").server_fec, 0.0);
}

TEST(ProfileTest, ChromeVariantUsesMargin) {
  EXPECT_LT(vca_profile("teams-chrome").target_margin, 0.9);
  EXPECT_DOUBLE_EQ(vca_profile("zoom-chrome").target_margin, 1.0);
}

TEST(ProfileTest, MeetAllocatorUsesBothSimulcastCopies) {
  VcaProfile p = vca_profile("meet");
  StreamAllocation a = p.allocate(DataRate::kbps(850), 1280, false);
  ASSERT_EQ(a.items.size(), 2u);
  EXPECT_EQ(a.items[0].layer, 0);
  EXPECT_EQ(a.items[1].layer, 1);
  // Low copy fixed, high copy absorbs the rest.
  EXPECT_NEAR(a.items[0].target.kbps_f(), 150.0, 1.0);
  EXPECT_GT(a.items[1].target.kbps_f(), 500.0);
}

TEST(ProfileTest, MeetDropsHighCopyUnderPressureOrSmallTiles) {
  VcaProfile p = vca_profile("meet");
  // Tight budget: low copy only, absorbing the budget (Fig 1a >90% util).
  StreamAllocation tight = p.allocate(DataRate::kbps(400), 1280, false);
  ASSERT_EQ(tight.items.size(), 1u);
  EXPECT_EQ(tight.items[0].layer, 0);
  EXPECT_NEAR(tight.items[0].target.kbps_f(), 400.0, 1.0);
  // Small tiles: no viewer wants 640, so no high copy even with budget.
  StreamAllocation small = p.allocate(DataRate::kbps(850), 320, false);
  ASSERT_EQ(small.items.size(), 1u);
}

TEST(ProfileTest, MeetUltraLowVariantShrinksLowCopy) {
  VcaProfile p = vca_profile("meet");
  StreamAllocation a = p.allocate(DataRate::kbps(850), 1280, true);
  EXPECT_NEAR(a.items[0].target.kbps_f(), 110.0, 1.0);
  EXPECT_TRUE(a.items[0].ultra_low);
}

TEST(ProfileTest, ZoomLayerActivationFollowsBudgetAndWidth) {
  VcaProfile p = vca_profile("zoom");
  // Full budget, big window: all three layers.
  EXPECT_EQ(p.allocate(DataRate::kbps(680), 1280, false).items.size(), 3u);
  // Small tile: top (720p) layer gated out even with budget.
  EXPECT_EQ(p.allocate(DataRate::kbps(680), 320, false).items.size(), 2u);
  // Tiny budget: base layer only.
  EXPECT_EQ(p.allocate(DataRate::kbps(150), 1280, false).items.size(), 1u);
}

TEST(ProfileTest, ZoomTopLayerAbsorbsRemainder) {
  VcaProfile p = vca_profile("zoom");
  StreamAllocation a = p.allocate(DataRate::kbps(680), 1280, false);
  DataRate total;
  for (const auto& i : a.items) total = total + i.target;
  EXPECT_NEAR(total.kbps_f(), 680.0, 40.0);
}

TEST(ProfileTest, TeamsWidthRateCapLadder) {
  VcaProfile p = vca_profile("teams");
  EXPECT_GT(p.width_rate_cap(1280).kbps_f(), p.width_rate_cap(640).kbps_f());
  EXPECT_GT(p.width_rate_cap(640).kbps_f(), p.width_rate_cap(320).kbps_f());
  // Allocation respects the cap for small tiles.
  StreamAllocation a = p.allocate(DataRate::kbps(1300), 640, false);
  ASSERT_EQ(a.items.size(), 1u);
  EXPECT_LE(a.items[0].target.kbps_f(), 901.0);
}

TEST(ProfileTest, TeamsPolicyWidthBugBelow320kbps) {
  VcaProfile p = vca_profile("teams");
  EncoderPolicy policy = p.policy_for_layer(0);
  // Healthy ladder above the bug zone...
  EXPECT_LE(policy(DataRate::kbps(400), 1280).width, 480);
  // ...but at ~0.3 Mbps the width jumps back up (emulated §3.2 bug).
  EXPECT_EQ(policy(DataRate::kbps(300), 1280).width, 960);
}

// Regression: the Meet allocator used to read layers[1] unconditionally,
// which is out of bounds for the single-layer meet-nosimulcast ablation
// variant (heap-buffer-overflow under ASan; items referencing a layer the
// client never created). A single-layer Meet profile must only ever emit
// layer-0 items.
TEST(ProfileTest, MeetSingleLayerVariantAllocatesOnlyLayerZero) {
  VcaProfile p = vca_profile("meet-nosimulcast");
  ASSERT_EQ(p.layers.size(), 1u);
  for (int kbps : {100, 460, 850, 2000}) {
    for (int width : {320, 640, 1280}) {
      StreamAllocation a = p.allocate(DataRate::kbps(kbps), width, false);
      ASSERT_EQ(a.items.size(), 1u);
      EXPECT_EQ(a.items[0].layer, 0);
      EXPECT_LE(a.items[0].target.bits_per_sec(),
                p.layers[0].rate.bits_per_sec());
    }
  }
}

TEST(ProfileTest, WebexLadderMatchesChang) {
  VcaProfile p = vca_profile("webex");
  EXPECT_EQ(p.kind, VcaKind::kWebex);
  EXPECT_EQ(p.arch, Architecture::kSimulcastSfu);
  ASSERT_EQ(p.layers.size(), 3u);
  EXPECT_EQ(p.layers[0].width, 320);
  EXPECT_EQ(p.layers[1].width, 640);
  EXPECT_EQ(p.layers[2].width, 1280);
}

TEST(ProfileTest, WebexLoneBaseKeepsBootstrapHeadroom) {
  VcaProfile p = vca_profile("webex");
  // A low grant with big tiles: only the base copy is affordable, but it
  // may overspend its 200k nominal (up to 450k) so the REMB estimate —
  // clamped to 1.5x measured arrival — can climb past the 640p rung's
  // activation point. Without this the ladder wedges at the bottom.
  StreamAllocation a = p.allocate(DataRate::kbps(370), 1280, false);
  ASSERT_EQ(a.items.size(), 1u);
  EXPECT_EQ(a.items[0].layer, 0);
  // Spends the whole grant, well past the 1.2x-nominal (240k) cap that
  // applies when the ladder is width-capped instead.
  EXPECT_NEAR(a.items[0].target.kbps_f(), 370.0, 1.0);
}

// The other side of the same coin, pinned at the tile widths a webex
// gallery requests at N = 7, 8 (320-wide) and N = 25, 49 (180-wide): when
// small tiles cap the ladder at the base there is nothing to bootstrap
// toward, so a huge grant must NOT inflate the lone copy past ~1.2x
// nominal (the regression that made 12-party downlink exceed 4-party).
TEST(ProfileTest, WebexLargeGalleryBaseStaysNearNominal) {
  VcaProfile p = vca_profile("webex");
  for (int n : {7, 8, 25, 49}) {
    int w = requested_width(VcaKind::kWebex, n, ViewMode::kGallery, false);
    StreamAllocation a = p.allocate(DataRate::kbps(5000), w, false);
    ASSERT_EQ(a.items.size(), 1u) << "n=" << n;
    EXPECT_EQ(a.items[0].layer, 0) << "n=" << n;
    EXPECT_LE(a.items[0].target.kbps_f(), 241.0) << "n=" << n;
    EXPECT_GE(a.items[0].target.kbps_f(), 60.0) << "n=" << n;
  }
}

// Meet's zero-spend branch at 7+ participants (every viewer's tile is
// small, the high copy is gated out), pinned at the sweep's N values.
TEST(ProfileTest, MeetSmallTileBranchPinnedAtLargeN) {
  VcaProfile p = vca_profile("meet");
  for (int n : {7, 8, 25, 49}) {
    int w = requested_width(VcaKind::kMeet, n, ViewMode::kGallery, false);
    ASSERT_EQ(w, 320) << "n=" << n;
    // A grant below the 80 kbps quality floor is spent exactly, never
    // exceeded: the floor only applies when the grant affords it.
    StreamAllocation tiny = p.allocate(DataRate::kbps(60), w, false);
    ASSERT_EQ(tiny.items.size(), 1u) << "n=" << n;
    EXPECT_NEAR(tiny.items[0].target.kbps_f(), 60.0, 1.0) << "n=" << n;
    // Ultra-low signalled (large gallery, starved per-feed shares): the
    // small-tile cap shrinks from 180 to 110 kbps.
    StreamAllocation ul = p.allocate(DataRate::kbps(850), w, true);
    ASSERT_EQ(ul.items.size(), 1u) << "n=" << n;
    EXPECT_LE(ul.items[0].target.kbps_f(), 111.0) << "n=" << n;
    // Plain small-tile publish caps at 180 kbps no matter the grant.
    StreamAllocation plain = p.allocate(DataRate::kbps(850), w, false);
    ASSERT_EQ(plain.items.size(), 1u) << "n=" << n;
    EXPECT_LE(plain.items[0].target.kbps_f(), 181.0) << "n=" << n;
  }
}

TEST(ProfileTest, MeetPoliciesMatchFig2Shapes) {
  VcaProfile p = vca_profile("meet");
  EncoderPolicy low = p.policy_for_layer(0);
  EncoderPolicy high = p.policy_for_layer(1);
  // Low copy is 320 wide; the ultra-low variant reports the QP 33 quirk.
  EXPECT_EQ(low(DataRate::kbps(150), 320).width, 320);
  EXPECT_EQ(low(DataRate::kbps(150), 320).qp, 38);
  EXPECT_EQ(low(DataRate::kbps(110), 320).qp, 33);
  // High copy degrades QP-first as its budget shrinks, fps stays 30.
  EncoderSettings full = high(DataRate::kbps(700), 1280);
  EncoderSettings squeezed = high(DataRate::kbps(400), 1280);
  EXPECT_GT(squeezed.qp, full.qp);
  EXPECT_DOUBLE_EQ(squeezed.fps, 30.0);
}

}  // namespace
}  // namespace vca
