#include <gtest/gtest.h>

#include "core/timeseries.h"

namespace vca {
namespace {

TimePoint at_s(double s) { return TimePoint::from_ns(static_cast<int64_t>(s * 1e9)); }

TEST(TimeSeriesTest, ValuesBetween) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.push(at_s(i), i);
  auto v = ts.values_between(at_s(2), at_s(5));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2);
  EXPECT_DOUBLE_EQ(v[2], 4);
}

TEST(TimeSeriesTest, MeanBetween) {
  TimeSeries ts;
  ts.push(at_s(0), 1.0);
  ts.push(at_s(1), 3.0);
  ts.push(at_s(2), 5.0);
  EXPECT_DOUBLE_EQ(*ts.mean_between(at_s(0), at_s(3)), 3.0);
  EXPECT_FALSE(ts.mean_between(at_s(10), at_s(20)).has_value());
}

TEST(TimeSeriesTest, RollingMedianSmoothsSpike) {
  TimeSeries ts;
  for (int i = 0; i < 20; ++i) ts.push(at_s(i), i == 10 ? 100.0 : 1.0);
  TimeSeries rm = ts.rolling_median(Duration::seconds(5));
  // The single spike should never dominate a 5-sample median window.
  for (const auto& s : rm.samples()) EXPECT_DOUBLE_EQ(s.value, 1.0);
}

TEST(TimeSeriesTest, RollingMedianTracksLevelShift) {
  TimeSeries ts;
  for (int i = 0; i < 30; ++i) ts.push(at_s(i), i < 15 ? 1.0 : 9.0);
  TimeSeries rm = ts.rolling_median(Duration::seconds(4));
  EXPECT_DOUBLE_EQ(rm.samples().back().value, 9.0);
  EXPECT_DOUBLE_EQ(rm.samples().front().value, 1.0);
}

TEST(RateMeterTest, SingleBucketRate) {
  RateMeter m(Duration::seconds(1));
  m.on_bytes(at_s(0.2), 125'000);  // 1 Mbit in 1 s bucket
  TimeSeries r = m.rates();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r.samples()[0].value, 1.0, 1e-9);
}

TEST(RateMeterTest, IdleBucketsAreZero) {
  RateMeter m(Duration::seconds(1));
  m.on_bytes(at_s(0.5), 125'000);
  m.on_bytes(at_s(3.5), 125'000);
  TimeSeries r = m.rates();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_NEAR(r.samples()[1].value, 0.0, 1e-9);
  EXPECT_NEAR(r.samples()[2].value, 0.0, 1e-9);
  EXPECT_NEAR(r.samples()[3].value, 1.0, 1e-9);
}

TEST(RateMeterTest, MeanRateOverWindow) {
  RateMeter m(Duration::seconds(1));
  for (int i = 0; i < 10; ++i) m.on_bytes(at_s(i + 0.5), 250'000);  // 2 Mbps
  DataRate mean = m.mean_rate(at_s(0), at_s(10));
  EXPECT_NEAR(mean.mbps_f(), 2.0, 1e-9);
  EXPECT_EQ(m.total_bytes(), 2'500'000);
}

TEST(RateMeterTest, SubSecondBuckets) {
  RateMeter m(Duration::millis(500));
  m.on_bytes(at_s(0.1), 62'500);  // 1 Mbps over 0.5 s
  TimeSeries r = m.rates();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r.samples()[0].value, 1.0, 1e-9);
}

}  // namespace
}  // namespace vca
