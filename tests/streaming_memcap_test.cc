// The hard acceptance gate for the streaming service: a >=100k-distinct-
// flow churn workload processed under a fixed memory cap, with peak live
// heap measured by the allocation-counting operator new/delete
// (vca_perf_alloc) and asserted below the configured bound.
#include <gtest/gtest.h>

#include "core/perf.h"
#include "streaming/analyzer.h"
#include "streaming/synth.h"

namespace vca {
namespace {

TEST(StreamingMemcapTest, ChurnWithHundredThousandFlowsStaysUnderCap) {
  ASSERT_TRUE(perf::alloc_tracking_active())
      << "this test must link vca_perf_alloc";

  SynthChurnConfig scfg;  // defaults: 100k mice + 10k mid + 200 hot, 30 s
  SynthChurn gen(scfg);
  ASSERT_GE(gen.total_flows(), 100'000);

  StreamingConfig cfg;
  cfg.memory_cap_bytes = 32 * 1024 * 1024;
  cfg.promote_packets = 8;

  // Baseline after the generator (whose fixed arrays are workload, not
  // analyzer) and before the analyzer exists: every byte the analyzer
  // ever holds is in the delta.
  int64_t baseline = perf::live_bytes();
  perf::reset_peak_live();

  int64_t final_reports = 0, window_reports = 0, window_frames = 0;
  StreamingAnalyzer::Stats stats;
  FlowTable::Stats table_stats;
  size_t max_flows = 0;
  {
    StreamingAnalyzer an(cfg);
    // Service posture: sinks, not accumulation.
    an.set_report_sink([&](const StreamReport&) { ++final_reports; });
    an.set_window_sink([&](const WindowReport& w) {
      ++window_reports;
      window_frames += w.frames;
    });
    ParsedPacket p;
    while (gen.next(&p)) an.on_parsed(p);
    an.finish();

    int64_t peak_delta = perf::peak_live_bytes() - baseline;
    EXPECT_LE(peak_delta, static_cast<int64_t>(cfg.memory_cap_bytes))
        << "peak " << (peak_delta >> 20) << " MB over a "
        << (cfg.memory_cap_bytes >> 20) << " MB cap";
    EXPECT_GT(peak_delta, 0);

    stats = an.stats();
    table_stats = an.table().stats();
    max_flows = an.table().max_flows();
  }

  // The workload exercised every flow-table path.
  EXPECT_GT(stats.packets, 500'000);
  EXPECT_GT(table_stats.sketch_only_packets, 100'000);  // mice stayed out
  // Promotions exceed the table's capacity, so LRU churn occurred...
  EXPECT_GT(table_stats.promoted, static_cast<int64_t>(max_flows));
  EXPECT_GT(table_stats.evicted_lru + table_stats.evicted_idle, 0);
  EXPECT_EQ(table_stats.peak_live_flows, max_flows);
  // ...and every promoted generation produced exactly one final report.
  EXPECT_EQ(final_reports, table_stats.promoted);
  // Hot flows kept the windowed estimators fed.
  EXPECT_GT(window_reports, 0);
  EXPECT_GT(window_frames, 0);
}

}  // namespace
}  // namespace vca
