#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "net/link.h"
#include "stats/capture.h"
#include "stats/table.h"

namespace vca {
namespace {

using namespace vca::literals;

Packet pkt(FlowId flow, int bytes) {
  Packet p;
  p.flow = flow;
  p.size_bytes = bytes;
  return p;
}

TEST(CaptureTest, UnfilteredSeesEverything) {
  FlowCapture cap;
  auto tap = cap.tap();
  tap(pkt(1, 100), TimePoint::zero());
  tap(pkt(2, 200), TimePoint::zero());
  EXPECT_EQ(cap.total_bytes(), 300);
}

TEST(CaptureTest, FlowFilter) {
  FlowCapture cap;
  cap.add_flow(7);
  auto tap = cap.tap();
  tap(pkt(7, 100), TimePoint::zero());
  tap(pkt(8, 200), TimePoint::zero());
  EXPECT_EQ(cap.total_bytes(), 100);
}

TEST(CaptureTest, RangeFilterInclusive) {
  FlowCapture cap;
  cap.add_flow_range(1000, 1999);
  EXPECT_TRUE(cap.matches(1000));
  EXPECT_TRUE(cap.matches(1999));
  EXPECT_FALSE(cap.matches(999));
  EXPECT_FALSE(cap.matches(2000));
}

TEST(CaptureTest, MixedFilters) {
  FlowCapture cap;
  cap.add_flow(5);
  cap.add_flow_range(100, 200);
  EXPECT_TRUE(cap.matches(5));
  EXPECT_TRUE(cap.matches(150));
  EXPECT_FALSE(cap.matches(6));
}

TEST(CaptureTest, TapFanoutFeedsAllCaptures) {
  EventScheduler sched;
  Link link(&sched, "l", {});
  struct Sink : PacketSink {
    void deliver(Packet) override {}
  } sink;
  link.set_sink(&sink);

  FlowCapture a, b;
  b.add_flow(2);
  TapFanout fan;
  fan.add(a.tap());
  fan.add(b.tap());
  link.set_tap(fan.tap());

  link.deliver(pkt(1, 100));
  link.deliver(pkt(2, 200));
  sched.run_all();
  EXPECT_EQ(a.total_bytes(), 300);
  EXPECT_EQ(b.total_bytes(), 200);
}

TEST(TextTableTest, AlignsAndRendersAllRows) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"longer-cell", "2"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456), "1.23");
  EXPECT_EQ(fmt(1.23456, 4), "1.2346");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace vca
