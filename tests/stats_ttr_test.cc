#include <gtest/gtest.h>

#include "stats/ttr.h"

namespace vca {
namespace {

TimePoint at_s(double s) { return TimePoint::from_ns(static_cast<int64_t>(s * 1e9)); }

// Build a bitrate series: nominal until disruption, `low` during it, then
// a linear ramp back over `ramp_s` seconds after it ends.
TimeSeries make_series(double nominal, double low, double start_s, double end_s,
                       double ramp_s, double total_s = 300) {
  TimeSeries ts;
  for (double t = 1; t <= total_s; t += 1.0) {
    double v;
    if (t < start_s) {
      v = nominal;
    } else if (t < end_s) {
      v = low;
    } else {
      double since = t - end_s;
      v = since >= ramp_s ? nominal : low + (nominal - low) * since / ramp_s;
    }
    ts.push(at_s(t), v);
  }
  return ts;
}

TEST(TtrTest, InstantRecoveryIsFast) {
  TimeSeries ts = make_series(1.0, 0.2, 60, 90, /*ramp_s=*/1);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  ASSERT_TRUE(r.ttr.has_value());
  EXPECT_NEAR(r.nominal_mbps, 1.0, 0.01);
  // Rolling 5s median needs a few post-recovery samples to flip.
  EXPECT_LT(r.ttr->seconds(), 6.0);
}

TEST(TtrTest, SlowRampMeasuredCorrectly) {
  TimeSeries ts = make_series(1.0, 0.2, 60, 90, /*ramp_s=*/30);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  ASSERT_TRUE(r.ttr.has_value());
  EXPECT_GT(r.ttr->seconds(), 25.0);
  EXPECT_LT(r.ttr->seconds(), 40.0);
}

TEST(TtrTest, NeverRecoversIsCensored) {
  TimeSeries ts = make_series(1.0, 0.2, 60, 90, /*ramp_s=*/1e9);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  EXPECT_FALSE(r.ttr.has_value());
  EXPECT_NEAR(r.nominal_mbps, 1.0, 0.01);
}

TEST(TtrTest, RecoveryFractionLowersBar) {
  TimeSeries ts = make_series(1.0, 0.2, 60, 90, /*ramp_s=*/40);
  TtrResult strict = time_to_recovery(ts, at_s(60), at_s(90),
                                      Duration::seconds(5), 1.0);
  TtrResult lenient = time_to_recovery(ts, at_s(60), at_s(90),
                                       Duration::seconds(5), 0.8);
  ASSERT_TRUE(strict.ttr.has_value());
  ASSERT_TRUE(lenient.ttr.has_value());
  EXPECT_LT(lenient.ttr->seconds(), strict.ttr->seconds());
}

TEST(TtrTest, NoisyNominalUsesMedian) {
  TimeSeries ts;
  // Nominal alternates 0.9/1.1 (median 1.0); disruption 60-90; ramp 10 s.
  for (int t = 1; t <= 200; ++t) {
    double v;
    if (t < 60) {
      v = t % 2 == 0 ? 0.9 : 1.1;
    } else if (t < 90) {
      v = 0.1;
    } else {
      v = std::min(1.0, 0.1 + (t - 90) * 0.09);
    }
    ts.push(at_s(t), v);
  }
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  EXPECT_NEAR(r.nominal_mbps, 1.0, 0.15);
  ASSERT_TRUE(r.ttr.has_value());
}

TEST(TtrTest, EmptyPreWindowGivesZeroNominal) {
  TimeSeries ts;
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  EXPECT_EQ(r.nominal_mbps, 0.0);
  EXPECT_FALSE(r.ttr.has_value());
}

TEST(TtrTest, DisruptionEntirelyPastLastSampleIsCensored) {
  // The series ends before the disruption even begins: there is no
  // pre-disruption window to define nominal from and no post-disruption
  // sample to recover at. Must return the zero/censored result, not read
  // past the end.
  TimeSeries ts;
  for (int t = 1; t <= 100; ++t) ts.push(at_s(t), 1.0);
  TtrResult r = time_to_recovery(ts, at_s(150), at_s(160));
  EXPECT_EQ(r.nominal_mbps, 0.0);
  EXPECT_FALSE(r.ttr.has_value());
}

TEST(TtrTest, DisruptionEndPastLastSampleIsCensored) {
  // Nominal is well-defined (the series covers the pre-window) but the
  // call ended before the disruption did: recovery can never be observed.
  TimeSeries ts;
  for (int t = 1; t <= 100; ++t) ts.push(at_s(t), 1.0);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(120));
  EXPECT_NEAR(r.nominal_mbps, 1.0, 0.01);
  EXPECT_FALSE(r.ttr.has_value());
}

TEST(TtrTest, SingleSampleSeries) {
  TimeSeries ts;
  ts.push(at_s(30), 1.0);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(90));
  EXPECT_NEAR(r.nominal_mbps, 1.0, 0.01);
  EXPECT_FALSE(r.ttr.has_value());
}

TEST(TtrTest, ZeroDuringOutageStillRecovers) {
  // An outage (rate -> 0, not merely shaped down) produces hard zeros in
  // the series; the rolling median must climb out of them after restore.
  TimeSeries ts = make_series(1.0, 0.0, 60, 70, /*ramp_s=*/5, 200);
  TtrResult r = time_to_recovery(ts, at_s(60), at_s(70),
                                 Duration::seconds(5), 0.95);
  ASSERT_TRUE(r.ttr.has_value());
  EXPECT_LT(r.ttr->seconds(), 15.0);
}

}  // namespace
}  // namespace vca
