#include <gtest/gtest.h>

#include <sstream>

#include "stats/trace_writer.h"

namespace vca {
namespace {

TimePoint at_s(double s) { return TimePoint::from_ns(static_cast<int64_t>(s * 1e9)); }

TEST(TraceWriterTest, SingleSeriesCsv) {
  TimeSeries ts;
  ts.push(at_s(1), 0.5);
  ts.push(at_s(2), 1.5);
  std::ostringstream os;
  TraceWriter::write_series(os, {"rate"}, {&ts});
  std::string out = os.str();
  EXPECT_NE(out.find("t_s,rate"), std::string::npos);
  EXPECT_NE(out.find("1.0000,0.5000"), std::string::npos);
  EXPECT_NE(out.find("2.0000,1.5000"), std::string::npos);
}

TEST(TraceWriterTest, MergesMisalignedSeries) {
  TimeSeries a, b;
  a.push(at_s(1), 1.0);
  a.push(at_s(2), 2.0);
  b.push(at_s(2), 20.0);
  b.push(at_s(3), 30.0);
  std::ostringstream os;
  TraceWriter::write_series(os, {"a", "b"}, {&a, &b});
  std::string out = os.str();
  // t=1 has no b value; t=3 has no a value.
  EXPECT_NE(out.find("1.0000,1.0000,\n"), std::string::npos);
  EXPECT_NE(out.find("2.0000,2.0000,20.0000"), std::string::npos);
  EXPECT_NE(out.find("3.0000,,30.0000"), std::string::npos);
}

TEST(TraceWriterTest, StatsCsvHasAllColumns) {
  std::vector<SecondStats> stats;
  SecondStats s;
  s.at = at_s(1);
  s.fps = 30;
  s.avg_qp = 32.5;
  s.width = 640;
  s.freeze_ms = 150;
  stats.push_back(s);
  std::ostringstream os;
  TraceWriter::write_stats(os, stats);
  std::string out = os.str();
  EXPECT_NE(out.find("t_s,fps,avg_qp,width,freeze_ms"), std::string::npos);
  EXPECT_NE(out.find("640"), std::string::npos);
  EXPECT_NE(out.find("150"), std::string::npos);
}

TEST(TraceWriterTest, EmptySeriesHeaderOnly) {
  TimeSeries ts;
  std::ostringstream os;
  TraceWriter::write_series(os, {"x"}, {&ts});
  EXPECT_EQ(os.str(), "t_s,x\n");
}

}  // namespace
}  // namespace vca
