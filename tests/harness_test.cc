// Tests for the topology builder and the experiment runners (smoke-level:
// the runners execute whole experiments, so these double as end-to-end
// integration tests of every module at once).
#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "vca/profile.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(NetworkTest, DirectHostsRoundTrip) {
  Network net;
  auto a = net.add_host("a");
  auto b = net.add_host("b");
  int got = 0;
  b.host->register_flow(1, [&](Packet) { ++got; });
  Packet p;
  p.flow = 1;
  p.dst = b.host->id();
  p.size_bytes = 500;
  a.host->send(p);
  net.sched().run_all();
  EXPECT_EQ(got, 1);
}

TEST(NetworkTest, SegmentSharesOneBottleneck) {
  Network net;
  auto seg = net.add_segment(DataRate::mbps(1));
  auto c1 = net.add_host_on_segment(seg, "c1");
  auto f1 = net.add_host_on_segment(seg, "f1");
  auto server = net.add_host("server");

  // Both segment hosts send to the server; the shared uplink caps the sum.
  int64_t received = 0;
  server.host->register_flow(1, [&](Packet pk) { received += pk.size_bytes; });
  for (int i = 0; i < 2000; ++i) {
    // Offer ~4 Mbps against the 1 Mbps shared link.
    net.sched().schedule_at(
        TimePoint::zero() + Duration::millis(2 * i), [&, i] {
          Packet p;
          p.flow = 1;
          p.dst = server.host->id();
          p.size_bytes = 1000;
          (i % 2 == 0 ? c1.host : f1.host)->send(p);
        });
  }
  net.sched().run_until(TimePoint::zero() + 4_s);
  // 1 Mbps for ~4 s = ~500 kB, not the 2 MB offered.
  EXPECT_LT(received, 700'000);
  EXPECT_GT(received, 300'000);
}

TEST(NetworkTest, SegmentHostsReachEachOtherLocally) {
  Network net;
  auto seg = net.add_segment(DataRate::kbps(100));  // tiny shared link
  auto c1 = net.add_host_on_segment(seg, "c1");
  auto f1 = net.add_host_on_segment(seg, "f1");
  int got = 0;
  f1.host->register_flow(2, [&](Packet) { ++got; });
  Packet p;
  p.flow = 2;
  p.dst = f1.host->id();
  p.size_bytes = 10000;
  c1.host->send(p);
  net.sched().run_for(1_s);
  // Switch-local traffic must not cross the shared bottleneck.
  EXPECT_EQ(got, 1);
}

TEST(NetworkTest, ShapeAtChangesRateOnSchedule) {
  Network net;
  auto a = net.add_host("a", DataRate::mbps(10));
  net.shape_at(a.up, TimePoint::zero() + 1_s, DataRate::kbps(100));
  net.sched().run_until(TimePoint::zero() + 2_s);
  EXPECT_EQ(a.up->rate().kbps_f(), 100.0);
}

TEST(ScenarioTest, QueueSizingHasFloorsAndCeilings) {
  EXPECT_EQ(queue_bytes_for(DataRate::kbps(100)), 20'000);
  EXPECT_EQ(queue_bytes_for(DataRate::gbps(10)), 1'000'000);
  // 2 Mbps * 300 ms / 8 = 75 kB.
  EXPECT_EQ(queue_bytes_for(DataRate::mbps(2)), 75'000);
}

TEST(ScenarioTest, TwoPartySmokeAllProfiles) {
  for (const auto& name : all_profile_names()) {
    TwoPartyConfig cfg;
    cfg.profile = name;
    cfg.seed = 3;
    cfg.duration = Duration::seconds(60);
    TwoPartyResult r = run_two_party(cfg);
    EXPECT_GT(r.c1_up_mbps, 0.3) << name;
    EXPECT_LT(r.c1_up_mbps, 2.5) << name;
    EXPECT_GT(r.c1_received.median_fps, 10.0) << name;
  }
}

TEST(ScenarioTest, ShapingReducesUtilization) {
  TwoPartyConfig cfg;
  cfg.profile = "teams";
  cfg.seed = 3;
  cfg.duration = Duration::seconds(90);
  cfg.c1_up = DataRate::kbps(500);
  TwoPartyResult r = run_two_party(cfg);
  EXPECT_LT(r.c1_up_mbps, 0.55);
  EXPECT_GT(r.c1_up_mbps, 0.30);
}

TEST(ScenarioTest, DisruptionProducesTtr) {
  DisruptionConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 3;
  cfg.total = Duration::seconds(200);
  DisruptionResult r = run_disruption(cfg);
  EXPECT_GT(r.ttr.nominal_mbps, 0.5);
  ASSERT_TRUE(r.ttr.ttr.has_value());
  EXPECT_GT(r.ttr.ttr->seconds(), 1.0);
  EXPECT_LT(r.ttr.ttr->seconds(), 80.0);
}

TEST(ScenarioTest, CompetitionSharesSumBelowCapacity) {
  CompetitionConfig cfg;
  cfg.incumbent = "meet";
  cfg.competitor = CompetitorKind::kVca;
  cfg.competitor_profile = "zoom";
  cfg.seed = 3;
  CompetitionResult r = run_competition(cfg);
  EXPECT_LE(r.incumbent_up_share + r.competitor_up_share, 1.05);
  EXPECT_GT(r.incumbent_up_share + r.competitor_up_share, 0.5);
}

TEST(ScenarioTest, MultipartyRunsAtScale) {
  MultipartyConfig cfg;
  cfg.profile = "meet";
  cfg.participants = 6;
  cfg.seed = 3;
  cfg.duration = Duration::seconds(60);
  MultipartyResult r = run_multiparty(cfg);
  EXPECT_GT(r.c1_down_mbps, 0.5);  // several feeds' worth
  EXPECT_GT(r.c1_up_mbps, 0.1);
}

}  // namespace
}  // namespace vca
