#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "net/faults.h"
#include "vca/call.h"

namespace vca {
namespace {

// The ISSUE's acceptance scenario: a 10 s mid-call uplink outage must
// yield a finite reconnect time and a finite TTR for all three profiles.
class OutageRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(OutageRecovery, UplinkOutageReconnectsAndRecovers) {
  OutageConfig cfg;
  cfg.profile = GetParam();
  cfg.seed = 3;
  cfg.target = OutageTarget::kUplink;
  cfg.start = Duration::seconds(60);
  cfg.length = Duration::seconds(10);
  cfg.total = Duration::seconds(180);
  OutageResult r = run_outage(cfg);

  const ResilienceSpec& rs = vca_profile(cfg.profile).resilience;
  // The watchdog noticed, within its configured timeout (+ a tick or two
  // of slack for the feedback that was already in flight).
  ASSERT_TRUE(r.detect_delay.has_value()) << cfg.profile;
  EXPECT_GT(r.detect_delay->seconds(), 0.0) << cfg.profile;
  EXPECT_LT(r.detect_delay->seconds(), rs.media_timeout.seconds() + 3.0)
      << cfg.profile;

  // Reconnect happened after service came back, bounded by the probe
  // backoff ceiling plus queue-drain time.
  ASSERT_TRUE(r.reconnect_delay.has_value()) << cfg.profile;
  EXPECT_LT(r.reconnect_delay->seconds(),
            rs.keepalive_max.seconds() + 5.0)
      << cfg.profile;
  EXPECT_GE(r.reconnects, 1) << cfg.profile;

  // The media rate itself recovered to (95% of) nominal.
  ASSERT_TRUE(r.ttr.ttr.has_value()) << cfg.profile;
  EXPECT_GT(r.ttr.nominal_mbps, 0.2) << cfg.profile;
  EXPECT_LT(r.ttr.ttr->seconds(), 100.0) << cfg.profile;

  // And the simulation stayed internally consistent throughout.
  EXPECT_TRUE(r.invariant_violations.empty())
      << cfg.profile << ": " << r.invariant_violations.front();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, OutageRecovery,
                         ::testing::Values("zoom", "meet", "teams"));

TEST(OutageScenarioTest, ZoomReconnectsFasterThanTeams) {
  // The paper's §4 recovery ordering (Zoom most aggressive, Teams most
  // conservative) extends to outage reconnect: Zoom's watchdog and probe
  // schedule are tighter than Teams' in the profile data.
  auto run = [](const char* profile) {
    OutageConfig cfg;
    cfg.profile = profile;
    cfg.seed = 5;
    OutageResult r = run_outage(cfg);
    double detect = r.detect_delay ? r.detect_delay->seconds() : 1e9;
    double reconnect = r.reconnect_delay ? r.reconnect_delay->seconds() : 1e9;
    return detect + reconnect;
  };
  EXPECT_LT(run("zoom"), run("teams"));
}

TEST(OutageScenarioTest, SfuBlackoutDisconnectsAndRestartRecovers) {
  OutageConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 7;
  cfg.target = OutageTarget::kSfu;
  cfg.length = Duration::seconds(8);
  OutageResult r = run_outage(cfg);

  ASSERT_TRUE(r.detect_delay.has_value());
  ASSERT_TRUE(r.reconnect_delay.has_value());
  EXPECT_GE(r.reconnects, 1);
  EXPECT_TRUE(r.invariant_violations.empty());
}

TEST(OutageScenarioTest, DownlinkOutageAlsoTripsWatchdog) {
  // Downlink dark => no echoes and no feedback reach the client, so the
  // same watchdog fires even though its own uplink still works.
  OutageConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 11;
  cfg.target = OutageTarget::kDownlink;
  OutageResult r = run_outage(cfg);
  ASSERT_TRUE(r.detect_delay.has_value());
  ASSERT_TRUE(r.reconnect_delay.has_value());
  EXPECT_TRUE(r.invariant_violations.empty());
}

TEST(OutageScenarioTest, SustainedBurstLossDegradesToAudioOnly) {
  // Teams (the most shed-happy profile) under a long Gilbert-Elliott
  // burst-loss window: video goes away mid-storm, comes back after.
  Network net;
  auto sfu_ports = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                                Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1));
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1));

  Call::Config call_cfg;
  call_cfg.profile = vca_profile("teams");
  call_cfg.seed = 2;
  Call call(&net.sched(), sfu_ports.host, call_cfg);
  VcaClient* cl1 = call.add_client(c1.host);
  call.add_client(c2.host);

  TimePoint t0 = TimePoint::zero();
  FaultPlan plan;
  GilbertElliott ge;
  ge.p_good_to_bad = 0.08;
  ge.p_bad_to_good = 0.08;  // half the packets ride inside bursts
  ge.loss_bad = 0.75;
  plan.add_burst_loss(c1.up, t0 + Duration::seconds(40),
                      Duration::seconds(40), ge);
  plan.schedule(&net.sched());

  bool degraded_mid_storm = false;
  net.sched().schedule_at(t0 + Duration::seconds(75),
                          [&] { degraded_mid_storm = cl1->audio_only(); });

  call.start();
  net.sched().run_until(t0 + Duration::seconds(150));
  call.stop();

  EXPECT_TRUE(degraded_mid_storm);
  int degrades = 0, restores = 0;
  for (const auto& ev : cl1->resilience_events()) {
    if (ev.kind == ResilienceEventKind::kDegraded) ++degrades;
    if (ev.kind == ResilienceEventKind::kRestored) ++restores;
  }
  EXPECT_GE(degrades, 1);
  EXPECT_GE(restores, 1);
  EXPECT_FALSE(cl1->audio_only());  // clean again by the end
  EXPECT_EQ(net.enforce_invariants(), 0);
}

}  // namespace
}  // namespace vca
