// Integration tests: full calls over the simulated network.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "vca/call.h"

namespace vca {
namespace {

using namespace vca::literals;

struct CallRig {
  Network net;
  Network::HostPorts sfu, c1, c2;
  std::unique_ptr<Call> call;

  explicit CallRig(const std::string& profile, uint64_t seed = 1,
                   ViewMode mode = ViewMode::kGallery) {
    sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                       Duration::millis(8), 4 << 20);
    c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                      Duration::millis(2), 1 << 20);
    c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                      Duration::millis(2), 1 << 20);
    Call::Config cfg;
    cfg.profile = vca_profile(profile);
    cfg.seed = seed;
    cfg.mode = mode;
    call = std::make_unique<Call>(&net.sched(), sfu.host, cfg);
    call->add_client(c1.host);
    call->add_client(c2.host);
  }
};

TEST(CallTest, MediaFlowsBothWays) {
  CallRig rig("meet");
  FlowCapture* up = rig.net.capture(rig.c1.up);
  FlowCapture* down = rig.net.capture(rig.c1.down);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 60_s);
  rig.call->stop();
  EXPECT_GT(up->total_bytes(), 1'000'000);
  EXPECT_GT(down->total_bytes(), 1'000'000);
}

TEST(CallTest, FramesAreDecodedAtBothClients) {
  CallRig rig("zoom");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 30_s);
  rig.call->stop();
  for (size_t i = 0; i < 2; ++i) {
    const auto& feeds = rig.call->client(i)->feeds();
    ASSERT_EQ(feeds.size(), 1u);
    // ~30 fps for ~30 s, allowing startup slack.
    EXPECT_GT(feeds[0]->stats->total_frames(), 500);
  }
}

TEST(CallTest, UtilizationNearNominal) {
  // Regression guard on the Table 2 calibration (generous tolerances).
  struct Expect {
    const char* profile;
    double up_lo, up_hi;
  };
  for (const Expect& e : {Expect{"meet", 0.75, 1.15},
                          Expect{"zoom", 0.65, 1.05}}) {
    CallRig rig(e.profile, 42);
    FlowCapture* up = rig.net.capture(rig.c1.up);
    rig.call->start();
    rig.net.sched().run_until(TimePoint::zero() + 120_s);
    rig.call->stop();
    double mbps = up->mean_rate(TimePoint::zero() + 40_s,
                                TimePoint::zero() + 120_s)
                      .mbps_f();
    EXPECT_GT(mbps, e.up_lo) << e.profile;
    EXPECT_LT(mbps, e.up_hi) << e.profile;
  }
}

TEST(CallTest, StopSilencesClients) {
  CallRig rig("meet");
  FlowCapture* up = rig.net.capture(rig.c1.up);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 10_s);
  rig.call->stop();
  rig.net.sched().run_until(TimePoint::zero() + 12_s);
  int64_t bytes = up->total_bytes();
  rig.net.sched().run_until(TimePoint::zero() + 20_s);
  // Only residual RTCP may trickle; media must have stopped.
  EXPECT_LT(up->total_bytes() - bytes, 100'000);
}

TEST(CallTest, MeetSendsTwoSimulcastCopiesUnconstrained) {
  CallRig rig("meet");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 30_s);
  VcaClient* c1 = rig.call->client(0);
  const EncoderSettings* low = c1->layer_settings(0);
  const EncoderSettings* high = c1->layer_settings(1);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(low->width, 320);
  EXPECT_EQ(high->width, 640);
  rig.call->stop();
}

TEST(CallTest, ZoomDownstreamExceedsUpstreamViaServerFec) {
  CallRig rig("zoom", 9);
  FlowCapture* up = rig.net.capture(rig.c1.up);
  FlowCapture* down = rig.net.capture(rig.c1.down);
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 120_s);
  rig.call->stop();
  TimePoint from = TimePoint::zero() + 40_s;
  TimePoint to = TimePoint::zero() + 120_s;
  // §3.1 asymmetry: the SFU adds FEC downstream.
  EXPECT_GT(down->mean_rate(from, to).mbps_f(),
            up->mean_rate(from, to).mbps_f() * 1.05);
}

TEST(CallTest, TeamsRelaysAllowedRateEndToEnd) {
  CallRig rig("teams");
  rig.call->start();
  rig.net.sched().run_until(TimePoint::zero() + 40_s);
  // Unconstrained: allowed rate must not be the limiting factor.
  EXPECT_GT(rig.call->client(1)->current_target().mbps_f(), 0.9);
  // Shape C1's downlink hard; C2's sending rate must follow within ~15 s.
  rig.c1.down->set_rate(DataRate::kbps(300));
  rig.c1.down->set_queue_bytes(15'000);
  rig.net.sched().run_until(TimePoint::zero() + 70_s);
  EXPECT_LT(rig.call->client(1)->current_target().mbps_f(), 0.5);
  rig.call->stop();
}

TEST(CallTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    CallRig rig("meet", seed);
    FlowCapture* up = rig.net.capture(rig.c1.up);
    rig.call->start();
    rig.net.sched().run_until(TimePoint::zero() + 30_s);
    rig.call->stop();
    return up->total_bytes();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(CallTest, SpeakerModeRaisesPinnedUplink) {
  // Three-party call; everyone pins C1 -> its encode width request rises
  // and so does its uplink (§6.2).
  auto uplink_for = [](ViewMode mode) {
    Network net;
    auto sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                            Duration::millis(8), 4 << 20);
    Call::Config cfg;
    cfg.profile = vca_profile("zoom");
    cfg.seed = 5;
    cfg.mode = mode;
    cfg.pinned_client = 0;
    Call call(&net.sched(), sfu.host, cfg);
    std::vector<Network::HostPorts> ports;
    for (int i = 0; i < 5; ++i) {
      ports.push_back(net.add_host("c" + std::to_string(i)));
      call.add_client(ports.back().host);
    }
    FlowCapture* up = net.capture(ports[0].up);
    call.start();
    net.sched().run_until(TimePoint::zero() + 60_s);
    call.stop();
    return up->mean_rate(TimePoint::zero() + 30_s, TimePoint::zero() + 60_s)
        .mbps_f();
  };
  double gallery = uplink_for(ViewMode::kGallery);
  double speaker = uplink_for(ViewMode::kSpeaker);
  // Zoom at n=5 gallery has 320-wide tiles (~0.4 Mbps); pinning restores
  // the full ladder (~0.8+ Mbps).
  EXPECT_GT(speaker, gallery * 1.5);
}

}  // namespace
}  // namespace vca
