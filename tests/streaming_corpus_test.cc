// Corpus mode: pcap + label sidecar round-trips exactly and the labels
// match the live getStats()-derived truth, on a two-party call and on a
// 50-party conference.
#include "streaming/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/scenario.h"
#include "trace/pcap.h"

namespace vca {
namespace {

void check_round_trip(const std::vector<SecondStats>& truth,
                      const std::string& tag) {
  std::vector<LabelRow> rows = labels_from_seconds(truth);
  ASSERT_EQ(rows.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(rows[i].second, truth[i].at.ns() / 1'000'000'000);
    EXPECT_DOUBLE_EQ(rows[i].fps, truth[i].fps);
    EXPECT_DOUBLE_EQ(rows[i].qp, truth[i].avg_qp);
    EXPECT_EQ(rows[i].width, truth[i].width);
    EXPECT_DOUBLE_EQ(rows[i].freeze_ms, truth[i].freeze_ms);
  }

  std::string path = testing::TempDir() + "/labels_" + tag + ".txt";
  ASSERT_TRUE(write_labels_file(path, rows));
  std::vector<LabelRow> parsed;
  ASSERT_TRUE(read_labels_file(path, &parsed));
  std::remove(path.c_str());
  // Bit-exact round trip (doubles printed at max_digits10).
  EXPECT_EQ(parsed, rows);
}

TEST(StreamingCorpusTest, TwoPartyLabelsMatchGetStatsTruth) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 7;
  cfg.duration = Duration::seconds(45);
  cfg.capture_traces = true;
  std::string pcap = testing::TempDir() + "/corpus_2p.pcap";
  cfg.pcap_path = pcap;
  TwoPartyResult r = run_two_party(cfg);

  ASSERT_GT(r.c1_recv_seconds.size(), 30u);
  ASSERT_FALSE(r.c1_down_records.empty());
  // The pcap side of the corpus item is a real readable capture.
  bool ok = false;
  std::vector<PacketRecord> back = read_pcap_file(pcap, &ok);
  std::remove(pcap.c_str());
  ASSERT_TRUE(ok);
  EXPECT_EQ(back.size(), r.c1_down_records.size());

  check_round_trip(r.c1_recv_seconds, "2p");
  // Ground truth is live video: the labels carry real frame rates.
  double fps_sum = 0.0;
  for (const SecondStats& s : r.c1_recv_seconds) fps_sum += s.fps;
  EXPECT_GT(fps_sum / static_cast<double>(r.c1_recv_seconds.size()), 10.0);
}

TEST(StreamingCorpusTest, FiftyPartyConferenceLabelsMatchGetStatsTruth) {
  ConferenceConfig cfg;
  cfg.profile = "webex";
  cfg.participants = 50;
  cfg.regions = 2;
  cfg.seed = 9;
  cfg.duration = Duration::seconds(30);
  cfg.measure_from = Duration::seconds(10);
  cfg.capture_traces = true;
  std::string pcap = testing::TempDir() + "/corpus_conf.pcap";
  cfg.pcap_path = pcap;
  ConferenceResult r = run_conference(cfg);
  EXPECT_TRUE(r.invariant_violations.empty());

  ASSERT_FALSE(r.c1_down_records.empty());
  ASSERT_GT(r.c1_recv_seconds.size(), 20u);
  bool ok = false;
  std::vector<PacketRecord> back = read_pcap_file(pcap, &ok);
  std::remove(pcap.c_str());
  ASSERT_TRUE(ok);
  EXPECT_EQ(back.size(), r.c1_down_records.size());

  check_round_trip(r.c1_recv_seconds, "conf");
}

}  // namespace
}  // namespace vca
