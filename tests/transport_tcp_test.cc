#include <gtest/gtest.h>

#include "sim_fixture.h"
#include "transport/tcp.h"

namespace vca {
namespace {

using namespace vca::literals;
using vca::testing::TwoHostNet;

constexpr FlowId kTcp = 20;

struct TcpPair {
  TcpSender sender;
  TcpReceiverEndpoint receiver;

  TcpPair(TwoHostNet& n, TcpSender::Config cfg = {})
      : sender(&n.sched, &n.c1,
               [&] {
                 cfg.flow = kTcp;
                 cfg.dst = n.c2.id();
                 return cfg;
               }()),
        receiver(&n.sched, &n.c2, {.flow = kTcp, .peer = n.c1.id()}) {
    n.c2.register_flow(kTcp, [this](Packet p) { receiver.handle_packet(p); });
    n.c1.register_flow(kTcp, [this](Packet p) { sender.handle_packet(p); });
  }
};

TEST(TcpTest, TransfersExactByteCount) {
  TwoHostNet net(DataRate::mbps(10));
  TcpPair t(net);
  t.sender.write(100'000);
  net.sched.run_for(5_s);
  EXPECT_EQ(t.receiver.delivered_bytes(), 100'000);
  EXPECT_EQ(t.sender.acked_bytes(), 100'000);
  EXPECT_TRUE(t.sender.idle());
}

TEST(TcpTest, UnlimitedFlowSaturatesLink) {
  TwoHostNet net(DataRate::mbps(5));
  TcpSender::Config cfg;
  cfg.unlimited = true;
  TcpPair t(net, cfg);
  net.sched.run_for(10_s);
  // Goodput within 20% of the 5 Mbps bottleneck after slow start.
  double mbps = static_cast<double>(t.receiver.delivered_bytes()) * 8 / 10e6;
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 5.2);
}

TEST(TcpTest, RecoversFromSingleLoss) {
  TwoHostNet net(DataRate::mbps(10));
  TcpPair t(net);
  // Drop one specific data packet by intercepting the flow.
  int count = 0;
  net.c2.register_flow(kTcp, [&](Packet p) {
    if (++count == 20) return;
    t.receiver.handle_packet(p);
  });
  t.sender.write(300'000);
  net.sched.run_for(10_s);
  EXPECT_EQ(t.receiver.delivered_bytes(), 300'000);
  EXPECT_GT(t.sender.retransmits(), 0);
}

TEST(TcpTest, SlowStartDoublesWindow) {
  TwoHostNet net(DataRate::mbps(100));
  TcpSender::Config cfg;
  cfg.unlimited = true;
  TcpPair t(net, cfg);
  double cwnd_start = t.sender.cwnd_packets();
  net.sched.run_for(500_ms);
  EXPECT_GT(t.sender.cwnd_packets(), cwnd_start * 2);
}

TEST(TcpTest, CongestionReducesWindow) {
  // Tight bottleneck with a small queue: losses are guaranteed.
  TwoHostNet net(DataRate::mbps(2), Duration::millis(5), 20'000);
  TcpSender::Config cfg;
  cfg.unlimited = true;
  TcpPair t(net, cfg);
  net.sched.run_for(15_s);
  EXPECT_GT(t.sender.retransmits(), 0);
  // cwnd should have settled near the BDP+queue (~(2Mbps*20ms + 20kB)/1.5kB
  // ~= 17 packets), far below the unbounded slow-start trajectory.
  EXPECT_LT(t.sender.cwnd_packets(), 100.0);
}

TEST(TcpTest, RtoFiresAfterBlackout) {
  TwoHostNet net(DataRate::mbps(10));
  TcpPair t(net);
  bool blackhole = false;
  net.c2.register_flow(kTcp, [&](Packet p) {
    if (blackhole) return;
    t.receiver.handle_packet(p);
  });
  t.sender.write(50'000);
  net.sched.schedule(50_ms, [&] { blackhole = true; });
  net.sched.schedule(2_s, [&] { blackhole = false; });
  net.sched.run_for(20_s);
  EXPECT_GT(t.sender.timeouts(), 0);
  EXPECT_EQ(t.receiver.delivered_bytes(), 50'000);
}

TEST(TcpTest, SrttTracksPathRtt) {
  TwoHostNet net(DataRate::mbps(50), Duration::millis(10));
  TcpSender::Config cfg;
  cfg.unlimited = true;
  TcpPair t(net, cfg);
  net.sched.run_for(2_s);
  // Path RTT is 4 x 10 ms propagation plus serialization/queueing.
  EXPECT_GT(t.sender.srtt().ms(), 30);
  EXPECT_LT(t.sender.srtt().ms(), 200);
}

TEST(TcpTest, TwoFlowsShareBottleneckRoughlyFairly) {
  // Both senders on c1 side; shared 4 Mbps bottleneck at c2 downlink.
  TwoHostNet net(DataRate::mbps(100), Duration::millis(5), 100'000);
  net.c2_down->set_rate(DataRate::mbps(4));
  TcpSender::Config cfg;
  cfg.unlimited = true;

  TcpSender s1(&net.sched, &net.c1, {.flow = 31, .dst = 2, .unlimited = true});
  TcpReceiverEndpoint r1(&net.sched, &net.c2, {.flow = 31, .peer = 1});
  TcpSender s2(&net.sched, &net.c1, {.flow = 32, .dst = 2, .unlimited = true});
  TcpReceiverEndpoint r2(&net.sched, &net.c2, {.flow = 32, .peer = 1});
  net.c2.register_flow(31, [&](Packet p) { r1.handle_packet(p); });
  net.c2.register_flow(32, [&](Packet p) { r2.handle_packet(p); });
  net.c1.register_flow(31, [&](Packet p) { s1.handle_packet(p); });
  net.c1.register_flow(32, [&](Packet p) { s2.handle_packet(p); });

  net.sched.run_for(60_s);
  double g1 = static_cast<double>(r1.delivered_bytes());
  double g2 = static_cast<double>(r2.delivered_bytes());
  double share = g1 / (g1 + g2);
  EXPECT_GT(share, 0.30);
  EXPECT_LT(share, 0.70);
  // Combined goodput should approach the bottleneck.
  double total_mbps = (g1 + g2) * 8 / 60e6;
  EXPECT_GT(total_mbps, 3.2);
}

TEST(TcpTest, StopHaltsTransmission) {
  TwoHostNet net(DataRate::mbps(10));
  TcpSender::Config cfg;
  cfg.unlimited = true;
  TcpPair t(net, cfg);
  net.sched.run_for(1_s);
  t.sender.stop();
  int64_t sent = t.sender.sent_bytes();
  net.sched.run_for(2_s);
  EXPECT_EQ(t.sender.sent_bytes(), sent);
}

}  // namespace
}  // namespace vca
