#include <gtest/gtest.h>

#include <vector>

#include "analysis/inference.h"
#include "analysis/parse.h"
#include "core/scheduler.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "net/faults.h"
#include "net/link.h"
#include "trace/recorder.h"

namespace vca {
namespace {

// ---------------------------------------------------------------------------
// FrameSegmenter unit tests.
// ---------------------------------------------------------------------------

ParsedPacket rtp(uint16_t seq, uint32_t ts, int64_t at_ns, int ip_bytes = 1000) {
  ParsedPacket p;
  p.ts_ns = at_ns;
  p.ip_bytes = ip_bytes;
  p.is_rtp = true;
  p.seq = seq;
  p.rtp_timestamp = ts;
  return p;
}

TEST(FrameSegmenterTest, GroupsByTimestamp) {
  FrameSegmenter seg;
  seg.on_packet(rtp(1, 3000, 10));
  seg.on_packet(rtp(2, 3000, 11));
  seg.on_packet(rtp(3, 6000, 40));
  auto frames = seg.finish();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].packets, 2);
  EXPECT_EQ(frames[0].ip_bytes, 2000);
  EXPECT_EQ(frames[1].packets, 1);
}

TEST(FrameSegmenterTest, ReorderedStragglerMergesIntoOpenFrame) {
  FrameSegmenter seg;
  seg.on_packet(rtp(1, 3000, 10));
  seg.on_packet(rtp(3, 6000, 40));  // next frame opens
  seg.on_packet(rtp(2, 3000, 41));  // straggler from the previous frame
  auto frames = seg.finish();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].packets, 2);
  EXPECT_EQ(frames[0].end_ns, 41);
}

TEST(FrameSegmenterTest, DuplicateSequenceDropped) {
  FrameSegmenter seg;
  seg.on_packet(rtp(1, 3000, 10));
  seg.on_packet(rtp(1, 3000, 12));
  auto frames = seg.finish();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].packets, 1);
  EXPECT_EQ(seg.duplicate_packets(), 1);
}

TEST(FrameSegmenterTest, StaleTimestampCountedAsRepair) {
  FrameSegmenter seg;
  seg.on_packet(rtp(1, 900'000, 10));
  seg.on_packet(rtp(2, 900'000 - 90'000, 20, 700));  // 1 s behind: repair
  auto frames = seg.finish();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(seg.repair_bytes(), 700);
}

// ---------------------------------------------------------------------------
// Property test: a synthetic RTP flow crossing a link impaired by
// src/net/faults (burst loss, reorder, duplication) must analyze without
// crashes and with sane, never-negative estimates, for every seed.
// ---------------------------------------------------------------------------

struct NullSink : PacketSink {
  void deliver(Packet) override {}
};

TEST(InferencePropertyTest, SurvivesFaultMutatedTraffic) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    EventScheduler sched;
    Link::Config cfg;
    cfg.rate = DataRate::mbps(50);
    cfg.propagation = Duration::millis(2);
    cfg.impairment_seed = seed;
    // Impairments act downstream of `access`'s tap, so the recorder sits
    // on a second, clean hop — tcpdump at the client, faults in the path.
    Link access(&sched, "access", cfg);
    Link client_hop(&sched, "client", cfg);
    NullSink sink;
    access.set_sink(&client_hop);
    client_hop.set_sink(&sink);

    TraceRecorder rec(96);
    client_hop.set_tap(rec.tap());

    FaultPlan plan;
    GilbertElliott ge;
    ge.p_good_to_bad = 0.05;
    ge.p_bad_to_good = 0.2;
    ge.loss_bad = 0.6;
    TimePoint t0 = TimePoint::zero();
    plan.add_burst_loss(&access, t0 + Duration::seconds(4),
                        Duration::seconds(6), ge);
    plan.add_reorder(&access, t0 + Duration::seconds(7), Duration::seconds(6),
                     0.3, Duration::millis(40));
    plan.add_duplicate(&access, t0 + Duration::seconds(10),
                       Duration::seconds(6), 0.25);
    plan.schedule(&sched);

    // 30 fps video, 3 packets per frame, for 20 s.
    uint64_t id = 1;
    uint32_t seq = 0;
    for (int frame = 0; frame < 600; ++frame) {
      TimePoint at = t0 + Duration::millis(frame * 33);
      for (int k = 0; k < 3; ++k) {
        // A whole Packet exceeds the scheduler's 64-byte inline capture;
        // capture the varying scalars and build it at delivery time.
        sched.schedule_at(
            at, [&access, pid = id++, pseq = seq++, frame, k, at] {
              Packet p;
              p.id = pid;
              p.flow = 1000;
              p.src = 2;
              p.dst = 1;
              p.size_bytes = 1100;
              p.type = PacketType::kRtpVideo;
              RtpMeta m;
              m.ssrc = 7;
              m.seq = pseq;
              m.frame_id = static_cast<uint64_t>(frame);
              m.packets_in_frame = 3;
              m.packet_index = static_cast<uint16_t>(k);
              m.capture_time = at;
              p.meta = m;
              access.deliver(std::move(p));
            });
      }
    }
    sched.run_all();

    TraceAnalysis an = analyze_records(rec.records());
    ASSERT_GT(an.packets, 0) << "seed " << seed;
    const StreamReport* video = an.primary_video();
    ASSERT_NE(video, nullptr) << "seed " << seed;
    // Graceful degradation: estimates stay in physical range — loss may
    // shrink FPS, duplication and reordering must never inflate it past
    // the send rate or drive anything negative.
    EXPECT_GE(video->median_fps, 0.0) << "seed " << seed;
    EXPECT_LE(video->median_fps, 40.0) << "seed " << seed;
    EXPECT_GE(video->frames, 0) << "seed " << seed;
    EXPECT_GE(video->repair_bytes, 0) << "seed " << seed;
    EXPECT_GE(video->duplicate_packets, 0) << "seed " << seed;
    for (double fps : video->fps_per_sec) {
      EXPECT_GE(fps, 0.0) << "seed " << seed;
      EXPECT_LE(fps, 90.0) << "seed " << seed;
    }
    if (seed >= 1) {
      // With duplication enabled the blind dedup should have fired at
      // least once in most seeds; never required, never negative.
      EXPECT_LE(video->duplicate_packets, an.packets) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: a real two-party call, blind estimates vs ground truth.
// ---------------------------------------------------------------------------

TEST(InferenceEndToEndTest, BlindFpsTracksGroundTruth) {
  TwoPartyConfig cfg;
  cfg.profile = "meet";
  cfg.seed = 42;
  cfg.duration = Duration::seconds(60);
  cfg.measure_from = Duration::seconds(20);
  cfg.capture_traces = true;
  TwoPartyResult r = run_two_party(cfg);

  ASSERT_FALSE(r.c1_down_records.empty());
  ASSERT_FALSE(r.c1_recv_seconds.empty());

  TraceAnalysis an = analyze_records(r.c1_down_records, 20.0);
  const StreamReport* video = an.primary_video();
  ASSERT_NE(video, nullptr);
  ASSERT_NE(an.primary(StreamKind::kAudio), nullptr);

  std::vector<double> truth_fps;
  for (const SecondStats& s : r.c1_recv_seconds) {
    if (s.at > TimePoint::zero() + cfg.measure_from && s.fps > 0.0) {
      truth_fps.push_back(s.fps);
    }
  }
  double truth = median_of_sorted_copy(std::move(truth_fps));
  ASSERT_GT(truth, 0.0);
  EXPECT_NEAR(video->median_fps, truth, truth * 0.10)
      << "blind " << video->median_fps << " vs truth " << truth;

  // Aggregate blind utilization tracks the FlowCapture's measurement.
  EXPECT_NEAR(an.mean_rate_mbps, r.c1_down_mbps,
              std::max(0.15, r.c1_down_mbps * 0.10));
}

// ---------------------------------------------------------------------------
// Tap lifetime at the scenario level: Network detaches every tap before
// the captures/recorders it owns are destroyed (ASan enforces this).
// ---------------------------------------------------------------------------

TEST(NetworkTapLifetimeTest, RecordAndCaptureShareFanoutAndDetachCleanly) {
  Network net;
  auto a = net.add_host("a");
  auto b = net.add_host("b");

  FlowCapture* cap = net.capture(a.up);
  TraceRecorder* rec = net.record(a.up, 128);
  EXPECT_TRUE(net.link_is_tapped(a.up));
  EXPECT_FALSE(net.link_is_tapped(b.up));

  Packet p;
  p.id = 1;
  p.flow = 5;
  p.src = a.host->id();
  p.dst = b.host->id();
  p.size_bytes = 500;
  p.type = PacketType::kKeepalive;
  a.host->send(p);
  net.sched().run_all();

  // Both observers hang off the same fanout and both saw the packet.
  EXPECT_EQ(cap->total_bytes(), 500);
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ(rec->records()[0].wire_bytes, 514u);
  // ~Network must detach taps before destroying cap/rec (no UAF).
}

}  // namespace
}  // namespace vca
