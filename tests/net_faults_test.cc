#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "core/scheduler.h"
#include "net/faults.h"
#include "net/invariants.h"
#include "net/link.h"

namespace vca {
namespace {

struct Collector : PacketSink {
  std::vector<std::pair<uint64_t, TimePoint>> got;
  EventScheduler* sched;
  explicit Collector(EventScheduler* s) : sched(s) {}
  void deliver(Packet p) override { got.emplace_back(p.id, sched->now()); }
};

Packet make_packet(uint64_t id, int bytes) {
  Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

TimePoint at_s(double s) {
  return TimePoint::zero() + Duration::seconds_d(s);
}

// Offer one `bytes`-sized packet every `every` until `until`.
void offer_stream(EventScheduler* sched, Link* link, Duration every,
                  TimePoint until, int bytes = 500) {
  struct Feeder {
    EventScheduler* sched;
    Link* link;
    Duration every;
    TimePoint until;
    int bytes;
    uint64_t next_id = 1;
    static void step(const std::shared_ptr<Feeder>& self) {
      if (self->sched->now() > self->until) return;
      self->link->deliver(make_packet(self->next_id++, self->bytes));
      self->sched->schedule(self->every, [self] { step(self); });
    }
  };
  // The closure keeps the feeder alive; it dies with its last event.
  auto f = std::make_shared<Feeder>(Feeder{sched, link, every, until, bytes});
  sched->schedule_at(TimePoint::zero(), [f] { Feeder::step(f); });
}

// --- satellite (a): the zero-rate wedge regression, at FaultPlan level ---

TEST(FaultPlanTest, OutageQueuesThenResumesWithoutNewTraffic) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);
  cfg.propagation = Duration::millis(1);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);

  // All traffic is offered BEFORE the outage ends; anything delivered
  // after restore can only come from the queue surviving the outage and
  // the serialization loop restarting by itself.
  for (int i = 0; i < 20; ++i) link.deliver(make_packet(100 + i, 500));

  FaultPlan plan;
  plan.add_outage(&link, at_s(0.01), Duration::seconds(2));
  plan.schedule(&sched);

  sched.run_until(at_s(10));
  EXPECT_EQ(sink.got.size(), 20u);
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(link.rate().bits_per_sec(), DataRate::mbps(1).bits_per_sec());
  // Some deliveries must postdate the restore: the loop restarted.
  int after_restore = 0;
  for (const auto& [id, t] : sink.got) {
    if (t >= at_s(2.01)) ++after_restore;
  }
  EXPECT_GT(after_restore, 0);

  SimInvariantChecker checker;
  checker.watch(&sched);
  checker.watch(&link);
  EXPECT_TRUE(checker.check().empty());
}

TEST(FaultPlanTest, NothingCrossesTheWireDuringOutage) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  offer_stream(&sched, &link, Duration::millis(10), at_s(6));

  FaultPlan plan;
  plan.add_outage(&link, at_s(2), Duration::seconds(2));
  plan.schedule(&sched);
  sched.run_all();

  for (const auto& [id, t] : sink.got) {
    // One in-flight packet may land just after outage onset; beyond that
    // the window must be silent until restore.
    EXPECT_FALSE(t > at_s(2.01) && t < at_s(4))
        << "packet " << id << " crossed a downed link at "
        << (t - TimePoint::zero()).seconds() << "s";
  }
}

TEST(FaultPlanTest, FlapRunsEveryCycleAndEndsUp) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(1);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  offer_stream(&sched, &link, Duration::millis(20), at_s(10));

  FaultPlan plan;
  plan.add_flap(&link, at_s(1), /*cycles=*/3, Duration::seconds(1),
                Duration::seconds(1));
  EXPECT_EQ(plan.size(), 6u);  // 3 x (down + up)
  plan.schedule(&sched);
  sched.run_all();

  EXPECT_FALSE(link.is_down());
  // Deliveries exist in every up-window between flaps.
  auto delivered_in = [&](double a, double b) {
    return std::any_of(sink.got.begin(), sink.got.end(), [&](const auto& e) {
      return e.second >= at_s(a) && e.second < at_s(b);
    });
  };
  EXPECT_TRUE(delivered_in(0.0, 1.0));
  EXPECT_TRUE(delivered_in(2.0, 3.0));
  EXPECT_TRUE(delivered_in(4.0, 5.0));
  EXPECT_TRUE(delivered_in(6.0, 10.0));
}

// --- overlapping-window composition (the fuzzer-surfaced hazard) ---

TEST(FaultPlanTest, OverlappingOutagesStayDarkUntilLastWindowEnds) {
  // Windows A=[1,3) and B=[2,4) overlap. Before depth counting, A's
  // restore at t=3 woke the link in the middle of B; B's restore then
  // applied a healthy rate captured while the link was already down (0),
  // wedging it forever. The composed semantics: dark across [1,4), then
  // back to the pre-fault rate.
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  offer_stream(&sched, &link, Duration::millis(10), at_s(6));

  FaultPlan plan;
  plan.add_outage(&link, at_s(1), Duration::seconds(2));  // [1, 3)
  plan.add_outage(&link, at_s(2), Duration::seconds(2));  // [2, 4)
  plan.schedule(&sched);
  sched.run_all();

  // Restored, to the original healthy rate — not 0, not a mid-outage value.
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(link.rate().bits_per_sec(), DataRate::mbps(10).bits_per_sec());

  bool during = false, after = false;
  for (const auto& [id, t] : sink.got) {
    // Allow one in-flight delivery just past onset (propagation).
    if (t > at_s(1.01) && t < at_s(4)) during = true;
    if (t >= at_s(4)) after = true;
  }
  EXPECT_FALSE(during) << "packet crossed the wire inside the composed "
                          "outage window [1s, 4s)";
  EXPECT_TRUE(after);  // traffic resumed once the last window closed

  SimInvariantChecker checker;
  checker.watch(&sched);
  checker.watch(&link);
  EXPECT_TRUE(checker.check().empty());
}

TEST(FaultPlanTest, FlapOverlappingOutageDoesNotWakeOrWedgeTheLink) {
  // A flap whose cycles land inside a long outage: every flap down/up
  // pair nests within the outer window, so the link must stay dark until
  // the outer restore, and come back at the pre-fault rate.
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(5);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  offer_stream(&sched, &link, Duration::millis(10), at_s(8));

  FaultPlan plan;
  plan.add_outage(&link, at_s(1), Duration::seconds(4));  // [1, 5)
  plan.add_flap(&link, at_s(2), /*cycles=*/3, Duration::millis(400),
                Duration::millis(200));  // all inside [1, 5)
  plan.schedule(&sched);
  sched.run_all();

  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(link.rate().bits_per_sec(), DataRate::mbps(5).bits_per_sec());
  for (const auto& [id, t] : sink.got) {
    EXPECT_FALSE(t > at_s(1.01) && t < at_s(5))
        << "flap restore woke a link an outer outage still holds down (t="
        << (t - TimePoint::zero()).seconds() << "s)";
  }
}

TEST(FaultPlanTest, ShapeDuringOutageRetargetsTheRestoreRate) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.queue_bytes = 1 << 20;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);

  FaultPlan plan;
  plan.add_outage(&link, at_s(1), Duration::seconds(2));   // [1, 3)
  plan.add_shape(&link, at_s(2), DataRate::mbps(2));       // mid-outage
  plan.schedule(&sched);
  sched.run_until(at_s(2.5));

  // The shape must not wake the downed link early...
  EXPECT_TRUE(link.is_down());

  sched.run_until(at_s(10));
  // ...but the restore applies the re-shaped rate, not the stale one.
  EXPECT_FALSE(link.is_down());
  EXPECT_EQ(link.rate().bits_per_sec(), DataRate::mbps(2).bits_per_sec());
}

TEST(FaultPlanTest, ShapeOutsideOutageAppliesImmediately) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  Link link(&sched, "l", cfg);

  FaultPlan plan;
  plan.add_shape(&link, at_s(1), DataRate::kbps(750));
  plan.schedule(&sched);
  sched.run_until(at_s(2));
  EXPECT_EQ(link.rate().bits_per_sec(), DataRate::kbps(750).bits_per_sec());
}

// --- Gilbert-Elliott burst loss ---

// Longest run of consecutive losses among ids [1, n] given the set seen.
int longest_loss_run(const std::vector<std::pair<uint64_t, TimePoint>>& got,
                     uint64_t n) {
  std::set<uint64_t> seen;
  for (const auto& [id, t] : got) seen.insert(id);
  int run = 0, best = 0;
  for (uint64_t id = 1; id <= n; ++id) {
    run = seen.count(id) ? 0 : run + 1;
    best = std::max(best, run);
  }
  return best;
}

TEST(FaultPlanTest, BurstLossClustersComparedToIid) {
  // Matched marginal loss: GE with stationary bad-state share 1/6 and
  // loss_bad 0.6 => ~10%; iid at 10%.
  const uint64_t kPackets = 4000;
  auto run = [&](bool burst) {
    EventScheduler sched;
    Link::Config cfg;
    cfg.rate = DataRate::mbps(50);
    cfg.queue_bytes = 8 << 20;  // hold the whole batch: isolate impairment loss
    cfg.impairment_seed = 7;
    if (!burst) cfg.random_loss = 0.10;
    Link link(&sched, "l", cfg);
    Collector sink(&sched);
    link.set_sink(&sink);
    if (burst) {
      GilbertElliott ge;
      ge.p_good_to_bad = 0.02;
      ge.p_bad_to_good = 0.10;
      ge.loss_good = 0.0;
      ge.loss_bad = 0.6;
      link.set_burst_loss(ge);
    }
    for (uint64_t i = 1; i <= kPackets; ++i) link.deliver(make_packet(i, 200));
    sched.run_all();
    double loss = static_cast<double>(link.impairment_dropped_packets()) /
                  static_cast<double>(kPackets);
    return std::make_pair(loss, longest_loss_run(sink.got, kPackets));
  };

  auto [burst_loss, burst_run] = run(true);
  auto [iid_loss, iid_run] = run(false);
  // Comparable average rates...
  EXPECT_NEAR(burst_loss, 0.10, 0.04);
  EXPECT_NEAR(iid_loss, 0.10, 0.02);
  // ...but the GE losses cluster: its longest run dwarfs iid's.
  EXPECT_GT(burst_run, iid_run);
  EXPECT_GE(burst_run, 4);
}

TEST(FaultPlanTest, BurstLossWindowRevertsToConfiguredLoss) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  offer_stream(&sched, &link, Duration::millis(1), at_s(3), 200);

  FaultPlan plan;
  GilbertElliott ge;
  ge.p_good_to_bad = 1.0;
  ge.p_bad_to_good = 0.0;
  ge.loss_bad = 1.0;  // total blackout while enabled
  plan.add_burst_loss(&link, at_s(1), Duration::seconds(1), ge);
  plan.schedule(&sched);
  sched.run_all();

  EXPECT_FALSE(link.burst_loss_enabled());
  int during = 0, after = 0;
  for (const auto& [id, t] : sink.got) {
    // Skip the first 10 ms of the window: a packet already past the
    // impairment point at onset may still land (propagation delay).
    if (t >= at_s(1.01) && t < at_s(2)) ++during;
    if (t >= at_s(2)) ++after;
  }
  EXPECT_EQ(during, 0);  // everything in the window was eaten
  EXPECT_GT(after, 500);  // clean again once the window closed
}

// --- reorder / duplicate ---

TEST(FaultPlanTest, ReorderDetourSwapsArrivalOrder) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(50);
  cfg.propagation = Duration::millis(1);
  cfg.impairment_seed = 11;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.set_reorder(0.2, Duration::millis(10));
  for (uint64_t i = 1; i <= 500; ++i) link.deliver(make_packet(i, 200));
  sched.run_all();

  ASSERT_EQ(sink.got.size(), 500u);
  EXPECT_GT(link.reordered_packets(), 0);
  int inversions = 0;
  for (size_t i = 1; i < sink.got.size(); ++i) {
    if (sink.got[i].first < sink.got[i - 1].first) ++inversions;
  }
  EXPECT_GT(inversions, 0);
}

TEST(FaultPlanTest, DuplicationDeliversTwiceAndKeepsAccounting) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  link.set_duplicate(1.0);
  for (uint64_t i = 1; i <= 50; ++i) link.deliver(make_packet(i, 200));
  sched.run_all();

  EXPECT_EQ(sink.got.size(), 100u);  // every packet twice
  EXPECT_EQ(link.duplicated_packets(), 50);
  EXPECT_EQ(link.delivered_packets(), 50);  // the wire saw each once

  SimInvariantChecker checker;
  checker.watch(&link);
  EXPECT_TRUE(checker.check().empty());
}

// --- satellite (b): impairment seed semantics ---

std::vector<uint64_t> surviving_ids(uint64_t seed, bool reseed_mid,
                                    uint64_t reseed_to = 0) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.random_loss = 0.3;
  cfg.impairment_seed = seed;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);
  for (uint64_t i = 1; i <= 200; ++i) link.deliver(make_packet(i, 200));
  sched.run_all();
  if (reseed_mid) link.set_impairment_seed(reseed_to);
  for (uint64_t i = 201; i <= 400; ++i) link.deliver(make_packet(i, 200));
  sched.run_all();
  std::vector<uint64_t> ids;
  for (const auto& [id, t] : sink.got) ids.push_back(id);
  return ids;
}

TEST(FaultPlanTest, SetImpairmentSeedActuallyReseeds) {
  // Regression: the seed used to be latched at construction and silently
  // ignored afterwards. Reseeding mid-run must change subsequent draws...
  auto baseline = surviving_ids(5, /*reseed_mid=*/false);
  auto reseeded = surviving_ids(5, /*reseed_mid=*/true, /*reseed_to=*/99);
  std::vector<uint64_t> base_tail, reseed_tail;
  for (uint64_t id : baseline) {
    if (id > 200) base_tail.push_back(id);
  }
  for (uint64_t id : reseeded) {
    if (id > 200) reseed_tail.push_back(id);
  }
  EXPECT_NE(base_tail, reseed_tail);

  // ...and reseeding to the same value must restart the stream: the
  // second half replays the first half's loss pattern, shifted by 200.
  auto replay = surviving_ids(5, /*reseed_mid=*/true, /*reseed_to=*/5);
  std::vector<uint64_t> first_half, second_half;
  for (uint64_t id : replay) {
    if (id <= 200) first_half.push_back(id);
    if (id > 200) second_half.push_back(id - 200);
  }
  EXPECT_EQ(first_half, second_half);
}

TEST(FaultPlanTest, IndependentStreamsPerImpairment) {
  // Enabling duplication must not change which packets the loss stream
  // drops (each impairment forks its own RNG stream).
  auto drops = [&](bool with_dup) {
    EventScheduler sched;
    Link::Config cfg;
    cfg.rate = DataRate::mbps(10);
    cfg.random_loss = 0.2;
    cfg.impairment_seed = 3;
    Link link(&sched, "l", cfg);
    Collector sink(&sched);
    link.set_sink(&sink);
    if (with_dup) link.set_duplicate(0.5);
    for (uint64_t i = 1; i <= 300; ++i) link.deliver(make_packet(i, 200));
    sched.run_all();
    std::set<uint64_t> seen;
    for (const auto& [id, t] : sink.got) seen.insert(id);
    std::vector<uint64_t> lost;
    for (uint64_t i = 1; i <= 300; ++i) {
      if (!seen.count(i)) lost.push_back(i);
    }
    return lost;
  };
  EXPECT_EQ(drops(false), drops(true));
}

// --- satellite (f): end-to-end determinism of a faulted run ---

std::string trace_of_faulted_run(uint64_t seed) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(5);
  cfg.propagation = Duration::millis(2);
  cfg.jitter_sd = Duration::millis(1);
  cfg.impairment_seed = seed;
  Link link(&sched, "l", cfg);
  Collector sink(&sched);
  link.set_sink(&sink);

  std::ostringstream trace;
  link.set_tap([&](const Packet& p, TimePoint t) {
    trace << p.id << "@" << t.ns() << ";";
  });

  offer_stream(&sched, &link, Duration::millis(2), at_s(8), 400);

  FaultPlan plan;
  plan.add_outage(&link, at_s(1), Duration::millis(1500));
  GilbertElliott ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.2;
  ge.loss_bad = 0.5;
  plan.add_burst_loss(&link, at_s(3), Duration::seconds(2), ge);
  plan.add_reorder(&link, at_s(5), Duration::seconds(1), 0.3,
                   Duration::millis(8));
  plan.add_duplicate(&link, at_s(6), Duration::seconds(1), 0.3);
  plan.schedule(&sched);

  sched.run_all();
  trace << "|delivered=" << link.delivered_packets()
        << "|qdrop=" << link.queue_dropped_packets()
        << "|idrop=" << link.impairment_dropped_packets()
        << "|dup=" << link.duplicated_packets()
        << "|reord=" << link.reordered_packets();
  return trace.str();
}

TEST(FaultPlanTest, IdenticalSeedAndPlanGiveByteIdenticalTraces) {
  std::string a = trace_of_faulted_run(42);
  std::string b = trace_of_faulted_run(42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 100u);  // the run actually carried traffic

  std::string c = trace_of_faulted_run(43);
  EXPECT_NE(a, c);  // and the seed genuinely matters
}

}  // namespace
}  // namespace vca
