// Flow-table behavior under the loads the streaming service sees:
// sketch-gated promotion, LRU eviction at capacity with final-report
// flush, idle sweeps, and evict-then-rejoin accounting.
#include "streaming/flow_table.h"

#include <gtest/gtest.h>

#include <map>

namespace vca {
namespace {

StreamKey key_of(uint32_t i) {
  StreamKey k;
  k.src_ip = 0x0b000000u | i;
  k.dst_ip = 0x0a000001u;
  k.src_port = static_cast<uint16_t>(20000 + (i % 40000));
  k.dst_port = 3478;
  k.ssrc = 0x100000u + i;
  return k;
}

ParsedPacket rtp_packet(uint32_t flow, int64_t ts_ns, uint16_t seq,
                        int bytes = 500) {
  ParsedPacket p;
  p.ts_ns = ts_ns;
  p.ip_bytes = bytes;
  p.wire_bytes = static_cast<uint32_t>(bytes + 14);
  StreamKey k = key_of(flow);
  p.src_ip = k.src_ip;
  p.dst_ip = k.dst_ip;
  p.src_port = k.src_port;
  p.dst_port = k.dst_port;
  p.ip_proto = 17;
  p.is_rtp = true;
  p.payload_type = 96;
  p.seq = seq;
  p.rtp_timestamp = static_cast<uint32_t>(ts_ns / 11111);
  p.ssrc = k.ssrc;
  return p;
}

StreamingConfig tiny_config(uint32_t promote = 1) {
  StreamingConfig cfg;
  cfg.sketch_width = 1 << 10;
  cfg.sketch_depth = 4;
  // Sketch = 1024 counters x 4 rows x 4 B = 16 KB; budget for exactly
  // 32 flow slots on top.
  cfg.memory_cap_bytes = 16 * 1024 + 32 * FlowTable::kPerFlowCostBytes;
  cfg.promote_packets = promote;
  return cfg;
}

TEST(FlowTableTest, SketchGateHoldsMiceOut) {
  FlowTable table(tiny_config(/*promote=*/5));
  int64_t reports = 0;
  table.set_report_sink([&](const StreamReport&) { ++reports; });
  // 4 packets: one short of the bar. Never promoted.
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(table.on_packet(key_of(1), rtp_packet(1, n * 1000, n)), nullptr);
  }
  EXPECT_EQ(table.live_flows(), 0u);
  EXPECT_EQ(table.stats().sketch_only_packets, 4);
  // The 5th packet crosses the bar.
  EXPECT_NE(table.on_packet(key_of(1), rtp_packet(1, 5000, 4)), nullptr);
  EXPECT_EQ(table.live_flows(), 1u);
  table.flush_all();
  EXPECT_EQ(reports, 1);
}

TEST(FlowTableTest, ChurnEvictionFlushesCompleteReports) {
  FlowTable table(tiny_config());
  std::map<StreamKey, int64_t> flushed_packets;
  table.set_report_sink([&](const StreamReport& r) {
    flushed_packets[r.key] += r.packets;
  });

  // 4x more flows than slots, 10 packets each, interleaved by round so
  // LRU pressure constantly evicts; every packet promotes on sight.
  constexpr uint32_t kFlows = 128;
  constexpr int kPackets = 10;
  for (int n = 0; n < kPackets; ++n) {
    for (uint32_t f = 0; f < kFlows; ++f) {
      int64_t ts = (static_cast<int64_t>(n) * kFlows + f) * 100'000;
      ASSERT_NE(table.on_packet(key_of(f), rtp_packet(f, ts, static_cast<uint16_t>(n))),
                nullptr);
    }
  }
  EXPECT_EQ(table.live_flows(), table.max_flows());
  EXPECT_GT(table.stats().evicted_lru, 0);
  table.flush_all();
  EXPECT_EQ(table.live_flows(), 0u);

  // Conservation: every packet fed shows up in exactly one final report.
  int64_t total = 0;
  for (const auto& [key, n] : flushed_packets) total += n;
  EXPECT_EQ(total, static_cast<int64_t>(kFlows) * kPackets);
  EXPECT_EQ(flushed_packets.size(), kFlows);
}

TEST(FlowTableTest, EvictThenRejoinRepromotesWithoutDoubleCounting) {
  FlowTable table(tiny_config(/*promote=*/3));
  std::vector<StreamReport> reports;
  table.set_report_sink([&](const StreamReport& r) { reports.push_back(r); });

  // Flow 7 promotes (3 packets), then goes idle and is swept.
  for (int n = 0; n < 5; ++n) {
    table.on_packet(key_of(7), rtp_packet(7, 1'000'000 * (n + 1),
                                          static_cast<uint16_t>(n)));
  }
  EXPECT_EQ(table.live_flows(), 1u);
  table.sweep_idle(5'000'000 + StreamingConfig{}.idle_timeout_ns + 1);
  ASSERT_EQ(reports.size(), 1u);
  // Generation 1: only the 3 post-promotion packets have full state (the
  // first 2 were sketch-only), none double-counted.
  EXPECT_EQ(reports[0].packets, 3);
  EXPECT_EQ(table.stats().evicted_idle, 1);
  EXPECT_EQ(table.live_flows(), 0u);

  // Rejoin: the sketch remembers the flow, so the very next packet
  // re-promotes it (no second climb to the bar).
  int64_t rejoin_ns = 60'000'000'000;
  StreamAccumulator* acc =
      table.on_packet(key_of(7), rtp_packet(7, rejoin_ns, 100));
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(table.stats().promoted, 2);
  table.on_packet(key_of(7), rtp_packet(7, rejoin_ns + 1'000'000, 101));
  table.flush_all();
  ASSERT_EQ(reports.size(), 2u);
  // Generation 2 covers only post-rejoin packets — fresh state, fresh
  // first timestamp, no bytes carried over from generation 1.
  EXPECT_EQ(reports[1].packets, 2);
  EXPECT_DOUBLE_EQ(reports[1].first_ts_sec, 60.0);
  EXPECT_EQ(reports[0].packets + reports[1].packets, 5);
}

TEST(FlowTableTest, LruEvictsLeastRecentlyActive) {
  StreamingConfig cfg = tiny_config();
  FlowTable table(cfg);
  std::vector<StreamKey> evicted;
  table.set_report_sink([&](const StreamReport& r) { evicted.push_back(r.key); });

  size_t cap = table.max_flows();
  int64_t ts = 0;
  for (uint32_t f = 0; f < cap; ++f) {
    table.on_packet(key_of(f), rtp_packet(f, ts++, 0));
  }
  // Touch flow 0 so flow 1 becomes the LRU victim.
  table.on_packet(key_of(0), rtp_packet(0, ts++, 1));
  table.on_packet(key_of(9999), rtp_packet(9999, ts++, 0));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], key_of(1));
  EXPECT_EQ(table.live_flows(), cap);
}

TEST(FlowTableTest, CapacityFollowsMemoryCap) {
  StreamingConfig cfg;
  cfg.sketch_width = 1 << 15;
  cfg.sketch_depth = 4;
  cfg.memory_cap_bytes = 32 * 1024 * 1024;
  FlowTable table(cfg);
  size_t sketch_bytes = table.sketch().memory_bytes();
  EXPECT_EQ(table.max_flows(),
            (cfg.memory_cap_bytes - sketch_bytes) / FlowTable::kPerFlowCostBytes);
  // A cap smaller than the sketch still leaves a tiny working table.
  cfg.memory_cap_bytes = 1024;
  FlowTable tiny(cfg);
  EXPECT_EQ(tiny.max_flows(), 16u);
}

}  // namespace
}  // namespace vca
