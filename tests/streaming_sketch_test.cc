// Count-min sketch properties the flow table's admission logic relies
// on: no undercounting ever, and bounded overcounting (false promotions)
// under a realistic mouse-flow load.
#include "streaming/sketch.h"

#include <gtest/gtest.h>

#include "analysis/inference.h"

namespace vca {
namespace {

uint64_t key_hash_of(uint32_t i) {
  StreamKey k;
  k.src_ip = 0x0b000000u | i;
  k.dst_ip = 0x0a000001u;
  k.src_port = static_cast<uint16_t>(20000 + (i % 40000));
  k.dst_port = 3478;
  k.ssrc = 0x100000u + i;
  return stream_key_hash(k);
}

TEST(CountMinSketchTest, NeverUndercounts) {
  CountMinSketch sk(1 << 12, 4);
  // Heavy keys with known exact counts, amid background noise.
  for (uint32_t i = 0; i < 20'000; ++i) sk.add(key_hash_of(i));
  for (uint32_t h = 0; h < 32; ++h) {
    uint64_t hash = key_hash_of(1'000'000 + h);
    for (int n = 0; n < 100; ++n) sk.add(hash);
  }
  for (uint32_t h = 0; h < 32; ++h) {
    EXPECT_GE(sk.estimate(key_hash_of(1'000'000 + h)), 100u);
  }
  // Every background key reads at least its true count of 1.
  for (uint32_t i = 0; i < 20'000; i += 97) {
    EXPECT_GE(sk.estimate(key_hash_of(i)), 1u);
  }
}

TEST(CountMinSketchTest, FalsePromotionRateIsBounded) {
  // The flow table's sizing scenario: default sketch geometry, a large
  // population of single-packet mice, promotion bar at 8. The classic
  // bound says overcount beyond 2N/width (~6 here) happens with
  // probability <= 2^-depth per key; empirically the false-promotion
  // fraction should be far below 1%.
  CountMinSketch sk(1 << 15, 4);
  constexpr uint32_t kMice = 100'000;
  constexpr uint32_t kBar = 8;
  uint32_t false_promotions = 0;
  for (uint32_t i = 0; i < kMice; ++i) {
    if (sk.add(key_hash_of(i)) >= kBar) ++false_promotions;
  }
  EXPECT_LT(false_promotions, kMice / 100)
      << "false-promotion rate " << false_promotions << "/" << kMice;
  // And a genuinely heavy flow still promotes immediately.
  uint64_t heavy = key_hash_of(5'000'000);
  uint32_t est = 0;
  for (uint32_t n = 0; n < kBar; ++n) est = sk.add(heavy);
  EXPECT_GE(est, kBar);
}

TEST(CountMinSketchTest, WidthRoundsToPowerOfTwoAndClears) {
  CountMinSketch sk(1000, 3);
  EXPECT_EQ(sk.width(), 1024u);
  EXPECT_EQ(sk.depth(), 3);
  EXPECT_EQ(sk.memory_bytes(), 1024u * 3u * sizeof(uint32_t));
  sk.add(key_hash_of(7), 42);
  EXPECT_GE(sk.estimate(key_hash_of(7)), 42u);
  sk.clear();
  EXPECT_EQ(sk.estimate(key_hash_of(7)), 0u);
}

TEST(CountMinSketchTest, SaturatesInsteadOfWrapping) {
  CountMinSketch sk(64, 2);
  uint64_t h = key_hash_of(1);
  sk.add(h, UINT32_MAX - 1);
  EXPECT_GE(sk.add(h, 16), UINT32_MAX - 1);  // no wrap to a tiny estimate
}

}  // namespace
}  // namespace vca
