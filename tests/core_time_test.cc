#include <gtest/gtest.h>

#include "core/time.h"
#include "core/units.h"

namespace vca {
namespace {

using namespace vca::literals;

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::millis(5).ns(), 5'000'000);
  EXPECT_EQ(Duration::seconds(2).ms(), 2000);
  EXPECT_EQ(Duration::micros(7).ns(), 7000);
  EXPECT_DOUBLE_EQ(Duration::seconds_d(0.5).seconds(), 0.5);
  EXPECT_DOUBLE_EQ(Duration::millis_d(1.5).millis(), 1.5);
}

TEST(DurationTest, Arithmetic) {
  Duration a = 100_ms;
  Duration b = 50_ms;
  EXPECT_EQ((a + b).ms(), 150);
  EXPECT_EQ((a - b).ms(), 50);
  EXPECT_EQ((a * 3).ms(), 300);
  EXPECT_EQ((a / 2).ms(), 50);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
  a += b;
  EXPECT_EQ(a.ms(), 150);
}

TEST(DurationTest, InfiniteAndZero) {
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_LT(Duration::seconds(1000000), Duration::infinite());
}

TEST(TimePointTest, Arithmetic) {
  TimePoint t = TimePoint::zero() + 250_ms;
  EXPECT_EQ(t.ns(), 250'000'000);
  TimePoint u = t + 1_s;
  EXPECT_EQ((u - t).ms(), 1000);
  EXPECT_GT(u, t);
  u += 10_ms;
  EXPECT_EQ((u - t).ms(), 1010);
}

TEST(DataRateTest, Conversions) {
  EXPECT_EQ(DataRate::mbps(2).bits_per_sec(), 2'000'000);
  EXPECT_DOUBLE_EQ(DataRate::kbps(500).mbps_f(), 0.5);
  EXPECT_DOUBLE_EQ(DataRate::mbps_d(1.5).kbps_f(), 1500.0);
}

TEST(DataRateTest, TransmitTime) {
  // 1250 bytes at 1 Mbps = 10 ms.
  EXPECT_EQ(DataRate::mbps(1).transmit_time(1250).ms(), 10);
  EXPECT_TRUE(DataRate::zero().transmit_time(100).is_infinite());
}

TEST(DataRateTest, BytesIn) {
  EXPECT_EQ(DataRate::mbps(8).bytes_in(Duration::seconds(1)), 1'000'000);
}

TEST(DataRateTest, RateFromBytes) {
  EXPECT_EQ(rate_from_bytes(125'000, Duration::seconds(1)).bits_per_sec(),
            1'000'000);
  EXPECT_TRUE(rate_from_bytes(100, Duration::zero()).is_zero());
}

TEST(DataRateTest, ScalingAndComparison) {
  DataRate r = DataRate::mbps(2) * 0.5;
  EXPECT_EQ(r.bits_per_sec(), 1'000'000);
  EXPECT_DOUBLE_EQ(DataRate::mbps(3) / DataRate::mbps(2), 1.5);
  EXPECT_LT(DataRate::kbps(999), DataRate::mbps(1));
}

}  // namespace
}  // namespace vca
