#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/scheduler.h"
#include "net/link.h"
#include "trace/pcap.h"
#include "trace/recorder.h"

namespace vca {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

PacketRecord make_record(int64_t ts_ns, uint32_t wire,
                         std::vector<uint8_t> bytes) {
  PacketRecord r;
  r.ts_ns = ts_ns;
  r.wire_bytes = wire;
  r.bytes = std::move(bytes);
  return r;
}

// ---------------------------------------------------------------------------
// Golden file header: the first 24 bytes must be a libpcap global header
// any stock tool accepts (nanosecond magic, version 2.4, LINKTYPE_ETHERNET).
// ---------------------------------------------------------------------------

TEST(PcapTest, GoldenGlobalHeader) {
  std::ostringstream out;
  PcapWriter w(out, /*snaplen=*/96);
  std::string hdr = out.str();
  ASSERT_EQ(hdr.size(), 24u);
  const auto* b = reinterpret_cast<const uint8_t*>(hdr.data());
  // Magic 0xa1b23c4d, little-endian on the wire.
  EXPECT_EQ(b[0], 0x4d);
  EXPECT_EQ(b[1], 0x3c);
  EXPECT_EQ(b[2], 0xb2);
  EXPECT_EQ(b[3], 0xa1);
  // Version 2.4.
  EXPECT_EQ(b[4] | (b[5] << 8), kPcapVersionMajor);
  EXPECT_EQ(b[6] | (b[7] << 8), kPcapVersionMinor);
  // thiszone, sigfigs == 0.
  for (int i = 8; i < 16; ++i) EXPECT_EQ(b[i], 0) << "offset " << i;
  // snaplen.
  EXPECT_EQ(static_cast<uint32_t>(b[16]), 96u);
  EXPECT_EQ(b[17], 0);
  // LINKTYPE_ETHERNET = 1.
  EXPECT_EQ(static_cast<uint32_t>(b[20]), kPcapLinkEthernet);
  EXPECT_EQ(b[21], 0);
}

TEST(PcapTest, RecordHeaderSplitsNanoseconds) {
  std::ostringstream out;
  PcapWriter w(out, 96);
  w.write(make_record(3'000'000'123, 64, std::vector<uint8_t>(64, 0xab)));
  std::string s = out.str();
  ASSERT_EQ(s.size(), 24u + 16u + 64u);
  const auto* b = reinterpret_cast<const uint8_t*>(s.data()) + 24;
  uint32_t sec = b[0] | (b[1] << 8) | (b[2] << 16) |
                 (static_cast<uint32_t>(b[3]) << 24);
  uint32_t nsec = b[4] | (b[5] << 8) | (b[6] << 16) |
                  (static_cast<uint32_t>(b[7]) << 24);
  uint32_t incl = b[8] | (b[9] << 8) | (b[10] << 16) |
                  (static_cast<uint32_t>(b[11]) << 24);
  uint32_t orig = b[12] | (b[13] << 8) | (b[14] << 16) |
                  (static_cast<uint32_t>(b[15]) << 24);
  EXPECT_EQ(sec, 3u);
  EXPECT_EQ(nsec, 123u);
  EXPECT_EQ(incl, 64u);
  EXPECT_EQ(orig, 64u);
}

// ---------------------------------------------------------------------------
// Round trip: write -> read yields byte-identical records.
// ---------------------------------------------------------------------------

TEST(PcapTest, RoundTripByteFidelity) {
  std::vector<PacketRecord> in;
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> bytes;
    for (int j = 0; j < 14 + i; ++j) {
      bytes.push_back(static_cast<uint8_t>((i * 31 + j * 7) & 0xff));
    }
    in.push_back(make_record(static_cast<int64_t>(i) * 1'000'000'007,
                             static_cast<uint32_t>(200 + i),
                             std::move(bytes)));
  }
  std::string path = temp_path("roundtrip.pcap");
  ASSERT_TRUE(write_pcap_file(path, in, /*snaplen=*/96));

  bool ok = false;
  std::vector<PacketRecord> back = read_pcap_file(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(back.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(back[i], in[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(PcapTest, ReaderAcceptsMicrosecondMagic) {
  // Hand-build a classic microsecond-resolution capture.
  std::ostringstream out;
  auto le32 = [&](uint32_t v) {
    out.put(static_cast<char>(v & 0xff));
    out.put(static_cast<char>((v >> 8) & 0xff));
    out.put(static_cast<char>((v >> 16) & 0xff));
    out.put(static_cast<char>((v >> 24) & 0xff));
  };
  auto le16 = [&](uint16_t v) {
    out.put(static_cast<char>(v & 0xff));
    out.put(static_cast<char>((v >> 8) & 0xff));
  };
  le32(kPcapMagicMicros);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(kPcapLinkEthernet);
  le32(7);    // ts_sec
  le32(500);  // ts_usec
  le32(4);    // incl
  le32(60);   // orig
  out.write("\x01\x02\x03\x04", 4);

  std::istringstream in(out.str());
  PcapReader r(in);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.nanosecond());
  PacketRecord rec;
  ASSERT_TRUE(r.next(&rec));
  EXPECT_EQ(rec.ts_ns, 7'000'000'000 + 500'000);
  EXPECT_EQ(rec.wire_bytes, 60u);
  ASSERT_EQ(rec.bytes.size(), 4u);
  EXPECT_FALSE(r.next(&rec));
}

TEST(PcapTest, ReaderRejectsForeignMagic) {
  std::istringstream in(std::string(24, '\x42'));
  PcapReader r(in);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Frame synthesis.
// ---------------------------------------------------------------------------

Packet video_packet() {
  Packet p;
  p.id = 77;
  p.flow = 1000;
  p.src = 3;
  p.dst = 1;
  p.size_bytes = 1200;
  p.type = PacketType::kRtpVideo;
  RtpMeta m;
  m.ssrc = 42;
  m.seq = 70000;  // exceeds 16 bits to check truncation
  m.packets_in_frame = 2;
  m.packet_index = 1;
  m.capture_time = TimePoint::zero() + Duration::millis(500);
  p.meta = m;
  return p;
}

TEST(SynthesizeFrameTest, VideoHeadersAndChecksum) {
  Packet p = video_packet();
  PacketRecord rec =
      synthesize_frame(p, TimePoint::zero() + Duration::millis(501), 96);
  EXPECT_EQ(rec.ts_ns, Duration::millis(501).ns());
  EXPECT_EQ(rec.wire_bytes, 1200u + 14u);  // Ethernet framing on top of IP
  ASSERT_EQ(rec.bytes.size(), 14u + 20u + 8u + 12u);  // headers only @ 96 snap

  const uint8_t* b = rec.bytes.data();
  // Ethernet: dst MAC from dst node, ethertype IPv4.
  EXPECT_EQ(b[0], 0x02);
  EXPECT_EQ(b[5], 0x01);
  EXPECT_EQ(b[11], 0x03);
  EXPECT_EQ((b[12] << 8) | b[13], 0x0800);

  const uint8_t* ip = b + 14;
  EXPECT_EQ(ip[0], 0x45);
  EXPECT_EQ((ip[2] << 8) | ip[3], 1200);  // IP total length == size_bytes
  EXPECT_EQ(ip[9], 17);                   // UDP
  // Checksum verifies: summing the header including the stored checksum
  // must give 0xffff.
  uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) sum += (ip[i] << 8) | ip[i + 1];
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(sum, 0xffffu);
  // 10.0.0.3 -> 10.0.0.1.
  EXPECT_EQ(ip[12], 10);
  EXPECT_EQ(ip[15], 3);
  EXPECT_EQ(ip[16], 10);
  EXPECT_EQ(ip[19], 1);

  const uint8_t* udp = ip + 20;
  EXPECT_EQ((udp[0] << 8) | udp[1], 1024 + 1000 % 60000);
  EXPECT_EQ((udp[4] << 8) | udp[5], 1200 - 20);  // UDP length

  const uint8_t* rtp = udp + 8;
  EXPECT_EQ(rtp[0], 0x80);
  EXPECT_EQ(rtp[1] & 0x7f, 96);   // video PT
  EXPECT_EQ(rtp[1] & 0x80, 0x80); // marker: last packet of the frame
  EXPECT_EQ((rtp[2] << 8) | rtp[3], 70000 & 0xffff);
  uint32_t ts = (static_cast<uint32_t>(rtp[4]) << 24) | (rtp[5] << 16) |
                (rtp[6] << 8) | rtp[7];
  EXPECT_EQ(ts, 45000u);  // 0.5 s at 90 kHz
  uint32_t ssrc = (static_cast<uint32_t>(rtp[8]) << 24) | (rtp[9] << 16) |
                  (rtp[10] << 8) | rtp[11];
  EXPECT_EQ(ssrc, 42u);
}

TEST(SynthesizeFrameTest, SnaplenTruncatesButKeepsWireLength) {
  Packet p = video_packet();
  PacketRecord rec = synthesize_frame(p, TimePoint::zero(), 40);
  EXPECT_EQ(rec.wire_bytes, 1214u);
  EXPECT_EQ(rec.bytes.size(), 40u);
}

TEST(SynthesizeFrameTest, KeepaliveIsStunBindingRequest) {
  Packet p;
  p.id = 5;
  p.flow = 1019;
  p.src = 2;
  p.dst = 1;
  p.size_bytes = kKeepaliveBytes;
  p.type = PacketType::kKeepalive;
  PacketRecord rec = synthesize_frame(p, TimePoint::zero(), 96);
  const uint8_t* stun = rec.bytes.data() + 14 + 20 + 8;
  EXPECT_EQ((stun[0] << 8) | stun[1], 0x0001);
  uint32_t cookie = (static_cast<uint32_t>(stun[4]) << 24) |
                    (stun[5] << 16) | (stun[6] << 8) | stun[7];
  EXPECT_EQ(cookie, 0x2112a442u);
}

TEST(SynthesizeFrameTest, TcpCarriesSeqAckFlags) {
  Packet p;
  p.id = 9;
  p.flow = 9000;
  p.src = 4;
  p.dst = 5;
  p.size_bytes = 1488;
  p.type = PacketType::kTcpData;
  TcpMeta m;
  m.seq = 123456;
  m.ack = 777;
  m.payload_bytes = 1448;
  p.meta = m;
  PacketRecord rec = synthesize_frame(p, TimePoint::zero(), 96);
  const uint8_t* ip = rec.bytes.data() + 14;
  EXPECT_EQ(ip[9], 6);  // TCP
  const uint8_t* tcp = ip + 20;
  uint32_t seq = (static_cast<uint32_t>(tcp[4]) << 24) | (tcp[5] << 16) |
                 (tcp[6] << 8) | tcp[7];
  EXPECT_EQ(seq, 123456u);
  EXPECT_EQ(tcp[13] & 0x10, 0x10);  // ACK flag set (ack > 0)
}

// ---------------------------------------------------------------------------
// Tap lifetime: the recorder's tap must be detachable before the
// recorder dies, and an empty tap must be a no-op.
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RecordsFromLinkTapAndDetachesSafely) {
  EventScheduler sched;
  Link::Config cfg;
  cfg.rate = DataRate::mbps(10);
  cfg.propagation = Duration::zero();
  Link link(&sched, "l", cfg);

  struct NullSink : PacketSink {
    void deliver(Packet) override {}
  } sink;
  link.set_sink(&sink);

  {
    TraceRecorder rec(96);
    link.set_tap(rec.tap());
    link.deliver(video_packet());
    sched.run_all();
    ASSERT_EQ(rec.size(), 1u);
    // Contract from trace/recorder.h: detach before the recorder dies.
    link.set_tap({});
  }
  // The recorder is gone; traffic must not touch it.
  link.deliver(video_packet());
  sched.run_all();
}

}  // namespace
}  // namespace vca
