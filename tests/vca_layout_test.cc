#include <gtest/gtest.h>

#include "vca/layout.h"

namespace vca {
namespace {

TEST(LayoutTest, TwoPartyIsFullscreen) {
  for (VcaKind k : {VcaKind::kMeet, VcaKind::kTeams, VcaKind::kZoom}) {
    EXPECT_EQ(requested_width(k, 2, ViewMode::kGallery, false), 1280);
  }
}

TEST(LayoutTest, ZoomGridKneeAtFiveParticipants) {
  // 2x2 grid through n=4 keeps 640-wide requests; the third column at n=5
  // shrinks tiles below the 640 threshold (the paper's §6.1 uplink knee).
  EXPECT_EQ(requested_width(VcaKind::kZoom, 4, ViewMode::kGallery, false), 640);
  EXPECT_EQ(requested_width(VcaKind::kZoom, 5, ViewMode::kGallery, false), 320);
  EXPECT_EQ(requested_width(VcaKind::kZoom, 8, ViewMode::kGallery, false), 320);
}

TEST(LayoutTest, MeetKneeAtSevenParticipants) {
  EXPECT_EQ(requested_width(VcaKind::kMeet, 6, ViewMode::kGallery, false), 640);
  EXPECT_EQ(requested_width(VcaKind::kMeet, 7, ViewMode::kGallery, false), 320);
}

TEST(LayoutTest, TeamsRequestsNeverShrink) {
  for (int n = 3; n <= 8; ++n) {
    EXPECT_EQ(requested_width(VcaKind::kTeams, n, ViewMode::kGallery, false),
              640)
        << "n=" << n;
  }
}

TEST(LayoutTest, SpeakerModePinnedGetsLargeRequest) {
  for (VcaKind k : {VcaKind::kMeet, VcaKind::kTeams, VcaKind::kZoom}) {
    EXPECT_EQ(requested_width(k, 6, ViewMode::kSpeaker, true), 1280);
    EXPECT_EQ(requested_width(k, 6, ViewMode::kSpeaker, false), 180);
  }
}

TEST(LayoutTest, TeamsDisplaysAtMostFourFeeds) {
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 3, ViewMode::kGallery), 2);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 5, ViewMode::kGallery), 4);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 8, ViewMode::kGallery), 4);
  EXPECT_EQ(displayed_feeds(VcaKind::kMeet, 8, ViewMode::kGallery), 7);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 8, ViewMode::kSpeaker), 7);
}

// Pinned tile-budget results at the gallery sizes the multiparty sweeps
// dwell on (N = 7, 8, 25, 49): the 7+ starvation fix and the page cap
// must keep these exact values stable.
TEST(LayoutTest, PinnedWidthsAtSevenEightTwentyFiveFortyNine) {
  struct Row {
    int n;
    int meet, zoom, webex, teams;
  };
  // Meet's knee is n=7; Zoom/Webex shrink with the near-square grid and
  // bottom out at 180 once the 5x5 page is full; Teams never shrinks.
  const Row rows[] = {
      {7, 320, 320, 320, 640},
      {8, 320, 320, 320, 640},
      {25, 320, 180, 180, 640},
      {49, 320, 180, 180, 640},
  };
  for (const Row& r : rows) {
    EXPECT_EQ(requested_width(VcaKind::kMeet, r.n, ViewMode::kGallery, false),
              r.meet) << "meet n=" << r.n;
    EXPECT_EQ(requested_width(VcaKind::kZoom, r.n, ViewMode::kGallery, false),
              r.zoom) << "zoom n=" << r.n;
    EXPECT_EQ(requested_width(VcaKind::kWebex, r.n, ViewMode::kGallery, false),
              r.webex) << "webex n=" << r.n;
    EXPECT_EQ(requested_width(VcaKind::kTeams, r.n, ViewMode::kGallery, false),
              r.teams) << "teams n=" << r.n;
  }
}

// The subscription fanout a cascaded conference creates per viewer: grows
// with the roster until the gallery page (or the speaker filmstrip) caps
// it, never past.
TEST(LayoutTest, VisibleTilesSaturateAtPageCapacity) {
  for (int n : {7, 8, 25, 49}) {
    EXPECT_EQ(visible_tiles(VcaKind::kZoom, n, ViewMode::kGallery),
              std::min(n - 1, 25)) << "zoom n=" << n;
    EXPECT_EQ(visible_tiles(VcaKind::kWebex, n, ViewMode::kGallery),
              std::min(n - 1, 25)) << "webex n=" << n;
    EXPECT_EQ(visible_tiles(VcaKind::kMeet, n, ViewMode::kGallery),
              std::min(n - 1, 16)) << "meet n=" << n;
    EXPECT_EQ(visible_tiles(VcaKind::kTeams, n, ViewMode::kGallery), 4)
        << "teams n=" << n;
    EXPECT_EQ(visible_tiles(VcaKind::kWebex, n, ViewMode::kSpeaker),
              std::min(n - 1, 1 + kSpeakerFilmstrip)) << "speaker n=" << n;
  }
}

TEST(LayoutTest, TileWidthLadder) {
  EXPECT_EQ(width_request_for_tile(1366), 1280);
  EXPECT_EQ(width_request_for_tile(683), 640);
  EXPECT_EQ(width_request_for_tile(455), 320);
  EXPECT_EQ(width_request_for_tile(200), 180);
}

}  // namespace
}  // namespace vca
