#include <gtest/gtest.h>

#include "vca/layout.h"

namespace vca {
namespace {

TEST(LayoutTest, TwoPartyIsFullscreen) {
  for (VcaKind k : {VcaKind::kMeet, VcaKind::kTeams, VcaKind::kZoom}) {
    EXPECT_EQ(requested_width(k, 2, ViewMode::kGallery, false), 1280);
  }
}

TEST(LayoutTest, ZoomGridKneeAtFiveParticipants) {
  // 2x2 grid through n=4 keeps 640-wide requests; the third column at n=5
  // shrinks tiles below the 640 threshold (the paper's §6.1 uplink knee).
  EXPECT_EQ(requested_width(VcaKind::kZoom, 4, ViewMode::kGallery, false), 640);
  EXPECT_EQ(requested_width(VcaKind::kZoom, 5, ViewMode::kGallery, false), 320);
  EXPECT_EQ(requested_width(VcaKind::kZoom, 8, ViewMode::kGallery, false), 320);
}

TEST(LayoutTest, MeetKneeAtSevenParticipants) {
  EXPECT_EQ(requested_width(VcaKind::kMeet, 6, ViewMode::kGallery, false), 640);
  EXPECT_EQ(requested_width(VcaKind::kMeet, 7, ViewMode::kGallery, false), 320);
}

TEST(LayoutTest, TeamsRequestsNeverShrink) {
  for (int n = 3; n <= 8; ++n) {
    EXPECT_EQ(requested_width(VcaKind::kTeams, n, ViewMode::kGallery, false),
              640)
        << "n=" << n;
  }
}

TEST(LayoutTest, SpeakerModePinnedGetsLargeRequest) {
  for (VcaKind k : {VcaKind::kMeet, VcaKind::kTeams, VcaKind::kZoom}) {
    EXPECT_EQ(requested_width(k, 6, ViewMode::kSpeaker, true), 1280);
    EXPECT_EQ(requested_width(k, 6, ViewMode::kSpeaker, false), 180);
  }
}

TEST(LayoutTest, TeamsDisplaysAtMostFourFeeds) {
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 3, ViewMode::kGallery), 2);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 5, ViewMode::kGallery), 4);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 8, ViewMode::kGallery), 4);
  EXPECT_EQ(displayed_feeds(VcaKind::kMeet, 8, ViewMode::kGallery), 7);
  EXPECT_EQ(displayed_feeds(VcaKind::kTeams, 8, ViewMode::kSpeaker), 7);
}

TEST(LayoutTest, TileWidthLadder) {
  EXPECT_EQ(width_request_for_tile(1366), 1280);
  EXPECT_EQ(width_request_for_tile(683), 640);
  EXPECT_EQ(width_request_for_tile(455), 320);
  EXPECT_EQ(width_request_for_tile(200), 180);
}

}  // namespace
}  // namespace vca
