#include <gtest/gtest.h>

#include <cmath>

#include "core/stats_math.h"

namespace vca {
namespace {

TEST(StatsMathTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({}), 0.0);
}

TEST(StatsMathTest, Percentiles) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 25), 20.0);
}

TEST(StatsMathTest, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} with n-1 is ~2.138.
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev_of(v), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(StatsMathTest, ConfidenceIntervalCoversMean) {
  std::vector<double> v{1.0, 1.1, 0.9, 1.05, 0.95};
  ConfidenceInterval ci = confidence_interval(v, 0.90);
  EXPECT_NEAR(ci.mean, 1.0, 1e-9);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  // dof=4 -> t=2.132; half-width = 2.132 * sd/sqrt(5).
  double half = 2.132 * stddev_of(v) / std::sqrt(5.0);
  EXPECT_NEAR(ci.hi - ci.mean, half, 1e-6);
}

TEST(StatsMathTest, ConfidenceLevelWidens) {
  std::vector<double> v{1, 2, 3, 4, 5, 6};
  auto ci90 = confidence_interval(v, 0.90);
  auto ci99 = confidence_interval(v, 0.99);
  EXPECT_GT(ci99.hi - ci99.lo, ci90.hi - ci90.lo);
}

TEST(StatsMathTest, SingleSampleDegenerate) {
  auto ci = confidence_interval({3.0}, 0.90);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

}  // namespace
}  // namespace vca
