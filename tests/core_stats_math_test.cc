#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/stats_math.h"

namespace vca {
namespace {

TEST(StatsMathTest, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy({}), 0.0);
}

TEST(StatsMathTest, Percentiles) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 25), 20.0);
}

TEST(StatsMathTest, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} with n-1 is ~2.138.
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev_of(v), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(StatsMathTest, ConfidenceIntervalCoversMean) {
  std::vector<double> v{1.0, 1.1, 0.9, 1.05, 0.95};
  ConfidenceInterval ci = confidence_interval(v, 0.90);
  EXPECT_NEAR(ci.mean, 1.0, 1e-9);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  // dof=4 -> t=2.132; half-width = 2.132 * sd/sqrt(5).
  double half = 2.132 * stddev_of(v) / std::sqrt(5.0);
  EXPECT_NEAR(ci.hi - ci.mean, half, 1e-6);
}

TEST(StatsMathTest, ConfidenceLevelWidens) {
  std::vector<double> v{1, 2, 3, 4, 5, 6};
  auto ci90 = confidence_interval(v, 0.90);
  auto ci99 = confidence_interval(v, 0.99);
  EXPECT_GT(ci99.hi - ci99.lo, ci90.hi - ci90.lo);
}

TEST(StatsMathTest, SingleSampleDegenerate) {
  auto ci = confidence_interval({3.0}, 0.90);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

// Reference implementations: the original full-sort versions that the
// nth_element-based selection replaced. The selection path must agree
// bit-for-bit so the bench tables stay byte-identical across the switch.
double percentile_sort_reference(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median_sort_reference(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

TEST(StatsMathTest, PercentileSelectionMatchesSortReference) {
  std::mt19937_64 rng(7);
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 17u, 100u, 1001u}) {
    std::vector<double> v(n);
    std::uniform_real_distribution<double> dist(-50.0, 50.0);
    for (auto& x : v) x = dist(rng);
    // Inject ties: duplicates are where partial selection usually slips.
    if (n >= 4) {
      v[1] = v[0];
      v[n - 1] = v[n / 2];
    }
    for (double p : {-5.0, 0.0, 1.0, 10.0, 25.0, 50.0, 66.7, 75.0, 90.0,
                     99.0, 100.0, 105.0}) {
      EXPECT_DOUBLE_EQ(percentile_of(v, p), percentile_sort_reference(v, p))
          << "n=" << n << " p=" << p;
    }
    EXPECT_DOUBLE_EQ(median_of_sorted_copy(v), median_sort_reference(v))
        << "n=" << n;
  }
}

TEST(StatsMathTest, PercentileAllEqualAndTwoValues) {
  std::vector<double> same(9, 4.25);
  for (double p : {0.0, 33.0, 50.0, 97.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_of(same, p), 4.25);
  }
  std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_of(two, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile_of(two, 75), 2.5);
  EXPECT_DOUBLE_EQ(median_of_sorted_copy(two), 2.0);
}

}  // namespace
}  // namespace vca
