// Overflow regressions for the rate math in core/units.h. The original
// implementations multiplied before dividing in plain int64: bits/sec x
// nanoseconds is ~1e19 at 1 Gbps over 10 s, and bytes x 8e9 passes int64
// at ~1.15e9 bytes. Both are paper-scale inputs (Gbps-class unshaped
// access links over 150 s calls). Run under the UBSan preset, the old
// code trips signed-overflow checks on every case below.
#include <gtest/gtest.h>

#include "core/units.h"

namespace vca {
namespace {

TEST(UnitsOverflowTest, BytesInGbpsOverMultiSecondWindows) {
  // 1 Gbps x 10 s = 1.25e9 bytes.
  EXPECT_EQ(DataRate::gbps(1).bytes_in(Duration::seconds(10)), 1'250'000'000);
  // 2 Gbps (the sim's SFU access links) over a full 150 s call.
  EXPECT_EQ(DataRate::gbps(2).bytes_in(Duration::seconds(150)),
            int64_t{37'500'000'000});
  // 10 Gbps over 5 minutes still fits comfortably in the 128-bit rewrite.
  EXPECT_EQ(DataRate::gbps(10).bytes_in(Duration::seconds(300)),
            int64_t{375'000'000'000});
}

TEST(UnitsOverflowTest, RateFromBytesLargeByteCounts) {
  // 18.75e9 bytes over 150 s is exactly 1 Gbps.
  EXPECT_EQ(rate_from_bytes(18'750'000'000, Duration::seconds(150))
                .bits_per_sec(),
            1'000'000'000);
  // Just past the old ~1.15e9-byte overflow threshold.
  EXPECT_EQ(rate_from_bytes(2'000'000'000, Duration::seconds(16))
                .bits_per_sec(),
            1'000'000'000);
}

TEST(UnitsOverflowTest, TransmitTimeLargeByteCounts) {
  // 2e9 bytes at 1 Gbps serialize in 16 s.
  EXPECT_EQ(DataRate::gbps(1).transmit_time(2'000'000'000),
            Duration::seconds(16));
  EXPECT_EQ(DataRate::mbps(500).transmit_time(5'000'000'000),
            Duration::seconds(80));
}

TEST(UnitsOverflowTest, RoundTripAtHighRates) {
  // bytes_in and rate_from_bytes stay inverses at Gbps scale.
  for (int64_t gbps : {1, 2, 5, 10}) {
    DataRate r = DataRate::gbps(gbps);
    Duration d = Duration::seconds(30);
    EXPECT_EQ(rate_from_bytes(r.bytes_in(d), d), r);
  }
}

TEST(UnitsOverflowTest, SmallValuesUnchanged) {
  // The 128-bit rewrite must not perturb kbps-scale arithmetic.
  EXPECT_EQ(DataRate::kbps(500).bytes_in(Duration::seconds(1)), 62'500);
  EXPECT_EQ(DataRate::mbps(1).transmit_time(1500), Duration::micros(12'000));
  EXPECT_EQ(rate_from_bytes(62'500, Duration::seconds(1)),
            DataRate::kbps(500));
  EXPECT_EQ(DataRate::zero().transmit_time(1500), Duration::infinite());
  EXPECT_EQ(rate_from_bytes(1000, Duration::zero()), DataRate::zero());
}

}  // namespace
}  // namespace vca
