// Sharded parallel event core tests (net/shard.h): the logical partition
// is a property of the topology, so results must be byte-identical at
// any worker-thread count; the fuzzer's event budget is shared across
// every shard (a storm confined to one region must trip it); and the
// whole machinery stays clean under churn plus a relay outage — which is
// exactly what this file exercises under the TSan preset.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "harness/fuzz.h"
#include "harness/scenario.h"
#include "net/shard.h"

namespace vca {
namespace {

// Churn + a region-scoped relay outage on a 4-region fleet: the config
// drives join/leave teardown, deferred cross-region keyframe requests,
// FaultPlan actions on the control strand, and steady cross-shard relay
// traffic all at once.
ConferenceConfig churny_cfg(int shards) {
  ConferenceConfig cfg;
  cfg.profile = "webex";
  cfg.participants = 24;
  cfg.regions = 4;
  cfg.seed = 4242;
  cfg.duration = Duration::seconds(12);
  cfg.measure_from = Duration::seconds(6);
  cfg.late_joiners = 3;
  cfg.early_leavers = 3;
  cfg.churn_start = Duration::seconds(4);
  cfg.churn_step = Duration::millis(500);
  cfg.relay_outage_region = 1;
  cfg.fault_start = Duration::seconds(5);
  cfg.fault_length = Duration::seconds(2);
  cfg.shards = shards;
  return cfg;
}

// Exact equality throughout: determinism means bit-identical doubles,
// not approximately-equal ones.
void expect_identical(const ConferenceResult& a, const ConferenceResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.c1_up_mbps, b.c1_up_mbps);
  EXPECT_EQ(a.c1_down_mbps, b.c1_down_mbps);
  EXPECT_EQ(a.mean_client_down_mbps, b.mean_client_down_mbps);
  EXPECT_EQ(a.mean_client_up_mbps, b.mean_client_up_mbps);
  EXPECT_EQ(a.region_mean_down_mbps, b.region_mean_down_mbps);
  EXPECT_EQ(a.total_forwarded_packets, b.total_forwarded_packets);
  EXPECT_EQ(a.active_at_end, b.active_at_end);
  EXPECT_EQ(a.forwards_to_departed, b.forwards_to_departed);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    const ConferenceRegionStats& ra = a.regions[i];
    const ConferenceRegionStats& rb = b.regions[i];
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.clients, rb.clients);
    EXPECT_EQ(ra.forwarded_packets, rb.forwarded_packets);
    EXPECT_EQ(ra.peak_subscriptions, rb.peak_subscriptions);
    EXPECT_EQ(ra.relay_out_streams, rb.relay_out_streams);
    EXPECT_EQ(ra.relay_up_mbps, rb.relay_up_mbps);
    EXPECT_EQ(ra.relay_down_mbps, rb.relay_down_mbps);
    EXPECT_EQ(ra.relay_up_utilization, rb.relay_up_utilization);
  }
}

// The tentpole determinism bar: 1, 2, 4, and 8 worker threads produce
// byte-identical conference results (8 > regions exercises the clamp).
TEST(ShardDeterminism, ConferenceIdenticalAtAnyThreadCount) {
  ConferenceResult base = run_conference(churny_cfg(1));
  EXPECT_TRUE(base.invariant_violations.empty())
      << base.invariant_violations.front();
  EXPECT_GT(base.total_forwarded_packets, 0);
  for (int shards : {2, 4, 8}) {
    ConferenceResult r = run_conference(churny_cfg(shards));
    expect_identical(base, r, "shards=" + std::to_string(shards));
  }
}

FuzzRunOptions corpus_opts(int shards) {
  FuzzRunOptions opt;
  opt.count_invariants_globally = false;
  opt.shards = shards;
  return opt;
}

// Fuzz-corpus replay batch: every cascaded regression spec must produce
// the same verdict and the same event count on the sharded core at any
// thread count. (Single-SFU specs have nothing to partition and are
// skipped; the corpus_replay ctest covers them.)
TEST(ShardDeterminism, FuzzCorpusCascadedReplayIdentical) {
  namespace fs = std::filesystem;
  std::vector<std::string> specs;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(VCA_FUZZ_CORPUS_DIR, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      specs.push_back(line);
    }
  }
  ASSERT_FALSE(ec) << "cannot read corpus dir " VCA_FUZZ_CORPUS_DIR;
  std::sort(specs.begin(), specs.end());

  constexpr size_t kMaxCascaded = 6;  // keep the TSan run bounded
  size_t cascaded = 0;
  for (const std::string& spec : specs) {
    if (cascaded >= kMaxCascaded) break;
    auto sc = FuzzScenario::from_spec(spec);
    ASSERT_TRUE(sc.has_value()) << spec;
    if (sc->regions <= 1) continue;
    ++cascaded;
    SCOPED_TRACE(spec);
    FuzzResult r1 = run_fuzz_scenario(*sc, corpus_opts(1));
    FuzzResult r4 = run_fuzz_scenario(*sc, corpus_opts(4));
    EXPECT_TRUE(r1.ok()) << r1.failures.front().category << ": "
                         << r1.failures.front().detail;
    EXPECT_EQ(r1.failures.size(), r4.failures.size());
    EXPECT_EQ(r1.sim_events, r4.sim_events);
    EXPECT_EQ(r1.reconnects, r4.reconnects);
    EXPECT_EQ(r1.invariant_violations, r4.invariant_violations);
  }
  EXPECT_GT(cascaded, 0u) << "corpus lost its cascaded specs";
}

// Regression (fuzzer event-storm oracle): the budget must account for
// events in ALL shards. Before the sharded core, run_until_capped only
// ever saw the single scheduler; a naive port that counted only the
// control strand would let a storm confined to a region shard spin
// forever. The storm here is a zero-delay self-rescheduling event on
// shard 2 — the control strand dispatches nothing at all.
TEST(ShardRunnerBudget, SharedAcrossShardsAndThreadCounts) {
  constexpr uint64_t kBudget = 50'000;
  for (int threads : {1, 2}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EventScheduler control, s1, s2;
    ShardBus bus;
    bus.add_shard();
    bus.add_shard();
    std::function<void()> tick;
    tick = [&] { s2.schedule_at(s2.now(), [&] { tick(); }); };
    s2.schedule_at(TimePoint::zero() + Duration::millis(1), [&] { tick(); });

    ShardRunner::Options opt;
    opt.threads = threads;
    ShardRunner runner(&control, {&s1, &s2}, &bus, Duration::millis(5), opt);
    EXPECT_FALSE(runner.run_until_capped(
        TimePoint::zero() + Duration::seconds(1), kBudget));
    // The verdict fires inside the first window, so the overshoot is at
    // most one window's per-shard slice — and the count is exactly the
    // budget here because only one shard is storming.
    EXPECT_EQ(runner.events_processed(), kBudget);
    EXPECT_EQ(control.events_processed(), 0u);
    EXPECT_EQ(s1.events_processed(), 0u);
  }
}

// A finite workload under a generous budget completes normally and lands
// every clock on the horizon.
TEST(ShardRunnerBudget, FiniteWorkloadCompletes) {
  EventScheduler control, s1, s2;
  ShardBus bus;
  bus.add_shard();
  bus.add_shard();
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    s1.schedule_at(TimePoint::zero() + Duration::millis(i), [&] { ++fired; });
  }
  control.schedule_at(TimePoint::zero() + Duration::millis(50),
                      [&] { ++fired; });
  ShardRunner::Options opt;
  opt.threads = 2;
  ShardRunner runner(&control, {&s1, &s2}, &bus, Duration::millis(5), opt);
  TimePoint end = TimePoint::zero() + Duration::seconds(1);
  EXPECT_TRUE(runner.run_until_capped(end, 1'000'000));
  EXPECT_EQ(fired, 101);
  EXPECT_EQ(runner.events_processed(), 101u);
  EXPECT_EQ(control.now(), end);
  EXPECT_EQ(s1.now(), end);
  EXPECT_EQ(s2.now(), end);
}

}  // namespace
}  // namespace vca
