// Quickstart: run a 2.5-minute two-party call for each VCA on an
// unconstrained link and print what the paper's Table 2 reports —
// upstream and downstream utilization plus received video quality.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "harness/scenario.h"
#include "stats/table.h"

int main() {
  using namespace vca;

  std::cout << "vcabench quickstart: unconstrained two-party calls\n\n";

  TextTable table({"VCA", "Upstream (Mbps)", "Downstream (Mbps)",
                   "recv fps", "recv width", "freeze %"});

  for (const std::string& name : {"meet", "teams", "zoom"}) {
    TwoPartyConfig cfg;
    cfg.profile = name;
    cfg.seed = 42;
    TwoPartyResult r = run_two_party(cfg);
    table.add_row({name, fmt(r.c1_up_mbps), fmt(r.c1_down_mbps),
                   fmt(r.c1_received.median_fps, 0),
                   fmt(r.c1_received.median_width, 0),
                   fmt(100.0 * r.c1_received.freeze_ratio, 1)});
  }
  table.print(std::cout);

  std::cout << "\nPaper (Table 2): Meet 0.95/0.84, Teams 1.40/1.86, "
               "Zoom 0.78/0.95 Mbps up/down.\n";
  return 0;
}
