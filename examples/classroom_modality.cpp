// Example: the §6 classroom scenario. A class of N joins a call; we watch
// how one student's network load changes as classmates join, and what
// happens the moment the teacher gets pinned (speaker mode).
//
// This is the question the paper's city officials actually asked: how
// much does a video class need, per student, on a home connection?
//
// Usage: classroom_modality [profile] [max_participants]
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/scenario.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace vca;
  std::string profile = argc > 1 ? argv[1] : "zoom";
  int max_n = argc > 2 ? std::atoi(argv[2]) : 8;

  std::cout << "Classroom study for " << profile << " (gallery vs speaker)\n\n";

  TextTable table({"participants", "gallery up (Mbps)", "gallery down (Mbps)",
                   "teacher-pinned up (Mbps)"});
  for (int n = 2; n <= max_n; ++n) {
    MultipartyConfig g;
    g.profile = profile;
    g.participants = n;
    g.mode = ViewMode::kGallery;
    g.seed = 21;
    MultipartyResult gr = run_multiparty(g);

    std::string pinned = "-";
    if (n >= 3) {
      MultipartyConfig s = g;
      s.mode = ViewMode::kSpeaker;
      pinned = fmt(run_multiparty(s).c1_up_mbps);
    }
    table.add_row({std::to_string(n), fmt(gr.c1_up_mbps), fmt(gr.c1_down_mbps),
                   pinned});
  }
  table.print(std::cout);

  std::cout << "\nNote how the uplink can *drop* as the class grows (smaller "
               "tiles ask for less video),\nwhile pinning the teacher pushes "
               "their uplink up — one viewer's choice changes another\n"
               "household's upload bill (paper §6.2).\n";
  return 0;
}
