// Example: two VCA calls share one shaped access segment (the paper's
// Fig 7 topology) and we watch them fight for the uplink.
//
// Usage: competition_study [incumbent] [competitor] [link_mbps]
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/bulk_tcp.h"
#include "harness/network.h"
#include "stats/table.h"
#include "vca/call.h"

int main(int argc, char** argv) {
  using namespace vca;
  std::string inc_name = argc > 1 ? argv[1] : "zoom";
  std::string comp_name = argc > 2 ? argv[2] : "zoom";
  double link_mbps = argc > 3 ? std::atof(argv[3]) : 0.5;

  Network net;
  auto seg = net.add_segment(DataRate::mbps_d(link_mbps), Duration::millis(2),
                             std::max<int64_t>(20'000, static_cast<int64_t>(
                                                           link_mbps * 3e5 / 8)));
  auto c1 = net.add_host_on_segment(seg, "c1");
  auto f1 = net.add_host_on_segment(seg, "f1");
  auto sfu1 = net.add_host("sfu1", DataRate::gbps(2), DataRate::gbps(2),
                           Duration::millis(8), 4 << 20);
  auto sfu2 = net.add_host("sfu2", DataRate::gbps(2), DataRate::gbps(2),
                           Duration::millis(8), 4 << 20);
  auto c2 = net.add_host("c2");
  auto f2 = net.add_host("f2");

  Call::Config cc1;
  cc1.profile = vca_profile(inc_name);
  cc1.seed = 3;
  cc1.flow_base = 1000;
  Call incumbent(&net.sched(), sfu1.host, cc1);
  VcaClient* icl = incumbent.add_client(c1.host);
  incumbent.add_client(c2.host);

  // Competitor: another VCA call, or "iperf" for a bulk TCP flow from F1.
  bool use_iperf = comp_name == "iperf";
  Call::Config cc2;
  cc2.profile = vca_profile(use_iperf ? "meet" : comp_name);
  cc2.seed = 4;
  cc2.flow_base = 4000;
  Call competitor(&net.sched(), sfu2.host, cc2);
  VcaClient* ccl = competitor.add_client(f1.host);
  competitor.add_client(f2.host);
  BulkTcpApp iperf(&net.sched(), f1.host, f2.host, {.flow = 4500});

  FlowCapture* inc_up = net.capture(seg->shared_up);
  inc_up->add_flow_range(1000, 3999);
  FlowCapture* comp_up = net.capture(seg->shared_up);
  comp_up->add_flow_range(4000, 8999);

  incumbent.start();
  net.sched().schedule_at(TimePoint::zero() + Duration::seconds(30), [&] {
    if (use_iperf) {
      iperf.start();
    } else {
      competitor.start();
    }
  });

  std::cout << "t  inc_wire  comp_wire  inc_target  comp_target  inc_loss  "
               "comp_loss\n";
  for (int t = 5; t <= 180; t += 5) {
    net.sched().run_until(TimePoint::zero() + Duration::seconds(t));
    TimePoint from = TimePoint::zero() + Duration::seconds(t - 5);
    TimePoint to = TimePoint::zero() + Duration::seconds(t);
    std::cout << t << "  " << fmt(inc_up->mean_rate(from, to).mbps_f()) << "  "
              << fmt(comp_up->mean_rate(from, to).mbps_f()) << "  "
              << fmt(icl->current_target().mbps_f()) << "  "
              << fmt(ccl->current_target().mbps_f()) << "  "
              << fmt(icl->uplink_loss_ewma(), 2) << "  "
              << fmt(ccl->uplink_loss_ewma(), 2);
    if (auto* gcc = dynamic_cast<GccSenderController*>(icl->controller())) {
      std::cout << "  loss_comp=" << fmt(gcc->loss_component().mbps_f())
                << "  remb=" << fmt(gcc->remb_component().mbps_f());
    }
    std::cout << "\n";
  }
  incumbent.stop();
  competitor.stop();
  return 0;
}
