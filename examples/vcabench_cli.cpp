// vcabench_cli — run any experiment from the command line and optionally
// dump CSV traces for external plotting.
//
//   vcabench_cli two-party   --profile zoom --up 0.5 --seed 3 --csv out.csv
//   vcabench_cli disruption  --profile teams --direction down --drop 0.25
//   vcabench_cli outage      --profile meet --target up --start 60 --len 10
//   vcabench_cli competition --profile zoom --vs iperf-up --link 2.0
//   vcabench_cli multiparty  --profile meet --n 6 --mode speaker
//   vcabench_cli analyze     --pcap call.pcap --from 30
//
// two-party also takes --pcap FILE: record C1's downlink with the
// simulated tcpdump and write a real libpcap file, which `analyze` (or
// actual tcpdump/tshark) can then inspect blind.
//
// Every command also takes --reps N (run seeds seed..seed+N-1 and report
// mean [90% CI]), --jobs N (parallel workers for the reps) and
// --json FILE (machine-readable report, same schema as the benches).
// With --reps 1 (the default) output is a single-run table, and --csv
// dumps that run's traces.
//
// Flags default to the paper's experimental settings.
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "analysis/inference.h"
#include "core/stats_math.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "stats/table.h"
#include "stats/trace_writer.h"
#include "streaming/analyzer.h"
#include "streaming/corpus.h"

namespace {

using namespace vca;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? it->second : dflt;
  }
  double get_d(const std::string& key, double dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? std::atof(it->second.c_str()) : dflt;
  }
  int get_i(const std::string& key, int dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? std::atoi(it->second.c_str()) : dflt;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    // A flag followed by another flag (or nothing) is boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

SweepOptions sweep_options(const Args& a) {
  SweepOptions opts;
  opts.jobs = a.get_i("jobs", 0);
  opts.json_path = a.get("json", "");
  return opts;
}

int reps_of(const Args& a) {
  int reps = a.get_i("reps", 1);
  return reps < 1 ? 1 : reps;
}

std::string ci_str(const ConfidenceInterval& ci, int prec = 2) {
  return fmt(ci.mean, prec) + " [" + fmt(ci.lo, prec) + "," +
         fmt(ci.hi, prec) + "]";
}

void maybe_csv(const Args& a, const std::vector<std::string>& names,
               const std::vector<const TimeSeries*>& series) {
  std::string path = a.get("csv", "");
  if (path.empty()) return;
  std::ofstream f(path);
  TraceWriter::write_series(f, names, series);
  std::cout << "trace written to " << path << "\n";
}

int cmd_two_party(const Args& a) {
  SweepOptions opts = sweep_options(a);
  BenchReport report("vcabench_cli two-party", opts);
  int reps = reps_of(a);
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));

  std::vector<TwoPartyConfig> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    TwoPartyConfig cfg;
    cfg.profile = a.get("profile", "meet");
    cfg.seed = seed + static_cast<uint64_t>(rep);
    if (a.kv.count("up")) cfg.c1_up = DataRate::mbps_d(a.get_d("up", 0));
    if (a.kv.count("down")) cfg.c1_down = DataRate::mbps_d(a.get_d("down", 0));
    cfg.c1_loss = a.get_d("loss", 0.0) / 100.0;
    cfg.c1_extra_latency = Duration::millis_d(a.get_d("latency", 0.0));
    cfg.c1_jitter = Duration::millis_d(a.get_d("jitter", 0.0));
    cfg.duration = Duration::seconds(a.get_i("seconds", 150));
    if (rep == 0 && a.kv.count("pcap")) {
      // The trace is per-run; with --reps only the first seed is recorded.
      cfg.capture_traces = true;
      cfg.pcap_path = a.get("pcap", "");
    }
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_two_party, opts.jobs);
  report.begin_section("two-party", jobs[0].profile);
  if (!jobs[0].pcap_path.empty()) {
    std::cout << "downlink trace written to " << jobs[0].pcap_path << " ("
              << results[0].c1_down_records.size() << " packets)\n";
  }

  if (reps == 1) {
    const TwoPartyResult& r = results[0];
    TextTable t({"metric", "value"});
    t.add_row({"c1 uplink (Mbps)", fmt(r.c1_up_mbps)});
    t.add_row({"c1 downlink (Mbps)", fmt(r.c1_down_mbps)});
    t.add_row({"recv fps (median)", fmt(r.c1_received.median_fps, 1)});
    t.add_row({"recv QP (median)", fmt(r.c1_received.median_qp, 1)});
    t.add_row({"recv width (median)", fmt(r.c1_received.median_width, 0)});
    t.add_row({"freeze ratio (%)", fmt(100 * r.c1_received.freeze_ratio, 2)});
    t.add_row({"upstream FIRs", std::to_string(r.c2_received.fir_upstream)});
    t.print(std::cout);
    maybe_csv(a, {"c1_up_mbps", "c1_down_mbps"},
              {&r.c1_up_series, &r.c1_down_series});
    report.add_cell(
        {{"profile", jobs[0].profile}},
        {{"up_mbps", BenchReport::scalar(r.c1_up_mbps)},
         {"down_mbps", BenchReport::scalar(r.c1_down_mbps)},
         {"fps", BenchReport::scalar(r.c1_received.median_fps)},
         {"qp", BenchReport::scalar(r.c1_received.median_qp)},
         {"width", BenchReport::scalar(r.c1_received.median_width)},
         {"freeze_pct",
          BenchReport::scalar(100 * r.c1_received.freeze_ratio)}});
  } else {
    std::vector<double> up, down, fps, qp, width, freeze;
    for (const TwoPartyResult& r : results) {
      up.push_back(r.c1_up_mbps);
      down.push_back(r.c1_down_mbps);
      fps.push_back(r.c1_received.median_fps);
      qp.push_back(r.c1_received.median_qp);
      width.push_back(r.c1_received.median_width);
      freeze.push_back(100 * r.c1_received.freeze_ratio);
    }
    ConfidenceInterval up_ci = confidence_interval(up);
    ConfidenceInterval down_ci = confidence_interval(down);
    ConfidenceInterval fps_ci = confidence_interval(fps);
    ConfidenceInterval qp_ci = confidence_interval(qp);
    ConfidenceInterval width_ci = confidence_interval(width);
    ConfidenceInterval freeze_ci = confidence_interval(freeze);
    TextTable t({"metric", "mean [90% CI] over " + std::to_string(reps) +
                               " reps"});
    t.add_row({"c1 uplink (Mbps)", ci_str(up_ci)});
    t.add_row({"c1 downlink (Mbps)", ci_str(down_ci)});
    t.add_row({"recv fps (median)", ci_str(fps_ci, 1)});
    t.add_row({"recv QP (median)", ci_str(qp_ci, 1)});
    t.add_row({"recv width (median)", ci_str(width_ci, 0)});
    t.add_row({"freeze ratio (%)", ci_str(freeze_ci)});
    t.print(std::cout);
    report.add_cell({{"profile", jobs[0].profile}},
                    {{"up_mbps", up_ci},
                     {"down_mbps", down_ci},
                     {"fps", fps_ci},
                     {"qp", qp_ci},
                     {"width", width_ci},
                     {"freeze_pct", freeze_ci}});
  }
  return report.finish() ? 0 : 1;
}

int cmd_disruption(const Args& a) {
  SweepOptions opts = sweep_options(a);
  BenchReport report("vcabench_cli disruption", opts);
  int reps = reps_of(a);
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));

  std::vector<DisruptionConfig> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    DisruptionConfig cfg;
    cfg.profile = a.get("profile", "meet");
    cfg.seed = seed + static_cast<uint64_t>(rep);
    cfg.uplink = a.get("direction", "up") != "down";
    cfg.drop_to = DataRate::mbps_d(a.get_d("drop", 0.25));
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_disruption, opts.jobs);
  report.begin_section("disruption", jobs[0].profile);

  if (reps == 1) {
    const DisruptionResult& r = results[0];
    std::cout << "nominal: " << fmt(r.ttr.nominal_mbps) << " Mbps\nTTR: "
              << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + " s" : "censored")
              << "\n";
    maybe_csv(a, {"disrupted_mbps", "c2_up_mbps"},
              {&r.disrupted_series, &r.c2_up_series});
    report.add_cell(
        {{"profile", jobs[0].profile}},
        {{"nominal_mbps", BenchReport::scalar(r.ttr.nominal_mbps)},
         {"ttr_sec",
          BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds() : -1.0)}});
  } else {
    std::vector<double> nominal, ttr;
    for (const DisruptionResult& r : results) {
      nominal.push_back(r.ttr.nominal_mbps);
      // Censored runs count as the remaining call time (as in bench_fig4).
      ttr.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 210.0);
    }
    ConfidenceInterval nominal_ci = confidence_interval(nominal);
    ConfidenceInterval ttr_ci = confidence_interval(ttr);
    std::cout << "nominal: " << ci_str(nominal_ci) << " Mbps\nTTR: "
              << ci_str(ttr_ci, 1) << " s (censored = 210.0, " << reps
              << " reps)\n";
    report.add_cell({{"profile", jobs[0].profile}},
                    {{"nominal_mbps", nominal_ci}, {"ttr_sec", ttr_ci}});
  }
  return report.finish() ? 0 : 1;
}

int cmd_outage(const Args& a) {
  SweepOptions opts = sweep_options(a);
  BenchReport report("vcabench_cli outage", opts);
  int reps = reps_of(a);
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));

  std::vector<OutageConfig> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    OutageConfig cfg;
    cfg.profile = a.get("profile", "meet");
    cfg.seed = seed + static_cast<uint64_t>(rep);
    std::string target = a.get("target", "up");
    if (target == "down") {
      cfg.target = OutageTarget::kDownlink;
    } else if (target == "both") {
      cfg.target = OutageTarget::kBoth;
    } else if (target == "sfu") {
      cfg.target = OutageTarget::kSfu;
    } else {
      cfg.target = OutageTarget::kUplink;
    }
    cfg.start = Duration::seconds(a.get_i("start", 60));
    cfg.length = Duration::seconds(a.get_i("len", 10));
    cfg.total = Duration::seconds(a.get_i("seconds", 180));
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_outage, opts.jobs);
  report.begin_section("outage", jobs[0].profile);

  auto opt_s = [](const std::optional<Duration>& d) {
    return d ? fmt(d->seconds(), 2) + " s" : std::string("never");
  };
  size_t violations = 0;
  if (reps == 1) {
    const OutageResult& r = results[0];
    TextTable t({"metric", "value"});
    t.add_row({"detect (outage -> watchdog)", opt_s(r.detect_delay)});
    t.add_row({"reconnect (restore -> alive)", opt_s(r.reconnect_delay)});
    t.add_row({"reconnects", std::to_string(r.reconnects)});
    t.add_row({"audio-only degradations", std::to_string(r.degrade_events)});
    t.add_row({"nominal (Mbps)", fmt(r.ttr.nominal_mbps)});
    t.add_row({"TTR", r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + " s"
                                : std::string("censored")});
    t.add_row({"invariant violations",
               std::to_string(r.invariant_violations.size())});
    t.print(std::cout);
    for (const auto& v : r.invariant_violations) {
      std::cout << "violation: " << v << "\n";
    }
    maybe_csv(a, {"c1_up_mbps", "c1_down_mbps"},
              {&r.c1_up_series, &r.c1_down_series});
    violations = r.invariant_violations.size();
    report.add_cell(
        {{"profile", jobs[0].profile}},
        {{"detect_sec", BenchReport::scalar(
              r.detect_delay ? r.detect_delay->seconds() : -1.0)},
         {"reconnect_sec", BenchReport::scalar(
              r.reconnect_delay ? r.reconnect_delay->seconds() : -1.0)},
         {"reconnects",
          BenchReport::scalar(static_cast<double>(r.reconnects))},
         {"ttr_sec",
          BenchReport::scalar(r.ttr.ttr ? r.ttr.ttr->seconds() : -1.0)},
         {"invariant_violations",
          BenchReport::scalar(static_cast<double>(violations))}});
  } else {
    std::vector<double> detect, reconnect, ttr;
    int reconnects = 0, degrades = 0;
    for (const OutageResult& r : results) {
      if (r.detect_delay) detect.push_back(r.detect_delay->seconds());
      if (r.reconnect_delay) reconnect.push_back(r.reconnect_delay->seconds());
      ttr.push_back(r.ttr.ttr ? r.ttr.ttr->seconds() : 110.0);
      reconnects += r.reconnects;
      degrades += r.degrade_events;
      violations += r.invariant_violations.size();
    }
    ConfidenceInterval detect_ci = confidence_interval(detect);
    ConfidenceInterval reconnect_ci = confidence_interval(reconnect);
    ConfidenceInterval ttr_ci = confidence_interval(ttr);
    TextTable t({"metric", "mean [90% CI] over " + std::to_string(reps) +
                               " reps"});
    t.add_row({"detect (s)", ci_str(detect_ci)});
    t.add_row({"reconnect (s)", ci_str(reconnect_ci)});
    t.add_row({"TTR (s, censored=110)", ci_str(ttr_ci, 1)});
    t.add_row({"reconnects (total)", std::to_string(reconnects)});
    t.add_row({"audio-only degradations (total)", std::to_string(degrades)});
    t.add_row({"invariant violations (total)", std::to_string(violations)});
    t.print(std::cout);
    report.add_cell(
        {{"profile", jobs[0].profile}},
        {{"detect_sec", detect_ci},
         {"reconnect_sec", reconnect_ci},
         {"ttr_sec", ttr_ci},
         {"invariant_violations",
          BenchReport::scalar(static_cast<double>(violations))}});
  }
  bool ok = report.finish();
  return violations == 0 && ok ? 0 : 1;
}

int cmd_competition(const Args& a) {
  SweepOptions opts = sweep_options(a);
  BenchReport report("vcabench_cli competition", opts);
  int reps = reps_of(a);
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));
  std::string vs = a.get("vs", "meet");

  std::vector<CompetitionConfig> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    CompetitionConfig cfg;
    cfg.incumbent = a.get("profile", "zoom");
    cfg.link = DataRate::mbps_d(a.get_d("link", 0.5));
    cfg.seed = seed + static_cast<uint64_t>(rep);
    if (vs == "iperf-up") {
      cfg.competitor = CompetitorKind::kIperfUp;
    } else if (vs == "iperf-down") {
      cfg.competitor = CompetitorKind::kIperfDown;
    } else if (vs == "netflix") {
      cfg.competitor = CompetitorKind::kNetflix;
    } else if (vs == "youtube") {
      cfg.competitor = CompetitorKind::kYoutube;
    } else {
      cfg.competitor = CompetitorKind::kVca;
      cfg.competitor_profile = vs;
    }
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_competition, opts.jobs);
  report.begin_section("competition", jobs[0].incumbent + " vs " + vs);

  if (reps == 1) {
    const CompetitionResult& r = results[0];
    TextTable t({"", "uplink share", "downlink share"});
    t.add_row({jobs[0].incumbent + " (incumbent)", fmt(r.incumbent_up_share),
               fmt(r.incumbent_down_share)});
    t.add_row({vs + " (competitor)", fmt(r.competitor_up_share),
               fmt(r.competitor_down_share)});
    t.print(std::cout);
    if (r.competitor_connections > 0) {
      std::cout << "competitor opened " << r.competitor_connections
                << " TCP connections (max parallel "
                << r.competitor_max_parallel << ")\n";
    }
    maybe_csv(a, {"incumbent_up", "competitor_up", "incumbent_down",
                  "competitor_down"},
              {&r.incumbent_up_series, &r.competitor_up_series,
               &r.incumbent_down_series, &r.competitor_down_series});
    report.add_cell(
        {{"incumbent", jobs[0].incumbent}, {"competitor", vs}},
        {{"incumbent_up_share", BenchReport::scalar(r.incumbent_up_share)},
         {"competitor_up_share", BenchReport::scalar(r.competitor_up_share)},
         {"incumbent_down_share",
          BenchReport::scalar(r.incumbent_down_share)},
         {"competitor_down_share",
          BenchReport::scalar(r.competitor_down_share)}});
  } else {
    std::vector<double> iu, cu, id, cd;
    for (const CompetitionResult& r : results) {
      iu.push_back(r.incumbent_up_share);
      cu.push_back(r.competitor_up_share);
      id.push_back(r.incumbent_down_share);
      cd.push_back(r.competitor_down_share);
    }
    ConfidenceInterval iu_ci = confidence_interval(iu);
    ConfidenceInterval cu_ci = confidence_interval(cu);
    ConfidenceInterval id_ci = confidence_interval(id);
    ConfidenceInterval cd_ci = confidence_interval(cd);
    TextTable t({"", "uplink share [CI]", "downlink share [CI]"});
    t.add_row({jobs[0].incumbent + " (incumbent)", ci_str(iu_ci),
               ci_str(id_ci)});
    t.add_row({vs + " (competitor)", ci_str(cu_ci), ci_str(cd_ci)});
    t.print(std::cout);
    report.add_cell({{"incumbent", jobs[0].incumbent}, {"competitor", vs}},
                    {{"incumbent_up_share", iu_ci},
                     {"competitor_up_share", cu_ci},
                     {"incumbent_down_share", id_ci},
                     {"competitor_down_share", cd_ci}});
  }
  return report.finish() ? 0 : 1;
}

int cmd_multiparty(const Args& a) {
  SweepOptions opts = sweep_options(a);
  BenchReport report("vcabench_cli multiparty", opts);
  int reps = reps_of(a);
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));

  std::vector<MultipartyConfig> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    MultipartyConfig cfg;
    cfg.profile = a.get("profile", "meet");
    cfg.participants = a.get_i("n", 4);
    cfg.mode = a.get("mode", "gallery") == "speaker" ? ViewMode::kSpeaker
                                                     : ViewMode::kGallery;
    cfg.seed = seed + static_cast<uint64_t>(rep);
    jobs.push_back(cfg);
  }
  auto results = Sweep::run(jobs, run_multiparty, opts.jobs);
  report.begin_section("multiparty", jobs[0].profile);

  if (reps == 1) {
    const MultipartyResult& r = results[0];
    std::cout << "C1 uplink: " << fmt(r.c1_up_mbps) << " Mbps\nC1 downlink: "
              << fmt(r.c1_down_mbps) << " Mbps\n";
    report.add_cell({{"profile", jobs[0].profile}},
                    {{"up_mbps", BenchReport::scalar(r.c1_up_mbps)},
                     {"down_mbps", BenchReport::scalar(r.c1_down_mbps)}});
  } else {
    std::vector<double> up, down;
    for (const MultipartyResult& r : results) {
      up.push_back(r.c1_up_mbps);
      down.push_back(r.c1_down_mbps);
    }
    ConfidenceInterval up_ci = confidence_interval(up);
    ConfidenceInterval down_ci = confidence_interval(down);
    std::cout << "C1 uplink: " << ci_str(up_ci) << " Mbps\nC1 downlink: "
              << ci_str(down_ci) << " Mbps (" << reps << " reps)\n";
    report.add_cell({{"profile", jobs[0].profile}},
                    {{"up_mbps", up_ci}, {"down_mbps", down_ci}});
  }
  return report.finish() ? 0 : 1;
}

void print_stream_table(const std::vector<StreamReport>& streams) {
  TextTable t({"stream", "kind", "pkts", "Mbps", "pkt B", "pps", "fps",
               "frames", "frame B", "repair B", "width", "freezes", "QoE"});
  for (const StreamReport& s : streams) {
    bool video = s.kind == StreamKind::kVideo;
    t.add_row({s.describe(), stream_kind_name(s.kind),
               std::to_string(s.packets), fmt(s.mean_rate_mbps),
               fmt(s.mean_packet_bytes, 0), fmt(s.packets_per_sec, 1),
               video ? fmt(s.median_fps, 1) : "-",
               s.frames > 0 ? std::to_string(s.frames) : "-",
               s.frames > 0 ? fmt(s.mean_frame_bytes, 0) : "-",
               std::to_string(s.repair_bytes),
               video && s.est_width > 0 ? std::to_string(s.est_width) : "-",
               video ? std::to_string(s.freeze_events) : "-",
               video ? fmt(s.qoe, 1) : "-"});
  }
  t.print(std::cout);
}

// analyze --stream: the online service replaying the file through the
// chunked reader under a memory cap, instead of the offline pipeline.
int cmd_analyze_stream(const Args& a, const std::string& path) {
  StreamingConfig cfg;
  cfg.memory_cap_bytes =
      static_cast<size_t>(a.get_d("cap-mb", 32.0) * 1024.0 * 1024.0);
  // Replaying a curated capture: every flow matters, so admit on first
  // packet unless the user raises the bar.
  cfg.promote_packets = static_cast<uint32_t>(a.get_i("promote", 1));
  cfg.idle_timeout_ns =
      static_cast<int64_t>(a.get_d("idle-sec", 15.0) * 1e9);

  PcapFileReader reader(path);
  if (!reader.ok()) {
    std::cerr << "cannot read pcap file: " << path << "\n";
    return 1;
  }
  StreamingAnalyzer an(cfg);
  int64_t from_ns = static_cast<int64_t>(a.get_d("from", 0.0) * 1e9);
  PacketRecord rec;
  while (reader.next(&rec)) {
    if (rec.ts_ns >= from_ns) an.on_record(rec);
  }
  an.finish();

  const StreamingAnalyzer::Stats& st = an.stats();
  const FlowTable::Stats& ft = an.table().stats();
  std::cout << path << " (streamed): " << st.records_in << " records, "
            << st.packets << " parsed, cap "
            << (cfg.memory_cap_bytes >> 20) << " MB -> "
            << an.table().max_flows() << " flow slots\n"
            << "flows: " << ft.promoted << " promoted (peak live "
            << ft.peak_live_flows << "), " << ft.evicted_lru << " LRU + "
            << ft.evicted_idle << " idle evictions, "
            << ft.sketch_only_packets << " packets held in sketch, "
            << st.windows_emitted << " window reports\n";
  print_stream_table(an.reports());
  return 0;
}

int cmd_analyze(const Args& a) {
  std::string path = a.get("pcap", "");
  if (path.empty()) {
    std::cerr << "analyze requires --pcap FILE\n";
    return 2;
  }
  if (a.kv.count("stream")) return cmd_analyze_stream(a, path);
  bool ok = false;
  TraceAnalysis an = analyze_pcap_file(path, a.get_d("from", 0.0), &ok);
  if (!ok) {
    std::cerr << "cannot read pcap file: " << path << "\n";
    return 1;
  }

  std::cout << path << ": " << an.packets << " packets, "
            << fmt(static_cast<double>(an.ip_bytes) / 1e6) << " MB IP, "
            << fmt(an.last_ts_sec - an.first_ts_sec, 1) << " s, "
            << fmt(an.mean_rate_mbps) << " Mbps\n";
  print_stream_table(an.streams);
  if (const StreamReport* v = an.primary_video()) {
    std::cout << "primary video: " << v->describe() << " -> "
              << fmt(v->median_fps, 1) << " fps (median), "
              << fmt(v->mean_rate_mbps) << " Mbps\n";
  }
  return 0;
}

// corpus: run a scenario with trace capture and emit a labeled corpus
// item — a pcap plus its getStats() ground-truth sidecar.
int cmd_corpus(const Args& a) {
  std::string prefix = a.get("out", "corpus");
  std::string pcap_path = prefix + ".pcap";
  std::string labels_path = prefix + ".labels";
  std::string scenario = a.get("scenario", "two-party");
  uint64_t seed = static_cast<uint64_t>(a.get_i("seed", 1));

  std::vector<LabelRow> rows;
  size_t n_records = 0;
  if (scenario == "conference") {
    ConferenceConfig cfg;
    cfg.profile = a.get("profile", "webex");
    cfg.participants = a.get_i("n", 16);
    cfg.regions = a.get_i("regions", 2);
    cfg.seed = seed;
    cfg.duration = Duration::seconds(a.get_i("seconds", 60));
    cfg.capture_traces = true;
    cfg.pcap_path = pcap_path;
    ConferenceResult r = run_conference(cfg);
    rows = labels_from_seconds(r.c1_recv_seconds);
    n_records = r.c1_down_records.size();
  } else if (scenario == "two-party") {
    TwoPartyConfig cfg;
    cfg.profile = a.get("profile", "meet");
    cfg.seed = seed;
    cfg.duration = Duration::seconds(a.get_i("seconds", 150));
    cfg.capture_traces = true;
    cfg.pcap_path = pcap_path;
    TwoPartyResult r = run_two_party(cfg);
    rows = labels_from_seconds(r.c1_recv_seconds);
    n_records = r.c1_down_records.size();
  } else {
    std::cerr << "corpus --scenario must be two-party or conference\n";
    return 2;
  }
  if (!write_labels_file(labels_path, rows)) {
    std::cerr << "cannot write " << labels_path << "\n";
    return 1;
  }
  std::cout << "corpus item: " << pcap_path << " (" << n_records
            << " packets) + " << labels_path << " (" << rows.size()
            << " labeled seconds)\n";
  return 0;
}

int usage() {
  std::cout <<
      "usage: vcabench_cli "
      "<two-party|disruption|outage|competition|multiparty|analyze|corpus> "
      "[--flag value ...]\n"
      "  two-party:   --profile P --up M --down M --loss PCT --latency MS "
      "--jitter MS --seconds N --seed S --csv FILE --pcap FILE\n"
      "  disruption:  --profile P --direction up|down --drop M --seed S "
      "--csv FILE\n"
      "  outage:      --profile P --target up|down|both|sfu --start S --len S "
      "--seconds N --seed S --csv FILE\n"
      "  competition: --profile P --vs "
      "meet|teams|zoom|iperf-up|iperf-down|netflix|youtube --link M --csv F\n"
      "  multiparty:  --profile P --n N --mode gallery|speaker --seed S\n"
      "  analyze:     --pcap FILE [--from SEC] [--stream --cap-mb MB "
      "--promote N --idle-sec S]   (blind inference; --stream = bounded "
      "online analyzer)\n"
      "  corpus:      --scenario two-party|conference --profile P --n N "
      "--seconds N --seed S --out PREFIX   (pcap + ground-truth labels)\n"
      "common flags: --reps N (seeds S..S+N-1, mean [90% CI]; default 1) "
      "--jobs N (parallel workers) --json FILE (machine-readable report)\n"
      "profiles: meet teams zoom teams-chrome zoom-chrome (+ ablation "
      "variants)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (a.command == "two-party") return cmd_two_party(a);
  if (a.command == "disruption") return cmd_disruption(a);
  if (a.command == "outage") return cmd_outage(a);
  if (a.command == "competition") return cmd_competition(a);
  if (a.command == "multiparty") return cmd_multiparty(a);
  if (a.command == "analyze") return cmd_analyze(a);
  if (a.command == "corpus") return cmd_corpus(a);
  return usage();
}
