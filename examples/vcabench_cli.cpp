// vcabench_cli — run any experiment from the command line and optionally
// dump CSV traces for external plotting.
//
//   vcabench_cli two-party   --profile zoom --up 0.5 --seed 3 --csv out.csv
//   vcabench_cli disruption  --profile teams --direction down --drop 0.25
//   vcabench_cli outage      --profile meet --target up --start 60 --len 10
//   vcabench_cli competition --profile zoom --vs iperf-up --link 2.0
//   vcabench_cli multiparty  --profile meet --n 6 --mode speaker
//
// Flags default to the paper's experimental settings.
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "harness/scenario.h"
#include "stats/table.h"
#include "stats/trace_writer.h"

namespace {

using namespace vca;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? it->second : dflt;
  }
  double get_d(const std::string& key, double dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? std::atof(it->second.c_str()) : dflt;
  }
  int get_i(const std::string& key, int dflt) const {
    auto it = kv.find(key);
    return it != kv.end() ? std::atoi(it->second.c_str()) : dflt;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    a.kv[key] = argv[i + 1];
  }
  return a;
}

void maybe_csv(const Args& a, const std::vector<std::string>& names,
               const std::vector<const TimeSeries*>& series) {
  std::string path = a.get("csv", "");
  if (path.empty()) return;
  std::ofstream f(path);
  TraceWriter::write_series(f, names, series);
  std::cout << "trace written to " << path << "\n";
}

int cmd_two_party(const Args& a) {
  TwoPartyConfig cfg;
  cfg.profile = a.get("profile", "meet");
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 1));
  if (a.kv.count("up")) cfg.c1_up = DataRate::mbps_d(a.get_d("up", 0));
  if (a.kv.count("down")) cfg.c1_down = DataRate::mbps_d(a.get_d("down", 0));
  cfg.c1_loss = a.get_d("loss", 0.0) / 100.0;
  cfg.c1_extra_latency = Duration::millis_d(a.get_d("latency", 0.0));
  cfg.c1_jitter = Duration::millis_d(a.get_d("jitter", 0.0));
  cfg.duration = Duration::seconds(a.get_i("seconds", 150));

  TwoPartyResult r = run_two_party(cfg);
  TextTable t({"metric", "value"});
  t.add_row({"c1 uplink (Mbps)", fmt(r.c1_up_mbps)});
  t.add_row({"c1 downlink (Mbps)", fmt(r.c1_down_mbps)});
  t.add_row({"recv fps (median)", fmt(r.c1_received.median_fps, 1)});
  t.add_row({"recv QP (median)", fmt(r.c1_received.median_qp, 1)});
  t.add_row({"recv width (median)", fmt(r.c1_received.median_width, 0)});
  t.add_row({"freeze ratio (%)", fmt(100 * r.c1_received.freeze_ratio, 2)});
  t.add_row({"upstream FIRs", std::to_string(r.c2_received.fir_upstream)});
  t.print(std::cout);
  maybe_csv(a, {"c1_up_mbps", "c1_down_mbps"},
            {&r.c1_up_series, &r.c1_down_series});
  return 0;
}

int cmd_disruption(const Args& a) {
  DisruptionConfig cfg;
  cfg.profile = a.get("profile", "meet");
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 1));
  cfg.uplink = a.get("direction", "up") != "down";
  cfg.drop_to = DataRate::mbps_d(a.get_d("drop", 0.25));
  DisruptionResult r = run_disruption(cfg);
  std::cout << "nominal: " << fmt(r.ttr.nominal_mbps) << " Mbps\nTTR: "
            << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + " s" : "censored")
            << "\n";
  maybe_csv(a, {"disrupted_mbps", "c2_up_mbps"},
            {&r.disrupted_series, &r.c2_up_series});
  return 0;
}

int cmd_outage(const Args& a) {
  OutageConfig cfg;
  cfg.profile = a.get("profile", "meet");
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 1));
  std::string target = a.get("target", "up");
  if (target == "down") {
    cfg.target = OutageTarget::kDownlink;
  } else if (target == "both") {
    cfg.target = OutageTarget::kBoth;
  } else if (target == "sfu") {
    cfg.target = OutageTarget::kSfu;
  } else {
    cfg.target = OutageTarget::kUplink;
  }
  cfg.start = Duration::seconds(a.get_i("start", 60));
  cfg.length = Duration::seconds(a.get_i("len", 10));
  cfg.total = Duration::seconds(a.get_i("seconds", 180));
  OutageResult r = run_outage(cfg);

  auto opt_s = [](const std::optional<Duration>& d) {
    return d ? fmt(d->seconds(), 2) + " s" : std::string("never");
  };
  TextTable t({"metric", "value"});
  t.add_row({"detect (outage -> watchdog)", opt_s(r.detect_delay)});
  t.add_row({"reconnect (restore -> alive)", opt_s(r.reconnect_delay)});
  t.add_row({"reconnects", std::to_string(r.reconnects)});
  t.add_row({"audio-only degradations", std::to_string(r.degrade_events)});
  t.add_row({"nominal (Mbps)", fmt(r.ttr.nominal_mbps)});
  t.add_row({"TTR", r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + " s"
                              : std::string("censored")});
  t.add_row({"invariant violations",
             std::to_string(r.invariant_violations.size())});
  t.print(std::cout);
  for (const auto& v : r.invariant_violations) {
    std::cout << "violation: " << v << "\n";
  }
  maybe_csv(a, {"c1_up_mbps", "c1_down_mbps"},
            {&r.c1_up_series, &r.c1_down_series});
  return r.invariant_violations.empty() ? 0 : 1;
}

int cmd_competition(const Args& a) {
  CompetitionConfig cfg;
  cfg.incumbent = a.get("profile", "zoom");
  cfg.link = DataRate::mbps_d(a.get_d("link", 0.5));
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 1));
  std::string vs = a.get("vs", "meet");
  if (vs == "iperf-up") {
    cfg.competitor = CompetitorKind::kIperfUp;
  } else if (vs == "iperf-down") {
    cfg.competitor = CompetitorKind::kIperfDown;
  } else if (vs == "netflix") {
    cfg.competitor = CompetitorKind::kNetflix;
  } else if (vs == "youtube") {
    cfg.competitor = CompetitorKind::kYoutube;
  } else {
    cfg.competitor = CompetitorKind::kVca;
    cfg.competitor_profile = vs;
  }
  CompetitionResult r = run_competition(cfg);
  TextTable t({"", "uplink share", "downlink share"});
  t.add_row({cfg.incumbent + " (incumbent)", fmt(r.incumbent_up_share),
             fmt(r.incumbent_down_share)});
  t.add_row({vs + " (competitor)", fmt(r.competitor_up_share),
             fmt(r.competitor_down_share)});
  t.print(std::cout);
  if (r.competitor_connections > 0) {
    std::cout << "competitor opened " << r.competitor_connections
              << " TCP connections (max parallel " << r.competitor_max_parallel
              << ")\n";
  }
  maybe_csv(a, {"incumbent_up", "competitor_up", "incumbent_down",
                "competitor_down"},
            {&r.incumbent_up_series, &r.competitor_up_series,
             &r.incumbent_down_series, &r.competitor_down_series});
  return 0;
}

int cmd_multiparty(const Args& a) {
  MultipartyConfig cfg;
  cfg.profile = a.get("profile", "meet");
  cfg.participants = a.get_i("n", 4);
  cfg.mode = a.get("mode", "gallery") == "speaker" ? ViewMode::kSpeaker
                                                   : ViewMode::kGallery;
  cfg.seed = static_cast<uint64_t>(a.get_i("seed", 1));
  MultipartyResult r = run_multiparty(cfg);
  std::cout << "C1 uplink: " << fmt(r.c1_up_mbps) << " Mbps\nC1 downlink: "
            << fmt(r.c1_down_mbps) << " Mbps\n";
  return 0;
}

int usage() {
  std::cout <<
      "usage: vcabench_cli <two-party|disruption|outage|competition|multiparty> "
      "[--flag value ...]\n"
      "  two-party:   --profile P --up M --down M --loss PCT --latency MS "
      "--jitter MS --seconds N --seed S --csv FILE\n"
      "  disruption:  --profile P --direction up|down --drop M --seed S "
      "--csv FILE\n"
      "  outage:      --profile P --target up|down|both|sfu --start S --len S "
      "--seconds N --seed S --csv FILE\n"
      "  competition: --profile P --vs "
      "meet|teams|zoom|iperf-up|iperf-down|netflix|youtube --link M --csv F\n"
      "  multiparty:  --profile P --n N --mode gallery|speaker --seed S\n"
      "profiles: meet teams zoom teams-chrome zoom-chrome (+ ablation "
      "variants)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (a.command == "two-party") return cmd_two_party(a);
  if (a.command == "disruption") return cmd_disruption(a);
  if (a.command == "outage") return cmd_outage(a);
  if (a.command == "competition") return cmd_competition(a);
  if (a.command == "multiparty") return cmd_multiparty(a);
  return usage();
}
