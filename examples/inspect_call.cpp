// Diagnostic example: runs one two-party call and prints a 5-second
// timeline of the control state — CC target, receiver estimate, and the
// wire rates — for a chosen profile. Useful when tuning profiles.
//
// Usage: inspect_call [profile] [seconds] [drop_mbps]
// With drop_mbps given, C1's uplink is shaped to that rate in t=[60,90).
#include <cstdlib>
#include <iostream>

#include "harness/network.h"
#include "stats/table.h"
#include "vca/call.h"

int main(int argc, char** argv) {
  using namespace vca;
  std::string profile = argc > 1 ? argv[1] : "teams";
  int seconds = argc > 2 ? std::atoi(argv[2]) : 150;
  double drop_mbps = argc > 3 ? std::atof(argv[3]) : 0.0;

  Network net;
  auto sfu = net.add_host("sfu", DataRate::gbps(2), DataRate::gbps(2),
                          Duration::millis(8), 4 << 20);
  auto c1 = net.add_host("c1", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);
  auto c2 = net.add_host("c2", DataRate::gbps(1), DataRate::gbps(1),
                         Duration::millis(2), 1 << 20);

  Call::Config cc;
  cc.profile = vca_profile(profile);
  cc.seed = 42;
  Call call(&net.sched(), sfu.host, cc);
  VcaClient* cl1 = call.add_client(c1.host);
  VcaClient* cl2 = call.add_client(c2.host);

  FlowCapture* down_cap = net.capture(c1.down);
  FlowCapture* up_cap = net.capture(c1.up);

  if (drop_mbps > 0.0) {
    c1.up->set_queue_bytes(20'000);
    net.shape_at(c1.up, TimePoint::zero() + Duration::seconds(60),
                 DataRate::mbps_d(drop_mbps));
    net.shape_at(c1.up, TimePoint::zero() + Duration::seconds(90),
                 DataRate::gbps(1));
  }

  call.start();
  std::cout << "t  c1_up  c1_down  c1_cc_target  c2_cc_target  "
               "c1_remb(sfu view)  c2_remb  c1_est_qd(ms)\n";
  for (int t = 5; t <= seconds; t += 5) {
    net.sched().run_until(TimePoint::zero() + Duration::seconds(t));
    TimePoint from = TimePoint::zero() + Duration::seconds(t - 5);
    TimePoint to = TimePoint::zero() + Duration::seconds(t);
    std::cout << t << "  " << fmt(up_cap->mean_rate(from, to).mbps_f()) << "  "
              << fmt(down_cap->mean_rate(from, to).mbps_f()) << "  "
              << fmt(cl1->current_target().mbps_f()) << "  "
              << fmt(cl2->current_target().mbps_f()) << "  "
              << fmt(call.sfu()->viewer_budget(cl1).mbps_f()) << "  "
              << fmt(call.sfu()->viewer_budget(cl2).mbps_f()) << "  "
              << fmt(cl1->downlink_estimator()->queuing_delay_ms(), 1) << "\n";
  }
  call.stop();
  return 0;
}
