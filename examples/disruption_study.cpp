// Example: study how a VCA rides out a transient capacity drop.
//
// Runs a five-minute call, drops the chosen direction of C1's access link
// to a given rate for 30 seconds, and prints the bitrate timeline, the
// controller state trace, and the time-to-recovery metric.
//
// Usage: disruption_study [profile] [up|down] [drop_mbps]
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/scenario.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace vca;
  DisruptionConfig cfg;
  cfg.profile = argc > 1 ? argv[1] : "zoom";
  cfg.uplink = argc > 2 ? std::string(argv[2]) != "down" : true;
  cfg.drop_to = DataRate::mbps_d(argc > 3 ? std::atof(argv[3]) : 0.25);
  cfg.seed = 7;

  std::cout << "Disruption study: " << cfg.profile << ", "
            << (cfg.uplink ? "uplink" : "downlink") << " dropped to "
            << cfg.drop_to.mbps_f() << " Mbps during t=[60,90)\n\n";

  DisruptionResult r = run_disruption(cfg);

  std::cout << "nominal bitrate: " << fmt(r.ttr.nominal_mbps) << " Mbps\n";
  std::cout << "time to recovery: "
            << (r.ttr.ttr ? fmt(r.ttr.ttr->seconds(), 1) + " s"
                          : std::string("never (censored)"))
            << "\n\nbitrate timeline (2 s steps, Mbps):\n";
  const auto& s = r.disrupted_series.samples();
  for (size_t i = 0; i < s.size(); i += 4) {
    int t = static_cast<int>(s[i].at.seconds());
    std::cout << "  t=" << t << "\t" << fmt(s[i].value, 2) << "\t";
    int bars = static_cast<int>(s[i].value * 30);
    for (int b = 0; b < bars && b < 70; ++b) std::cout << '#';
    std::cout << "\n";
  }
  return 0;
}
